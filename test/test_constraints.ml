(* Theorem 1's conditions c1–c7: the paper's case-study configuration
   satisfies all; targeted mutations break exactly the expected ones. *)

open Pte_core

let case = Params.case_study

let with_entity i f =
  let entities = Array.map Fun.id case.Params.entities in
  entities.(i) <- f entities.(i);
  { case with Params.entities }

let violated params = Constraints.violated (Constraints.check params)

let check_violates name params condition =
  let vs = violated params in
  if not (List.mem condition vs) then
    Alcotest.failf "%s: expected %s among violations {%s}" name
      (Constraints.condition_name condition)
      (String.concat "," (List.map Constraints.condition_name vs))

let test_case_study_ok () =
  let outcomes = Constraints.check case in
  Alcotest.(check bool)
    (Fmt.str "%a" Constraints.pp_report outcomes)
    true (Constraints.all_ok outcomes);
  Alcotest.(check bool) "satisfies" true (Constraints.satisfies case)

let test_t_ls1 () =
  Alcotest.(check (float 1e-9)) "T_LS1 = 44" 44.0 (Params.t_ls1 case)

let test_dwell_bound () =
  Alcotest.(check (float 1e-9)) "T_wait + T_LS1 = 47" 47.0
    (Params.risky_dwell_bound case)

let test_c1_negative_constant () =
  check_violates "negative exit"
    (with_entity 0 (fun e -> { e with Params.t_exit = -1.0 }))
    Constraints.C1

let test_c2_violated () =
  (* shrink participant 1's lease span below N*T_wait *)
  let p =
    with_entity 0 (fun e ->
        { e with Params.t_enter_max = 1.0; t_run_max = 2.0; t_exit = 2.0 })
  in
  check_violates "tiny T_LS1" p Constraints.C2

let test_c3_req_too_small () =
  check_violates "T_req too small"
    { case with Params.t_req_max = 2.0 }
    Constraints.C3

let test_c3_req_too_large () =
  check_violates "T_req too large"
    { case with Params.t_req_max = 50.0 }
    Constraints.C3

let test_c4_violated () =
  (* inflate the initializer's lease beyond T_LS1 *)
  check_violates "long initializer lease"
    (with_entity 1 (fun e -> { e with Params.t_run_max = 60.0 }))
    Constraints.C4

let test_c5_violated () =
  (* the paper's own failure scenario: T_enter,2 = T_enter,1 *)
  check_violates "equal entering times"
    (with_entity 1 (fun e -> { e with Params.t_enter_max = 3.0 }))
    Constraints.C5

let test_c6_violated () =
  check_violates "outer lease too short"
    (with_entity 0 (fun e -> { e with Params.t_run_max = 20.0 }))
    Constraints.C6

let test_c7_violated () =
  check_violates "exit below safeguard"
    (with_entity 0 (fun e -> { e with Params.t_exit = 1.0 }))
    Constraints.C7

let test_n1_rejected () =
  let p = { case with Params.entities = [| case.Params.entities.(0) |] } in
  Alcotest.check_raises "N >= 2"
    (Invalid_argument "Theorem 1 requires N >= 2 remote entities") (fun () ->
      ignore (Constraints.check p))

(* ---- delay-aware recheck (reliable-transport retry budgets) ---- *)

let test_delay_recheck () =
  Alcotest.(check bool) "1.0 s delay still satisfies c1-c7" true
    (Constraints.satisfies_with_delay case ~delay:1.0);
  Alcotest.(check bool) "2.5 s delay breaks the configuration" false
    (Constraints.satisfies_with_delay case ~delay:2.5);
  (* c3's lower bound t_req/(N-1) - t_wait = 5 - 3 is the binding slack *)
  check_violates "2.5 s delay" (Constraints.with_message_delay case ~delay:2.5)
    Constraints.C3

let test_delay_budget () =
  let budget = Constraints.max_delay_budget case in
  Alcotest.(check (float 1e-3)) "case-study slack = 2.0 s" 2.0 budget;
  Alcotest.(check bool) "just inside the budget is feasible" true
    (Constraints.satisfies_with_delay case ~delay:(budget -. 1e-3));
  Alcotest.(check bool) "just past the budget is not" false
    (Constraints.satisfies_with_delay case ~delay:(budget +. 1e-3))

let test_delay_zero_is_identity () =
  Alcotest.(check bool) "delay 0 = base check" true
    (Constraints.satisfies_with_delay case ~delay:0.0
    = Constraints.satisfies case)

let test_delay_negative_raises () =
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Constraints.with_message_delay: negative delay")
    (fun () -> ignore (Constraints.with_message_delay case ~delay:(-0.5)))

let test_accessors () =
  Alcotest.(check int) "N" 2 (Params.n case);
  Alcotest.(check string) "initializer" "laser" (Params.initializer_ case).Params.name;
  Alcotest.(check int) "participants" 1 (Array.length (Params.participants case));
  Alcotest.(check string) "lookup" "ventilator" (Params.entity case "ventilator").Params.name;
  Alcotest.check_raises "unknown entity" (Invalid_argument "no entity named ghost")
    (fun () -> ignore (Params.entity case "ghost"))

let suite =
  [
    ( "core.constraints",
      [
        Alcotest.test_case "case study satisfies c1-c7" `Quick test_case_study_ok;
        Alcotest.test_case "T_LS1 value" `Quick test_t_ls1;
        Alcotest.test_case "dwelling bound" `Quick test_dwell_bound;
        Alcotest.test_case "c1 catches negatives" `Quick test_c1_negative_constant;
        Alcotest.test_case "c2 violation" `Quick test_c2_violated;
        Alcotest.test_case "c3 lower violation" `Quick test_c3_req_too_small;
        Alcotest.test_case "c3 upper violation" `Quick test_c3_req_too_large;
        Alcotest.test_case "c4 violation" `Quick test_c4_violated;
        Alcotest.test_case "c5 violation (paper scenario)" `Quick test_c5_violated;
        Alcotest.test_case "c6 violation" `Quick test_c6_violated;
        Alcotest.test_case "c7 violation" `Quick test_c7_violated;
        Alcotest.test_case "N=1 rejected" `Quick test_n1_rejected;
        Alcotest.test_case "delay-aware recheck" `Quick test_delay_recheck;
        Alcotest.test_case "max delay budget" `Quick test_delay_budget;
        Alcotest.test_case "zero delay is identity" `Quick
          test_delay_zero_is_identity;
        Alcotest.test_case "negative delay rejected" `Quick
          test_delay_negative_raises;
        Alcotest.test_case "param accessors" `Quick test_accessors;
      ] );
  ]
