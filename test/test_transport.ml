(* The reliable-delivery transport: backoff schedule, worst-case latency
   bound, duplicate suppression (bare and reliable), ACK-loss behavior,
   the consecutive-loss counter behind degraded-safe-mode, and the
   end-to-end blackout scenario where the supervisor rides the lease
   self-reset down to all-safe. *)

open Pte_net
module Transport = Pte_net.Transport
module Rng = Pte_util.Rng
module Emulation = Pte_tracheotomy.Emulation
module Trial = Pte_tracheotomy.Trial
module Plan = Pte_faults.Plan
module Exec = Pte_hybrid.Executor
module HA = Pte_hybrid.Automaton
module HL = Pte_hybrid.Location
module HE = Pte_hybrid.Edge
module HLb = Pte_hybrid.Label
module HS = Pte_hybrid.System

let mk_star ?(loss = Loss.Perfect) ?(seed = 1) () =
  Star.create ~base:"base" ~remotes:[ "r1"; "r2" ] ~loss_kind:loss
    ~rng:(Rng.create seed) ()

let uplink star remote =
  match Star.link_for star ~sender:remote ~receiver:"base" with
  | Some l -> l
  | None -> Alcotest.failf "no uplink for %s" remote

let downlink star remote =
  match Star.link_for star ~sender:"base" ~receiver:remote with
  | Some l -> l
  | None -> Alcotest.failf "no downlink for %s" remote

(* ---- policy arithmetic ---- *)

let test_rto_schedule () =
  let c = Transport.default_config in
  Alcotest.(check (float 1e-9)) "rto 0" 0.25 (Transport.rto c ~attempt:0);
  Alcotest.(check (float 1e-9)) "rto 1" 0.5 (Transport.rto c ~attempt:1);
  Alcotest.(check (float 1e-9)) "rto 2" 1.0 (Transport.rto c ~attempt:2);
  Alcotest.(check (float 1e-9)) "rto 3 hits the cap" 2.0
    (Transport.rto c ~attempt:3);
  Alcotest.(check (float 1e-9)) "rto 4 stays capped" 2.0
    (Transport.rto c ~attempt:4);
  Alcotest.(check int) "max attempts" 4 (Transport.max_attempts c)

let test_worst_case_latency () =
  let c = Transport.default_config in
  (* sum_{k<3} (rto k + jitter) + frame = 1.75 + 0.15 + 0.03 *)
  Alcotest.(check (float 1e-9)) "default worst case" 1.93
    (Transport.worst_case_latency c ~frame_delay:0.03);
  Alcotest.(check (float 1e-9)) "no retries = one frame in the air" 0.03
    (Transport.worst_case_latency { c with Transport.max_retries = 0 }
       ~frame_delay:0.03)

let test_validate () =
  let ok c = Result.is_ok (Transport.validate c) in
  let d = Transport.default_config in
  Alcotest.(check bool) "default valid" true (ok d);
  Alcotest.(check bool) "negative retries" false
    (ok { d with Transport.max_retries = -1 });
  Alcotest.(check bool) "zero rto" false (ok { d with Transport.base_rto = 0.0 });
  Alcotest.(check bool) "shrinking backoff" false
    (ok { d with Transport.multiplier = 0.5 });
  Alcotest.(check bool) "cap below rto" false
    (ok { d with Transport.cap = 0.1 });
  Alcotest.(check bool) "negative jitter" false
    (ok { d with Transport.jitter = -0.01 })

(* ---- bare mode: injected duplicates are suppressed at the receiver ---- *)

let test_bare_dup_suppression () =
  let star = mk_star () in
  Link.set_injector (uplink star "r1")
    (Some (fun ~time:_ ~root:_ -> Link.Duplicate_frame));
  let t = Transport.create ~mode:`Bare ~rng:(Rng.create 2) star in
  let router = Transport.router t in
  for i = 0 to 4 do
    match router ~time:(float_of_int i) ~sender:"r1" ~root:"evt" ~receiver:"base" with
    | Pte_hybrid.Executor.Deliver d when d >= 0.0 -> ()
    | _ -> Alcotest.failf "send %d: expected a single delivery" i
  done;
  let s = Transport.stats t in
  Alcotest.(check int) "all sends counted" 5 s.Transport.data_sends;
  Alcotest.(check int) "each delivered once" 5 s.Transport.delivered;
  Alcotest.(check int) "each replay squashed" 5 s.Transport.dups_suppressed

(* ---- event-driven harness ----

   Reliable exchanges run on the executor's timeline, so the tests build
   a minimal hybrid system over the star: a kick-driven sender automaton
   named after a star node emits "evt" whenever the test injects "kick",
   and the peer node listens. Exchange milestones are observed through
   {!Transport.set_observer}. *)

let kick_sender name =
  HA.make ~name ~vars:[]
    ~locations:[ HL.make "Idle"; HL.make "Arm" ]
    ~edges:
      [ HE.make ~label:(HLb.Recv "kick") ~src:"Idle" ~dst:"Arm" ();
        HE.make ~label:(HLb.Send "evt") ~src:"Arm" ~dst:"Idle" () ]
    ~initial_location:"Idle" ()

let evt_listener name =
  HA.make ~name ~vars:[]
    ~locations:[ HL.make "Wait" ]
    ~edges:[ HE.make ~label:(HLb.Recv_lossy "evt") ~src:"Wait" ~dst:"Wait" () ]
    ~initial_location:"Wait" ()

let ev_harness ?(dt = 0.01) ~star ~mode ~rng_seed ~sender ~receiver () =
  let system =
    HS.make ~name:"arq-harness" [ kick_sender sender; evt_listener receiver ]
  in
  let exec =
    Exec.create ~config:{ Exec.default_config with Exec.dt } system
  in
  let t = Transport.create ~mode ~rng:(Rng.create rng_seed) star in
  Transport.attach t exec;
  Exec.set_router exec (Transport.router t);
  (exec, t)

let kick_at exec ~sender times ~settle =
  List.iter
    (fun at ->
      Exec.run exec ~until:at;
      ignore (Exec.inject exec ~receiver:sender ~root:"kick"))
    times;
  Exec.run exec ~until:settle

(* ---- reliable mode: retransmission recovers a lossy channel ---- *)

let test_reliable_recovers_losses () =
  let cfg = Transport.default_config in
  let star = mk_star ~loss:(Loss.Bernoulli 0.5) ~seed:3 () in
  let bound =
    Transport.worst_case_latency cfg ~frame_delay:(Star.worst_frame_delay star)
  in
  let exec, t =
    ev_harness ~star ~mode:(`Reliable cfg) ~rng_seed:4 ~sender:"r1"
      ~receiver:"base" ()
  in
  let delivered = ref 0 in
  Transport.set_observer t (function
    | Transport.Exchange_delivered { sent_at; arrival; _ } ->
        incr delivered;
        if arrival -. sent_at > bound +. 1e-9 then
          Alcotest.failf "latency %g exceeds the closed-form bound %g"
            (arrival -. sent_at) bound
    | _ -> ());
  let n = 300 in
  kick_at exec ~sender:"r1"
    (List.init n float_of_int)
    ~settle:(float_of_int n +. 10.0);
  (* 4 attempts against p=0.5 drops: P(delivered) = 1 - 0.5^4 ~ 0.94,
     versus ~0.5 bare; anything above 0.8 means ARQ is really working *)
  let fraction = float_of_int !delivered /. float_of_int n in
  if fraction < 0.8 then
    Alcotest.failf "delivery fraction %.2f: retransmission not effective"
      fraction;
  let s = Transport.stats t in
  Alcotest.(check int) "stats agree with the observer" !delivered
    s.Transport.delivered;
  Alcotest.(check int) "every send resolved exactly once" n
    (s.Transport.delivered + s.Transport.gave_up);
  Alcotest.(check bool) "retransmissions happened" true
    (s.Transport.retransmissions > 0)

let test_consecutive_losses_and_reset () =
  let star = mk_star ~loss:(Loss.Bernoulli 1.0) ~seed:5 () in
  let exec, t =
    ev_harness ~star ~mode:(`Reliable Transport.default_config) ~rng_seed:6
      ~sender:"base" ~receiver:"r1" ()
  in
  List.iter
    (fun at ->
      Exec.run exec ~until:at;
      ignore (Exec.inject exec ~receiver:"base" ~root:"kick"))
    [ 1.0; 2.0; 3.0 ];
  (* losses register at confirmation time: the first send's give-up
     timeout cannot expire before 1 + rto(0..3) = 4.75 s *)
  Exec.run exec ~until:4.5;
  Alcotest.(check int) "nothing known before the first timeout" 0
    (Transport.consecutive_losses t ~sender:"base");
  Exec.run exec ~until:8.0;
  Alcotest.(check int) "all three known after their timeouts" 3
    (Transport.consecutive_losses t ~sender:"base");
  Alcotest.(check int) "all gave up" 3 (Transport.stats t).Transport.gave_up;
  Alcotest.(check int) "other senders unaffected" 0
    (Transport.consecutive_losses t ~sender:"r1");
  Transport.reset_consecutive_losses t ~sender:"base";
  Alcotest.(check int) "reset" 0 (Transport.consecutive_losses t ~sender:"base")

(* ---- adversarial ACK killer: data flows, feedback does not ---- *)

let test_ack_killer () =
  let cfg = Transport.default_config in
  let star = mk_star () in
  (* data goes r1 -> base on the uplink; ACKs come back on r1's
     downlink under the "ack:" root prefix — kill exactly those *)
  Link.set_injector (downlink star "r1")
    (Some
       (fun ~time:_ ~root ->
         if String.length root >= 4 && String.sub root 0 4 = "ack:" then
           Link.Drop_frame
         else Link.Pass));
  let exec, t =
    ev_harness ~star ~mode:(`Reliable cfg) ~rng_seed:7 ~sender:"r1"
      ~receiver:"base" ()
  in
  ignore (Exec.inject exec ~receiver:"r1" ~root:"kick");
  Exec.run exec ~until:10.0;
  let s = Transport.stats t in
  Alcotest.(check int) "the data arrived: nothing gave up" 0
    s.Transport.gave_up;
  Alcotest.(check int) "one application send" 1 s.Transport.data_sends;
  Alcotest.(check int) "delivered despite deaf sender" 1 s.Transport.delivered;
  Alcotest.(check int) "full retry budget spent" cfg.Transport.max_retries
    s.Transport.retransmissions;
  Alcotest.(check int) "receiver squashed every retransmission"
    cfg.Transport.max_retries s.Transport.dups_suppressed;
  Alcotest.(check int) "one ACK per copy"
    (cfg.Transport.max_retries + 1)
    s.Transport.acks_sent;
  Alcotest.(check int) "every ACK lost"
    (cfg.Transport.max_retries + 1)
    s.Transport.acks_lost;
  (* the sender never saw feedback: this is a consecutive loss even
     though the data arrived — exactly the degraded-mode trigger *)
  Alcotest.(check int) "counts as a feedback loss" 1
    (Transport.consecutive_losses t ~sender:"r1")

(* ---- tentpole: the ACK revokes the in-flight retransmission timer ---- *)

let test_ack_cancels_pending_retransmission () =
  let cfg = Transport.default_config in
  let star = mk_star () in
  let exec, t =
    ev_harness ~star ~mode:(`Reliable cfg) ~rng_seed:8 ~sender:"r1"
      ~receiver:"base" ()
  in
  let confirmed = ref [] in
  let gave_up = ref 0 in
  Transport.set_observer t (function
    | Transport.Exchange_confirmed { seq; at; _ } ->
        confirmed := (seq, at) :: !confirmed
    | Transport.Exchange_gave_up _ -> incr gave_up
    | Transport.Exchange_delivered _ -> ());
  ignore (Exec.inject exec ~receiver:"r1" ~root:"kick");
  (* every attempt arms a timer before its ACK can land; run far past
     every backoff — a timer that survived the ACK would have fired a
     retransmission or a give-up by then *)
  Exec.run exec ~until:20.0;
  let s = Transport.stats t in
  Alcotest.(check int) "delivered once" 1 s.Transport.delivered;
  (match !confirmed with
  | [ (0, at) ] ->
      Alcotest.(check bool)
        (Fmt.str "confirmed at %.3fs, before the first backoff expires" at)
        true
        (at < Transport.rto cfg ~attempt:0)
  | l ->
      Alcotest.failf "expected exactly one confirmation, got %d"
        (List.length l));
  Alcotest.(check int) "revoked timer never fired: no retransmissions" 0
    s.Transport.retransmissions;
  Alcotest.(check int) "and no give-up" 0 !gave_up;
  Alcotest.(check int) "single ACK" 1 s.Transport.acks_sent;
  Alcotest.(check int) "confirmed: no feedback loss" 0
    (Transport.consecutive_losses t ~sender:"r1")

(* ---- satellite: create validates, and the CLI spec parser agrees ---- *)

let test_create_validates () =
  let star = mk_star () in
  let bad = { Transport.default_config with Transport.jitter = -0.5 } in
  (match Transport.create ~mode:(`Reliable bad) ~rng:(Rng.create 1) star with
  | exception Invalid_argument msg ->
      Alcotest.(check string) "carries the validate message"
        "transport: jitter must be >= 0" msg
  | _ -> Alcotest.fail "an ill-formed config must be rejected at create");
  (match Transport.mode_of_string "reliable:jitter=-0.5" with
  | Error msg ->
      Alcotest.(check string) "spec parser gives the same reason"
        "transport: jitter must be >= 0" msg
  | Ok _ -> Alcotest.fail "ill-formed spec must be rejected");
  (match Transport.mode_of_string "reliable:cap=0.1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cap below base_rto must be rejected");
  (match Transport.mode_of_string "reliable:retries=5,rto=0.1" with
  | Ok (`Reliable c) ->
      Alcotest.(check int) "retries parsed" 5 c.Transport.max_retries;
      Alcotest.(check (float 1e-9)) "rto parsed" 0.1 c.Transport.base_rto
  | _ -> Alcotest.fail "well-formed spec must parse");
  match Transport.mode_of_string "bare" with
  | Ok `Bare -> ()
  | _ -> Alcotest.fail "bare must parse"

(* ---- scheduled mode: blind TDMA copies deliver within the
        synthesized bound, with no feedback channel at all ---- *)

let test_scheduled_within_bound () =
  let star = mk_star ~loss:(Loss.Bernoulli 0.4) ~seed:13 () in
  let exec, t =
    ev_harness ~star
      ~mode:(`Scheduled Pte_sched.Synth.default_policy)
      ~rng_seed:14 ~sender:"r1" ~receiver:"base" ()
  in
  let sched =
    match Transport.schedule t with
    | Some s -> s
    | None -> Alcotest.fail "scheduled mode must expose its schedule"
  in
  let bound = Pte_sched.Schedule.worst_case_latency sched in
  let delivered = ref 0 in
  Transport.set_observer t (function
    | Transport.Exchange_delivered { sent_at; arrival; _ } ->
        incr delivered;
        if arrival -. sent_at > bound +. 1e-9 then
          Alcotest.failf "latency %g exceeds the schedule bound %g"
            (arrival -. sent_at) bound
    | _ -> ());
  let n = 200 in
  kick_at exec ~sender:"r1"
    (List.init n float_of_int)
    ~settle:(float_of_int n +. 10.0);
  (* 4 blind copies against p=0.4: P(delivered) = 1 - 0.4^4 ~ 0.97 *)
  let fraction = float_of_int !delivered /. float_of_int n in
  if fraction < 0.85 then
    Alcotest.failf "delivery fraction %.2f: blind retransmission not working"
      fraction;
  let s = Transport.stats t in
  Alcotest.(check int) "stats agree with the observer" !delivered
    s.Transport.delivered;
  Alcotest.(check int) "every send resolved exactly once" n
    (s.Transport.delivered + s.Transport.gave_up);
  Alcotest.(check int) "no feedback frames in a blind mode" 0
    s.Transport.acks_sent;
  Alcotest.(check bool) "extra copies flew" true
    (s.Transport.retransmissions > 0);
  Alcotest.(check bool) "duplicate copies squashed at the receiver" true
    (s.Transport.dups_suppressed > 0)

let test_scheduled_admission_depth () =
  (* a perfect channel, but sends arriving faster than the round can
     drain them: the depth bound must reject the overflow at admission
     rather than stretch the latency past the closed form *)
  let star = mk_star () in
  let exec, t =
    ev_harness ~star
      ~mode:
        (`Scheduled { Pte_sched.Synth.default_policy with Pte_sched.Synth.depth = 1 })
      ~rng_seed:15 ~sender:"r1" ~receiver:"base" ()
  in
  let sched =
    match Transport.schedule t with
    | Some s -> s
    | None -> Alcotest.fail "schedule exposed"
  in
  let bound = Pte_sched.Schedule.worst_case_latency sched in
  Transport.set_observer t (function
    | Transport.Exchange_delivered { sent_at; arrival; _ } ->
        if arrival -. sent_at > bound +. 1e-9 then
          Alcotest.failf "admitted send late: %g > %g" (arrival -. sent_at)
            bound
    | _ -> ());
  (* burst of 5 sends in one dt step; depth 1 admits only what fits *)
  for _ = 1 to 5 do
    ignore (Exec.inject exec ~receiver:"r1" ~root:"kick")
  done;
  Exec.run exec ~until:10.0;
  let s = Transport.stats t in
  Alcotest.(check int) "burst counted" 5 s.Transport.data_sends;
  Alcotest.(check bool) "overflow rejected at admission" true
    (s.Transport.gave_up > 0);
  Alcotest.(check int) "admitted + rejected = sends" 5
    (s.Transport.delivered + s.Transport.gave_up)

let test_scheduled_spec_parsing () =
  (match Transport.mode_of_string "scheduled" with
  | Ok (`Scheduled p) ->
      Alcotest.(check bool) "defaults" true (p = Pte_sched.Synth.default_policy)
  | _ -> Alcotest.fail "plain scheduled must parse");
  (match
     Transport.mode_of_string
       "scheduled:retries=2,loss=0.1,depth=3,slot=0.05,budget=1.5,confidence=0.9"
   with
  | Ok (`Scheduled p) ->
      Alcotest.(check bool) "retries pinned" true
        (p.Pte_sched.Synth.retries = Some 2);
      Alcotest.(check bool) "slot pinned" true
        (p.Pte_sched.Synth.slot_len = Some 0.05);
      Alcotest.(check bool) "budget pinned" true
        (p.Pte_sched.Synth.budget = Some 1.5);
      Alcotest.(check (float 1e-9)) "loss" 0.1 p.Pte_sched.Synth.loss;
      Alcotest.(check (float 1e-9)) "confidence" 0.9
        p.Pte_sched.Synth.confidence;
      Alcotest.(check int) "depth" 3 p.Pte_sched.Synth.depth
  | _ -> Alcotest.fail "well-formed scheduled spec must parse");
  (match Transport.mode_of_string "scheduled:turbo=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown scheduled key must be rejected");
  match Transport.mode_of_string "scheduled:loss=1.5" with
  | Ok (`Scheduled p) ->
      (* parse accepts the number; create/synthesize rejects it *)
      let star = mk_star () in
      (match Transport.create ~mode:(`Scheduled p) ~rng:(Rng.create 1) star with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "ill-formed policy must be rejected at create")
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unreachable"

(* ---- regression: channel state evolves between attempts ----

   Under the unrolled model a whole exchange resolved against the
   channel synchronously, so a second exchange starting mid-way sampled
   the burst process as if the first had already finished. Event-driven,
   the two exchanges' frames hit the link interleaved in wall-clock
   order. With jitter 0 no RNG enters the transport, so reimplementing
   the unrolled algorithm over an identically-seeded star isolates
   exactly that ordering difference. *)

let bursty =
  Loss.Gilbert_elliott
    { to_bad = 0.4; to_good = 0.2; loss_good = 0.0; loss_bad = 1.0 }

let unrolled_outcomes star cfg ~times =
  let link = uplink star "r1" in
  let back = downlink star "r1" in
  List.map
    (fun time ->
      let rec attempt k ~send_at ~first =
        let next ~first =
          if k >= cfg.Transport.max_retries then first
          else
            attempt (k + 1)
              ~send_at:(send_at +. Transport.rto cfg ~attempt:k)
              ~first
        in
        match
          Link.send link ~time:send_at ~src:"r1" ~dst:"base" ~root:"evt"
        with
        | Link.Drop _ -> next ~first
        | Link.Deliver { arrival; _ }
        | Link.Deliver_dup { arrivals = arrival, _; _ } -> (
            let first =
              match first with None -> Some arrival | s -> s
            in
            match
              Link.send back ~time:arrival ~src:"base" ~dst:"r1"
                ~root:"ack:evt"
            with
            | Link.Deliver _ | Link.Deliver_dup _ -> first
            | Link.Drop _ -> next ~first)
      in
      attempt 0 ~send_at:time ~first:None)
    times

let event_driven_outcomes star cfg ~times =
  let exec, t =
    ev_harness ~star ~mode:(`Reliable cfg) ~rng_seed:1 ~sender:"r1"
      ~receiver:"base" ()
  in
  let arrivals = Hashtbl.create 4 in
  Transport.set_observer t (function
    | Transport.Exchange_delivered { seq; arrival; _ } ->
        Hashtbl.replace arrivals seq arrival
    | _ -> ());
  let last = List.nth times (List.length times - 1) in
  kick_at exec ~sender:"r1" times ~settle:(last +. 12.0);
  List.mapi (fun i _ -> Hashtbl.find_opt arrivals i) times

let test_burst_evolves_between_attempts () =
  let cfg = { Transport.default_config with Transport.jitter = 0.0 } in
  let times = [ 0.0; 0.1 ] in
  let differs seed =
    unrolled_outcomes (mk_star ~loss:bursty ~seed ()) cfg ~times
    <> event_driven_outcomes (mk_star ~loss:bursty ~seed ()) cfg ~times
  in
  Alcotest.(check bool)
    "a burst starting mid-exchange changes the outcome vs the unrolled model"
    true
    (List.exists differs (List.init 30 (fun i -> 100 + i)))

(* ---- property: empirical latency never exceeds the closed form, and
        the Theorem-1 recheck agrees with the budget search ---- *)

let config_gen =
  QCheck.Gen.(
    let* max_retries = int_range 0 4 in
    let* base_rto = float_range 0.05 0.8 in
    let* multiplier = float_range 1.0 3.0 in
    let* extra_cap = float_range 0.0 2.0 in
    let* jitter = float_range 0.0 0.1 in
    return
      {
        Transport.max_retries;
        base_rto;
        multiplier;
        cap = base_rto +. extra_cap;
        jitter;
      })

let config_arbitrary =
  QCheck.make
    ~print:(fun c -> Fmt.str "%a" Transport.pp_config c)
    config_gen

let prop_latency_within_bound =
  QCheck.Test.make ~name:"empirical latency <= worst_case_latency" ~count:25
    config_arbitrary
    (fun cfg ->
      assert (Result.is_ok (Transport.validate cfg));
      let star = mk_star ~loss:(Loss.Bernoulli 0.3) ~seed:11 () in
      let frame_delay = Star.worst_frame_delay star in
      let bound = Transport.worst_case_latency cfg ~frame_delay in
      let exec, t =
        ev_harness ~star ~mode:(`Reliable cfg) ~rng_seed:12 ~sender:"r1"
          ~receiver:"base" ()
      in
      let worst = ref None in
      Transport.set_observer t (function
        | Transport.Exchange_delivered { sent_at; arrival; _ } ->
            let d = arrival -. sent_at in
            if d > bound +. 1e-9 then worst := Some d
        | _ -> ());
      let n = 120 in
      kick_at exec ~sender:"r1"
        (List.init n float_of_int)
        ~settle:(float_of_int n +. 20.0);
      (match !worst with
      | Some d ->
          QCheck.Test.fail_reportf "latency %g > bound %g under %a" d bound
            Transport.pp_config cfg
      | None -> ());
      let s = Transport.stats t in
      if s.Transport.delivered + s.Transport.gave_up <> s.Transport.data_sends
      then
        QCheck.Test.fail_reportf "unbalanced counters (%a) under %a"
          Transport.pp_stats s Transport.pp_config cfg;
      (* the constraint recheck must agree with the budget search,
         except inside a tolerance band around the exact boundary *)
      let params = Pte_core.Params.case_study in
      let budget = Pte_core.Constraints.max_delay_budget params in
      if Float.abs (bound -. budget) < 1e-3 then true
      else
        Pte_core.Constraints.satisfies_with_delay params ~delay:bound
        = (bound < budget))

(* ---- property: bare-mode counters balance under random loss and
        injected duplicates (the bare_send accounting fix) ---- *)

let prop_bare_counter_invariants =
  QCheck.Test.make
    ~name:"bare counters: sends = delivered + gave-up, dups coherent"
    ~count:50
    (QCheck.make
       ~print:(fun (p, d, s) -> Fmt.str "loss=%g dup=%g seed=%d" p d s)
       QCheck.Gen.(
         triple (float_range 0.0 0.9) (float_range 0.0 1.0) (int_range 0 999)))
    (fun (loss_p, dup_p, seed) ->
      let star = mk_star ~loss:(Loss.Bernoulli loss_p) ~seed:(seed + 1) () in
      let dup_rng = Rng.create (seed + 1000) in
      Link.set_injector (uplink star "r1")
        (Some
           (fun ~time:_ ~root:_ ->
             if Rng.bernoulli dup_rng dup_p then Link.Duplicate_frame
             else Link.Pass));
      let t = Transport.create ~mode:`Bare ~rng:(Rng.create 2) star in
      let router = Transport.router t in
      let returned = ref 0 in
      let n = 200 in
      for i = 0 to n - 1 do
        match
          router ~time:(float_of_int i) ~sender:"r1" ~root:"evt"
            ~receiver:"base"
        with
        | Pte_hybrid.Executor.Deliver _ -> incr returned
        | _ -> ()
      done;
      let s = Transport.stats t in
      s.Transport.data_sends = n
      && s.Transport.delivered + s.Transport.gave_up = n
      && s.Transport.delivered = !returned
      && s.Transport.dups_suppressed >= 0
      && s.Transport.acks_sent = 0)

(* ---- satellite: the dedup-window forward-jump boundary ----

   The receiver's replay filter keeps a per-flow high-water mark plus a
   [dedup_window]-deep recent list; a seq arriving more than the window
   ahead of high — exactly what a >= dedup_window-frame loss burst
   produces, since dropped frames still consume link seqs — slides the
   window forward (high <- seq - window). The property: under any
   script of pass / drop / duplicate segments whose run lengths
   straddle the 64-frame boundary, every non-dropped send is delivered
   exactly once and every injected replay is suppressed — the slide
   never re-accepts a seq at or below the old high-water mark and
   never falsely rejects a genuinely new one. *)

let prop_dedup_forward_jump =
  let pp_seg (k, n) =
    Fmt.str "%s*%d"
      (match k with `Pass -> "pass" | `Drop -> "drop" | `Dup -> "dup")
      n
  in
  QCheck.Test.make
    ~name:"dedup window slide: exactly-once across >window loss bursts"
    ~count:80
    (QCheck.make
       ~print:(fun segs -> String.concat ";" (List.map pp_seg segs))
       QCheck.Gen.(
         list_size (int_range 1 8)
           (pair
              (oneofl [ `Pass; `Drop; `Dup ])
              (oneofl [ 1; 2; 63; 64; 65; 66; 80 ]))))
    (fun segs ->
      let script =
        List.concat_map (fun (k, n) -> List.init n (fun _ -> k)) segs
      in
      let star = mk_star () in
      let remaining = ref script in
      Link.set_injector (uplink star "r1")
        (Some
           (fun ~time:_ ~root:_ ->
             match !remaining with
             | [] -> Link.Pass
             | k :: rest ->
                 remaining := rest;
                 (match k with
                 | `Pass -> Link.Pass
                 | `Drop -> Link.Drop_frame
                 | `Dup -> Link.Duplicate_frame)));
      let t = Transport.create ~mode:`Bare ~rng:(Rng.create 11) star in
      let router = Transport.router t in
      let delivered = ref 0 in
      List.iteri
        (fun i _ ->
          match
            router ~time:(0.05 *. float_of_int i) ~sender:"r1" ~root:"evt"
              ~receiver:"base"
          with
          | Pte_hybrid.Executor.Deliver _ -> incr delivered
          | Pte_hybrid.Executor.Lose -> ()
          | _ -> QCheck.Test.fail_report "unexpected routing decision")
        script;
      let count k = List.length (List.filter (fun x -> x = k) script) in
      let s = Transport.stats t in
      !delivered = count `Pass + count `Dup
      && s.Transport.delivered = !delivered
      && s.Transport.dups_suppressed = count `Dup
      && s.Transport.data_sends = List.length script)

(* ---- satellite: duplicate-heavy fault plan leaves a bare trial's
        Table-I metrics untouched (the star.ml double-delivery fix) ---- *)

let duplicate_everything =
  let dup entity direction =
    Plan.packet ~entity ~direction ~occurrence:Plan.Every Plan.Duplicate
  in
  { Plan.empty with
    Plan.packet_faults =
      [
        dup "ventilator" Plan.Up; dup "ventilator" Plan.Down;
        dup "laser" Plan.Up; dup "laser" Plan.Down;
      ];
    node_faults = [];
  }

let test_duplicate_storm_regression () =
  let base =
    {
      Emulation.default with
      horizon = 300.0;
      seed = 21;
      loss = Pte_net.Loss.Perfect;
    }
  in
  let clean = Trial.run base in
  let stormy = Trial.run { base with Emulation.faults = duplicate_everything } in
  Alcotest.(check bool) "replays were injected" true
    (stormy.Trial.dups_suppressed > 0);
  Alcotest.(check int) "no replay reaches an automaton twice: emissions"
    clean.Trial.emissions stormy.Trial.emissions;
  Alcotest.(check int) "failures" clean.Trial.failures stormy.Trial.failures;
  Alcotest.(check int) "still zero violations" 0 stormy.Trial.failures;
  Alcotest.(check int) "evtToStop" clean.Trial.evt_to_stop
    stormy.Trial.evt_to_stop;
  Alcotest.(check int) "requests" clean.Trial.requests stormy.Trial.requests

(* ---- emulation: reliable transport rechecks Theorem 1 at build ---- *)

let test_build_rejects_unsafe_budget () =
  let slow =
    { Transport.default_config with Transport.base_rto = 2.0; cap = 2.0 }
  in
  (* worst case ~6 s >> the 2 s case-study slack: build must refuse *)
  match
    Emulation.build { Emulation.default with transport = `Reliable slow }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "a retry budget past the c1-c7 slack must be rejected"

let test_build_rejects_unsafe_schedule () =
  (* 12 pinned blind copies over the 4-link round: wcl = 2 * (13*0.12 +
     0.03) = 3.18 s >> the 2 s budget — build must refuse, whether the
     policy pins its own budget or inherits the Theorem-1 one *)
  let greedy =
    { Pte_sched.Synth.default_policy with Pte_sched.Synth.retries = Some 12 }
  in
  (match
     Emulation.build { Emulation.default with transport = `Scheduled greedy }
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "an over-budget schedule must be rejected at build");
  (* and the admitted default policy round-trips its schedule out *)
  let built =
    Emulation.build
      { Emulation.default with
        transport = `Scheduled Pte_sched.Synth.default_policy }
  in
  match Transport.schedule built.Emulation.transport with
  | Some sched ->
      let budget =
        Pte_core.Constraints.max_delay_budget Pte_core.Params.case_study
      in
      Alcotest.(check bool) "admitted schedule fits the Theorem-1 budget" true
        (Pte_sched.Schedule.worst_case_latency sched <= budget)
  | None -> Alcotest.fail "scheduled build must expose its schedule"

(* ---- satellite: total downlink blackout drives the supervisor into
        degraded-safe-mode and the plant settles all-safe ---- *)

let blackout_after t0 =
  let drop entity =
    Plan.packet ~window:{ Plan.after = t0; before = 1e9 } ~entity
      ~direction:Plan.Down ~occurrence:Plan.Every Plan.Drop
  in
  { Plan.empty with Plan.packet_faults = [ drop "ventilator"; drop "laser" ];
    node_faults = [] }

let test_degraded_blackout () =
  let params = Pte_core.Params.case_study in
  let dcfg = { Pte_tracheotomy.Degraded.k = 3; hold = 200.0 } in
  let config =
    {
      Emulation.default with
      horizon = 150.0;
      e_ton = 1e9;
      e_toff = 1e9;
      loss = Pte_net.Loss.Perfect;
      seed = 31;
      transport = `Reliable Transport.default_config;
      degraded = Some dcfg;
      (* every supervisor->remote frame vanishes once the emission is
         under way: no grants, cancels or aborts get through *)
      faults = blackout_after 26.0;
    }
  in
  let built = Emulation.build config in
  let engine = built.Emulation.engine in
  let laser = built.Emulation.laser in
  let handle =
    match built.Emulation.degraded with
    | Some h -> h
    | None -> Alcotest.fail "degraded mode was configured"
  in
  Pte_sim.Scenario.one_shot engine
    ~at:(params.Pte_core.Params.t_fb_min +. 2.0)
    ~automaton:laser ~armed_in:"Fall-Back"
    ~root:(Pte_core.Events.stim_request ~initializer_:laser);
  (* phase 1: the emission starts, the blackout bites, the supervisor's
     unacknowledged downlinks trip the watchdog within a few feedback
     rounds *)
  Pte_sim.Engine.run engine ~until:70.0;
  Alcotest.(check bool) "entered degraded-safe-mode" true
    (handle.Pte_tracheotomy.Degraded.entries >= 1);
  let entered_at =
    match List.rev handle.Pte_tracheotomy.Degraded.entered_at with
    | first :: _ -> first
    | [] -> Alcotest.fail "entry recorded"
  in
  Alcotest.(check bool)
    (Fmt.str "entry at %.1f s is after the blackout" entered_at)
    true
    (entered_at >= 26.0 && entered_at <= 70.0);
  (* phase 2: within T^max_wait + T^max_LS1 of the entry, the lease
     self-reset must have walked every entity back to a safe location *)
  let settle = entered_at +. Pte_core.Params.risky_dwell_bound params +. 1.0 in
  Pte_sim.Engine.run engine ~until:settle;
  let assert_safe name =
    let automaton = Pte_hybrid.System.find_exn built.Emulation.system name in
    let loc =
      Pte_hybrid.Automaton.location_exn automaton
        (Pte_sim.Engine.location_of engine name)
    in
    Alcotest.(check bool)
      (Fmt.str "%s safe in %s" name loc.Pte_hybrid.Location.name)
      true
      (loc.Pte_hybrid.Location.kind = Pte_hybrid.Location.Safe)
  in
  assert_safe laser;
  assert_safe built.Emulation.ventilator;
  (* phase 3: while degraded (hold = 200 s outlives the horizon) a new
     request must not win a lease — and the whole run stays violation
     free *)
  Pte_sim.Scenario.one_shot engine ~at:(settle +. 5.0) ~automaton:laser
    ~armed_in:"Fall-Back"
    ~root:(Pte_core.Events.stim_request ~initializer_:laser);
  let trace = Emulation.run built in
  Alcotest.(check int) "exactly the pre-blackout emission" 1
    (Pte_sim.Metrics.entries trace ~automaton:laser ~location:"Risky Core");
  let report =
    Pte_core.Monitor.analyze_system trace built.Emulation.system
      built.Emulation.spec ~horizon:config.Emulation.horizon
  in
  Alcotest.(check int) "no PTE violation despite the blackout" 0
    (Pte_core.Monitor.episodes report)

(* ---- boundary: the hold expiry rides the executor's timer queue,
        so release happens at exactly entered_at + hold — not at the
        next step-quantized poll — and the re-armed watchdog needs k
        fresh losses to trip again ---- *)

let test_degraded_hold_expiry_on_timer () =
  (* a hold deliberately off the dt grid: a per-step poll could only
     release at the next step boundary after it *)
  let hold = 15.003 in
  let config =
    {
      Emulation.default with
      horizon = 150.0;
      (* steady surgeon traffic: requests keep crossing the intact
         uplink, so the supervisor keeps answering into the blackout
         and the counter keeps moving before and after the hold *)
      e_ton = 3.0;
      e_toff = 5.0;
      loss = Pte_net.Loss.Perfect;
      seed = 33;
      transport = `Reliable Transport.default_config;
      degraded = Some { Pte_tracheotomy.Degraded.k = 2; hold };
      faults = blackout_after 20.0;
    }
  in
  let built = Emulation.build config in
  let handle =
    match built.Emulation.degraded with
    | Some h -> h
    | None -> Alcotest.fail "degraded mode was configured"
  in
  let trace = Emulation.run built in
  Alcotest.(check bool)
    (Fmt.str "re-tripped after re-arm (%d entries)"
       handle.Pte_tracheotomy.Degraded.entries)
    true
    (handle.Pte_tracheotomy.Degraded.entries >= 2);
  let entries = List.rev handle.Pte_tracheotomy.Degraded.entered_at in
  let exits =
    List.filter_map
      (fun (e : Pte_hybrid.Trace.entry) ->
        match e.Pte_hybrid.Trace.event with
        | Pte_hybrid.Trace.Note "degraded-safe-mode: exit" ->
            Some e.Pte_hybrid.Trace.time
        | _ -> None)
      trace
  in
  (* every exit lands at the first executor step at-or-after the
     matching entry + hold — never before it (the timer's due is the
     exact off-grid release instant; the executor drains it at the
     next step boundary, within one dt) *)
  List.iteri
    (fun i exit_at ->
      let release = List.nth entries i +. hold in
      Alcotest.(check bool)
        (Fmt.str "exit %d not before release (%.4f vs %.4f)" i exit_at release)
        true
        (exit_at >= release -. 1e-9);
      Alcotest.(check bool)
        (Fmt.str "exit %d within one step of release" i)
        true
        (exit_at <= release +. config.Emulation.dt +. 1e-9))
    exits;
  Alcotest.(check bool) "at least one full enter/exit cycle" true
    (List.length exits >= 1);
  (* the re-armed watchdog needed k fresh losses: the second entry
     sits strictly after the first release *)
  match entries with
  | e0 :: e1 :: _ ->
      Alcotest.(check bool) "second entry after the first release" true
        (e1 > e0 +. hold)
  | _ -> Alcotest.fail "two entries recorded"

let test_reset_vs_inflight_exchange () =
  (* a reset landing while an exchange is still unresolved: the loss
     that becomes known afterwards counts from zero — the reset never
     retroactively forgives it, nor does the exchange resurrect the
     pre-reset count *)
  let star = mk_star ~loss:(Loss.Bernoulli 1.0) ~seed:9 () in
  let exec, t =
    ev_harness ~star ~mode:(`Reliable Transport.default_config) ~rng_seed:10
      ~sender:"base" ~receiver:"r1" ()
  in
  List.iter
    (fun at ->
      Exec.run exec ~until:at;
      ignore (Exec.inject exec ~receiver:"base" ~root:"kick"))
    [ 0.0; 1.0 ];
  Exec.run exec ~until:7.0;
  Alcotest.(check int) "two losses known" 2
    (Transport.consecutive_losses t ~sender:"base");
  ignore (Exec.inject exec ~receiver:"base" ~root:"kick");
  Exec.run exec ~until:8.0;
  Alcotest.(check int) "third exchange still in flight" 2
    (Transport.consecutive_losses t ~sender:"base");
  Transport.reset_consecutive_losses t ~sender:"base";
  Alcotest.(check int) "reset while in flight" 0
    (Transport.consecutive_losses t ~sender:"base");
  Exec.run exec ~until:16.0;
  Alcotest.(check int) "the straddling loss counts from zero, not three" 1
    (Transport.consecutive_losses t ~sender:"base");
  Alcotest.(check int) "all three exchanges resolved" 3
    (Transport.stats t).Transport.gave_up

let suite =
  [
    ( "net.transport",
      [
        Alcotest.test_case "backoff schedule" `Quick test_rto_schedule;
        Alcotest.test_case "worst-case latency closed form" `Quick
          test_worst_case_latency;
        Alcotest.test_case "config validation" `Quick test_validate;
        Alcotest.test_case "create rejects ill-formed configs" `Quick
          test_create_validates;
        Alcotest.test_case "bare mode suppresses injected duplicates" `Quick
          test_bare_dup_suppression;
        Alcotest.test_case "reliable mode recovers a 50% channel" `Quick
          test_reliable_recovers_losses;
        Alcotest.test_case "consecutive-loss counter" `Quick
          test_consecutive_losses_and_reset;
        Alcotest.test_case "ACK killer: delivery without feedback" `Quick
          test_ack_killer;
        Alcotest.test_case "ACK revokes the pending retransmission" `Quick
          test_ack_cancels_pending_retransmission;
        Alcotest.test_case "burst channel evolves between attempts" `Quick
          test_burst_evolves_between_attempts;
        Alcotest.test_case "scheduled mode delivers within its bound" `Quick
          test_scheduled_within_bound;
        Alcotest.test_case "scheduled admission depth rejects overflow" `Quick
          test_scheduled_admission_depth;
        Alcotest.test_case "scheduled spec parsing" `Quick
          test_scheduled_spec_parsing;
        QCheck_alcotest.to_alcotest prop_latency_within_bound;
        QCheck_alcotest.to_alcotest prop_bare_counter_invariants;
        QCheck_alcotest.to_alcotest prop_dedup_forward_jump;
      ] );
    ( "tracheotomy.transport",
      [
        Alcotest.test_case "duplicate storm leaves bare metrics unchanged"
          `Quick test_duplicate_storm_regression;
        Alcotest.test_case "build rejects unsafe retry budgets" `Quick
          test_build_rejects_unsafe_budget;
        Alcotest.test_case "build rejects unsafe schedules, admits defaults"
          `Quick test_build_rejects_unsafe_schedule;
        Alcotest.test_case "blackout -> degraded-safe-mode -> all-safe"
          `Slow test_degraded_blackout;
        Alcotest.test_case "hold expiry fires on the timer queue" `Slow
          test_degraded_hold_expiry_on_timer;
        Alcotest.test_case "counter reset vs an in-flight exchange" `Quick
          test_reset_vs_inflight_exchange;
      ] );
  ]
