(* Links and the sink-based star topology of Section II-B. *)

open Pte_net

let mk_star ?(loss = Loss.Perfect) () =
  Star.create ~base:"base" ~remotes:[ "r1"; "r2" ] ~loss_kind:loss
    ~rng:(Pte_util.Rng.create 1) ()

let test_link_delivery_and_delay () =
  let link =
    Link.create ~name:"l" ~direction:Link.Uplink
      ~loss:(Loss.create Loss.Perfect) ~delay_base:0.01 ~delay_jitter:0.02
      ~rng:(Pte_util.Rng.create 2) ()
  in
  for _ = 1 to 100 do
    match Link.send link ~time:5.0 ~src:"a" ~dst:"b" ~root:"evt" with
    | Link.Deliver { arrival; packet } ->
        let delay = arrival -. 5.0 in
        if delay < 0.01 -. 1e-9 || delay > 0.03 +. 1e-9 then
          Alcotest.failf "delay out of range: %g" delay;
        Alcotest.(check bool) "packet intact" true (Packet.intact packet)
    | Link.Deliver_dup _ -> Alcotest.fail "no injector, no duplicates"
    | Link.Drop _ -> Alcotest.fail "perfect link dropped"
  done;
  Alcotest.(check int) "stats sent" 100 (Link.stats link).Link_stats.sent;
  Alcotest.(check int) "stats delivered" 100 (Link.stats link).Link_stats.delivered

let test_link_loss_counted () =
  let link =
    Link.create ~name:"l" ~direction:Link.Downlink
      ~loss:(Loss.create (Loss.Bernoulli 1.0)) ~rng:(Pte_util.Rng.create 2) ()
  in
  (match Link.send link ~time:0.0 ~src:"a" ~dst:"b" ~root:"e" with
  | Link.Drop Loss.Lost_in_air -> ()
  | _ -> Alcotest.fail "expected loss");
  Alcotest.(check int) "lost counted" 1 (Link.stats link).Link_stats.lost

let test_link_corruption_discarded () =
  let kind = Loss.Corrupting { inner = Loss.Bernoulli 1.0; corrupt_fraction = 1.0 } in
  let link =
    Link.create ~name:"l" ~direction:Link.Downlink ~loss:(Loss.create kind)
      ~rng:(Pte_util.Rng.create 2) ()
  in
  (match Link.send link ~time:0.0 ~src:"a" ~dst:"b" ~root:"e" with
  | Link.Drop Loss.Corrupted -> ()
  | _ -> Alcotest.fail "expected CRC discard");
  Alcotest.(check int) "corrupted counted" 1
    (Link.stats link).Link_stats.corrupted

let test_star_topology () =
  let star = mk_star () in
  Alcotest.(check bool) "base is node" true (Star.is_node star "base");
  Alcotest.(check bool) "remote is node" true (Star.is_node star "r1");
  Alcotest.(check bool) "stranger is not" false (Star.is_node star "patient");
  Alcotest.(check bool) "uplink exists" true
    (Star.link_for star ~sender:"r1" ~receiver:"base" <> None);
  Alcotest.(check bool) "downlink exists" true
    (Star.link_for star ~sender:"base" ~receiver:"r2" <> None);
  Alcotest.(check bool) "no remote-remote link" true
    (Star.link_for star ~sender:"r1" ~receiver:"r2" = None)

let test_router_semantics () =
  let star = mk_star () in
  let router = Star.router star in
  (match router ~time:0.0 ~sender:"base" ~root:"e" ~receiver:"r1" with
  | Pte_hybrid.Executor.Deliver d when d >= 0.0 -> ()
  | _ -> Alcotest.fail "downlink should deliver");
  (* remote to remote: dropped and counted *)
  (match router ~time:0.0 ~sender:"r1" ~root:"e" ~receiver:"r2" with
  | Pte_hybrid.Executor.Lose -> ()
  | _ -> Alcotest.fail "no direct remote links");
  Alcotest.(check int) "drop counted" 1 star.Star.remote_to_remote_dropped;
  (* non-node participants are wired: instant, reliable *)
  match router ~time:0.0 ~sender:"patient" ~root:"e" ~receiver:"base" with
  | Pte_hybrid.Executor.Deliver 0.0 -> ()
  | _ -> Alcotest.fail "wired delivery expected"

let test_star_loss_applies () =
  let star = mk_star ~loss:(Loss.Bernoulli 1.0) () in
  let router = Star.router star in
  (match router ~time:0.0 ~sender:"base" ~root:"e" ~receiver:"r1" with
  | Pte_hybrid.Executor.Lose -> ()
  | _ -> Alcotest.fail "lossy link should lose");
  let stats = Star.total_stats star in
  Alcotest.(check int) "loss in stats" 1 stats.Link_stats.lost

let test_mac_retries_recover () =
  (* 50% i.i.d. loss: 3 retries push delivery to ~94% *)
  let link =
    Link.create ~name:"l" ~direction:Link.Downlink
      ~loss:(Loss.create ~seed:9 (Loss.Bernoulli 0.5))
      ~mac_retries:3 ~rng:(Pte_util.Rng.create 2) ()
  in
  let delivered = ref 0 in
  for _ = 1 to 2000 do
    match Link.send link ~time:0.0 ~src:"a" ~dst:"b" ~root:"e" with
    | Link.Deliver _ | Link.Deliver_dup _ -> incr delivered
    | Link.Drop _ -> ()
  done;
  let rate = Float.of_int !delivered /. 2000.0 in
  if rate < 0.90 || rate > 0.97 then
    Alcotest.failf "delivery rate with retries: %.3f (expected ~0.9375)" rate;
  Alcotest.(check bool) "retransmissions counted" true
    ((Link.stats link).Link_stats.retransmissions > 500)

let test_mac_retries_add_delay () =
  let link =
    Link.create ~name:"l" ~direction:Link.Downlink
      ~loss:(Loss.create (Loss.Adversarial (fun nth _ -> nth < 2)))
      ~mac_retries:3 ~delay_base:0.01 ~delay_jitter:0.0 ~retry_spacing:0.005
      ~rng:(Pte_util.Rng.create 2) ()
  in
  (* first two attempts lost, third delivered: delay = base + 2 spacings *)
  match Link.send link ~time:1.0 ~src:"a" ~dst:"b" ~root:"e" with
  | Link.Deliver { arrival; _ } ->
      Alcotest.(check bool)
        (Fmt.str "arrival %.4f" arrival)
        true
        (Float.abs (arrival -. 1.02) < 1e-9)
  | Link.Deliver_dup _ | Link.Drop _ ->
      Alcotest.fail "expected delivery on third attempt"

let test_adversarial_blackout_defeats_retries () =
  (* a root-targeted blackout loses every attempt, retries or not *)
  let link =
    Link.create ~name:"l" ~direction:Link.Uplink
      ~loss:(Loss.create (Loss.Adversarial (fun _ root -> root = "evt_cancel")))
      ~mac_retries:5 ~rng:(Pte_util.Rng.create 2) ()
  in
  (match Link.send link ~time:0.0 ~src:"a" ~dst:"b" ~root:"evt_cancel" with
  | Link.Drop _ -> ()
  | Link.Deliver _ | Link.Deliver_dup _ -> Alcotest.fail "blackout must hold");
  match Link.send link ~time:0.0 ~src:"a" ~dst:"b" ~root:"evt_other" with
  | Link.Deliver _ -> ()
  | Link.Deliver_dup _ | Link.Drop _ ->
      Alcotest.fail "other roots unaffected"

let test_total_stats_merge () =
  let star = mk_star () in
  let router = Star.router star in
  ignore (router ~time:0.0 ~sender:"base" ~root:"e" ~receiver:"r1");
  ignore (router ~time:0.0 ~sender:"r2" ~root:"e" ~receiver:"base");
  let stats = Star.total_stats star in
  Alcotest.(check int) "two sends" 2 stats.Link_stats.sent;
  Alcotest.(check int) "two deliveries" 2 stats.Link_stats.delivered

(* qcheck property: whatever fraction of losses arrives as corrupted
   frames, the receiver-side CRC rejects every one of them end-to-end —
   a corrupt packet is never handed up as a delivery *)
let prop_corrupted_frames_always_rejected =
  QCheck.Test.make ~name:"corrupted frames always rejected by the CRC"
    ~count:30
    QCheck.(
      make
        ~print:(fun (p, f, seed) -> Printf.sprintf "loss=%.2f corrupt=%.2f seed=%d" p f seed)
        Gen.(triple (float_bound_inclusive 1.0) (float_bound_inclusive 1.0) int))
    (fun (loss_p, corrupt_fraction, seed) ->
      let kind =
        Loss.Corrupting { inner = Loss.Bernoulli loss_p; corrupt_fraction }
      in
      let link =
        Link.create ~name:"l" ~direction:Link.Uplink ~loss:(Loss.create ~seed kind)
          ~rng:(Pte_util.Rng.create (seed + 1)) ()
      in
      let crc_drops = ref 0 in
      for i = 1 to 400 do
        match
          Link.send link ~time:(Float.of_int i) ~src:"a" ~dst:"b" ~root:"e"
        with
        | Link.Deliver { packet; _ } ->
            if not (Packet.intact packet) then
              QCheck.Test.fail_reportf "corrupt packet delivered at send %d" i
        | Link.Deliver_dup _ ->
            QCheck.Test.fail_reportf "no injector, no duplicates"
        | Link.Drop Loss.Corrupted -> incr crc_drops
        | Link.Drop _ -> ()
      done;
      (Link.stats link).Link_stats.corrupted = !crc_drops)

let suite =
  [
    ( "net.link+star",
      [
        Alcotest.test_case "delivery and delay" `Quick test_link_delivery_and_delay;
        Alcotest.test_case "loss counted" `Quick test_link_loss_counted;
        Alcotest.test_case "corruption discarded" `Quick
          test_link_corruption_discarded;
        Alcotest.test_case "star topology" `Quick test_star_topology;
        Alcotest.test_case "router semantics" `Quick test_router_semantics;
        Alcotest.test_case "star loss applies" `Quick test_star_loss_applies;
        Alcotest.test_case "mac retries recover" `Quick test_mac_retries_recover;
        Alcotest.test_case "mac retries add delay" `Quick
          test_mac_retries_add_delay;
        Alcotest.test_case "blackout defeats retries" `Quick
          test_adversarial_blackout_defeats_retries;
        Alcotest.test_case "stats merge" `Quick test_total_stats_merge;
        QCheck_alcotest.to_alcotest prop_corrupted_frames_always_rejected;
      ] );
  ]
