(* Descriptive statistics used by trial reports. *)

open Pte_util

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let test_mean () =
  Alcotest.(check bool) "mean" true (feq (Stats.mean [ 1.0; 2.0; 3.0 ]) 2.0);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.mean []))

let test_variance_stddev () =
  let xs = [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  (* sample variance of this classic set is 32/7 *)
  Alcotest.(check bool) "variance" true
    (feq ~eps:1e-9 (Stats.variance xs) (32.0 /. 7.0));
  Alcotest.(check bool) "stddev" true
    (feq ~eps:1e-9 (Stats.stddev xs) (sqrt (32.0 /. 7.0)));
  Alcotest.(check bool) "singleton variance" true (feq (Stats.variance [ 5.0 ]) 0.0)

let test_min_max_sum () =
  let xs = [ 3.0; -1.0; 7.0 ] in
  Alcotest.(check bool) "min" true (feq (Stats.minimum xs) (-1.0));
  Alcotest.(check bool) "max" true (feq (Stats.maximum xs) 7.0);
  Alcotest.(check bool) "sum" true (feq (Stats.sum xs) 9.0)

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check bool) "p0" true (feq (Stats.percentile xs 0.0) 1.0);
  Alcotest.(check bool) "p50" true (feq (Stats.percentile xs 50.0) 3.0);
  Alcotest.(check bool) "p100" true (feq (Stats.percentile xs 100.0) 5.0);
  Alcotest.(check bool) "p25" true (feq (Stats.percentile xs 25.0) 2.0)

let test_online_matches_batch () =
  let xs = List.init 100 (fun i -> sin (Float.of_int i) *. 10.0) in
  let online = Stats.Online.create () in
  List.iter (Stats.Online.add online) xs;
  Alcotest.(check int) "count" 100 (Stats.Online.count online);
  Alcotest.(check bool) "mean" true
    (feq ~eps:1e-9 (Stats.Online.mean online) (Stats.mean xs));
  Alcotest.(check bool) "variance" true
    (feq ~eps:1e-6 (Stats.Online.variance online) (Stats.variance xs));
  Alcotest.(check bool) "min" true
    (feq (Stats.Online.min online) (Stats.minimum xs));
  Alcotest.(check bool) "max" true
    (feq (Stats.Online.max online) (Stats.maximum xs))

let test_normal_quantile () =
  (* classic two-sided critical values *)
  Alcotest.(check bool) "z(0.975)" true
    (feq ~eps:1e-6 (Stats.normal_quantile 0.975) 1.959964);
  Alcotest.(check bool) "z(0.95)" true
    (feq ~eps:1e-6 (Stats.normal_quantile 0.95) 1.6448536);
  Alcotest.(check bool) "median" true (feq (Stats.normal_quantile 0.5) 0.0);
  Alcotest.(check bool) "symmetry" true
    (feq ~eps:1e-9
       (Stats.normal_quantile 0.975)
       (-.Stats.normal_quantile 0.025));
  Alcotest.(check bool) "rejects 0" true
    (match Stats.normal_quantile 0.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_wilson () =
  (* 0 hits in 20 trials at z = 1.96: lo = 0, hi = z^2/(n + z^2) — the
     non-degenerate upper end the campaign summaries rely on *)
  let z = 1.959964 in
  let lo, hi = Stats.wilson ~n:20 ~hits:0 () in
  Alcotest.(check bool) "0/20 lo" true (feq ~eps:1e-6 lo 0.0);
  Alcotest.(check bool) "0/20 hi" true
    (feq ~eps:1e-4 hi ((z *. z) /. (20.0 +. (z *. z))));
  (* all hits mirror zero hits *)
  let lo', hi' = Stats.wilson ~n:20 ~hits:20 () in
  Alcotest.(check bool) "20/20 hi" true (feq ~eps:1e-6 hi' 1.0);
  Alcotest.(check bool) "20/20 lo mirrors 0/20 hi" true
    (feq ~eps:1e-6 lo' (1.0 -. hi));
  (* interval brackets the point estimate and shrinks with n *)
  let lo10, hi10 = Stats.wilson ~n:100 ~hits:10 () in
  Alcotest.(check bool) "brackets p-hat" true (lo10 < 0.1 && 0.1 < hi10);
  let _, hi1000 = Stats.wilson ~n:1000 ~hits:100 () in
  Alcotest.(check bool) "shrinks with n" true (hi1000 < hi10);
  (* degenerate sample *)
  let lo0, hi0 = Stats.wilson ~n:0 ~hits:0 () in
  Alcotest.(check bool) "n = 0 vacuous" true (feq lo0 0.0 && feq hi0 1.0)

let test_wilson_upper () =
  (* one-sided 95% upper bound for 0/20 uses z(0.95), tighter than the
     two-sided interval's upper end *)
  let up = Stats.wilson_upper ~n:20 ~hits:0 () in
  let z = 1.6448536 in
  Alcotest.(check bool) "0/20 one-sided" true
    (feq ~eps:1e-4 up ((z *. z) /. (20.0 +. (z *. z))));
  let _, hi_two_sided = Stats.wilson ~n:20 ~hits:0 () in
  Alcotest.(check bool) "tighter than two-sided" true (up < hi_two_sided);
  Alcotest.(check bool) "higher confidence widens" true
    (Stats.wilson_upper ~confidence:0.99 ~n:20 ~hits:0 () > up)

let prop_wilson_covers_p_hat =
  QCheck.Test.make ~name:"wilson interval always brackets hits/n" ~count:200
    QCheck.(
      make
        ~print:(fun (n, h) -> Printf.sprintf "(%d, %d)" n h)
        Gen.(
          int_range 1 1000 >>= fun n ->
          int_range 0 n >>= fun h -> return (n, h)))
    (fun (n, hits) ->
      (* the boundary cases (0 or n hits) are exact only in real
         arithmetic; allow float slop there *)
      let eps = 1e-9 in
      let lo, hi = Stats.wilson ~n ~hits () in
      let p = float_of_int hits /. float_of_int n in
      -.eps <= lo
      && lo <= p +. eps
      && p <= hi +. eps
      && hi <= 1.0 +. eps
      && Stats.wilson_upper ~n ~hits () >= p -. eps)

let prop_online_mean =
  QCheck.Test.make ~name:"online mean = batch mean" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_bound_exclusive 100.0))
    (fun xs ->
      let online = Stats.Online.create () in
      List.iter (Stats.Online.add online) xs;
      Float.abs (Stats.Online.mean online -. Stats.mean xs) < 1e-6)

let suite =
  [
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "variance/stddev" `Quick test_variance_stddev;
        Alcotest.test_case "min/max/sum" `Quick test_min_max_sum;
        Alcotest.test_case "percentile" `Quick test_percentile;
        Alcotest.test_case "online = batch" `Quick test_online_matches_batch;
        Alcotest.test_case "normal quantile" `Quick test_normal_quantile;
        Alcotest.test_case "wilson interval" `Quick test_wilson;
        Alcotest.test_case "wilson one-sided upper" `Quick test_wilson_upper;
        QCheck_alcotest.to_alcotest prop_wilson_covers_p_hat;
        QCheck_alcotest.to_alcotest prop_online_mean;
      ] );
  ]
