(* pte_lint: every shipped system lints clean; every diagnostic code has
   a minimal triggering and non-triggering fixture; the linter is total
   and deterministic on random automata. *)

open Pte_hybrid
module Lint = Pte_lint.Lint
module Diagnostic = Pte_lint.Diagnostic

(* ---- fixture helpers ---- *)

let loc ?kind ?invariant ?flow name = Location.make ?kind ?invariant ?flow name

let edge ?guard ?reset ?label ?urgency src dst =
  Edge.make ?guard ?reset ?label ?urgency ~src ~dst ()

let auto ?(vars = []) ?(initial_values = []) ~locations ~edges ~init name =
  Automaton.make ~name ~vars ~locations ~edges ~initial_location:init
    ~initial_values ()

let has code diags =
  List.exists (fun (d : Diagnostic.t) -> String.equal d.Diagnostic.code code) diags

let check_fixture ~code ~positive ~negative () =
  Alcotest.(check bool)
    (code ^ " triggers on its positive fixture")
    true (has code positive);
  Alcotest.(check bool)
    (code ^ " silent on its negative fixture")
    false (has code negative)

(* ---- per-code fixtures ---- *)

let star = Some { Pte_lint.Sync.base = "S"; remotes = [ "A" ] }

let lint ?(config = Lint.default_config) automata =
  Lint.lint_system ~config (System.make ~name:"fixture" automata)

(* L001: orphan send / declared-observable send *)
let l001 =
  let sender roots_observable =
    let a =
      auto ~locations:[ loc "I" ]
        ~edges:[ edge ~label:(Label.Send "ping") "I" "I" ]
        ~init:"I" "A"
    in
    lint
      ~config:{ Lint.default_config with observable_roots = roots_observable }
      [ a ]
  in
  check_fixture ~code:"L001" ~positive:(sender []) ~negative:(sender [ "ping" ])

(* L002: orphan receive / stim_-prefixed environment stimulus *)
let l002 =
  let receiver root =
    lint
      [
        auto ~locations:[ loc "I" ]
          ~edges:[ edge ~label:(Label.Recv root) "I" "I" ]
          ~init:"I" "A";
      ]
  in
  check_fixture ~code:"L002" ~positive:(receiver "pong")
    ~negative:(receiver "stim_pong")

(* L003: reliable receive over the lossy star / lossy receive is fine *)
let l003_system recv_label =
  let s =
    auto ~locations:[ loc "I" ]
      ~edges:[ edge ~label:(Label.Send "grant") "I" "I" ]
      ~init:"I" "S"
  in
  let a =
    auto ~locations:[ loc "J" ]
      ~edges:[ edge ~label:(recv_label "grant") "J" "J" ]
      ~init:"J" "A"
  in
  lint ~config:{ Lint.default_config with topology = star } [ s; a ]

let l003 =
  check_fixture ~code:"L003"
    ~positive:(l003_system (fun r -> Label.Recv r))
    ~negative:(l003_system (fun r -> Label.Recv_lossy r))

(* L004: lossy receive though every sender is wired / reliable is right *)
let l004_system recv_label =
  let w =
    auto ~locations:[ loc "I" ]
      ~edges:[ edge ~label:(Label.Send "data") "I" "I" ]
      ~init:"I" "W"
  in
  let a =
    auto ~locations:[ loc "J" ]
      ~edges:[ edge ~label:(recv_label "data") "J" "J" ]
      ~init:"J" "A"
  in
  lint ~config:{ Lint.default_config with topology = star } [ w; a ]

let l004 =
  check_fixture ~code:"L004"
    ~positive:(l004_system (fun r -> Label.Recv_lossy r))
    ~negative:(l004_system (fun r -> Label.Recv r))

(* L005: only a remote-to-remote path / base also sends *)
let l005_system ~base_sends =
  let star = Some { Pte_lint.Sync.base = "S"; remotes = [ "A"; "B" ] } in
  let sender name =
    auto ~locations:[ loc "I" ]
      ~edges:[ edge ~label:(Label.Send "x2x") "I" "I" ]
      ~init:"I" name
  in
  let b =
    auto ~locations:[ loc "J" ]
      ~edges:[ edge ~label:(Label.Recv_lossy "x2x") "J" "J" ]
      ~init:"J" "B"
  in
  lint
    ~config:{ Lint.default_config with topology = star }
    (if base_sends then [ sender "A"; sender "S"; b ] else [ sender "A"; b ])

let l005 =
  check_fixture ~code:"L005" ~positive:(l005_system ~base_sends:false)
    ~negative:(l005_system ~base_sends:true)

(* L010: unreachable location / wired in *)
let l010_system ~wired =
  lint
    [
      auto
        ~locations:[ loc "A"; loc "B"; loc "C" ]
        ~edges:
          (edge "A" "B" :: (if wired then [ edge "B" "C" ] else []))
        ~init:"A" "M";
    ]

let l010 =
  check_fixture ~code:"L010" ~positive:(l010_system ~wired:false)
    ~negative:(l010_system ~wired:true)

(* L011: guard incompatible with the source invariant / satisfiable *)
let l011_system bound =
  lint
    [
      auto ~vars:[ "c" ]
        ~locations:[ loc ~invariant:[ Guard.atom "c" Guard.Le 5.0 ] "A" ]
        ~edges:[ edge ~guard:[ Guard.atom "c" Guard.Ge bound ] "A" "A" ]
        ~init:"A" "M";
    ]

let l011 =
  check_fixture ~code:"L011" ~positive:(l011_system 10.0)
    ~negative:(l011_system 3.0)

(* L020: risky location with only receive egress / clock-forced expiry *)
let l020_system ~expiry =
  let risky_flow = Flow.clocks [ "c" ] in
  lint
    [
      auto ~vars:[ "c" ]
        ~locations:[ loc "S"; loc ~kind:Location.Risky ~flow:risky_flow "R" ]
        ~edges:
          (edge "S" "R"
          :: edge ~label:(Label.Recv "stim_back") "R" "S"
          ::
          (if expiry then
             [ edge ~guard:[ Guard.atom "c" Guard.Ge 2.0 ] "R" "S" ]
           else []))
        ~init:"S" "M";
    ]

let l020 =
  check_fixture ~code:"L020" ~positive:(l020_system ~expiry:false)
    ~negative:(l020_system ~expiry:true)

(* L030: undeclared variable / declared *)
let l030_system vars =
  lint
    [
      auto ~vars
        ~locations:[ loc "A" ]
        ~edges:[ edge ~guard:[ Guard.atom "z" Guard.Ge 1.0 ] "A" "A" ]
        ~init:"A" "M";
    ]

let l030 =
  check_fixture ~code:"L030" ~positive:(l030_system []) ~negative:(l030_system [ "z" ])

(* L031: read but never written / carries an initial value *)
let l031_system initial_values =
  lint
    [
      auto ~vars:[ "w" ] ~initial_values
        ~locations:[ loc "A" ]
        ~edges:[ edge ~guard:[ Guard.atom "w" Guard.Ge 0.5 ] "A" "A" ]
        ~init:"A" "M";
    ]

let l031 =
  check_fixture ~code:"L031" ~positive:(l031_system [])
    ~negative:(l031_system [ ("w", 0.0) ])

(* L032: reset never read / read by a guard *)
let l032_system ~read =
  lint
    [
      auto ~vars:[ "u" ]
        ~locations:[ loc "A" ]
        ~edges:
          [
            edge ~reset:(Reset.set "u" 1.0)
              ~guard:(if read then [ Guard.atom "u" Guard.Le 9.0 ] else [])
              "A" "A";
          ]
        ~init:"A" "M";
    ]

let l032 =
  check_fixture ~code:"L032" ~positive:(l032_system ~read:false)
    ~negative:(l032_system ~read:true)

(* L033: declared never used / not declared *)
let l033_system vars =
  lint [ auto ~vars ~locations:[ loc "A" ] ~edges:[] ~init:"A" "M" ]

let l033 =
  check_fixture ~code:"L033" ~positive:(l033_system [ "d" ]) ~negative:(l033_system [])

(* L040: expirable invariant without egress / boundary egress *)
let l040_system ~egress =
  lint
    [
      auto ~vars:[ "c" ]
        ~locations:
          (loc ~invariant:[ Guard.atom "c" Guard.Le 5.0 ]
             ~flow:(Flow.clocks [ "c" ]) "A"
          :: (if egress then [ loc "End" ] else []))
        ~edges:
          (if egress then
             [ edge ~guard:[ Guard.atom "c" Guard.Ge 5.0 ] "A" "End" ]
           else [])
        ~init:"A" "M";
    ]

let l040 =
  check_fixture ~code:"L040" ~positive:(l040_system ~egress:false)
    ~negative:(l040_system ~egress:true)

(* L041: untimed spontaneous cycle / timed by a clock lower bound *)
let l041_system ~timed =
  let guard = if timed then [ Guard.atom "c" Guard.Ge 1.0 ] else [] in
  lint
    [
      auto ~vars:[ "c" ]
        ~locations:[ loc ~flow:(Flow.clocks [ "c" ]) "A"; loc ~flow:(Flow.clocks [ "c" ]) "B" ]
        ~edges:
          [
            edge ~guard ~reset:(Reset.set "c" 0.0) "A" "B";
            edge ~guard ~reset:(Reset.set "c" 0.0) "B" "A";
          ]
        ~init:"A" "M";
    ]

let l041 =
  check_fixture ~code:"L041" ~positive:(l041_system ~timed:false)
    ~negative:(l041_system ~timed:true)

(* ---- shipped systems lint clean ---- *)

let star_of params =
  Some
    {
      Pte_lint.Sync.base = params.Pte_core.Params.supervisor;
      remotes = Pte_core.Pattern.remotes params;
    }

let synthesized n =
  Pte_core.Synthesis.synthesize_exn
    (Pte_core.Synthesis.default_requirements
       ~entity_names:(List.init n (fun i -> Fmt.str "entity%d" (i + 1)))
       ~safeguards:
         (List.init (n - 1) (fun _ ->
              { Pte_core.Params.enter_risky_min = 2.0; exit_safe_min = 1.0 })))

let check_clean name config system () =
  let diags = Lint.lint_system ~config system in
  Alcotest.(check int)
    (name ^ " lints clean")
    0 (List.length diags)

let pattern_clean n () =
  let params = if n = 2 then Pte_core.Params.case_study else synthesized n in
  check_clean
    (Fmt.str "pattern N=%d" n)
    { Lint.default_config with topology = star_of params }
    (Pte_core.Pattern.system params)
    ()

let tracheotomy_clean () =
  let params = Pte_core.Params.case_study in
  check_clean "tracheotomy"
    {
      Lint.default_config with
      topology = star_of params;
      observable_roots = [ "evtVPumpIn"; "evtVPumpOut" ];
    }
    (System.make ~name:"laser-tracheotomy"
       [
         Pte_core.Pattern.supervisor params;
         Pte_tracheotomy.Ventilator.participant params;
         Pte_core.Pattern.initializer_ params;
         Pte_tracheotomy.Patient.automaton;
       ])
    ()

let ventilator_standalone_clean () =
  check_clean "ventilator stand-alone"
    { Lint.default_config with
      observable_roots = [ "evtVPumpIn"; "evtVPumpOut" ] }
    (System.make ~name:"vent" [ Pte_tracheotomy.Ventilator.stand_alone ])
    ()

let multi_clean ~n ~initiators () =
  let params = if n = 2 then Pte_core.Params.case_study else synthesized n in
  check_clean
    (Fmt.str "multi N=%d" n)
    { Lint.default_config with topology = star_of params }
    (Pte_core.Multi.system { Pte_core.Multi.params; initiators })
    ()

let without_lease_flagged () =
  let params = Pte_core.Params.case_study in
  let diags =
    Lint.lint_system
      ~config:{ Lint.default_config with topology = star_of params }
      (Pte_core.Pattern.system ~lease:false params)
  in
  Alcotest.(check bool) "L020 on without-lease baseline" true (has "L020" diags);
  Alcotest.(check bool) "errors present" true (Lint.has_errors diags)

(* ---- totality and determinism on random automata ---- *)

let gen_automaton =
  let open QCheck.Gen in
  let vars = [ "x"; "y"; "c" ] in
  let var = oneofl vars in
  let cmp = oneofl [ Guard.Lt; Guard.Le; Guard.Gt; Guard.Ge; Guard.Eq ] in
  let atom =
    map3 (fun v c b -> Guard.atom v c b) var cmp (float_range (-5.0) 10.0)
  in
  let guard = list_size (int_range 0 2) atom in
  let names = [ "A"; "B"; "C"; "D" ] in
  let root = oneofl [ "e1"; "e2"; "stim_go" ] in
  let label =
    oneof
      [
        return None;
        map (fun r -> Some (Label.Send r)) root;
        map (fun r -> Some (Label.Recv r)) root;
        map (fun r -> Some (Label.Recv_lossy r)) root;
        map (fun r -> Some (Label.Internal r)) root;
      ]
  in
  let assignment =
    oneof
      [
        map (fun c -> Reset.Set_const c) (float_range (-2.0) 2.0);
        map (fun c -> Reset.Add_const c) (float_range (-2.0) 2.0);
        map (fun v -> Reset.Copy v) var;
      ]
  in
  let reset = list_size (int_range 0 2) (pair var assignment) in
  let flow =
    let rates =
      list_size (int_range 0 2) (pair var (float_range (-2.0) 2.0))
    in
    oneof
      [
        map (fun r -> Flow.Rates r) rates;
        return (Flow.Ode (fun _ _ -> [ ("x", 1.0) ]));
      ]
  in
  let location name =
    map3
      (fun kind invariant flow -> Location.make ~kind ~invariant ~flow name)
      (oneofl [ Location.Safe; Location.Risky ])
      guard flow
  in
  let edge =
    map3
      (fun (src, dst) (guard, reset) (label, urgency) ->
        Edge.make ~guard ~reset ?label ~urgency ~src ~dst ())
      (pair (oneofl names) (oneofl names))
      (pair guard reset)
      (pair label (oneofl [ Edge.Eager; Edge.Delayed ]))
  in
  let* locations = flatten_l (List.map location names) in
  let* edges = list_size (int_range 0 6) edge in
  let* initial_values =
    list_size (int_range 0 2) (pair var (float_range (-1.0) 1.0))
  in
  return
    (Automaton.make ~name:"rand" ~vars ~locations ~edges ~initial_location:"A"
       ~initial_values ())

let arb_automaton = QCheck.make ~print:(Fmt.str "%a" Automaton.pp) gen_automaton

let prop_total =
  QCheck.Test.make ~name:"linter total on random automata" ~count:300
    arb_automaton (fun a ->
      let _ = Lint.lint_automaton a in
      let _ =
        Lint.lint_system
          ~config:
            { Lint.default_config with
              topology = Some { Pte_lint.Sync.base = "S"; remotes = [ "rand" ] }
            }
          (System.make ~name:"rand-sys" [ a ])
      in
      true)

let prop_deterministic =
  QCheck.Test.make ~name:"linter deterministic on random automata" ~count:150
    arb_automaton (fun a ->
      let run () = Lint.lint_automaton a in
      run () = run ())

let fixed_system_deterministic () =
  let params = Pte_core.Params.case_study in
  let config = { Lint.default_config with topology = star_of params } in
  let system = Pte_core.Pattern.system ~lease:false params in
  let a = Lint.lint_system ~config system in
  let b = Lint.lint_system ~config system in
  Alcotest.(check bool) "same diagnostics" true (a = b);
  Alcotest.(check bool)
    "sorted by Diagnostic.compare" true
    (List.sort Diagnostic.compare a = a)

(* Wellformed stays the single source of truth for L040/L041: the lifted
   diagnostics agree with a direct Wellformed.check call. *)
let wellformed_shim_agrees () =
  let a =
    auto ~vars:[ "c" ]
      ~locations:
        [ loc ~invariant:[ Guard.atom "c" Guard.Le 5.0 ]
            ~flow:(Flow.clocks [ "c" ]) "A" ]
      ~edges:[] ~init:"A" "M"
  in
  let lifted =
    List.filter
      (fun (d : Diagnostic.t) ->
        String.equal d.Diagnostic.code "L040"
        || String.equal d.Diagnostic.code "L041")
      (Lint.lint_automaton a)
  in
  Alcotest.(check int)
    "as many lifted diagnostics as Wellformed issues"
    (List.length (Wellformed.check a))
    (List.length lifted)

let registry_covers_fixture_codes () =
  List.iter
    (fun code ->
      match Diagnostic.find_info code with
      | Some _ -> ()
      | None -> Alcotest.failf "code %s missing from registry" code)
    [ "L001"; "L002"; "L003"; "L004"; "L005"; "L010"; "L011"; "L020";
      "L030"; "L031"; "L032"; "L033"; "L040"; "L041" ]

let suite =
  [
    ( "lint.fixtures",
      [
        Alcotest.test_case "L001 orphan send" `Quick l001;
        Alcotest.test_case "L002 orphan receive" `Quick l002;
        Alcotest.test_case "L003 reliable over lossy star" `Quick l003;
        Alcotest.test_case "L004 lossy over wired path" `Quick l004;
        Alcotest.test_case "L005 remote-to-remote only" `Quick l005;
        Alcotest.test_case "L010 unreachable location" `Quick l010;
        Alcotest.test_case "L011 dead edge" `Quick l011;
        Alcotest.test_case "L020 risky without self-reset" `Quick l020;
        Alcotest.test_case "L030 undeclared variable" `Quick l030;
        Alcotest.test_case "L031 read never written" `Quick l031;
        Alcotest.test_case "L032 reset never read" `Quick l032;
        Alcotest.test_case "L033 declared never used" `Quick l033;
        Alcotest.test_case "L040 time-block lifted" `Quick l040;
        Alcotest.test_case "L041 zeno lifted" `Quick l041;
        Alcotest.test_case "registry covers all codes" `Quick
          registry_covers_fixture_codes;
      ] );
    ( "lint.shipped",
      [
        Alcotest.test_case "pattern N=2 clean" `Quick (pattern_clean 2);
        Alcotest.test_case "pattern N=3 clean" `Quick (pattern_clean 3);
        Alcotest.test_case "pattern N=4 clean" `Quick (pattern_clean 4);
        Alcotest.test_case "tracheotomy clean" `Quick tracheotomy_clean;
        Alcotest.test_case "ventilator stand-alone clean" `Quick
          ventilator_standalone_clean;
        Alcotest.test_case "multi N=2 clean" `Quick
          (multi_clean ~n:2 ~initiators:[ 1; 2 ]);
        Alcotest.test_case "multi N=3 clean" `Quick
          (multi_clean ~n:3 ~initiators:[ 1; 3 ]);
        Alcotest.test_case "without-lease flagged" `Quick without_lease_flagged;
      ] );
    ( "lint.robustness",
      [
        QCheck_alcotest.to_alcotest prop_total;
        QCheck_alcotest.to_alcotest prop_deterministic;
        Alcotest.test_case "fixed system deterministic + sorted" `Quick
          fixed_system_deterministic;
        Alcotest.test_case "wellformed shim agrees" `Quick
          wellformed_shim_agrees;
      ] );
  ]
