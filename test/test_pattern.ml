(* The design-pattern automata builders: structural properties, event
   wiring between roles, lease ablation. *)

open Pte_core
open Pte_hybrid

let p = Params.case_study

let test_all_validate () =
  List.iter
    (fun a ->
      match Automaton.validate a with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "%s invalid: %s" a.Automaton.name (String.concat "; " e))
    [
      Pattern.supervisor p;
      Pattern.initializer_ p;
      Pattern.participant p ~index:1;
      Pattern.initializer_ ~lease:false p;
      Pattern.participant ~lease:false p ~index:1;
    ]

let test_system_validates () =
  match System.validate (Pattern.system p) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "system invalid: %s" (String.concat "; " e)

let test_supervisor_locations () =
  let s = Pattern.supervisor p in
  let names = Automaton.location_names s in
  (* Fall-Back + 4 locations per remote entity (grant/lease/send-abort/
     abort) + 2 cancel-chain locations per participant *)
  Alcotest.(check int) "location count" (1 + (4 * 2) + 2) (List.length names);
  List.iter
    (fun required ->
      if not (List.mem required names) then Alcotest.failf "missing %S" required)
    [ "Fall-Back"; "Lease ventilator"; "Lease laser"; "Cancel ventilator";
      "Abort laser" ]

let test_supervisor_all_safe () =
  (* the paper does not partition ξ0's locations; all are safe *)
  let s = Pattern.supervisor p in
  Alcotest.(check (list string)) "no risky" [] (Automaton.risky_locations s)

let test_roles_risky_sets () =
  let init = Pattern.initializer_ p in
  Alcotest.(check bool) "Risky Core risky" true (Automaton.is_risky init "Risky Core");
  Alcotest.(check bool) "Exiting 1 risky" true (Automaton.is_risky init "Exiting 1");
  Alcotest.(check bool) "Exiting 2 safe" false (Automaton.is_risky init "Exiting 2");
  Alcotest.(check bool) "Entering safe" false (Automaton.is_risky init "Entering");
  Alcotest.(check bool) "Fall-Back safe" false (Automaton.is_risky init "Fall-Back");
  let part = Pattern.participant p ~index:1 in
  Alcotest.(check bool) "participant Risky Core" true
    (Automaton.is_risky part "Risky Core");
  Alcotest.(check bool) "participant Exiting 1" true
    (Automaton.is_risky part "Exiting 1");
  Alcotest.(check bool) "participant L0 safe" false (Automaton.is_risky part "L0")

let test_event_wiring () =
  (* every lossy root listened to by a role is sent by another role *)
  let system = Pattern.system p in
  let sent =
    List.fold_left
      (fun acc a -> Var.Set.union acc (Automaton.emitted_roots a))
      Var.Set.empty system.System.automata
  in
  List.iter
    (fun (a : Automaton.t) ->
      List.iter
        (fun (e : Edge.t) ->
          match e.Edge.label with
          | Some (Label.Recv_lossy root) ->
              if not (Var.Set.mem root sent) then
                Alcotest.failf "%s listens on %s which nobody sends"
                  a.Automaton.name root
          | _ -> ())
        a.Automaton.edges)
    system.System.automata

let test_stimuli_are_reliable_receives () =
  (* the surgeon's stimuli are local, not wireless: plain ? prefix *)
  let init = Pattern.initializer_ p in
  let stim_roots =
    List.filter_map
      (fun (e : Edge.t) ->
        match e.Edge.label with
        | Some (Label.Recv r) -> Some r
        | _ -> None)
      init.Automaton.edges
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "stimuli"
    [ Events.stim_cancel ~initializer_:"laser";
      Events.stim_request ~initializer_:"laser" ]
    stim_roots

let test_lease_ablation () =
  let with_lease = Pattern.initializer_ p in
  let without = Pattern.initializer_ ~lease:false p in
  Alcotest.(check bool) "fewer edges without lease" true
    (List.length without.Automaton.edges < List.length with_lease.Automaton.edges);
  (* the expiry marker only exists with the lease *)
  let has_marker (a : Automaton.t) =
    List.exists
      (fun (e : Edge.t) ->
        e.Edge.label = Some (Label.Internal (Events.to_stop ~entity:"laser")))
      a.Automaton.edges
  in
  Alcotest.(check bool) "marker with lease" true (has_marker with_lease);
  Alcotest.(check bool) "no marker without" false (has_marker without);
  let part = Pattern.participant p ~index:1 in
  let part_no = Pattern.participant ~lease:false p ~index:1 in
  Alcotest.(check bool) "participant ablated too" true
    (List.length part_no.Automaton.edges < List.length part.Automaton.edges)

let test_participant_index_range () =
  Alcotest.check_raises "index 0" (Invalid_argument "participant index 0 out of range 1..1")
    (fun () -> ignore (Pattern.participant p ~index:0));
  Alcotest.check_raises "index N" (Invalid_argument "participant index 2 out of range 1..1")
    (fun () -> ignore (Pattern.participant p ~index:2))

let test_remotes () =
  Alcotest.(check (list string)) "remotes" [ "ventilator"; "laser" ]
    (Pattern.remotes p)

let test_n4_system () =
  (* a longer chain builds and validates *)
  let p4 =
    Synthesis.synthesize_exn
      (Synthesis.default_requirements
         ~entity_names:[ "a"; "b"; "c"; "d" ]
         ~safeguards:
           (List.init 3 (fun _ ->
                { Params.enter_risky_min = 2.0; exit_safe_min = 1.0 })))
  in
  let system = Pattern.system p4 in
  Alcotest.(check int) "4 remotes + supervisor" 5
    (List.length system.System.automata);
  match System.validate system with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid: %s" (String.concat "; " e)

let test_scale_generator () =
  (* the bench-S1 generator: names, synthesis feasibility, assembly *)
  Alcotest.(check (list string)) "chain names" [ "p0001"; "p0002"; "init" ]
    (Scale.entity_names ~n:3);
  (match Scale.entity_names ~n:1 with
  | _ -> Alcotest.fail "n=1 accepted"
  | exception Invalid_argument _ -> ());
  let system, p8 = Scale.system ~n:8 () in
  Alcotest.(check int) "8 remotes + supervisor" 9
    (List.length system.System.automata);
  Alcotest.(check int) "params carry the chain" 8
    (List.length (Pattern.remotes p8));
  match System.validate system with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid: %s" (String.concat "; " e)

let test_dot_export () =
  let dot = Dot.to_string (Pattern.initializer_ p) in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "mentions Risky Core" true
    (let needle = "Risky Core" in
     let n = String.length needle and h = String.length dot in
     let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
     go 0)

let suite =
  [
    ( "core.pattern",
      [
        Alcotest.test_case "roles validate" `Quick test_all_validate;
        Alcotest.test_case "system validates" `Quick test_system_validates;
        Alcotest.test_case "supervisor locations" `Quick test_supervisor_locations;
        Alcotest.test_case "supervisor all safe" `Quick test_supervisor_all_safe;
        Alcotest.test_case "risky partitions" `Quick test_roles_risky_sets;
        Alcotest.test_case "event wiring closed" `Quick test_event_wiring;
        Alcotest.test_case "stimuli reliable" `Quick test_stimuli_are_reliable_receives;
        Alcotest.test_case "lease ablation" `Quick test_lease_ablation;
        Alcotest.test_case "participant index range" `Quick
          test_participant_index_range;
        Alcotest.test_case "remotes" `Quick test_remotes;
        Alcotest.test_case "N=4 system" `Quick test_n4_system;
        Alcotest.test_case "scale generator" `Quick test_scale_generator;
        Alcotest.test_case "dot export" `Quick test_dot_export;
      ] );
  ]
