(* The fault-injection subsystem: plan JSON round-trips, injector
   selection semantics, crash/drift node faults, shrinking, and
   (plan, seed) replay determinism of the full trial pipeline. *)

open Pte_faults
module Robustness = Pte_tracheotomy.Robustness

let vocab = Robustness.vocabulary ~horizon:120.0 ()

(* ------------------------------------------------------------------ *)
(* plan DSL: JSON round-trip                                           *)
(* ------------------------------------------------------------------ *)

(* qcheck property: any generated plan survives JSON encode/decode
   structurally intact — the checked-in-artifact contract *)
let prop_plan_json_roundtrip =
  QCheck.Test.make ~name:"fault plans round-trip through JSON" ~count:200
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let plan = Fuzz.random_plan (Pte_util.Rng.create seed) vocab in
      match Plan.of_string (Plan.to_string plan) with
      | Ok plan' -> plan = plan'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

(* the loss_profile segment rides the same contract: any plan the
   profile-aware fuzzer emits survives encode/decode intact *)
let prop_plan_with_profile_json_roundtrip =
  QCheck.Test.make ~name:"plans with loss profiles round-trip through JSON"
    ~count:200
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let plan =
        Fuzz.random_plan_with_profile (Pte_util.Rng.create seed) vocab
      in
      match Plan.of_string (Plan.to_string plan) with
      | Ok plan' -> plan = plan'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let test_plan_rejects_garbage () =
  List.iter
    (fun s ->
      match Plan.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ "{"; "[]"; "{\"packet\": 3}";
      "{\"packet\": [{\"entity\": \"v\"}], \"node\": []}";
      (* loss steps must sit on the timeline with loss in [0, 1] *)
      "{\"loss_profile\": [{\"at\": -1.0, \"loss\": 0.5}]}";
      "{\"loss_profile\": [{\"at\": 3.0, \"loss\": 1.5}]}" ]

(* ------------------------------------------------------------------ *)
(* injector semantics on real links                                    *)
(* ------------------------------------------------------------------ *)

let mk_star () =
  Pte_net.Star.create ~base:"base" ~remotes:[ "r1"; "r2" ]
    ~loss_kind:Pte_net.Loss.Perfect
    ~rng:(Pte_util.Rng.create 11)
    ()

let link_of star ~sender ~receiver =
  match Pte_net.Star.link_for star ~sender ~receiver with
  | Some l -> l
  | None -> Alcotest.fail "missing link"

let send link ~time ~root =
  Pte_net.Link.send link ~time ~src:"s" ~dst:"d" ~root

let test_injector_drops_nth () =
  let star = mk_star () in
  let plan =
    { Plan.empty with
      Plan.packet_faults =
        [ Plan.drop_nth ~entity:"r1" ~direction:Plan.Down ~root:"evt_k" 1 ];
      node_faults = [];
    }
  in
  let handle = Injector.install plan star in
  let link = link_of star ~sender:"base" ~receiver:"r1" in
  let outcomes =
    List.map
      (fun root ->
        match send link ~time:1.0 ~root with
        | Pte_net.Link.Deliver _ -> `D
        | Pte_net.Link.Drop _ -> `X
        | Pte_net.Link.Deliver_dup _ -> `Dup)
      [ "evt_k"; "other"; "evt_k"; "evt_k" ]
  in
  (* occurrence index counts only matching frames: the 2nd evt_k dies *)
  Alcotest.(check bool) "only the nth matching frame dropped" true
    (outcomes = [ `D; `D; `X; `D ]);
  Alcotest.(check (array int)) "matched counts every evt_k" [| 3 |]
    (Injector.matched handle);
  Alcotest.(check (array int)) "fired once" [| 1 |] (Injector.fired handle);
  Alcotest.(check bool) "all fired" true (Injector.all_fired handle)

let test_injector_site_selectivity () =
  let star = mk_star () in
  let plan =
    { Plan.empty with
      Plan.packet_faults =
        [ Plan.drop_every ~entity:"r1" ~direction:Plan.Down ~root:"e" ];
      node_faults = [];
    }
  in
  let _handle = Injector.install plan star in
  (* same root on r1's uplink and on r2's downlink is untouched *)
  (match send (link_of star ~sender:"r1" ~receiver:"base") ~time:0.0 ~root:"e" with
  | Pte_net.Link.Deliver _ -> ()
  | _ -> Alcotest.fail "uplink must not be tampered");
  (match send (link_of star ~sender:"base" ~receiver:"r2") ~time:0.0 ~root:"e" with
  | Pte_net.Link.Deliver _ -> ()
  | _ -> Alcotest.fail "r2 must not be tampered");
  match send (link_of star ~sender:"base" ~receiver:"r1") ~time:0.0 ~root:"e" with
  | Pte_net.Link.Drop Pte_net.Loss.Lost_in_air -> ()
  | _ -> Alcotest.fail "r1 downlink must drop"

let test_injector_corrupt_flows_through_crc () =
  let star = mk_star () in
  let plan =
    { Plan.empty with
      Plan.packet_faults =
        [
          Plan.packet ~root:"e" ~entity:"r2" ~direction:Plan.Up
            ~occurrence:Plan.Every Plan.Corrupt;
        ];
      node_faults = [];
    }
  in
  let _handle = Injector.install plan star in
  let link = link_of star ~sender:"r2" ~receiver:"base" in
  for _ = 1 to 20 do
    match send link ~time:0.0 ~root:"e" with
    | Pte_net.Link.Drop Pte_net.Loss.Corrupted -> ()
    | _ -> Alcotest.fail "corrupted frame must die at the CRC"
  done;
  Alcotest.(check int) "CRC discards counted" 20
    (Pte_net.Link.stats link).Pte_net.Link_stats.corrupted

let test_injector_window_and_delay () =
  let star = mk_star () in
  let plan =
    { Plan.empty with
      Plan.packet_faults =
        [
          Plan.packet ~root:"e" ~window:{ Plan.after = 10.0; before = 20.0 }
            ~entity:"r1" ~direction:Plan.Down ~occurrence:Plan.Every
            (Plan.Delay 5.0);
        ];
      node_faults = [];
    }
  in
  let _handle = Injector.install plan star in
  let link = link_of star ~sender:"base" ~receiver:"r1" in
  let arrival_at time =
    match send link ~time ~root:"e" with
    | Pte_net.Link.Deliver { arrival; _ } -> arrival -. time
    | _ -> Alcotest.fail "expected delivery"
  in
  Alcotest.(check bool) "before window: base delay" true (arrival_at 5.0 < 1.0);
  Alcotest.(check bool) "inside window: +5 s" true (arrival_at 15.0 >= 5.0);
  Alcotest.(check bool) "after window: base delay" true (arrival_at 25.0 < 1.0)

let test_injector_duplicate () =
  let star = mk_star () in
  let plan =
    { Plan.empty with
      Plan.packet_faults =
        [
          Plan.packet ~root:"e" ~entity:"r1" ~direction:Plan.Up
            ~occurrence:(Plan.Nth 0) Plan.Duplicate;
        ];
      node_faults = [];
    }
  in
  let _handle = Injector.install plan star in
  match send (link_of star ~sender:"r1" ~receiver:"base") ~time:0.0 ~root:"e" with
  | Pte_net.Link.Deliver_dup { arrivals = a1, a2; _ } ->
      Alcotest.(check bool) "copies ordered" true (a2 > a1)
  | _ -> Alcotest.fail "expected duplicated delivery"

let test_injector_first_fault_shadows () =
  let star = mk_star () in
  let drop = Plan.drop_nth ~entity:"r1" ~direction:Plan.Down ~root:"e" 0 in
  let plan =
    { Plan.empty with
      Plan.packet_faults =
        [ drop; { drop with Plan.action = Plan.Duplicate } ];
      node_faults = [];
    }
  in
  let handle = Injector.install plan star in
  (match send (link_of star ~sender:"base" ~receiver:"r1") ~time:0.0 ~root:"e" with
  | Pte_net.Link.Drop _ -> ()
  | _ -> Alcotest.fail "first fault in plan order must win");
  Alcotest.(check (array int)) "both matched" [| 1; 1 |]
    (Injector.matched handle);
  Alcotest.(check (array int)) "only the first fired" [| 1; 0 |]
    (Injector.fired handle)

(* ------------------------------------------------------------------ *)
(* node faults: crash/restart and clock drift                          *)
(* ------------------------------------------------------------------ *)

let test_crash_and_restart_schedule () =
  let built = Pte_tracheotomy.Emulation.build
      {
        Pte_tracheotomy.Emulation.default with
        horizon = 30.0;
        seed = 3;
        faults =
          { Plan.empty with
            Plan.packet_faults = [];
            node_faults = [ Plan.crash ~entity:"ventilator" ~at:10.0 ~blackout:5.0 ];
          };
      }
  in
  let engine = built.Pte_tracheotomy.Emulation.engine in
  Pte_sim.Engine.run engine ~until:9.0;
  Alcotest.(check bool) "alive before the fault" false
    (Pte_sim.Engine.is_halted engine "ventilator");
  Pte_sim.Engine.run engine ~until:12.0;
  Alcotest.(check bool) "down during the blackout" true
    (Pte_sim.Engine.is_halted engine "ventilator");
  (* while down, the automaton is frozen in place *)
  let loc_down = Pte_sim.Engine.location_of engine "ventilator" in
  Pte_sim.Engine.run engine ~until:14.9;
  Alcotest.(check string) "frozen while down" loc_down
    (Pte_sim.Engine.location_of engine "ventilator");
  Pte_sim.Engine.run engine ~until:16.0;
  Alcotest.(check bool) "rebooted after the blackout" false
    (Pte_sim.Engine.is_halted engine "ventilator")

let test_clock_drift_scales_flows () =
  (* the stand-alone ventilator strokes every 3 s; at half rate its
     pump height advances half as fast *)
  let open Pte_hybrid in
  let system =
    System.make ~name:"drift" [ Pte_tracheotomy.Ventilator.stand_alone ]
  in
  let run rate =
    let exec = Executor.create system in
    Executor.set_rate exec "vent-standalone" rate;
    Executor.run exec ~until:10.0;
    List.length
      (Trace.transitions_of (Executor.trace exec) ~automaton:"vent-standalone")
  in
  let nominal = run 1.0 in
  let slowed = run 0.5 in
  Alcotest.(check bool)
    (Fmt.str "half rate, about half the strokes (%d vs %d)" slowed nominal)
    true
    (slowed < nominal && slowed >= (nominal / 2) - 1)

(* ------------------------------------------------------------------ *)
(* shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let test_shrink_to_culprit () =
  (* a pure oracle: the plan "fails" iff it still drops an evt_cancel
     frame; shrinking must strip everything else *)
  let rng = Pte_util.Rng.create 4 in
  let noise = List.init 4 (fun _ -> Fuzz.random_packet_fault rng vocab) in
  let culprit =
    Plan.packet ~root:"evt_cancel"
      ~window:{ Plan.after = 3.0; before = 90.0 }
      ~entity:"laser" ~direction:Plan.Up ~occurrence:(Plan.Nth 3) Plan.Drop
  in
  let plan =
    { Plan.empty with
      Plan.packet_faults = noise @ [ culprit ];
      node_faults = [ Plan.crash ~entity:"laser" ~at:50.0 ~blackout:20.0 ];
    }
  in
  let oracle (p : Plan.t) =
    List.exists
      (fun (f : Plan.packet_fault) ->
        f.Plan.root = Some "evt_cancel" && f.Plan.action = Plan.Drop)
      p.Plan.packet_faults
  in
  let minimal, calls = Shrink.shrink ~oracle plan in
  Alcotest.(check bool) "still failing" true (oracle minimal);
  Alcotest.(check int) "noise faults removed" 1
    (List.length minimal.Plan.packet_faults);
  Alcotest.(check int) "node faults removed" 0
    (List.length minimal.Plan.node_faults);
  (match minimal.Plan.packet_faults with
  | [ f ] ->
      Alcotest.(check bool) "occurrence simplified to 0" true
        (f.Plan.occurrence = Plan.Nth 0);
      Alcotest.(check bool) "window removed" true (f.Plan.window = None)
  | _ -> assert false);
  Alcotest.(check bool) "bounded oracle budget" true (calls <= 200)

let test_shrink_loss_profile () =
  (* the oracle cares about one thing: an early channel blackout
     (loss >= 0.8 arriving by t = 60). Shrinking must strip the packet
     and node noise, drop the benign steps, and may only pull the
     culprit toward the benign end while the oracle still fails *)
  let rng = Pte_util.Rng.create 17 in
  let plan =
    {
      Plan.packet_faults =
        List.init 3 (fun _ -> Fuzz.random_packet_fault rng vocab);
      node_faults = [ Plan.crash ~entity:"laser" ~at:40.0 ~blackout:10.0 ];
      loss_profile =
        [
          Plan.loss_step ~at:5.0 ~loss:0.2;
          Plan.loss_step ~at:30.0 ~loss:1.0;
          Plan.loss_step ~at:80.0 ~loss:0.1;
        ];
    }
  in
  let oracle (p : Plan.t) =
    List.exists
      (fun (s : Plan.loss_step) -> s.Plan.loss >= 0.8 && s.Plan.at <= 60.0)
      p.Plan.loss_profile
  in
  let minimal, _calls = Shrink.shrink ~oracle plan in
  Alcotest.(check bool) "still failing" true (oracle minimal);
  Alcotest.(check int) "packet noise removed" 0
    (List.length minimal.Plan.packet_faults);
  Alcotest.(check int) "node noise removed" 0
    (List.length minimal.Plan.node_faults);
  match minimal.Plan.loss_profile with
  | [ s ] ->
      Alcotest.(check bool) "the blackout step survives" true
        (s.Plan.loss >= 0.8)
  | l -> Alcotest.failf "expected one surviving step, got %d" (List.length l)

let test_shrink_respects_budget () =
  let rng = Pte_util.Rng.create 9 in
  let plan =
    { Plan.empty with
      Plan.packet_faults = List.init 6 (fun _ -> Fuzz.random_packet_fault rng vocab);
      node_faults = [];
    }
  in
  let calls_seen = ref 0 in
  let _, calls =
    Shrink.shrink ~max_oracle_calls:5
      ~oracle:(fun _ -> incr calls_seen; true)
      plan
  in
  Alcotest.(check bool) "stopped at the budget" true
    (calls <= 5 && !calls_seen <= 5)

(* ------------------------------------------------------------------ *)
(* end-to-end: replay determinism and coverage invariants              *)
(* ------------------------------------------------------------------ *)

let test_artifact_replay_deterministic () =
  let artifact =
    {
      Robustness.plan =
        { Plan.empty with
          Plan.packet_faults =
            [
              Plan.drop_nth ~entity:"ventilator" ~direction:Plan.Down
                ~root:"evt_s_to_ventilator_cancel" 0;
            ];
          node_faults =
            [ Plan.crash ~entity:"ventilator" ~at:40.0 ~blackout:3.0 ];
        };
      trial_seed = 123;
      horizon = 120.0;
      lease = true;
      failures = 0;
    }
  in
  (* byte-identical artifact text, identical trial metrics *)
  let text = Robustness.artifact_to_string artifact in
  let reparsed =
    match Robustness.artifact_of_string text with
    | Ok a -> a
    | Error e -> Alcotest.failf "artifact decode: %s" e
  in
  Alcotest.(check string) "artifact text round-trips" text
    (Robustness.artifact_to_string reparsed);
  let a = Robustness.replay artifact and b = Robustness.replay reparsed in
  Alcotest.(check int) "failures" a.Pte_tracheotomy.Trial.failures
    b.Pte_tracheotomy.Trial.failures;
  Alcotest.(check int) "emissions" a.Pte_tracheotomy.Trial.emissions
    b.Pte_tracheotomy.Trial.emissions;
  Alcotest.(check int) "faults fired" a.Pte_tracheotomy.Trial.faults_fired
    b.Pte_tracheotomy.Trial.faults_fired;
  Alcotest.(check int) "messages" a.Pte_tracheotomy.Trial.messages_sent
    b.Pte_tracheotomy.Trial.messages_sent;
  Alcotest.(check (float 0.0)) "min SpO2" a.Pte_tracheotomy.Trial.min_spo2
    b.Pte_tracheotomy.Trial.min_spo2;
  Alcotest.(check (float 0.0)) "longest pause"
    a.Pte_tracheotomy.Trial.longest_pause b.Pte_tracheotomy.Trial.longest_pause

let test_coverage_small () =
  (* one occurrence, short horizon: every root targeted, the lease
     design never violates, the baseline does *)
  let c = Robustness.coverage ~workers:2 ~occurrences:1 ~horizon:300.0 () in
  Alcotest.(check int) "all roots targeted" c.Robustness.roots_total
    c.Robustness.roots_targeted;
  Alcotest.(check int) "lease design never violates" 0
    c.Robustness.with_lease_violations;
  Alcotest.(check bool) "baseline degrades" true
    (c.Robustness.without_lease_violations > 0);
  Alcotest.(check bool) "most roots exercised" true
    (c.Robustness.roots_exercised * 2 >= c.Robustness.roots_total)

let test_fuzz_finds_and_shrinks () =
  (* the seed/trial count mirror the checked-in artifact's provenance:
     crash faults break the fail-operational assumption, so with-lease
     violations exist and every artifact must replay to >= 1 episode *)
  let report =
    Robustness.fuzz ~horizon:300.0 ~max_oracle_calls:20 ~seed:99 ~trials:6 ()
  in
  Alcotest.(check bool) "found a with-lease violation" true
    (report.Robustness.violating > 0);
  List.iter
    (fun a ->
      Alcotest.(check bool) "artifact reproduces" true
        ((Robustness.replay a).Pte_tracheotomy.Trial.failures > 0);
      Alcotest.(check bool) "artifact is minimal (1 fault)" true
        (List.length a.Robustness.plan.Plan.packet_faults
         + List.length a.Robustness.plan.Plan.node_faults
        <= 2))
    report.Robustness.artifacts

let suite =
  [
    ( "faults.plan",
      [
        QCheck_alcotest.to_alcotest prop_plan_json_roundtrip;
        QCheck_alcotest.to_alcotest prop_plan_with_profile_json_roundtrip;
        Alcotest.test_case "rejects malformed JSON" `Quick
          test_plan_rejects_garbage;
      ] );
    ( "faults.injector",
      [
        Alcotest.test_case "drops the nth matching frame" `Quick
          test_injector_drops_nth;
        Alcotest.test_case "site selectivity" `Quick
          test_injector_site_selectivity;
        Alcotest.test_case "corruption dies at the CRC" `Quick
          test_injector_corrupt_flows_through_crc;
        Alcotest.test_case "time window + extra delay" `Quick
          test_injector_window_and_delay;
        Alcotest.test_case "duplicate delivers twice" `Quick
          test_injector_duplicate;
        Alcotest.test_case "plan order shadows" `Quick
          test_injector_first_fault_shadows;
      ] );
    ( "faults.node",
      [
        Alcotest.test_case "crash + reboot schedule" `Quick
          test_crash_and_restart_schedule;
        Alcotest.test_case "clock drift scales flows" `Quick
          test_clock_drift_scales_flows;
      ] );
    ( "faults.shrink",
      [
        Alcotest.test_case "strips to the culprit" `Quick test_shrink_to_culprit;
        Alcotest.test_case "strips a loss profile to its blackout" `Quick
          test_shrink_loss_profile;
        Alcotest.test_case "respects the oracle budget" `Quick
          test_shrink_respects_budget;
      ] );
    ( "faults.end_to_end",
      [
        Alcotest.test_case "artifact replay deterministic" `Slow
          test_artifact_replay_deterministic;
        Alcotest.test_case "coverage: lease survives every drop" `Slow
          test_coverage_small;
        Alcotest.test_case "fuzz finds and shrinks violations" `Slow
          test_fuzz_finds_and_shrinks;
      ] );
  ]
