(* Executor semantics: continuous evolution, forced (invariant-boundary)
   transitions, eager urgency, event transport, time-block and zeno
   detection. The ventilator of Fig. 2 doubles as the acceptance test for
   boundary handling. *)

open Pte_hybrid

let system_of automata = System.make ~name:"test" automata

let test_ventilator_period () =
  (* Fig. 2: 0.3 m of travel at 0.1 m/s = 3 s per stroke *)
  let vent = Pte_tracheotomy.Ventilator.stand_alone in
  let exec = Executor.create (system_of [ vent ]) in
  Executor.run exec ~until:12.5;
  let transitions =
    Trace.transitions_of (Executor.trace exec) ~automaton:"vent-standalone"
  in
  (* H starts at 0 in PumpOut: immediate flip, then flips every 3 s:
     ~0, 3, 6, 9, 12 -> 5 transitions by t=12.5 *)
  Alcotest.(check int) "stroke count" 5 (List.length transitions);
  List.iteri
    (fun i (time, _, _, _) ->
      let expected = 3.0 *. Float.of_int i in
      if Float.abs (time -. expected) > 0.01 then
        Alcotest.failf "stroke %d at %.4f, expected %.1f" i time expected)
    transitions

let test_ventilator_height_bounds () =
  let vent = Pte_tracheotomy.Ventilator.stand_alone in
  let exec = Executor.create (system_of [ vent ]) in
  for _ = 1 to 8000 do
    Executor.step exec;
    let h = Executor.value_of exec "vent-standalone" "Hvent" in
    if h < -1e-6 || h > 0.3 +. 1e-6 then
      Alcotest.failf "height out of bounds: %g at t=%g" h (Executor.time exec)
  done

let test_eager_fires_at_guard () =
  let a =
    Automaton.make ~name:"timer" ~vars:[ "c" ]
      ~locations:
        [ Location.make ~flow:(Flow.clocks [ "c" ]) "Wait";
          Location.make ~flow:(Flow.clocks [ "c" ]) "Done" ]
      ~edges:
        [ Edge.make ~guard:[ Guard.atom "c" Guard.Ge 2.0 ]
            ~reset:(Reset.set "c" 0.0) ~src:"Wait" ~dst:"Done" () ]
      ~initial_location:"Wait" ()
  in
  let exec = Executor.create (system_of [ a ]) in
  Executor.run exec ~until:1.9;
  Alcotest.(check string) "still waiting" "Wait" (Executor.location_of exec "timer");
  Executor.run exec ~until:2.1;
  Alcotest.(check string) "fired" "Done" (Executor.location_of exec "timer")

let test_instant_chain () =
  (* zero-dwell dispatch locations collapse within one instant *)
  let a =
    Automaton.make ~name:"chain" ~vars:[]
      ~locations:[ Location.make "A"; Location.make "B"; Location.make "C" ]
      ~edges:
        [ Edge.make ~src:"A" ~dst:"B" (); Edge.make ~src:"B" ~dst:"C" () ]
      ~initial_location:"A" ()
  in
  let exec = Executor.create (system_of [ a ]) in
  Executor.step exec;
  Alcotest.(check string) "chained to C" "C" (Executor.location_of exec "chain")

let test_time_block_detected () =
  (* invariant hits its boundary with no enabled egress *)
  let a =
    Automaton.make ~name:"stuck" ~vars:[ "c" ]
      ~locations:
        [ Location.make ~flow:(Flow.clocks [ "c" ])
            ~invariant:[ Guard.atom "c" Guard.Le 1.0 ] "Trap" ]
      ~edges:[] ~initial_location:"Trap" ()
  in
  let exec = Executor.create (system_of [ a ]) in
  match Executor.run exec ~until:2.0 with
  | () -> Alcotest.fail "expected Time_block"
  | exception Executor.Time_block { automaton = "stuck"; _ } -> ()

let test_zeno_detected () =
  let a =
    Automaton.make ~name:"zeno" ~vars:[]
      ~locations:[ Location.make "A"; Location.make "B" ]
      ~edges:[ Edge.make ~src:"A" ~dst:"B" (); Edge.make ~src:"B" ~dst:"A" () ]
      ~initial_location:"A" ()
  in
  let exec = Executor.create (system_of [ a ]) in
  match Executor.step exec with
  | () -> Alcotest.fail "expected Zeno"
  | exception Executor.Zeno _ -> ()

let talker_listener () =
  let talker =
    Automaton.make ~name:"talker" ~vars:[ "c" ]
      ~locations:
        [ Location.make ~flow:(Flow.clocks [ "c" ]) "Idle";
          Location.make ~flow:(Flow.clocks [ "c" ]) "Sent" ]
      ~edges:
        [ Edge.make ~guard:[ Guard.atom "c" Guard.Ge 1.0 ]
            ~label:(Label.Send "go") ~src:"Idle" ~dst:"Sent" () ]
      ~initial_location:"Idle" ()
  in
  let listener =
    Automaton.make ~name:"listener" ~vars:[]
      ~locations:[ Location.make "Waiting"; Location.make "Got"; Location.make "Deaf" ]
      ~edges:
        [ Edge.make ~label:(Label.Recv_lossy "go") ~src:"Waiting" ~dst:"Got" () ]
      ~initial_location:"Waiting" ()
  in
  (talker, listener)

let test_event_delivery () =
  let talker, listener = talker_listener () in
  let exec = Executor.create (system_of [ talker; listener ]) in
  Executor.run exec ~until:1.5;
  Alcotest.(check string) "delivered" "Got" (Executor.location_of exec "listener")

let test_event_loss_via_router () =
  let talker, listener = talker_listener () in
  let exec = Executor.create (system_of [ talker; listener ]) in
  Executor.set_router exec (fun ~time:_ ~sender:_ ~root:_ ~receiver:_ ->
      Executor.Lose);
  Executor.run exec ~until:1.5;
  Alcotest.(check string) "lost" "Waiting" (Executor.location_of exec "listener");
  let lost =
    Trace.count (Executor.trace exec) (fun e ->
        match e.Trace.event with Trace.Message_lost _ -> true | _ -> false)
  in
  Alcotest.(check int) "loss recorded" 1 lost

let test_event_delayed_delivery () =
  let talker, listener = talker_listener () in
  let exec = Executor.create (system_of [ talker; listener ]) in
  Executor.set_router exec (fun ~time:_ ~sender:_ ~root:_ ~receiver:_ ->
      Executor.Deliver 0.5);
  Executor.run exec ~until:1.3;
  Alcotest.(check string) "in flight" "Waiting" (Executor.location_of exec "listener");
  Executor.run exec ~until:1.6;
  Alcotest.(check string) "arrived" "Got" (Executor.location_of exec "listener")

let test_event_ignored_when_not_listening () =
  let talker, listener = talker_listener () in
  (* move the listener into a location with no matching receive edge *)
  let listener = { listener with Automaton.initial_location = "Deaf" } in
  let exec = Executor.create (system_of [ talker; listener ]) in
  Executor.run exec ~until:1.5;
  Alcotest.(check string) "ignored" "Deaf" (Executor.location_of exec "listener");
  let ignored =
    Trace.count (Executor.trace exec) (fun e ->
        match e.Trace.event with
        | Trace.Message_delivered { consumed = false; _ } -> true
        | _ -> false)
  in
  Alcotest.(check int) "drop recorded" 1 ignored

let test_inject_stimulus () =
  let _, listener = talker_listener () in
  let exec = Executor.create (system_of [ listener ]) in
  let consumed = Executor.inject exec ~receiver:"listener" ~root:"go" in
  Alcotest.(check bool) "consumed" true consumed;
  Alcotest.(check string) "moved" "Got" (Executor.location_of exec "listener")

let test_dwell_time_and_set_value () =
  let a =
    Automaton.make ~name:"plain" ~vars:[ "x" ]
      ~locations:[ Location.make "L" ]
      ~edges:[] ~initial_location:"L" ()
  in
  let exec = Executor.create (system_of [ a ]) in
  Executor.run exec ~until:0.5;
  Alcotest.(check bool) "dwell ~0.5" true
    (Float.abs (Executor.dwell_time exec "plain" -. 0.5) < 1e-6);
  Executor.set_value exec "plain" "x" 42.0;
  Alcotest.(check (float 0.0)) "set_value" 42.0
    (Executor.value_of exec "plain" "x")

let test_forced_transition_flag () =
  (* a Delayed edge never fires on its own; only the invariant boundary
     forces it, and the executor must flag that *)
  let a =
    Automaton.make ~name:"delayed" ~vars:[ "c" ]
      ~locations:
        [ Location.make ~flow:(Flow.clocks [ "c" ])
            ~invariant:[ Guard.atom "c" Guard.Le 1.0 ] "Hold";
          Location.make ~flow:(Flow.clocks [ "c" ]) "Out" ]
      ~edges:
        [ Edge.make ~urgency:Edge.Delayed
            ~guard:[ Guard.atom "c" Guard.Ge 0.5 ] ~src:"Hold" ~dst:"Out" () ]
      ~initial_location:"Hold" ()
  in
  let exec = Executor.create (system_of [ a ]) in
  Executor.run exec ~until:2.0;
  Alcotest.(check string) "left at boundary" "Out" (Executor.location_of exec "delayed");
  let forced_at =
    List.filter_map
      (fun (e : Trace.entry) ->
        match e.Trace.event with
        | Trace.Transition { forced = true; _ } -> Some e.Trace.time
        | _ -> None)
      (Executor.trace exec)
  in
  match forced_at with
  | [ t ] -> Alcotest.(check bool) "at c=1" true (Float.abs (t -. 1.0) < 0.01)
  | _ -> Alcotest.failf "expected exactly one forced transition"

let test_ode_integration_accuracy () =
  (* exponential decay x' = -x from 1: after 2 s, x = e^-2; Euler at 1 ms
     should land within 0.2% *)
  let a =
    Automaton.make ~name:"decay" ~vars:[ "x" ]
      ~locations:
        [ Location.make
            ~flow:(Flow.Ode (fun _t v -> [ ("x", -.Valuation.get v "x") ]))
            "Run" ]
      ~edges:[] ~initial_location:"Run" ~initial_values:[ ("x", 1.0) ] ()
  in
  let exec = Executor.create (system_of [ a ]) in
  Executor.run exec ~until:2.0;
  let x = Executor.value_of exec "decay" "x" in
  let exact = exp (-2.0) in
  if Float.abs (x -. exact) /. exact > 2e-3 then
    Alcotest.failf "Euler drift: %.6f vs %.6f" x exact

(* ---- revocable scheduling: the primitive behind the event-driven
        ARQ transport ---- *)

let idle_system () =
  let a =
    Automaton.make ~name:"idle" ~vars:[]
      ~locations:[ Location.make "A" ]
      ~edges:[] ~initial_location:"A" ()
  in
  system_of [ a ]

let test_schedule_and_cancel () =
  let exec = Executor.create (idle_system ()) in
  let fired = ref [] in
  let note name (_ : Executor.t) = fired := name :: !fired in
  let _t1 = Executor.schedule exec ~at:0.5 (note "first") in
  let t2 = Executor.schedule exec ~at:0.7 (note "second") in
  let _t3 = Executor.schedule exec ~at:0.9 (note "third") in
  Executor.cancel exec t2;
  Executor.run exec ~until:1.0;
  Alcotest.(check (list string)) "cancelled timer skipped, order kept"
    [ "first"; "third" ] (List.rev !fired);
  (* cancelling an already-fired or already-cancelled token is a no-op *)
  Executor.cancel exec t2;
  (* a timer scheduled in the past fires at the current instant *)
  let _t4 = Executor.schedule exec ~at:0.0 (note "late") in
  Executor.step exec;
  Alcotest.(check (list string)) "past-due timer fires now"
    [ "first"; "third"; "late" ]
    (List.rev !fired)

let test_timer_chain_reschedules () =
  (* a callback arming its own successor is exactly the retransmission
     pattern; each link of the chain must fire on the same timeline *)
  let exec = Executor.create (idle_system ()) in
  let fired_at = ref [] in
  let rec again exec0 =
    fired_at := Executor.time exec0 :: !fired_at;
    if List.length !fired_at < 3 then
      ignore (Executor.schedule exec0 ~at:(Executor.time exec0 +. 0.25) again)
  in
  ignore (Executor.schedule exec ~at:0.25 again);
  Executor.run exec ~until:1.0;
  Alcotest.(check int) "chained three times" 3 (List.length !fired_at);
  List.iteri
    (fun i t ->
      let expected = 0.25 *. Float.of_int (i + 1) in
      if Float.abs (t -. expected) > 0.01 then
        Alcotest.failf "link %d fired at %.4f, expected %.2f" i t expected)
    (List.rev !fired_at)

let test_timer_delivers_now () =
  (* a timer callback can hand an event to an automaton at its instant —
     the delivery half of a Deferred routing decision *)
  let _, listener = talker_listener () in
  let exec = Executor.create (system_of [ listener ]) in
  ignore
    (Executor.schedule exec ~at:0.4 (fun exec0 ->
         ignore (Executor.deliver_now exec0 ~receiver:"listener" ~root:"go")));
  Executor.run exec ~until:0.3;
  Alcotest.(check string) "not yet" "Waiting"
    (Executor.location_of exec "listener");
  Executor.run exec ~until:0.5;
  Alcotest.(check string) "timer delivered" "Got"
    (Executor.location_of exec "listener")

let test_schedule_rejects_non_finite () =
  (* regression: a NaN/infinite due time would sit at the head of the
     timeline and never fire (Float.max nan now is nan), silently
     wedging its exchange — reject it at the API edge like set_rate *)
  let exec = Executor.create (idle_system ()) in
  List.iter
    (fun at ->
      match Executor.schedule exec ~at (fun _ -> ()) with
      | _ -> Alcotest.failf "schedule accepted due time %g" at
      | exception Invalid_argument _ -> ())
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_zeno_blames_timer_owner () =
  (* a timer callback that re-arms itself at the same instant is a Zeno
     chain; the diagnostic must name the automaton the timer was armed
     for, not the anonymous "<timer>" *)
  let exec = Executor.create (idle_system ()) in
  let rec storm exec0 =
    ignore
      (Executor.schedule exec0 ~owner:"culprit" ~at:(Executor.time exec0)
         storm)
  in
  ignore (Executor.schedule exec ~owner:"culprit" ~at:0.1 storm);
  match Executor.run exec ~until:1.0 with
  | () -> Alcotest.fail "expected Zeno"
  | exception Executor.Zeno { automaton; _ } ->
      Alcotest.(check string) "blames the owner" "culprit" automaton

let test_sampler_catches_up () =
  (* with dt > sample_period the old one-period bump fell permanently
     behind [now], so every later step emitted a stale sample burst;
     the sampler must instead record once per due step and jump its
     next deadline past [now] *)
  let a =
    Automaton.make ~name:"clk" ~vars:[ "c" ]
      ~locations:[ Location.make ~flow:(Flow.clocks [ "c" ]) "L" ]
      ~edges:[] ~initial_location:"L" ()
  in
  let config =
    { Executor.default_config with
      dt = 0.3;
      sample_period = 0.1;
      sample_vars = [ ("clk", "c") ];
    }
  in
  let exec = Executor.create ~config (system_of [ a ]) in
  Executor.run exec ~until:1.5;
  let samples =
    List.filter_map
      (fun (e : Trace.entry) ->
        match e.Trace.event with
        | Trace.Sample { value; _ } -> Some (e.Trace.time, value)
        | _ -> None)
      (Executor.trace exec)
  in
  Alcotest.(check int) "one sample per step, no stale burst" 5
    (List.length samples);
  List.iteri
    (fun i (time, value) ->
      let expected = 0.3 *. Float.of_int (i + 1) in
      if Float.abs (time -. expected) > 1e-9 then
        Alcotest.failf "sample %d at t=%g, expected %g" i time expected;
      if Float.abs (value -. expected) > 1e-9 then
        Alcotest.failf "sample %d read %g, expected %g" i value expected)
    samples

let test_heap_legacy_traces_identical () =
  (* differential gate behind the whole refactor: the heap queue plus
     activity-set stabilization must replay a busy multi-automaton run
     byte-identically to the legacy sorted-list full-scan engine *)
  let run queue =
    let system, _ = Pte_core.Scale.system ~n:3 () in
    let exec = Executor.create ~queue system in
    let init = Pte_core.Scale.initializer_name in
    let request = Pte_core.Events.stim_request ~initializer_:init in
    let cancel = Pte_core.Events.stim_cancel ~initializer_:init in
    List.iter
      (fun (at, root) ->
        ignore
          (Executor.schedule exec ~at (fun exec0 ->
               ignore (Executor.deliver_now exec0 ~receiver:init ~root))))
      [ (0.5, request); (9.0, cancel); (12.0, request); (40.0, cancel) ];
    Executor.run exec ~until:60.0;
    Executor.trace exec
  in
  let heap = run `Heap and legacy = run `Legacy_list in
  Alcotest.(check int) "same trace length" (List.length legacy)
    (List.length heap);
  List.iter2
    (fun (l : Trace.entry) (h : Trace.entry) ->
      if l <> h then
        Alcotest.failf "traces diverge at t=%g" l.Trace.time)
    legacy heap

let test_trace_sink_streams () =
  let seen = ref 0 in
  let vent = Pte_tracheotomy.Ventilator.stand_alone in
  let exec =
    Executor.create ~trace_sink:(fun _ -> incr seen) (system_of [ vent ])
  in
  Executor.run exec ~until:7.0;
  Alcotest.(check bool) "sink saw entries" true (!seen >= 3);
  Alcotest.(check int) "sink count = trace length" !seen
    (List.length (Executor.trace exec))

let suite =
  [
    ( "hybrid.executor",
      [
        Alcotest.test_case "ventilator 3s strokes (Fig 2)" `Quick
          test_ventilator_period;
        Alcotest.test_case "ventilator height bounded" `Quick
          test_ventilator_height_bounds;
        Alcotest.test_case "eager fires at guard" `Quick test_eager_fires_at_guard;
        Alcotest.test_case "instant chains" `Quick test_instant_chain;
        Alcotest.test_case "time-block detected" `Quick test_time_block_detected;
        Alcotest.test_case "zeno detected" `Quick test_zeno_detected;
        Alcotest.test_case "event delivery" `Quick test_event_delivery;
        Alcotest.test_case "event loss via router" `Quick test_event_loss_via_router;
        Alcotest.test_case "delayed delivery" `Quick test_event_delayed_delivery;
        Alcotest.test_case "ignored when not listening" `Quick
          test_event_ignored_when_not_listening;
        Alcotest.test_case "inject stimulus" `Quick test_inject_stimulus;
        Alcotest.test_case "dwell time / set_value" `Quick
          test_dwell_time_and_set_value;
        Alcotest.test_case "forced transitions flagged" `Quick
          test_forced_transition_flag;
        Alcotest.test_case "ODE integration accuracy" `Quick
          test_ode_integration_accuracy;
        Alcotest.test_case "schedule / cancel tokens" `Quick
          test_schedule_and_cancel;
        Alcotest.test_case "timer chain reschedules itself" `Quick
          test_timer_chain_reschedules;
        Alcotest.test_case "timer delivers at its instant" `Quick
          test_timer_delivers_now;
        Alcotest.test_case "schedule rejects non-finite due times" `Quick
          test_schedule_rejects_non_finite;
        Alcotest.test_case "zeno blames the timer owner" `Quick
          test_zeno_blames_timer_owner;
        Alcotest.test_case "sampler catches up when dt > period" `Quick
          test_sampler_catches_up;
        Alcotest.test_case "heap and legacy-list traces identical" `Quick
          test_heap_legacy_traces_identical;
        Alcotest.test_case "trace sink streams" `Quick test_trace_sink_streams;
      ] );
  ]
