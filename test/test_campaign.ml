(* Campaign engine: JSON round-trips, job planning, pool scheduling,
   worker-count determinism, retry/degradation, checkpoint/resume. *)

open Pte_campaign

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("job", Json.Num 7.0);
        ("status", Json.Str "ok");
        ("weird", Json.Str "a\"b\\c\nd\te");
        ("metrics", Json.Obj [ ("x", Json.Num 1.25); ("y", Json.Num (-3e-7)) ]);
        ("tags", Json.Arr [ Json.Bool true; Json.Null; Json.Num 0.0 ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trip" true (v = v')
  | Error e -> Alcotest.failf "re-parse failed: %s" e

let test_json_integers_stay_textual () =
  (* job ids must survive a textual grep of the checkpoint file *)
  Alcotest.(check string) "int form" "{\"job\":42}"
    (Json.to_string (Json.Obj [ ("job", Json.Num 42.0) ]))

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "{\"a\":}"; "[1,]"; "{\"a\":1} trailing"; "nul" ]

let test_outcome_roundtrip () =
  let outcomes =
    [
      {
        Job.id = 3; cell = 1; rep = 1; attempts = 2; status = Job.Done;
        metrics = [ ("failures", 0.0); ("longest_pause", 41.00000001) ];
      };
      {
        Job.id = 9; cell = 4; rep = 0; attempts = 3;
        status = Job.Failed "Failure(\"boom\")"; metrics = [];
      };
    ]
  in
  List.iter
    (fun o ->
      match Job.outcome_of_json (Job.outcome_to_json o) with
      | Ok o' -> Alcotest.(check bool) "outcome round-trip" true (o = o')
      | Error e -> Alcotest.failf "outcome re-parse failed: %s" e)
    outcomes

(* ------------------------------------------------------------------ *)
(* planning                                                            *)
(* ------------------------------------------------------------------ *)

let test_plan_shape () =
  let jobs = Job.plan ~cells:[| "a"; "b"; "c" |] ~reps:4 ~seed:1 in
  Alcotest.(check int) "12 jobs" 12 (Array.length jobs);
  Array.iteri
    (fun i (j : string Job.t) ->
      Alcotest.(check int) "id" i j.Job.id;
      Alcotest.(check int) "cell" (i / 4) j.Job.cell;
      Alcotest.(check int) "rep" (i mod 4) j.Job.rep;
      Alcotest.(check string) "payload" [| "a"; "b"; "c" |].(i / 4) j.Job.payload)
    jobs

let test_plan_deterministic () =
  let seeds jobs = Array.map (fun (j : _ Job.t) -> j.Job.seed) jobs in
  let a = Job.plan ~cells:[| (); () |] ~reps:5 ~seed:99 in
  let b = Job.plan ~cells:[| (); () |] ~reps:5 ~seed:99 in
  let c = Job.plan ~cells:[| (); () |] ~reps:5 ~seed:100 in
  Alcotest.(check bool) "same master seed, same plan" true (seeds a = seeds b);
  Alcotest.(check bool) "different master seed differs" false (seeds a = seeds c)

(* the ISSUE's qcheck property: split-derived job streams are pairwise
   distinct for any master seed and non-trivial grid *)
let prop_job_streams_pairwise_distinct =
  QCheck.Test.make ~name:"split-derived job streams pairwise distinct"
    ~count:100
    QCheck.(
      triple (make QCheck.Gen.int) (int_range 1 6) (int_range 1 6))
    (fun (seed, cells, reps) ->
      let jobs = Job.plan ~cells:(Array.make cells ()) ~reps ~seed in
      let streams =
        Array.map
          (fun job ->
            let rng = Job.rng job in
            List.init 8 (fun _ -> Pte_util.Rng.next_int64 rng))
          jobs
      in
      let distinct = ref true in
      Array.iteri
        (fun i a ->
          Array.iteri (fun k b -> if i < k && a = b then distinct := false) streams)
        streams;
      !distinct)

let test_job_rng_replayable () =
  let jobs = Job.plan ~cells:[| () |] ~reps:3 ~seed:7 in
  Array.iter
    (fun job ->
      let a = Job.rng job and b = Job.rng job in
      List.iter
        (fun _ ->
          Alcotest.(check (float 0.0)) "replay" (Pte_util.Rng.float a)
            (Pte_util.Rng.float b))
        (List.init 16 Fun.id))
    jobs

(* ------------------------------------------------------------------ *)
(* pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_matches_sequential () =
  let xs = Array.init 37 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = Array.map f xs in
  List.iter
    (fun workers ->
      Alcotest.(check (array int))
        (Fmt.str "workers=%d" workers)
        expected
        (Pool.map ~workers f xs))
    [ 1; 2; 4; 64 ]

let test_pool_empty_and_tiny () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map ~workers:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "singleton" [| 9 |]
    (Pool.map ~workers:4 (fun x -> x + 2) [| 7 |])

(* ------------------------------------------------------------------ *)
(* campaign determinism                                                *)
(* ------------------------------------------------------------------ *)

(* a cheap synthetic trial: statistics over the job's private stream *)
let synthetic (job : int Job.t) rng =
  let draws = List.init 32 (fun _ -> Pte_util.Rng.float rng) in
  [
    ("mean", Pte_util.Stats.mean draws);
    ("max", Pte_util.Stats.maximum draws);
    ("payload", Float.of_int job.Job.payload);
  ]

let run_synthetic ?config ~workers () =
  let config =
    match config with
    | Some c -> { c with Runner.workers = Some workers }
    | None -> { Runner.default with workers = Some workers }
  in
  Runner.run ~config ~cells:[| 10; 20; 30 |] ~reps:4 ~seed:2013 synthetic

let check_same_aggregates label (a : _ Runner.result) (b : _ Runner.result) =
  Alcotest.(check bool) (label ^ ": identical aggregates") true
    (a.Runner.cells = b.Runner.cells);
  Alcotest.(check bool) (label ^ ": identical outcomes") true
    (a.Runner.outcomes = b.Runner.outcomes)

let test_determinism_across_workers () =
  let reference = run_synthetic ~workers:1 () in
  Alcotest.(check int) "all ok" 12 reference.Runner.ok;
  List.iter
    (fun workers ->
      check_same_aggregates
        (Fmt.str "workers=%d" workers)
        reference
        (run_synthetic ~workers ()))
    [ 2; 4 ]

let test_trial_campaign_determinism_across_workers () =
  (* the real consumer: short laser-tracheotomy trials through
     Trial.run_cells at several worker counts *)
  let cells =
    [|
      { Pte_tracheotomy.Emulation.default with horizon = 30.0; seed = 41 };
      {
        Pte_tracheotomy.Emulation.default with
        horizon = 30.0; seed = 42; lease = false;
      };
      (* the event-driven reliable transport keys its jitter streams per
         exchange, so it too must be deterministic at any worker count *)
      {
        Pte_tracheotomy.Emulation.default with
        horizon = 30.0;
        seed = 43;
        transport = `Reliable Pte_net.Transport.default_config;
        loss = Pte_net.Loss.wifi_interference ~average_loss:0.35;
      };
      (* the time-triggered mode's blind copies ride the executor's
         timer queue off a split RNG stream of their own: the full
         three-mode matrix must stay worker-count independent *)
      {
        Pte_tracheotomy.Emulation.default with
        horizon = 30.0;
        seed = 44;
        transport = `Scheduled Pte_sched.Synth.default_policy;
        loss = Pte_net.Loss.wifi_interference ~average_loss:0.35;
      };
      (* adaptive mode adds the estimator, the escalation policy and
         the safe-switch protocol on top; a lossy channel keeps the
         estimator fed so tier decisions are part of what must replay
         identically at any worker count *)
      {
        Pte_tracheotomy.Emulation.default with
        horizon = 30.0;
        seed = 45;
        transport = `Adaptive Pte_net.Transport.default_adaptive;
        loss = Pte_net.Loss.wifi_interference ~average_loss:0.5;
      };
    |]
  in
  let agg workers =
    let campaign, _ =
      Pte_tracheotomy.Trial.run_cells ~workers ~reps:2 ~seed:7 cells
    in
    campaign.Runner.cells
  in
  let reference = agg 1 in
  List.iter
    (fun workers ->
      Alcotest.(check bool)
        (Fmt.str "workers=%d equals workers=1" workers)
        true
        (agg workers = reference))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* degradation: retries and crash capture                              *)
(* ------------------------------------------------------------------ *)

let test_retry_recovers_flaky_job () =
  let attempts_seen = Array.init 12 (fun _ -> Atomic.make 0) in
  let flaky job rng =
    if Atomic.fetch_and_add attempts_seen.((job : int Job.t).Job.id) 1 = 0 then
      failwith "transient";
    synthetic job rng
  in
  let config = { Runner.default with workers = Some 2; retries = 1 } in
  let result = Runner.run ~config ~cells:[| 10; 20; 30 |] ~reps:4 ~seed:2013 flaky in
  Alcotest.(check int) "all jobs recovered" 12 result.Runner.ok;
  Array.iter
    (fun (o : Job.outcome) ->
      Alcotest.(check int) "two attempts" 2 o.Job.attempts)
    result.Runner.outcomes;
  (* the retry replays the identical stream: aggregates match a clean run *)
  let clean = run_synthetic ~config ~workers:2 () in
  Alcotest.(check bool) "same aggregates as clean run" true
    (result.Runner.cells = clean.Runner.cells)

let test_crashing_job_degrades_campaign () =
  let crash job rng =
    if (job : int Job.t).Job.id = 5 then failwith "broken trial";
    synthetic job rng
  in
  let config = { Runner.default with workers = Some 2; retries = 1 } in
  let result = Runner.run ~config ~cells:[| 10; 20; 30 |] ~reps:4 ~seed:2013 crash in
  Alcotest.(check int) "one failure" 1 result.Runner.failed;
  Alcotest.(check int) "rest completed" 11 result.Runner.ok;
  (match result.Runner.outcomes.(5).Job.status with
  | Job.Failed reason ->
      Alcotest.(check bool) "reason recorded" true
        (String.length reason > 0)
  | Job.Done -> Alcotest.fail "job 5 should have failed");
  (* cell 1 lost one replicate; the others are whole *)
  Alcotest.(check int) "cell 1 ok count" 3 result.Runner.cells.(1).Aggregate.ok;
  Alcotest.(check int) "cell 1 failed count" 1
    result.Runner.cells.(1).Aggregate.failed;
  Alcotest.(check int) "cell 0 intact" 4 result.Runner.cells.(0).Aggregate.ok

(* ------------------------------------------------------------------ *)
(* checkpoint / resume                                                 *)
(* ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "pte_campaign" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_checkpoint_records_all_jobs () =
  with_temp_file (fun path ->
      let config =
        { Runner.default with workers = Some 2; checkpoint = Some path }
      in
      let result = run_synthetic ~config ~workers:2 () in
      let loaded = Checkpoint.load path in
      Alcotest.(check int) "12 lines" 12 (List.length loaded);
      let by_id =
        List.sort (fun (a : Job.outcome) b -> compare a.Job.id b.Job.id) loaded
      in
      Alcotest.(check bool) "checkpoint = outcomes" true
        (Array.of_list by_id = result.Runner.outcomes))

let truncate_checkpoint path ~keep_lines =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let lines = List.rev !lines in
  let kept = List.filteri (fun i _ -> i < keep_lines) lines in
  let torn =
    (* half of the next line: the signature of a kill mid-write *)
    match List.nth_opt lines keep_lines with
    | Some line -> [ String.sub line 0 (String.length line / 2) ]
    | None -> []
  in
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) kept;
  List.iter (fun l -> output_string oc l) torn;
  close_out oc

let test_resume_after_kill_matches_uninterrupted () =
  let uninterrupted = run_synthetic ~workers:2 () in
  with_temp_file (fun path ->
      let config =
        { Runner.default with workers = Some 2; checkpoint = Some path }
      in
      let _first = run_synthetic ~config ~workers:2 () in
      (* simulate a kill after 5 of 12 jobs, mid-write of the 6th
         (line 1 is the campaign header) *)
      truncate_checkpoint path ~keep_lines:6;
      let resumed_config = { config with resume = true } in
      let resumed = run_synthetic ~config:resumed_config ~workers:2 () in
      Alcotest.(check int) "5 jobs resumed" 5 resumed.Runner.resumed;
      check_same_aggregates "resumed vs uninterrupted" uninterrupted resumed;
      (* the repaired checkpoint now has all 12 outcomes again *)
      Alcotest.(check int) "repaired file complete" 12
        (List.length (Checkpoint.load path)))

let test_resume_noop_on_complete_file () =
  with_temp_file (fun path ->
      let config =
        { Runner.default with workers = Some 2; checkpoint = Some path }
      in
      let first = run_synthetic ~config ~workers:2 () in
      let resumed =
        run_synthetic ~config:{ config with resume = true } ~workers:2 ()
      in
      Alcotest.(check int) "everything resumed" 12 resumed.Runner.resumed;
      check_same_aggregates "no-op resume" first resumed)

let test_resume_ignores_foreign_checkpoint () =
  with_temp_file (fun path ->
      (* a checkpoint recorded for a *different* grid shape must not be
         trusted for this campaign *)
      let writer = Checkpoint.open_writer path in
      Checkpoint.record writer
        {
          Job.id = 0; cell = 3; rep = 9; attempts = 1; status = Job.Done;
          metrics = [ ("mean", 0.0) ];
        };
      Checkpoint.close writer;
      let config =
        {
          Runner.default with
          workers = Some 1;
          checkpoint = Some path;
          resume = true;
        }
      in
      let result = run_synthetic ~config ~workers:1 () in
      Alcotest.(check int) "nothing resumed" 0 result.Runner.resumed;
      check_same_aggregates "foreign line ignored" (run_synthetic ~workers:1 ())
        result)

let test_checkpoint_header_names_campaign () =
  with_temp_file (fun path ->
      let config =
        { Runner.default with workers = Some 1; checkpoint = Some path }
      in
      let _ = run_synthetic ~config ~workers:1 () in
      match Checkpoint.read_header path with
      | None -> Alcotest.fail "checkpoint has no header line"
      | Some h ->
          Alcotest.(check int) "seed" 2013 h.Checkpoint.seed;
          Alcotest.(check int) "cells" 3 h.Checkpoint.cells;
          Alcotest.(check int) "reps" 4 h.Checkpoint.reps;
          let jobs = Job.plan ~cells:[| 10; 20; 30 |] ~reps:4 ~seed:2013 in
          Alcotest.(check string) "digest" (Job.digest jobs) h.Checkpoint.digest)

let test_resume_refuses_mismatched_header () =
  with_temp_file (fun path ->
      let config =
        { Runner.default with workers = Some 1; checkpoint = Some path }
      in
      let _ = run_synthetic ~config ~workers:1 () in
      let resume = { config with Runner.resume = true } in
      (* a different master seed means a different per-job seed table:
         those recorded metrics would be silently wrong to reuse *)
      match
        Runner.run ~config:resume ~cells:[| 10; 20; 30 |] ~reps:4 ~seed:999
          synthetic
      with
      | exception Checkpoint.Mismatch _ -> ()
      | _ -> Alcotest.fail "resume accepted a mismatched checkpoint")

(* ------------------------------------------------------------------ *)
(* aggregation                                                         *)
(* ------------------------------------------------------------------ *)

let test_aggregate_matches_batch_stats () =
  let result = run_synthetic ~workers:4 () in
  let cell = result.Runner.cells.(1) in
  let means =
    Array.to_list result.Runner.outcomes
    |> List.filter (fun (o : Job.outcome) -> o.Job.cell = 1)
    |> List.map (fun (o : Job.outcome) -> List.assoc "mean" o.Job.metrics)
  in
  let s = Aggregate.metric cell "mean" in
  Alcotest.(check int) "n" 4 s.Aggregate.n;
  Alcotest.(check (float 1e-12)) "mean" (Pte_util.Stats.mean means)
    s.Aggregate.mean;
  Alcotest.(check (float 1e-12)) "stddev" (Pte_util.Stats.stddev means)
    s.Aggregate.stddev;
  Alcotest.(check (float 1e-12)) "ci95"
    (1.96 *. Pte_util.Stats.stddev means /. sqrt 4.0)
    s.Aggregate.ci95;
  Alcotest.(check (float 0.0)) "min" (Pte_util.Stats.minimum means) s.Aggregate.lo;
  Alcotest.(check (float 0.0)) "max" (Pte_util.Stats.maximum means) s.Aggregate.hi

let suite =
  [
    ( "campaign.json",
      [
        Alcotest.test_case "value round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "integers stay textual" `Quick
          test_json_integers_stay_textual;
        Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        Alcotest.test_case "outcome round-trip" `Quick test_outcome_roundtrip;
      ] );
    ( "campaign.plan",
      [
        Alcotest.test_case "grid shape" `Quick test_plan_shape;
        Alcotest.test_case "deterministic in master seed" `Quick
          test_plan_deterministic;
        Alcotest.test_case "job rng replayable" `Quick test_job_rng_replayable;
        QCheck_alcotest.to_alcotest prop_job_streams_pairwise_distinct;
      ] );
    ( "campaign.pool",
      [
        Alcotest.test_case "matches sequential map" `Quick
          test_pool_matches_sequential;
        Alcotest.test_case "empty and tiny inputs" `Quick
          test_pool_empty_and_tiny;
      ] );
    ( "campaign.runner",
      [
        Alcotest.test_case "deterministic at 1/2/4 workers" `Quick
          test_determinism_across_workers;
        Alcotest.test_case "trial campaign deterministic at 1/2/4 workers"
          `Slow test_trial_campaign_determinism_across_workers;
        Alcotest.test_case "retry recovers a flaky job" `Quick
          test_retry_recovers_flaky_job;
        Alcotest.test_case "crashing job degrades, not kills" `Quick
          test_crashing_job_degrades_campaign;
        Alcotest.test_case "aggregate = batch statistics" `Quick
          test_aggregate_matches_batch_stats;
      ] );
    ( "campaign.checkpoint",
      [
        Alcotest.test_case "records every job" `Quick
          test_checkpoint_records_all_jobs;
        Alcotest.test_case "resume after kill = uninterrupted" `Quick
          test_resume_after_kill_matches_uninterrupted;
        Alcotest.test_case "resume no-op on complete file" `Quick
          test_resume_noop_on_complete_file;
        Alcotest.test_case "resume ignores foreign checkpoint" `Quick
          test_resume_ignores_foreign_checkpoint;
        Alcotest.test_case "header names the campaign" `Quick
          test_checkpoint_header_names_campaign;
        Alcotest.test_case "resume refuses mismatched header" `Quick
          test_resume_refuses_mismatched_header;
      ] );
  ]
