(* The time-triggered schedule model and the joint schedule/retry
   synthesizer: round arithmetic, validation, the closed-form latency
   bound, the case-study schedule of DESIGN §10, and the qcheck
   properties backing the synthesis guarantees (collision freedom,
   budget admission, confidence-driven retry choice). *)

module Schedule = Pte_sched.Schedule
module Synth = Pte_sched.Synth

let link src dst = { Schedule.src; dst }

(* the case-study star: two remotes, worst one-way frame delay 0.03 s *)
let star_links =
  [ (link "ventilator" "supervisor", 0.03); (link "laser" "supervisor", 0.03);
    (link "supervisor" "ventilator", 0.03); (link "supervisor" "laser", 0.03) ]

let sched_exn ?(policy = Synth.default_policy) links =
  match Synth.synthesize policy ~links with
  | Ok s -> s
  | Error e -> Alcotest.failf "synthesize: %s" (Synth.error_to_string e)

(* ---- schedule arithmetic ---- *)

let test_period_and_bound () =
  let s = sched_exn star_links in
  Alcotest.(check int) "one slot per link" 4 s.Schedule.slots_per_round;
  Alcotest.(check (float 1e-9)) "slot covers the worst frame" 0.03
    s.Schedule.slot_len;
  Alcotest.(check (float 1e-9)) "period" 0.12 (Schedule.period s);
  (* 25% loss at 0.99 confidence: 0.25^4 = 0.0039 <= 0.01 < 0.25^3 *)
  List.iter
    (fun (e : Schedule.entry) ->
      Alcotest.(check int) "confidence-driven retries" 3 e.Schedule.retries)
    s.Schedule.entries;
  (* depth * ((r+1)*P + slot) = 2 * (4*0.12 + 0.03) — DESIGN §10 *)
  Alcotest.(check (float 1e-9)) "per-link bound" 1.02
    (Schedule.link_worst_case_latency s (List.hd s.Schedule.entries));
  Alcotest.(check (float 1e-9)) "schedule bound is the max" 1.02
    (Schedule.worst_case_latency s);
  Alcotest.(check (float 1e-9)) "empty schedule has bound 0" 0.0
    (Schedule.worst_case_latency { s with Schedule.entries = [] })

let test_validate () =
  let good = sched_exn star_links in
  let bad reason s =
    match Schedule.validate s with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "validate must reject %s" reason
  in
  Alcotest.(check bool) "synthesized schedule validates" true
    (Result.is_ok (Schedule.validate good));
  bad "zero slot_len" { good with Schedule.slot_len = 0.0 };
  bad "no slots" { good with Schedule.slots_per_round = 0 };
  bad "zero depth" { good with Schedule.depth = 0 };
  bad "negative retries"
    { good with
      Schedule.entries =
        [ { Schedule.link = link "a" "b"; slot = 0; retries = -1 } ] };
  bad "slot out of range"
    { good with
      Schedule.entries =
        [ { Schedule.link = link "a" "b"; slot = 4; retries = 0 } ] };
  bad "duplicate link"
    { good with
      Schedule.entries =
        [ { Schedule.link = link "a" "b"; slot = 0; retries = 0 };
          { Schedule.link = link "a" "b"; slot = 1; retries = 0 } ] };
  bad "slot collision"
    { good with
      Schedule.entries =
        [ { Schedule.link = link "a" "b"; slot = 2; retries = 0 };
          { Schedule.link = link "c" "d"; slot = 2; retries = 0 } ] }

let test_find () =
  let s = sched_exn star_links in
  (match Schedule.find s ~src:"laser" ~dst:"supervisor" with
  | Some e -> Alcotest.(check int) "laser uplink owns slot 1" 1 e.Schedule.slot
  | None -> Alcotest.fail "laser uplink must be scheduled");
  Alcotest.(check bool) "unknown link" true
    (Schedule.find s ~src:"laser" ~dst:"ventilator" = None)

let test_slot_start () =
  let s = sched_exn star_links in
  let e =
    match Schedule.find s ~src:"supervisor" ~dst:"laser" with
    | Some e -> e (* slot 3: offset 0.09 into each 0.12 s round *)
    | None -> Alcotest.fail "downlink must be scheduled"
  in
  Alcotest.(check (float 1e-9)) "before the first round" 0.09
    (Schedule.slot_start s e ~after:0.0);
  Alcotest.(check (float 1e-9)) "exactly on the boundary" 0.09
    (Schedule.slot_start s e ~after:0.09);
  Alcotest.(check (float 1e-9)) "just past it waits a full round" 0.21
    (Schedule.slot_start s e ~after:0.091);
  Alcotest.(check (float 1e-9)) "deep into the timeline" 120.09
    (Schedule.slot_start s e ~after:120.0)

(* ---- synthesis failures ---- *)

let test_synthesize_errors () =
  let expect_error reason policy links =
    match Synth.synthesize policy ~links with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "synthesize must reject %s" reason
  in
  expect_error "no links" Synth.default_policy [];
  expect_error "loss of 1"
    { Synth.default_policy with Synth.loss = 1.0 }
    star_links;
  expect_error "negative loss"
    { Synth.default_policy with Synth.loss = -0.1 }
    star_links;
  expect_error "confidence of 1"
    { Synth.default_policy with Synth.confidence = 1.0 }
    star_links;
  expect_error "zero depth"
    { Synth.default_policy with Synth.depth = 0 }
    star_links;
  expect_error "pinned slot shorter than the worst frame"
    { Synth.default_policy with Synth.slot_len = Some 0.01 }
    star_links;
  expect_error "zero frame delays" Synth.default_policy
    [ (link "a" "b", 0.0) ];
  (match
     Synth.synthesize
       { Synth.default_policy with Synth.budget = Some 0.1 }
       ~links:star_links
   with
  | Error (Synth.Budget_exceeded { need; budget }) ->
      Alcotest.(check (float 1e-9)) "need is the r=0 latency" 0.3 need;
      Alcotest.(check (float 1e-9)) "budget echoed" 0.1 budget
  | _ -> Alcotest.fail "an unmeetable budget must fail as Budget_exceeded");
  (* a pinned retry count past the budget is an error, never shrunk *)
  match
    Synth.synthesize
      { Synth.default_policy with Synth.retries = Some 10; budget = Some 2.0 }
      ~links:star_links
  with
  | Error (Synth.Budget_exceeded { need; _ }) ->
      Alcotest.(check (float 1e-9)) "need reflects the pinned retries"
        (2.0 *. ((11.0 *. 0.12) +. 0.03))
        need
  | _ -> Alcotest.fail "a pinned over-budget retry count must be rejected"

let test_budget_caps_retries () =
  (* 2.0 s admits r = 3 (wcl 1.02) but not r = 4 (wcl 1.26); a policy
     whose confidence asks for more must be capped to the budget *)
  let greedy =
    { Synth.default_policy with
      Synth.loss = 0.6;
      confidence = 0.999;
      budget = Some 2.0 }
  in
  let s = sched_exn ~policy:greedy star_links in
  List.iter
    (fun (e : Schedule.entry) ->
      Alcotest.(check int) "budget-capped retries" 7 e.Schedule.retries)
    s.Schedule.entries;
  Alcotest.(check bool) "stays within the budget" true
    (Schedule.worst_case_latency s <= 2.0)

(* ---- properties ---- *)

let links_gen =
  QCheck.Gen.(
    let* n = int_range 1 8 in
    let* delays = list_repeat n (float_range 0.005 0.1) in
    return
      (List.mapi
         (fun i d -> (link (Printf.sprintf "n%d" i) "base", d))
         delays))

let policy_gen =
  QCheck.Gen.(
    let* loss = float_range 0.0 0.9 in
    let* confidence = float_range 0.5 0.999 in
    let* depth = int_range 1 4 in
    let* budget = opt (float_range 0.5 20.0) in
    return { Synth.default_policy with Synth.loss; confidence; depth; budget })

let synth_arbitrary =
  QCheck.make
    ~print:(fun (p, links) ->
      Fmt.str "%a over %d links" Synth.pp_policy p (List.length links))
    QCheck.Gen.(pair policy_gen links_gen)

let prop_synthesized_is_collision_free =
  QCheck.Test.make ~name:"synthesized schedules validate, collision-free"
    ~count:200 synth_arbitrary (fun (policy, links) ->
      match Synth.synthesize policy ~links with
      | Error _ -> QCheck.assume_fail ()
      | Ok s ->
          Result.is_ok (Schedule.validate s)
          && Schedule.collision_free s
          && s.Schedule.slots_per_round = List.length links
          && List.length s.Schedule.entries = List.length links)

let prop_admitted_within_budget =
  QCheck.Test.make ~name:"admitted schedule wcl <= budget" ~count:200
    synth_arbitrary (fun (policy, links) ->
      match policy.Synth.budget with
      | None -> true
      | Some budget -> (
          match Synth.synthesize policy ~links with
          | Error _ -> QCheck.assume_fail ()
          | Ok s -> Schedule.worst_case_latency s <= budget +. 1e-9))

let prop_retry_choice_optimal =
  (* the synthesized retry count is the least one meeting the delivery
     confidence under the i.i.d. closed form, except when the budget
     caps it — and then it is the largest count the budget admits *)
  QCheck.Test.make ~name:"retry policy minimal for confidence, maximal in budget"
    ~count:200 synth_arbitrary (fun (policy, links) ->
      match Synth.synthesize policy ~links with
      | Error _ -> QCheck.assume_fail ()
      | Ok s ->
          let r =
            match s.Schedule.entries with
            | e :: _ -> e.Schedule.retries
            | [] -> 0
          in
          let miss = policy.Synth.loss ** Float.of_int (r + 1) in
          let meets_confidence = miss <= 1.0 -. policy.Synth.confidence in
          let next_breaks_budget =
            match policy.Synth.budget with
            | None -> false
            | Some budget ->
                let p = Schedule.period s in
                Float.of_int policy.Synth.depth
                  *. ((Float.of_int (r + 2) *. p) +. s.Schedule.slot_len)
                > budget
          in
          (* either the confidence target is met with the minimal r
             (r = 0 or r-1 copies would miss it), or the budget — or the
             synthesizer's near-1-loss cap at 64 — is the binding
             constraint *)
          if meets_confidence then
            r = 0
            || policy.Synth.loss ** Float.of_int r > 1.0 -. policy.Synth.confidence
          else next_breaks_budget || r >= 64)

let prop_slot_start_aligned =
  QCheck.Test.make ~name:"slot_start lands on the entry's slot, never early"
    ~count:200
    (QCheck.make
       ~print:(fun (after, _) -> Fmt.str "after=%g" after)
       QCheck.Gen.(pair (float_range 0.0 500.0) links_gen))
    (fun (after, links) ->
      match Synth.synthesize Synth.default_policy ~links with
      | Error _ -> QCheck.assume_fail ()
      | Ok s ->
          List.for_all
            (fun (e : Schedule.entry) ->
              let start = Schedule.slot_start s e ~after in
              let p = Schedule.period s in
              let offset = Float.of_int e.Schedule.slot *. s.Schedule.slot_len in
              let phase = Float.rem (start -. offset) p in
              start >= after
              && start < after +. p +. 1e-9
              && (Float.abs phase < 1e-6 || Float.abs (phase -. p) < 1e-6))
            s.Schedule.entries)

let suite =
  [
    ( "sched.schedule",
      [
        Alcotest.test_case "case-study period and latency bound" `Quick
          test_period_and_bound;
        Alcotest.test_case "validation" `Quick test_validate;
        Alcotest.test_case "find" `Quick test_find;
        Alcotest.test_case "slot_start arithmetic" `Quick test_slot_start;
        QCheck_alcotest.to_alcotest prop_slot_start_aligned;
      ] );
    ( "sched.synth",
      [
        Alcotest.test_case "ill-formed policies and unmeetable budgets" `Quick
          test_synthesize_errors;
        Alcotest.test_case "budget caps the confidence-driven retries" `Quick
          test_budget_caps_retries;
        QCheck_alcotest.to_alcotest prop_synthesized_is_collision_free;
        QCheck_alcotest.to_alcotest prop_admitted_within_budget;
        QCheck_alcotest.to_alcotest prop_retry_choice_optimal;
      ] );
  ]
