(* Loss models: empirical rates match nominal ones; burstiness; the
   adversarial model realizes exact loss scripts. *)

open Pte_net

let empirical kind ~n =
  let model = Loss.create ~seed:77 kind in
  let lost = ref 0 in
  for i = 1 to n do
    match Loss.decide model ~time:(Float.of_int i *. 0.1) ~root:"evt" with
    | Loss.Delivered -> ()
    | Loss.Lost_in_air | Loss.Corrupted -> incr lost
  done;
  Float.of_int !lost /. Float.of_int n

let check_rate name kind expected tolerance =
  let rate = empirical kind ~n:40_000 in
  if Float.abs (rate -. expected) > tolerance then
    Alcotest.failf "%s: rate %.3f, expected %.3f +/- %.3f" name rate expected
      tolerance

let test_perfect () = check_rate "perfect" Loss.Perfect 0.0 1e-9

let test_bernoulli () =
  check_rate "bernoulli" (Loss.Bernoulli 0.25) 0.25 0.02

let test_gilbert_elliott_rate () =
  let kind =
    Loss.Gilbert_elliott
      { to_bad = 0.05; to_good = 0.2; loss_good = 0.02; loss_bad = 0.9 }
  in
  check_rate "gilbert-elliott" kind (Loss.nominal_loss_rate kind) 0.03

let test_gilbert_elliott_bursty () =
  (* consecutive losses should be far more common than under i.i.d. loss
     of the same average rate *)
  let kind = Loss.wifi_interference ~average_loss:0.25 in
  let model = Loss.create ~seed:5 kind in
  let n = 40_000 in
  let outcomes =
    Array.init n (fun i ->
        Loss.decide model ~time:(Float.of_int i *. 0.1) ~root:"e" <> Loss.Delivered)
  in
  let losses = Array.fold_left (fun acc l -> if l then acc + 1 else acc) 0 outcomes in
  let pairs = ref 0 and pair_total = ref 0 in
  for i = 0 to n - 2 do
    if outcomes.(i) then begin
      incr pair_total;
      if outcomes.(i + 1) then incr pairs
    end
  done;
  let p_loss = Float.of_int losses /. Float.of_int n in
  let p_loss_given_loss = Float.of_int !pairs /. Float.of_int !pair_total in
  if p_loss_given_loss < p_loss *. 1.8 then
    Alcotest.failf "not bursty: P(loss|loss)=%.3f vs P(loss)=%.3f"
      p_loss_given_loss p_loss

let test_interferer_duty () =
  let kind =
    Loss.Interferer { period = 1.0; burst = 0.3; loss_during = 1.0; loss_idle = 0.0 }
  in
  let model = Loss.create kind in
  (* during the burst every packet dies; outside none does *)
  Alcotest.(check bool) "in burst" true
    (Loss.decide model ~time:10.1 ~root:"e" = Loss.Lost_in_air);
  Alcotest.(check bool) "outside burst" true
    (Loss.decide model ~time:10.7 ~root:"e" = Loss.Delivered);
  Alcotest.(check bool) "nominal = duty" true
    (Float.abs (Loss.nominal_loss_rate kind -. 0.3) < 1e-9)

let test_corrupting_split () =
  let kind =
    Loss.Corrupting { inner = Loss.Bernoulli 0.5; corrupt_fraction = 1.0 }
  in
  let model = Loss.create ~seed:3 kind in
  let corrupted = ref 0 and lost = ref 0 in
  for i = 1 to 10_000 do
    match Loss.decide model ~time:(Float.of_int i) ~root:"e" with
    | Loss.Corrupted -> incr corrupted
    | Loss.Lost_in_air -> incr lost
    | Loss.Delivered -> ()
  done;
  Alcotest.(check int) "all losses corrupt" 0 !lost;
  Alcotest.(check bool) "about half corrupted" true
    (!corrupted > 4_500 && !corrupted < 5_500)

let test_adversarial_script () =
  (* lose exactly packets #2 and #4 *)
  let kind = Loss.Adversarial (fun nth _root -> nth = 2 || nth = 4) in
  let model = Loss.create kind in
  let outcomes =
    List.init 6 (fun _ -> Loss.decide model ~time:0.0 ~root:"e" = Loss.Delivered)
  in
  Alcotest.(check (list bool)) "script honoured"
    [ true; true; false; true; false; true ] outcomes

let test_adversarial_by_root () =
  let kind = Loss.Adversarial (fun _ root -> root = "evt_cancel") in
  let model = Loss.create kind in
  Alcotest.(check bool) "cancel lost" true
    (Loss.decide model ~time:0.0 ~root:"evt_cancel" = Loss.Lost_in_air);
  Alcotest.(check bool) "others pass" true
    (Loss.decide model ~time:0.0 ~root:"evt_req" = Loss.Delivered)

let test_trace_driven () =
  let kind = Loss.Trace_driven [| false; true; false |] in
  let model = Loss.create kind in
  let outcomes =
    List.init 6 (fun _ -> Loss.decide model ~time:0.0 ~root:"e" = Loss.Delivered)
  in
  Alcotest.(check (list bool)) "cycles the trace"
    [ true; false; true; true; false; true ] outcomes;
  Alcotest.(check bool) "nominal = trace fraction" true
    (Float.abs (Loss.nominal_loss_rate kind -. (1.0 /. 3.0)) < 1e-9);
  Alcotest.(check bool) "empty trace delivers" true
    (Loss.decide (Loss.create (Loss.Trace_driven [||])) ~time:0.0 ~root:"e"
    = Loss.Delivered)

let test_wifi_interference_targets_average () =
  List.iter
    (fun target ->
      let kind = Loss.wifi_interference ~average_loss:target in
      let nominal = Loss.nominal_loss_rate kind in
      if Float.abs (nominal -. target) > 0.01 then
        Alcotest.failf "average %.2f -> nominal %.3f" target nominal)
    [ 0.1; 0.25; 0.5; 0.7 ]

let test_wifi_clamp_surfaced () =
  (* requests outside the representable band are clamped, and
     wifi_effective_loss reports the rate actually realized *)
  Alcotest.(check (float 1e-9)) "below band" Loss.wifi_min_loss
    (Loss.wifi_effective_loss ~average_loss:0.0);
  Alcotest.(check (float 1e-9)) "above band" Loss.wifi_max_loss
    (Loss.wifi_effective_loss ~average_loss:0.95);
  Alcotest.(check (float 1e-9)) "in band untouched" 0.25
    (Loss.wifi_effective_loss ~average_loss:0.25);
  List.iter
    (fun requested ->
      let kind = Loss.wifi_interference ~average_loss:requested in
      let effective = Loss.wifi_effective_loss ~average_loss:requested in
      if Float.abs (Loss.nominal_loss_rate kind -. effective) > 0.01 then
        Alcotest.failf "request %.2f: nominal %.3f != effective %.3f" requested
          (Loss.nominal_loss_rate kind)
          effective)
    [ 0.0; 0.01; 0.25; 0.9; 1.0 ]

(* ------------------------------------------------------------------ *)
(* qcheck: nominal = empirical across random stochastic channels       *)
(* ------------------------------------------------------------------ *)

(* empirical rate over uniformly random send times, so duty-cycled
   channels are sampled without aliasing against a fixed grid *)
let empirical_random_times kind ~n =
  let model = Loss.create ~seed:177 kind in
  let times = Pte_util.Rng.create 178 in
  let lost = ref 0 in
  for _ = 1 to n do
    match
      Loss.decide model ~time:(Pte_util.Rng.uniform times ~lo:0.0 ~hi:1000.0)
        ~root:"evt"
    with
    | Loss.Delivered -> ()
    | Loss.Lost_in_air | Loss.Corrupted -> incr lost
  done;
  Float.of_int !lost /. Float.of_int n

let gen_stochastic_kind =
  let open QCheck.Gen in
  let unit_float = float_bound_inclusive 1.0 in
  let base =
    [
      (2, map (fun p -> Loss.Bernoulli p) unit_float);
      ( 2,
        (* transition probabilities bounded away from 0 keep the chain's
           mixing time well under the sample count *)
        map
          (fun ((to_bad, to_good), (loss_good, loss_bad)) ->
            Loss.Gilbert_elliott { to_bad; to_good; loss_good; loss_bad })
          (pair
             (pair (float_range 0.05 0.6) (float_range 0.05 0.6))
             (pair unit_float unit_float)) );
      ( 2,
        map
          (fun ((period, duty), (loss_during, loss_idle)) ->
            Loss.Interferer
              { period; burst = duty *. period; loss_during; loss_idle })
          (pair
             (pair (float_range 0.5 5.0) unit_float)
             (pair unit_float unit_float)) );
      ( 1,
        map
          (fun trace -> Loss.Trace_driven (Array.of_list trace))
          (list_size (int_range 1 64) bool) );
    ]
  in
  frequency
    (base
    @ [
        ( 1,
          map
            (fun (inner, fraction) ->
              Loss.Corrupting { inner; corrupt_fraction = fraction })
            (pair (frequency base) unit_float) );
      ])

let prop_nominal_matches_empirical =
  QCheck.Test.make
    ~name:"nominal loss rate matches empirical rate (every stochastic kind)"
    ~count:40
    (QCheck.make ~print:(Fmt.to_to_string Loss.pp_kind) gen_stochastic_kind)
    (fun kind ->
      let n = 20_000 in
      let nominal = Loss.nominal_loss_rate kind in
      let rate = empirical_random_times kind ~n in
      (* binomial CI inflated for burst correlation; far beyond 5 sigma *)
      let tolerance =
        0.02 +. (5.0 *. sqrt (nominal *. (1.0 -. nominal) /. Float.of_int n))
      in
      if Float.abs (rate -. nominal) > tolerance then
        QCheck.Test.fail_reportf "%a: empirical %.4f vs nominal %.4f (+/-%.4f)"
          Loss.pp_kind kind rate nominal tolerance
      else true)

let suite =
  [
    ( "net.loss",
      [
        Alcotest.test_case "perfect" `Quick test_perfect;
        Alcotest.test_case "bernoulli rate" `Quick test_bernoulli;
        Alcotest.test_case "gilbert-elliott rate" `Quick test_gilbert_elliott_rate;
        Alcotest.test_case "gilbert-elliott bursty" `Quick
          test_gilbert_elliott_bursty;
        Alcotest.test_case "interferer duty cycle" `Quick test_interferer_duty;
        Alcotest.test_case "corrupting split" `Quick test_corrupting_split;
        Alcotest.test_case "adversarial script" `Quick test_adversarial_script;
        Alcotest.test_case "adversarial by root" `Quick test_adversarial_by_root;
        Alcotest.test_case "trace-driven replay" `Quick test_trace_driven;
        Alcotest.test_case "wifi targets average" `Quick
          test_wifi_interference_targets_average;
        Alcotest.test_case "wifi clamp surfaced" `Quick test_wifi_clamp_surfaced;
        QCheck_alcotest.to_alcotest prop_nominal_matches_empirical;
      ] );
  ]
