(* Rare-event engine: SPRT boundaries, Okamoto plans, splitting
   consistency on a synthetic chain with a known tail probability,
   worker-count determinism, sequential checkpoint resume + cross-version
   refusal, and the severity-escalation laws the splitting clones rely
   on. *)

open Pte_rare
module Rng = Pte_util.Rng

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* ------------------------------------------------------------------ *)
(* SPRT                                                                *)
(* ------------------------------------------------------------------ *)

(* The default certification screen: accept needs
   ceil(log(beta/(1-alpha)) / log((1-p1)/(1-p0))) = 59 clean trials. *)
let screen = { Sprt.p0 = 1e-3; p1 = 0.05; alpha = 0.05; beta = 0.05 }

let test_sprt_accepts_after_clean_run () =
  let t = Sprt.create screen in
  for _ = 1 to 58 do
    Sprt.observe t false
  done;
  Alcotest.(check bool)
    "58 clean trials not yet conclusive" true
    (Sprt.verdict t = Sprt.Continue);
  Sprt.observe t false;
  Alcotest.(check bool)
    "59th clean trial accepts the bound" true
    (Sprt.verdict t = Sprt.Accept_bound);
  Alcotest.(check int) "n" 59 (Sprt.n t);
  Alcotest.(check int) "hits" 0 (Sprt.hits t)

let test_sprt_rejects_on_hits () =
  (* one hit is worth log(p1/p0) = log(50) = 3.91 > the 2.94 upper
     boundary: a single violation refutes the 1e-3 bound instantly *)
  let t = Sprt.create screen in
  Sprt.observe t true;
  Alcotest.(check bool)
    "single hit rejects" true
    (Sprt.verdict t = Sprt.Reject_bound);
  (* a short clean prefix only buys log((1-p0)/(1-p1)) per trial: after
     15 misses one hit still lands above the Wald boundary *)
  let t = Sprt.create screen in
  for _ = 1 to 15 do
    Sprt.observe t false
  done;
  Sprt.observe t true;
  Alcotest.(check bool)
    "hit after 15 clean trials still rejects" true
    (Sprt.verdict t = Sprt.Reject_bound);
  (* a longer prefix absorbs the first hit; the second one rejects *)
  let t = Sprt.create screen in
  for _ = 1 to 25 do
    Sprt.observe t false
  done;
  Sprt.observe t true;
  Alcotest.(check bool)
    "one hit after 25 clean trials is not yet conclusive" true
    (Sprt.verdict t = Sprt.Continue);
  Sprt.observe t true;
  Alcotest.(check bool) "the second hit rejects" true
    (Sprt.verdict t = Sprt.Reject_bound)

let test_sprt_validate () =
  let bad c =
    match Sprt.validate c with Ok () -> false | Error _ -> true
  in
  Alcotest.(check bool) "p0 >= p1" true (bad { screen with Sprt.p0 = 0.1 });
  Alcotest.(check bool) "alpha > 1/2" true (bad { screen with Sprt.alpha = 0.6 });
  Alcotest.(check bool) "beta = 0" true (bad { screen with Sprt.beta = 0.0 });
  Alcotest.(check bool) "default screen fine" true
    (Sprt.validate screen = Ok ())

(* ------------------------------------------------------------------ *)
(* Okamoto                                                             *)
(* ------------------------------------------------------------------ *)

let test_okamoto_required_trials () =
  (* least n with 0.999^n <= 0.05: n = 2995 *)
  let n = Sprt.Okamoto.required_trials ~bound:1e-3 ~confidence:0.95 in
  Alcotest.(check int) "plan size" 2995 n;
  Alcotest.(check bool) "plan certifies at 0 hits" true
    (Sprt.Okamoto.upper_bound ~n ~hits:0 ~confidence:0.95 <= 1e-3);
  Alcotest.(check bool) "one fewer trial does not" true
    (Sprt.Okamoto.upper_bound ~n:(n - 1) ~hits:0 ~confidence:0.95 > 1e-3)

let test_okamoto_upper_bound () =
  (* zero hits: the exact binomial bound 1 - (1-c)^(1/n) *)
  Alcotest.(check bool) "0/1000 at 95%" true
    (feq ~eps:1e-6
       (Sprt.Okamoto.upper_bound ~n:1000 ~hits:0 ~confidence:0.95)
       (1.0 -. (0.05 ** 0.001)));
  (* with hits: Chernoff-Hoeffding inversion around the point estimate *)
  let up = Sprt.Okamoto.upper_bound ~n:100 ~hits:10 ~confidence:0.95 in
  Alcotest.(check bool) "10/100 bound above p-hat" true (up > 0.1);
  Alcotest.(check bool) "10/100 bound below p-hat + 0.2" true (up < 0.3);
  Alcotest.(check bool) "n = 0 is vacuous" true
    (feq (Sprt.Okamoto.upper_bound ~n:0 ~hits:0 ~confidence:0.95) 1.0)

(* ------------------------------------------------------------------ *)
(* Splitting on a synthetic chain                                      *)
(* ------------------------------------------------------------------ *)

(* A Markov chain with a closed-form tail: depth advances by a fair-ish
   coin (P(heads) = p) until the first tails, and the score is
   depth + jitter with the jitter frozen at the last advance (so a
   clone can never regress below the level its parent survived at).
   P(depth >= m) = p^m exactly under [init]; [extend] continues the
   same chain, so the splitting estimate must recover p^m. *)
type chain = { depth : int; jitter : float }

let advance ~p ~cap c rng =
  let d = ref c.depth and moved = ref false in
  while !d < cap && Rng.bernoulli rng p do
    incr d;
    moved := true
  done;
  if !moved then { depth = !d; jitter = Rng.float rng } else c

let chain_model ~p ~m =
  {
    Split.init =
      (fun rng ->
        let jitter = Rng.float rng in
        advance ~p ~cap:m { depth = 0; jitter } rng);
    extend = (fun c rng -> advance ~p ~cap:m c rng);
    score = (fun c -> Float.of_int c.depth +. c.jitter);
    target = Float.of_int m;
  }

let chain_config =
  {
    Split.default with
    Split.particles = 400;
    keep = 0.05;
    max_stages = 24;
    workers = Some 1;
  }

let split_estimates ~p ~m ~seeds =
  List.map
    (fun seed -> Split.run ~config:chain_config ~seed (chain_model ~p ~m))
    seeds

(* The engine's clones inherit their parent's achieved score as a floor
   (extend never regresses), so levels climb faster than the charged
   [keep] fraction justifies: the product estimator systematically
   OVER-states the tail probability. That is the sound direction for a
   certification bound — what these tests pin down is (a) coverage:
   estimate and upper bound never fall below the truth, (b) the
   over-statement stays within a bounded factor, and (c) the rare event
   is reached with orders of magnitude fewer raw trials than 1/p. All
   runs use fixed seeds, so the windows are deterministic. *)
let check_split_coverage ~truth ~slack runs =
  let ok = List.filter (fun (r : Split.result) -> not r.Split.stagnated) runs in
  Alcotest.(check int)
    (Fmt.str "no run stagnated at truth %.0e" truth)
    (List.length runs) (List.length ok);
  List.iter
    (fun (r : Split.result) ->
      Alcotest.(check bool)
        (Fmt.str "estimate %.3g covers the truth %.0e" r.Split.estimate truth)
        true
        (r.Split.estimate >= truth /. 4.0);
      Alcotest.(check bool)
        (Fmt.str "estimate %.3g within %gx of %.0e" r.Split.estimate slack
           truth)
        true
        (r.Split.estimate <= truth *. slack);
      Alcotest.(check bool)
        (Fmt.str "upper bound %.3g above the truth" r.Split.upper_bound)
        true
        (r.Split.upper_bound >= truth);
      Alcotest.(check bool) "upper bound above the estimate" true
        (r.Split.upper_bound >= r.Split.estimate);
      Alcotest.(check bool) "terminal stage actually hit the target" true
        (r.Split.hits > 0);
      Alcotest.(check bool)
        (Fmt.str "claimed effective trials %g exceed raw trials %d"
           r.Split.effective_trials r.Split.trials_run)
        true
        (r.Split.effective_trials > Float.of_int r.Split.trials_run))
    ok

let test_split_conservative_at_1e4 () =
  check_split_coverage ~truth:1e-4 ~slack:50.0
    (split_estimates ~p:0.1 ~m:4 ~seeds:(List.init 20 (fun i -> 100 + i)))

let test_split_conservative_at_1e6 () =
  let truth = 1e-6 in
  let runs = split_estimates ~p:0.1 ~m:6 ~seeds:(List.init 10 (fun i -> 10 + i)) in
  check_split_coverage ~truth ~slack:200.0 runs;
  List.iter
    (fun (r : Split.result) ->
      (* direct Monte-Carlo would need ~3e6 trials to see the event at
         all; splitting reaches it and bounds it below 1e-3 within a few
         thousand raw trials *)
      Alcotest.(check bool)
        (Fmt.str "only %d raw trials spent" r.Split.trials_run)
        true
        (r.Split.trials_run <= 4000);
      Alcotest.(check bool)
        (Fmt.str "upper bound %.3g beats what 4000 direct trials could give"
           r.Split.upper_bound)
        true
        (r.Split.upper_bound
        <= 1.0 -. ((1.0 -. 0.99) ** (1.0 /. 4000.0))))
    runs

(* The property form of the coverage check, over arbitrary root seeds:
   a run either stagnates (and certifies nothing — upper bound 1.0) or
   it anchors to the analytic tail p^m within an order of magnitude
   below (the estimator's bias is upward, so even an unlucky seed must
   not land far under truth), and the engine invariants hold — bound
   above estimate, levels strictly increasing, effort accounted. *)
let prop_split_never_unsound =
  QCheck.Test.make ~name:"splitting never under-states a known 1e-3 tail"
    ~count:30
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let truth = 1e-3 in
      let r = Split.run ~config:chain_config ~seed (chain_model ~p:0.1 ~m:3) in
      if r.Split.stagnated then feq r.Split.upper_bound 1.0
      else
        let thresholds =
          List.map (fun (st : Split.stage) -> st.Split.threshold) r.Split.stages
        in
        let rec increasing = function
          | a :: (b :: _ as rest) -> a < b && increasing rest
          | _ -> true
        in
        r.Split.estimate >= truth /. 50.0
        && r.Split.upper_bound >= truth /. 10.0
        && r.Split.upper_bound >= r.Split.estimate
        && increasing thresholds
        && r.Split.trials_run
           = chain_config.Split.particles * List.length r.Split.stages
        && r.Split.effective_trials >= Float.of_int r.Split.trials_run)

let test_split_deterministic_across_workers () =
  let run workers =
    Split.run
      ~config:{ chain_config with Split.workers = Some workers }
      ~seed:42 (chain_model ~p:0.1 ~m:4)
  in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  Alcotest.(check bool) "1 vs 2 workers identical" true (r1 = r2);
  Alcotest.(check bool) "2 vs 4 workers identical" true (r2 = r4)

let test_split_validate () =
  let bad c =
    match Split.validate c with Ok () -> false | Error _ -> true
  in
  Alcotest.(check bool) "1 particle" true
    (bad { Split.default with Split.particles = 1 });
  Alcotest.(check bool) "keep = 1" true
    (bad { Split.default with Split.keep = 1.0 });
  Alcotest.(check bool) "no stage budget" true
    (bad { Split.default with Split.max_stages = 0 });
  Alcotest.(check bool) "certain confidence" true
    (bad { Split.default with Split.confidence = 1.0 });
  Alcotest.(check bool) "default fine" true (Split.validate Split.default = Ok ())

(* ------------------------------------------------------------------ *)
(* Sequential driver                                                   *)
(* ------------------------------------------------------------------ *)

(* A deterministic Bernoulli stream driven by the trial's own RNG —
   exactly how the certification screen consumes it. *)
let bernoulli_trial p rng = Rng.bernoulli rng p

let test_seq_deterministic_across_workers () =
  let run workers =
    Seq.run ~workers ~rule:(Seq.Sprt screen) ~seed:7 (bernoulli_trial 0.02)
  in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  Alcotest.(check bool) "1 vs 2 workers identical" true (r1 = r2);
  Alcotest.(check bool) "2 vs 4 workers identical" true (r2 = r4)

let test_seq_verdicts () =
  (* a clean stream accepts the bound in exactly 59 trials *)
  let r = Seq.run ~rule:(Seq.Sprt screen) ~seed:1 (fun _ -> false) in
  Alcotest.(check bool) "clean stream certifies" true
    (r.Seq.verdict = Seq.Certified);
  Alcotest.(check int) "at the Wald boundary" 59 r.Seq.trials;
  (* an always-violating stream refutes immediately *)
  let r = Seq.run ~rule:(Seq.Sprt screen) ~seed:1 (fun _ -> true) in
  Alcotest.(check bool) "dirty stream refutes" true
    (r.Seq.verdict = Seq.Refuted);
  Alcotest.(check int) "in one trial" 1 r.Seq.trials;
  (* a rate between p0 and p1 with a tiny budget stays inconclusive *)
  let r =
    Seq.run ~max_trials:10 ~rule:(Seq.Sprt screen) ~seed:3 (fun _ -> false)
  in
  Alcotest.(check bool) "budget too small" true
    (r.Seq.verdict = Seq.Inconclusive)

let test_seq_okamoto_rule () =
  let rule = Seq.Okamoto { bound = 0.01; confidence = 0.95 } in
  (* clean stream: runs the full 299-trial plan and certifies *)
  let r = Seq.run ~max_trials:1000 ~rule ~seed:1 (fun _ -> false) in
  Alcotest.(check bool) "plan certifies" true (r.Seq.verdict = Seq.Certified);
  Alcotest.(check int) "exactly the Okamoto plan size"
    (Sprt.Okamoto.required_trials ~bound:0.01 ~confidence:0.95)
    r.Seq.trials;
  Alcotest.(check bool) "bound tight enough" true (r.Seq.upper_bound <= 0.01);
  (* heavy violations: refuted early, well before the full plan *)
  let r = Seq.run ~max_trials:1000 ~rule ~seed:1 (bernoulli_trial 0.5) in
  Alcotest.(check bool) "heavy stream refuted" true
    (r.Seq.verdict = Seq.Refuted);
  Alcotest.(check bool) "refuted early" true
    (r.Seq.trials < Sprt.Okamoto.required_trials ~bound:0.01 ~confidence:0.95)

let with_tmp f =
  let path = Filename.temp_file "pte_rare" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_seq_checkpoint_resume () =
  with_tmp (fun path ->
      let trial_calls = ref 0 in
      let trial rng =
        incr trial_calls;
        Rng.bernoulli rng 0.001
      in
      (* interrupted run: budget exhausted while still inconclusive *)
      let r1 =
        Seq.run ~max_trials:30 ~checkpoint:path ~rule:(Seq.Sprt screen)
          ~seed:5 trial
      in
      Alcotest.(check bool) "interrupted" true
        (r1.Seq.verdict = Seq.Inconclusive);
      let ran_before = !trial_calls in
      (* resumed run: replays the 30 recorded trials, runs only the rest *)
      let r2 =
        Seq.run ~max_trials:200 ~checkpoint:path ~resume:true
          ~rule:(Seq.Sprt screen) ~seed:5 trial
      in
      let ran_after = !trial_calls - ran_before in
      (* an uninterrupted reference run *)
      let r3 = Seq.run ~max_trials:200 ~rule:(Seq.Sprt screen) ~seed:5 trial in
      Alcotest.(check bool) "resumed = uninterrupted" true
        (r2.Seq.verdict = r3.Seq.verdict && r2.Seq.trials = r3.Seq.trials
        && r2.Seq.hits = r3.Seq.hits);
      Alcotest.(check bool)
        (Fmt.str "resume replayed the prefix (ran %d new, %d total)" ran_after
           r3.Seq.trials)
        true
        (ran_after < r3.Seq.trials))

let test_seq_resume_refuses_other_rule () =
  with_tmp (fun path ->
      let _ =
        Seq.run ~max_trials:20 ~checkpoint:path ~rule:(Seq.Sprt screen) ~seed:5
          (fun _ -> false)
      in
      match
        Seq.run ~max_trials:20 ~checkpoint:path ~resume:true
          ~rule:(Seq.Okamoto { bound = 0.01; confidence = 0.95 })
          ~seed:5
          (fun _ -> false)
      with
      | exception Pte_campaign.Checkpoint.Mismatch _ -> ()
      | _ -> Alcotest.fail "resume with a different stopping rule accepted")

let test_seq_resume_refuses_cross_version () =
  with_tmp (fun path ->
      (* forge a checkpoint stamped by a different library version *)
      let header =
        {
          (Pte_campaign.Checkpoint.make_header ~seed:5 ~cells:1 ~reps:100
             ~digest:"seq-sprt/5/p0=0.001/p1=0.05/a=0.05/b=0.05")
          with
          Pte_campaign.Checkpoint.version = "pte-campaign/0";
        }
      in
      let w = Pte_campaign.Checkpoint.open_writer ~header path in
      Pte_campaign.Checkpoint.close w;
      match
        Seq.run ~max_trials:20 ~checkpoint:path ~resume:true
          ~rule:(Seq.Sprt screen) ~seed:5
          (fun _ -> false)
      with
      | exception Pte_campaign.Checkpoint.Mismatch msg ->
          Alcotest.(check bool) "message names both versions" true
            (let has s sub =
               let n = String.length s and m = String.length sub in
               let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
               go 0
             in
             has msg "pte-campaign/0")
      | _ -> Alcotest.fail "cross-version resume accepted")

(* ------------------------------------------------------------------ *)
(* Severity escalation laws                                            *)
(* ------------------------------------------------------------------ *)

module Plan = Pte_faults.Plan
module Severity = Pte_faults.Severity

let vocab =
  Pte_tracheotomy.Robustness.vocabulary ~horizon:300.0 ()

let prop_escalate_extends_and_ranks =
  QCheck.Test.make
    ~name:"escalation only appends, strictly increases rank, keeps profile sorted"
    ~count:200
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let rng = Rng.create seed in
      let rec go plan depth =
        if depth = 0 then true
        else
          let next = Severity.escalate ~crashes:true ~vocab plan rng in
          let sorted =
            let rec ok = function
              | (a : Plan.loss_step) :: (b :: _ as rest) ->
                  a.Plan.at <= b.Plan.at && ok rest
              | _ -> true
            in
            ok next.Plan.loss_profile
          in
          Severity.is_extension ~base:plan next
          && Severity.rank next > Severity.rank plan
          && sorted
          && go next (depth - 1)
      in
      go Plan.empty 8)

let test_severity_rank () =
  Alcotest.(check int) "empty plan" 0 (Severity.rank Plan.empty);
  let drop =
    Plan.drop_nth ~entity:"vent" ~direction:Plan.Down ~root:"r" 0
  in
  let plan =
    {
      Plan.packet_faults = [ drop; { drop with Plan.occurrence = Plan.Every } ];
      node_faults = [ Plan.crash ~entity:"vent" ~at:10.0 ~blackout:5.0 ];
      loss_profile = [ Plan.loss_step ~at:60.0 ~loss:0.3 ];
    }
  in
  (* 1 (Nth drop) + 2 (Every drop) + 4 (crash) + 3 (30% loss step) *)
  Alcotest.(check int) "compound plan" 10 (Severity.rank plan)

let test_is_extension () =
  let drop n =
    Plan.drop_nth ~entity:"vent" ~direction:Plan.Down ~root:"r" n
  in
  let base = { Plan.empty with Plan.packet_faults = [ drop 0 ] } in
  let ext = { base with Plan.packet_faults = [ drop 0; drop 1 ] } in
  let reordered = { base with Plan.packet_faults = [ drop 1; drop 0 ] } in
  Alcotest.(check bool) "reflexive" true (Severity.is_extension ~base base);
  Alcotest.(check bool) "append is an extension" true
    (Severity.is_extension ~base ext);
  Alcotest.(check bool) "reorder is not" false
    (Severity.is_extension ~base reordered);
  Alcotest.(check bool) "removal is not" false
    (Severity.is_extension ~base:ext base)

(* ------------------------------------------------------------------ *)
(* Certification driver determinism                                    *)
(* ------------------------------------------------------------------ *)

(* A seconds-scale certify config: enough to exercise screen +
   splitting end-to-end and compare worker counts structurally. *)
let tiny_certify workers =
  let module C = Pte_tracheotomy.Certify in
  let base = C.smoke in
  let config =
    {
      base with
      C.horizon = 60.0;
      screen_max = 12;
      screen = Some { screen with Sprt.p0 = 0.05; p1 = 0.5 };
      split =
        { base.C.split with Split.particles = 4; keep = 0.3; max_stages = 2 };
      workers = Some workers;
    }
  in
  C.certify_design config (List.hd (C.designs config))

let test_certify_deterministic_across_workers () =
  let module C = Pte_tracheotomy.Certify in
  let r1 = tiny_certify 1 and r2 = tiny_certify 2 and r4 = tiny_certify 4 in
  let repr (c : C.cell) = Fmt.str "%a" C.pp_cell c in
  Alcotest.(check string) "1 vs 2 workers" (repr r1) (repr r2);
  Alcotest.(check string) "2 vs 4 workers" (repr r2) (repr r4)

let suite =
  [
    ( "rare.sprt",
      [
        Alcotest.test_case "accepts after a clean run" `Quick
          test_sprt_accepts_after_clean_run;
        Alcotest.test_case "rejects on hits" `Quick test_sprt_rejects_on_hits;
        Alcotest.test_case "validates configs" `Quick test_sprt_validate;
        Alcotest.test_case "Okamoto plan sizes" `Quick
          test_okamoto_required_trials;
        Alcotest.test_case "Okamoto upper bounds" `Quick
          test_okamoto_upper_bound;
      ] );
    ( "rare.split",
      [
        Alcotest.test_case "conservative at p = 1e-4" `Slow
          test_split_conservative_at_1e4;
        Alcotest.test_case "conservative at p = 1e-6" `Slow
          test_split_conservative_at_1e6;
        QCheck_alcotest.to_alcotest prop_split_never_unsound;
        Alcotest.test_case "deterministic at any worker count" `Quick
          test_split_deterministic_across_workers;
        Alcotest.test_case "validates configs" `Quick test_split_validate;
      ] );
    ( "rare.seq",
      [
        Alcotest.test_case "deterministic at any worker count" `Quick
          test_seq_deterministic_across_workers;
        Alcotest.test_case "SPRT verdicts" `Quick test_seq_verdicts;
        Alcotest.test_case "Okamoto rule" `Quick test_seq_okamoto_rule;
        Alcotest.test_case "checkpoint resume" `Quick
          test_seq_checkpoint_resume;
        Alcotest.test_case "resume refuses another rule" `Quick
          test_seq_resume_refuses_other_rule;
        Alcotest.test_case "resume refuses cross-version files" `Quick
          test_seq_resume_refuses_cross_version;
      ] );
    ( "rare.severity",
      [
        QCheck_alcotest.to_alcotest prop_escalate_extends_and_ranks;
        Alcotest.test_case "rank weights" `Quick test_severity_rank;
        Alcotest.test_case "extension laws" `Quick test_is_extension;
      ] );
    ( "rare.certify",
      [
        Alcotest.test_case "deterministic at 1/2/4 workers" `Slow
          test_certify_deterministic_across_workers;
      ] );
  ]
