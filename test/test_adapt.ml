(* The adaptive-resilience layer: channel-health estimator views
   (windowed rate, EWMA, burst detector vs the Gilbert–Elliott
   channel), escalation-policy hysteresis and flap-guards, the
   safe-switch protocol's Theorem-1 refusal surfacing in Trial
   metrics, and the end-to-end adaptive trial staying violation
   free while actually switching. *)

module Est = Pte_adapt.Estimator
module Policy = Pte_adapt.Policy
module Transport = Pte_net.Transport
module Emulation = Pte_tracheotomy.Emulation
module Trial = Pte_tracheotomy.Trial

(* ---- estimator: the three views and their blend ---- *)

let feed est outcomes =
  List.iteri
    (fun i confirmed -> Est.record est ~confirmed ~at:(Float.of_int i))
    outcomes

let test_estimator_windowed_rate () =
  let est = Est.create { Est.default_config with Est.window = 4 } in
  Alcotest.(check (float 1e-9)) "empty window reads clean" 0.0
    (Est.windowed_loss est);
  feed est [ true; false; true; false ];
  Alcotest.(check (float 1e-9)) "half lost" 0.5 (Est.windowed_loss est);
  (* two more losses evict the two oldest (one confirm, one loss) *)
  feed est [ false; false ];
  Alcotest.(check (float 1e-9)) "window slides" 0.75 (Est.windowed_loss est);
  Alcotest.(check int) "lifetime count keeps growing" 6 (Est.samples est)

let test_estimator_ewma_seeding () =
  let est = Est.create { Est.default_config with Est.ewma_alpha = 0.5 } in
  Est.record est ~confirmed:false ~at:1.0;
  Alcotest.(check (float 1e-9)) "first outcome seeds the EWMA" 1.0
    (Est.ewma_loss est);
  Est.record est ~confirmed:true ~at:2.0;
  Alcotest.(check (float 1e-9)) "then it smooths" 0.5 (Est.ewma_loss est);
  Alcotest.(check (float 1e-9)) "newest instant kept" 2.0 (Est.last_at est)

let test_estimator_burst_detector () =
  (* burst_k = 3 discriminates the wifi channel's states: the good
     state (2% loss) produces a triple with probability 8e-6, the bad
     state (90% loss) routinely — so three in a row must both flag the
     burst and floor the estimate at the bad-state loss rate *)
  let est = Est.create Est.default_config in
  feed est [ true; true; true; true; true; true; false; false ];
  Alcotest.(check bool) "two losses: no burst yet" false (Est.in_burst est);
  Alcotest.(check int) "run length" 2 (Est.consecutive_losses est);
  Alcotest.(check bool) "estimate still below the floor" true
    (Est.loss_estimate est < 0.9);
  Est.record est ~confirmed:false ~at:9.0;
  Alcotest.(check bool) "third loss flags the burst" true (Est.in_burst est);
  Alcotest.(check (float 1e-9)) "estimate floored at the bad-state rate" 0.9
    (Est.loss_estimate est);
  Est.record est ~confirmed:true ~at:10.0;
  Alcotest.(check bool) "one confirmation clears the burst" false
    (Est.in_burst est);
  Alcotest.(check int) "run reset" 0 (Est.consecutive_losses est)

let test_estimator_blend_is_pessimistic () =
  (* the blend takes max(windowed, ewma): a long-memory EWMA must keep
     the estimate up after a burst has already slid out of the window *)
  let est =
    Est.create { Est.default_config with Est.window = 4; ewma_alpha = 0.05 }
  in
  feed est (List.init 8 (fun _ -> false));
  feed est [ true; true; true; true ];
  Alcotest.(check (float 1e-9)) "window forgot the burst" 0.0
    (Est.windowed_loss est);
  Alcotest.(check bool) "the blend has not" true (Est.loss_estimate est > 0.5)

let test_estimator_validate () =
  let ok c = Result.is_ok (Est.validate c) in
  let d = Est.default_config in
  Alcotest.(check bool) "default valid" true (ok d);
  Alcotest.(check bool) "zero window" false (ok { d with Est.window = 0 });
  Alcotest.(check bool) "alpha 0" false (ok { d with Est.ewma_alpha = 0.0 });
  Alcotest.(check bool) "alpha > 1" false (ok { d with Est.ewma_alpha = 1.5 });
  Alcotest.(check bool) "zero burst_k" false (ok { d with Est.burst_k = 0 });
  Alcotest.(check bool) "floor > 1" false (ok { d with Est.burst_floor = 1.5 });
  match Est.create { d with Est.window = 0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "create must reject an ill-formed config"

(* ---- policy: hysteresis band and flap-guards ---- *)

let decide ?(tier = Policy.Healthy) ?(estimate = 0.0) ?(samples = 100)
    ?(since_switch = 1e9) ?(in_burst = false) () =
  Policy.decide Policy.default_config ~tier ~estimate ~samples ~since_switch
    ~in_burst

let test_policy_hysteresis () =
  Alcotest.(check bool) "healthy + high loss escalates" true
    (decide ~estimate:0.5 () = Policy.Escalate);
  Alcotest.(check bool) "healthy inside the band stays" true
    (decide ~estimate:0.25 () = Policy.Stay);
  Alcotest.(check bool) "degraded inside the band stays" true
    (decide ~tier:Policy.Degraded ~estimate:0.25 () = Policy.Stay);
  Alcotest.(check bool) "degraded + clean channel de-escalates" true
    (decide ~tier:Policy.Degraded ~estimate:0.05 () = Policy.Deescalate);
  Alcotest.(check bool) "degraded at the escalation threshold stays" true
    (decide ~tier:Policy.Degraded ~estimate:0.35 () = Policy.Stay)

let test_policy_flap_guards () =
  Alcotest.(check bool) "too few samples: stay" true
    (decide ~estimate:0.9 ~samples:2 () = Policy.Stay);
  Alcotest.(check bool) "a burst bypasses the sample guard" true
    (decide ~estimate:0.9 ~samples:2 ~in_burst:true () = Policy.Escalate);
  Alcotest.(check bool) "but never the dwell guard" true
    (decide ~estimate:0.9 ~samples:2 ~in_burst:true ~since_switch:5.0 ()
    = Policy.Stay);
  Alcotest.(check bool) "inside the dwell: stay even when seasoned" true
    (decide ~estimate:0.9 ~since_switch:29.9 () = Policy.Stay);
  Alcotest.(check bool) "no de-escalation while a burst is running" true
    (decide ~tier:Policy.Degraded ~estimate:0.05 ~in_burst:true ()
    = Policy.Stay)

let test_policy_validate () =
  let ok c = Result.is_ok (Policy.validate c) in
  let d = Policy.default_config in
  Alcotest.(check bool) "default valid" true (ok d);
  Alcotest.(check bool) "inverted band" false
    (ok { d with Policy.recover_below = 0.5 });
  Alcotest.(check bool) "degenerate band" false
    (ok { d with Policy.recover_below = d.Policy.degrade_above });
  Alcotest.(check bool) "zero samples" false
    (ok { d with Policy.min_samples = 0 });
  Alcotest.(check bool) "negative dwell" false
    (ok { d with Policy.min_dwell = -1.0 })

(* ---- spec-string parsing of the adaptive mode ---- *)

let test_adaptive_spec_parsing () =
  (match Transport.mode_of_string "adaptive" with
  | Ok (`Adaptive a) ->
      Alcotest.(check bool) "defaults" true (a = Transport.default_adaptive)
  | _ -> Alcotest.fail "plain adaptive must parse");
  (match
     Transport.mode_of_string
       "adaptive:healthy=bare,degrade=0.5,recover=0.2,dwell=10,samples=4,window=30,burst=2,budget=1.9"
   with
  | Ok (`Adaptive a) ->
      Alcotest.(check bool) "healthy sub-mode" true
        (a.Transport.healthy = `Bare);
      Alcotest.(check (float 1e-9)) "degrade" 0.5
        a.Transport.policy.Policy.degrade_above;
      Alcotest.(check (float 1e-9)) "recover" 0.2
        a.Transport.policy.Policy.recover_below;
      Alcotest.(check (float 1e-9)) "dwell" 10.0
        a.Transport.policy.Policy.min_dwell;
      Alcotest.(check int) "samples" 4 a.Transport.policy.Policy.min_samples;
      Alcotest.(check int) "window" 30 a.Transport.estimator.Est.window;
      Alcotest.(check int) "burst" 2 a.Transport.estimator.Est.burst_k;
      Alcotest.(check bool) "budget pinned" true
        (a.Transport.budget = Some 1.9)
  | _ -> Alcotest.fail "well-formed adaptive spec must parse");
  (match Transport.mode_of_string "adaptive:degrade=0.1,recover=0.3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "an inverted hysteresis band must be rejected");
  match Transport.mode_of_string "adaptive:turbo=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown adaptive key must be rejected"

(* ---- the safe-switch protocol refuses an over-budget candidate ----

   The degraded template pins 12 blind copies with a permissive
   synthesis budget, so escalation-time synthesis succeeds — and the
   c1–c7 admission recheck (installed by Emulation.build as
   Constraints.satisfies_with_delay) must then refuse the candidate:
   its worst-case latency overshoots the 2 s Theorem-1 budget. The
   transport stays healthy for the whole trial and every refusal is
   counted in the Trial metrics. *)

let test_over_budget_escalation_refused () =
  let over_budget =
    { Pte_sched.Synth.default_policy with
      Pte_sched.Synth.retries = Some 12;
      budget = Some 100.0;
    }
  in
  let config =
    {
      Emulation.default with
      horizon = 300.0;
      seed = 61;
      e_ton = 5.0;
      e_toff = 60.0;
      loss = Pte_net.Loss.wifi_interference ~average_loss:0.6;
      transport =
        `Adaptive
          { Transport.default_adaptive with Transport.degraded = over_budget };
    }
  in
  let r = Trial.run config in
  Alcotest.(check bool)
    (Fmt.str "refusals counted (%d)" r.Trial.switch_refusals)
    true
    (r.Trial.switch_refusals >= 1);
  Alcotest.(check int) "no escalation ever committed" 0
    r.Trial.mode_switches_up;
  Alcotest.(check int) "no de-escalation either" 0 r.Trial.mode_switches_down;
  Alcotest.(check bool) "no degraded schedule ever installed" true
    (r.Trial.schedule = None);
  Alcotest.(check int) "still violation free in the refused mode" 0
    r.Trial.failures

(* ---- end-to-end: the adaptive trial escalates on a bad channel,
        de-escalates on recovery, and never violates PTE ---- *)

let test_adaptive_trial_switches_and_stays_safe () =
  let recovery =
    { Pte_faults.Plan.empty with
      Pte_faults.Plan.loss_profile =
        [ Pte_faults.Plan.loss_step ~at:150.0 ~loss:0.0 ];
    }
  in
  let config =
    {
      Emulation.default with
      horizon = 300.0;
      seed = 62;
      e_ton = 5.0;
      e_toff = 60.0;
      loss = Pte_net.Loss.wifi_interference ~average_loss:0.6;
      faults = recovery;
      transport = `Adaptive Transport.default_adaptive;
    }
  in
  let r = Trial.run config in
  Alcotest.(check bool)
    (Fmt.str "escalated on the bad half (%d up)" r.Trial.mode_switches_up)
    true
    (r.Trial.mode_switches_up >= 1);
  Alcotest.(check bool)
    (Fmt.str "de-escalated after recovery (%d down)"
       r.Trial.mode_switches_down)
    true
    (r.Trial.mode_switches_down >= 1);
  Alcotest.(check bool) "ends healthy: no degraded schedule in force" true
    (r.Trial.schedule = None);
  Alcotest.(check bool)
    (Fmt.str "measured worst latency %.2fs within the Theorem-1 budget"
       r.Trial.worst_latency)
    true
    (r.Trial.worst_latency
    <= Pte_core.Constraints.max_delay_budget config.Emulation.params);
  Alcotest.(check int) "violation free across both switches" 0
    r.Trial.failures;
  (* without the recovery step the trial ends degraded, and the
     schedule it committed — synthesized for the estimated loss — is
     visible and inside the budget *)
  let r2 =
    Trial.run { config with Emulation.faults = Pte_faults.Plan.empty }
  in
  Alcotest.(check bool) "sustained loss: escalated" true
    (r2.Trial.mode_switches_up >= 1);
  match r2.Trial.schedule with
  | Some sched ->
      Alcotest.(check bool) "committed schedule fits the budget" true
        (Pte_sched.Schedule.worst_case_latency sched
        <= Pte_core.Constraints.max_delay_budget config.Emulation.params)
  | None -> Alcotest.fail "a trial ending degraded must expose its schedule"

(* ---- legacy invariant: adaptation off changes nothing ----

   A static-mode trial must not feel the adaptive layer at all: the
   estimator hooks are no-ops when the transport carries no adaptive
   state, so bare/reliable/scheduled results are identical to what the
   seeds always produced (the cram suite pins the literal bytes; this
   checks the stronger record equality on a fresh pair of runs). *)

let test_static_modes_unaffected () =
  List.iter
    (fun transport ->
      let config =
        { Emulation.default with Emulation.horizon = 60.0; seed = 63; transport }
      in
      let a = Trial.run config in
      let b = Trial.run config in
      Alcotest.(check bool) "deterministic replay" true (a = b);
      Alcotest.(check int) "no switches in a static mode" 0
        (a.Trial.mode_switches_up + a.Trial.mode_switches_down
       + a.Trial.switch_refusals))
    [ `Bare;
      `Reliable Transport.default_config;
      `Scheduled Pte_sched.Synth.default_policy ]

let suite =
  [
    ( "adapt.estimator",
      [
        Alcotest.test_case "windowed rate slides" `Quick
          test_estimator_windowed_rate;
        Alcotest.test_case "EWMA seeds on the first outcome" `Quick
          test_estimator_ewma_seeding;
        Alcotest.test_case "burst detector vs Gilbert-Elliott" `Quick
          test_estimator_burst_detector;
        Alcotest.test_case "blend stays pessimistic" `Quick
          test_estimator_blend_is_pessimistic;
        Alcotest.test_case "config validation" `Quick test_estimator_validate;
      ] );
    ( "adapt.policy",
      [
        Alcotest.test_case "hysteresis band" `Quick test_policy_hysteresis;
        Alcotest.test_case "sample/dwell flap-guards" `Quick
          test_policy_flap_guards;
        Alcotest.test_case "config validation" `Quick test_policy_validate;
      ] );
    ( "net.transport.adaptive",
      [
        Alcotest.test_case "spec-string parsing" `Quick
          test_adaptive_spec_parsing;
        Alcotest.test_case "over-budget escalation refused and counted"
          `Slow test_over_budget_escalation_refused;
        Alcotest.test_case "trial switches both ways, stays safe" `Slow
          test_adaptive_trial_switches_and_stays_safe;
        Alcotest.test_case "static modes untouched by the adaptive layer"
          `Quick test_static_modes_unaffected;
      ] );
  ]
