The campaign CLI advertises its subcommands:

  $ ../../bin/pte_campaign_cli.exe --help=plain | head -n 12
  NAME
         pte-campaign - parallel, checkpointable Monte-Carlo emulation
         campaigns
  
  SYNOPSIS
         pte-campaign COMMAND …
  
  DESCRIPTION
         Runs grids of laser-tracheotomy emulation trials on a pool of worker
         domains. Per-trial PRNG streams are split off the master seed by job
         index, so results are identical at any worker count and across
         checkpoint/resume cycles.

A tiny 4-job Table I campaign (one replicate per cell, 3 simulated
minutes) is deterministic and writes one JSONL line per trial:

  $ ../../bin/pte_campaign_cli.exe table1 --reps 1 --minutes 3 --workers 2 --seed 2013 --out results.jsonl
  campaign: 4 jobs — 4 ok, 0 failed, 0 resumed
  == Table I campaign: 3-minute trials, seed 2013, 1 replicates ==
  +---------------+-----------+------+-----------+----------+--------------+-----------+-----------------+
  | Trial Mode    | E(Toff) s | reps | emissions | failures | failing reps | evtToStop | longest pause s |
  +---------------+-----------+------+-----------+----------+--------------+-----------+-----------------+
  | with Lease    |        18 |    1 |       2.0 |      0.0 |          0/1 |       1.0 |            33.1 |
  | without Lease |        18 |    1 |       0.0 |      1.0 |          1/1 |       0.0 |            63.0 |
  | with Lease    |         6 |    1 |       1.0 |      0.0 |          0/1 |       0.0 |            17.1 |
  | without Lease |         6 |    1 |       2.0 |      0.0 |          0/1 |       0.0 |            21.3 |
  +---------------+-----------+------+-----------+----------+--------------+-----------+-----------------+
  

  $ wc -l < results.jsonl
  5

  $ grep -c '"status":"ok"' results.jsonl
  4

The first line is a header naming the campaign (master seed, grid
shape, per-job seed digest):

  $ head -n 1 results.jsonl | grep -c campaign-header
  1

Resuming on an already-complete results file re-runs nothing and
reproduces the identical aggregate table:

  $ ../../bin/pte_campaign_cli.exe table1 --reps 1 --minutes 3 --workers 2 --seed 2013 --out results.jsonl --resume
  campaign: 4 jobs — 4 ok, 0 failed, 4 resumed
  == Table I campaign: 3-minute trials, seed 2013, 1 replicates ==
  +---------------+-----------+------+-----------+----------+--------------+-----------+-----------------+
  | Trial Mode    | E(Toff) s | reps | emissions | failures | failing reps | evtToStop | longest pause s |
  +---------------+-----------+------+-----------+----------+--------------+-----------+-----------------+
  | with Lease    |        18 |    1 |       2.0 |      0.0 |          0/1 |       1.0 |            33.1 |
  | without Lease |        18 |    1 |       0.0 |      1.0 |          1/1 |       0.0 |            63.0 |
  | with Lease    |         6 |    1 |       1.0 |      0.0 |          0/1 |       0.0 |            17.1 |
  | without Lease |         6 |    1 |       2.0 |      0.0 |          0/1 |       0.0 |            21.3 |
  +---------------+-----------+------+-----------+----------+--------------+-----------+-----------------+
  

Resuming with a different master seed is refused — the checkpoint's
header names a different campaign:

  $ ../../bin/pte_campaign_cli.exe table1 --reps 1 --minutes 3 --workers 2 --seed 2014 --out results.jsonl --resume 2>&1 | sed 's/digest [0-9a-f]*/digest .../g'
  pte-campaign: checkpoint results.jsonl was written by a different campaign (file: seed 2013, 4 cells x 1 reps, digest ..., version pte-campaign/8; expected: seed 2014, 4 cells x 1 reps, digest ..., version pte-campaign/8)
