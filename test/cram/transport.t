The reliable transport is opt-in: the bare default reproduces the
paper's single-shot radio byte-for-byte, and `--transport reliable`
adds ACK/retransmission plus the Theorem-1 recheck of the retry
budget. At 40% loss the reliable variant keeps the laser available
(more emissions) while staying violation free:

  $ ../../bin/pte_sim_cli.exe --minutes 5 --loss 0.4 --seed 7
  5-minute trial (with lease, E(Ton)=30s, E(Toff)=18s, loss 0.4, seed 7)
    emissions:2 failures:0 evtToStop:0 aborts:0 requests:7 longest-pause:22.4s longest-emission:10.8s minSpO2:93.9 loss:26%

  $ ../../bin/pte_sim_cli.exe --minutes 5 --loss 0.4 --seed 7 --transport reliable
  5-minute trial (with lease, E(Ton)=30s, E(Toff)=18s, loss 0.4, seed 7)
    emissions:4 failures:0 evtToStop:2 aborts:0 requests:7 longest-pause:33.9s longest-emission:21.5s minSpO2:92.2 loss:30%
    transport: reliable (retries:3 rto:0.25s x2 cap:2s jitter:0.05s) retx:30 gave-up:1 dups:10

The retry policy is tunable from the spec string, and an ill-formed
config is rejected up front with the validator's reason and a nonzero
exit — it never reaches a trial:

  $ ../../bin/pte_sim_cli.exe --minutes 1 --transport reliable:jitter=-0.5
  pte-sim: option '--transport': transport: jitter must be >= 0
  Usage: pte-sim [OPTION]…
  Try 'pte-sim --help' for more information.
  [124]

  $ ../../bin/pte_sim_cli.exe --minutes 1 --transport reliable:speed=9
  pte-sim: option '--transport': transport: unknown key "speed" (expected
           retries|rto|multiplier|cap|jitter)
  Usage: pte-sim [OPTION]…
  Try 'pte-sim --help' for more information.
  [124]

Unknown modes name every alternative, on both CLIs:

  $ ../../bin/pte_sim_cli.exe --minutes 1 --transport turbo
  pte-sim: option '--transport': unknown transport "turbo" (expected bare,
           reliable[:k=v,...], scheduled[:k=v,...] or adaptive[:k=v,...])
  Usage: pte-sim [OPTION]…
  Try 'pte-sim --help' for more information.
  [124]

  $ ../../bin/pte_faults_cli.exe coverage --transport turbo
  pte-faults: option '--transport': unknown transport "turbo" (expected bare,
              reliable[:k=v,...], scheduled[:k=v,...] or adaptive[:k=v,...])
  Usage: pte-faults coverage [OPTION]…
  Try 'pte-faults coverage --help' or 'pte-faults --help' for more information.
  [124]

`--transport scheduled` swaps ARQ for the synthesized time-triggered
round schedule: blind slot-aligned retransmissions, no ACKs, and a
design-time worst-case delivery latency that the trial's measured
worst must never exceed:

  $ ../../bin/pte_sim_cli.exe --minutes 5 --loss 0.4 --seed 7 --transport scheduled
  5-minute trial (with lease, E(Ton)=30s, E(Toff)=18s, loss 0.4, seed 7)
    emissions:2 failures:0 evtToStop:0 aborts:8 requests:7 longest-pause:41.0s longest-emission:5.1s minSpO2:91.0 loss:51%
    transport: scheduled (slots:4 period:0.12s retries:3 depth:2) wcl-bound:1.02s worst-seen:0.34s gave-up:5

Its synthesis knobs ride the same spec-string syntax, and a pinned
policy that overshoots the Theorem-1 delay budget is rejected before
any trial runs:

  $ ../../bin/pte_sim_cli.exe --minutes 1 --transport scheduled:window=4
  pte-sim: option '--transport': transport: unknown key "window" (expected
           slot|retries|loss|confidence|depth|budget)
  Usage: pte-sim [OPTION]…
  Try 'pte-sim --help' for more information.
  [124]

  $ ../../bin/pte_sim_cli.exe --minutes 1 --transport scheduled:retries=12
  pte-sim: Emulation.build: schedule synthesis: minimal schedule needs 3.18s but the delay budget is 2s
  [2]

`--transport adaptive` starts in a healthy ARQ tier and watches the
channel online: when the per-attempt loss estimate crosses the
escalation threshold (and the Theorem-1 recheck admits the candidate
schedule) it switches to a synthesized time-triggered degraded tier.
On a steady 60% channel it escalates once and ends the trial
degraded, violation free:

  $ ../../bin/pte_sim_cli.exe --minutes 5 --loss 0.6 --seed 7 --transport adaptive
  5-minute trial (with lease, E(Ton)=30s, E(Toff)=18s, loss 0.6, seed 7)
    emissions:3 failures:0 evtToStop:1 aborts:0 requests:7 longest-pause:33.2s longest-emission:21.5s minSpO2:92.2 loss:55%
    transport: adaptive switches-up:1 switches-down:0 switch-refusals:0 gave-up:3 worst-seen:0.90s (ended degraded)

Its knobs ride the same spec-string syntax; the validators reject an
inverted hysteresis band and unknown keys up front:

  $ ../../bin/pte_sim_cli.exe --minutes 1 --transport adaptive:degrade=0.2,recover=0.5
  pte-sim: option '--transport': policy: recover_below must be < degrade_above
           (hysteresis)
  Usage: pte-sim [OPTION]…
  Try 'pte-sim --help' for more information.
  [124]

  $ ../../bin/pte_sim_cli.exe --minutes 1 --transport adaptive:turbo=1
  pte-sim: option '--transport': transport: unknown key "turbo" (expected
           healthy|degrade|recover|dwell|samples|window|burst|budget)
  Usage: pte-sim [OPTION]…
  Try 'pte-sim --help' for more information.
  [124]

`--loss-model` swaps the Table-I WiFi channel for an explicit model
(a raw Gilbert-Elliott chain here), and names the alternatives when
it cannot parse one:

  $ ../../bin/pte_sim_cli.exe --minutes 5 --seed 7 --loss-model ge:0.1,0.3,0.05,0.9
  5-minute trial (with lease, E(Ton)=30s, E(Toff)=18s, loss gilbert-elliott(bad:0.100 good:0.300), seed 7)
    emissions:2 failures:0 evtToStop:0 aborts:0 requests:7 longest-pause:25.8s longest-emission:14.9s minSpO2:93.4 loss:26%

  $ ../../bin/pte_sim_cli.exe --minutes 1 --loss-model nope
  pte-sim: option '--loss-model': unknown loss model "nope" (expected perfect,
           wifi:<avg>, bernoulli:<p>, ge:to_bad,to_good,loss_good,loss_bad or
           interferer:period,burst,loss_during,loss_idle)
  Usage: pte-sim [OPTION]…
  Try 'pte-sim --help' for more information.
  [124]

The coverage campaign reruns every scripted single-drop target over
the reliable transport; retransmission recovers each drop, so both
lease columns stay at zero violations:

  $ ../../bin/pte_faults_cli.exe coverage --transport reliable --minutes 5 --occurrences 1 --workers 2 | tail -n 3
  roots targeted: 12/12 (100%)  exercised: 8/12
  with-lease violations: 0 (expect 0)
  without-lease violations: 0 (expect > 0)
