The constraint checker accepts the paper's case-study configuration:

  $ ../../bin/pte_check.exe | tail -7
  [ok] c1: all configuration time constants are positive — all 9 constants positive
  [ok] c2: T_LS1 = T_enter,1 + T_run,1 + T_exit,1 > N * T_wait — T_LS1 = 44 > 6 = N*T_wait
  [ok] c3: (N-1) * T_wait < T_req,N < T_LS1 — 3 < T_req,N = 5 < 44
  [ok] c4: forall i: (i-1)*T_wait + T_enter,i + T_run,i + T_exit,i <= T_LS1 — holds for i=1..2
  [ok] c5: forall i<N: T_enter,i + T_risky:i->i+1 < T_enter,i+1 — holds for i=1..1
  [ok] c6: forall i<N: T_enter,i + T_run,i > T_wait + T_enter,i+1 + T_run,i+1 + T_exit,i+1 — holds for i=1..1
  [ok] c7: forall i<N: T_exit,i > T_safe:i+1->i — holds for i=1..1

and rejects the paper's c5-violation scenario with exit code 1:

  $ ../../bin/pte_check.exe --t-enter-2 3 > /dev/null 2>&1
  [1]

`--transports` reports every transport mode's worst-case latency
against the Theorem-1 delay budget — the 1.93 s / 2.0 s reliable
headroom of DESIGN §8 and the synthesized schedule's 1.02 s bound of
§10 — and exits 0 only while every mode fits:

  $ ../../bin/pte_check.exe --transports
  Theorem-1 delay budget: 2.000 s (c1-c7 under message delay)
    bare                     worst-case 0.030 s  slack +1.970 s
    reliable (default)       worst-case 1.930 s  slack +0.070 s
    scheduled (synthesized)  worst-case 1.020 s  slack +0.980 s

Tightening the request deadline shrinks the budget (c3 binds) below
the reliable default's worst case, and the report flags it with exit 1
while the leaner synthesized schedule still fits:

  $ ../../bin/pte_check.exe --transports --t-req 4.5
  Theorem-1 delay budget: 1.500 s (c1-c7 under message delay)
    bare                     worst-case 0.030 s  slack +1.470 s
    reliable (default)       worst-case 1.930 s  slack -0.430 s
    scheduled (synthesized)  worst-case 1.020 s  slack +0.480 s
  [1]

The Graphviz exporter emits a digraph for the stand-alone ventilator:

  $ ../../bin/pte_dot.exe ventilator-standalone | head -3
  digraph "vent-standalone" {
    rankdir=LR;
    node [shape=box, style=rounded];

and lists the known automata on a bad name:

  $ ../../bin/pte_dot.exe nonsense
  unknown automaton "nonsense"; choose from: supervisor, initializer, initializer-nolease, participant, participant-nolease, ventilator-standalone, ventilator-elaborated, patient
  [2]
