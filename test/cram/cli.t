The constraint checker accepts the paper's case-study configuration:

  $ ../../bin/pte_check.exe | tail -7
  [ok] c1: all configuration time constants are positive — all 9 constants positive
  [ok] c2: T_LS1 = T_enter,1 + T_run,1 + T_exit,1 > N * T_wait — T_LS1 = 44 > 6 = N*T_wait
  [ok] c3: (N-1) * T_wait < T_req,N < T_LS1 — 3 < T_req,N = 5 < 44
  [ok] c4: forall i: (i-1)*T_wait + T_enter,i + T_run,i + T_exit,i <= T_LS1 — holds for i=1..2
  [ok] c5: forall i<N: T_enter,i + T_risky:i->i+1 < T_enter,i+1 — holds for i=1..1
  [ok] c6: forall i<N: T_enter,i + T_run,i > T_wait + T_enter,i+1 + T_run,i+1 + T_exit,i+1 — holds for i=1..1
  [ok] c7: forall i<N: T_exit,i > T_safe:i+1->i — holds for i=1..1

and rejects the paper's c5-violation scenario with exit code 1:

  $ ../../bin/pte_check.exe --t-enter-2 3 > /dev/null 2>&1
  [1]

The Graphviz exporter emits a digraph for the stand-alone ventilator:

  $ ../../bin/pte_dot.exe ventilator-standalone | head -3
  digraph "vent-standalone" {
    rankdir=LR;
    node [shape=box, style=rounded];

and lists the known automata on a bad name:

  $ ../../bin/pte_dot.exe nonsense
  unknown automaton "nonsense"; choose from: supervisor, initializer, initializer-nolease, participant, participant-nolease, ventilator-standalone, ventilator-elaborated, patient
  [2]
