The static analyzer reports zero diagnostics on every shipped clean
system and exits 0:

  $ ../../bin/pte_lint_cli.exe
  == pattern: no diagnostics
  == pattern-n3: no diagnostics
  == pattern-n4: no diagnostics
  == tracheotomy: no diagnostics
  == tracheotomy-bare: no diagnostics
  == multi: no diagnostics
  == multi-n3: no diagnostics

The paper's without-lease baseline is flagged (Rule 1's lease self-reset
certificate fails) and the exit code is non-zero:

  $ ../../bin/pte_lint_cli.exe pattern-nolease > /dev/null
  [1]
  $ ../../bin/pte_lint_cli.exe pattern-nolease | grep -o 'error\[L0[0-9]*\]' | sort -u
  error[L010]
  error[L020]

JSON reports carry the machine-readable diagnostic stream:

  $ ../../bin/pte_lint_cli.exe --json tracheotomy-bare
  {"system":"tracheotomy-bare","errors":0,"warnings":0,"diagnostics":[]}

The registry lists every stable code:

  $ ../../bin/pte_lint_cli.exe --codes | head -3
  L001  warning sent event is never received by any other automaton
  L002  error   received event is never sent by any other automaton
  L003  error   reliable ?l receive on a root that crosses the lossy star

Unknown system names exit 2:

  $ ../../bin/pte_lint_cli.exe nonsense 2> /dev/null
  [2]

The Graphviz exporter highlights diagnosed sites:

  $ ../../bin/pte_dot.exe --lint initializer-nolease | grep -c crimson
  3
