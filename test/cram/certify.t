The rare-event certification engine at the CI smoke scale (5-minute
trial horizon, 16 particles x 10 stages, target 1e-3): the SPRT screen
certifies the with-lease design in 59 clean trials and refutes the
without-lease baseline almost immediately; importance splitting then
bounds the with-lease violation rate below the target, so the pair
matches the case study's expected shape and the checker exits 0:

  $ ../../bin/pte_check.exe --certify --certify-minutes 5 --target 1e-3 \
  >   --particles 16 --stages 10 --min-effective 1e3 --seed 9300
  certification target 0.001 at confidence 0.99 (>= 1000 effective trials)
  with-lease:
    screen: CERTIFIED after 59 trials (0 hits; rate upper bound 0.0495; SPRT p0=0.001 p1=0.05 α=0.05 β=0.05)
    splitting: stage 0: level 0.353833, 2/16 survive (p̂=0.125, upper 0.514)
               stage 1: level 0.364692, 2/16 survive (p̂=0.125, upper 0.514)
               stage 2: level 0.36487, 2/16 survive (p̂=0.125, upper 0.514)
               stage 3: level 0.364955, 2/16 survive (p̂=0.125, upper 0.514)
               stage 4: level 0.365769, 2/16 survive (p̂=0.125, upper 0.514)
               stage 5: level 0.366253, 2/16 survive (p̂=0.125, upper 0.514)
               stage 6: level 0.366626, 2/16 survive (p̂=0.125, upper 0.514)
               stage 7: level 0.366923, 2/16 survive (p̂=0.125, upper 0.514)
               stage 8: level 0.367164, 2/16 survive (p̂=0.125, upper 0.514)
               stage 9: level 1, 0/16 survive (p̂=0, upper 0.354)
               converged: estimate 0, upper bound 0.000895, 2.14748e+09 effective trials (160 run over 10 stages)
    bound 0.000895, 2.14748e+09 effective trials, 219 trials run -> CERTIFIED
  without-lease:
    screen: REFUTED after 2 trials (1 hits; rate upper bound 1; SPRT p0=0.001 p1=0.05 α=0.05 β=0.05)
    splitting: not reached
    bound 1, 0 effective trials, 2 trials run -> NOT CERTIFIED
  verdict: PASS (lease certified; baseline refuted)

A target the configured effort cannot reach (1e-9 on a 2-stage budget)
must fail loudly — the report says NOT CERTIFIED and the exit code is
nonzero, so a CI gate cannot mistake an under-powered run for a
certificate:

  $ ../../bin/pte_check.exe --certify --no-screen --certify-minutes 5 \
  >   --target 1e-9 --particles 4 --stages 2 --min-effective 1 --seed 9300
  certification target 1e-09 at confidence 0.99 (>= 1 effective trials)
  with-lease:
    screen: skipped
    splitting: stage 0: level 0.341731, 1/4 survive (p̂=0.25, upper 0.796)
               stage 1: level 1, 0/4 survive (p̂=0, upper 0.76)
               converged: estimate 0, upper bound 0.605, 16 effective trials (8 run over 2 stages)
    bound 0.605, 16 effective trials, 8 trials run -> NOT CERTIFIED
  without-lease:
    screen: skipped
    splitting: stage 0: level 1, 1/4 survive (p̂=0.25, upper 0.796)
               converged: estimate 0.25, upper bound 0.796, 4 effective trials (4 run over 1 stages)
    bound 0.796, 4 effective trials, 4 trials run -> NOT CERTIFIED
  verdict: FAIL
  [1]
