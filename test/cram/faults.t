The fault-injection CLI advertises its subcommands:

  $ ../../bin/pte_faults_cli.exe --help=plain | head -n 12
  NAME
         pte-faults - deterministic fault injection for the PTE lease design
  
  SYNOPSIS
         pte-faults COMMAND …
  
  DESCRIPTION
         Injects scripted packet faults (drop / corrupt / delay / duplicate,
         selected by link, event root, occurrence and time window) and node
         faults (crash-and-reboot, clock drift) into the laser-tracheotomy
         emulation. Plans are JSON and replay byte-identically from (plan,
         seed).

A scripted plan drops exactly the first surgeon-cancel on the laser's
uplink (the paper's S2 scenario). With the lease the system shrugs it
off:

  $ cat drop-cancel.json
  {"packet":[{"entity":"laser","direction":"up","root":"evt_laser_to_s_cancel","occurrence":0,"action":"drop"}],"node":[]}

  $ ../../bin/pte_faults_cli.exe inject --plan drop-cancel.json --minutes 5
  plan:
  drop #0 of evt_laser_to_s_cancel on laser uplink
  trial (seed 7100, 300s, lease true): emissions:2 failures:0 evtToStop:0 aborts:4 requests:5 longest-pause:41.0s longest-emission:20.3s minSpO2:91.0 loss:4%
  faults fired: 1

The same single loss without the lease overruns the 60 s pause bound
(exit code 1 flags the violation):

  $ ../../bin/pte_faults_cli.exe inject --plan drop-cancel.json --minutes 5 --no-lease
  plan:
  drop #0 of evt_laser_to_s_cancel on laser uplink
  trial (seed 7100, 300s, lease false): emissions:2 failures:1 evtToStop:0 aborts:4 requests:5 longest-pause:63.0s longest-emission:20.3s minSpO2:87.5 loss:3%
  faults fired: 1
  violation: Rule 1: ventilator dwelt in risky-locations 68.110..131.110 (63.000s > bound 60.000s)
  [1]

The coverage campaign targets every protocol root once; with-lease
trials never violate (Theorem 1 covers message loss), the no-lease
baseline degrades:

  $ ../../bin/pte_faults_cli.exe coverage --minutes 5 --occurrences 1 --workers 2
  root                                   link             occ  fired  viol(lease)  viol(none)
  evt_laser_to_s_req                     laser/up           0    yes            0           0
  evt_laser_to_s_cancel                  laser/up           0    yes            0           1
  evt_laser_to_s_exit                    laser/up           0    yes            0           1
  evt_ventilator_to_s_lease_approve      ventilator/up      0    yes            0           0
  evt_ventilator_to_s_lease_deny         ventilator/up      0     no            0           0
  evt_ventilator_to_s_exited             ventilator/up      0    yes            0           0
  evt_s_to_ventilator_lease_req          ventilator/down    0    yes            0           0
  evt_s_to_ventilator_cancel             ventilator/down    0    yes            0           0
  evt_s_to_ventilator_abort              ventilator/down    0     no            0           0
  evt_s_to_laser_approve                 laser/down         0    yes            0           1
  evt_s_to_laser_cancel                  laser/down         0     no            0           0
  evt_s_to_laser_abort                   laser/down         0     no            0           0
  roots targeted: 12/12 (100%)  exercised: 8/12
  with-lease violations: 0 (expect 0)
  without-lease violations: 3 (expect > 0)

A checked-in minimal counterexample — found by fuzzing, shrunk to a
single node fault — replays deterministically. A 70 ms ventilator
crash is enough to break the lease's bookkeeping (fail-stop restarts
sit outside Theorem 1's message-loss fault model):

  $ cat minimal-counterexample.json
  {"type":"pte-fault-artifact","plan":{"packet":[],"node":[{"fault":"crash","entity":"ventilator","at":168.142611426504,"blackout":0.070298542665503713}]},"trial_seed":3099,"horizon":300,"lease":true,"failures":1}

  $ ../../bin/pte_faults_cli.exe inject --artifact minimal-counterexample.json
  plan:
  crash ventilator at 168.143s for 0.0702985s
  trial (seed 3099, 300s, lease true): emissions:4 failures:1 evtToStop:2 aborts:0 requests:8 longest-pause:66.6s longest-emission:21.5s minSpO2:92.3 loss:0%
  faults fired: 0
  violation: Rule 1: ventilator dwelt in risky-locations 154.840..221.480 (66.640s > bound 60.000s)
  [1]

A malformed plan is rejected with a parse error, not a crash:

  $ echo '{"packet": [{"entity": "laser"}]}' > bad.json
  $ ../../bin/pte_faults_cli.exe inject --plan bad.json
  pte-faults: plan: missing or bad "direction"
  [2]
