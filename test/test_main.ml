(* Aggregates every suite; `dune runtest` runs them all. *)

let () =
  Alcotest.run "pte-lease"
    (Test_rng.suite @ Test_heap.suite @ Test_stats.suite @ Test_table.suite
   @ Test_campaign.suite
   @ Test_guard.suite @ Test_valuation.suite @ Test_flow_reset.suite
   @ Test_automaton.suite @ Test_wellformed.suite @ Test_trace.suite
   @ Test_executor.suite @ Test_export.suite
   @ Test_elaboration.suite @ Test_crc.suite @ Test_loss.suite
   @ Test_network.suite @ Test_sched.suite @ Test_transport.suite
   @ Test_adapt.suite
   @ Test_constraints.suite
   @ Test_synthesis.suite
   @ Test_monitor.suite @ Test_monitor_reference.suite @ Test_pattern.suite
   @ Test_multi.suite @ Test_sequencing.suite
   @ Test_compliance.suite
   @ Test_engine.suite @ Test_dbm.suite @ Test_mc.suite
   @ Test_tracheotomy.suite @ Test_scenarios.suite @ Test_faults.suite
   @ Test_rare.suite
   @ Test_integration.suite @ Test_lint.suite)
