(** Schedule a plan's node faults on a simulation engine.

    Crashes become a periodic engine process that halts the entity at
    [at] and reboots it (initial location, initial valuation) after
    [blackout] seconds. Clock drift is applied immediately: the entity's
    flows advance [factor] local seconds per global second, eating into
    the c1–c7 timing margins exactly the way a drifting MCU oscillator
    would. Both fault kinds sit {e outside} the paper's message-loss
    fault model — injecting them shows where Theorem 1's envelope
    actually ends. *)

let install plan engine =
  List.iter
    (function
      | Plan.Clock_drift { entity; factor } ->
          Pte_sim.Engine.set_rate engine entity factor
      | Plan.Crash { entity; at; blackout } ->
          let stage = ref `Waiting in
          Pte_sim.Engine.add_process engine ~name:(entity ^ "-crash-fault")
            (fun engine ~time ->
              match !stage with
              | `Waiting when time >= at ->
                  Pte_sim.Engine.halt engine entity;
                  stage := `Down
              | `Down when time >= at +. blackout ->
                  Pte_sim.Engine.restart engine entity;
                  stage := `Done
              | _ -> ()))
    plan.Plan.node_faults
