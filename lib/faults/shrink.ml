(** Greedy delta-debugging of failing fault plans.

    Given an oracle ("does this plan still make the trial violate
    PTE?"), repeatedly try to remove whole faults, then simplify the
    survivors' parameters (widen windows away, shrink delays and
    blackouts, pull drift factors toward 1.0). Every candidate the
    oracle accepts becomes the new baseline; the loop stops at a local
    fixpoint or when the oracle-call budget runs out. The result is the
    minimal replayable counterexample shipped as a test artifact. *)

let remove_nth n list = List.filteri (fun i _ -> i <> n) list

(** Candidate parameter simplifications for one packet fault, most
    aggressive first. *)
let simplify_packet (f : Plan.packet_fault) =
  let cands = [] in
  let cands =
    match f.occurrence with
    | Plan.Every -> { f with occurrence = Plan.Nth 0 } :: cands
    | Plan.Nth n when n > 0 -> { f with occurrence = Plan.Nth 0 } :: cands
    | Plan.Nth _ -> cands
  in
  let cands =
    match f.window with
    | Some _ -> { f with window = None } :: cands
    | None -> cands
  in
  let cands =
    match f.action with
    | Plan.Delay d when d > 0.01 ->
        { f with action = Plan.Delay (d /. 2.) } :: cands
    | _ -> cands
  in
  List.rev cands

let simplify_node = function
  | Plan.Crash { entity; at; blackout } ->
      let cands = [] in
      let cands =
        if blackout > 0.1 then
          Plan.Crash { entity; at; blackout = blackout /. 2. } :: cands
        else cands
      in
      let cands =
        if at > 0.1 then Plan.Crash { entity; at = at /. 2.; blackout } :: cands
        else cands
      in
      List.rev cands
  | Plan.Clock_drift { entity; factor } ->
      let halfway = 1.0 +. ((factor -. 1.0) /. 2.) in
      if Float.abs (factor -. 1.0) > 0.02 then
        [ Plan.Clock_drift { entity; factor = halfway } ]
      else []

(* Pull a loss step toward the benign end: less loss, later onset. *)
let simplify_loss_step (s : Plan.loss_step) =
  let cands = [] in
  let cands =
    if s.loss > 0.05 then { s with Plan.loss = s.loss /. 2. } :: cands
    else cands
  in
  let cands =
    if s.at > 0.1 then { s with Plan.at = s.at *. 2. } :: cands else cands
  in
  List.rev cands

let shrink ?(max_oracle_calls = 200) ~oracle plan =
  let calls = ref 0 in
  let ask candidate =
    if !calls >= max_oracle_calls then false
    else begin
      incr calls;
      oracle candidate
    end
  in
  let current = ref plan in
  let progress = ref true in
  while !progress && !calls < max_oracle_calls do
    progress := false;
    (* Pass 1: drop whole faults, one at a time. *)
    let try_removals get set =
      let items = get !current in
      let i = ref 0 in
      while !i < List.length (get !current) do
        let candidate = set !current (remove_nth !i (get !current)) in
        if ask candidate then begin
          current := candidate;
          progress := true
          (* same index now names the next item *)
        end
        else incr i
      done;
      ignore items
    in
    try_removals
      (fun p -> p.Plan.packet_faults)
      (fun p faults -> { p with Plan.packet_faults = faults });
    try_removals
      (fun p -> p.Plan.node_faults)
      (fun p faults -> { p with Plan.node_faults = faults });
    try_removals
      (fun p -> p.Plan.loss_profile)
      (fun p steps -> { p with Plan.loss_profile = steps });
    (* Pass 2: simplify each surviving fault's parameters. *)
    let try_replacements get set simplify =
      List.iteri
        (fun i _ ->
          let rec improve () =
            let items = get !current in
            let f = List.nth items i in
            let accepted =
              List.exists
                (fun f' ->
                  let candidate =
                    set !current
                      (List.mapi (fun j g -> if j = i then f' else g) items)
                  in
                  if ask candidate then begin
                    current := candidate;
                    progress := true;
                    true
                  end
                  else false)
                (simplify f)
            in
            if accepted && !calls < max_oracle_calls then improve ()
          in
          improve ())
        (get !current)
    in
    try_replacements
      (fun p -> p.Plan.packet_faults)
      (fun p faults -> { p with Plan.packet_faults = faults })
      simplify_packet;
    try_replacements
      (fun p -> p.Plan.node_faults)
      (fun p faults -> { p with Plan.node_faults = faults })
      simplify_node;
    try_replacements
      (fun p -> p.Plan.loss_profile)
      (fun p steps -> { p with Plan.loss_profile = steps })
      simplify_loss_step
  done;
  (!current, !calls)
