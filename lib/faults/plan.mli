(** The fault-plan DSL: deterministic, serializable scripts of targeted
    packet and node faults.

    A plan names exactly {e which} frames to tamper with (by link,
    event root, nth occurrence, time window) and which node faults to
    schedule (fail-stop crash with reboot, clock drift). Together with a
    trial seed, a plan replays byte-identically — the unit of evidence
    for the robustness campaigns, and the artifact the counterexample
    shrinker emits. *)

type direction = Up | Down

(** Which link of the star a packet fault sits on: the [entity]'s uplink
    (remote → supervisor) or downlink (supervisor → remote). *)
type site = { entity : string; direction : direction }

type occurrence =
  | Nth of int  (** the nth matching frame on that link, 0-based *)
  | Every

(** Restrict a fault to frames sent in [\[after, before)]. *)
type window = { after : float; before : float }

type packet_action =
  | Drop
  | Corrupt  (** delivered with bit errors; the CRC discard path eats it *)
  | Delay of float  (** extra delivery delay, seconds *)
  | Duplicate

type packet_fault = {
  site : site;
  root : string option;  (** [None] matches every event root *)
  occurrence : occurrence;
  window : window option;
  action : packet_action;
}

type node_fault =
  | Crash of { entity : string; at : float; blackout : float }
  | Clock_drift of { entity : string; factor : float }

(** One step of a piecewise-constant loss profile: from [at] on, the
    channel runs at average loss rate [loss] — 0 is a perfect channel,
    anything else the Table-I Gilbert–Elliott channel
    ({!Pte_net.Loss.wifi_interference}) at that average. *)
type loss_step = { at : float; loss : float }

type t = {
  packet_faults : packet_fault list;
  node_faults : node_fault list;
  loss_profile : loss_step list;
      (** time-varying channel steps, sorted by [at]. The empty list
          keeps the trial's configured static loss model; a non-empty
          profile overlays it ({!Pte_net.Loss.Profile}), the configured
          model covering the span before the first step. *)
}

val empty : t
val is_empty : t -> bool

(** {2 Constructors} *)

val packet :
  ?root:string ->
  ?window:window ->
  entity:string ->
  direction:direction ->
  occurrence:occurrence ->
  packet_action ->
  packet_fault

val drop_nth :
  entity:string -> direction:direction -> root:string -> int -> packet_fault

val drop_every :
  entity:string -> direction:direction -> root:string -> packet_fault

val crash : entity:string -> at:float -> blackout:float -> node_fault
val clock_drift : entity:string -> factor:float -> node_fault
val loss_step : at:float -> loss:float -> loss_step

(** {2 JSON round-trip}

    [of_string (to_string p)] reconstructs [p] exactly (structural
    equality), so plans can be checked in, diffed, and replayed. *)

val to_json : t -> Pte_campaign.Json.t
val of_json : Pte_campaign.Json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result
val save : t -> string -> unit
val load : string -> (t, string) result

val pp : t Fmt.t
val pp_packet_fault : packet_fault Fmt.t
val pp_node_fault : node_fault Fmt.t
val pp_loss_step : loss_step Fmt.t
