(** Compile a fault plan's packet faults into deterministic per-link
    injectors installed on a {!Pte_net.Star} (corruption flows through
    the receiver-side CRC discard path). The returned handle exposes how
    often each fault matched and fired — the feedback the coverage
    campaign reports. *)

type handle

val install : Plan.t -> Pte_net.Star.t -> handle
(** Install injectors for every packet fault of the plan on the links
    they select. Node faults are ignored here (see {!Runtime}). *)

val fired : handle -> int array
(** Per-fault count of frames actually tampered with, in plan order. *)

val matched : handle -> int array
(** Per-fault count of frames that matched the selector (whether or not
    the occurrence index selected them). *)

val total_fired : handle -> int

val all_fired : handle -> bool
(** Did every packet fault fire at least once? *)

val pp : handle Fmt.t
