(** Fault-plan severity: the splitting axis of the rare-event
    certification engine ({!Pte_rare.Split}).

    Importance splitting needs a way to push a surviving trial "further
    toward failure" without invalidating what it already achieved: the
    clone must replay the survivor's (plan, seed) prefix exactly and
    only then add adversity. {!escalate} provides that move at the
    fault-plan level — it {e appends} faults (extra message drops, a
    higher loss step later in the trial, optionally a crash) and never
    reorders, retimes, or removes existing ones, so the escalated plan
    is a strict {!is_extension} of its base and the base's replay
    prefix is preserved.

    {!rank} totals a plan's adversity (drops, loss-profile mass, crash
    depth) as a deterministic integer that {e strictly increases} under
    {!escalate} — the certification level function uses it as a
    tiebreak so adaptive splitting thresholds keep climbing even when
    the continuous trial score plateaus. *)

val rank : Plan.t -> int
(** Severity total: 1 per packet fault (Every-occurrence faults count
    double), 4 per node fault, plus each loss step's level in tenths
    (at least 1). 0 for {!Plan.empty}. Strictly monotone under
    {!escalate}. *)

val is_extension : base:Plan.t -> Plan.t -> bool
(** [is_extension ~base p] — every fault list of [base] (packet, node,
    loss profile) is a structural prefix of the corresponding list of
    [p]. Reflexive; escalation preserves it. *)

val escalate :
  ?crashes:bool -> vocab:Fuzz.vocabulary -> Plan.t -> Pte_util.Rng.t -> Plan.t
(** One random severity step drawn from the given stream:
    - an extra [Drop] of a vocabulary message, at the next unused
      occurrence index for that (site, root) — so repeated escalations
      target successive frames rather than re-dropping the same one;
    - or a loss step appended strictly after the profile's last step
      (keeping the profile sorted and the base a prefix), at a level
      strictly above the previous step's, toward blackout;
    - or (only when [crashes], default false) a fail-stop {!Plan.crash}
      of a vocabulary entity. Crash escalation is off by default
      because the with-lease design is {e supposed} to ride out packet
      loss (Theorem 1) — certifying under crashes is a separate, harder
      claim the caller must opt into.

    [vocab.messages] must be non-empty. The result satisfies
    [is_extension ~base:plan] and has [rank] strictly greater than
    [plan]'s. *)
