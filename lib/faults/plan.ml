(** The fault-plan DSL: deterministic, serializable scripts of targeted
    faults.

    Theorem 1 quantifies over {e arbitrary} message loss, but stochastic
    channels only ever sample that quantifier. A fault plan makes it
    enumerable and replayable: "lose exactly the 2nd cancel on the
    laser's downlink", "crash the ventilator for 4 s at t=30",
    "run the laser's clocks 20% fast". Plans round-trip through JSON, so
    any violation found by a fuzzing campaign can be checked in as a
    minimal replayable artifact. *)

module Json = Pte_campaign.Json

type direction = Up | Down

(** Which link of the star a packet fault sits on: the [entity]'s uplink
    (remote → supervisor) or downlink (supervisor → remote). *)
type site = { entity : string; direction : direction }

type occurrence =
  | Nth of int  (** the nth matching frame on that link, 0-based *)
  | Every

(** Restrict a fault to frames sent in [\[after, before)]. *)
type window = { after : float; before : float }

type packet_action =
  | Drop
  | Corrupt  (** delivered with bit errors; the CRC discard path eats it *)
  | Delay of float  (** extra delivery delay, seconds *)
  | Duplicate

type packet_fault = {
  site : site;
  root : string option;  (** [None] matches every event root *)
  occurrence : occurrence;
  window : window option;
  action : packet_action;
}

type node_fault =
  | Crash of { entity : string; at : float; blackout : float }
      (** fail-stop at [at]; reboot to the initial location after
          [blackout] seconds *)
  | Clock_drift of { entity : string; factor : float }
      (** the entity's local clocks advance [factor] seconds per second *)

(** One step of a piecewise-constant loss profile: from [at] on, the
    channel runs at average loss rate [loss] (0 = perfect; realized as
    the Table-I Gilbert–Elliott channel otherwise). *)
type loss_step = { at : float; loss : float }

type t = {
  packet_faults : packet_fault list;
  node_faults : node_fault list;
  loss_profile : loss_step list;
      (** time-varying channel steps, sorted by [at]; [[]] keeps the
          trial's configured static loss model. *)
}

let empty = { packet_faults = []; node_faults = []; loss_profile = [] }

let is_empty t =
  t.packet_faults = [] && t.node_faults = [] && t.loss_profile = []

let packet ?root ?window ~entity ~direction ~occurrence action =
  { site = { entity; direction }; root; occurrence; window; action }

let drop_nth ~entity ~direction ~root n =
  packet ~root ~entity ~direction ~occurrence:(Nth n) Drop

let drop_every ~entity ~direction ~root =
  packet ~root ~entity ~direction ~occurrence:Every Drop

let crash ~entity ~at ~blackout = Crash { entity; at; blackout }
let clock_drift ~entity ~factor = Clock_drift { entity; factor }
let loss_step ~at ~loss = { at; loss }

(* ------------------------------------------------------------------ *)
(* JSON (de)serialization                                              *)
(* ------------------------------------------------------------------ *)

let direction_to_string = function Up -> "up" | Down -> "down"

let direction_of_string = function
  | "up" -> Ok Up
  | "down" -> Ok Down
  | s -> Error (Printf.sprintf "plan: unknown direction %S" s)

let packet_fault_to_json f =
  let base =
    [
      ("entity", Json.Str f.site.entity);
      ("direction", Json.Str (direction_to_string f.site.direction));
    ]
  in
  let root = match f.root with None -> [] | Some r -> [ ("root", Json.Str r) ] in
  let occurrence =
    match f.occurrence with
    | Nth n -> [ ("occurrence", Json.Num (Float.of_int n)) ]
    | Every -> [ ("occurrence", Json.Str "every") ]
  in
  let window =
    match f.window with
    | None -> []
    | Some w -> [ ("after", Json.Num w.after); ("before", Json.Num w.before) ]
  in
  let action =
    match f.action with
    | Drop -> [ ("action", Json.Str "drop") ]
    | Corrupt -> [ ("action", Json.Str "corrupt") ]
    | Duplicate -> [ ("action", Json.Str "duplicate") ]
    | Delay d -> [ ("action", Json.Str "delay"); ("delay", Json.Num d) ]
  in
  Json.Obj (base @ root @ occurrence @ window @ action)

let node_fault_to_json = function
  | Crash { entity; at; blackout } ->
      Json.Obj
        [
          ("fault", Json.Str "crash");
          ("entity", Json.Str entity);
          ("at", Json.Num at);
          ("blackout", Json.Num blackout);
        ]
  | Clock_drift { entity; factor } ->
      Json.Obj
        [
          ("fault", Json.Str "clock-drift");
          ("entity", Json.Str entity);
          ("factor", Json.Num factor);
        ]

let loss_step_to_json (s : loss_step) =
  Json.Obj [ ("at", Json.Num s.at); ("loss", Json.Num s.loss) ]

let to_json t =
  Json.Obj
    ([
       ("packet", Json.Arr (List.map packet_fault_to_json t.packet_faults));
       ("node", Json.Arr (List.map node_fault_to_json t.node_faults));
     ]
    (* emitted only when set, so plans predating the profile field
       render byte-identically *)
    @
    match t.loss_profile with
    | [] -> []
    | steps -> [ ("loss_profile", Json.Arr (List.map loss_step_to_json steps)) ])

let ( let* ) = Result.bind

let str_field name json =
  match Option.bind (Json.member name json) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "plan: missing or bad %S" name)

let num_field name json =
  match Option.bind (Json.member name json) Json.to_float with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "plan: missing or bad %S" name)

let packet_fault_of_json json =
  let* entity = str_field "entity" json in
  let* direction = Result.bind (str_field "direction" json) direction_of_string in
  let root = Option.bind (Json.member "root" json) Json.to_str in
  let* occurrence =
    match Json.member "occurrence" json with
    | Some (Json.Str "every") -> Ok Every
    | Some j -> (
        match Json.to_int j with
        | Some n when n >= 0 -> Ok (Nth n)
        | _ -> Error "plan: occurrence must be a non-negative int or \"every\"")
    | None -> Error "plan: missing \"occurrence\""
  in
  let window =
    match
      ( Option.bind (Json.member "after" json) Json.to_float,
        Option.bind (Json.member "before" json) Json.to_float )
    with
    | None, None -> None
    | after, before ->
        Some
          {
            after = Option.value after ~default:0.0;
            before = Option.value before ~default:Float.infinity;
          }
  in
  let* action =
    match str_field "action" json with
    | Ok "drop" -> Ok Drop
    | Ok "corrupt" -> Ok Corrupt
    | Ok "duplicate" -> Ok Duplicate
    | Ok "delay" ->
        let* d = num_field "delay" json in
        Ok (Delay d)
    | Ok s -> Error (Printf.sprintf "plan: unknown action %S" s)
    | Error _ as e -> e
  in
  Ok { site = { entity; direction }; root; occurrence; window; action }

let node_fault_of_json json =
  let* kind = str_field "fault" json in
  let* entity = str_field "entity" json in
  match kind with
  | "crash" ->
      let* at = num_field "at" json in
      let* blackout = num_field "blackout" json in
      Ok (Crash { entity; at; blackout })
  | "clock-drift" ->
      let* factor = num_field "factor" json in
      Ok (Clock_drift { entity; factor })
  | s -> Error (Printf.sprintf "plan: unknown node fault %S" s)

let list_field name of_json json =
  match Json.member name json with
  | None | Some (Json.Arr []) -> Ok []
  | Some (Json.Arr items) ->
      List.fold_right
        (fun item acc ->
          let* acc = acc in
          let* v = of_json item in
          Ok (v :: acc))
        items (Ok [])
  | Some _ -> Error (Printf.sprintf "plan: %S must be an array" name)

let loss_step_of_json json =
  let* at = num_field "at" json in
  let* loss = num_field "loss" json in
  if at < 0.0 then Error "plan: loss_profile step must have at >= 0"
  else if loss < 0.0 || loss > 1.0 then
    Error "plan: loss_profile step loss must be in [0, 1]"
  else Ok { at; loss }

let of_json json =
  match json with
  | Json.Obj _ ->
      let* packet_faults = list_field "packet" packet_fault_of_json json in
      let* node_faults = list_field "node" node_fault_of_json json in
      let* loss_profile = list_field "loss_profile" loss_step_of_json json in
      Ok { packet_faults; node_faults; loss_profile }
  | _ -> Error "plan: expected a JSON object"

let to_string t = Json.to_string (to_json t)
let of_string s = Result.bind (Json.of_string s) of_json

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let n = in_channel_length ic in
          of_string (really_input_string ic n))

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_packet_fault ppf f =
  let act =
    match f.action with
    | Drop -> "drop"
    | Corrupt -> "corrupt"
    | Duplicate -> "duplicate"
    | Delay d -> Fmt.str "delay+%gs" d
  in
  let occ =
    match f.occurrence with Nth n -> Fmt.str "#%d" n | Every -> "every"
  in
  Fmt.pf ppf "%s %s of %s on %s %slink%a" act occ
    (Option.value f.root ~default:"any root")
    f.site.entity
    (match f.site.direction with Up -> "up" | Down -> "down")
    (Fmt.option (fun ppf w -> Fmt.pf ppf " in [%g,%g)" w.after w.before))
    f.window

let pp_node_fault ppf = function
  | Crash { entity; at; blackout } ->
      Fmt.pf ppf "crash %s at %gs for %gs" entity at blackout
  | Clock_drift { entity; factor } ->
      Fmt.pf ppf "clock-drift %s x%g" entity factor

let pp_loss_step ppf (s : loss_step) =
  Fmt.pf ppf "loss %g%% from %gs" (100.0 *. s.loss) s.at

let pp ppf t =
  if is_empty t then Fmt.string ppf "no faults"
  else
    let lines =
      List.map (fun f ppf () -> pp_packet_fault ppf f) t.packet_faults
      @ List.map (fun f ppf () -> pp_node_fault ppf f) t.node_faults
      @ List.map (fun s ppf () -> pp_loss_step ppf s) t.loss_profile
    in
    Fmt.pf ppf "@[<v>%a@]"
      (Fmt.list ~sep:Fmt.cut (fun ppf line -> line ppf ()))
      lines
