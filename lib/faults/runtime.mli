(** Schedule a plan's node faults (crash-and-reboot, clock drift) on a
    simulation engine. Packet faults are ignored here (see
    {!Injector}). *)

val install : Plan.t -> Pte_sim.Engine.t -> unit
