module Rng = Pte_util.Rng

let packet_weight (f : Plan.packet_fault) =
  match f.occurrence with Plan.Every -> 2 | Plan.Nth _ -> 1

let loss_weight (s : Plan.loss_step) =
  max 1 (int_of_float (Float.round (s.loss *. 10.0)))

let rank (p : Plan.t) =
  List.fold_left (fun acc f -> acc + packet_weight f) 0 p.packet_faults
  + (4 * List.length p.node_faults)
  + List.fold_left (fun acc s -> acc + loss_weight s) 0 p.loss_profile

let rec is_prefix eq base ext =
  match (base, ext) with
  | [], _ -> true
  | _, [] -> false
  | b :: bs, e :: es -> eq b e && is_prefix eq bs es

let is_extension ~base (p : Plan.t) =
  is_prefix ( = ) base.Plan.packet_faults p.Plan.packet_faults
  && is_prefix ( = ) base.Plan.node_faults p.Plan.node_faults
  && is_prefix ( = ) base.Plan.loss_profile p.Plan.loss_profile

(* Next unused Nth index for drops on (site, root): escalations walk
   successive frames of the same message instead of piling duplicate
   faults onto one already-dropped frame (which would not add
   adversity). *)
let next_occurrence (p : Plan.t) ~site ~root =
  List.fold_left
    (fun acc (f : Plan.packet_fault) ->
      if f.site = site && f.root = root then
        match f.occurrence with
        | Plan.Nth i -> max acc (i + 1)
        | Plan.Every -> acc
      else acc)
    0 p.packet_faults

let escalate_drop (vocab : Fuzz.vocabulary) (p : Plan.t) rng =
  let msg =
    List.nth vocab.messages (Rng.int rng (List.length vocab.messages))
  in
  let occurrence = Plan.Nth (next_occurrence p ~site:msg.site ~root:(Some msg.root)) in
  let fault =
    {
      Plan.site = msg.site;
      root = Some msg.root;
      occurrence;
      window = None;
      action = Plan.Drop;
    }
  in
  { p with Plan.packet_faults = p.Plan.packet_faults @ [ fault ] }

let escalate_loss (vocab : Fuzz.vocabulary) (p : Plan.t) rng =
  let last_at, last_loss =
    match List.rev p.Plan.loss_profile with
    | [] -> (0.0, 0.0)
    | s :: _ -> (s.Plan.at, s.Plan.loss)
  in
  (* strictly later start, strictly higher level: sortedness and the
     prefix property both survive the append *)
  let span = Float.max 1.0 (vocab.horizon -. last_at) in
  let at = last_at +. Rng.uniform rng ~lo:(0.05 *. span) ~hi:(0.5 *. span) in
  let loss =
    Float.min 0.9 (last_loss +. Rng.uniform rng ~lo:0.1 ~hi:0.3)
  in
  let loss = if loss <= last_loss then Float.min 0.95 (last_loss +. 0.05) else loss in
  { p with Plan.loss_profile = p.Plan.loss_profile @ [ Plan.loss_step ~at ~loss ] }

let escalate_crash (vocab : Fuzz.vocabulary) (p : Plan.t) rng =
  let entity =
    List.nth vocab.entities (Rng.int rng (List.length vocab.entities))
  in
  let at = Rng.uniform rng ~lo:0.0 ~hi:vocab.horizon in
  let blackout = Rng.uniform rng ~lo:1.0 ~hi:30.0 in
  {
    p with
    Plan.node_faults = p.Plan.node_faults @ [ Plan.crash ~entity ~at ~blackout ];
  }

let escalate ?(crashes = false) ~vocab (p : Plan.t) rng =
  if vocab.Fuzz.messages = [] then
    invalid_arg "Severity.escalate: empty message vocabulary";
  let die = Rng.int rng (if crashes && vocab.Fuzz.entities <> [] then 5 else 4) in
  match die with
  | 0 | 1 -> escalate_drop vocab p rng
  | 2 | 3 -> escalate_loss vocab p rng
  | _ -> escalate_crash vocab p rng
