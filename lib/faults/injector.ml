(** Compile a fault plan's packet faults into per-link injectors and
    install them on a star network.

    Each fault keeps two counters: how many frames {e matched} its
    selector (root + window, on its link) and how many times it actually
    {e fired} (tampered with a frame). The [Nth k] occurrence index is
    over matching frames, so "the 2nd cancel" means the 2nd cancel that
    link carries, whatever else flows around it. When several faults
    select the same frame, the first in plan order fires; the others
    still advance their match counters. *)

type handle = {
  faults : Plan.packet_fault array;
  matched : int array;  (** frames that matched each fault's selector *)
  fired : int array;  (** frames each fault actually tampered with *)
}

let direction_of_link link =
  match Pte_net.Link.direction link with
  | Pte_net.Link.Uplink -> Plan.Up
  | Pte_net.Link.Downlink -> Plan.Down

let tamper_of_action : Plan.packet_action -> Pte_net.Link.tamper = function
  | Plan.Drop -> Pte_net.Link.Drop_frame
  | Plan.Corrupt -> Pte_net.Link.Corrupt_frame
  | Plan.Delay d -> Pte_net.Link.Delay_frame d
  | Plan.Duplicate -> Pte_net.Link.Duplicate_frame

let matches (f : Plan.packet_fault) ~time ~root =
  (match f.Plan.root with None -> true | Some r -> String.equal r root)
  &&
  match f.Plan.window with
  | None -> true
  | Some w -> time >= w.Plan.after && time < w.Plan.before

let install plan star =
  let faults = Array.of_list plan.Plan.packet_faults in
  let matched = Array.make (Array.length faults) 0 in
  let fired = Array.make (Array.length faults) 0 in
  List.iter
    (fun (remote, link) ->
      let direction = direction_of_link link in
      let mine =
        (* indices of the faults sitting on this link, in plan order *)
        List.filter
          (fun i ->
            let site = faults.(i).Plan.site in
            String.equal site.Plan.entity remote
            && site.Plan.direction = direction)
          (List.init (Array.length faults) Fun.id)
      in
      if mine <> [] then
        Pte_net.Link.set_injector link
          (Some
             (fun ~time ~root ->
               List.fold_left
                 (fun decision i ->
                   let f = faults.(i) in
                   if not (matches f ~time ~root) then decision
                   else begin
                     let n = matched.(i) in
                     matched.(i) <- n + 1;
                     let triggers =
                       match f.Plan.occurrence with
                       | Plan.Nth k -> n = k
                       | Plan.Every -> true
                     in
                     match (decision, triggers) with
                     | Pte_net.Link.Pass, true ->
                         fired.(i) <- fired.(i) + 1;
                         tamper_of_action f.Plan.action
                     | _ -> decision
                   end)
                 Pte_net.Link.Pass mine)))
    (Pte_net.Star.links star);
  { faults; matched; fired }

let fired t = Array.copy t.fired
let matched t = Array.copy t.matched
let total_fired t = Array.fold_left ( + ) 0 t.fired

(** Did every packet fault of the plan fire at least once? The coverage
    campaign's per-target "exercised" bit. *)
let all_fired t = Array.for_all (fun n -> n > 0) t.fired

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.iter_bindings
       (fun f t ->
         Array.iteri (fun i fault -> f fault (t.matched.(i), t.fired.(i))) t.faults)
       (fun ppf (fault, (m, fd)) ->
         Fmt.pf ppf "%a: matched %d, fired %d@," Plan.pp_packet_fault fault m fd))
    t
