(** Random fault-plan generation: draw deterministic plans from a
    protocol vocabulary and an explicit RNG stream, so every generated
    plan replays from (plan, seed). *)

type message = { root : string; site : Plan.site }

type vocabulary = {
  messages : message list;  (** protocol frames the plan may target *)
  entities : string list;  (** automata that may crash or drift *)
  horizon : float;  (** trial length, bounds windows and crash times *)
}

val random_packet_fault : Pte_util.Rng.t -> vocabulary -> Plan.packet_fault
val random_node_fault : Pte_util.Rng.t -> vocabulary -> Plan.node_fault

val random_plan : Pte_util.Rng.t -> vocabulary -> Plan.t
(** 1–3 packet faults plus 0–2 node faults. [vocabulary.messages] must
    be non-empty. Never generates a loss profile, and draws exactly
    what it has always drawn — historical fuzz streams stay
    byte-identical. *)

val random_loss_profile :
  Pte_util.Rng.t -> horizon:float -> Plan.loss_step list
(** 1–3 piecewise-constant loss steps, sorted by start time, with
    levels drawn across the clean-through-blackout range. *)

val random_plan_with_profile : Pte_util.Rng.t -> vocabulary -> Plan.t
(** {!random_plan}, plus (with probability 1/2) a
    {!random_loss_profile} overlaying a time-varying channel. *)
