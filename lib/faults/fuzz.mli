(** Random fault-plan generation: draw deterministic plans from a
    protocol vocabulary and an explicit RNG stream, so every generated
    plan replays from (plan, seed). *)

type message = { root : string; site : Plan.site }

type vocabulary = {
  messages : message list;  (** protocol frames the plan may target *)
  entities : string list;  (** automata that may crash or drift *)
  horizon : float;  (** trial length, bounds windows and crash times *)
}

val random_packet_fault : Pte_util.Rng.t -> vocabulary -> Plan.packet_fault
val random_node_fault : Pte_util.Rng.t -> vocabulary -> Plan.node_fault

val random_plan : Pte_util.Rng.t -> vocabulary -> Plan.t
(** 1–3 packet faults plus 0–2 node faults. [vocabulary.messages] must
    be non-empty. *)
