(** Greedy delta-debugging shrinker for failing fault plans. *)

val shrink :
  ?max_oracle_calls:int ->
  oracle:(Plan.t -> bool) ->
  Plan.t ->
  Plan.t * int
(** [shrink ~oracle plan] minimizes a plan for which [oracle plan =
    true] ("still fails"). Tries removing whole faults, then simplifying
    the survivors' parameters, re-running the oracle on every candidate,
    to a local fixpoint. Returns the minimal plan and the number of
    oracle calls spent. [max_oracle_calls] (default 200) bounds the
    budget; each oracle call typically replays a full trial. *)
