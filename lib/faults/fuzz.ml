(** Random fault-plan generation over a protocol vocabulary.

    The vocabulary is what the fuzzer knows about the system under test:
    which (root, link) pairs carry protocol messages, which entities can
    crash or drift, and how long a trial runs. Everything drawn from it
    is deterministic in the supplied {!Pte_util.Rng.t}, so a failing
    plan replays from (plan JSON, seed) alone. *)

type message = { root : string; site : Plan.site }

type vocabulary = {
  messages : message list;  (** protocol frames the plan may target *)
  entities : string list;  (** automata that may crash or drift *)
  horizon : float;  (** trial length, bounds windows and crash times *)
}

let pick rng list = List.nth list (Pte_util.Rng.int rng (List.length list))

let random_occurrence rng =
  if Pte_util.Rng.bernoulli rng 0.25 then Plan.Every
  else Plan.Nth (Pte_util.Rng.int rng 4)

let random_action rng ~horizon =
  match Pte_util.Rng.int rng 4 with
  | 0 -> Plan.Drop
  | 1 -> Plan.Corrupt
  | 2 -> Plan.Duplicate
  | _ -> Plan.Delay (Pte_util.Rng.uniform rng ~lo:0.05 ~hi:(0.05 *. horizon))

let random_window rng ~horizon =
  if Pte_util.Rng.bernoulli rng 0.7 then None
  else
    let a = Pte_util.Rng.uniform rng ~lo:0.0 ~hi:(0.8 *. horizon) in
    let b = Pte_util.Rng.uniform rng ~lo:a ~hi:horizon in
    Some { Plan.after = a; before = b }

let random_packet_fault rng vocab =
  let m = pick rng vocab.messages in
  {
    Plan.site = m.site;
    root = (if Pte_util.Rng.bernoulli rng 0.9 then Some m.root else None);
    occurrence = random_occurrence rng;
    window = random_window rng ~horizon:vocab.horizon;
    action = random_action rng ~horizon:vocab.horizon;
  }

let random_node_fault rng vocab =
  let entity = pick rng vocab.entities in
  if Pte_util.Rng.bool rng then
    let at = Pte_util.Rng.uniform rng ~lo:0.0 ~hi:(0.8 *. vocab.horizon) in
    let blackout =
      Pte_util.Rng.uniform rng ~lo:0.5 ~hi:(0.3 *. vocab.horizon)
    in
    Plan.Crash { entity; at; blackout }
  else
    (* up to ±30 % oscillator error — far beyond any real crystal, which
       is the point: we are probing where the c1–c7 margins end. *)
    let factor = Pte_util.Rng.uniform rng ~lo:0.7 ~hi:1.3 in
    Plan.Clock_drift { entity; factor }

let random_plan rng vocab =
  let packet_faults =
    List.init
      (1 + Pte_util.Rng.int rng 3)
      (fun _ -> random_packet_fault rng vocab)
  in
  let node_faults =
    if vocab.entities = [] then []
    else
      List.init (Pte_util.Rng.int rng 3) (fun _ -> random_node_fault rng vocab)
  in
  { Plan.empty with Plan.packet_faults; node_faults }

(* An increasing sequence of steps so the profile is sorted by
   construction; loss levels cover the clean-through-blackout range. *)
let random_loss_profile rng ~horizon =
  let steps = 1 + Pte_util.Rng.int rng 3 in
  let profile =
    List.init steps (fun _ ->
        Plan.loss_step
          ~at:(Pte_util.Rng.uniform rng ~lo:0.0 ~hi:(0.9 *. horizon))
          ~loss:(Pte_util.Rng.uniform rng ~lo:0.0 ~hi:1.0))
  in
  List.sort (fun (a : Plan.loss_step) b -> Float.compare a.at b.at) profile

(* {!random_plan} plus a time-varying channel. Kept separate so the
   historical fuzz streams (and every replayable artifact they have
   produced) stay byte-identical: {!random_plan} draws exactly what it
   always drew. *)
let random_plan_with_profile rng vocab =
  let plan = random_plan rng vocab in
  if Pte_util.Rng.bernoulli rng 0.5 then
    { plan with Plan.loss_profile = random_loss_profile rng ~horizon:vocab.horizon }
  else plan
