(** Minimal JSON encoder/parser (see json.mli). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* encoding                                                           *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\t' -> Buffer.add_string buffer "\\t"
      | '\r' -> Buffer.add_string buffer "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let number_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else if Float.is_nan v then "null" (* JSON has no NaN *)
  else Printf.sprintf "%.17g" v

let rec write buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Num v -> Buffer.add_string buffer (number_to_string v)
  | Str s ->
      Buffer.add_char buffer '"';
      Buffer.add_string buffer (escape s);
      Buffer.add_char buffer '"'
  | Arr xs ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buffer ',';
          write buffer x)
        xs;
      Buffer.add_char buffer ']'
  | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buffer ',';
          Buffer.add_char buffer '"';
          Buffer.add_string buffer (escape k);
          Buffer.add_string buffer "\":";
          write buffer v)
        fields;
      Buffer.add_char buffer '}'

let to_string v =
  let buffer = Buffer.create 128 in
  write buffer v;
  Buffer.contents buffer

(* ------------------------------------------------------------------ *)
(* parsing: plain recursive descent                                   *)
(* ------------------------------------------------------------------ *)

exception Parse of int * string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = input.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buffer
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = input.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buffer '"'
          | '\\' -> Buffer.add_char buffer '\\'
          | '/' -> Buffer.add_char buffer '/'
          | 'n' -> Buffer.add_char buffer '\n'
          | 't' -> Buffer.add_char buffer '\t'
          | 'r' -> Buffer.add_char buffer '\r'
          | 'b' -> Buffer.add_char buffer '\b'
          | 'f' -> Buffer.add_char buffer '\012'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub input !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* UTF-8 encode the code point (BMP only). *)
              if code < 0x80 then Buffer.add_char buffer (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buffer
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
              end
          | _ -> fail "unknown escape");
          loop ())
      | c -> Buffer.add_char buffer c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    match float_of_string_opt text with
    | Some v -> v
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            fields := (key, value) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let value = parse_value () in
            items := value :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse (at, msg) ->
      Error (Printf.sprintf "JSON parse error at %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
