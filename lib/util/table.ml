(** Plain-text table rendering for the benchmark harness: every
    reproduced paper table/figure prints through this module so
    `bench_output.txt` has a uniform, diffable format. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  aligns : align list;
  mutable rows : string list list;  (* reversed *)
  mutable notes : string list;      (* reversed *)
}

let create ~title ~header ?aligns () =
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.map (fun _ -> Left) header
  in
  { title; header; aligns; rows = []; notes = [] }

let add_row t row = t.rows <- row :: t.rows

let add_note t note = t.notes <- note :: t.notes

(* Display width = UTF-8 code points, not bytes — cells like "3.1 ±0.2"
   must not skew the column grid. Continuation bytes are 0b10xxxxxx. *)
let display_width s =
  let w = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr w) s;
  !w

let cell_width rows col =
  List.fold_left
    (fun acc row ->
      match List.nth_opt row col with
      | Some s -> max acc (display_width s)
      | None -> acc)
    0 rows

let pad align width s =
  let n = width - display_width s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let columns = List.length t.header in
  let widths = List.init columns (cell_width all) in
  let align_of i =
    match List.nth_opt t.aligns i with Some a -> a | None -> Left
  in
  let line row =
    "| "
    ^ String.concat " | "
        (List.mapi (fun i s -> pad (align_of i) (List.nth widths i) s) row)
    ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buffer (rule ^ "\n");
  Buffer.add_string buffer (line t.header ^ "\n");
  Buffer.add_string buffer (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buffer (line row ^ "\n")) rows;
  Buffer.add_string buffer (rule ^ "\n");
  List.iter
    (fun note -> Buffer.add_string buffer ("  note: " ^ note ^ "\n"))
    (List.rev t.notes);
  Buffer.contents buffer

let print t = print_string (render t); print_newline ()

let fmt_float ?(decimals = 2) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" decimals x

let fmt_int = string_of_int

let fmt_bool b = if b then "yes" else "no"
