(** SplitMix64: a deterministic, splittable pseudo-random generator.
    Trials must be reproducible and components must draw from mutually
    independent streams; splitting provides both without global state. *)

type t

val create : int -> t
val copy : t -> t

val split : t -> t
(** Derive an independent stream (deterministic in the parent state).
    Advances the parent. *)

val keyed : t -> key:int64 -> t
(** Derive an independent stream from the parent's current state and
    [key] {e without} advancing the parent. The same (state, key) pair
    always yields the same stream, making per-item streams (keyed by the
    item's identity) independent of processing order. *)

val next_int64 : t -> int64

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** Uniform in [0, bound); raises on non-positive bound. *)

val bool : t -> bool
val bernoulli : t -> float -> bool

val exponential : t -> mean:float -> float
(** The distribution behind the paper's Ton/Toff surgeon timers. *)

val uniform : t -> lo:float -> hi:float -> float
