(** Descriptive statistics for trial reports. *)

val mean : float list -> float
(** [nan] on empty input. *)

val variance : float list -> float
(** Sample variance (n−1 denominator); 0 for fewer than two points. *)

val stddev : float list -> float
val minimum : float list -> float
val maximum : float list -> float
val sum : float list -> float

val percentile : float list -> float -> float
(** Linear interpolation between closest ranks. *)

val wilson : ?z:float -> n:int -> hits:int -> unit -> float * float
(** Wilson score interval for a Bernoulli proportion observed as
    [hits] successes in [n] trials, at critical value [z] (default:
    two-sided 95%). Unlike the normal approximation, the interval is
    non-degenerate at 0 and n hits — 0 violations in n trials yields an
    upper end near 3/n rather than 0. [(0, 1)] when [n <= 0]. *)

val normal_quantile : float -> float
(** Inverse standard-normal CDF (Acklam's rational approximation,
    |error| < 1.15e-9). Raises [Invalid_argument] outside (0, 1). *)

val wilson_upper : ?confidence:float -> n:int -> hits:int -> unit -> float
(** One-sided Wilson upper confidence bound on the proportion:
    P(p <= bound) >= [confidence] (default 0.95). *)

(** Online accumulator (Welford) for long streams. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  val is_binary : t -> bool
  (** Every value added so far was exactly 0 or 1 (and there was at
      least one) — the stream is an indicator metric, for which the
      normal-approximation CI is replaced by a {!wilson} interval. *)

  val hits : t -> int
  (** Count of 1-valued additions (meaningful when {!is_binary}). *)
end
