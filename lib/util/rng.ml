(** Deterministic, splittable pseudo-random number generator.

    SplitMix64 (Steele, Lea & Flood 2014): a 64-bit mixing generator with
    a trivially splittable state. Simulation trials must be reproducible
    (so EXPERIMENTS.md numbers can be regenerated exactly) and mutually
    independent across components (so adding a sampling site in one model
    does not perturb another); splitting gives both without global
    state. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Derive an independent stream; deterministic in the parent state. *)
let split t =
  let seed = next_int64 t in
  { state = Int64.mul seed 0xDA942042E4DD58B5L }

(* The SplitMix64 finalizer, used to decorrelate keyed derivations. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Derive an independent stream from [t]'s current state and [key],
    without advancing [t]: the same (state, key) pair always yields the
    same stream, so consumers that derive one stream per logical item
    (keyed by the item's identity) are deterministic regardless of the
    order the items are processed in. *)
let keyed t ~key =
  { state = mix64 (Int64.add t.state (Int64.mul key golden_gamma)) }

(** Uniform in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(** Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let f = float t in
  let i = int_of_float (f *. Float.of_int bound) in
  if i >= bound then bound - 1 else i

let bool t = float t < 0.5

(** Bernoulli trial with success probability [p]. *)
let bernoulli t p = float t < p

(** Exponentially distributed variate with the given [mean] — the
    distribution the paper uses for the surgeon's Ton and Toff timers. *)
let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. float t (* in (0,1] *) in
  -.mean *. log u

(** Uniform in [lo, hi). *)
let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)
