(** Minimal JSON values, shared by the campaign JSONL checkpoints, the
    fault-plan DSL and the lint JSON report.

    The container ships no JSON package, and every record we exchange is
    flat (ints, floats, strings, shallow nesting), so a small
    self-contained encoder/parser keeps the dependency budget at zero. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line encoding. Integral [Num]s print without a
    decimal point so job ids round-trip textually. *)

val of_string : string -> (t, string) result
(** Parse one JSON document; [Error] carries the offset and reason.
    Trailing garbage after the document is an error. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] elsewhere. *)

val to_float : t -> float option
val to_int : t -> int option
(** [to_int] requires the number to be integral. *)

val to_str : t -> string option
