(** Small descriptive-statistics helpers for trial reports. *)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. Float.of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = Float.of_int (List.length xs) in
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. (n -. 1.0)

let stddev xs = sqrt (variance xs)

let minimum = function [] -> nan | x :: xs -> List.fold_left Float.min x xs
let maximum = function [] -> nan | x :: xs -> List.fold_left Float.max x xs

let sum = List.fold_left ( +. ) 0.0

let percentile xs p =
  match List.sort Float.compare xs with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      let rank = p /. 100.0 *. Float.of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = min (n - 1) (lo + 1) in
      let frac = rank -. Float.of_int lo in
      let nth i = List.nth sorted i in
      nth lo +. (frac *. (nth hi -. nth lo))

(* Wilson score interval. The normal-approximation half-width
   z·s/√n collapses to 0 on an all-zero Bernoulli sample, which is
   exactly backwards for rare events: 0 violations in n trials bounds
   the rate near 3/n, not 0. The score interval inverts the normal test
   on the true p instead of plugging in p̂, so it stays honest at the
   boundaries. *)
let wilson ?(z = 1.959963984540054) ~n ~hits () =
  if n <= 0 then (0.0, 1.0)
  else begin
    let nf = Float.of_int n in
    let p = Float.of_int hits /. nf in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. nf) in
    let center = (p +. (z2 /. (2.0 *. nf))) /. denom in
    let half =
      z
      *. sqrt ((p *. (1.0 -. p) /. nf) +. (z2 /. (4.0 *. nf *. nf)))
      /. denom
    in
    (Float.max 0.0 (center -. half), Float.min 1.0 (center +. half))
  end

(* z for a one-sided level: wilson upper at confidence c is the upper
   end of the two-sided interval at 2c-1. Newton on the error function
   would be overkill; Acklam-style rational approximation of the normal
   quantile is plenty for confidence displays and bench gates. *)
let normal_quantile p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Stats.normal_quantile: p in (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  if p < p_low then
    let q = sqrt (-2.0 *. log p) in
    (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  else if p <= 1.0 -. p_low then
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
  else
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
       /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0))

(** One-sided Wilson upper bound: P(p <= result) >= confidence. *)
let wilson_upper ?(confidence = 0.95) ~n ~hits () =
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Stats.wilson_upper: confidence in (0,1)";
  snd (wilson ~z:(normal_quantile confidence) ~n ~hits ())

(** Online accumulator (Welford) for long streams. *)
module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable binary : bool;  (** every value added so far was 0 or 1 *)
    mutable hits : int;  (** count of 1-values (meaningful when binary) *)
  }

  let create () =
    {
      n = 0;
      mean = 0.0;
      m2 = 0.0;
      min = infinity;
      max = neg_infinity;
      binary = true;
      hits = 0;
    }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. Float.of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    if x = 1.0 then t.hits <- t.hits + 1
    else if x <> 0.0 then t.binary <- false

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. Float.of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = if t.n = 0 then nan else t.min
  let max t = if t.n = 0 then nan else t.max
  let is_binary t = t.n > 0 && t.binary
  let hits t = t.hits
end
