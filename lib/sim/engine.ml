(** Simulation engine: a hybrid-system executor coupled to the wireless
    star network and to periodic environment processes.

    This is the emulation testbed of Fig. 7(b) in software. The executor
    advances the automata; the {!Pte_net.Star} router decides each
    event's fate on the air; {e processes} model everything outside the
    automata formalism — the surgeon's random timers, the oximeter wired
    to the supervisor, the patient's coupling to the ventilator. *)

open Pte_hybrid

type process = {
  name : string;
  period : float;
  mutable next_due : float;
  action : t -> time:float -> unit;
}

and t = {
  exec : Executor.t;
  net : Pte_net.Star.t option;
  transport : Pte_net.Transport.t option;
  rng : Pte_util.Rng.t;
  mutable processes : process list;
}

let create ?(config = Executor.default_config) ?net
    ?(transport : Pte_net.Transport.mode = `Bare) ?trace_sink ~seed system =
  let exec = Executor.create ~config ?trace_sink system in
  let rng = Pte_util.Rng.create seed in
  let transport =
    match net with
    | None -> None
    | Some star ->
        (* `Bare never draws from its stream, so handing it the engine
           rng leaves every legacy stream byte-identical; `Reliable and
           `Scheduled get an independent split (`Reliable keys its
           per-exchange jitter streams off it; `Scheduled draws nothing
           today, but owning a stream keeps the split layout stable if
           it ever does) *)
        let trng =
          match transport with
          | `Bare -> rng
          | `Reliable _ | `Scheduled _ | `Adaptive _ ->
              Pte_util.Rng.split rng
        in
        let t = Pte_net.Transport.create ~mode:transport ~rng:trng star in
        Pte_net.Transport.attach t exec;
        Executor.set_router exec (Pte_net.Transport.router t);
        Some t
  in
  { exec; net; transport; rng; processes = [] }

let executor t = t.exec
let network t = t.net
let transport t = t.transport
let time t = Executor.time t.exec
let rng t = t.rng

(** Derive an independent random stream for one model component. *)
let fork_rng t = Pte_util.Rng.split t.rng

(** Register a periodic process. [period] defaults to the executor step,
    i.e. the process observes every simulation instant. *)
let add_process t ?(period = 0.0) ~name action =
  t.processes <-
    t.processes @ [ { name; period; next_due = 0.0; action } ]

let inject t ~receiver ~root =
  ignore (Executor.inject t.exec ~receiver ~root)

let location_of t name = Executor.location_of t.exec name
let value_of t name var = Executor.value_of t.exec name var
let set_value t name var value = Executor.set_value t.exec name var value
let note t text = Executor.note t.exec text

(* Node-fault hooks (crash / reboot / clock drift), for [pte_faults]. *)
let halt t name = Executor.halt t.exec name
let restart t name = Executor.restart t.exec name
let is_halted t name = Executor.is_halted t.exec name
let set_rate t name rate = Executor.set_rate t.exec name rate

let run_processes t =
  let now = time t in
  List.iter
    (fun p ->
      if now >= p.next_due -. 1e-12 then begin
        p.action t ~time:now;
        p.next_due <- now +. Float.max p.period 1e-9
      end)
    t.processes

(** Run to [until], interleaving processes with executor steps. *)
let run t ~until =
  while time t < until -. 1e-12 do
    run_processes t;
    Executor.step t.exec
  done;
  run_processes t

let trace t = Executor.trace t.exec
