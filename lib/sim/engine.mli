(** Simulation engine: a hybrid-system executor coupled to the wireless
    star network and to periodic environment processes — the Fig. 7(b)
    emulation testbed in software. *)

type t

val create :
  ?config:Pte_hybrid.Executor.config ->
  ?net:Pte_net.Star.t ->
  ?transport:Pte_net.Transport.mode ->
  ?trace_sink:(Pte_hybrid.Trace.entry -> unit) ->
  seed:int ->
  Pte_hybrid.System.t ->
  t
(** With [?net], wireless events route through the star's links via a
    {!Pte_net.Transport} ([`Bare] by default: single-shot sends, exactly
    the legacy {!Pte_net.Star.router} behavior; [`Reliable _] adds
    ACK/retransmission); automata that are not star nodes communicate
    as wired. *)

val executor : t -> Pte_hybrid.Executor.t
val network : t -> Pte_net.Star.t option

(** The transport instance wrapping [?net] ([None] without a network) —
    exposes delivery stats and per-sender consecutive-loss counters. *)
val transport : t -> Pte_net.Transport.t option
val time : t -> float
val rng : t -> Pte_util.Rng.t

val fork_rng : t -> Pte_util.Rng.t
(** An independent random stream for one model component (deterministic
    in the engine seed). *)

val add_process :
  t -> ?period:float -> name:string -> (t -> time:float -> unit) -> unit
(** Register a periodic environment process; [period] defaults to every
    executor step. *)

val inject : t -> receiver:string -> root:string -> unit
(** Deliver an environment stimulus now (lossless, local). *)

val location_of : t -> string -> string
val value_of : t -> string -> string -> float
val set_value : t -> string -> string -> float -> unit
val note : t -> string -> unit

val halt : t -> string -> unit
(** Crash an automaton until {!restart} (see {!Pte_hybrid.Executor.halt}). *)

val restart : t -> string -> unit
(** Reboot a (crashed) automaton into its initial location. *)

val is_halted : t -> string -> bool

val set_rate : t -> string -> float -> unit
(** Per-automaton clock-drift factor (see {!Pte_hybrid.Executor.set_rate}). *)

val run : t -> until:float -> unit
val trace : t -> Pte_hybrid.Trace.t
