(* Static TDMA round schedules — see the interface for the model. *)

type link = { src : string; dst : string }
type entry = { link : link; slot : int; retries : int }

type t = {
  slot_len : float;
  slots_per_round : int;
  entries : entry list;
  depth : int;
}

let period t = t.slot_len *. Float.of_int t.slots_per_round

let collision_free t =
  let slots = List.map (fun e -> e.slot) t.entries in
  List.length (List.sort_uniq compare slots) = List.length slots

let validate t =
  let dup_links =
    let links = List.map (fun e -> e.link) t.entries in
    List.length (List.sort_uniq compare links) <> List.length links
  in
  if not (t.slot_len > 0.0) then Error "schedule: slot_len must be > 0"
  else if t.slots_per_round < 1 then
    Error "schedule: slots_per_round must be >= 1"
  else if t.depth < 1 then Error "schedule: depth must be >= 1"
  else if List.exists (fun e -> e.retries < 0) t.entries then
    Error "schedule: retries must be >= 0"
  else if
    List.exists (fun e -> e.slot < 0 || e.slot >= t.slots_per_round) t.entries
  then Error "schedule: slot offsets must lie in [0, slots_per_round)"
  else if dup_links then Error "schedule: duplicate link entries"
  else if not (collision_free t) then
    Error "schedule: two links share a slot"
  else Ok ()

let find t ~src ~dst =
  List.find_opt
    (fun e -> String.equal e.link.src src && String.equal e.link.dst dst)
    t.entries

(* Hashed (src, dst) -> entry lookup. [find] walks the entry list, which
   is O(links) on every admitted send — at N >= 1000 remote entities the
   star has thousands of scheduled links, so the transport's per-send
   lookup goes through this index instead. *)
type index = (string * string, entry) Hashtbl.t

let index t : index =
  let tbl = Hashtbl.create (2 * List.length t.entries) in
  List.iter (fun e -> Hashtbl.replace tbl (e.link.src, e.link.dst) e) t.entries;
  tbl

let find_indexed (idx : index) ~src ~dst = Hashtbl.find_opt idx (src, dst)

(* Smallest k*P + slot*slot_len >= after, k natural. Computed from the
   ceiling of (after - offset) / P so it is exact for after <= offset
   and monotone in [after]. *)
let slot_start t entry ~after =
  let p = period t in
  let offset = Float.of_int entry.slot *. t.slot_len in
  let k = Float.max 0.0 (Float.ceil ((after -. offset) /. p)) in
  let rec settle k =
    (* guard against ceil landing one round short under rounding *)
    let s = (k *. p) +. offset in
    if s >= after then s else settle (k +. 1.0)
  in
  settle k

let link_worst_case_latency t entry =
  Float.of_int t.depth
  *. ((Float.of_int (entry.retries + 1) *. period t) +. t.slot_len)

let worst_case_latency t =
  List.fold_left
    (fun acc e -> Float.max acc (link_worst_case_latency t e))
    0.0 t.entries

let pp_entry ppf e =
  Fmt.pf ppf "slot %d: %s->%s (retries %d)" e.slot e.link.src e.link.dst
    e.retries

let pp ppf t =
  Fmt.pf ppf "@[<v>round: %d slots x %gs = %gs, depth %d, wcl %gs@,%a@]"
    t.slots_per_round t.slot_len (period t) t.depth (worst_case_latency t)
    (Fmt.list ~sep:Fmt.cut pp_entry)
    (List.sort (fun a b -> compare a.slot b.slot) t.entries)
