(* Joint schedule + retry synthesis — see the interface for why the
   optimum is closed-form. *)

type policy = {
  slot_len : float option;
  retries : int option;
  loss : float;
  confidence : float;
  depth : int;
  budget : float option;
}

let default_policy =
  { slot_len = None; retries = None; loss = 0.25; confidence = 0.99;
    depth = 2; budget = None }

type error =
  | No_links
  | Bad_policy of string
  | Budget_exceeded of { need : float; budget : float }

let error_to_string = function
  | No_links -> "schedule synthesis: no links to schedule"
  | Bad_policy msg -> "schedule synthesis: " ^ msg
  | Budget_exceeded { need; budget } ->
      Printf.sprintf
        "schedule synthesis: minimal schedule needs %gs but the delay budget \
         is %gs"
        need budget

let ( let* ) = Result.bind

let check_policy p =
  if not (p.loss >= 0.0 && p.loss < 1.0) then
    Error (Bad_policy "loss must lie in [0, 1)")
  else if not (p.confidence > 0.0 && p.confidence < 1.0) then
    Error (Bad_policy "confidence must lie in (0, 1)")
  else if p.depth < 1 then Error (Bad_policy "depth must be >= 1")
  else if (match p.slot_len with Some s -> not (s > 0.0) | None -> false)
  then Error (Bad_policy "slot_len must be > 0")
  else if (match p.retries with Some r -> r < 0 | None -> false) then
    Error (Bad_policy "retries must be >= 0")
  else if (match p.budget with Some b -> not (b > 0.0) | None -> false)
  then Error (Bad_policy "budget must be > 0")
  else Ok ()

(* Smallest r with loss^(r+1) <= 1 - confidence: enough blind copies
   that a send is delivered with the target probability under i.i.d.
   per-copy loss. Loss 0 needs no copies; the cap only guards against
   pathological near-1 loss values. *)
let confidence_retries ~loss ~confidence =
  if loss <= 0.0 then 0
  else
    let miss_target = 1.0 -. confidence in
    let rec go r miss =
      if miss <= miss_target || r >= 64 then r else go (r + 1) (miss *. loss)
    in
    go 0 loss

let synthesize p ~links =
  let* () = check_policy p in
  if links = [] then Error No_links
  else
    let worst_frame =
      List.fold_left (fun acc (_, d) -> Float.max acc d) 0.0 links
    in
    let* slot_len =
      match p.slot_len with
      | None ->
          if worst_frame > 0.0 then Ok worst_frame
          else Error (Bad_policy "links report a zero worst frame delay")
      | Some s ->
          if s >= worst_frame then Ok s
          else
            Error
              (Bad_policy
                 (Printf.sprintf
                    "slot_len %gs is shorter than the worst frame delay %gs"
                    s worst_frame))
    in
    let n = List.length links in
    let period = slot_len *. Float.of_int n in
    (* wcl as a function of the (uniform) retry count, matching
       Schedule.link_worst_case_latency for every entry. *)
    let wcl r =
      Float.of_int p.depth
      *. ((Float.of_int (r + 1) *. period) +. slot_len)
    in
    let* retries =
      let r_conf =
        match p.retries with
        | Some r -> r
        | None -> confidence_retries ~loss:p.loss ~confidence:p.confidence
      in
      match p.budget with
      | None -> Ok r_conf
      | Some budget ->
          if wcl 0 > budget then
            Error (Budget_exceeded { need = wcl 0; budget })
          else if wcl r_conf <= budget then Ok r_conf
          else if p.retries <> None then
            (* a pinned retry count that breaks the budget is an error,
               not something to silently shrink *)
            Error (Budget_exceeded { need = wcl r_conf; budget })
          else
            (* largest r the budget admits: wcl is affine increasing in
               r and wcl 0 <= budget, so the walk terminates *)
            let rec fit r =
              if wcl (r + 1) <= budget then fit (r + 1) else r
            in
            Ok (fit 0)
    in
    let entries =
      List.mapi
        (fun slot (link, _) -> { Schedule.link; slot; retries })
        links
    in
    let sched =
      { Schedule.slot_len; slots_per_round = n; entries; depth = p.depth }
    in
    match Schedule.validate sched with
    | Ok () -> Ok sched
    | Error msg -> Error (Bad_policy msg)

let pp_policy ppf p =
  let pp_opt pp ppf = function
    | None -> Fmt.string ppf "auto"
    | Some v -> pp ppf v
  in
  Fmt.pf ppf "slot:%a retries:%a loss:%g confidence:%g depth:%d budget:%a"
    (pp_opt (Fmt.fmt "%gs"))
    p.slot_len
    (pp_opt Fmt.int)
    p.retries p.loss p.confidence p.depth
    (pp_opt (Fmt.fmt "%gs"))
    p.budget
