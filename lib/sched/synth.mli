(** Joint schedule + retry-policy synthesis: from the star's directed
    links and their worst-case frame delays, build the round schedule
    with the smallest worst-case end-to-end latency that still meets a
    delivery-confidence target, subject to an end-to-end delay budget
    (the caller feeds in {!Pte_core.Constraints.max_delay_budget}).

    The search space is tiny and the objective is monotone, so the
    optimum is closed-form rather than searched:

    - one slot per link minimises the round period (fewer slots is
      impossible without a collision; more only stretches the period),
      so every link gets exactly one slot, in the deterministic order
      the links are supplied;
    - [slot_len] is the largest worst-case frame delay of any link
      (smaller would let a frame overrun its slot; larger only adds
      latency), unless the policy pins a larger value;
    - the blind-retransmission count is the smallest [r] achieving the
      per-send delivery confidence under i.i.d. per-copy loss
      ([loss^(r+1) <= 1 - confidence]) — more copies only add latency,
      fewer miss the target — capped by the largest [r] the budget
      admits under {!Schedule.link_worst_case_latency}.

    If even [r = 0] overshoots the budget the synthesis fails with
    {!Budget_exceeded} rather than emit an unsound schedule. *)

(** Synthesis inputs. [None] fields are chosen by the synthesizer. *)
type policy = {
  slot_len : float option;
      (** pin the slot length (must cover the worst frame delay). *)
  retries : int option;
      (** pin the blind-retransmission count (checked against budget). *)
  loss : float;  (** assumed i.i.d. per-copy loss probability, [0, 1). *)
  confidence : float;
      (** target per-send delivery probability, (0, 1). *)
  depth : int;  (** per-link admission bound ({!Schedule.t.depth}). *)
  budget : float option;
      (** end-to-end delay budget; [None] means unconstrained (the
          emulation layer fills in the Theorem-1 budget before use). *)
}

val default_policy : policy
(** [loss = 0.25], [confidence = 0.99], [depth = 2], everything else
    synthesized — at the case study's 25% WiFi loss this yields the
    r = 3 blind-retry schedule of DESIGN §10. *)

type error =
  | No_links  (** an empty star has nothing to schedule. *)
  | Bad_policy of string  (** ill-formed policy field; the reason. *)
  | Budget_exceeded of { need : float; budget : float }
      (** even the minimal schedule's worst-case latency [need]
          overshoots [budget]. *)

val synthesize :
  policy -> links:(Schedule.link * float) list -> (Schedule.t, error) result
(** [synthesize policy ~links] with [links] the directed links paired
    with their worst-case one-way frame delays
    ({!Pte_net.Link.worst_delay}). The result is {!Schedule.validate}d
    and, when [policy.budget] is set, satisfies
    [Schedule.worst_case_latency <= budget]. Deterministic in its
    inputs: link order fixes slot order. *)

val error_to_string : error -> string
val pp_policy : policy Fmt.t
