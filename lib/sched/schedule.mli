(** Static TDMA round schedules for the wireless star, after TTW
    (Jacob et al.): communication is organised in rounds of
    [slots_per_round] contention-free slots of [slot_len] seconds each,
    and every directed link owns a fixed slot offset in the round. A
    send waits for its link's next slot boundary, then transmits
    blindly — the same frame in the same slot of [1 + retries]
    consecutive rounds, with no acknowledgements — so the worst-case
    delivery latency of an admitted send is a design-time constant,
    independent of channel state and of what other links do.

    The module is deliberately topology-agnostic: a {!link} is just a
    directed (src, dst) name pair, so the schedule model has no
    dependency on [Pte_net] and the transport layer can depend on it
    without a cycle. *)

(** A directed link of the star, by endpoint names. *)
type link = { src : string; dst : string }

(** One row of the schedule: [link] owns slot [slot] (0-based offset
    into the round) and blindly retransmits [retries] extra copies in
    the same slot of the following rounds. *)
type entry = { link : link; slot : int; retries : int }

type t = {
  slot_len : float;  (** seconds per slot; covers one worst-case frame. *)
  slots_per_round : int;
  entries : entry list;
  depth : int;
      (** per-link admission bound: at most [depth] sends queued or in
          the air per link; further sends are rejected at admission so
          the latency bound stays closed-form. *)
}

val period : t -> float
(** [slot_len *. float slots_per_round] — seconds per round. *)

val validate : t -> (unit, string) result
(** Well-formedness: positive [slot_len], positive [slots_per_round],
    [depth >= 1], every slot in [0, slots_per_round), every
    [retries >= 0], no duplicate links, and no two entries sharing a
    slot ({!collision_free}). *)

val collision_free : t -> bool
(** No two entries claim the same slot offset — the TDMA property that
    makes per-link latency independent of the other links' traffic. *)

val find : t -> src:string -> dst:string -> entry option
(** Linear scan of [entries]. Per-send lookups should go through
    {!index} / {!find_indexed} instead: with 1000+ remote entities the
    star carries thousands of scheduled links, and the transport pays
    this lookup on every admitted send. *)

type index
(** A hashed (src, dst) -> entry view of one schedule's entries. *)

val index : t -> index
(** Build the hashed lookup (O(entries) once). The index is a snapshot:
    rebuild it if a new schedule is synthesized (e.g. at an adaptive
    mode switch). *)

val find_indexed : index -> src:string -> dst:string -> entry option
(** O(1) equivalent of {!find}. *)

val slot_start : t -> entry -> after:float -> float
(** The earliest start time of [entry]'s slot at or after time
    [after]: the smallest [k *. period + slot *. slot_len >= after]
    with [k] a natural number (times are relative to round 0 starting
    at 0). *)

val link_worst_case_latency : t -> entry -> float
(** Closed-form per-link bound on the delivery delay of any admitted
    send, queueing included:
    [depth *. ((retries + 1) *. period +. slot_len)].

    One admitted send waits at most one period for its first slot, its
    last blind copy flies [retries] periods later, and the copy lands
    within [slot_len] of its slot start (validated: [slot_len] covers
    the worst frame delay) — at most [(retries+1) * period + slot_len]
    after admission. With at most [depth] sends holding per-link
    reservations, back-to-back reservations delay admission by at most
    [depth - 1] further spans. *)

val worst_case_latency : t -> float
(** [max] of {!link_worst_case_latency} over all entries; 0 for an
    empty schedule. *)

val pp : t Fmt.t
