(** N-parameterized instances of the lease design pattern.

    The paper's case study fixes N = 2 and the examples stretch to
    N = 3..4; the ROADMAP's north star is an engine that emulates the
    full-order pattern ξ1 < … < ξN for N in the thousands. This module
    is the generator those scaling experiments (bench S1) share: given a
    chain length it names the entities, synthesizes a feasible c1–c7
    constant set via {!Synthesis}, and assembles the {!Pattern} system.

    Feasibility at scale: the margin-based derivation grows T_exit,1
    linearly and T_run,1 quadratically with N (each run budget must
    cover the whole residual chain), so the constants are astronomically
    conservative at N = 1024 — which is fine: the throughput experiments
    exercise the {e executor} under thousands of concurrently flowing
    automata and the grant/cancel cascades between them, not the lease
    expiries at the top of the chain. *)

let entity_name i = Printf.sprintf "p%04d" i

let initializer_name = "init"

(** ξ1 .. ξN for a chain of [n] remote entities: participants
    [p0001 .. p<n-1>] and the Initializer ["init"]. *)
let entity_names ~n =
  if n < 2 then Fmt.invalid_arg "Scale.entity_names: need n >= 2, got %d" n;
  List.init (n - 1) (fun i -> entity_name (i + 1)) @ [ initializer_name ]

(** Requirements for a chain of [n] remote entities: uniform safeguard
    intervals (2 s risky-entry, 1 s safe-exit — the F3/X2 values) and
    the default 20 s initializer run / 3 s wait / 1 s margin, unless
    overridden. *)
let requirements ?(enter_risky_min = 2.0) ?(exit_safe_min = 1.0)
    ?(initializer_run = 20.0) ?(t_wait_max = 3.0) ?(margin = 1.0) ~n () =
  let base =
    Synthesis.default_requirements ~entity_names:(entity_names ~n)
      ~safeguards:
        (List.init (n - 1) (fun _ ->
             { Params.enter_risky_min; exit_safe_min }))
  in
  { base with Synthesis.initializer_run; t_wait_max; margin }

let params_exn ~n = Synthesis.synthesize_exn (requirements ~n ())

(** The assembled pattern system for a chain of [n] remote entities
    (n + 1 automata including the supervisor), with its synthesized
    constants. *)
let system ?(lease = true) ~n () =
  let p = params_exn ~n in
  (Pattern.system ~lease p, p)
