(** The closed-form configuration constraints c1–c7 of Theorem 1.

    If a hybrid system follows the design pattern and its constants
    satisfy all seven conditions, PTE Safety Rules 1 and 2 hold under
    arbitrary loss of the events carried over unreliable channels, and
    every entity's continuous risky dwelling is bounded by
    T^max_wait + T^max_LS1. *)

type condition = C1 | C2 | C3 | C4 | C5 | C6 | C7

let all_conditions = [ C1; C2; C3; C4; C5; C6; C7 ]

let condition_name = function
  | C1 -> "c1"
  | C2 -> "c2"
  | C3 -> "c3"
  | C4 -> "c4"
  | C5 -> "c5"
  | C6 -> "c6"
  | C7 -> "c7"

let condition_statement = function
  | C1 -> "all configuration time constants are positive"
  | C2 -> "T_LS1 = T_enter,1 + T_run,1 + T_exit,1 > N * T_wait"
  | C3 -> "(N-1) * T_wait < T_req,N < T_LS1"
  | C4 -> "forall i: (i-1)*T_wait + T_enter,i + T_run,i + T_exit,i <= T_LS1"
  | C5 -> "forall i<N: T_enter,i + T_risky:i->i+1 < T_enter,i+1"
  | C6 ->
      "forall i<N: T_enter,i + T_run,i > T_wait + T_enter,i+1 + T_run,i+1 + \
       T_exit,i+1"
  | C7 -> "forall i<N: T_exit,i > T_safe:i+1->i"

type outcome = { condition : condition; ok : bool; detail : string }

let check_condition (p : Params.t) condition =
  let n = Params.n p in
  let e i = p.Params.entities.(i - 1) (* 1-based like the paper *) in
  let t_ls1 = Params.t_ls1 p in
  let fail fmt = Fmt.kstr (fun s -> (false, s)) fmt in
  let pass fmt = Fmt.kstr (fun s -> (true, s)) fmt in
  let forall lo hi predicate describe =
    let rec go i =
      if i > hi then pass "holds for i=%d..%d" lo hi
      else if predicate i then go (i + 1)
      else fail "fails at i=%d: %s" i (describe i)
    in
    go lo
  in
  let ok, detail =
    match condition with
    | C1 ->
        let constants =
          [ ("T_wait", p.Params.t_wait_max); ("T_fb,0", p.Params.t_fb_min);
            ("T_req,N", p.Params.t_req_max) ]
          @ Array.to_list
              (Array.map
                 (fun (en : Params.entity) -> ("T_enter," ^ en.name, en.t_enter_max))
                 p.Params.entities)
          @ Array.to_list
              (Array.map
                 (fun (en : Params.entity) -> ("T_run," ^ en.name, en.t_run_max))
                 p.Params.entities)
          @ Array.to_list
              (Array.map
                 (fun (en : Params.entity) -> ("T_exit," ^ en.name, en.t_exit))
                 p.Params.entities)
        in
        (match List.find_opt (fun (_, v) -> v <= 0.0) constants with
        | Some (name, v) -> fail "%s = %g is not positive" name v
        | None -> pass "all %d constants positive" (List.length constants))
    | C2 ->
        let rhs = Float.of_int n *. p.Params.t_wait_max in
        if t_ls1 > rhs then pass "T_LS1 = %g > %g = N*T_wait" t_ls1 rhs
        else fail "T_LS1 = %g <= %g = N*T_wait" t_ls1 rhs
    | C3 ->
        let lo = Float.of_int (n - 1) *. p.Params.t_wait_max in
        if lo < p.Params.t_req_max && p.Params.t_req_max < t_ls1 then
          pass "%g < T_req,N = %g < %g" lo p.Params.t_req_max t_ls1
        else fail "T_req,N = %g not in (%g, %g)" p.Params.t_req_max lo t_ls1
    | C4 ->
        forall 1 n
          (fun i ->
            let en = e i in
            (Float.of_int (i - 1) *. p.Params.t_wait_max)
            +. en.t_enter_max +. en.t_run_max +. en.t_exit
            <= t_ls1 +. 1e-9)
          (fun i ->
            let en = e i in
            Fmt.str "(%d-1)*%g + %g + %g + %g > T_LS1 = %g" i
              p.Params.t_wait_max en.t_enter_max en.t_run_max en.t_exit t_ls1)
    | C5 ->
        forall 1 (n - 1)
          (fun i ->
            (e i).t_enter_max
            +. p.Params.safeguards.(i - 1).Params.enter_risky_min
            < (e (i + 1)).t_enter_max)
          (fun i ->
            Fmt.str "T_enter,%d + T_risky:%d->%d = %g + %g >= T_enter,%d = %g"
              i i (i + 1) (e i).t_enter_max
              p.Params.safeguards.(i - 1).Params.enter_risky_min
              (i + 1) (e (i + 1)).t_enter_max)
    | C6 ->
        forall 1 (n - 1)
          (fun i ->
            (e i).t_enter_max +. (e i).t_run_max
            > p.Params.t_wait_max
              +. (e (i + 1)).t_enter_max +. (e (i + 1)).t_run_max
              +. (e (i + 1)).t_exit)
          (fun i ->
            Fmt.str "%g + %g <= %g + %g + %g + %g" (e i).t_enter_max
              (e i).t_run_max p.Params.t_wait_max (e (i + 1)).t_enter_max
              (e (i + 1)).t_run_max (e (i + 1)).t_exit)
    | C7 ->
        forall 1 (n - 1)
          (fun i ->
            (e i).t_exit > p.Params.safeguards.(i - 1).Params.exit_safe_min)
          (fun i ->
            Fmt.str "T_exit,%d = %g <= T_safe:%d->%d = %g" i (e i).t_exit
              (i + 1) i p.Params.safeguards.(i - 1).Params.exit_safe_min)
  in
  { condition; ok; detail }

let check params =
  if Params.n params < 2 then
    invalid_arg "Theorem 1 requires N >= 2 remote entities";
  List.map (check_condition params) all_conditions

let all_ok outcomes = List.for_all (fun o -> o.ok) outcomes

let violated outcomes =
  List.filter_map (fun o -> if o.ok then None else Some o.condition) outcomes

(** [satisfies params] is [true] iff c1–c7 all hold — the hypothesis of
    Theorem 1. *)
let satisfies params = all_ok (check params)

(* ------------------------------------------------------------------ *)
(* Delay-aware recheck: Theorem 1 under a bounded message latency      *)
(* ------------------------------------------------------------------ *)

(* Every protocol step the constraints reason about is paced by a
   message over the unreliable channel, so a transport that can spend up
   to [delay] seconds per delivery (e.g. an ARQ retransmission budget)
   stretches each wait by that much. Inflating T^max_wait and both
   safeguard minima by [delay] makes every condition c2–c7 strictly
   harder to satisfy, so a pass is conservative: the inflated system
   still satisfies Theorem 1, and the original dwell bound holds with
   the delayed constants. *)
let with_message_delay (p : Params.t) ~delay =
  if delay < 0.0 then
    invalid_arg "Constraints.with_message_delay: negative delay";
  {
    p with
    Params.t_wait_max = p.Params.t_wait_max +. delay;
    safeguards =
      Array.map
        (fun (s : Params.safeguard) ->
          {
            Params.enter_risky_min = s.Params.enter_risky_min +. delay;
            exit_safe_min = s.Params.exit_safe_min +. delay;
          })
        p.Params.safeguards;
  }

let check_with_delay p ~delay = check (with_message_delay p ~delay)
let satisfies_with_delay p ~delay = all_ok (check_with_delay p ~delay)

(** Largest per-message delay budget the configuration tolerates, by
    bisection on {!satisfies_with_delay} (each condition is monotone in
    the delay). 0 when the base configuration already fails. *)
let max_delay_budget ?(tol = 1e-6) p =
  if not (satisfies p) then 0.0
  else begin
    let hi = ref 1.0 in
    while satisfies_with_delay p ~delay:!hi && !hi < 1e9 do
      hi := !hi *. 2.0
    done;
    if satisfies_with_delay p ~delay:!hi then infinity
    else begin
      let lo = ref 0.0 and hi = ref !hi in
      while !hi -. !lo > tol do
        let mid = 0.5 *. (!lo +. !hi) in
        if satisfies_with_delay p ~delay:mid then lo := mid else hi := mid
      done;
      !lo
    end
  end

(** Remaining slack of a transport whose per-message worst case is
    [delay]: how much more latency the configuration would still
    tolerate. Negative when the delay already breaks Theorem 1. *)
let delay_slack ?tol p ~delay = max_delay_budget ?tol p -. delay

let pp_outcome ppf o =
  Fmt.pf ppf "%s %s: %s — %s"
    (if o.ok then "[ok]" else "[VIOLATED]")
    (condition_name o.condition)
    (condition_statement o.condition)
    o.detail

let pp_report ppf outcomes =
  Fmt.(list ~sep:cut pp_outcome) ppf outcomes
