(** The closed-form configuration constraints c1–c7 of Theorem 1.

    If a hybrid system follows the design pattern and its constants
    satisfy all seven conditions, the PTE safety rules hold under
    arbitrary loss of the events carried over unreliable channels, and
    every entity's continuous risky dwelling is bounded by
    T^max_wait + T^max_LS1 ({!Params.risky_dwell_bound}). *)

type condition = C1 | C2 | C3 | C4 | C5 | C6 | C7

val all_conditions : condition list

val condition_name : condition -> string
(** ["c1"] .. ["c7"]. *)

val condition_statement : condition -> string
(** The inequality, in the paper's notation. *)

(** Result of checking one condition. *)
type outcome = { condition : condition; ok : bool; detail : string }

val check_condition : Params.t -> condition -> outcome

val check : Params.t -> outcome list
(** All seven, in order. Raises [Invalid_argument] when N < 2 (Theorem 1
    requires at least two remote entities). *)

val all_ok : outcome list -> bool

val violated : outcome list -> condition list
(** The conditions that failed. *)

val satisfies : Params.t -> bool
(** [satisfies p] iff c1–c7 all hold — the hypothesis of Theorem 1. *)

val with_message_delay : Params.t -> delay:float -> Params.t
(** The configuration as seen through a channel that may spend up to
    [delay] extra seconds per message (e.g. a transport's bounded
    retransmission budget, {!Pte_net.Transport.worst_case_latency}):
    T^max_wait and both safeguard minima are inflated by [delay], which
    makes every condition c2–c7 strictly harder — a pass is therefore a
    conservative certificate that Theorem 1 survives the added latency.
    Raises [Invalid_argument] on a negative delay. *)

val check_with_delay : Params.t -> delay:float -> outcome list
(** [check (with_message_delay p ~delay)]. *)

val satisfies_with_delay : Params.t -> delay:float -> bool
(** All of c1–c7 with the message-delay budget folded in. *)

val max_delay_budget : ?tol:float -> Params.t -> float
(** Largest per-message delay the configuration tolerates (bisection to
    [tol], default 1e-6; 0 when the base configuration already fails,
    2.0 s for the case study — c3 binds first). *)

val delay_slack : ?tol:float -> Params.t -> delay:float -> float
(** [max_delay_budget p -. delay]: the latency headroom a transport
    with per-message worst case [delay] leaves unused. Negative when
    the delay already breaks Theorem 1 (so [>= 0] is exactly
    {!satisfies_with_delay} up to the bisection tolerance). *)

val pp_outcome : outcome Fmt.t
val pp_report : outcome list Fmt.t
