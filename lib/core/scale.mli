(** N-parameterized instances of the lease design pattern — the shared
    generator of the scaling experiments (bench S1): name a chain of [n]
    remote entities, synthesize feasible c1–c7 constants, assemble the
    pattern system. *)

val entity_name : int -> string
(** [entity_name i] is the 1-based participant name ["p%04d"]. *)

val initializer_name : string
(** ["init"], the name of ξN. *)

val entity_names : n:int -> string list
(** ξ1 .. ξN for a chain of [n] remote entities (participants then the
    Initializer). Raises [Invalid_argument] for [n < 2]. *)

val requirements :
  ?enter_risky_min:float ->
  ?exit_safe_min:float ->
  ?initializer_run:float ->
  ?t_wait_max:float ->
  ?margin:float ->
  n:int ->
  unit ->
  Synthesis.requirements
(** Uniform safeguards (defaults 2 s / 1 s) and the default
    run/wait/margin constants over {!entity_names}. *)

val params_exn : n:int -> Params.t
(** [Synthesis.synthesize_exn (requirements ~n ())]. *)

val system : ?lease:bool -> n:int -> unit -> Pte_hybrid.System.t * Params.t
(** The assembled pattern system (n + 1 automata including the
    supervisor) with its synthesized constants. *)
