(** Compatibility shim: the JSON encoder/parser moved to
    {!Pte_util.Json} so non-campaign consumers (fault plans, the lint
    JSON report) need not depend on the campaign library. Existing
    [Pte_campaign.Json] references keep working through this alias. *)

include Pte_util.Json
