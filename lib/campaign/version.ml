(** Library version stamp pinned into campaign checkpoints.

    Bump the stamp whenever the campaign engine's statistical contract
    changes — job planning, PRNG splitting, aggregation, or the
    sequential-stopping state. A checkpoint written under one stamp must
    not be resumed under another: with sequential stopping, the recorded
    prefix *is* part of the test statistic, so replaying it into a
    different engine silently invalidates the stopping guarantee. *)

let string = "pte-campaign/8"
