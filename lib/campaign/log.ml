(** Shared Logs source for the campaign engine. *)

let src = Logs.Src.create "pte.campaign" ~doc:"Monte-Carlo campaign engine"
