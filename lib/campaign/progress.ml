(** Progress reporting for running campaigns (via Logs). *)

module Log = (val Logs.src_log Log.src : Logs.LOG)

type t = {
  total : int;
  resumed : int;
  started : float;
  lock : Mutex.t;
  mutable done_ : int;  (** completed this run (excluding resumed). *)
  mutable last_report : float;
}

let create ?(resumed = 0) ~total () =
  {
    total;
    resumed;
    started = Unix.gettimeofday ();
    lock = Mutex.create ();
    done_ = 0;
    last_report = 0.0;
  }

let report t ~now =
  let elapsed = now -. t.started in
  let rate = if elapsed > 0.0 then Float.of_int t.done_ /. elapsed else 0.0 in
  let remaining = t.total - t.resumed - t.done_ in
  let eta =
    if rate > 0.0 then Printf.sprintf "%.0fs" (Float.of_int remaining /. rate)
    else "?"
  in
  Log.info (fun m ->
      m "campaign: %d/%d jobs (%.1f trials/s, ETA %s)"
        (t.resumed + t.done_) t.total rate eta)

let step t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      t.done_ <- t.done_ + 1;
      let now = Unix.gettimeofday () in
      let finished = t.resumed + t.done_ >= t.total in
      if finished || now -. t.last_report >= 1.0 then begin
        t.last_report <- now;
        report t ~now
      end)

let finish t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let now = Unix.gettimeofday () in
      let elapsed = now -. t.started in
      Log.info (fun m ->
          m "campaign: done — %d/%d jobs in %.1fs (%d resumed)"
            (t.resumed + t.done_) t.total elapsed t.resumed))

let completed t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> t.resumed + t.done_)
