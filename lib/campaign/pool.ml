(** Domain worker pool: parallel order-preserving array map. *)

let default_workers () = max 1 (Domain.recommended_domain_count ())

let map ?workers f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let workers =
      max 1 (min n (Option.value workers ~default:(default_workers ())))
    in
    let results = Array.make n None in
    (* Work queue: a single atomic cursor over the input indices. Each
       worker owns the cells it claims, so the [results] writes are
       race-free. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f xs.(i));
          loop ()
        end
      in
      loop ()
    in
    if workers = 1 then worker ()
    else begin
      let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join spawned
    end;
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every index was claimed and filled *))
      results
  end
