(** Deterministic aggregation of campaign outcomes (Welford + 95% CI). *)

open Pte_util

type summary = {
  n : int;
  mean : float;
  stddev : float;
  ci95 : float;
  lo : float;
  hi : float;
  wilson : (float * float) option;
}

let of_online acc =
  let n = Stats.Online.count acc in
  let stddev = Stats.Online.stddev acc in
  {
    n;
    mean = Stats.Online.mean acc;
    stddev;
    ci95 = (if n < 2 then 0.0 else 1.96 *. stddev /. sqrt (Float.of_int n));
    lo = Stats.Online.min acc;
    hi = Stats.Online.max acc;
    (* the normal-approximation ci95 is degenerate for 0/1-valued
       metrics at the boundaries (0 hits -> half-width 0); indicator
       metrics get the Wilson score interval instead *)
    wilson =
      (if Stats.Online.is_binary acc then
         Some (Stats.wilson ~n ~hits:(Stats.Online.hits acc) ())
       else None);
  }

let summarize xs =
  let acc = Stats.Online.create () in
  List.iter (Stats.Online.add acc) xs;
  of_online acc

let pp_summary ppf s =
  match s.wilson with
  | Some (lo, hi) when s.n >= 2 ->
      Fmt.pf ppf "%g [%.2g,%.2g]" s.mean lo hi
  | _ ->
      if s.n < 2 then Fmt.pf ppf "%g" s.mean
      else Fmt.pf ppf "%g ±%.2g" s.mean s.ci95

type cell = {
  index : int;
  ok : int;
  failed : int;
  metrics : (string * summary) list;
}

let cells ~cells:cell_count outcomes =
  let sorted = Array.copy outcomes in
  Array.sort (fun (a : Job.outcome) b -> compare a.Job.id b.Job.id) sorted;
  Array.init cell_count (fun index ->
      (* association list keeps first-seen metric order for stable tables *)
      let accs : (string * Stats.Online.t) list ref = ref [] in
      let acc name =
        match List.assoc_opt name !accs with
        | Some acc -> acc
        | None ->
            let acc = Stats.Online.create () in
            accs := !accs @ [ (name, acc) ];
            acc
      in
      let ok = ref 0 and failed = ref 0 in
      Array.iter
        (fun (o : Job.outcome) ->
          if o.Job.cell = index then
            match o.Job.status with
            | Job.Failed _ -> incr failed
            | Job.Done ->
                incr ok;
                List.iter (fun (k, v) -> Stats.Online.add (acc k) v) o.Job.metrics)
        sorted;
      {
        index;
        ok = !ok;
        failed = !failed;
        metrics = List.map (fun (k, acc) -> (k, of_online acc)) !accs;
      })

let metric cell name =
  match List.assoc_opt name cell.metrics with
  | Some s -> s
  | None -> raise Not_found
