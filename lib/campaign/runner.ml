(** Campaign orchestration: planning, resume, pooling, checkpointing. *)

module Log = (val Logs.src_log Log.src : Logs.LOG)

type config = {
  workers : int option;
  retries : int;
  checkpoint : string option;
  resume : bool;
}

let default = { workers = None; retries = 1; checkpoint = None; resume = false }

type 'cell result = {
  jobs : 'cell Job.t array;
  outcomes : Job.outcome array;
  cells : Aggregate.cell array;
  ok : int;
  failed : int;
  resumed : int;
}

(* A recorded outcome is only reusable if it matches the current plan's
   shape for that id — a checkpoint from a different campaign must not
   silently poison the results. *)
let matches_plan (jobs : 'c Job.t array) (o : Job.outcome) =
  o.Job.id >= 0
  && o.Job.id < Array.length jobs
  &&
  let j = jobs.(o.Job.id) in
  j.Job.cell = o.Job.cell && j.Job.rep = o.Job.rep

let run ?(config = default) ~cells ~reps ~seed f =
  let jobs = Job.plan ~cells ~reps ~seed in
  let total = Array.length jobs in
  let header =
    Checkpoint.make_header ~seed ~cells:(Array.length cells) ~reps
      ~digest:(Job.digest jobs)
  in
  (* 1. resume: collect completed outcomes from the checkpoint file *)
  let completed : Job.outcome option array = Array.make total None in
  let resumed = ref 0 in
  (match config.checkpoint with
  | Some path when config.resume ->
      (match Checkpoint.read_header path with
      | Some h when h.Checkpoint.version <> header.Checkpoint.version ->
          raise
            (Checkpoint.Mismatch
               (Format.asprintf
                  "checkpoint %s was written by library version %S; this \
                   build is %S — a recorded run cannot be resumed across \
                   versions (the replayed prefix would feed a different \
                   engine's statistics)"
                  path h.Checkpoint.version header.Checkpoint.version))
      | Some h when h <> header ->
          raise
            (Checkpoint.Mismatch
               (Format.asprintf
                  "checkpoint %s was written by a different campaign (file: \
                   %a; expected: %a)"
                  path Checkpoint.pp_header h Checkpoint.pp_header header))
      | Some _ -> ()
      | None ->
          if Sys.file_exists path then
            Log.warn (fun m ->
                m
                  "checkpoint %s has no campaign header (legacy file): \
                   resuming on job-shape matching only"
                  path));
      List.iter
        (fun (o : Job.outcome) ->
          if matches_plan jobs o && Job.outcome_ok o then begin
            if completed.(o.Job.id) = None then incr resumed;
            completed.(o.Job.id) <- Some o
          end)
        (Checkpoint.load path)
  | _ -> ());
  let resumed = !resumed in
  let pending =
    Array.of_list
      (List.filter
         (fun (j : 'c Job.t) -> completed.(j.Job.id) = None)
         (Array.to_list jobs))
  in
  Log.info (fun m ->
      m "campaign: %d cells x %d reps = %d jobs (%d resumed, %d to run)"
        (Array.length cells) reps total resumed (Array.length pending));
  (* 2. run the pending jobs on the pool *)
  let writer =
    match config.checkpoint with
    | None -> None
    | Some path ->
        Some (Checkpoint.open_writer ~append:config.resume ~header path)
  in
  let progress = Progress.create ~resumed ~total () in
  let one (job : 'c Job.t) : Job.outcome =
    let rec attempt k =
      match f job (Job.rng job) with
      | metrics ->
          {
            Job.id = job.Job.id;
            cell = job.Job.cell;
            rep = job.Job.rep;
            attempts = k;
            status = Job.Done;
            metrics;
          }
      | exception e ->
          let reason = Printexc.to_string e in
          if k <= config.retries then begin
            Log.warn (fun m ->
                m "campaign: job %d failed (attempt %d/%d): %s" job.Job.id k
                  (config.retries + 1) reason);
            attempt (k + 1)
          end
          else
            {
              Job.id = job.Job.id;
              cell = job.Job.cell;
              rep = job.Job.rep;
              attempts = k;
              status = Job.Failed reason;
              metrics = [];
            }
    in
    let outcome = attempt 1 in
    Option.iter (fun w -> Checkpoint.record w outcome) writer;
    Progress.step progress;
    outcome
  in
  let fresh = Pool.map ?workers:config.workers one pending in
  Option.iter Checkpoint.close writer;
  Progress.finish progress;
  (* 3. assemble the full outcome table and aggregate in job-id order *)
  Array.iter (fun (o : Job.outcome) -> completed.(o.Job.id) <- Some o) fresh;
  let outcomes =
    Array.map
      (function
        | Some o -> o
        | None -> assert false (* resumed + fresh covers every id *))
      completed
  in
  let failed =
    Array.fold_left
      (fun acc o -> if Job.outcome_ok o then acc else acc + 1)
      0 outcomes
  in
  {
    jobs;
    outcomes;
    cells = Aggregate.cells ~cells:(Array.length cells) outcomes;
    ok = total - failed;
    failed;
    resumed;
  }
