(** Domain-based worker pool: order-preserving parallel [map] over an
    array, with workers pulling indices off a shared queue.

    The pool is oblivious to what a job is; crash isolation and retries
    live in {!Runner}, so the function passed here must not raise. *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count], floored at 1. *)

val map : ?workers:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~workers f xs] applies [f] to every element, using up to
    [workers] domains (capped by [Array.length xs]; default
    {!default_workers}). Result order matches input order regardless of
    scheduling. [f] runs concurrently in several domains: it must be
    thread-safe and must not raise (an escaping exception tears down the
    whole pool). *)
