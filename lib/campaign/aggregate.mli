(** Deterministic streaming aggregation of campaign outcomes.

    Per cell and per metric name, a Welford accumulator
    ([Pte_util.Stats.Online]) yields mean/stddev/min/max plus a 95%
    normal-approximation confidence half-width. Outcomes are always
    folded in job-id order, so the aggregate is bit-identical whatever
    order the worker pool completed the jobs in. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample stddev (n-1); 0 below two points. *)
  ci95 : float;  (** 1.96 * stddev / sqrt n — half-width; 0 below two points. *)
  lo : float;
  hi : float;
  wilson : (float * float) option;
      (** Wilson 95% score interval on the proportion — present exactly
          when every observed value was 0 or 1. For such indicator
          metrics (e.g. the per-replicate "failed" flag) the
          normal-approximation [ci95] is meaningless at the boundary: an
          all-zero sample gets half-width 0 where the honest upper end
          is ~3/n. Use this field for rare Bernoulli metrics; [ci95]
          stays the field for continuous ones. *)
}

val summarize : float list -> summary
(** Welford over the list in order; [n = 0] gives NaN mean/lo/hi. *)

val pp_summary : summary Fmt.t
(** ["12.4 ±1.2"] — mean and CI half-width (mean only when [n < 2]);
    indicator metrics print the Wilson interval instead:
    ["0.00 [0,0.16]"]. *)

type cell = {
  index : int;
  ok : int;  (** completed jobs aggregated here. *)
  failed : int;  (** jobs that exhausted their retries. *)
  metrics : (string * summary) list;
      (** first-seen order of the metric names in job-id order. *)
}

val cells : cells:int -> Job.outcome array -> cell array
(** Group outcomes by cell and summarize each metric. The input may be
    in any order and sparse in ids; it is sorted by job id first. *)

val metric : cell -> string -> summary
(** Lookup; raises [Not_found] on an unknown metric name. *)
