(** Campaign job specs and completed-job records. *)

type 'cell t = {
  id : int;
  cell : int;
  rep : int;
  seed : int;
  payload : 'cell;
}

(* Per-job seeds come from splitting the master stream once per job, in
   job-id order: job i's seed is a pure function of (master seed, i), so
   results cannot depend on scheduling. The extra [next_int64] flattens
   the split state into a storable int. *)
let plan ~cells ~reps ~seed =
  if reps <= 0 then invalid_arg "Job.plan: reps must be positive";
  let master = Pte_util.Rng.create seed in
  let jobs = Array.length cells * reps in
  Array.init jobs (fun id ->
      let stream = Pte_util.Rng.split master in
      {
        id;
        cell = id / reps;
        rep = id mod reps;
        seed = Int64.to_int (Pte_util.Rng.next_int64 stream);
        payload = cells.(id / reps);
      })

let rng job = Pte_util.Rng.create job.seed

(* Fingerprint of a plan: a mix over the per-job seed sequence (itself a
   pure function of master seed, cell count and reps). Two campaigns
   agree on the digest iff they would hand every job the same stream. *)
let digest jobs =
  let mix h x =
    let h = Int64.mul (Int64.logxor h x) 0x100000001b3L in
    Int64.logxor h (Int64.shift_right_logical h 29)
  in
  Printf.sprintf "%016Lx"
    (Array.fold_left
       (fun acc j -> mix acc (Int64.of_int j.seed))
       0xcbf29ce484222325L jobs)

type status = Done | Failed of string

type outcome = {
  id : int;
  cell : int;
  rep : int;
  attempts : int;
  status : status;
  metrics : (string * float) list;
}

let outcome_ok o = match o.status with Done -> true | Failed _ -> false

let outcome_to_json o =
  let base =
    [
      ("job", Json.Num (Float.of_int o.id));
      ("cell", Json.Num (Float.of_int o.cell));
      ("rep", Json.Num (Float.of_int o.rep));
      ("attempts", Json.Num (Float.of_int o.attempts));
    ]
  in
  match o.status with
  | Done ->
      Json.Obj
        (base
        @ [
            ("status", Json.Str "ok");
            ( "metrics",
              Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) o.metrics) );
          ])
  | Failed reason ->
      Json.Obj (base @ [ ("status", Json.Str "failed"); ("error", Json.Str reason) ])

let outcome_of_json json =
  let ( let* ) r f = Result.bind r f in
  let field name extract =
    match Option.bind (Json.member name json) extract with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "outcome: missing or bad %S" name)
  in
  let* id = field "job" Json.to_int in
  let* cell = field "cell" Json.to_int in
  let* rep = field "rep" Json.to_int in
  let* attempts = field "attempts" Json.to_int in
  let* status = field "status" Json.to_str in
  match status with
  | "ok" ->
      let* metrics =
        match Json.member "metrics" json with
        | Some (Json.Obj fields) ->
            List.fold_right
              (fun (k, v) acc ->
                let* acc = acc in
                match Json.to_float v with
                | Some v -> Ok ((k, v) :: acc)
                | None -> Error (Printf.sprintf "outcome: metric %S not a number" k))
              fields (Ok [])
        | _ -> Error "outcome: missing metrics object"
      in
      Ok { id; cell; rep; attempts; status = Done; metrics }
  | "failed" ->
      let reason =
        Option.value ~default:"unknown"
          (Option.bind (Json.member "error" json) Json.to_str)
      in
      Ok { id; cell; rep; attempts; status = Failed reason; metrics = [] }
  | s -> Error (Printf.sprintf "outcome: unknown status %S" s)
