(** Campaign progress reporting: completed/total, trials/sec and an ETA,
    emitted through [Logs] (source ["pte.campaign"], level [Info]).

    Thread-safe; workers call {!step} as each job lands. Lines are
    rate-limited so tight campaigns do not flood the reporter. *)

type t

val create : ?resumed:int -> total:int -> unit -> t
(** [resumed] jobs count as already complete but are excluded from the
    throughput estimate (they cost no wall-clock this run). *)

val step : t -> unit
(** One more job finished. May emit a progress line. *)

val finish : t -> unit
(** Emit the final summary line (always, regardless of rate limit). *)

val completed : t -> int
(** Jobs completed so far, including resumed ones. *)
