(** Campaign job specs: one job = one cell of the experiment grid x one
    replicate index, with a deterministic per-job PRNG seed.

    Seeds are derived from the single master seed by [Pte_util.Rng.split]
    in job-id order at planning time, so a job's random stream depends
    only on [(master seed, job id)] — never on the worker count or the
    order in which the pool happens to schedule jobs. *)

type 'cell t = {
  id : int;  (** global job index: [cell * reps + rep]. *)
  cell : int;  (** index into the campaign's cell array. *)
  rep : int;  (** replicate index within the cell, [0 .. reps-1]. *)
  seed : int;  (** per-job seed, split off the master stream. *)
  payload : 'cell;
}

val plan : cells:'cell array -> reps:int -> seed:int -> 'cell t array
(** The full job table of a campaign, in job-id order.
    Raises [Invalid_argument] if [reps <= 0]. *)

val rng : 'cell t -> Pte_util.Rng.t
(** The job's private random stream (fresh on every call, so retries
    replay the identical stream). *)

val digest : 'cell t array -> string
(** Fingerprint of the plan's per-job seed sequence (hence of the master
    seed, cell count and reps) — what a checkpoint header records to
    refuse resuming a file produced by a different campaign. *)

(** Completed-job record — what workers hand back and what one JSONL
    checkpoint line stores. *)

type status =
  | Done
  | Failed of string  (** exception text after the last retry. *)

type outcome = {
  id : int;
  cell : int;
  rep : int;
  attempts : int;  (** 1 = first try succeeded. *)
  status : status;
  metrics : (string * float) list;  (** empty when [Failed]. *)
}

val outcome_ok : outcome -> bool

val outcome_to_json : outcome -> Json.t

val outcome_of_json : Json.t -> (outcome, string) result
(** Inverse of [outcome_to_json]; [Error] on shape mismatches. *)
