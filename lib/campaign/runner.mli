(** The campaign orchestrator: plan -> (resume) -> worker pool ->
    checkpoint + aggregate.

    A campaign is a grid of [cells] (arbitrary payloads, e.g. trial
    configurations) crossed with [reps] independently-seeded replicates.
    Guarantees:

    - {b Determinism}: each job's PRNG stream is a pure function of the
      master seed and its job id ({!Job.plan}), and aggregation folds in
      job-id order ({!Aggregate.cells}); the result is identical for any
      worker count, scheduling order, or checkpoint/resume split.
    - {b Degradation}: a job that raises is retried up to [retries]
      extra times with its identical stream, then recorded as
      [Job.Failed] — the campaign completes without it.
    - {b Durability}: with [checkpoint], every completed job is appended
      to a JSONL file as it lands, under a header line naming the
      campaign (master seed, grid shape, {!Job.digest}); with [resume],
      previously completed jobs are skipped and their recorded metrics
      reused. Resuming a file whose header names a {e different}
      campaign raises {!Checkpoint.Mismatch} instead of silently mixing
      results; legacy headerless files are accepted with a warning. *)

type config = {
  workers : int option;  (** [None] = {!Pool.default_workers}. *)
  retries : int;  (** extra attempts after the first failure. *)
  checkpoint : string option;  (** JSONL results path. *)
  resume : bool;  (** skip jobs already in [checkpoint]. *)
}

val default : config
(** [{ workers = None; retries = 1; checkpoint = None; resume = false }] *)

type 'cell result = {
  jobs : 'cell Job.t array;  (** the plan, in job-id order. *)
  outcomes : Job.outcome array;  (** indexed by job id. *)
  cells : Aggregate.cell array;  (** one per input cell. *)
  ok : int;
  failed : int;  (** jobs that exhausted their retries. *)
  resumed : int;  (** jobs skipped thanks to the checkpoint. *)
}

val run :
  ?config:config ->
  cells:'cell array ->
  reps:int ->
  seed:int ->
  ('cell Job.t -> Pte_util.Rng.t -> (string * float) list) ->
  'cell result
(** [run ~cells ~reps ~seed f] executes the campaign. [f job rng] must
    return the job's metric row using only [rng] for randomness (and be
    domain-safe); it may raise, which counts against [retries]. *)
