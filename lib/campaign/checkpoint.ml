(** JSONL checkpointing for campaign results. *)

module Log = (val Logs.src_log Log.src : Logs.LOG)

type header = {
  seed : int;
  cells : int;
  reps : int;
  digest : string;
  version : string;
      (** {!Version.string} of the library that wrote the file; [""] in
          files predating the stamp. Resume refuses a version mismatch:
          sequential-stopping state folded from a checkpoint written by
          a different engine is statistically invalid. *)
}

exception Mismatch of string

let make_header ~seed ~cells ~reps ~digest =
  { seed; cells; reps; digest; version = Version.string }

let pp_header ppf h =
  Format.fprintf ppf "seed %d, %d cells x %d reps, digest %s, version %s"
    h.seed h.cells h.reps h.digest
    (if h.version = "" then "<pre-stamp>" else h.version)

let header_to_json h =
  Json.Obj
    [
      ("type", Json.Str "campaign-header");
      ("seed", Json.Num (Float.of_int h.seed));
      ("cells", Json.Num (Float.of_int h.cells));
      ("reps", Json.Num (Float.of_int h.reps));
      ("digest", Json.Str h.digest);
      ("version", Json.Str h.version);
    ]

let header_of_json json =
  match Json.member "type" json with
  | Some (Json.Str "campaign-header") -> (
      let int name = Option.bind (Json.member name json) Json.to_int in
      let str name = Option.bind (Json.member name json) Json.to_str in
      match (int "seed", int "cells", int "reps", str "digest") with
      | Some seed, Some cells, Some reps, Some digest ->
          (* files written before the stamp carry no version field *)
          Some
            {
              seed;
              cells;
              reps;
              digest;
              version = Option.value (str "version") ~default:"";
            }
      | _ -> None)
  | _ -> None

(* The header must be the first line; a file whose first line is an
   ordinary outcome is a legacy (pre-header) checkpoint. *)
let read_header path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> None
          | line -> (
              match Json.of_string line with
              | Ok json -> header_of_json json
              | Error _ -> None))

type writer = { channel : out_channel; lock : Mutex.t }

(* A kill mid-[record] leaves a torn final line with no newline; a
   resumed writer must not glue its first record onto that fragment. *)
let ends_with_newline path =
  match open_in_bin path with
  | exception Sys_error _ -> true
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          len = 0
          ||
          (seek_in ic (len - 1);
           input_char ic = '\n'))

let open_writer ?(append = false) ?header path =
  let fresh =
    (not append)
    || (not (Sys.file_exists path))
    || (match open_in_bin path with
       | exception Sys_error _ -> true
       | ic ->
           Fun.protect
             ~finally:(fun () -> close_in ic)
             (fun () -> in_channel_length ic = 0))
  in
  let heal = append && not (ends_with_newline path) in
  let flags =
    if append then [ Open_wronly; Open_creat; Open_append ]
    else [ Open_wronly; Open_creat; Open_trunc ]
  in
  let channel = open_out_gen flags 0o644 path in
  if heal then output_char channel '\n';
  (* the header goes first, and only on a file this writer starts;
     appending to a legacy headerless file cannot retrofit one *)
  (match header with
  | Some h when fresh ->
      output_string channel (Json.to_string (header_to_json h));
      output_char channel '\n';
      flush channel
  | _ -> ());
  { channel; lock = Mutex.create () }

let record writer outcome =
  let line = Json.to_string (Job.outcome_to_json outcome) in
  Mutex.lock writer.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock writer.lock)
    (fun () ->
      output_string writer.channel line;
      output_char writer.channel '\n';
      flush writer.channel)

let close writer = close_out writer.channel

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let outcomes = ref [] in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match Json.of_string line with
               | Ok json when header_of_json json <> None -> ()
               | parsed -> (
                   match Result.bind parsed Job.outcome_of_json with
                   | Ok o -> outcomes := o :: !outcomes
                   | Error e ->
                       (* expected for the torn final line of a killed run *)
                       Log.debug (fun m ->
                           m "checkpoint %s: skipping line: %s" path e))
           done
         with End_of_file -> ());
        List.rev !outcomes)
  end
