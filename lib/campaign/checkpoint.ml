(** JSONL checkpointing for campaign results. *)

module Log = (val Logs.src_log Log.src : Logs.LOG)

type writer = { channel : out_channel; lock : Mutex.t }

(* A kill mid-[record] leaves a torn final line with no newline; a
   resumed writer must not glue its first record onto that fragment. *)
let ends_with_newline path =
  match open_in_bin path with
  | exception Sys_error _ -> true
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          len = 0
          ||
          (seek_in ic (len - 1);
           input_char ic = '\n'))

let open_writer ?(append = false) path =
  let heal = append && not (ends_with_newline path) in
  let flags =
    if append then [ Open_wronly; Open_creat; Open_append ]
    else [ Open_wronly; Open_creat; Open_trunc ]
  in
  let channel = open_out_gen flags 0o644 path in
  if heal then output_char channel '\n';
  { channel; lock = Mutex.create () }

let record writer outcome =
  let line = Json.to_string (Job.outcome_to_json outcome) in
  Mutex.lock writer.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock writer.lock)
    (fun () ->
      output_string writer.channel line;
      output_char writer.channel '\n';
      flush writer.channel)

let close writer = close_out writer.channel

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let outcomes = ref [] in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match Result.bind (Json.of_string line) Job.outcome_of_json with
               | Ok o -> outcomes := o :: !outcomes
               | Error e ->
                   (* expected for the torn final line of a killed run *)
                   Log.debug (fun m -> m "checkpoint %s: skipping line: %s" path e)
           done
         with End_of_file -> ());
        List.rev !outcomes)
  end
