(** JSONL checkpoint files: one {!Job.outcome} object per line.

    Workers append their line (mutex-protected, flushed) as each job
    finishes, so a killed campaign loses at most the in-flight jobs.
    [load] tolerates a truncated final line — the tell-tale of a kill
    mid-write — and ignores it. *)

type writer

val open_writer : ?append:bool -> string -> writer
(** [append:false] (default) truncates; [append:true] continues a file
    being resumed. *)

val record : writer -> Job.outcome -> unit
(** Thread-safe append of one line, flushed before returning. *)

val close : writer -> unit

val load : string -> Job.outcome list
(** All parseable outcomes, in file order. A missing file is an empty
    campaign. Unparseable lines are skipped (logged at debug level);
    only a later [record] can make them whole again. *)
