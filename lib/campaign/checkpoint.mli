(** JSONL checkpoint files: one {!Job.outcome} object per line.

    Workers append their line (mutex-protected, flushed) as each job
    finishes, so a killed campaign loses at most the in-flight jobs.
    [load] tolerates a truncated final line — the tell-tale of a kill
    mid-write — and ignores it. *)

(** First line of a checkpoint file: which campaign produced it. [seed],
    [cells] and [reps] identify the grid; [digest] fingerprints the
    per-job seed sequence ({!Job.digest}); [version] pins the library
    stamp ({!Version.string}) — resuming a file written by a different
    campaign {e or a different engine version} is refused instead of
    silently poisoning the results (a sequential-stopping state resumed
    across versions is statistically invalid). *)
type header = {
  seed : int;
  cells : int;
  reps : int;
  digest : string;
  version : string;  (** [""] in files predating the stamp. *)
}

exception Mismatch of string
(** Raised by the runner when [resume] meets a checkpoint whose header
    disagrees with the current campaign. *)

val make_header :
  seed:int -> cells:int -> reps:int -> digest:string -> header
(** A header stamped with the current {!Version.string}. *)

val pp_header : Format.formatter -> header -> unit
val header_to_json : header -> Json.t
val header_of_json : Json.t -> header option

val read_header : string -> header option
(** Header of the file's first line; [None] for missing or legacy
    (pre-header) files. *)

type writer

val open_writer : ?append:bool -> ?header:header -> string -> writer
(** [append:false] (default) truncates; [append:true] continues a file
    being resumed. [header] is written as the first line of any file
    this writer starts (fresh, missing, or empty); appending to an
    existing legacy file leaves it headerless. *)

val record : writer -> Job.outcome -> unit
(** Thread-safe append of one line, flushed before returning. *)

val close : writer -> unit

val load : string -> Job.outcome list
(** All parseable outcomes, in file order. A missing file is an empty
    campaign. The header line and unparseable lines are skipped (the
    latter logged at debug level). *)
