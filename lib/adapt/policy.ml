(** Escalation policy with hysteresis.

    Two tiers: {e healthy} (the configured lightweight transport,
    [`Bare] or [`Reliable]) and {e degraded} ([`Scheduled], with a
    retry policy re-synthesized for the estimated loss). The policy
    maps an estimator reading to a switch decision, with three
    flap-guards:

    - {e hysteresis}: the loss level that escalates ([degrade_above])
      sits strictly above the level that de-escalates
      ([recover_below]), so an estimate oscillating around either
      threshold cannot ping-pong the transport;
    - {e minimum samples}: no decision before [min_samples] outcomes
      have been observed since the last switch — a freshly entered
      mode gets to prove itself on its own traffic. An active burst
      flag bypasses this guard (three consecutive losses are decisive
      on the Gilbert–Elliott channel regardless of sample count) but
      never the dwell guard;
    - {e minimum dwell}: at least [min_dwell] seconds between
      switches, bounding the switch rate no matter what the channel
      does.

    The decision is advisory: the transport still runs the safe-switch
    protocol (quiesce, then the Theorem-1 recheck against the
    candidate mode's worst-case latency) and may refuse. *)

type config = {
  degrade_above : float;
      (** loss estimate at or above which a healthy sender escalates. *)
  recover_below : float;
      (** loss estimate at or below which a degraded sender returns
          (strictly below [degrade_above] — the hysteresis band). *)
  min_samples : int;
      (** outcomes required since the last switch before deciding. *)
  min_dwell : float;  (** seconds between switches, minimum. *)
}

let default_config =
  { degrade_above = 0.35; recover_below = 0.15; min_samples = 8;
    min_dwell = 30.0 }

let validate c =
  if not (c.degrade_above > 0.0 && c.degrade_above <= 1.0) then
    Error "policy: degrade_above must be in (0, 1]"
  else if not (c.recover_below >= 0.0) then
    Error "policy: recover_below must be >= 0"
  else if not (c.recover_below < c.degrade_above) then
    Error "policy: recover_below must be < degrade_above (hysteresis)"
  else if c.min_samples < 1 then Error "policy: min_samples must be >= 1"
  else if not (c.min_dwell >= 0.0) then
    Error "policy: min_dwell must be >= 0"
  else Ok ()

type tier = Healthy | Degraded
type decision = Stay | Escalate | Deescalate

let decide c ~tier ~estimate ~samples ~since_switch ~in_burst =
  let dwelled = since_switch >= c.min_dwell in
  let seasoned = samples >= c.min_samples in
  match tier with
  | Healthy ->
      if dwelled && (in_burst || (seasoned && estimate >= c.degrade_above))
      then Escalate
      else Stay
  | Degraded ->
      if dwelled && seasoned && (not in_burst) && estimate <= c.recover_below
      then Deescalate
      else Stay

let pp_tier ppf = function
  | Healthy -> Fmt.string ppf "healthy"
  | Degraded -> Fmt.string ppf "degraded"

let pp_decision ppf = function
  | Stay -> Fmt.string ppf "stay"
  | Escalate -> Fmt.string ppf "escalate"
  | Deescalate -> Fmt.string ppf "deescalate"

let pp_config ppf c =
  Fmt.pf ppf "degrade>=%.2f recover<=%.2f min-samples:%d min-dwell:%gs"
    c.degrade_above c.recover_below c.min_samples c.min_dwell
