(** Online channel-health estimation from transmission outcomes.

    One estimator per sender. Every transmission {e attempt}
    contributes one binary outcome — confirmed or not, recorded at the
    instant the sender learns it (per-attempt, so the estimate tracks
    the channel itself rather than the residual failure rate left over
    by whatever redundancy the current transport mode layers on top) —
    and the estimator maintains three views of the channel at once:

    - a {e windowed} confirmation rate over the last [window] outcomes
      (a ring buffer), which tracks level shifts quickly but is noisy;
    - an {e EWMA} of the loss indicator, which remembers further back
      and smooths the window's variance;
    - a {e burst detector}: the current run of consecutive losses,
      flagged once it reaches [burst_k].

    The burst threshold is tuned against the Gilbert–Elliott channel
    the trials use ({!Pte_net.Loss.wifi_interference}): its good state
    loses 2% per packet, so [burst_k = 3] consecutive losses happen
    with probability 8e-6 per triple in the good state, while the bad
    state (90% loss, mean burst ~5 packets) produces them routinely —
    three losses in a row is decisive evidence the burst process
    entered its bad state, long before the windowed average moves.

    {!loss_estimate} is the conservative blend the escalation policy
    consumes: the max of the windowed and EWMA loss rates, floored at
    the bad-state level while a burst is active. Conservative on
    purpose — over-estimating loss escalates to a still-safe mode
    early; under-estimating would delay an escalation the safety
    argument may want. *)

type config = {
  window : int;  (** ring-buffer size for the windowed rate. *)
  ewma_alpha : float;  (** EWMA weight of the newest outcome, (0, 1]. *)
  burst_k : int;  (** consecutive losses that flag a burst. *)
  burst_floor : float;
      (** loss level a flagged burst forces the estimate up to —
          the Gilbert–Elliott bad-state loss rate. *)
}

let default_config =
  { window = 20; ewma_alpha = 0.1; burst_k = 3; burst_floor = 0.9 }

let validate c =
  if c.window < 1 then Error "estimator: window must be >= 1"
  else if not (c.ewma_alpha > 0.0 && c.ewma_alpha <= 1.0) then
    Error "estimator: ewma_alpha must be in (0, 1]"
  else if c.burst_k < 1 then Error "estimator: burst_k must be >= 1"
  else if not (c.burst_floor >= 0.0 && c.burst_floor <= 1.0) then
    Error "estimator: burst_floor must be in [0, 1]"
  else Ok ()

type t = {
  config : config;
  ring : bool array;  (* true = lost *)
  mutable filled : int;  (* outcomes recorded, saturating at window *)
  mutable next : int;  (* ring write cursor *)
  mutable total : int;  (* outcomes recorded, lifetime *)
  mutable losses_in_window : int;
  mutable ewma : float;  (* smoothed loss indicator *)
  mutable run : int;  (* current consecutive-loss run *)
  mutable last_at : float;  (* instant of the newest outcome *)
}

let create config =
  (match validate config with Ok () -> () | Error msg -> invalid_arg msg);
  {
    config;
    ring = Array.make config.window false;
    filled = 0;
    next = 0;
    total = 0;
    losses_in_window = 0;
    ewma = 0.0;
    run = 0;
    last_at = 0.0;
  }

let record t ~confirmed ~at =
  let lost = not confirmed in
  if t.filled = t.config.window then begin
    (* the slot we overwrite leaves the window *)
    if t.ring.(t.next) then t.losses_in_window <- t.losses_in_window - 1
  end
  else t.filled <- t.filled + 1;
  t.ring.(t.next) <- lost;
  if lost then t.losses_in_window <- t.losses_in_window + 1;
  t.next <- (t.next + 1) mod t.config.window;
  t.total <- t.total + 1;
  let x = if lost then 1.0 else 0.0 in
  t.ewma <-
    (if t.total = 1 then x
     else (t.config.ewma_alpha *. x) +. ((1.0 -. t.config.ewma_alpha) *. t.ewma));
  t.run <- (if lost then t.run + 1 else 0);
  t.last_at <- at

let samples t = t.total
let last_at t = t.last_at

let windowed_loss t =
  if t.filled = 0 then 0.0
  else Float.of_int t.losses_in_window /. Float.of_int t.filled

let ewma_loss t = t.ewma
let in_burst t = t.run >= t.config.burst_k
let consecutive_losses t = t.run

let loss_estimate t =
  let base = Float.max (windowed_loss t) (ewma_loss t) in
  if in_burst t then Float.max base t.config.burst_floor else base

let pp ppf t =
  Fmt.pf ppf "est(n:%d win:%.2f ewma:%.2f run:%d%s -> %.2f)" t.total
    (windowed_loss t) (ewma_loss t) t.run
    (if in_burst t then " BURST" else "")
    (loss_estimate t)
