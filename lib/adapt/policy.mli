(** Escalation policy with hysteresis: maps a channel-health estimate
    to a tier-switch decision, with a hysteresis band
    ([recover_below < degrade_above]), a minimum sample count per tier
    and a minimum dwell time between switches as flap-guards. The
    decision is advisory — the transport's safe-switch protocol still
    rechecks Theorem 1 against the candidate mode and may refuse. *)

type config = {
  degrade_above : float;
      (** loss estimate at or above which a healthy sender escalates. *)
  recover_below : float;
      (** loss estimate at or below which a degraded sender returns;
          strictly below [degrade_above]. *)
  min_samples : int;
      (** outcomes required since the last switch before deciding (an
          active burst flag bypasses this, never the dwell guard). *)
  min_dwell : float;  (** minimum seconds between switches. *)
}

val default_config : config
(** [degrade_above = 0.35], [recover_below = 0.15],
    [min_samples = 8], [min_dwell = 30]. The band brackets the 25%
    nominal loss of the case-study channel: sustained wifi
    interference escalates, a clean channel recovers, and the nominal
    channel itself — which the static modes already handle — does
    not flap. *)

val validate : config -> (unit, string) result

type tier = Healthy | Degraded
type decision = Stay | Escalate | Deescalate

val decide :
  config ->
  tier:tier ->
  estimate:float ->
  samples:int ->
  since_switch:float ->
  in_burst:bool ->
  decision
(** [samples] counts outcomes observed since the last committed
    switch, [since_switch] the seconds elapsed since it. *)

val pp_tier : tier Fmt.t
val pp_decision : decision Fmt.t
val pp_config : config Fmt.t
