(** Online channel-health estimation from transmission outcomes: a
    windowed delivery-confirmation rate, an EWMA of the loss
    indicator, and a consecutive-loss burst detector tuned against the
    Gilbert–Elliott interference channel. One estimator per sender;
    feed it one sample per transmission {e attempt} at the instant the
    outcome becomes known to the sender — per-attempt, not
    per-exchange, so the estimate tracks the channel itself rather
    than the residual failure rate left over by the current mode's
    redundancy. *)

type config = {
  window : int;  (** ring-buffer size for the windowed rate (>= 1). *)
  ewma_alpha : float;  (** EWMA weight of the newest outcome, (0, 1]. *)
  burst_k : int;  (** consecutive losses that flag a burst (>= 1). *)
  burst_floor : float;
      (** loss level a flagged burst forces {!loss_estimate} up to. *)
}

val default_config : config
(** [window = 20], [ewma_alpha = 0.1], [burst_k = 3],
    [burst_floor = 0.9]. [burst_k = 3] discriminates the wifi
    channel's states: three consecutive losses have probability 8e-6
    per triple in the good state (2% loss) and are routine in the bad
    state (90% loss, mean burst ~5 packets). [burst_floor] is that
    bad-state loss rate. *)

val validate : config -> (unit, string) result

type t

val create : config -> t
(** Raises [Invalid_argument] on an ill-formed config. *)

val record : t -> confirmed:bool -> at:float -> unit
(** One finished transmission attempt: [confirmed] iff the sender
    received a delivery confirmation for it, [at] the simulated
    instant the outcome became known. *)

val samples : t -> int
(** Outcomes recorded, lifetime. *)

val last_at : t -> float
(** Instant of the newest outcome (0 before the first). *)

val windowed_loss : t -> float
(** Loss rate over the last [window] outcomes (0 when empty). *)

val ewma_loss : t -> float
(** The EWMA of the loss indicator (seeded by the first outcome). *)

val in_burst : t -> bool
(** [burst_k] or more consecutive losses are currently running. *)

val consecutive_losses : t -> int
(** Length of the current consecutive-loss run. *)

val loss_estimate : t -> float
(** The conservative blend the escalation policy consumes:
    [max windowed ewma], floored at [burst_floor] while {!in_burst}.
    Over-estimation escalates early into a still-safe mode;
    under-estimation would delay escalation — so the blend leans
    pessimistic by construction. *)

val pp : t Fmt.t
