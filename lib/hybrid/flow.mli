(** Flow maps (Section II-A item 4): the differential equations governing
    data state variables per location. *)

type t =
  | Rates of (Var.t * float) list
      (** constant derivatives; unlisted variables have derivative 0
          (clocks, the ventilator cylinder of Fig. 2). *)
  | Ode of (float -> Valuation.t -> (Var.t * float) list)
      (** arbitrary vector field [f time valuation], integrated
          numerically (physical dynamics such as SpO2). *)

val clocks : Var.t list -> t
(** All listed variables advance at rate 1. *)

val frozen : t

val derivatives : t -> time:float -> Valuation.t -> (Var.t * float) list
val rate_of : t -> time:float -> Valuation.t -> Var.t -> float
val is_constant_rate : t -> bool

val constant_rates : t -> (Var.t * float) list option
(** The rate table of a {!Rates} flow; [None] for {!Ode} flows, whose
    variable reads and writes are opaque to static analysis. *)

val combine : t -> t -> t
(** Evolve the (disjoint) variables of both flows simultaneously (used
    by elaboration). *)

val pp : t Fmt.t
