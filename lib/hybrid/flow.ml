(** Flow maps.

    The paper's flow map [f_v] gives a differential equation
    [~x' = f_v(~x)] per location (Section II-A, item 4). Two concrete
    forms cover the paper and its case study:

    - {!Rates}: constant-slope flows ([x' = c]). All clock variables of
      the design-pattern automata, and the ventilator cylinder height of
      Fig. 2, are of this form. Constant-rate flows admit exact
      boundary-crossing computation and an exact timed-automaton view for
      the model checker.
    - {!Ode}: an arbitrary vector field evaluated numerically (the
      executor integrates with explicit Euler and boundary bisection).
      Used for physical dynamics such as the patient's SpO2 level. *)

type t =
  | Rates of (Var.t * float) list
      (** Constant derivative per listed variable; unlisted variables have
          derivative 0. *)
  | Ode of (float -> Valuation.t -> (Var.t * float) list)
      (** [f time valuation] returns the derivatives; unlisted variables
          have derivative 0. *)

(** All declared clocks advance at rate 1 and everything else is frozen. *)
let clocks vars = Rates (List.map (fun v -> (v, 1.0)) vars)

let frozen = Rates []

let derivatives flow ~time valuation =
  match flow with Rates rates -> rates | Ode f -> f time valuation

let rate_of flow ~time valuation var =
  let rates = derivatives flow ~time valuation in
  match List.assoc_opt var rates with Some r -> r | None -> 0.0

let is_constant_rate = function Rates _ -> true | Ode _ -> false

(** Static view of the rate table: [Some rates] for a {!Rates} flow,
    [None] for an {!Ode} (whose reads/writes are opaque closures). *)
let constant_rates = function Rates rates -> Some rates | Ode _ -> None

(** [combine f g] evolves the (disjoint) variables of both flows
    simultaneously; used by elaboration, where the data state variables of
    the elaborated automaton keep their parent-location dynamics while the
    child automaton's variables follow the child flow. *)
let combine f g =
  match (f, g) with
  | Rates a, Rates b -> Rates (a @ b)
  | _ ->
      Ode
        (fun time valuation ->
          derivatives f ~time valuation @ derivatives g ~time valuation)

let pp ppf = function
  | Rates [] -> Fmt.string ppf "frozen"
  | Rates rates ->
      Fmt.list ~sep:(Fmt.any ", ")
        (fun ppf (v, r) -> Fmt.pf ppf "%s'=%g" v r)
        ppf rates
  | Ode _ -> Fmt.string ppf "<ode>"
