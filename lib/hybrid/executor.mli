(** Fixed-step executor for hybrid systems.

    Time advances in steps of [config.dt] (explicit Euler); invariant
    boundaries are located by bisection and force an enabled spontaneous
    transition ({e forced} in the trace); {!Edge.Eager} edges fire as
    soon as their guard holds; event transport is delegated to a
    pluggable {!type-router} (reliable-instant by default; [pte_sim]
    plugs in the lossy wireless star). A bounded number of discrete
    changes may occur per instant.

    The hot path is built for systems of 1000+ automata: a binary
    min-heap event queue ordered by (due, insertion seq) with
    lazy-delete tombstones, flat int-indexed automaton states with
    per-location dispatch indices, and an activity-set stabilization
    that re-chases only automata that changed since the last fixpoint.
    All of it is trace-equivalent (byte-identical) to the original
    sorted-list engine, which remains available as the
    [~queue:`Legacy_list] benchmark baseline. *)

exception
  Time_block of { automaton : string; location : string; time : float }
(** An invariant boundary was reached with no enabled egress — the paper
    assumes time-block-free automata, so this surfaces modeling errors. *)

exception Zeno of { automaton : string; time : float }
(** More than [config.max_chain] discrete changes in one instant. *)

type route_decision =
  | Deliver of float  (** deliver after the given delay (seconds) *)
  | Deliver_many of float list
      (** deliver one copy per delay — duplicated frames (fault
          injection); an empty list is equivalent to [Lose] *)
  | Lose
  | Deferred
      (** the router has taken ownership of the send: it schedules the
          arrival (or records the loss) itself through {!schedule} /
          {!deliver_now} / {!lose_now}. Used by the event-driven ARQ
          transport, whose exchange outcome is not known at send time. *)

type router =
  time:float -> sender:string -> root:string -> receiver:string ->
  route_decision

val reliable_router : router

type config = {
  dt : float;
  max_chain : int;
  sample_vars : (string * Var.t) list;
      (** [(automaton, var)] recorded every [sample_period]. *)
  sample_period : float;
}

val default_config : config
(** 1 ms step, chain bound 64, no sampling. *)

type t

type queue_kind = [ `Heap | `Legacy_list ]
(** Event-queue implementation: [`Heap] (the default) is the
    O(log n)-push min-heap with O(1)-amortised cancel; [`Legacy_list]
    is the original O(n) sorted singly-linked list {e and} the original
    full-scan stabilization — kept as the measured baseline of the S1
    throughput benchmark and for differential (trace-equality) tests.
    Both produce byte-identical traces. *)

val create : ?config:config -> ?queue:queue_kind ->
  ?trace_sink:(Trace.entry -> unit) -> System.t -> t
(** Validates the system. [trace_sink] streams entries as they happen. *)

val set_router : t -> router -> unit
val time : t -> float
val trace : t -> Trace.t

val events_processed : t -> int
(** Monotone count of discrete work done so far: message deliveries,
    timer firings and transitions. Cheap (no trace traversal) — the
    throughput benchmarks' events/sec numerator. *)

(** {2 Revocable scheduling}

    Timers share the delivery queue (one timeline, ordered by (due,
    insertion)), so a scheduled arrival or retransmission timer can be
    revoked before it fires — the primitive behind the event-driven ARQ
    transport. *)

type token
(** Names one scheduled (not yet fired) queue entry. *)

val schedule : t -> ?owner:string -> at:float -> (t -> unit) -> token
(** Run the callback at absolute time [at] (clamped to now if in the
    past), interleaved with message deliveries in queue order. The
    callback may deliver events ({!deliver_now}), schedule or {!cancel}
    further timers, and mutate automata; any discrete cascade it starts
    is finished within the same instant.

    [owner] names the automaton on whose behalf the timer was armed
    (e.g. the sender of a retransmission): Zeno diagnostics raised
    while firing the callback blame it instead of the anonymous
    ["<timer>"], so shrink artifacts name the real culprit.

    Raises [Invalid_argument] if [at] is NaN or infinite — such a timer
    could never fire and would silently wedge its exchange. *)

val cancel : t -> token -> unit
(** Revoke a scheduled entry before it fires. Idempotent: unknown or
    already-fired tokens are ignored. *)

val deliver_now : t -> receiver:string -> root:string -> bool
(** Hand [root] to [receiver] at the current instant — the delivery half
    of a [Deferred] routing decision. Returns [true] if a triggered edge
    consumed it. *)

val lose_now : t -> receiver:string -> root:string -> unit
(** Record the loss of a send owned by a [Deferred] router, at the
    instant the transport gave up on it. *)

val location_of : t -> string -> string
val valuation_of : t -> string -> Valuation.t
val value_of : t -> string -> Var.t -> float
val dwell_time : t -> string -> float
(** Continuous dwell in the current location. *)

val set_value : t -> string -> Var.t -> float -> unit
(** Overwrite one variable, bypassing flows/resets — the hook for wired
    physical couplings (e.g. the oximeter writing the supervisor's
    ApprovalCondition). Use via [pte_sim]'s coupling API. *)

val note : t -> string -> unit
(** Append a free-form annotation to the trace. *)

(** {2 Node-fault hooks}

    Used by the fault-injection layer ([pte_faults]) to realize
    fail-stop crashes and clock drift — faults {e outside} the paper's
    message-loss-only model, injected to probe how the lease pattern
    degrades when Theorem 1's assumptions are broken. *)

val halt : t -> string -> unit
(** Crash an automaton: flows freeze, edges stop firing, incoming events
    are recorded as unconsumed and dropped, until {!restart}. *)

val restart : t -> string -> unit
(** Reboot an automaton into its initial location and valuation (records
    the location entry, so monitors see the reset). *)

val is_halted : t -> string -> bool

val set_rate : t -> string -> float -> unit
(** Local clock-drift factor: each global [dt] advances this automaton's
    continuous state by [rate * dt]. [rate < 1] = slow clocks (leases
    expire late, eating the c1-c7 margins); [rate > 1] = fast. Raises
    [Invalid_argument] on non-positive or non-finite rates. *)

val rate : t -> string -> float

val step : t -> unit
(** Advance by one [config.dt] step. *)

val run : t -> until:float -> unit

val inject : t -> receiver:string -> root:string -> bool
(** Deliver an environment stimulus now (the paper's emulated surgeon).
    Returns [true] if a triggered edge consumed it. *)
