(** Graphviz export for hybrid automata, for inspecting generated pattern
    automata and their elaborations (the repository's analogue of the
    paper's Figs. 2–6). Locations and edges may carry diagnostic
    highlights (crimson fill + annotation), used by `pte-dot --lint`. *)

let escape s =
  String.concat "\\\""
    (String.split_on_char '"' s)

let print ~highlight_locations ~highlight_edges ppf (a : Automaton.t) =
  let location_note name = List.assoc_opt name highlight_locations in
  let edge_note src dst = List.assoc_opt (src, dst) highlight_edges in
  Fmt.pf ppf "digraph \"%s\" {\n" (escape a.Automaton.name);
  Fmt.pf ppf "  rankdir=LR;\n  node [shape=box, style=rounded];\n";
  List.iter
    (fun (l : Location.t) ->
      let color =
        if Location.is_risky l && location_note l.Location.name = None then
          ", color=red, penwidth=2.0"
        else ""
      in
      let invariant =
        if l.Location.invariant = Guard.always then ""
        else Fmt.str "\\n%a" Guard.pp l.Location.invariant
      in
      let note, flag =
        match location_note l.Location.name with
        | None -> ("", "")
        | Some note ->
            ( Fmt.str "\\n%s" (escape note),
              Fmt.str
                ", style=\"rounded,filled\", fillcolor=mistyrose, \
                 color=crimson, penwidth=3.0, tooltip=\"%s\""
                (escape note) )
      in
      Fmt.pf ppf "  \"%s\" [label=\"%s%s%s\"%s%s];\n" (escape l.Location.name)
        (escape l.Location.name) (escape invariant) note color flag)
    a.Automaton.locations;
  Fmt.pf ppf "  \"__init\" [shape=point];\n";
  Fmt.pf ppf "  \"__init\" -> \"%s\";\n" (escape a.Automaton.initial_location);
  List.iter
    (fun (e : Edge.t) ->
      let label =
        let guard =
          if e.Edge.guard = Guard.always then ""
          else Fmt.str "%a" Guard.pp e.Edge.guard
        in
        let sync =
          match e.Edge.label with
          | None -> ""
          | Some l -> Fmt.str "%a" Label.pp l
        in
        let reset =
          if e.Edge.reset = Reset.identity then ""
          else Fmt.str "%a" Reset.pp e.Edge.reset
        in
        String.concat "\\n"
          (List.filter (fun s -> s <> "") [ guard; sync; reset ])
      in
      let label, flag =
        match edge_note e.Edge.src e.Edge.dst with
        | None -> (label, "")
        | Some note ->
            ( String.concat "\\n"
                (List.filter (fun s -> s <> "") [ label; escape note ]),
              Fmt.str ", color=crimson, penwidth=2.0, fontcolor=crimson, \
                       tooltip=\"%s\""
                (escape note) )
      in
      Fmt.pf ppf "  \"%s\" -> \"%s\" [label=\"%s\"%s];\n" (escape e.Edge.src)
        (escape e.Edge.dst) (escape label) flag)
    a.Automaton.edges;
  Fmt.pf ppf "}\n"

let automaton ppf a =
  print ~highlight_locations:[] ~highlight_edges:[] ppf a

let to_string ?(highlight_locations = []) ?(highlight_edges = []) a =
  Fmt.str "%a" (print ~highlight_locations ~highlight_edges) a

let write_file ?highlight_locations ?highlight_edges path a =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ?highlight_locations ?highlight_edges a))
