(** Guards and invariants.

    The paper's guard function [g] assigns each edge a guard set, and
    [inv] assigns each location an invariant set (Section II-A, items 3
    and 6). We represent both as conjunctions of atomic half-space
    constraints [x ⋈ c] over single variables. This class is closed under
    the operations the executor needs (evaluation, exact
    boundary-crossing times under constant-rate flows) and coincides with
    clock constraints on the timed fragment used by the model checker. *)

type cmp = Lt | Le | Gt | Ge | Eq

type atom = { var : Var.t; cmp : cmp; bound : float }

(** A conjunction of atoms; [[]] is [true] (the whole space). *)
type t = atom list

let always : t = []

(* Numeric slack for comparisons: guards like [x >= 3] must be considered
   enabled when the executor lands at [x = 3 - 1e-12] after float
   round-off. *)
let eps = 1e-9

let atom var cmp bound = { var; cmp; bound }
let ( <. ) var bound = atom var Lt bound
let ( <=. ) var bound = atom var Le bound
let ( >. ) var bound = atom var Gt bound
let ( >=. ) var bound = atom var Ge bound
let ( =. ) var bound = atom var Eq bound

let conj atoms : t = atoms

let atom_holds { cmp; bound; _ } value =
  match cmp with
  | Lt -> value < bound +. eps
  | Le -> value <= bound +. eps
  | Gt -> value > bound -. eps
  | Ge -> value >= bound -. eps
  | Eq -> Float.abs (value -. bound) <= eps

let holds guard valuation =
  List.for_all (fun a -> atom_holds a (Valuation.get valuation a.var)) guard

let vars guard =
  List.fold_left (fun acc a -> Var.Set.add a.var acc) Var.Set.empty guard

(** [bounds guard var] is the interval [(lo, hi)] the conjunction implies
    for [var] ([None] = unbounded on that side). Strictness is dropped:
    the executor's [eps] slack blurs strict/non-strict anyway, so static
    analyses treat [x < c] and [x <= c] as the same half-space. *)
let bounds guard var =
  List.fold_left
    (fun (lo, hi) a ->
      if not (Var.equal a.var var) then (lo, hi)
      else
        let raise_lo lo' =
          match lo with None -> Some lo' | Some l -> Some (Float.max l lo')
        in
        let lower_hi hi' =
          match hi with None -> Some hi' | Some h -> Some (Float.min h hi')
        in
        match a.cmp with
        | Gt | Ge -> (raise_lo a.bound, hi)
        | Lt | Le -> (lo, lower_hi a.bound)
        | Eq -> (raise_lo a.bound, lower_hi a.bound))
    (None, None) guard

(** Is the conjunction of [a] and [b] satisfiable per-variable? Sound for
    emptiness: [false] means some variable's implied interval is empty
    (beyond the [eps] slack), hence no valuation satisfies both. [true]
    only means no single-variable contradiction was found. *)
let compatible a b =
  let joint = a @ b in
  Var.Set.for_all
    (fun v ->
      match bounds joint v with
      | Some lo, Some hi -> lo <= hi +. eps
      | _ -> true)
    (vars joint)

(** [time_to_satisfy atom ~value ~rate] is the least [d >= 0] such that the
    atom holds after the variable evolves linearly for time [d] from
    [value] at slope [rate]; [None] if it never will. *)
let time_to_satisfy atom ~value ~rate =
  if atom_holds atom value then Some 0.0
  else
    let toward target =
      (* strictly on the wrong side; does linear motion reach [target]? *)
      let gap = target -. value in
      if Float.abs rate < eps then None
      else
        let d = gap /. rate in
        if d >= 0.0 then Some d else None
    in
    match atom.cmp with
    | Lt | Le -> toward atom.bound (* value > bound: need rate < 0 *)
    | Gt | Ge -> toward atom.bound (* value < bound: need rate > 0 *)
    | Eq -> toward atom.bound

(** [time_to_violate atom ~value ~rate] is the least [d >= 0] such that the
    atom stops holding; [None] if it holds forever (or never held). *)
let time_to_violate atom ~value ~rate =
  if not (atom_holds atom value) then Some 0.0
  else
    let escape target =
      let gap = target -. value in
      if Float.abs rate < eps then None
      else
        let d = gap /. rate in
        if d >= 0.0 then Some d else None
    in
    match atom.cmp with
    | Lt | Le -> if rate > 0.0 then escape atom.bound else None
    | Gt | Ge -> if rate < 0.0 then escape atom.bound else None
    | Eq -> if Float.abs rate < eps then None else Some 0.0

(** Earliest time a conjunction is violated under per-variable constant
    rates (max of per-atom satisfaction is not needed for invariants; the
    invariant fails as soon as any atom fails). *)
let invariant_horizon guard valuation rate_of =
  List.fold_left
    (fun acc a ->
      let value = Valuation.get valuation a.var in
      match time_to_violate a ~value ~rate:(rate_of a.var) with
      | None -> acc
      | Some d -> ( match acc with None -> Some d | Some d' -> Some (Float.min d d'))
    )
    None guard

let pp_cmp ppf = function
  | Lt -> Fmt.string ppf "<"
  | Le -> Fmt.string ppf "<="
  | Gt -> Fmt.string ppf ">"
  | Ge -> Fmt.string ppf ">="
  | Eq -> Fmt.string ppf "="

let pp_atom ppf a = Fmt.pf ppf "%s %a %g" a.var pp_cmp a.cmp a.bound

let pp ppf = function
  | [] -> Fmt.string ppf "true"
  | atoms -> Fmt.list ~sep:(Fmt.any " /\\ ") pp_atom ppf atoms
