(** Hybrid systems: collections of concurrently executing hybrid automata
    coordinating via event communication (Section II-B).

    Per the paper's simplifying assumption we require no shared data
    state variables or locations between member automata; sharing a
    synchronization {e root} with complementary prefixes is precisely how
    automata communicate, so roots may (and should) be shared while full
    labels differ. *)

type t = {
  name : string;
  automata : Automaton.t list;
}

let make ~name automata = { name; automata }

let names system = List.map (fun (a : Automaton.t) -> a.Automaton.name) system.automata

let find system name =
  List.find_opt
    (fun (a : Automaton.t) -> String.equal a.Automaton.name name)
    system.automata

let find_exn system name =
  match find system name with
  | Some a -> a
  | None -> Fmt.invalid_arg "hybrid system %s has no automaton %s" system.name name

(** Automata that listen (via [?l] or [??l]) to a given root. *)
let listeners system root =
  List.filter
    (fun a -> Var.Set.mem root (Automaton.listened_roots a))
    system.automata

(** Validation: each member automaton is well-formed and member names are
    unique. Data state variable and location names are {e local} to each
    member automaton ("Fall-Back" of Asupvsr and "Fall-Back" of Ainitzr
    are two distinct locations — Section IV-A), so no cross-automaton
    disjointness is required here; Definition 2 independence is the
    stronger condition checked only when automata are merged by
    elaboration. *)
let validate system =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
  let seen = Hashtbl.create (2 * List.length system.automata) in
  List.iter
    (fun (a : Automaton.t) ->
      if Hashtbl.mem seen a.Automaton.name then
        err "duplicate automaton name %S" a.Automaton.name
      else Hashtbl.replace seen a.Automaton.name ())
    system.automata;
  List.iter
    (fun (a : Automaton.t) ->
      match Automaton.validate a with
      | Ok () -> ()
      | Error es ->
          List.iter (fun e -> err "[%s] %s" a.Automaton.name e) es)
    system.automata;
  match !errs with [] -> Ok () | errors -> Error (List.rev errors)

let validate_exn system =
  match validate system with
  | Ok () -> system
  | Error errors ->
      Fmt.invalid_arg "hybrid system %s is malformed: %s" system.name
        (String.concat "; " errors)

let pp ppf system =
  Fmt.pf ppf "@[<v>hybrid system %s@,%a@]" system.name
    (Fmt.list ~sep:Fmt.cut Automaton.pp)
    system.automata
