(** Fixed-step executor for hybrid systems.

    Executes a {!System.t} under the semantics of Section II: per
    location, data state variables evolve along the flow map while the
    invariant holds; discrete transitions fire when guards hold, reset
    variables, and exchange events through synchronization labels.

    Operational choices (documented here because the paper gives
    denotational semantics only):

    - Time advances in fixed steps of [config.dt] (default 1 ms) using
      explicit Euler integration. All configuration constants of the
      design pattern are >= 1 s in the case study, so the discretization
      error is orders of magnitude below every constraint margin.
    - If a step would violate the current invariant, the executor
      bisects to the boundary, fires an enabled spontaneous edge there
      ({e forced} transition), and finishes the step under the new
      location's flow. A boundary with no enabled edge is a time-block
      and raises {!Time_block} — the paper assumes time-block-free
      automata, so this surfaces modeling errors.
    - {!Edge.Eager} edges fire as soon as their guard holds (checked at
      step boundaries and after every discrete change).
    - Event transport is delegated to a pluggable {!router}: the closed
      (wired) semantics delivers instantly and reliably; [pte_sim] plugs
      in the wireless star network, making [??l] receptions lossy.
    - A bounded number of discrete changes may occur per instant;
      exceeding it raises {!Zeno} (the paper assumes non-zeno automata).

    Hot-path organisation (PR 9, "scale to N >= 1000"): the event queue
    is a binary min-heap ordered by [(due, seq)] with lazy-delete
    tombstones (push O(log n), cancel O(1) amortised); automata live in
    a flat array indexed by int with the name->index table only at the
    API boundary; every location carries a precomputed dispatch index
    (trigger-root -> edges, cached eager/spontaneous arrays); and
    {!stabilize} re-chases only {e active} automata — those that fired,
    received a message or whose location is time-sensitive — instead of
    scanning the whole system every fixpoint round. Because [seq] is the
    insertion order and breaks [due] ties exactly as the old sorted list
    did, and quiescent automata contribute nothing to a fixpoint round,
    traces are byte-identical to the pre-heap executor (the legacy
    sorted-list engine survives as [~queue:`Legacy_list] for the S1
    benchmark baseline and differential tests). *)

exception Time_block of { automaton : string; location : string; time : float }
exception Zeno of { automaton : string; time : float }

type route_decision =
  | Deliver of float  (** deliver after the given delay (seconds) *)
  | Deliver_many of float list
      (** deliver one copy per delay — duplicated frames (fault
          injection); an empty list is equivalent to [Lose] *)
  | Lose
  | Deferred
      (** the router has taken ownership of the send: it will schedule
          the delivery (or record the loss) itself through {!schedule} /
          {!deliver_now} / {!lose_now} — nothing to enqueue now (the
          event-driven ARQ transport) *)

type router =
  time:float -> sender:string -> root:string -> receiver:string ->
  route_decision

let reliable_router ~time:_ ~sender:_ ~root:_ ~receiver:_ = Deliver 0.0

type config = {
  dt : float;
  max_chain : int;
      (** Maximum discrete transitions per automaton per instant. *)
  sample_vars : (string * Var.t) list;
      (** [(automaton, var)] pairs recorded every {!sample_period}. *)
  sample_period : float;
}

let default_config =
  { dt = 1e-3; max_chain = 64; sample_vars = []; sample_period = 1.0 }

type queue_kind = [ `Heap | `Legacy_list ]

(* Per-location dispatch index, precomputed at {!create}: the edge
   subsets the hot path needs, in declaration order (so "first enabled
   edge" picks the same edge the old linear [edges_from] scan did). *)
type loc_info = {
  loc : Location.t;
  eager : Edge.t array;  (* spontaneous + Eager *)
  spontaneous : Edge.t array;  (* any urgency *)
  triggered : (string, Edge.t array) Hashtbl.t;  (* trigger root -> edges *)
  has_eager : bool;
      (* whether time passage alone can enable a transition here: if not,
         the automaton needs no eager re-chase after a continuous step *)
}

type automaton_state = {
  automaton : Automaton.t;
  ix : int;  (* index into [t.states] *)
  infos : (string, loc_info) Hashtbl.t;  (* location name -> index *)
  mutable info : loc_info;  (* current location's index *)
  mutable valuation : Valuation.t;
  mutable entered_at : float;
  mutable halted : bool;
      (* crashed node: flows frozen, edges disabled, receptions dropped *)
  mutable rate : float;
      (* local clock-drift factor: its flows advance [rate * dt] per step *)
  mutable active : bool;
      (* needs an eager re-chase in the next stabilization round *)
}

type token = int

type t = {
  system : System.t;
  config : config;
  mutable now : float;
  states : automaton_state array;
  index : (string, int) Hashtbl.t;  (* automaton name -> states index *)
  listeners : (string, int array) Hashtbl.t;
      (* root -> listener indices, in system declaration order *)
  queue : queue;
  mutable next_token : int;
  mutable events : int;  (* deliveries + timer firings + transitions *)
  recorder : Trace.Recorder.recorder;
  mutable router : router;
  mutable next_sample : float;
}

and pending = { due : float; seq : int; owner : string; payload : payload }
(* [owner]: the automaton blamed in Zeno diagnostics — the receiver for
   messages, the automaton whose exchange armed the timer for timers. *)

and payload =
  | Message of { receiver : int; root : string }
      (* a scheduled arrival: deliver [root] to [receiver] at [due] *)
  | Timer of (t -> unit)
      (* a scheduled callback (e.g. a transport retransmission timer) *)

and queue = Heap of heap | Legacy_list of legacy_list

and heap = {
  mutable arr : pending array;  (* slots [0, len) hold the heap *)
  mutable len : int;
  live : (int, unit) Hashtbl.t;
      (* seqs queued and not cancelled; cancel = remove (a tombstone),
         pop skips entries whose seq is no longer live *)
}

and legacy_list = { mutable items : pending list (* sorted by (due, seq) *) }

(* {2 The event queue}

   Min-heap ordered by [(due, seq)]: [seq] is the global insertion
   counter, so due-ties pop in insertion order — exactly the order the
   legacy sorted list maintained. *)

let dummy_pending =
  { due = 0.0; seq = -1; owner = "<none>"; payload = Timer (fun _ -> ()) }

let pending_before a b = a.due < b.due || (a.due = b.due && a.seq < b.seq)

let heap_push h item =
  let cap = Array.length h.arr in
  if h.len = cap then begin
    let arr = Array.make (2 * cap) dummy_pending in
    Array.blit h.arr 0 arr 0 h.len;
    h.arr <- arr
  end;
  let i = ref h.len in
  h.len <- h.len + 1;
  h.arr.(!i) <- item;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if pending_before h.arr.(!i) h.arr.(parent) then begin
      let tmp = h.arr.(parent) in
      h.arr.(parent) <- h.arr.(!i);
      h.arr.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

(* Remove the root (precondition: [h.len > 0]), restoring heap order. *)
let heap_drop_root h =
  h.len <- h.len - 1;
  h.arr.(0) <- h.arr.(h.len);
  h.arr.(h.len) <- dummy_pending (* release the callback closure *);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.len && pending_before h.arr.(l) h.arr.(!smallest) then
      smallest := l;
    if r < h.len && pending_before h.arr.(r) h.arr.(!smallest) then
      smallest := r;
    if !smallest <> !i then begin
      let tmp = h.arr.(!smallest) in
      h.arr.(!smallest) <- h.arr.(!i);
      h.arr.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

(* The live minimum, discarding cancelled (tombstoned) entries. *)
let rec heap_peek h =
  if h.len = 0 then None
  else
    let root = h.arr.(0) in
    if Hashtbl.mem h.live root.seq then Some root
    else begin
      heap_drop_root h;
      heap_peek h
    end

(* Pop the next live entry due at or before [deadline], if any. *)
let queue_pop_due q ~deadline =
  match q with
  | Heap h -> (
      match heap_peek h with
      | Some p when p.due <= deadline ->
          Hashtbl.remove h.live p.seq;
          heap_drop_root h;
          Some p
      | Some _ | None -> None)
  | Legacy_list l -> (
      match l.items with
      | p :: rest when p.due <= deadline ->
          l.items <- rest;
          Some p
      | _ -> None)

let queue_insert q item =
  match q with
  | Heap h ->
      Hashtbl.replace h.live item.seq ();
      heap_push h item
  | Legacy_list l ->
      let rec insert = function
        | [] -> [ item ]
        | hd :: tl as all ->
            if hd.due > item.due || (hd.due = item.due && hd.seq > item.seq)
            then item :: all
            else hd :: insert tl
      in
      l.items <- insert l.items

let queue_cancel q token =
  match q with
  | Heap h -> Hashtbl.remove h.live token
  | Legacy_list l -> l.items <- List.filter (fun p -> p.seq <> token) l.items

(* {2 Construction} *)

let build_loc_info (loc : Location.t) edges =
  let edges = Array.of_list edges in
  let eager =
    Array.of_list
      (List.filter
         (fun (e : Edge.t) -> Edge.is_spontaneous e && e.urgency = Edge.Eager)
         (Array.to_list edges))
  in
  let spontaneous =
    Array.of_list (List.filter Edge.is_spontaneous (Array.to_list edges))
  in
  let triggered = Hashtbl.create 8 in
  (* group triggered edges by root, preserving declaration order *)
  Array.iter
    (fun (e : Edge.t) ->
      match Edge.trigger_root e with
      | Some root ->
          let prev =
            match Hashtbl.find_opt triggered root with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace triggered root (e :: prev)
      | None -> ())
    edges;
  let triggered_arrays = Hashtbl.create (Hashtbl.length triggered) in
  Hashtbl.iter
    (fun root rev_edges ->
      Hashtbl.replace triggered_arrays root
        (Array.of_list (List.rev rev_edges)))
    triggered;
  {
    loc;
    eager;
    spontaneous;
    triggered = triggered_arrays;
    has_eager = Array.length eager > 0;
  }

let build_state ix (a : Automaton.t) =
  (* group edges by source location in one pass (declaration order) *)
  let by_src = Hashtbl.create (List.length a.Automaton.locations * 2) in
  List.iter
    (fun (e : Edge.t) ->
      let prev =
        match Hashtbl.find_opt by_src e.src with Some l -> l | None -> []
      in
      Hashtbl.replace by_src e.src (e :: prev))
    a.Automaton.edges;
  let infos = Hashtbl.create (List.length a.Automaton.locations * 2) in
  List.iter
    (fun (loc : Location.t) ->
      let edges =
        match Hashtbl.find_opt by_src loc.Location.name with
        | Some rev -> List.rev rev
        | None -> []
      in
      Hashtbl.replace infos loc.Location.name (build_loc_info loc edges))
    a.Automaton.locations;
  let info =
    match Hashtbl.find_opt infos a.Automaton.initial_location with
    | Some i -> i
    | None -> assert false (* System.validate_exn checked it *)
  in
  {
    automaton = a;
    ix;
    infos;
    info;
    valuation = Automaton.initial_valuation a;
    entered_at = 0.0;
    halted = false;
    rate = 1.0;
    active = true;
  }

let create ?(config = default_config) ?(queue = `Heap) ?trace_sink system =
  let system = System.validate_exn system in
  let recorder = Trace.Recorder.create ?sink:trace_sink () in
  let automata = Array.of_list system.System.automata in
  let n = Array.length automata in
  let index = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i (a : Automaton.t) -> Hashtbl.replace index a.Automaton.name i)
    automata;
  let states = Array.mapi build_state automata in
  let listeners = Hashtbl.create (4 * n) in
  Array.iteri
    (fun i (a : Automaton.t) ->
      Var.Set.iter
        (fun root ->
          let prev =
            match Hashtbl.find_opt listeners root with Some l -> l | None -> []
          in
          Hashtbl.replace listeners root (i :: prev))
        (Automaton.listened_roots a))
    automata;
  let listeners_arr = Hashtbl.create (Hashtbl.length listeners) in
  Hashtbl.iter
    (fun root rev_ixs ->
      Hashtbl.replace listeners_arr root (Array.of_list (List.rev rev_ixs)))
    listeners;
  Array.iter
    (fun st ->
      Trace.Recorder.record recorder ~time:0.0
        (Trace.Enter_location
           {
             automaton = st.automaton.Automaton.name;
             location = st.info.loc.Location.name;
           }))
    states;
  let queue =
    match queue with
    | `Heap ->
        Heap
          { arr = Array.make 64 dummy_pending; len = 0; live = Hashtbl.create 64 }
    | `Legacy_list -> Legacy_list { items = [] }
  in
  {
    system;
    config;
    now = 0.0;
    states;
    index;
    listeners = listeners_arr;
    queue;
    next_token = 0;
    events = 0;
    recorder;
    router = reliable_router;
    next_sample = 0.0;
  }

let set_router t router = t.router <- router
let time t = t.now
let trace t = Trace.Recorder.entries t.recorder
let events_processed t = t.events

let state_ix t name =
  match Hashtbl.find_opt t.index name with
  | Some ix -> ix
  | None -> Fmt.invalid_arg "executor: unknown automaton %s" name

let state t name = t.states.(state_ix t name)

let location_of t name = (state t name).info.loc.Location.name
let valuation_of t name = (state t name).valuation
let value_of t name var = Valuation.get (state t name).valuation var
let dwell_time t name = t.now -. (state t name).entered_at

(** Overwrite one variable, bypassing flows and resets. This is the hook
    for {e wired} physical couplings that the automata formalism cannot
    express without shared variables (which the system model forbids):
    e.g. the oximeter wired to the supervisor writes the sampled SpO2
    into the supervisor's local data state. Use through [pte_sim]'s
    coupling API rather than directly. *)
let set_value t name var value =
  let st = state t name in
  st.valuation <- Valuation.set st.valuation var value;
  st.active <- true

let record t event = Trace.Recorder.record t.recorder ~time:t.now event
let note t text = record t (Trace.Note text)

(** Crash an automaton: its flows freeze, its edges stop firing and
    incoming events are dropped until {!restart}. This realizes the
    fail-stop node faults of the robustness campaigns — a behaviour the
    paper's fault model (message loss only) does not cover, which is
    exactly why injecting it is informative. *)
let halt t name =
  let st = state t name in
  if not st.halted then begin
    st.halted <- true;
    note t (Printf.sprintf "fault: %s crashed" name)
  end

(** Restart a crashed (or running) automaton from its initial location
    and valuation, as a rebooted node would. *)
let restart t name =
  let st = state t name in
  st.halted <- false;
  (match Hashtbl.find_opt st.infos st.automaton.Automaton.initial_location with
  | Some info -> st.info <- info
  | None -> assert false);
  st.valuation <- Automaton.initial_valuation st.automaton;
  st.entered_at <- t.now;
  st.active <- true;
  note t (Printf.sprintf "fault: %s restarted" name);
  record t
    (Trace.Enter_location
       { automaton = name; location = st.info.loc.Location.name })

let is_halted t name = (state t name).halted

(** Set an automaton's local clock-drift factor: each global step of
    [dt] advances its continuous state by [rate * dt]. [rate < 1] runs
    its clocks slow (leases expire late), [rate > 1] fast. *)
let set_rate t name rate =
  if rate <= 0.0 || not (Float.is_finite rate) then
    Fmt.invalid_arg "executor: clock rate must be positive, got %g" rate;
  (state t name).rate <- rate

let rate t name = (state t name).rate

let push t ~due ~owner payload =
  if not (Float.is_finite due) then
    Fmt.invalid_arg "executor: event due time must be finite, got %g" due;
  let item = { due; seq = t.next_token; owner; payload } in
  t.next_token <- t.next_token + 1;
  queue_insert t.queue item;
  item.seq

let enqueue t ~due ~receiver ~root =
  let owner = t.states.(receiver).automaton.Automaton.name in
  ignore (push t ~due ~owner (Message { receiver; root }))

(** Schedule [f] to run at absolute time [at] (never earlier than the
    current instant), on the same timeline as message deliveries. The
    returned token revokes it through {!cancel} as long as it has not
    fired. This is the hook behind the event-driven ARQ transport:
    retransmission timers live in the delivery queue, so an arriving ACK
    can cancel the pending retransmission before the channel sees it.
    [owner] names the automaton whose exchange armed the timer — it is
    blamed in Zeno diagnostics instead of the anonymous ["<timer>"].
    Raises [Invalid_argument] when [at] is NaN or infinite: the old
    sorted-list queue silently accepted such timers and they could never
    fire ([Float.max nan now] is NaN), wedging the exchange and leaking
    the cancel token. *)
let schedule t ?(owner = "<timer>") ~at f =
  if not (Float.is_finite at) then
    Fmt.invalid_arg "executor: timer due time must be finite, got %g" at;
  push t ~due:(Float.max at t.now) ~owner (Timer f)

(** Revoke a scheduled timer or arrival before it fires. Unknown or
    already-fired tokens are ignored (cancellation is idempotent). *)
let cancel t token = queue_cancel t.queue token

let broadcast t ~sender ~root =
  let sender_name = t.states.(sender).automaton.Automaton.name in
  record t (Trace.Message_sent { sender = sender_name; root });
  match Hashtbl.find_opt t.listeners root with
  | None -> ()
  | Some ixs ->
      Array.iter
        (fun ix ->
          if ix <> sender then begin
            let receiver = t.states.(ix).automaton.Automaton.name in
            match t.router ~time:t.now ~sender:sender_name ~root ~receiver with
            | Lose | Deliver_many [] ->
                record t (Trace.Message_lost { receiver; root })
            | Deliver delay -> enqueue t ~due:(t.now +. delay) ~receiver:ix ~root
            | Deliver_many delays ->
                List.iter
                  (fun delay ->
                    enqueue t ~due:(t.now +. delay) ~receiver:ix ~root)
                  delays
            | Deferred -> ()
          end)
        ixs

(* Fire [edge] from [st]'s current location. Emits trace entries and
   broadcasts any sent event. The caller maintains the chain budget. *)
let fire t st (edge : Edge.t) ~forced =
  let name = st.automaton.Automaton.name in
  record t
    (Trace.Transition
       { automaton = name; src = edge.src; dst = edge.dst; label = edge.label;
         forced });
  st.valuation <- Reset.apply edge.reset st.valuation;
  (match Hashtbl.find_opt st.infos edge.dst with
  | Some info -> st.info <- info
  | None -> assert false (* validated: no dangling edge endpoints *));
  st.entered_at <- t.now;
  st.active <- true;
  t.events <- t.events + 1;
  record t
    (Trace.Enter_location
       { automaton = name; location = st.info.loc.Location.name });
  match edge.label with
  | Some (Label.Send root) -> broadcast t ~sender:st.ix ~root
  | Some (Label.Internal _) | Some (Label.Recv _) | Some (Label.Recv_lossy _)
  | None ->
      ()

let first_enabled edges valuation =
  let n = Array.length edges in
  let rec go i =
    if i >= n then None
    else
      let e : Edge.t = edges.(i) in
      if Guard.holds e.guard valuation then Some e else go (i + 1)
  in
  go 0

let enabled_spontaneous st = first_enabled st.info.spontaneous st.valuation
let enabled_eager st = first_enabled st.info.eager st.valuation

(* Deliver [root] to [receiver]: fires the first enabled triggered edge
   listening on [root] in the current location, if any. *)
let deliver t ~receiver ~root =
  let st = t.states.(receiver) in
  let name = st.automaton.Automaton.name in
  t.events <- t.events + 1;
  if st.halted then begin
    (* a crashed node's radio is off: the frame arrives at nobody *)
    record t
      (Trace.Message_delivered { receiver = name; root; consumed = false });
    false
  end
  else
    let candidate =
      match Hashtbl.find_opt st.info.triggered root with
      | Some edges -> first_enabled edges st.valuation
      | None -> None
    in
    match candidate with
    | Some edge ->
        record t
          (Trace.Message_delivered { receiver = name; root; consumed = true });
        fire t st edge ~forced:false;
        true
    | None ->
        record t
          (Trace.Message_delivered { receiver = name; root; consumed = false });
        false

(** Hand [root] to [receiver] at the current instant — the delivery half
    of a {!Deferred} routing decision (the event-driven transport calls
    this from a scheduled arrival callback). Returns [true] when a
    triggered edge consumed it. Any resulting cascade (eager edges,
    sends) is finished by the enclosing {!stabilize} loop. *)
let deliver_now t ~receiver ~root = deliver t ~receiver:(state_ix t receiver) ~root

(** Record that a send owned by a {!Deferred} router was lost — the
    asynchronous counterpart of the [Lose] routing decision, so traces
    show the loss at the instant the transport gave up rather than at
    the send instant. *)
let lose_now t ~receiver ~root =
  record t (Trace.Message_lost { receiver; root })

(* Fire eager edges and deliver due events until quiescent at the current
   instant.

   Incremental form: only {e active} automata — those that fired,
   received a message, were externally mutated or sit in a location with
   eager spontaneous edges after a continuous step — are re-chased each
   round. Eager enabledness depends only on (location, valuation), and a
   chase that reaches its fixpoint leaves nothing enabled, so skipping
   quiescent automata removes no transition; active automata are visited
   in declaration order, so the firing order (and hence the trace) is
   exactly the full-scan order. The legacy-list engine keeps the
   original full scan, as the benchmark baseline. *)
let stabilize t =
  let n = Array.length t.states in
  let budget = t.config.max_chain * n in
  let fires = ref 0 in
  let bump name =
    incr fires;
    if !fires > budget then raise (Zeno { automaton = name; time = t.now })
  in
  let progress = ref true in
  while !progress do
    progress := false;
    (* due deliveries and timers, in order *)
    let deadline = t.now +. 1e-12 in
    let rec drain () =
      match queue_pop_due t.queue ~deadline with
      | Some { payload = Message { receiver; root }; _ } ->
          bump t.states.(receiver).automaton.Automaton.name;
          if deliver t ~receiver ~root then progress := true;
          drain ()
      | Some { payload = Timer f; owner; _ } ->
          bump owner;
          t.events <- t.events + 1;
          f t;
          progress := true;
          drain ()
      | None -> ()
    in
    drain ();
    let chase st =
      let name = st.automaton.Automaton.name in
      let rec go k =
        if k >= t.config.max_chain then
          raise (Zeno { automaton = name; time = t.now });
        match enabled_eager st with
        | Some edge ->
            bump name;
            fire t st edge ~forced:false;
            progress := true;
            go (k + 1)
        | None -> ()
      in
      go 0
    in
    match t.queue with
    | Legacy_list _ ->
        for i = 0 to n - 1 do
          let st = t.states.(i) in
          if not st.halted then chase st
        done
    | Heap _ ->
        for i = 0 to n - 1 do
          let st = t.states.(i) in
          if st.active && not st.halted then begin
            chase st;
            (* fixpoint reached: nothing eager is enabled here until a
               later delivery, mutation or continuous step re-marks it *)
            st.active <- false
          end
        done
  done

(* Advance one automaton's continuous state by [span] seconds starting at
   absolute time [start]; handles invariant boundaries by bisection and
   forced transitions. Precondition: invariant holds at entry. *)
let rec advance_automaton t st ~start ~span ~depth =
  if span <= 0.0 then ()
  else begin
    if depth > t.config.max_chain then
      raise (Zeno { automaton = st.automaton.Automaton.name; time = start });
    let flow = st.info.loc.Location.flow in
    let derivatives = Flow.derivatives flow ~time:start st.valuation in
    let tentative = Valuation.advance st.valuation derivatives span in
    let invariant = st.info.loc.Location.invariant in
    if Guard.holds invariant tentative then st.valuation <- tentative
    else begin
      (* Bisect for the largest alpha in [0,1] keeping the invariant. *)
      let from = st.valuation in
      let alpha = ref 0.0 in
      let width = ref 0.5 in
      for _ = 1 to 30 do
        let candidate = !alpha +. !width in
        let v = Valuation.interpolate ~from ~target:tentative candidate in
        if Guard.holds invariant v then alpha := candidate;
        width := !width /. 2.0
      done;
      st.valuation <- Valuation.interpolate ~from ~target:tentative !alpha;
      let boundary_time = start +. (!alpha *. span) in
      let saved_now = t.now in
      t.now <- boundary_time;
      (match enabled_spontaneous st with
      | Some edge -> fire t st edge ~forced:true
      | None ->
          raise
            (Time_block
               {
                 automaton = st.automaton.Automaton.name;
                 location = st.info.loc.Location.name;
                 time = boundary_time;
               }));
      t.now <- saved_now;
      advance_automaton t st ~start:boundary_time
        ~span:(span -. (!alpha *. span))
        ~depth:(depth + 1)
    end
  end

let sample t =
  List.iter
    (fun (automaton, var) ->
      match Hashtbl.find_opt t.index automaton with
      | None -> ()
      | Some ix ->
          let st = t.states.(ix) in
          record t
            (Trace.Sample
               { automaton; var; value = Valuation.get st.valuation var }))
    t.config.sample_vars

(** Advance the whole system by one step of [config.dt]. *)
let step t =
  stabilize t;
  let start = t.now in
  let span = t.config.dt in
  let n = Array.length t.states in
  for i = 0 to n - 1 do
    let st = t.states.(i) in
    if not st.halted then begin
      advance_automaton t st ~start ~span:(span *. st.rate) ~depth:0;
      (* time passed: only a location with eager spontaneous edges can
         have gained an enabled transition from it *)
      if st.info.has_eager then st.active <- true
    end
  done;
  t.now <- start +. span;
  stabilize t;
  if t.config.sample_vars <> [] && t.now >= t.next_sample -. 1e-12 then begin
    sample t;
    (* catch up past [now]: with dt > sample_period the old one-period
       bump fell permanently behind, emitting a stale burst *)
    t.next_sample <- t.next_sample +. t.config.sample_period;
    while t.now >= t.next_sample -. 1e-12 do
      t.next_sample <- t.next_sample +. t.config.sample_period
    done
  end

let run t ~until =
  while t.now < until -. 1e-12 do
    step t
  done

(** Deliver an environment stimulus to one automaton at the current time
    (used by scenarios for "at any time" environment transitions, e.g.
    the surgeon's request in the paper's emulation). Returns [true] if a
    triggered edge consumed it. *)
let inject t ~receiver ~root =
  record t (Trace.Message_sent { sender = "env"; root });
  let consumed = deliver t ~receiver:(state_ix t receiver) ~root in
  stabilize t;
  consumed
