(** Fixed-step executor for hybrid systems.

    Executes a {!System.t} under the semantics of Section II: per
    location, data state variables evolve along the flow map while the
    invariant holds; discrete transitions fire when guards hold, reset
    variables, and exchange events through synchronization labels.

    Operational choices (documented here because the paper gives
    denotational semantics only):

    - Time advances in fixed steps of [config.dt] (default 1 ms) using
      explicit Euler integration. All configuration constants of the
      design pattern are >= 1 s in the case study, so the discretization
      error is orders of magnitude below every constraint margin.
    - If a step would violate the current invariant, the executor
      bisects to the boundary, fires an enabled spontaneous edge there
      ({e forced} transition), and finishes the step under the new
      location's flow. A boundary with no enabled edge is a time-block
      and raises {!Time_block} — the paper assumes time-block-free
      automata, so this surfaces modeling errors.
    - {!Edge.Eager} edges fire as soon as their guard holds (checked at
      step boundaries and after every discrete change).
    - Event transport is delegated to a pluggable {!router}: the closed
      (wired) semantics delivers instantly and reliably; [pte_sim] plugs
      in the wireless star network, making [??l] receptions lossy.
    - A bounded number of discrete changes may occur per instant;
      exceeding it raises {!Zeno} (the paper assumes non-zeno automata). *)

exception Time_block of { automaton : string; location : string; time : float }
exception Zeno of { automaton : string; time : float }

type route_decision =
  | Deliver of float  (** deliver after the given delay (seconds) *)
  | Deliver_many of float list
      (** deliver one copy per delay — duplicated frames (fault
          injection); an empty list is equivalent to [Lose] *)
  | Lose
  | Deferred
      (** the router has taken ownership of the send: it will schedule
          the delivery (or record the loss) itself through {!schedule} /
          {!deliver_now} / {!lose_now} — nothing to enqueue now (the
          event-driven ARQ transport) *)

type router =
  time:float -> sender:string -> root:string -> receiver:string ->
  route_decision

let reliable_router ~time:_ ~sender:_ ~root:_ ~receiver:_ = Deliver 0.0

type config = {
  dt : float;
  max_chain : int;
      (** Maximum discrete transitions per automaton per instant. *)
  sample_vars : (string * Var.t) list;
      (** [(automaton, var)] pairs recorded every {!sample_period}. *)
  sample_period : float;
}

let default_config =
  { dt = 1e-3; max_chain = 64; sample_vars = []; sample_period = 1.0 }

type automaton_state = {
  automaton : Automaton.t;
  mutable location : Location.t;
  mutable valuation : Valuation.t;
  mutable entered_at : float;
  mutable halted : bool;
      (* crashed node: flows frozen, edges disabled, receptions dropped *)
  mutable rate : float;
      (* local clock-drift factor: its flows advance [rate * dt] per step *)
}

type token = int

type t = {
  system : System.t;
  config : config;
  mutable now : float;
  states : (string, automaton_state) Hashtbl.t;
  order : string list;
  mutable queue : pending list;  (* sorted by (due, seq) *)
  mutable next_token : int;
  recorder : Trace.Recorder.recorder;
  mutable router : router;
  mutable next_sample : float;
}

and pending = { due : float; payload : payload; seq : int }

and payload =
  | Message of { receiver : string; root : string }
      (* a scheduled arrival: deliver [root] to [receiver] at [due] *)
  | Timer of (t -> unit)
      (* a scheduled callback (e.g. a transport retransmission timer) *)

let create ?(config = default_config) ?trace_sink system =
  let system = System.validate_exn system in
  let states = Hashtbl.create 16 in
  let recorder = Trace.Recorder.create ?sink:trace_sink () in
  let order =
    List.map (fun (a : Automaton.t) -> a.Automaton.name) system.automata
  in
  List.iter
    (fun (a : Automaton.t) ->
      let location = Automaton.location_exn a a.Automaton.initial_location in
      let valuation = Automaton.initial_valuation a in
      Hashtbl.replace states a.Automaton.name
        { automaton = a; location; valuation; entered_at = 0.0; halted = false;
          rate = 1.0 };
      Trace.Recorder.record recorder ~time:0.0
        (Trace.Enter_location
           { automaton = a.Automaton.name; location = location.Location.name }))
    system.automata;
  {
    system;
    config;
    now = 0.0;
    states;
    order;
    queue = [];
    next_token = 0;
    recorder;
    router = reliable_router;
    next_sample = 0.0;
  }

let set_router t router = t.router <- router
let time t = t.now
let trace t = Trace.Recorder.entries t.recorder

let state t name =
  match Hashtbl.find_opt t.states name with
  | Some s -> s
  | None -> Fmt.invalid_arg "executor: unknown automaton %s" name

let location_of t name = (state t name).location.Location.name
let valuation_of t name = (state t name).valuation
let value_of t name var = Valuation.get (state t name).valuation var
let dwell_time t name = t.now -. (state t name).entered_at

(** Overwrite one variable, bypassing flows and resets. This is the hook
    for {e wired} physical couplings that the automata formalism cannot
    express without shared variables (which the system model forbids):
    e.g. the oximeter wired to the supervisor writes the sampled SpO2
    into the supervisor's local data state. Use through [pte_sim]'s
    coupling API rather than directly. *)
let set_value t name var value =
  let st = state t name in
  st.valuation <- Valuation.set st.valuation var value

let record t event = Trace.Recorder.record t.recorder ~time:t.now event
let note t text = record t (Trace.Note text)

(** Crash an automaton: its flows freeze, its edges stop firing and
    incoming events are dropped until {!restart}. This realizes the
    fail-stop node faults of the robustness campaigns — a behaviour the
    paper's fault model (message loss only) does not cover, which is
    exactly why injecting it is informative. *)
let halt t name =
  let st = state t name in
  if not st.halted then begin
    st.halted <- true;
    note t (Printf.sprintf "fault: %s crashed" name)
  end

(** Restart a crashed (or running) automaton from its initial location
    and valuation, as a rebooted node would. *)
let restart t name =
  let st = state t name in
  st.halted <- false;
  st.location <-
    Automaton.location_exn st.automaton st.automaton.Automaton.initial_location;
  st.valuation <- Automaton.initial_valuation st.automaton;
  st.entered_at <- t.now;
  note t (Printf.sprintf "fault: %s restarted" name);
  record t
    (Trace.Enter_location
       { automaton = name; location = st.location.Location.name })

let is_halted t name = (state t name).halted

(** Set an automaton's local clock-drift factor: each global step of
    [dt] advances its continuous state by [rate * dt]. [rate < 1] runs
    its clocks slow (leases expire late), [rate > 1] fast. *)
let set_rate t name rate =
  if rate <= 0.0 || not (Float.is_finite rate) then
    Fmt.invalid_arg "executor: clock rate must be positive, got %g" rate;
  (state t name).rate <- rate

let rate t name = (state t name).rate

let push t ~due payload =
  let item = { due; payload; seq = t.next_token } in
  t.next_token <- t.next_token + 1;
  let rec insert = function
    | [] -> [ item ]
    | hd :: tl as all ->
        if hd.due > item.due || (hd.due = item.due && hd.seq > item.seq) then
          item :: all
        else hd :: insert tl
  in
  t.queue <- insert t.queue;
  item.seq

let enqueue t ~due ~receiver ~root =
  ignore (push t ~due (Message { receiver; root }))

(** Schedule [f] to run at absolute time [at] (never earlier than the
    current instant), on the same timeline as message deliveries. The
    returned token revokes it through {!cancel} as long as it has not
    fired. This is the hook behind the event-driven ARQ transport:
    retransmission timers live in the delivery queue, so an arriving ACK
    can cancel the pending retransmission before the channel sees it. *)
let schedule t ~at f = push t ~due:(Float.max at t.now) (Timer f)

(** Revoke a scheduled timer or arrival before it fires. Unknown or
    already-fired tokens are ignored (cancellation is idempotent). *)
let cancel t token = t.queue <- List.filter (fun p -> p.seq <> token) t.queue

let broadcast t ~sender ~root =
  record t (Trace.Message_sent { sender; root });
  List.iter
    (fun (listener : Automaton.t) ->
      let receiver = listener.Automaton.name in
      if not (String.equal receiver sender) then
        match t.router ~time:t.now ~sender ~root ~receiver with
        | Lose | Deliver_many [] ->
            record t (Trace.Message_lost { receiver; root })
        | Deliver delay -> enqueue t ~due:(t.now +. delay) ~receiver ~root
        | Deliver_many delays ->
            List.iter
              (fun delay -> enqueue t ~due:(t.now +. delay) ~receiver ~root)
              delays
        | Deferred -> ())
    (System.listeners t.system root)

(* Fire [edge] from [st]'s current location. Emits trace entries and
   broadcasts any sent event. The caller maintains the chain budget. *)
let fire t st (edge : Edge.t) ~forced =
  let name = st.automaton.Automaton.name in
  record t
    (Trace.Transition
       { automaton = name; src = edge.src; dst = edge.dst; label = edge.label;
         forced });
  st.valuation <- Reset.apply edge.reset st.valuation;
  st.location <- Automaton.location_exn st.automaton edge.dst;
  st.entered_at <- t.now;
  record t
    (Trace.Enter_location
       { automaton = name; location = st.location.Location.name });
  match edge.label with
  | Some (Label.Send root) -> broadcast t ~sender:name ~root
  | Some (Label.Internal _) | Some (Label.Recv _) | Some (Label.Recv_lossy _)
  | None ->
      ()

let enabled_spontaneous st =
  List.find_opt
    (fun (e : Edge.t) ->
      Edge.is_spontaneous e && Guard.holds e.guard st.valuation)
    (Automaton.edges_from st.automaton st.location.Location.name)

let enabled_eager st =
  List.find_opt
    (fun (e : Edge.t) ->
      Edge.is_spontaneous e && e.urgency = Edge.Eager
      && Guard.holds e.guard st.valuation)
    (Automaton.edges_from st.automaton st.location.Location.name)

(* Deliver [root] to [receiver]: fires the first enabled triggered edge
   listening on [root] in the current location, if any. *)
let deliver t ~receiver ~root =
  let st = state t receiver in
  if st.halted then begin
    (* a crashed node's radio is off: the frame arrives at nobody *)
    record t (Trace.Message_delivered { receiver; root; consumed = false });
    false
  end
  else
  let candidate =
    List.find_opt
      (fun (e : Edge.t) ->
        (match Edge.trigger_root e with
        | Some r -> String.equal r root
        | None -> false)
        && Guard.holds e.guard st.valuation)
      (Automaton.edges_from st.automaton st.location.Location.name)
  in
  match candidate with
  | Some edge ->
      record t (Trace.Message_delivered { receiver; root; consumed = true });
      fire t st edge ~forced:false;
      true
  | None ->
      record t (Trace.Message_delivered { receiver; root; consumed = false });
      false

(** Hand [root] to [receiver] at the current instant — the delivery half
    of a {!Deferred} routing decision (the event-driven transport calls
    this from a scheduled arrival callback). Returns [true] when a
    triggered edge consumed it. Any resulting cascade (eager edges,
    sends) is finished by the enclosing {!stabilize} loop. *)
let deliver_now t ~receiver ~root = deliver t ~receiver ~root

(** Record that a send owned by a {!Deferred} router was lost — the
    asynchronous counterpart of the [Lose] routing decision, so traces
    show the loss at the instant the transport gave up rather than at
    the send instant. *)
let lose_now t ~receiver ~root =
  record t (Trace.Message_lost { receiver; root })

(* Fire eager edges and deliver due events until quiescent at the current
   instant. *)
let stabilize t =
  let budget = t.config.max_chain * List.length t.order in
  let fires = ref 0 in
  let bump name =
    incr fires;
    if !fires > budget then raise (Zeno { automaton = name; time = t.now })
  in
  let progress = ref true in
  while !progress do
    progress := false;
    (* due deliveries and timers, in order *)
    let rec drain () =
      match t.queue with
      | { due; payload; _ } :: rest when due <= t.now +. 1e-12 ->
          t.queue <- rest;
          (match payload with
          | Message { receiver; root } ->
              bump receiver;
              if deliver t ~receiver ~root then progress := true
          | Timer f ->
              bump "<timer>";
              f t;
              progress := true);
          drain ()
      | _ -> ()
    in
    drain ();
    List.iter
      (fun name ->
        let st = state t name in
        if st.halted then ()
        else
        let rec chase n =
          if n >= t.config.max_chain then
            raise (Zeno { automaton = name; time = t.now });
          match enabled_eager st with
          | Some edge ->
              bump name;
              fire t st edge ~forced:false;
              progress := true;
              chase (n + 1)
          | None -> ()
        in
        chase 0)
      t.order
  done

(* Advance one automaton's continuous state by [span] seconds starting at
   absolute time [start]; handles invariant boundaries by bisection and
   forced transitions. Precondition: invariant holds at entry. *)
let rec advance_automaton t st ~start ~span ~depth =
  if span <= 0.0 then ()
  else begin
    if depth > t.config.max_chain then
      raise (Zeno { automaton = st.automaton.Automaton.name; time = start });
    let flow = st.location.Location.flow in
    let derivatives = Flow.derivatives flow ~time:start st.valuation in
    let tentative = Valuation.advance st.valuation derivatives span in
    let invariant = st.location.Location.invariant in
    if Guard.holds invariant tentative then st.valuation <- tentative
    else begin
      (* Bisect for the largest alpha in [0,1] keeping the invariant. *)
      let from = st.valuation in
      let alpha = ref 0.0 in
      let width = ref 0.5 in
      for _ = 1 to 30 do
        let candidate = !alpha +. !width in
        let v = Valuation.interpolate ~from ~target:tentative candidate in
        if Guard.holds invariant v then alpha := candidate;
        width := !width /. 2.0
      done;
      st.valuation <- Valuation.interpolate ~from ~target:tentative !alpha;
      let boundary_time = start +. (!alpha *. span) in
      let saved_now = t.now in
      t.now <- boundary_time;
      (match enabled_spontaneous st with
      | Some edge -> fire t st edge ~forced:true
      | None ->
          raise
            (Time_block
               {
                 automaton = st.automaton.Automaton.name;
                 location = st.location.Location.name;
                 time = boundary_time;
               }));
      t.now <- saved_now;
      advance_automaton t st ~start:boundary_time
        ~span:(span -. (!alpha *. span))
        ~depth:(depth + 1)
    end
  end

let sample t =
  List.iter
    (fun (automaton, var) ->
      match Hashtbl.find_opt t.states automaton with
      | None -> ()
      | Some st ->
          record t
            (Trace.Sample
               { automaton; var; value = Valuation.get st.valuation var }))
    t.config.sample_vars

(** Advance the whole system by one step of [config.dt]. *)
let step t =
  stabilize t;
  let start = t.now in
  let span = t.config.dt in
  List.iter
    (fun name ->
      let st = state t name in
      if not st.halted then
        advance_automaton t st ~start ~span:(span *. st.rate) ~depth:0)
    t.order;
  t.now <- start +. span;
  stabilize t;
  if t.config.sample_vars <> [] && t.now >= t.next_sample -. 1e-12 then begin
    sample t;
    t.next_sample <- t.next_sample +. t.config.sample_period
  end

let run t ~until =
  while t.now < until -. 1e-12 do
    step t
  done

(** Deliver an environment stimulus to one automaton at the current time
    (used by scenarios for "at any time" environment transitions, e.g.
    the surgeon's request in the paper's emulation). Returns [true] if a
    triggered edge consumed it. *)
let inject t ~receiver ~root =
  record t (Trace.Message_sent { sender = "env"; root });
  let consumed = deliver t ~receiver ~root in
  stabilize t;
  consumed
