(** Synchronization labels.

    A label has a root (the event) and a prefix encoding the automaton's
    role for that event (Section II-A, item 8):

    - [!l]  — the sender of event [l]                → {!Send}
    - [?l]  — a reliable receiver of [l]             → {!Recv}
    - [??l] — an unreliable (e.g. wireless) receiver → {!Recv_lossy}
    - internal labels without receivers omit the [!] → {!Internal}

    Labels with different prefixes or roots are distinct labels, but they
    are {e related} through the shared root: the executor routes a fired
    [Send l] to every automaton listening on [Recv l] or [Recv_lossy l],
    with loss possible only on the lossy form. *)

type t =
  | Internal of string
  | Send of string
  | Recv of string
  | Recv_lossy of string

let root = function
  | Internal r | Send r | Recv r | Recv_lossy r -> r

let is_receive = function
  | Recv _ | Recv_lossy _ -> true
  | Internal _ | Send _ -> false

let is_lossy = function
  | Recv_lossy _ -> true
  | Internal _ | Send _ | Recv _ -> false

let is_send = function
  | Send _ -> true
  | Internal _ | Recv _ | Recv_lossy _ -> false

let is_internal = function
  | Internal _ -> true
  | Send _ | Recv _ | Recv_lossy _ -> false

let equal a b =
  match (a, b) with
  | Internal x, Internal y
  | Send x, Send y
  | Recv x, Recv y
  | Recv_lossy x, Recv_lossy y ->
      String.equal x y
  | _ -> false

let pp ppf = function
  | Internal r -> Fmt.string ppf r
  | Send r -> Fmt.pf ppf "!%s" r
  | Recv r -> Fmt.pf ppf "?%s" r
  | Recv_lossy r -> Fmt.pf ppf "??%s" r
