(** Synchronization labels (Section II-A item 8): a root (the event) and
    a prefix encoding the automaton's role — [!l] send, [?l] reliable
    receive, [??l] unreliable (wireless) receive, bare internal. *)

type t =
  | Internal of string
  | Send of string
  | Recv of string
  | Recv_lossy of string

val root : t -> string
val is_receive : t -> bool
val is_lossy : t -> bool
val is_send : t -> bool
val is_internal : t -> bool
val equal : t -> t -> bool
val pp : t Fmt.t
