(** Guards and invariants: conjunctions of half-space atoms [x ⋈ c]
    (Section II-A items 3 and 6). Closed under the operations the
    executor needs and coinciding with clock constraints on the timed
    fragment used by the model checker. *)

type cmp = Lt | Le | Gt | Ge | Eq

type atom = { var : Var.t; cmp : cmp; bound : float }

type t = atom list
(** Conjunction; [[]] is [true]. *)

val always : t

val eps : float
(** Numeric slack used by all comparisons (guards must enable when a
    fixed-step executor lands epsilon short of a threshold). *)

val atom : Var.t -> cmp -> float -> atom

val ( <. ) : Var.t -> float -> atom
val ( <=. ) : Var.t -> float -> atom
val ( >. ) : Var.t -> float -> atom
val ( >=. ) : Var.t -> float -> atom
val ( =. ) : Var.t -> float -> atom

val conj : atom list -> t
val atom_holds : atom -> float -> bool
val holds : t -> Valuation.t -> bool
val vars : t -> Var.Set.t

val bounds : t -> Var.t -> float option * float option
(** Interval [(lo, hi)] the conjunction implies for a variable ([None] =
    unbounded on that side; strictness is dropped, matching the
    executor's [eps]-slack semantics). *)

val compatible : t -> t -> bool
(** Per-variable interval emptiness test: [false] certifies the
    conjunction of both guards is unsatisfiable; [true] is inconclusive
    (no single-variable contradiction). *)

val time_to_satisfy : atom -> value:float -> rate:float -> float option
(** Least [d >= 0] such that the atom holds after linear evolution;
    [None] if never. *)

val time_to_violate : atom -> value:float -> rate:float -> float option
(** Least [d >= 0] such that the atom stops holding; [None] if it holds
    forever (or never held). *)

val invariant_horizon :
  t -> Valuation.t -> (Var.t -> float) -> float option
(** Earliest violation time of a conjunction under per-variable constant
    rates. *)

val pp_cmp : cmp Fmt.t
val pp_atom : atom Fmt.t
val pp : t Fmt.t
