(** Edges (discrete transitions) of a hybrid automaton.

    An edge [e = (v, v')] with guard set [g(e)], reset [r_e] and optional
    synchronization label [syn(e)] (Section II-A, items 5–8).

    Urgency is an executor-level annotation refining the paper's informal
    "transits when …" prose into executable semantics:

    - {!Eager}: fires as soon as its guard holds (lease expirations,
      dwell-time transitions such as "if ξN dwells continuously in
      'Entering' for T^max_enter,N, it transits to 'Risky Core'").
    - {!Delayed}: may fire any time its guard holds; the executor only
      forces it when the location invariant is about to be violated, and
      the model checker explores all firing times. Environment choices
      ("can send event … at any time") are modeled as receive edges
      triggered by scenario stimuli instead, mirroring the paper's own
      emulation of the surgeon by random timers.

    Edges whose label is a receive ([?l] / [??l]) fire only upon event
    delivery, never spontaneously. *)

type urgency = Eager | Delayed

type t = {
  src : string;
  dst : string;
  guard : Guard.t;
  reset : Reset.t;
  label : Label.t option;
  urgency : urgency;
}

let make ?(guard = Guard.always) ?(reset = Reset.identity) ?label
    ?(urgency = Eager) ~src ~dst () =
  { src; dst; guard; reset; label; urgency }

let is_triggered edge =
  match edge.label with Some l -> Label.is_receive l | None -> false

let is_spontaneous edge = not (is_triggered edge)

let trigger_root edge =
  match edge.label with
  | Some (Label.Recv r | Label.Recv_lossy r) -> Some r
  | _ -> None

let send_root edge =
  match edge.label with Some (Label.Send r) -> Some r | _ -> None

let pp ppf e =
  Fmt.pf ppf "%s -> %s [%a]%a%s" e.src e.dst Guard.pp e.guard
    (Fmt.option (fun ppf l -> Fmt.pf ppf " %a" Label.pp l))
    e.label
    (match e.urgency with Eager -> "" | Delayed -> " (delayed)")
