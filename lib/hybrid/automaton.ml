(** Hybrid automata.

    The tuple [A = (~x(t), V, inv, F, E, g, R, L, syn, Φ0)] of Section
    II-A, with [inv]/[F] folded into {!Location.t}, [g]/[R]/[syn] folded
    into {!Edge.t}, and a single deterministic initial state (the paper's
    design-pattern automata all start from "Fall-Back" with all data
    state variables zero; {!initial_values} covers initial sets such as
    [H_vent(0) ∈ [0, 0.3]] by explicit choice of a representative). *)

type t = {
  name : string;
  vars : Var.t list;
  locations : Location.t list;
  edges : Edge.t list;
  initial_location : string;
  initial_values : (Var.t * float) list;
}

let make ~name ~vars ~locations ~edges ~initial_location
    ?(initial_values = []) () =
  { name; vars; locations; edges; initial_location; initial_values }

let location_names a = List.map (fun (l : Location.t) -> l.name) a.locations

let find_location a name =
  List.find_opt (fun (l : Location.t) -> String.equal l.name name) a.locations

let location_exn a name =
  match find_location a name with
  | Some l -> l
  | None ->
      Fmt.invalid_arg "automaton %s has no location %s" a.name name

let edges_from a src =
  List.filter (fun (e : Edge.t) -> String.equal e.src src) a.edges

let is_risky a name = Location.is_risky (location_exn a name)

let risky_locations a =
  List.filter_map
    (fun (l : Location.t) -> if Location.is_risky l then Some l.name else None)
    a.locations

let initial_valuation a =
  List.fold_left
    (fun acc (v, x) -> Valuation.set acc v x)
    (Valuation.zero a.vars) a.initial_values

(** Roots this automaton listens to (over [?l] or [??l] edges) anywhere. *)
let listened_roots a =
  List.fold_left
    (fun acc (e : Edge.t) ->
      match Edge.trigger_root e with
      | Some r -> Var.Set.add r acc
      | None -> acc)
    Var.Set.empty a.edges

(** Roots this automaton can send ([!l]) or raise internally. *)
let emitted_roots a =
  List.fold_left
    (fun acc (e : Edge.t) ->
      match e.label with
      | Some (Label.Send r) | Some (Label.Internal r) -> Var.Set.add r acc
      | _ -> acc)
    Var.Set.empty a.edges

let all_labels a = List.filter_map (fun (e : Edge.t) -> e.label) a.edges

(** Structural well-formedness. Returns the list of violations (empty =
    well-formed): duplicate location names, dangling edge endpoints,
    undeclared variables in guards/resets/initial values, missing or
    invariant-violating initial state. *)
let validate a =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
  let declared = Var.Set.of_list a.vars in
  (* hashed location table: validation stays linear in |locations| +
     |edges| (the synthesized pattern supervisor at N >= 1000 has
     thousands of each, so the old nested scans dominated start-up) *)
  let loc_table = Hashtbl.create (2 * List.length a.locations) in
  List.iter
    (fun (l : Location.t) ->
      if Hashtbl.mem loc_table l.name then
        err "duplicate location name %S" l.name
      else Hashtbl.replace loc_table l.name l)
    a.locations;
  (match Hashtbl.find_opt loc_table a.initial_location with
  | None -> err "initial location %S does not exist" a.initial_location
  | Some l ->
      let v0 = initial_valuation a in
      if not (Guard.holds l.invariant v0) then
        err "initial valuation violates invariant of %S" l.name);
  List.iter
    (fun (v, _) ->
      if not (Var.Set.mem v declared) then
        err "initial value for undeclared variable %S" v)
    a.initial_values;
  let check_vars context vars =
    Var.Set.iter
      (fun v ->
        if not (Var.Set.mem v declared) then
          err "%s mentions undeclared variable %S" context v)
      vars
  in
  List.iter
    (fun (l : Location.t) ->
      check_vars (Printf.sprintf "invariant of %S" l.name)
        (Guard.vars l.invariant))
    a.locations;
  List.iteri
    (fun i (e : Edge.t) ->
      if not (Hashtbl.mem loc_table e.src) then
        err "edge #%d has unknown source %S" i e.src;
      if not (Hashtbl.mem loc_table e.dst) then
        err "edge #%d has unknown destination %S" i e.dst;
      check_vars (Printf.sprintf "guard of edge #%d" i) (Guard.vars e.guard);
      check_vars (Printf.sprintf "reset of edge #%d" i) (Reset.vars e.reset))
    a.edges;
  match !errs with [] -> Ok () | errors -> Error (List.rev errors)

let validate_exn a =
  match validate a with
  | Ok () -> a
  | Error errors ->
      Fmt.invalid_arg "automaton %s is malformed: %s" a.name
        (String.concat "; " errors)

(** Definition 2 (Hybrid Automata Independence): disjoint data state
    variables, disjoint location names, disjoint synchronization labels. *)
let independent a b =
  let disjoint_vars =
    Var.Set.is_empty
      (Var.Set.inter (Var.Set.of_list a.vars) (Var.Set.of_list b.vars))
  in
  let disjoint_locations =
    not
      (List.exists
         (fun n -> List.exists (String.equal n) (location_names b))
         (location_names a))
  in
  let labels_of x =
    List.sort_uniq compare (all_labels x)
  in
  let disjoint_labels =
    not
      (List.exists
         (fun l -> List.exists (Label.equal l) (labels_of b))
         (labels_of a))
  in
  disjoint_vars && disjoint_locations && disjoint_labels

(** Definition 3 (Simple Hybrid Automaton):
    1. all locations share one invariant;
    2. every [(v, ~s)] with [v] initial and [~s] in the invariant is a
       possible initial state — in our deterministic representation this
       degenerates to requiring the initial values to be unconstrained by
       the shared invariant beyond membership, which holds by
       construction; we check the representative lies in the invariant;
    3. [(v, 0)] is initial — the zero data state satisfies the shared
       invariant and {!initial_values} is empty (all-zero start). *)
let is_simple a =
  match a.locations with
  | [] -> false
  | first :: rest ->
      let shared_invariant =
        List.for_all
          (fun (l : Location.t) -> l.invariant = first.Location.invariant)
          rest
      in
      let zero_initial = a.initial_values = [] in
      let zero_in_invariant =
        Guard.holds first.Location.invariant (Valuation.zero a.vars)
      in
      shared_invariant && zero_initial && zero_in_invariant

let pp ppf a =
  Fmt.pf ppf "@[<v>automaton %s@,vars: %a@,init: %s@,%a@,%a@]" a.name
    (Fmt.list ~sep:(Fmt.any ", ") Var.pp)
    a.vars a.initial_location
    (Fmt.list ~sep:Fmt.cut Location.pp)
    a.locations
    (Fmt.list ~sep:Fmt.cut Edge.pp)
    a.edges
