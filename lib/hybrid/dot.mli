(** Graphviz export for hybrid automata — the repository's analogue of
    the paper's automata figures. Risky locations are outlined in red;
    edges carry guard/label/reset annotations.

    The [?highlight_*] arguments mark diagnosed sites (crimson fill, the
    annotation appended to the label and set as the SVG tooltip); keys
    are location names / [(src, dst)] pairs, values the annotation text
    (e.g. a lint diagnostic code). *)

val automaton : Automaton.t Fmt.t

val to_string :
  ?highlight_locations:(string * string) list ->
  ?highlight_edges:((string * string) * string) list ->
  Automaton.t ->
  string

val write_file :
  ?highlight_locations:(string * string) list ->
  ?highlight_edges:((string * string) * string) list ->
  string ->
  Automaton.t ->
  unit
