(** Edges: discrete transitions with guard, reset and optional
    synchronization label (Section II-A items 5–8), plus an executor
    urgency annotation: {!Eager} fires as soon as enabled (lease
    expirations, dwell-time steps), {!Delayed} fires nondeterministically
    and is forced only at invariant boundaries. Receive-labelled edges
    fire only upon event delivery. *)

type urgency = Eager | Delayed

type t = {
  src : string;
  dst : string;
  guard : Guard.t;
  reset : Reset.t;
  label : Label.t option;
  urgency : urgency;
}

val make :
  ?guard:Guard.t ->
  ?reset:Reset.t ->
  ?label:Label.t ->
  ?urgency:urgency ->
  src:string ->
  dst:string ->
  unit ->
  t

val is_triggered : t -> bool
val is_spontaneous : t -> bool
val trigger_root : t -> string option
val send_root : t -> string option
val pp : t Fmt.t
