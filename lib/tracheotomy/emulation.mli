(** Assembly of the laser-tracheotomy wireless CPS emulation (Fig. 7):
    supervisor + wired SpO2 sensor (ξ0), pattern-elaborated ventilator
    (ξ1), surgeon-operated laser-scalpel (ξ2), patient model, ZigBee-like
    star network under WiFi-style interference. *)

type config = {
  params : Pte_core.Params.t;
  lease : bool;  (** [false] = the paper's "without Lease" baseline. *)
  loss : Pte_net.Loss.kind;
  e_ton : float;  (** E(Ton) — paper: 30 s. *)
  e_toff : float;  (** E(Toff) — paper: 18 s or 6 s. *)
  horizon : float;  (** trial length — paper: 30 minutes. *)
  dwell_bound : float;  (** Rule 1 bound for the trial — paper: 60 s. *)
  spo2_threshold : float;  (** Θ_SpO2 — paper: 92%. *)
  seed : int;
  dt : float;  (** executor step. *)
  mac_retries : int;
      (** 802.15.4 MAC retransmissions per frame (0 disables). *)
  faults : Pte_faults.Plan.t;
      (** Scripted fault plan injected on top of the stochastic loss
          model ({!Pte_faults.Plan.empty} = none). *)
}

val default : config
(** The paper's trial setup: case-study constants, lease on, 25% bursty
    loss, E(Ton)=30 s, E(Toff)=18 s, 1800 s, 60 s bound, Θ=92%, 10 ms
    step. *)

type built = {
  config : config;
  engine : Pte_sim.Engine.t;
  system : Pte_hybrid.System.t;
  net : Pte_net.Star.t;
  spec : Pte_core.Rules.t;
  laser : string;
  ventilator : string;
  spo2_stats : Pte_util.Stats.Online.t;
  faults_handle : Pte_faults.Injector.handle;
      (** Match/fire counters of the config's packet faults. *)
}

val build : config -> built
(** Assemble automata, network, couplings (lungs, oximeter) and surgeon
    timers. *)

val run : built -> Pte_hybrid.Trace.t
(** Run to the horizon and return the trace. *)
