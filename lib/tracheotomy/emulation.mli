(** Assembly of the laser-tracheotomy wireless CPS emulation (Fig. 7):
    supervisor + wired SpO2 sensor (ξ0), pattern-elaborated ventilator
    (ξ1), surgeon-operated laser-scalpel (ξ2), patient model, ZigBee-like
    star network under WiFi-style interference. *)

type config = {
  params : Pte_core.Params.t;
  lease : bool;  (** [false] = the paper's "without Lease" baseline. *)
  loss : Pte_net.Loss.kind;
  e_ton : float;  (** E(Ton) — paper: 30 s. *)
  e_toff : float;  (** E(Toff) — paper: 18 s or 6 s. *)
  horizon : float;  (** trial length — paper: 30 minutes. *)
  dwell_bound : float;  (** Rule 1 bound for the trial — paper: 60 s. *)
  spo2_threshold : float;  (** Θ_SpO2 — paper: 92%. *)
  seed : int;
  dt : float;  (** executor step. *)
  mac_retries : int;
      (** 802.15.4 MAC retransmissions per frame (0 disables). *)
  faults : Pte_faults.Plan.t;
      (** Scripted fault plan injected on top of the stochastic loss
          model ({!Pte_faults.Plan.empty} = none). *)
  transport : Pte_net.Transport.mode;
      (** [`Bare] (default) is the paper's single-shot radio;
          [`Reliable _] adds ACK/retransmission and makes {!build}
          recheck Theorem 1 with the retry budget folded into the
          message-delay terms (raises [Invalid_argument] when the
          budget breaks c1–c7). *)
  degraded : Degraded.config option;
      (** Supervisor degraded-safe-mode ([None] = disabled). *)
}

val default : config
(** The paper's trial setup: case-study constants, lease on, 25% bursty
    loss, E(Ton)=30 s, E(Toff)=18 s, 1800 s, 60 s bound, Θ=92%, 10 ms
    step, bare transport, no degraded mode. *)

type built = {
  config : config;
  engine : Pte_sim.Engine.t;
  system : Pte_hybrid.System.t;
  net : Pte_net.Star.t;
  spec : Pte_core.Rules.t;
  laser : string;
  ventilator : string;
  spo2_stats : Pte_util.Stats.Online.t;
  faults_handle : Pte_faults.Injector.handle;
      (** Match/fire counters of the config's packet faults. *)
  transport : Pte_net.Transport.t;
      (** Delivery/retransmission/dedup counters of the trial. *)
  degraded : Degraded.handle option;
      (** Degraded-safe-mode entry counters (when configured). *)
}

val build : config -> built
(** Assemble automata, network, couplings (lungs, oximeter) and surgeon
    timers. *)

val run : built -> Pte_hybrid.Trace.t
(** Run to the horizon and return the trace. *)
