(** Trial runner: executes emulation trials and extracts the Table-I
    statistics plus the channel/SpO2 diagnostics the paper reports in
    prose. *)

type result = {
  config : Emulation.config;
  emissions : int;  (** # of laser emissions (entries into "Risky Core"). *)
  failures : int;  (** # of PTE safety-rule violation episodes. *)
  evt_to_stop : int;
      (** # of evtToStop: lease expiry forced the laser to stop. *)
  vent_lease_expiries : int;
  aborts : int;  (** supervisor abort chains started (SpO2 below Θ). *)
  requests : int;  (** surgeon requests issued. *)
  violations : Pte_core.Monitor.violation list;
  longest_pause : float;
  longest_emission : float;
  min_spo2 : float;
  messages_sent : int;
  effective_loss_rate : float;
  faults_fired : int;
      (** # of scripted packet faults that fired (0 unless the config
          carries a {!Pte_faults.Plan.t}). *)
  retransmissions : int;
      (** transport-layer retries (0 under the bare transport). *)
  gave_up : int;  (** sends lost after the full retry budget. *)
  dups_suppressed : int;
      (** replayed copies squashed at the receiver by (src, seq). *)
  degraded_entries : int;
      (** # of times the supervisor entered degraded-safe-mode. *)
  max_consec_losses : int;
      (** deepest per-sender feedback blackout — the high-water mark of
          {!Pte_net.Transport.consecutive_losses} over the trial, a
          component of the {!Certify} level function. 0 under the bare
          transport (no feedback to lose). *)
  worst_latency : float;
      (** largest observed send-to-delivery delay across delivered
          radio sends, seconds
          ({!Pte_net.Transport.stats.worst_latency}) — the measured
          counterpart of the mode's closed-form latency bound. *)
  mode_switches_up : int;
      (** adaptive transport: committed escalations healthy →
          degraded ([0] in every static mode). *)
  mode_switches_down : int;
      (** adaptive transport: committed de-escalations degraded →
          healthy. *)
  switch_refusals : int;
      (** adaptive transport: switches the safe-switch protocol
          refused after the Theorem-1 recheck rejected the candidate
          mode (the transport stayed in its current mode). *)
  schedule : Pte_sched.Schedule.t option;
      (** the concrete round schedule the transport synthesized
          ([Some _] exactly in scheduled mode; in adaptive mode, the
          degraded schedule in force at trial end — [Some _] iff the
          trial ended in the degraded tier); its
          {!Pte_sched.Schedule.worst_case_latency} is the bound
          [worst_latency] must stay under. *)
}

val run : Emulation.config -> result

(** {2 Replicated trials (campaign-backed)}

    Statistics over [reps] independently-seeded replicates of each trial
    configuration, executed as a {!Pte_campaign} Monte-Carlo campaign:
    domain-parallel, deterministic for a given master seed at any worker
    count. Replicate 0 of every cell keeps the cell's literal
    [Emulation.config.seed], so [reps = 1] reproduces the historical
    fixed-seed numbers exactly; replicates 1.. draw their seeds from the
    job's split-derived stream. *)

(** Per-metric summaries (mean, stddev, 95% CI, min/max) over the
    replicates of one trial configuration. *)
type aggregate = {
  reps : int;  (** replicates that completed. *)
  failed_jobs : int;  (** replicates that crashed (exhausted retries). *)
  failure_reps : int;  (** replicates with >= 1 PTE violation episode. *)
  failure_rate : Pte_campaign.Aggregate.summary;
      (** the 0/1 "failed" indicator summary; its [wilson] interval is
          the honest CI on the violation rate (non-degenerate at 0
          failing replicates, unlike the normal-approximation ci95). *)
  emissions : Pte_campaign.Aggregate.summary;
  failures : Pte_campaign.Aggregate.summary;
  evt_to_stop : Pte_campaign.Aggregate.summary;
  aborts : Pte_campaign.Aggregate.summary;
  requests : Pte_campaign.Aggregate.summary;
  longest_pause : Pte_campaign.Aggregate.summary;
  longest_emission : Pte_campaign.Aggregate.summary;
  min_spo2 : Pte_campaign.Aggregate.summary;
  loss_rate : Pte_campaign.Aggregate.summary;
}

(** One campaign cell: the historical fixed-seed run plus the aggregate
    over all replicates ([agg.reps = 1] collapses to [rep0]). *)
type replicated = { rep0 : result; agg : aggregate }

val metrics_of_result : result -> (string * float) list
(** The metric row a trial contributes to campaign aggregation (also the
    JSONL checkpoint payload). *)

val aggregate_of_cell : Pte_campaign.Aggregate.cell -> aggregate

val run_cells :
  ?workers:int ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?retries:int ->
  reps:int ->
  seed:int ->
  Emulation.config array ->
  Emulation.config Pte_campaign.Runner.result * result option array
(** Low-level entry: run an arbitrary grid of trial configurations as a
    campaign. The returned array holds the full {!result} of every job
    executed in this process ([None] for jobs skipped via [resume]). *)

val table1_cells : seed:int -> (string * float * Emulation.config) array
(** The four Table-I cells [(mode, E(Toff), config)] with their
    historical seeds [seed .. seed+3] — the grid behind {!table1}, for
    front-ends that drive {!run_cells} themselves (e.g. with
    checkpointing). *)

val table1_row :
  ?reps:int -> ?workers:int -> lease:bool -> e_toff:float -> seed:int ->
  unit -> replicated
(** One Table-I row: 30-minute trials at the paper's constants. *)

val table1 :
  ?seed:int -> ?reps:int -> ?workers:int -> unit ->
  (string * float * replicated) list
(** The full Table I: {with, without} lease × E(Toff) ∈ {18 s, 6 s},
    run as one campaign of [4 * reps] jobs. *)

val loss_sweep :
  ?reps:int -> ?workers:int -> ?seed:int -> ?horizon:float ->
  losses:float list -> unit ->
  (float * replicated * replicated) list
(** The X1 extension experiment: for each average loss rate, a
    with-lease and a without-lease cell (sharing a base seed, as the
    original serial sweep did). Returns [(loss, with, without)] rows. *)

val availability_sweep :
  ?reps:int -> ?workers:int -> ?seed:int -> ?horizon:float ->
  ?transport_config:Pte_net.Transport.config ->
  losses:float list -> unit ->
  (float * replicated * replicated) list
(** The A1 availability experiment: per loss rate, a with-lease bare
    cell and a with-lease reliable cell sharing a base seed. Returns
    [(loss, bare, reliable)] rows. *)

val transport_matrix :
  ?reps:int -> ?workers:int -> ?seed:int -> ?horizon:float ->
  transports:(string * Pte_net.Transport.mode) list ->
  losses:float list -> unit ->
  (float * (string * replicated) list) list
(** The A2 availability experiment: per loss rate, one with-lease cell
    per labelled transport mode, all sharing a base seed (the modes
    face the same channel realization in replicate 0). Rows keep the
    transport order given. *)

val pp_result : result Fmt.t

val pp_aggregate : aggregate Fmt.t
(** Mean ±CI of the headline metrics, for CLI replicate summaries. *)
