(** Fault-injection campaigns over the laser-tracheotomy system.

    Two drivers on top of {!Pte_faults}:

    - {!coverage}: enumerate every protocol message root × occurrence of
      the N=2 system, auto-generate a one-shot drop plan per target, and
      run each under both lease modes. Message drops are exactly the
      paper's fault model, so Theorem 1 predicts the with-lease column
      stays at 0 violations while the without-lease column degrades —
      the coverage matrix is an executable restatement of Table I, one
      targeted loss at a time.

    - {!fuzz}: random plans (drops, corruption, delays, duplicates,
      crashes, clock drift) against the {e with-lease} system. Crash and
      drift sit outside the paper's message-loss fault model, so
      violations here are expected and interesting: each one is shrunk
      to a minimal plan and emitted as a replayable (plan, seed)
      artifact. *)

module Plan = Pte_faults.Plan

(* ------------------------------------------------------------------ *)
(* Protocol vocabulary of the N=2 case-study system                    *)
(* ------------------------------------------------------------------ *)

let messages ?(params = Pte_core.Params.case_study) () =
  let vent = params.Pte_core.Params.entities.(0).Pte_core.Params.name in
  let laser = (Pte_core.Params.initializer_ params).Pte_core.Params.name in
  let up entity root = { Pte_faults.Fuzz.root; site = { Plan.entity; direction = Plan.Up } } in
  let down entity root =
    { Pte_faults.Fuzz.root; site = { Plan.entity; direction = Plan.Down } }
  in
  [
    (* initializer uplink *)
    up laser (Pte_core.Events.request ~initializer_:laser);
    up laser (Pte_core.Events.cancel_up ~initializer_:laser);
    up laser (Pte_core.Events.exit_up ~initializer_:laser);
    (* participant uplink *)
    up vent (Pte_core.Events.lease_approve ~participant:vent);
    up vent (Pte_core.Events.lease_deny ~participant:vent);
    up vent (Pte_core.Events.exited_up ~participant:vent);
    (* downlinks *)
    down vent (Pte_core.Events.lease_req ~participant:vent);
    down vent (Pte_core.Events.cancel_down ~entity:vent);
    down vent (Pte_core.Events.abort_down ~entity:vent);
    down laser (Pte_core.Events.approve ~initializer_:laser);
    down laser (Pte_core.Events.cancel_down ~entity:laser);
    down laser (Pte_core.Events.abort_down ~entity:laser);
  ]

let vocabulary ?params ~horizon () =
  let params' = Option.value params ~default:Pte_core.Params.case_study in
  {
    Pte_faults.Fuzz.messages = messages ?params ();
    entities =
      [
        params'.Pte_core.Params.entities.(0).Pte_core.Params.name;
        (Pte_core.Params.initializer_ params').Pte_core.Params.name;
      ];
    horizon;
  }

(* ------------------------------------------------------------------ *)
(* Coverage campaign                                                   *)
(* ------------------------------------------------------------------ *)

type target = {
  message : Pte_faults.Fuzz.message;
  occurrence : int;
  plan : Plan.t;  (** the auto-generated one-shot drop plan *)
}

let targets ?params ?(occurrences = 2) () =
  List.concat_map
    (fun (m : Pte_faults.Fuzz.message) ->
      List.init occurrences (fun k ->
          {
            message = m;
            occurrence = k;
            plan =
              { Plan.empty with
                Plan.packet_faults =
                  [
                    Plan.drop_nth ~entity:m.site.Plan.entity
                      ~direction:m.site.Plan.direction ~root:m.root k;
                  ];
                node_faults = [];
              };
          }))
    (messages ?params ())

type coverage_row = {
  target : target;
  fired : bool;  (** did the targeted frame exist (drop actually fired)? *)
  with_lease : Trial.result;
  without_lease : Trial.result;
}

type coverage = {
  rows : coverage_row list;
  roots_total : int;
  roots_targeted : int;  (** always all of them: plans cover every root *)
  roots_exercised : int;  (** roots whose drop fired in >= 1 trial *)
  with_lease_violations : int;  (** total episodes, with lease — want 0 *)
  without_lease_violations : int;  (** total episodes, no lease — want > 0 *)
}

(** Trial configuration for one coverage cell. The stochastic channel is
    perfect and MAC retries are off so the scripted drop is the {e only}
    loss in the trial — pure fault isolation. *)
let coverage_config ~base ~lease ~seed (t : target) =
  {
    base with
    Emulation.lease;
    seed;
    loss = Pte_net.Loss.Perfect;
    mac_retries = 0;
    faults = t.plan;
  }

let coverage ?workers ?checkpoint ?(resume = false) ?params ?(occurrences = 2)
    ?(horizon = 600.0) ?(seed = 7100)
    ?(transport : Pte_net.Transport.mode = `Bare) () =
  let base = { Emulation.default with horizon; transport } in
  let targets = targets ?params ~occurrences () in
  (* cell layout: for target i, job 2i = with lease, 2i+1 = without *)
  let cells =
    Array.of_list
      (List.concat
         (List.mapi
            (fun i t ->
              [
                coverage_config ~base ~lease:true ~seed:(seed + (2 * i)) t;
                coverage_config ~base ~lease:false ~seed:(seed + (2 * i) + 1) t;
              ])
            targets))
  in
  let _campaign, full =
    Trial.run_cells ?workers ?checkpoint ~resume ~reps:1 ~seed cells
  in
  let result j =
    match full.(j) with
    | Some r -> r
    | None -> invalid_arg "Robustness.coverage: missing trial result"
  in
  let rows =
    List.mapi
      (fun i t ->
        let with_lease = result (2 * i) in
        let without_lease = result ((2 * i) + 1) in
        { target = t; fired = with_lease.Trial.faults_fired > 0; with_lease; without_lease })
      targets
  in
  let roots = messages ?params () in
  let exercised (m : Pte_faults.Fuzz.message) =
    List.exists
      (fun row -> row.target.message.Pte_faults.Fuzz.root = m.root && row.fired)
      rows
  in
  {
    rows;
    roots_total = List.length roots;
    roots_targeted = List.length roots;
    roots_exercised = List.length (List.filter exercised roots);
    with_lease_violations =
      List.fold_left (fun acc r -> acc + r.with_lease.Trial.failures) 0 rows;
    without_lease_violations =
      List.fold_left (fun acc r -> acc + r.without_lease.Trial.failures) 0 rows;
  }

let pp_coverage ppf c =
  let dir = function Plan.Up -> "up" | Plan.Down -> "down" in
  Fmt.pf ppf "@[<v>%-38s %-16s %3s  %5s  %11s %11s@,"
    "root" "link" "occ" "fired" "viol(lease)" "viol(none)";
  List.iter
    (fun r ->
      let m = r.target.message in
      Fmt.pf ppf "%-38s %-16s %3d  %5s  %11d %11d@," m.Pte_faults.Fuzz.root
        (m.site.Plan.entity ^ "/" ^ dir m.site.Plan.direction)
        r.target.occurrence
        (if r.fired then "yes" else "no")
        r.with_lease.Trial.failures r.without_lease.Trial.failures)
    c.rows;
  Fmt.pf ppf
    "roots targeted: %d/%d (100%%)  exercised: %d/%d@,\
     with-lease violations: %d (expect 0)@,\
     without-lease violations: %d (expect > 0)@]"
    c.roots_targeted c.roots_total c.roots_exercised c.roots_total
    c.with_lease_violations c.without_lease_violations

(* ------------------------------------------------------------------ *)
(* Fuzz + shrink                                                       *)
(* ------------------------------------------------------------------ *)

type artifact = {
  plan : Plan.t;
  trial_seed : int;
  horizon : float;
  lease : bool;
  failures : int;  (** violation episodes the minimal plan reproduces *)
}

let artifact_config a =
  {
    Emulation.default with
    lease = a.lease;
    horizon = a.horizon;
    seed = a.trial_seed;
    loss = Pte_net.Loss.Perfect;
    mac_retries = 0;
    faults = a.plan;
  }

let replay a = Trial.run (artifact_config a)

let artifact_to_json a =
  let module J = Pte_campaign.Json in
  J.Obj
    [
      ("type", J.Str "pte-fault-artifact");
      ("plan", Plan.to_json a.plan);
      ("trial_seed", J.Num (float_of_int a.trial_seed));
      ("horizon", J.Num a.horizon);
      ("lease", J.Bool a.lease);
      ("failures", J.Num (float_of_int a.failures));
    ]

let artifact_of_json json =
  let module J = Pte_campaign.Json in
  let ( let* ) = Result.bind in
  match json with
  | J.Obj members ->
      let field name =
        match List.assoc_opt name members with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "artifact: missing %S" name)
      in
      let num name =
        let* v = field name in
        match v with
        | J.Num n -> Ok n
        | _ -> Error (Printf.sprintf "artifact: %S must be a number" name)
      in
      let* plan_json = field "plan" in
      let* plan = Plan.of_json plan_json in
      let* trial_seed = num "trial_seed" in
      let* horizon = num "horizon" in
      let* lease =
        let* v = field "lease" in
        match v with
        | J.Bool b -> Ok b
        | _ -> Error "artifact: \"lease\" must be a boolean"
      in
      let failures = match num "failures" with Ok n -> int_of_float n | Error _ -> 0 in
      Ok { plan; trial_seed = int_of_float trial_seed; horizon; lease; failures }
  | _ -> Error "artifact: expected a JSON object"

let artifact_to_string a = Pte_campaign.Json.to_string (artifact_to_json a)

let artifact_of_string s =
  Result.bind (Pte_campaign.Json.of_string s) artifact_of_json

let save_artifact a path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (artifact_to_string a ^ "\n"))

let load_artifact path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      artifact_of_string (really_input_string ic n))

type fuzz_report = {
  trials : int;
  violating : int;  (** random plans that produced >= 1 violation *)
  artifacts : artifact list;  (** one shrunk artifact per violating plan *)
  oracle_calls : int;  (** trials replayed by the shrinker *)
}

let fuzz ?params ?(horizon = 300.0) ?(lease = true) ?(max_oracle_calls = 60)
    ?(log = ignore) ~seed ~trials () =
  let vocab = vocabulary ?params ~horizon () in
  let rng = Pte_util.Rng.create seed in
  let failures_of plan trial_seed =
    (Trial.run
       (artifact_config
          { plan; trial_seed; horizon; lease; failures = 0 }))
      .Trial.failures
  in
  let artifacts = ref [] in
  let violating = ref 0 in
  let oracle_calls = ref 0 in
  for i = 0 to trials - 1 do
    let plan_rng = Pte_util.Rng.split rng in
    let plan = Pte_faults.Fuzz.random_plan plan_rng vocab in
    let trial_seed = seed + (1000 * (i + 1)) in
    let failures = failures_of plan trial_seed in
    log (Printf.sprintf "fuzz %d/%d: %d violation(s)" (i + 1) trials failures);
    if failures > 0 then begin
      incr violating;
      let minimal, calls =
        Pte_faults.Shrink.shrink ~max_oracle_calls
          ~oracle:(fun candidate -> failures_of candidate trial_seed > 0)
          plan
      in
      oracle_calls := !oracle_calls + calls;
      let failures = failures_of minimal trial_seed in
      artifacts :=
        { plan = minimal; trial_seed; horizon; lease; failures } :: !artifacts
    end
  done;
  {
    trials;
    violating = !violating;
    artifacts = List.rev !artifacts;
    oracle_calls = !oracle_calls;
  }

let pp_artifact ppf a =
  Fmt.pf ppf "@[<v>%a@,seed %d, horizon %gs, lease %b -> %d violation(s)@]"
    Plan.pp a.plan a.trial_seed a.horizon a.lease a.failures

let pp_fuzz_report ppf r =
  Fmt.pf ppf "@[<v>fuzz: %d trials, %d violating, %d shrink replays@,%a@]"
    r.trials r.violating r.oracle_calls
    (Fmt.list ~sep:Fmt.cut pp_artifact)
    r.artifacts
