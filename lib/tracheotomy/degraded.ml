(** Supervisor degraded-safe-mode.

    The lease pattern already guarantees safety when the downlink dies:
    every remote's lease self-resets and the entities drift back to
    their safe locations within T^max_wait + T^max_LS1. What the pattern
    does {e not} do is stop the supervisor from optimistically starting
    new sessions into a black hole. This monitor watches the transport's
    per-sender consecutive-loss counter for the supervisor: after [k]
    consecutive sends without delivery confirmation it declares the
    channel gone, forces the wired approval input to 0 — the grant guard
    ([approval >= 0.5]) can then never fire, so no lease is granted or
    renewed — and holds that state for [hold] seconds before re-arming.
    With the event-driven transport the counter moves at {e confirmation
    time} — an exchange counts as a feedback loss only when its retry
    budget actually expires (up to {!Pte_net.Transport.worst_case_latency}
    after the send), not at the send instant — so the watchdog trips
    when the losses become known to the sender, as a real supervisor
    would observe them.
    The system rides the lease self-reset down to all-safe; entering and
    leaving the mode is counted so trials can report it. *)

type config = {
  k : int;  (** consecutive feedback losses that trip the mode. *)
  hold : float;  (** seconds to stay degraded before re-arming. *)
}

let default params =
  { k = 3; hold = Pte_core.Params.risky_dwell_bound params }

type handle = {
  config : config;
  mutable entries : int;  (** times the mode was entered. *)
  mutable active : bool;
  mutable entered_at : float list;  (** entry times, newest first. *)
  mutable release_at : float option;  (** hold expiry while active. *)
}

(* ------------------------------------------------------------------ *)
(* Watchdog-parameter synthesis: classify sweep trips, pick (k, hold)  *)
(* ------------------------------------------------------------------ *)

type trip_class = Justified | False_trip

(* A trip is justified when it fires inside a scripted blackout window
   (plus [slack] for the detection lag — the k-th loss only becomes
   known one transport resolution after the blackout starts, and
   losses already in flight at its end still surface afterwards). *)
let classify_trip ~blackout_start ~blackout_end ~slack ~entered_at =
  if entered_at >= blackout_start && entered_at < blackout_end +. slack then
    Justified
  else False_trip

(** One cell of the loss × k × hold sweep: a candidate watchdog
    parameterization exercised against a scripted blackout at one
    background loss level, its trips classified. *)
type sweep_cell = {
  sweep_loss : float;  (** background (non-blackout) average loss. *)
  sweep_k : int;
  sweep_hold : float;
  false_trips : int;  (** trips outside the blackout window (+slack). *)
  justified_trips : int;  (** trips inside it. *)
  detection_delay : float;
      (** first justified trip minus blackout start ([nan] if none). *)
  failures : int;  (** PTE violation episodes in the cell's trial. *)
}

(** The synthesized choice: a (k, hold) that tripped inside the
    blackout at {e every} background loss level swept, with its
    aggregate quality. *)
type choice = {
  chosen_k : int;
  chosen_hold : float;
  total_false_trips : int;
  worst_detection_delay : float;  (** max over the loss axis. *)
}

(* Pick the (k, hold) pair that is justified everywhere, never breaks
   PTE, and stays within the false-trip budget; among those, fastest
   worst-case detection wins, then the shorter hold (less availability
   given away), then the smaller k. *)
let synthesize ?(max_false_trips = 0) cells =
  let module M = Map.Make (struct
    type t = int * float

    let compare = compare
  end) in
  let grouped =
    List.fold_left
      (fun acc c ->
        let key = (c.sweep_k, c.sweep_hold) in
        let false_trips, justified_min, delay_max, failures =
          match M.find_opt key acc with
          | None -> (c.false_trips, c.justified_trips, c.detection_delay, c.failures)
          | Some (f, j, d, v) ->
              ( f + c.false_trips,
                min j c.justified_trips,
                (* nan poisons max via the comparison below, as it must:
                   an undetected blackout disqualifies the pair *)
                (if Float.is_nan d || Float.is_nan c.detection_delay then nan
                 else Float.max d c.detection_delay),
                v + c.failures )
        in
        M.add key (false_trips, justified_min, delay_max, failures) acc)
      M.empty cells
  in
  let candidates =
    M.fold
      (fun (k, hold) (false_trips, justified_min, delay_max, failures) acc ->
        if
          failures = 0 && justified_min >= 1
          && (not (Float.is_nan delay_max))
          && false_trips <= max_false_trips
        then
          {
            chosen_k = k;
            chosen_hold = hold;
            total_false_trips = false_trips;
            worst_detection_delay = delay_max;
          }
          :: acc
        else acc)
      grouped []
  in
  let better a b =
    let c = Float.compare a.worst_detection_delay b.worst_detection_delay in
    if c <> 0 then c
    else
      let c = Float.compare a.chosen_hold b.chosen_hold in
      if c <> 0 then c else Int.compare a.chosen_k b.chosen_k
  in
  match List.sort better candidates with [] -> None | best :: _ -> Some best

let pp_trip_class ppf = function
  | Justified -> Fmt.string ppf "justified"
  | False_trip -> Fmt.string ppf "false-trip"

let pp_sweep_cell ppf c =
  Fmt.pf ppf
    "loss:%g k:%d hold:%gs false:%d justified:%d detect:%a failures:%d"
    c.sweep_loss c.sweep_k c.sweep_hold c.false_trips c.justified_trips
    (fun ppf d ->
      if Float.is_nan d then Fmt.string ppf "-" else Fmt.pf ppf "%.1fs" d)
    c.detection_delay c.failures

let pp_choice ppf c =
  Fmt.pf ppf "k=%d hold=%gs (false-trips:%d worst-detection:%.1fs)" c.chosen_k
    c.chosen_hold c.total_false_trips c.worst_detection_delay

(* Registered after the oximeter's process, so within one instant the
   forced 0 overwrites the oximeter's fresh approval sample. The entry
   check stays a per-step poll (the forced denial must overwrite the
   oximeter's approval sample every instant anyway), but the hold
   expiry lives on the executor's revocable timer queue: the exit
   fires at exactly [entered_at + hold], not at the next step-quantized
   poll past it. *)
let install engine ~supervisor config =
  let h =
    { config; entries = 0; active = false; entered_at = []; release_at = None }
  in
  (match Pte_sim.Engine.transport engine with
  | None -> ()
  | Some transport ->
      let exec = Pte_sim.Engine.executor engine in
      let force_deny () =
        Pte_sim.Engine.set_value engine supervisor
          Pte_core.Pattern.approval_var 0.0
      in
      let arm_exit ~at =
        ignore
          (Pte_hybrid.Executor.schedule exec ~owner:supervisor ~at (fun _exec ->
               h.active <- false;
               h.release_at <- None;
               Pte_net.Transport.reset_consecutive_losses transport
                 ~sender:supervisor;
               Pte_sim.Engine.note engine "degraded-safe-mode: exit"))
      in
      Pte_sim.Engine.add_process engine ~name:"degraded-safe-mode"
        (fun engine ~time ->
          if h.active then force_deny ()
          else if
            Pte_net.Transport.consecutive_losses transport ~sender:supervisor
            >= config.k
          then begin
            h.active <- true;
            h.entries <- h.entries + 1;
            h.entered_at <- time :: h.entered_at;
            h.release_at <- Some (time +. config.hold);
            arm_exit ~at:(time +. config.hold);
            Pte_sim.Engine.note engine "degraded-safe-mode: enter";
            force_deny ()
          end));
  h
