(** Supervisor degraded-safe-mode.

    The lease pattern already guarantees safety when the downlink dies:
    every remote's lease self-resets and the entities drift back to
    their safe locations within T^max_wait + T^max_LS1. What the pattern
    does {e not} do is stop the supervisor from optimistically starting
    new sessions into a black hole. This monitor watches the transport's
    per-sender consecutive-loss counter for the supervisor: after [k]
    consecutive sends without delivery confirmation it declares the
    channel gone, forces the wired approval input to 0 — the grant guard
    ([approval >= 0.5]) can then never fire, so no lease is granted or
    renewed — and holds that state for [hold] seconds before re-arming.
    With the event-driven transport the counter moves at {e confirmation
    time} — an exchange counts as a feedback loss only when its retry
    budget actually expires (up to {!Pte_net.Transport.worst_case_latency}
    after the send), not at the send instant — so the watchdog trips
    when the losses become known to the sender, as a real supervisor
    would observe them.
    The system rides the lease self-reset down to all-safe; entering and
    leaving the mode is counted so trials can report it. *)

type config = {
  k : int;  (** consecutive feedback losses that trip the mode. *)
  hold : float;  (** seconds to stay degraded before re-arming. *)
}

let default params =
  { k = 3; hold = Pte_core.Params.risky_dwell_bound params }

type handle = {
  config : config;
  mutable entries : int;  (** times the mode was entered. *)
  mutable active : bool;
  mutable entered_at : float list;  (** entry times, newest first. *)
}

(* Registered after the oximeter's process, so within one instant the
   forced 0 overwrites the oximeter's fresh approval sample. *)
let install engine ~supervisor config =
  let h = { config; entries = 0; active = false; entered_at = [] } in
  (match Pte_sim.Engine.transport engine with
  | None -> ()
  | Some transport ->
      let release_at = ref 0.0 in
      let force_deny () =
        Pte_sim.Engine.set_value engine supervisor
          Pte_core.Pattern.approval_var 0.0
      in
      Pte_sim.Engine.add_process engine ~name:"degraded-safe-mode"
        (fun engine ~time ->
          if h.active then
            if time >= !release_at then begin
              h.active <- false;
              Pte_net.Transport.reset_consecutive_losses transport
                ~sender:supervisor;
              Pte_sim.Engine.note engine "degraded-safe-mode: exit"
            end
            else force_deny ()
          else if
            Pte_net.Transport.consecutive_losses transport ~sender:supervisor
            >= config.k
          then begin
            h.active <- true;
            h.entries <- h.entries + 1;
            h.entered_at <- time :: h.entered_at;
            release_at := time +. config.hold;
            Pte_sim.Engine.note engine "degraded-safe-mode: enter";
            force_deny ()
          end));
  h
