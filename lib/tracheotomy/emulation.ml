(** Assembly of the laser-tracheotomy wireless CPS emulation (Fig. 7).

    Entities: the supervisor computer with its wired SpO2 sensor (ξ0),
    the ventilator (Participant ξ1, the pattern automaton elaborated with
    A′vent), and the surgeon-operated laser-scalpel (Initializer ξ2).
    They communicate over a ZigBee-like star network under constant WiFi
    interference. The patient closes the physical loop. *)

open Pte_hybrid

type config = {
  params : Pte_core.Params.t;
  lease : bool;
  loss : Pte_net.Loss.kind;
  e_ton : float;  (** E(Ton), seconds — paper: 30. *)
  e_toff : float;  (** E(Toff), seconds — paper: 18 or 6. *)
  horizon : float;  (** trial length, seconds — paper: 30 minutes. *)
  dwell_bound : float;
      (** Rule 1 bound for the trial — paper: 60 s ("holding breath for
          <= 1 minute is always safe"). *)
  spo2_threshold : float;  (** Θ_SpO2 — paper: 92 %. *)
  seed : int;
  dt : float;  (** executor step. *)
  mac_retries : int;
      (** 802.15.4 MAC retransmissions per frame (the paper's TMote-Sky
          radios retransmit at the MAC layer; 0 disables). *)
  faults : Pte_faults.Plan.t;
      (** Scripted fault plan injected on top of the stochastic loss
          model (deterministic packet tampering, crashes, clock drift).
          [Pte_faults.Plan.empty] leaves the trial untouched. *)
  transport : Pte_net.Transport.mode;
      (** [`Bare] (default) is the paper's single-shot radio;
          [`Reliable _] adds ACK/retransmission, and {!build} then
          rechecks Theorem 1 with the retransmission budget folded into
          the message-delay terms. [`Scheduled _] is the time-triggered
          mode: {!build} fills an unset synthesis budget with the
          Theorem-1 delay budget ({!Pte_core.Constraints.max_delay_budget}),
          synthesizes the round schedule against the star, and rejects
          any schedule whose worst-case latency breaks c1–c7. *)
  degraded : Degraded.config option;
      (** Supervisor degraded-safe-mode ([None] disables): stop
          granting/renewing leases after [k] consecutive feedback
          losses. *)
}

let default =
  {
    params = Pte_core.Params.case_study;
    lease = true;
    loss = Pte_net.Loss.wifi_interference ~average_loss:0.25;
    e_ton = 30.0;
    e_toff = 18.0;
    horizon = 1800.0;
    dwell_bound = 60.0;
    spo2_threshold = 92.0;
    seed = 42;
    dt = 0.01;
    mac_retries = 0;
    faults = Pte_faults.Plan.empty;
    transport = `Bare;
    degraded = None;
  }

type built = {
  config : config;
  engine : Pte_sim.Engine.t;
  system : System.t;
  net : Pte_net.Star.t;
  spec : Pte_core.Rules.t;
  laser : string;
  ventilator : string;
  spo2_stats : Pte_util.Stats.Online.t;
  faults_handle : Pte_faults.Injector.handle;
  transport : Pte_net.Transport.t;
  degraded : Degraded.handle option;
}

let build (config : config) =
  let params = config.params in
  let ventilator_name = params.Pte_core.Params.entities.(0).Pte_core.Params.name in
  let laser_name = (Pte_core.Params.initializer_ params).Pte_core.Params.name in
  let supervisor_name = params.Pte_core.Params.supervisor in
  let ventilator = Ventilator.participant ~lease:config.lease params in
  let laser = Pte_core.Pattern.initializer_ ~lease:config.lease params in
  let supervisor = Pte_core.Pattern.supervisor params in
  let system =
    System.make ~name:"laser-tracheotomy"
      [ supervisor; ventilator; laser; Patient.automaton ]
  in
  let rng = Pte_util.Rng.create config.seed in
  (* a loss profile in the fault plan overlays a time-varying channel:
     the configured model covers the span before the first step, each
     step then switches the whole star to its level *)
  let loss_kind =
    match config.faults.Pte_faults.Plan.loss_profile with
    | [] -> config.loss
    | steps ->
        let kind_of loss =
          if loss <= 0.0 then Pte_net.Loss.Perfect
          else if loss >= 1.0 then Pte_net.Loss.Bernoulli 1.0
            (* a total blackout, which wifi_interference cannot realize *)
          else Pte_net.Loss.wifi_interference ~average_loss:loss
        in
        Pte_net.Loss.Profile
          ((0.0, config.loss)
          :: List.map
               (fun (s : Pte_faults.Plan.loss_step) -> (s.at, kind_of s.loss))
               steps)
  in
  let net =
    Pte_net.Star.create ~base:supervisor_name
      ~remotes:[ ventilator_name; laser_name ]
      ~loss_kind ~mac_retries:config.mac_retries ~rng ()
  in
  (* A non-bare transport is only admissible when Theorem 1 survives
     its worst-case latency: recheck c1–c7 with the mode's closed-form
     bound added to the message-delay terms. *)
  let recheck_theorem1 ~what budget =
    let outcomes =
      Pte_core.Constraints.check_with_delay params ~delay:budget
    in
    if not (Pte_core.Constraints.all_ok outcomes) then
      invalid_arg
        (Fmt.str
           "Emulation.build: %s (worst-case latency %.3f s) breaks Theorem \
            1: %s"
           what budget
           (String.concat ", "
              (List.map Pte_core.Constraints.condition_name
                 (Pte_core.Constraints.violated outcomes))))
  in
  let config =
    match config.transport with
    | `Bare -> config
    | `Reliable tcfg ->
        (match Pte_net.Transport.validate tcfg with
        | Ok () -> ()
        | Error msg -> invalid_arg ("Emulation.build: " ^ msg));
        recheck_theorem1 ~what:"transport retry budget"
          (Pte_net.Transport.worst_case_latency tcfg
             ~frame_delay:(Pte_net.Star.worst_frame_delay net));
        config
    | `Scheduled policy ->
        (* an unset synthesis budget means "whatever Theorem 1 affords":
           fill it here, where the parameters are known, so the
           synthesizer itself enforces the bound *)
        let policy =
          match policy.Pte_sched.Synth.budget with
          | Some _ -> policy
          | None ->
              {
                policy with
                Pte_sched.Synth.budget =
                  Some (Pte_core.Constraints.max_delay_budget params);
              }
        in
        let sched =
          match
            Pte_sched.Synth.synthesize policy
              ~links:(Pte_net.Star.schedule_links net)
          with
          | Ok sched -> sched
          | Error e ->
              invalid_arg
                ("Emulation.build: " ^ Pte_sched.Synth.error_to_string e)
        in
        (* the budget is a bisection estimate, so recheck the concrete
           schedule against c1–c7 directly — soundness never rests on
           the estimate alone *)
        recheck_theorem1 ~what:"synthesized round schedule"
          (Pte_sched.Schedule.worst_case_latency sched);
        { config with transport = `Scheduled policy }
    | `Adaptive acfg ->
        (match Pte_net.Transport.validate_adaptive acfg with
        | Ok () -> ()
        | Error msg -> invalid_arg ("Emulation.build: " ^ msg));
        (* the trial starts in the healthy sub-mode, so its bound must
           hold outright; escalation candidates are rechecked at switch
           time by the admission callback installed below *)
        (match acfg.Pte_net.Transport.healthy with
        | `Bare -> ()
        | `Reliable tcfg ->
            recheck_theorem1 ~what:"adaptive healthy retry budget"
              (Pte_net.Transport.worst_case_latency tcfg
                 ~frame_delay:(Pte_net.Star.worst_frame_delay net)));
        (* fill unset budgets with the Theorem-1 delay budget, exactly
           as for a static `Scheduled mode: escalation-time synthesis
           then already refuses over-budget schedules, and the c1–c7
           recheck below stays the final word *)
        let budget = Pte_core.Constraints.max_delay_budget params in
        let degraded =
          match acfg.Pte_net.Transport.degraded.Pte_sched.Synth.budget with
          | Some _ -> acfg.Pte_net.Transport.degraded
          | None ->
              { acfg.Pte_net.Transport.degraded with
                Pte_sched.Synth.budget = Some budget }
        in
        let acfg =
          match acfg.Pte_net.Transport.budget with
          | Some _ -> { acfg with Pte_net.Transport.degraded }
          | None ->
              { acfg with
                Pte_net.Transport.degraded;
                budget = Some budget }
        in
        { config with transport = `Adaptive acfg }
  in
  let exec_config = { Executor.default_config with dt = config.dt } in
  let engine =
    Pte_sim.Engine.create ~config:exec_config ~net
      ~transport:config.transport ~seed:(config.seed + 1) system
  in
  Patient.couple_to_ventilator engine ~ventilator:ventilator_name;
  Oximeter.connect engine ~supervisor:supervisor_name
    ~threshold:config.spo2_threshold ();
  Surgeon.connect engine ~laser:laser_name ~e_ton:config.e_ton
    ~e_toff:config.e_toff;
  (* record the patient's SpO2 trajectory envelope *)
  let spo2_stats = Pte_util.Stats.Online.create () in
  Pte_sim.Engine.add_process engine ~period:0.5 ~name:"spo2-probe"
    (fun engine ~time:_ ->
      Pte_util.Stats.Online.add spo2_stats
        (Pte_sim.Engine.value_of engine Patient.name Patient.spo2_var));
  let spec =
    Pte_core.Rules.of_params_with_bounds params ~dwell_bound:config.dwell_bound
  in
  (* scripted faults: packet tampering on the links, node faults on the
     engine (no-ops for the empty plan) *)
  let faults_handle = Pte_faults.Injector.install config.faults net in
  Pte_faults.Runtime.install config.faults engine;
  (* the degraded-safe-mode watchdog comes after the oximeter, so its
     forced denial overwrites the fresh approval sample each instant *)
  let degraded =
    Option.map
      (fun dcfg -> Degraded.install engine ~supervisor:supervisor_name dcfg)
      config.degraded
  in
  let transport =
    match Pte_sim.Engine.transport engine with
    | Some t -> t
    | None -> assert false (* the engine always gets ~net here *)
  in
  (* the safe-switch protocol's Theorem-1 recheck: a candidate mode is
     admissible iff c1–c7 survive its worst-case latency (the net layer
     cannot depend on the core, so the check is injected) *)
  Pte_net.Transport.set_admit transport (fun ~candidate_latency ->
      Pte_core.Constraints.satisfies_with_delay params
        ~delay:candidate_latency);
  {
    config;
    engine;
    system;
    net;
    spec;
    laser = laser_name;
    ventilator = ventilator_name;
    spo2_stats;
    faults_handle;
    transport;
    degraded;
  }

let run built =
  Pte_sim.Engine.run built.engine ~until:built.config.horizon;
  Pte_sim.Engine.trace built.engine
