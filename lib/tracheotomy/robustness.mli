(** Fault-injection campaigns over the laser-tracheotomy system:
    exhaustive message-drop coverage (the paper's fault model, one
    targeted loss at a time) and randomized fuzz with counterexample
    shrinking (faults {e beyond} the paper's model: corruption storms,
    crashes, clock drift). *)

module Plan = Pte_faults.Plan

val messages :
  ?params:Pte_core.Params.t -> unit -> Pte_faults.Fuzz.message list
(** Every protocol message root × link of the N=2 system (12 for the
    case study); environment stimuli excluded — they never cross the
    network. *)

val vocabulary :
  ?params:Pte_core.Params.t -> horizon:float -> unit ->
  Pte_faults.Fuzz.vocabulary
(** Fuzz vocabulary: the protocol messages plus the crashable/driftable
    remote entities. *)

(** {2 Coverage campaign} *)

(** One coverage target: drop the [occurrence]-th frame carrying
    [message.root] on [message.site]. *)
type target = {
  message : Pte_faults.Fuzz.message;
  occurrence : int;
  plan : Plan.t;  (** the auto-generated one-shot drop plan *)
}

val targets :
  ?params:Pte_core.Params.t -> ?occurrences:int -> unit -> target list
(** All roots × occurrences 0..[occurrences]-1 (default 2). *)

type coverage_row = {
  target : target;
  fired : bool;  (** did the targeted frame exist (drop actually fired)? *)
  with_lease : Trial.result;
  without_lease : Trial.result;
}

type coverage = {
  rows : coverage_row list;
  roots_total : int;
  roots_targeted : int;
  roots_exercised : int;  (** roots whose drop fired in >= 1 trial *)
  with_lease_violations : int;  (** total episodes, with lease — want 0 *)
  without_lease_violations : int;  (** total, without lease — want > 0 *)
}

val coverage :
  ?workers:int ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?params:Pte_core.Params.t ->
  ?occurrences:int ->
  ?horizon:float ->
  ?seed:int ->
  ?transport:Pte_net.Transport.mode ->
  unit ->
  coverage
(** Run every target under both lease modes (2 trials per target, as one
    {!Pte_campaign} campaign over a perfect channel, so the scripted
    drop is the only loss). Theorem 1 covers message loss, so
    [with_lease_violations] must be 0; the without-lease baseline is
    expected to degrade. With [?transport:(`Reliable _)] the scripted
    drop hits one link frame and the transport's retransmission carries
    the message through — the campaign then doubles as an end-to-end
    recovery check. *)

val pp_coverage : coverage Fmt.t
(** The coverage matrix plus the targeted/exercised and violation
    summary lines. *)

(** {2 Fuzz + shrink} *)

(** A replayable counterexample: {!replay} reruns the exact trial from
    the plan and seed alone. *)
type artifact = {
  plan : Plan.t;
  trial_seed : int;
  horizon : float;
  lease : bool;
  failures : int;  (** violation episodes the minimal plan reproduces *)
}

val artifact_config : artifact -> Emulation.config
val replay : artifact -> Trial.result

val artifact_to_string : artifact -> string
val artifact_of_string : string -> (artifact, string) result
val save_artifact : artifact -> string -> unit
val load_artifact : string -> (artifact, string) result

type fuzz_report = {
  trials : int;
  violating : int;  (** random plans that produced >= 1 violation *)
  artifacts : artifact list;  (** one shrunk artifact per violating plan *)
  oracle_calls : int;  (** trials replayed by the shrinker *)
}

val fuzz :
  ?params:Pte_core.Params.t ->
  ?horizon:float ->
  ?lease:bool ->
  ?max_oracle_calls:int ->
  ?log:(string -> unit) ->
  seed:int ->
  trials:int ->
  unit ->
  fuzz_report
(** Draw [trials] random plans (deterministic in [seed]), run each
    against the (default with-lease) system on a perfect channel, and
    shrink every violating plan to a minimal artifact. *)

val pp_artifact : artifact Fmt.t
val pp_fuzz_report : fuzz_report Fmt.t
