(** The loss × k × hold watchdog sweep: exercise candidate
    degraded-safe-mode parameterizations against scripted channel
    blackouts and classify every trip, feeding {!Degraded.synthesize}.

    Each cell runs one emulation trial at a background loss level with
    the fault plan's [loss_profile] carving total blackout windows
    into the channel ([loss = 1] → every packet lost). A well-chosen
    (k, hold) trips {e inside} those windows — the channel really is
    gone — and never on the background loss alone; the sweep measures
    exactly that, per candidate, via {!Pte_campaign.Runner} so cells
    run on all cores and replay per (seed, cell). Several windows are
    scripted per trial because a blackout is only {e observable} while
    the supervisor has traffic in flight (it counts its own send
    losses; a request lost en route starts no session, so no sends): a
    single window stakes detection on a session happening to straddle
    its onset. *)

type config = {
  base : Emulation.config;
      (** trial template; its [loss], [faults.loss_profile] and
          [degraded] fields are overridden per cell. *)
  losses : float list;  (** background average loss levels to sweep. *)
  ks : int list;  (** candidate consecutive-loss thresholds. *)
  holds : float list;  (** candidate hold durations, seconds. *)
  blackouts : (float * float) list;
      (** scripted total-blackout windows, [(start, duration)]. *)
  slack : float;
      (** detection-lag allowance after each blackout ends
          ({!Degraded.classify_trip}). *)
}

let default_config params =
  let rdb = Pte_core.Params.risky_dwell_bound params in
  {
    (* high laser duty cycle — request ~5 s after each fall-back, emit
       until cancelled late: the watchdog counts *supervisor* send
       losses, and the supervisor only transmits while an exchange is
       live, so a traffic-bearing workload is what makes blackout
       detection a property of (k, hold) vs the channel rather than of
       surgeon timing luck *)
    base =
      { Emulation.default with params; horizon = 600.0; e_ton = 5.0;
        e_toff = 120.0 };
    losses = [ 0.0; 0.25; 0.4 ];
    ks = [ 2; 3; 5 ];
    holds = [ 0.5 *. rdb; rdb; 2.0 *. rdb ];
    blackouts = [ (150.0, 60.0); (300.0, 60.0); (450.0, 60.0) ];
    (* the k-th loss surfaces one transport resolution after the
       blackout begins; give the tail the same allowance *)
    slack = 15.0;
  }

let run_cell config ~loss ~k ~hold =
  let base = config.base in
  let faults =
    {
      base.Emulation.faults with
      Pte_faults.Plan.loss_profile =
        List.concat_map
          (fun (start, duration) ->
            [
              Pte_faults.Plan.loss_step ~at:start ~loss:1.0;
              Pte_faults.Plan.loss_step ~at:(start +. duration) ~loss;
            ])
          config.blackouts;
    }
  in
  let trial =
    {
      base with
      Emulation.loss =
        (if loss <= 0.0 then Pte_net.Loss.Perfect
         else Pte_net.Loss.wifi_interference ~average_loss:loss);
      faults;
      degraded = Some { Degraded.k; hold };
    }
  in
  let built = Emulation.build trial in
  let trace = Emulation.run built in
  let report =
    Pte_core.Monitor.analyze_system trace built.Emulation.system
      built.Emulation.spec ~horizon:trial.Emulation.horizon
  in
  let entries =
    match built.Emulation.degraded with
    | Some h -> List.rev h.Degraded.entered_at  (* chronological *)
    | None -> []
  in
  (* a trip is justified when any scripted window claims it; its
     detection delay is measured from that window's start *)
  let window_of at =
    List.find_opt
      (fun (start, duration) ->
        Degraded.classify_trip ~blackout_start:start
          ~blackout_end:(start +. duration) ~slack:config.slack
          ~entered_at:at
        = Degraded.Justified)
      config.blackouts
  in
  let justified, false_trips =
    List.partition (fun at -> Option.is_some (window_of at)) entries
  in
  {
    Degraded.sweep_loss = loss;
    sweep_k = k;
    sweep_hold = hold;
    false_trips = List.length false_trips;
    justified_trips = List.length justified;
    detection_delay =
      (match justified with
      | first :: _ -> (
          match window_of first with
          | Some (start, _) -> first -. start
          | None -> assert false)
      | [] -> nan);
    failures = Pte_core.Monitor.episodes report;
  }

let sweep ?workers config =
  let cells =
    Array.of_list
      (List.concat_map
         (fun loss ->
           List.concat_map
             (fun k -> List.map (fun hold -> (loss, k, hold)) config.holds)
             config.ks)
         config.losses)
  in
  let results : Degraded.sweep_cell option array =
    Array.make (Array.length cells) None
  in
  ignore
    (Pte_campaign.Runner.run
       ~config:
         {
           Pte_campaign.Runner.workers;
           retries = 1;
           checkpoint = None;
           resume = false;
         }
       ~cells ~reps:1 ~seed:config.base.Emulation.seed
       (fun job _rng ->
         let loss, k, hold = job.Pte_campaign.Job.payload in
         let cell = run_cell config ~loss ~k ~hold in
         results.(job.Pte_campaign.Job.id) <- Some cell;
         [
           ("false_trips", Float.of_int cell.Degraded.false_trips);
           ("justified_trips", Float.of_int cell.Degraded.justified_trips);
           ("detection_delay", cell.Degraded.detection_delay);
           ("failures", Float.of_int cell.Degraded.failures);
         ]));
  Array.to_list results |> List.filter_map Fun.id

let synthesize ?workers ?max_false_trips config =
  let cells = sweep ?workers config in
  (cells, Degraded.synthesize ?max_false_trips cells)
