(** Trial runner: executes emulation trials and extracts the Table-I
    statistics (plus channel and SpO2 diagnostics the paper reports in
    prose). *)

type result = {
  config : Emulation.config;
  emissions : int;  (** # of laser emissions (entries into "Risky Core"). *)
  failures : int;  (** # of PTE safety-rule violation episodes. *)
  evt_to_stop : int;
      (** # of evtToStop: lease expiry forced the laser to stop. *)
  vent_lease_expiries : int;
      (** # of times the ventilator's lease expired in "Risky Core". *)
  aborts : int;  (** supervisor abort chains started (SpO2 below Θ). *)
  requests : int;  (** surgeon requests issued. *)
  violations : Pte_core.Monitor.violation list;
  longest_pause : float;  (** longest continuous risky dwell, ventilator. *)
  longest_emission : float;  (** longest continuous risky dwell, laser. *)
  min_spo2 : float;
  messages_sent : int;
  effective_loss_rate : float;
  faults_fired : int;  (** scripted packet faults that actually fired. *)
  retransmissions : int;  (** transport-layer retries (reliable mode). *)
  gave_up : int;  (** sends lost after the full retry budget. *)
  dups_suppressed : int;  (** replayed copies squashed by (src, seq). *)
  degraded_entries : int;  (** times the supervisor entered safe-mode. *)
  max_consec_losses : int;
      (** deepest per-sender feedback blackout (consecutive unconfirmed
          exchanges) — a certification level-function component. *)
  worst_latency : float;  (** largest observed send-to-delivery delay. *)
  mode_switches_up : int;  (** adaptive: committed escalations. *)
  mode_switches_down : int;  (** adaptive: committed de-escalations. *)
  switch_refusals : int;
      (** adaptive: switches refused by the Theorem-1 recheck. *)
  schedule : Pte_sched.Schedule.t option;
      (** the synthesized round schedule (scheduled mode, or the
          adaptive mode's last committed degraded schedule). *)
}

let run (config : Emulation.config) : result =
  let built = Emulation.build config in
  let trace = Emulation.run built in
  let report =
    Pte_core.Monitor.analyze_system trace built.Emulation.system
      built.Emulation.spec ~horizon:config.Emulation.horizon
  in
  let laser = built.Emulation.laser in
  let ventilator = built.Emulation.ventilator in
  let dwell entity =
    match List.assoc_opt entity report.Pte_core.Monitor.intervals with
    | Some spans -> Pte_hybrid.Trace.longest_dwell spans
    | None -> 0.0
  in
  let net_stats = Pte_net.Star.total_stats built.Emulation.net in
  let tstats = Pte_net.Transport.stats built.Emulation.transport in
  {
    config;
    emissions =
      Pte_sim.Metrics.entries trace ~automaton:laser ~location:"Risky Core";
    failures = Pte_core.Monitor.episodes report;
    evt_to_stop =
      Pte_sim.Metrics.internal_marks trace
        ~root:(Pte_core.Events.to_stop ~entity:laser);
    vent_lease_expiries =
      Pte_sim.Metrics.internal_marks trace
        ~root:(Pte_core.Events.lease_expired ~entity:ventilator);
    aborts =
      Pte_sim.Metrics.entries trace
        ~automaton:config.Emulation.params.Pte_core.Params.supervisor
        ~location:(Pte_core.Pattern.send_abort_loc laser);
    requests =
      Pte_sim.Metrics.entries trace ~automaton:laser ~location:"Send Req";
    violations = report.Pte_core.Monitor.violations;
    longest_pause = dwell ventilator;
    longest_emission = dwell laser;
    min_spo2 = Pte_util.Stats.Online.min built.Emulation.spo2_stats;
    messages_sent = net_stats.Pte_net.Link_stats.sent;
    effective_loss_rate = Pte_net.Link_stats.loss_rate net_stats;
    faults_fired =
      Pte_faults.Injector.total_fired built.Emulation.faults_handle;
    retransmissions = tstats.Pte_net.Transport.retransmissions;
    gave_up = tstats.Pte_net.Transport.gave_up;
    dups_suppressed = tstats.Pte_net.Transport.dups_suppressed;
    degraded_entries =
      (match built.Emulation.degraded with
      | Some h -> h.Degraded.entries
      | None -> 0);
    max_consec_losses = tstats.Pte_net.Transport.max_consec_losses;
    worst_latency = tstats.Pte_net.Transport.worst_latency;
    mode_switches_up = tstats.Pte_net.Transport.switches_up;
    mode_switches_down = tstats.Pte_net.Transport.switches_down;
    switch_refusals = tstats.Pte_net.Transport.switch_refusals;
    schedule = Pte_net.Transport.schedule built.Emulation.transport;
  }

(* ------------------------------------------------------------------ *)
(* Campaign-backed replicated trials                                   *)
(* ------------------------------------------------------------------ *)

type aggregate = {
  reps : int;
  failed_jobs : int;
  failure_reps : int;
  failure_rate : Pte_campaign.Aggregate.summary;
      (** the 0/1 "failed" indicator itself — carries the Wilson
          interval honest at 0 observed violations. *)
  emissions : Pte_campaign.Aggregate.summary;
  failures : Pte_campaign.Aggregate.summary;
  evt_to_stop : Pte_campaign.Aggregate.summary;
  aborts : Pte_campaign.Aggregate.summary;
  requests : Pte_campaign.Aggregate.summary;
  longest_pause : Pte_campaign.Aggregate.summary;
  longest_emission : Pte_campaign.Aggregate.summary;
  min_spo2 : Pte_campaign.Aggregate.summary;
  loss_rate : Pte_campaign.Aggregate.summary;
}

type replicated = { rep0 : result; agg : aggregate }

let metrics_of_result (r : result) =
  [
    ("emissions", Float.of_int r.emissions);
    ("failures", Float.of_int r.failures);
    ("evt_to_stop", Float.of_int r.evt_to_stop);
    ("vent_lease_expiries", Float.of_int r.vent_lease_expiries);
    ("aborts", Float.of_int r.aborts);
    ("requests", Float.of_int r.requests);
    ("longest_pause", r.longest_pause);
    ("longest_emission", r.longest_emission);
    ("min_spo2", r.min_spo2);
    ("messages_sent", Float.of_int r.messages_sent);
    ("loss_rate", r.effective_loss_rate);
    ("faults_fired", Float.of_int r.faults_fired);
    ("retransmissions", Float.of_int r.retransmissions);
    ("gave_up", Float.of_int r.gave_up);
    ("dups_suppressed", Float.of_int r.dups_suppressed);
    ("degraded_entries", Float.of_int r.degraded_entries);
    ("max_consec_losses", Float.of_int r.max_consec_losses);
    ("worst_latency", r.worst_latency);
    ("mode_switches_up", Float.of_int r.mode_switches_up);
    ("mode_switches_down", Float.of_int r.mode_switches_down);
    ("switch_refusals", Float.of_int r.switch_refusals);
    (* indicator, so the aggregate counts replicates with any failure *)
    ("failed", if r.failures > 0 then 1.0 else 0.0);
  ]
  @ (match r.schedule with
    | None -> []
    | Some sched ->
        [ ("sched_bound", Pte_sched.Schedule.worst_case_latency sched) ])

let aggregate_of_cell (cell : Pte_campaign.Aggregate.cell) =
  let empty : Pte_campaign.Aggregate.summary =
    { n = 0; mean = nan; stddev = 0.0; ci95 = 0.0; lo = nan; hi = nan;
      wilson = None }
  in
  let metric name =
    try Pte_campaign.Aggregate.metric cell name with Not_found -> empty
  in
  let failed_ind = metric "failed" in
  {
    reps = cell.Pte_campaign.Aggregate.ok;
    failed_jobs = cell.Pte_campaign.Aggregate.failed;
    failure_reps =
      (if failed_ind.Pte_campaign.Aggregate.n = 0 then 0
       else
         int_of_float
           (Float.round
              (failed_ind.Pte_campaign.Aggregate.mean
              *. Float.of_int failed_ind.Pte_campaign.Aggregate.n)));
    failure_rate = failed_ind;
    emissions = metric "emissions";
    failures = metric "failures";
    evt_to_stop = metric "evt_to_stop";
    aborts = metric "aborts";
    requests = metric "requests";
    longest_pause = metric "longest_pause";
    longest_emission = metric "longest_emission";
    min_spo2 = metric "min_spo2";
    loss_rate = metric "loss_rate";
  }

let run_cells ?workers ?checkpoint ?(resume = false) ?(retries = 1) ~reps ~seed
    cells =
  let full : result option array =
    Array.make (Array.length cells * reps) None
  in
  let campaign =
    Pte_campaign.Runner.run
      ~config:{ Pte_campaign.Runner.workers; retries; checkpoint; resume }
      ~cells ~reps ~seed
      (fun job rng ->
        let base = job.Pte_campaign.Job.payload in
        (* replicate 0 keeps the cell's literal seed (historical runs
           stay byte-identical); later replicates draw from the job's
           split-derived stream *)
        let trial_seed =
          if job.Pte_campaign.Job.rep = 0 then base.Emulation.seed
          else Int64.to_int (Pte_util.Rng.next_int64 rng)
        in
        let r = run { base with Emulation.seed = trial_seed } in
        full.(job.Pte_campaign.Job.id) <- Some r;
        metrics_of_result r)
  in
  (campaign, full)

(* One replicated row per cell; only valid when nothing was resumed
   (replicate 0 then always ran in this process). Jobs that exhausted
   their retries would silently vanish from the aggregates — a table
   (or a certified bound) must never rest on dropped trials, so any
   failed job fails the whole aggregation loudly instead. *)
let replicated_rows campaign full reps =
  if campaign.Pte_campaign.Runner.failed > 0 then
    failwith
      (Printf.sprintf
         "Trial.replicated_rows: %d job(s) exhausted their retries; \
          refusing to aggregate over dropped trials"
         campaign.Pte_campaign.Runner.failed);
  Array.to_list
    (Array.mapi
       (fun i cell ->
         match full.(i * reps) with
         | Some rep0 -> { rep0; agg = aggregate_of_cell cell }
         | None -> invalid_arg "Trial.replicated_rows: replicate 0 missing")
       campaign.Pte_campaign.Runner.cells)

let table1_cells ~seed =
  [|
    ("with Lease", 18.0, { Emulation.default with lease = true; e_toff = 18.0; seed });
    ( "without Lease", 18.0,
      { Emulation.default with lease = false; e_toff = 18.0; seed = seed + 1 } );
    ( "with Lease", 6.0,
      { Emulation.default with lease = true; e_toff = 6.0; seed = seed + 2 } );
    ( "without Lease", 6.0,
      { Emulation.default with lease = false; e_toff = 6.0; seed = seed + 3 } );
  |]

(** The full Table I: {with, without} lease × E(Toff) ∈ {18 s, 6 s}. *)
let table1 ?(seed = 2013) ?(reps = 1) ?workers () =
  let cells = table1_cells ~seed in
  let campaign, full =
    run_cells ?workers ~reps ~seed (Array.map (fun (_, _, c) -> c) cells)
  in
  List.map2
    (fun (mode, e_toff, _) row -> (mode, e_toff, row))
    (Array.to_list cells)
    (replicated_rows campaign full reps)

(** One Table-I row: 30-minute trials at the paper's constants. *)
let table1_row ?(reps = 1) ?workers ~lease ~e_toff ~seed () =
  let cells = [| { Emulation.default with lease; e_toff; seed } |] in
  let campaign, full = run_cells ?workers ~reps ~seed cells in
  List.hd (replicated_rows campaign full reps)

(** The X1 loss-rate sweep, as a single campaign: 2 cells (with/without
    lease) per loss rate, sharing a base seed like the serial original. *)
let loss_sweep ?(reps = 1) ?workers ?(seed = 500) ?horizon ~losses () =
  let horizon =
    Option.value horizon ~default:Emulation.default.Emulation.horizon
  in
  let cell ~lease i loss =
    {
      Emulation.default with
      lease;
      horizon;
      seed = seed + i;
      loss =
        (if loss = 0.0 then Pte_net.Loss.Perfect
         else Pte_net.Loss.wifi_interference ~average_loss:loss);
    }
  in
  let cells =
    Array.of_list
      (List.concat
         (List.mapi
            (fun i loss -> [ cell ~lease:true i loss; cell ~lease:false i loss ])
            losses))
  in
  let campaign, full = run_cells ?workers ~reps ~seed cells in
  let rows = replicated_rows campaign full reps in
  let rec pair = function
    | with_lease :: without :: rest -> (with_lease, without) :: pair rest
    | [] -> []
    | [ _ ] -> invalid_arg "Trial.loss_sweep: odd cell count"
  in
  List.map2 (fun loss (w, n) -> (loss, w, n)) losses (pair rows)

(** The A1 availability experiment: for each average loss rate, a
    with-lease bare cell and a with-lease reliable cell sharing a base
    seed, so the transports face the same channel realization in
    replicate 0. Returns [(loss, bare, reliable)] rows. *)
let availability_sweep ?(reps = 1) ?workers ?(seed = 900) ?horizon
    ?(transport_config = Pte_net.Transport.default_config) ~losses () =
  let horizon =
    Option.value horizon ~default:Emulation.default.Emulation.horizon
  in
  let cell ~transport i loss =
    {
      Emulation.default with
      lease = true;
      horizon;
      seed = seed + i;
      transport;
      loss =
        (if loss = 0.0 then Pte_net.Loss.Perfect
         else Pte_net.Loss.wifi_interference ~average_loss:loss);
    }
  in
  let cells =
    Array.of_list
      (List.concat
         (List.mapi
            (fun i loss ->
              [
                cell ~transport:`Bare i loss;
                cell ~transport:(`Reliable transport_config) i loss;
              ])
            losses))
  in
  let campaign, full = run_cells ?workers ~reps ~seed cells in
  let rows = replicated_rows campaign full reps in
  let rec pair = function
    | bare :: reliable :: rest -> (bare, reliable) :: pair rest
    | [] -> []
    | [ _ ] -> invalid_arg "Trial.availability_sweep: odd cell count"
  in
  List.map2 (fun loss (b, r) -> (loss, b, r)) losses (pair rows)

(** The A2 availability experiment: for each average loss rate, one
    with-lease cell per transport mode, all sharing a base seed so the
    modes face the same channel realization in replicate 0. Returns
    [(loss, [(label, replicated); ...])] rows in the transport order
    given. *)
let transport_matrix ?(reps = 1) ?workers ?(seed = 900) ?horizon ~transports
    ~losses () =
  let horizon =
    Option.value horizon ~default:Emulation.default.Emulation.horizon
  in
  let cell ~transport i loss =
    {
      Emulation.default with
      lease = true;
      horizon;
      seed = seed + i;
      transport;
      loss =
        (if loss = 0.0 then Pte_net.Loss.Perfect
         else Pte_net.Loss.wifi_interference ~average_loss:loss);
    }
  in
  let cells =
    Array.of_list
      (List.concat
         (List.mapi
            (fun i loss ->
              List.map (fun (_, transport) -> cell ~transport i loss) transports)
            losses))
  in
  let campaign, full = run_cells ?workers ~reps ~seed cells in
  let rows = replicated_rows campaign full reps in
  let width = List.length transports in
  let rec chunk = function
    | [] -> []
    | rows ->
        let hd = List.filteri (fun i _ -> i < width) rows in
        let tl = List.filteri (fun i _ -> i >= width) rows in
        if List.length hd < width then
          invalid_arg "Trial.transport_matrix: ragged cell count"
        else List.map2 (fun (label, _) row -> (label, row)) transports hd
             :: chunk tl
  in
  List.map2 (fun loss row -> (loss, row)) losses (chunk rows)

let pp_result ppf (r : result) =
  Fmt.pf ppf
    "emissions:%d failures:%d evtToStop:%d aborts:%d requests:%d \
     longest-pause:%.1fs longest-emission:%.1fs minSpO2:%.1f loss:%.0f%%"
    r.emissions r.failures r.evt_to_stop r.aborts r.requests r.longest_pause
    r.longest_emission r.min_spo2
    (100.0 *. r.effective_loss_rate)

let pp_aggregate ppf a =
  let s = Pte_campaign.Aggregate.pp_summary in
  Fmt.pf ppf
    "reps:%d failing-reps:%d emissions:%a failures:%a evtToStop:%a \
     longest-pause:%a minSpO2:%a"
    a.reps a.failure_reps s a.emissions s a.failures s a.evt_to_stop s
    a.longest_pause s a.min_spo2
