module Rng = Pte_util.Rng
module Plan = Pte_faults.Plan
module Severity = Pte_faults.Severity
module Sprt = Pte_rare.Sprt
module Seq = Pte_rare.Seq
module Split = Pte_rare.Split

type config = {
  target : float;
  confidence : float;
  min_effective : float;
  horizon : float;
  screen : Sprt.config option;
  screen_max : int;
  split : Split.config;
  crashes : bool;
  workers : int option;
  seed : int;
}

let default =
  {
    target = 1e-6;
    confidence = 0.99;
    min_effective = 1e6;
    horizon = 1800.0;
    screen = Some { Sprt.p0 = 1e-3; p1 = 0.05; alpha = 0.05; beta = 0.05 };
    screen_max = 200;
    split = Split.default;
    crashes = false;
    workers = None;
    seed = 9300;
  }

let smoke =
  {
    default with
    target = 1e-3;
    min_effective = 1e3;
    horizon = 300.0;
    screen = Some { Sprt.p0 = 1e-2; p1 = 0.3; alpha = 0.05; beta = 0.05 };
    screen_max = 40;
    (* 16 particles x 10 stages at keep 1/8: per-stage Wilson upper
       ~0.52, zero-hit terminal ~0.35 -> joint bound ~9e-4, just under
       the 1e-3 smoke target *)
    split = { Split.default with particles = 16; max_stages = 10 };
  }

(* ------------------------------------------------------------------ *)
(* Level function                                                      *)
(* ------------------------------------------------------------------ *)

let level_score ~dwell_bound ~plan (r : Trial.result) =
  if r.Trial.failures > 0 then
    (* any violation is past the target; deeper episodes rank higher so
       the terminal stage still discriminates *)
    1.0 +. (0.1 *. float_of_int r.Trial.failures)
  else
    (* closeness to violation, all terms in [0, 1): how much of the
       Lemma-2 dwell bound the longest emission consumed (dominant),
       how deep the worst feedback blackout ran, how often the
       ventilator's lease actually expired *)
    let dwell = Float.min 1.0 (r.Trial.longest_emission /. dwell_bound) in
    let blackout =
      let c = float_of_int r.Trial.max_consec_losses in
      c /. (c +. 8.0)
    in
    let expiries =
      let e = float_of_int r.Trial.vent_lease_expiries in
      e /. (e +. 4.0)
    in
    let base =
      (0.9 *. dwell) +. (0.05 *. blackout) +. (0.04 *. expiries)
    in
    (* lexicographic tiebreak on plan severity: strictly increasing
       under escalation, too small to outrank any continuous progress.
       Asymptotic in the rank rather than hard-capped — a cap saturates
       once plans accumulate ~a dozen escalations and the adaptive
       threshold stops strictly increasing (stagnation at stage 13 of
       the full C1 run), while rank/(rank+50) keeps every escalation
       visible at any depth *)
    let tiebreak =
      let rank = float_of_int (Severity.rank plan) in
      0.005 *. rank /. (rank +. 50.0)
    in
    Float.min 0.9899 base +. tiebreak

(* ------------------------------------------------------------------ *)
(* Designs                                                             *)
(* ------------------------------------------------------------------ *)

type design = { label : string; lease : bool; config : Emulation.config }

let designs c =
  let base lease =
    { Emulation.default with Emulation.lease; horizon = c.horizon }
  in
  [
    { label = "with-lease"; lease = true; config = base true };
    { label = "without-lease"; lease = false; config = base false };
  ]

(* ------------------------------------------------------------------ *)
(* Certification driver                                                *)
(* ------------------------------------------------------------------ *)

type cell = {
  design : design;
  screen : Seq.result option;
  split : Split.result option;
  bound : float;
  effective_trials : float;
  trials_run : int;
  certified : bool;
}

type report = { config : config; cells : cell list }

(* A splitting particle: a replayable (plan, seed) artifact plus its
   cached score. Clones keep the seed and extend the plan, so the
   survivor's trial prefix replays bit-identically. *)
type particle = { plan : Plan.t; trial_seed : int; score : float }

let run_trial (design : design) plan trial_seed =
  Trial.run
    { design.config with Emulation.faults = plan; seed = trial_seed }

let particle_of design plan trial_seed =
  let r = run_trial design plan trial_seed in
  {
    plan;
    trial_seed;
    score = level_score ~dwell_bound:design.config.Emulation.dwell_bound ~plan r;
  }

let split_model c (design : design) =
  let vocab =
    Robustness.vocabulary ~params:design.config.Emulation.params
      ~horizon:c.horizon ()
  in
  {
    Split.init =
      (fun rng -> particle_of design Plan.empty (Rng.int rng 0x3FFFFFFF));
    extend =
      (fun p rng ->
        let plan = Severity.escalate ~crashes:c.crashes ~vocab p.plan rng in
        particle_of design plan p.trial_seed);
    score = (fun p -> p.score);
    target = 1.0;
  }

let certify_design (c : config) design =
  let screen =
    match c.screen with
    | None -> None
    | Some sprt ->
        Some
          (Seq.run ?workers:c.workers ~max_trials:c.screen_max
             ~rule:(Seq.Sprt sprt) ~seed:c.seed (fun rng ->
               (run_trial design Plan.empty (Rng.int rng 0x3FFFFFFF))
                 .Trial.failures > 0))
  in
  let screen_trials =
    match screen with None -> 0 | Some s -> s.Seq.trials
  in
  match screen with
  | Some ({ Seq.verdict = Seq.Refuted; _ } as s) ->
      {
        design;
        screen;
        split = None;
        bound = s.Seq.upper_bound;
        effective_trials = 0.0;
        trials_run = screen_trials;
        certified = false;
      }
  | _ ->
      let split_cfg =
        { c.split with Split.confidence = c.confidence; workers = c.workers }
      in
      let sr = Split.run ~config:split_cfg ~seed:(c.seed + 1) (split_model c design) in
      {
        design;
        screen;
        split = Some sr;
        bound = sr.Split.upper_bound;
        effective_trials = sr.Split.effective_trials;
        trials_run = screen_trials + sr.Split.trials_run;
        certified =
          (not sr.Split.stagnated)
          && sr.Split.upper_bound <= c.target
          && sr.Split.effective_trials >= c.min_effective;
      }

let run ?(config = default) () =
  { config; cells = List.map (certify_design config) (designs config) }

let exit_code r =
  let ok (cell : cell) =
    if cell.design.lease then cell.certified else not cell.certified
  in
  if List.for_all ok r.cells then 0 else 1

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let pp_cell ppf (cell : cell) =
  Fmt.pf ppf "@[<v2>%s:@," cell.design.label;
  (match cell.screen with
  | None -> Fmt.pf ppf "screen: skipped@,"
  | Some s -> Fmt.pf ppf "screen: %a@," Seq.pp_result s);
  (match cell.split with
  | None -> Fmt.pf ppf "splitting: not reached@,"
  | Some s -> Fmt.pf ppf "splitting: %a@," Split.pp_result s);
  Fmt.pf ppf "bound %.3g, %g effective trials, %d trials run -> %s@]"
    cell.bound cell.effective_trials cell.trials_run
    (if cell.certified then "CERTIFIED" else "NOT CERTIFIED")

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>certification target %.3g at confidence %g (>= %g effective \
     trials)@,%a@,verdict: %s@]"
    r.config.target r.config.confidence r.config.min_effective
    (Fmt.list ~sep:Fmt.cut pp_cell)
    r.cells
    (if exit_code r = 0 then
       "PASS (lease certified; baseline refuted)"
     else "FAIL")

let report_to_json r =
  let module J = Pte_campaign.Json in
  let stage_json (st : Split.stage) =
    J.Obj
      [
        ("index", J.Num (float_of_int st.Split.index));
        ("threshold", J.Num st.Split.threshold);
        ("survivors", J.Num (float_of_int st.Split.survivors));
        ("attempts", J.Num (float_of_int st.Split.attempts));
        ("p_hat", J.Num st.Split.p_hat);
        ("p_upper", J.Num st.Split.p_upper);
      ]
  in
  let cell_json (cell : cell) =
    let screen =
      match cell.screen with
      | None -> J.Null
      | Some s ->
          J.Obj
            [
              ( "verdict",
                J.Str (Format.asprintf "%a" Seq.pp_verdict s.Seq.verdict) );
              ("trials", J.Num (float_of_int s.Seq.trials));
              ("hits", J.Num (float_of_int s.Seq.hits));
              ("upper_bound", J.Num s.Seq.upper_bound);
            ]
    in
    let split =
      match cell.split with
      | None -> J.Null
      | Some s ->
          J.Obj
            [
              ("stages", J.Arr (List.map stage_json s.Split.stages));
              ("hits", J.Num (float_of_int s.Split.hits));
              ("estimate", J.Num s.Split.estimate);
              ("upper_bound", J.Num s.Split.upper_bound);
              ("effective_trials", J.Num s.Split.effective_trials);
              ("trials_run", J.Num (float_of_int s.Split.trials_run));
              ("stagnated", J.Bool s.Split.stagnated);
            ]
    in
    J.Obj
      [
        ("label", J.Str cell.design.label);
        ("lease", J.Bool cell.design.lease);
        ("screen", screen);
        ("split", split);
        ("bound", J.Num cell.bound);
        ("effective_trials", J.Num cell.effective_trials);
        ("trials_run", J.Num (float_of_int cell.trials_run));
        ("certified", J.Bool cell.certified);
      ]
  in
  J.Obj
    [
      ("target", J.Num r.config.target);
      ("confidence", J.Num r.config.confidence);
      ("min_effective", J.Num r.config.min_effective);
      ("horizon", J.Num r.config.horizon);
      ("seed", J.Num (float_of_int r.config.seed));
      ("cells", J.Arr (List.map cell_json r.cells));
      ("pass", J.Bool (exit_code r = 0));
    ]
