(** The loss × k × hold watchdog sweep behind {!Degraded.synthesize}:
    run candidate degraded-safe-mode parameterizations against
    scripted channel blackouts (the fault plan's [loss_profile] at
    [loss = 1]) over a grid of background loss levels, classify every
    trip as justified or false, and pick the (k, hold) that trips on
    the blackouts within the false-trip budget. Several blackout
    windows are scripted per trial: a blackout is only observable
    while the supervisor has traffic in flight, so a single window
    would stake detection on a session happening to straddle it. *)

type config = {
  base : Emulation.config;
      (** trial template; its [loss], [faults.loss_profile] and
          [degraded] fields are overridden per cell. *)
  losses : float list;  (** background average loss levels to sweep. *)
  ks : int list;  (** candidate consecutive-loss thresholds. *)
  holds : float list;  (** candidate hold durations, seconds. *)
  blackouts : (float * float) list;
      (** scripted total-blackout windows, [(start, duration)]. *)
  slack : float;
      (** detection-lag allowance after each blackout ends
          ({!Degraded.classify_trip}). *)
}

val default_config : Pte_core.Params.t -> config
(** 10-minute trials, losses {0, 25 %, 40 %}, k ∈ {2, 3, 5}, hold ∈
    {½, 1, 2} × the all-safe settle bound
    ({!Pte_core.Params.risky_dwell_bound}), three 60 s blackouts (at
    t = 150, 300, 450 s), 15 s detection slack. The trial template
    runs the laser at a high duty cycle (E(Ton) = 5 s, E(Toff) =
    120 s — request soon after each fall-back, emit until cancelled
    late): the watchdog counts supervisor send losses, and the
    supervisor only transmits while an exchange is live, so a
    traffic-bearing workload is what makes blackout detection a
    property of (k, hold) vs the channel. *)

val run_cell :
  config -> loss:float -> k:int -> hold:float -> Degraded.sweep_cell
(** One cell: a trial at background [loss] with the blackouts overlaid
    and the watchdog at (k, hold), trips classified (justified when
    any scripted window claims them; the detection delay is measured
    from the claiming window's start). *)

val sweep : ?workers:int -> config -> Degraded.sweep_cell list
(** The full grid as one {!Pte_campaign.Runner} campaign (all cores by
    default), in cell order. *)

val synthesize :
  ?workers:int ->
  ?max_false_trips:int ->
  config ->
  Degraded.sweep_cell list * Degraded.choice option
(** {!sweep}, then {!Degraded.synthesize} over the cells. *)
