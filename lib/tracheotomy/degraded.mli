(** Supervisor degraded-safe-mode: after [k] consecutive feedback losses
    (sends from the supervisor with no delivery confirmation, per
    {!Pte_net.Transport.consecutive_losses}) the supervisor stops
    granting or renewing leases — the wired approval input is forced to
    0 every instant, which no grant guard survives — and the system
    rides the lease self-reset down to all-safe. The mode re-arms after
    [hold] seconds. *)

type config = {
  k : int;  (** consecutive feedback losses that trip the mode. *)
  hold : float;  (** seconds to stay degraded before re-arming. *)
}

val default : Pte_core.Params.t -> config
(** [k = 3], [hold] = the pattern's all-safe settle bound
    T^max_wait + T^max_LS1 ({!Pte_core.Params.risky_dwell_bound}). *)

(** {2 Watchdog-parameter synthesis}

    A candidate (k, hold) is exercised against scripted channel
    blackouts ({!Degraded_synth}); every trip is classified as
    {e justified} (inside the blackout window, allowing for the
    detection lag) or a {e false trip} (the background loss alone
    tripped it), and {!synthesize} picks the parameterization that
    detects every blackout with the fewest false trips. *)

type trip_class = Justified | False_trip

val classify_trip :
  blackout_start:float ->
  blackout_end:float ->
  slack:float ->
  entered_at:float ->
  trip_class
(** Justified iff [entered_at] lies in
    [\[blackout_start, blackout_end +. slack)] — [slack] covers the
    detection lag: the k-th consecutive loss only becomes known one
    transport resolution after the blackout begins, and losses in
    flight at its end still surface afterwards. *)

(** One cell of the loss × k × hold sweep. *)
type sweep_cell = {
  sweep_loss : float;  (** background (non-blackout) average loss. *)
  sweep_k : int;
  sweep_hold : float;
  false_trips : int;  (** trips outside the blackout window (+slack). *)
  justified_trips : int;  (** trips inside it. *)
  detection_delay : float;
      (** first justified trip minus blackout start; [nan] when the
          blackout went undetected. *)
  failures : int;  (** PTE violation episodes in the cell's trial. *)
}

(** A synthesized (k, hold) with its aggregate quality over the loss
    axis. *)
type choice = {
  chosen_k : int;
  chosen_hold : float;
  total_false_trips : int;
  worst_detection_delay : float;
}

val synthesize : ?max_false_trips:int -> sweep_cell list -> choice option
(** Group the sweep by (k, hold) and pick the pair that detected the
    blackout at {e every} background loss level, kept every trial
    violation-free, and stayed within [max_false_trips] (default 0)
    summed over the sweep; ties break toward the fastest worst-case
    detection, then the shorter hold, then the smaller k. [None] when
    no pair qualifies. *)

val pp_trip_class : trip_class Fmt.t
val pp_sweep_cell : sweep_cell Fmt.t
val pp_choice : choice Fmt.t

type handle = {
  config : config;
  mutable entries : int;  (** times the mode was entered. *)
  mutable active : bool;
  mutable entered_at : float list;  (** entry times, newest first. *)
  mutable release_at : float option;
      (** the pending hold expiry, [Some (entered_at +. hold)] exactly
          while active. *)
}

val install : Pte_sim.Engine.t -> supervisor:string -> config -> handle
(** Register the watchdog process on [engine] (a no-op engine without a
    network). Must be installed {e after} the oximeter so its forced 0
    overwrites the oximeter's approval sample within each instant. The
    entry check polls per step, but the hold expiry is an executor
    timer: the mode exits (and the loss counter re-arms) at exactly
    [entered_at +. hold]. *)
