(** Supervisor degraded-safe-mode: after [k] consecutive feedback losses
    (sends from the supervisor with no delivery confirmation, per
    {!Pte_net.Transport.consecutive_losses}) the supervisor stops
    granting or renewing leases — the wired approval input is forced to
    0 every instant, which no grant guard survives — and the system
    rides the lease self-reset down to all-safe. The mode re-arms after
    [hold] seconds. *)

type config = {
  k : int;  (** consecutive feedback losses that trip the mode. *)
  hold : float;  (** seconds to stay degraded before re-arming. *)
}

val default : Pte_core.Params.t -> config
(** [k = 3], [hold] = the pattern's all-safe settle bound
    T^max_wait + T^max_LS1 ({!Pte_core.Params.risky_dwell_bound}). *)

type handle = {
  config : config;
  mutable entries : int;  (** times the mode was entered. *)
  mutable active : bool;
  mutable entered_at : float list;  (** entry times, newest first. *)
}

val install : Pte_sim.Engine.t -> supervisor:string -> config -> handle
(** Register the watchdog process on [engine] (a no-op engine without a
    network). Must be installed {e after} the oximeter so its forced 0
    overwrites the oximeter's approval sample within each instant. *)
