(** Rare-event certification of the laser-tracheotomy case study:
    sequential stopping plus importance splitting over fault-plan
    severity.

    Table I stops at ~200 replicates: 0 observed violations there only
    bounds the failure rate near 1e-2. This driver certifies (or
    refutes) bounds down at 1e-6..1e-9 in two phases per design:

    + {e Screen} ({!Pte_rare.Seq}): an SPRT of "violation rate <=
      p0" against "rate >= p1" on plain replicates. The without-lease
      baseline fails here within a handful of trials (its violation
      rate is ~1, so the test rejects almost immediately); only designs
      that survive the screen earn the expensive phase.
    + {e Certify} ({!Pte_rare.Split}): importance splitting whose
      particles are replayable [(fault plan, trial seed)] artifacts.
      The level function {!level_score} measures how close a trial came
      to a violation (risky-dwell fraction of the Lemma-2 bound,
      feedback-blackout depth, lease expiries, with the plan's
      {!Pte_faults.Severity.rank} as a lexicographic tiebreak); cloning
      a survivor replays its (plan, seed) prefix and
      {!Pte_faults.Severity.escalate}s the plan — message drops and
      loss-profile bumps by default, the paper's fault model.

    The resulting bound is the splitting estimator's joint Wilson upper
    bound; see DESIGN §12 for exactly what it does and does not
    guarantee. *)

type config = {
  target : float;  (** bound to certify, e.g. 1e-6. *)
  confidence : float;  (** joint confidence of the certificate. *)
  min_effective : float;
      (** floor on {!Pte_rare.Split.result.effective_trials} for a
          certificate to count (default 1e6) — a bound reached through
          too-coarse stages is reported but not certified. *)
  horizon : float;  (** trial length, seconds. *)
  screen : Pte_rare.Sprt.config option;
      (** the SPRT screen; [None] skips straight to splitting. *)
  screen_max : int;  (** screen trial budget. *)
  split : Pte_rare.Split.config;
  crashes : bool;
      (** allow crash escalations (outside the paper's fault model). *)
  workers : int option;
  seed : int;
}

val default : config
(** target 1e-6 at confidence 0.99, 1e6 effective-trial floor, 1800 s
    horizon, screen p0=1e-3 / p1=0.05 / α=β=0.05 capped at 200 trials,
    {!Pte_rare.Split.default} with 64 particles x 16 stages, no
    crashes, seed 9300. *)

val smoke : config
(** A seconds-scale variant for CI: 300 s horizon, 16 particles x 10
    stages, target 1e-3, 1e3 effective-trial floor. *)

val level_score :
  dwell_bound:float -> plan:Pte_faults.Plan.t -> Trial.result -> float
(** The splitting importance function. >= 1.0 iff the trial violated;
    otherwise a compound in [0, 0.995): 0.9 x (longest risky dwell /
    Lemma-2 bound) + saturating terms for feedback-blackout depth and
    ventilator lease expiries + a severity-rank tiebreak asymptotic to
    0.005 (rank/(rank+50), strictly increasing at any escalation depth
    so adaptive thresholds keep climbing when the continuous terms
    plateau — the level function is lexicographic in
    (closeness-to-violation, plan severity); a hard cap here stagnates
    deep runs once plans accumulate enough escalations). *)

(** One design under certification. *)
type design = { label : string; lease : bool; config : Emulation.config }

val designs : config -> design list
(** The case-study pair: with-lease and without-lease at the Table-I
    constants (25% bursty loss, bare transport) and the given horizon. *)

type cell = {
  design : design;
  screen : Pte_rare.Seq.result option;  (** [None] when skipped. *)
  split : Pte_rare.Split.result option;
      (** [None] when the screen already refuted. *)
  bound : float;  (** final upper bound on the violation rate. *)
  effective_trials : float;  (** 0 when the screen refuted. *)
  trials_run : int;  (** raw emulation trials spent on the cell. *)
  certified : bool;
      (** [bound <= target] and [effective_trials >= min_effective]. *)
}

type report = { config : config; cells : cell list }

val certify_design : config -> design -> cell
val run : ?config:config -> unit -> report
(** Certify both case-study designs. *)

val exit_code : report -> int
(** 0 iff every with-lease cell certified AND every without-lease cell
    failed to certify (the case study's expected shape: the lease is
    both necessary and sufficient at the target bound). *)

val pp_cell : cell Fmt.t
val pp_report : report Fmt.t

val report_to_json : report -> Pte_campaign.Json.t
(** For bench artifacts: per-cell verdicts, bounds, stage levels and
    effective trials. *)
