(** Variable-discipline analysis (codes L030–L033).

    L030 — a variable used in a flow, guard, invariant, or reset is not
    declared in the automaton's variable list. L031 — a variable is read
    (guard/invariant/reset right-hand side) but never written (initial
    value, reset target, or nonzero constant rate). L032 — a variable is
    written by a reset but never read anywhere. L033 — a declared
    variable appears nowhere at all.

    Automata containing any {!Pte_hybrid.Flow.Ode} flow get only L030:
    an ODE closure may read and drive any variable, so the read/write
    sets are unknowable statically. *)

val check : Pte_hybrid.Automaton.t -> Diagnostic.t list
