(** Variable-discipline analysis (see vars.mli). *)

open Pte_hybrid

let union_map f xs =
  List.fold_left (fun acc x -> Var.Set.union acc (f x)) Var.Set.empty xs

let reset_reads (reset : Reset.t) =
  List.fold_left
    (fun acc (target, a) ->
      match a with
      | Reset.Copy src -> Var.Set.add src acc
      | Reset.Add_const _ -> Var.Set.add target acc
      | Reset.Set_const _ -> acc)
    Var.Set.empty reset

let check (a : Automaton.t) =
  let name = a.Automaton.name in
  let declared = List.fold_left (fun s v -> Var.Set.add v s) Var.Set.empty a.Automaton.vars in
  let has_ode =
    List.exists
      (fun (l : Location.t) -> Flow.constant_rates l.Location.flow = None)
      a.Automaton.locations
  in
  let flow_vars =
    union_map
      (fun (l : Location.t) ->
        match Flow.constant_rates l.Location.flow with
        | Some rates ->
            List.fold_left (fun s (v, _) -> Var.Set.add v s) Var.Set.empty rates
        | None -> Var.Set.empty)
      a.Automaton.locations
  in
  let guard_reads =
    Var.Set.union
      (union_map (fun (l : Location.t) -> Guard.vars l.Location.invariant)
         a.Automaton.locations)
      (union_map (fun (e : Edge.t) -> Guard.vars e.Edge.guard) a.Automaton.edges)
  in
  let reads =
    Var.Set.union guard_reads
      (union_map (fun (e : Edge.t) -> reset_reads e.Edge.reset) a.Automaton.edges)
  in
  let reset_writes = union_map (fun (e : Edge.t) -> Reset.vars e.Edge.reset) a.Automaton.edges in
  let writes =
    Var.Set.union reset_writes
      (Var.Set.union
         (List.fold_left
            (fun s (v, _) -> Var.Set.add v s)
            Var.Set.empty a.Automaton.initial_values)
         (union_map
            (fun (l : Location.t) ->
              match Flow.constant_rates l.Location.flow with
              | Some rates ->
                  List.fold_left
                    (fun s (v, r) ->
                      if Float.abs r > Guard.eps then Var.Set.add v s else s)
                    Var.Set.empty rates
              | None -> Var.Set.empty)
            a.Automaton.locations))
  in
  let used = Var.Set.union flow_vars (Var.Set.union reads writes) in
  let undeclared =
    Var.Set.diff used declared |> Var.Set.elements
    |> List.map (fun v ->
           Diagnostic.v ~automaton:name "L030"
             (Fmt.str "variable %S is used but not declared" v))
  in
  if has_ode then undeclared
  else
    let never_written =
      Var.Set.diff (Var.Set.inter reads declared) writes
      |> Var.Set.elements
      |> List.map (fun v ->
             Diagnostic.v ~automaton:name "L031"
               (Fmt.str
                  "variable %S is read but never initialized, reset, or \
                   driven: it is constant 0"
                  v))
    in
    let never_read =
      Var.Set.diff (Var.Set.inter reset_writes declared) reads
      |> Var.Set.elements
      |> List.map (fun v ->
             Diagnostic.v ~automaton:name "L032"
               (Fmt.str "variable %S is reset but its value is never read" v))
    in
    let unused =
      Var.Set.diff declared used |> Var.Set.elements
      |> List.map (fun v ->
             Diagnostic.v ~automaton:name "L033"
               (Fmt.str "declared variable %S is never used" v))
    in
    undeclared @ never_written @ never_read @ unused
