(** Lint facade (see lint.mli). *)

module Diagnostic = Diagnostic
module Sync = Sync
open Pte_hybrid

type config = {
  topology : Sync.topology option;
  external_prefixes : string list;
  observable_roots : string list;
}

let default_config =
  { topology = None; external_prefixes = [ "stim_" ]; observable_roots = [] }

let lift_wellformed (a : Automaton.t) =
  List.map
    (function
      | Wellformed.Possible_time_block { location; reason } ->
          Diagnostic.v ~automaton:a.Automaton.name ~location "L040"
            (Fmt.str "possible time-block: %s" reason)
      | Wellformed.Possible_zeno_cycle { locations } ->
          Diagnostic.v ~automaton:a.Automaton.name "L041"
            (Fmt.str "possible zeno cycle through %s"
               (String.concat " -> " locations)))
    (Wellformed.check a)

let automaton_diags (a : Automaton.t) =
  Deadcode.check a @ Risky.check a @ Vars.check a @ lift_wellformed a

let lint_automaton a = List.sort_uniq Diagnostic.compare (automaton_diags a)

let lint_system ?(config = default_config) (system : System.t) =
  let per_automaton = List.concat_map automaton_diags system.System.automata in
  let wiring =
    Sync.check ?topology:config.topology
      ~external_prefixes:config.external_prefixes
      ~observable_roots:config.observable_roots system
  in
  List.sort_uniq Diagnostic.compare (per_automaton @ wiring)

let errors = List.filter Diagnostic.is_error
let has_errors diags = List.exists Diagnostic.is_error diags

let pp_report ppf = function
  | [] -> Fmt.pf ppf "no diagnostics"
  | diags -> Fmt.(list ~sep:(any "@.") Diagnostic.pp) ppf diags

let to_json ~system diags =
  let open Pte_util.Json in
  Obj
    [
      ("system", Str system);
      ("errors", Num (float_of_int (List.length (errors diags))));
      ( "warnings",
        Num
          (float_of_int
             (List.length (List.filter (fun d -> not (Diagnostic.is_error d)) diags)))
      );
      ("diagnostics", Arr (List.map Diagnostic.to_json diags));
    ]
