(** Structured lint diagnostics (see diagnostic.mli). *)

type severity = Error | Warning

type t = {
  code : string;
  severity : severity;
  automaton : string option;
  location : string option;
  edge : (string * string) option;
  message : string;
}

type info = {
  info_code : string;
  info_severity : severity;
  title : string;
  certifies : string;
}

(* The registry is the single source of truth for code -> severity and
   feeds the CLI's --codes listing and DESIGN.md §9. Codes are stable:
   retired codes are never reused. *)
let registry =
  [
    {
      info_code = "L001";
      info_severity = Warning;
      title = "sent event is never received by any other automaton";
      certifies =
        "every !l send participates in a synchronization (orphan sends \
         are trace markers at best; declare them observable)";
    };
    {
      info_code = "L002";
      info_severity = Error;
      title = "received event is never sent by any other automaton";
      certifies =
        "every ?l/??l receive edge can actually be triggered (Section \
         II-B event wiring; stim_* roots are environment stimuli)";
    };
    {
      info_code = "L003";
      info_severity = Error;
      title = "reliable ?l receive on a root that crosses the lossy star";
      certifies =
        "no automaton assumes reliable delivery over the wireless star \
         (the paper's channel model allows arbitrary loss: must be ??l)";
    };
    {
      info_code = "L004";
      info_severity = Warning;
      title = "lossy ??l receive on a root with wired-only senders";
      certifies =
        "loss annotations match the physical topology (??l on a wired \
         path weakens the model for no reason)";
    };
    {
      info_code = "L005";
      info_severity = Error;
      title = "receive reachable only via a remote-to-remote radio path";
      certifies =
        "the sink-based star has no remote-to-remote links (Section \
         II-B): such an event can never arrive";
    };
    {
      info_code = "L010";
      info_severity = Error;
      title = "unreachable location";
      certifies =
        "the automaton graph has no dead locations (typically a \
         mis-wired reconstruction of a paper figure)";
    };
    {
      info_code = "L011";
      info_severity = Error;
      title = "edge guard unsatisfiable under the source invariant";
      certifies =
        "every edge can fire for some valuation admitted by its source \
         location (interval analysis over the guard conjunction)";
    };
    {
      info_code = "L020";
      info_severity = Error;
      title = "risky location without an autonomous lease self-reset path";
      certifies =
        "Rule 1's shape: from every risky location a safe location is \
         reachable through eager, time-forced, non-receive edges alone — \
         the lease expiry path that needs no network cooperation";
    };
    {
      info_code = "L030";
      info_severity = Error;
      title = "undeclared variable in flow/guard/reset/invariant";
      certifies = "the automaton tuple is closed over its variable set V";
    };
    {
      info_code = "L031";
      info_severity = Warning;
      title = "variable read but never initialized, reset, or driven";
      certifies =
        "no guard tests a variable that is constant 0 by omission \
         (environment-driven variables should carry an initial value)";
    };
    {
      info_code = "L032";
      info_severity = Warning;
      title = "variable reset but never read";
      certifies = "every reset is observable by some guard or invariant";
    };
    {
      info_code = "L033";
      info_severity = Warning;
      title = "declared variable never used";
      certifies = "the declared variable set V carries no dead weight";
    };
    {
      info_code = "L040";
      info_severity = Error;
      title = "possible time-block (invariant can expire with no egress)";
      certifies =
        "footnote 3's time-block freedom (conservative, via \
         Pte_hybrid.Wellformed)";
    };
    {
      info_code = "L041";
      info_severity = Error;
      title = "possible zeno cycle of untimed spontaneous edges";
      certifies =
        "footnote 3's non-zenoness (conservative, via \
         Pte_hybrid.Wellformed)";
    };
  ]

let find_info code =
  List.find_opt (fun i -> String.equal i.info_code code) registry

let v ?automaton ?location ?edge code message =
  match find_info code with
  | None -> Fmt.invalid_arg "Diagnostic.v: unregistered code %s" code
  | Some info ->
      { code; severity = info.info_severity; automaton; location; edge; message }

let is_error d = d.severity = Error

let compare_opt cmp a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> cmp x y

let compare a b =
  let ( <?> ) c next = if c <> 0 then c else next () in
  compare_opt String.compare a.automaton b.automaton <?> fun () ->
  String.compare a.code b.code <?> fun () ->
  compare_opt String.compare a.location b.location <?> fun () ->
  compare_opt
    (fun (s1, d1) (s2, d2) ->
      String.compare s1 s2 <?> fun () -> String.compare d1 d2)
    a.edge b.edge
  <?> fun () -> String.compare a.message b.message

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"

let pp_site ppf d =
  match (d.automaton, d.location, d.edge) with
  | None, _, _ -> ()
  | Some a, Some l, _ -> Fmt.pf ppf " %s/%s:" a l
  | Some a, None, Some (src, dst) -> Fmt.pf ppf " %s/%s->%s:" a src dst
  | Some a, None, None -> Fmt.pf ppf " %s:" a

let pp ppf d =
  Fmt.pf ppf "%a[%s]%a %s" pp_severity d.severity d.code pp_site d d.message

let to_json d =
  let open Pte_util.Json in
  let opt k = function None -> [] | Some v -> [ (k, Str v) ] in
  Obj
    ([
       ("code", Str d.code);
       ("severity", Str (Fmt.str "%a" pp_severity d.severity));
     ]
    @ opt "automaton" d.automaton
    @ opt "location" d.location
    @ (match d.edge with
      | None -> []
      | Some (src, dst) -> [ ("edge", Obj [ ("src", Str src); ("dst", Str dst) ]) ])
    @ [ ("message", Str d.message) ])
