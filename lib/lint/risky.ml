(** Risky-dwell structure analysis (see risky.mli). *)

open Pte_hybrid

(* Will [guard] become true by just letting time pass in a location with
   flow [flow], regardless of the starting valuation admitted there?
   Conservative: true only for the trivially-true guard, or — under
   constant rates — when every lower-bound atom's variable strictly
   grows and every upper-bound atom's variable strictly shrinks, so each
   atom is eventually satisfied and stays satisfied. Ode flows are
   opaque, so only the trivial guard qualifies there. *)
let eventually_enabled ~(flow : Flow.t) (guard : Guard.t) =
  match guard with
  | [] -> true
  | atoms -> (
      match Flow.constant_rates flow with
      | None -> false
      | Some rates ->
          let rate v =
            match List.find_opt (fun (v', _) -> Var.equal v v') rates with
            | Some (_, r) -> r
            | None -> 0.
          in
          List.for_all
            (fun (a : Guard.atom) ->
              match a.Guard.cmp with
              | Guard.Ge | Guard.Gt -> rate a.Guard.var > Guard.eps
              | Guard.Le | Guard.Lt -> rate a.Guard.var < -.Guard.eps
              | Guard.Eq -> false)
            atoms)

(* An edge the automaton can take on its own: no synchronization trigger
   and eager, so the executor fires it the instant the guard holds. *)
let autonomous (e : Edge.t) =
  Edge.is_spontaneous e && e.Edge.urgency = Edge.Eager

let check (a : Automaton.t) =
  let name = a.Automaton.name in
  (* Monotone fixpoint: a location is "self-resetting" if it is safe, or
     some autonomous eventually-enabled edge leads to a self-resetting
     location. Linear in |E| per round, at most |V| rounds. *)
  let safe =
    List.filter_map
      (fun (l : Location.t) ->
        if Location.is_risky l then None else Some l.Location.name)
      a.Automaton.locations
  in
  let good = ref (List.fold_left (fun s l -> Var.Set.add l s) Var.Set.empty safe) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (l : Location.t) ->
        if not (Var.Set.mem l.Location.name !good) then
          let escapes =
            List.exists
              (fun (e : Edge.t) ->
                String.equal e.Edge.src l.Location.name
                && autonomous e
                && Var.Set.mem e.Edge.dst !good
                && eventually_enabled ~flow:l.Location.flow e.Edge.guard)
              a.Automaton.edges
          in
          if escapes then (
            good := Var.Set.add l.Location.name !good;
            changed := true))
      a.Automaton.locations
  done;
  List.filter_map
    (fun (l : Location.t) ->
      if (not (Location.is_risky l)) || Var.Set.mem l.Location.name !good then
        None
      else
        Some
          (Diagnostic.v ~automaton:name ~location:l.Location.name "L020"
             (Fmt.str
                "risky location %S has no autonomous time-forced path to a \
                 safe location: the lease cannot self-reset without network \
                 cooperation (Rule 1)"
                l.Location.name)))
    a.Automaton.locations
