(** Sync-label wiring analysis (see sync.mli). *)

open Pte_hybrid

type topology = { base : string; remotes : string list }

let is_node topology name =
  String.equal name topology.base
  || List.exists (String.equal name) topology.remotes

(* Does a frame from [sender] to [receiver] traverse a lossy star link?
   Exactly when both are star nodes and one of them is the base; two
   remotes have no link at all (the star drops the frame), and a non-node
   endpoint makes the path wired. Mirrors Pte_net.Star.link_for. *)
type path = Wired | Lossy | No_link

let path_kind topology ~sender ~receiver =
  if not (is_node topology sender && is_node topology receiver) then Wired
  else if String.equal sender topology.base || String.equal receiver topology.base
  then Lossy
  else No_link

let check ?topology ~external_prefixes ~observable_roots (system : System.t) =
  let is_external root =
    List.exists
      (fun prefix ->
        String.length root >= String.length prefix
        && String.equal (String.sub root 0 (String.length prefix)) prefix)
      external_prefixes
  in
  let is_observable root = List.exists (String.equal root) observable_roots in
  (* root -> names of automata with a !root edge *)
  let senders root =
    List.filter_map
      (fun (a : Automaton.t) ->
        let sends =
          List.exists
            (fun (e : Edge.t) ->
              match Edge.send_root e with
              | Some r -> String.equal r root
              | None -> false)
            a.Automaton.edges
        in
        if sends then Some a.Automaton.name else None)
      system.System.automata
  in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  List.iter
    (fun (a : Automaton.t) ->
      let me = a.Automaton.name in
      List.iter
        (fun (e : Edge.t) ->
          (match Edge.send_root e with
          | Some root
            when (not (is_observable root))
                 && System.listeners system root
                    |> List.for_all (fun (l : Automaton.t) ->
                           String.equal l.Automaton.name me) ->
              emit
                (Diagnostic.v ~automaton:me ~edge:(e.Edge.src, e.Edge.dst)
                   "L001"
                   (Fmt.str
                      "sent event %S is never received by any other \
                       automaton (broadcast into the void)"
                      root))
          | _ -> ());
          match (e.Edge.label, Edge.trigger_root e) with
          | Some label, Some root -> (
              let others =
                List.filter (fun s -> not (String.equal s me)) (senders root)
              in
              match others with
              | [] ->
                  if not (is_external root) then
                    emit
                      (Diagnostic.v ~automaton:me ~edge:(e.Edge.src, e.Edge.dst)
                         "L002"
                         (Fmt.str
                            "received event %S is never sent by any other \
                             automaton (orphan receive)"
                            root))
              | _ -> (
                  match topology with
                  | None -> ()
                  | Some topo ->
                      let paths =
                        List.map
                          (fun sender ->
                            path_kind topo ~sender ~receiver:me)
                          others
                      in
                      let lossy = Label.is_lossy label in
                      if
                        (not lossy)
                        && List.exists (fun p -> p = Lossy) paths
                      then
                        emit
                          (Diagnostic.v ~automaton:me
                             ~edge:(e.Edge.src, e.Edge.dst) "L003"
                             (Fmt.str
                                "reliable receive ?%s, but %s reaches %s \
                                 over the lossy wireless star: must be ??%s"
                                root
                                (String.concat "/"
                                   (List.filteri
                                      (fun i _ -> List.nth paths i = Lossy)
                                      others))
                                me root));
                      if lossy && List.for_all (fun p -> p = Wired) paths then
                        emit
                          (Diagnostic.v ~automaton:me
                             ~edge:(e.Edge.src, e.Edge.dst) "L004"
                             (Fmt.str
                                "lossy receive ??%s, but every sender (%s) \
                                 reaches %s over a wired path: ?%s suffices"
                                root
                                (String.concat "/" others)
                                me root));
                      if List.for_all (fun p -> p = No_link) paths then
                        emit
                          (Diagnostic.v ~automaton:me
                             ~edge:(e.Edge.src, e.Edge.dst) "L005"
                             (Fmt.str
                                "event %S can only arrive remote-to-remote \
                                 (from %s), but the star has no such link"
                                root
                                (String.concat "/" others)))))
          | _ -> ())
        a.Automaton.edges)
    system.System.automata;
  List.rev !diags
