(** Structured lint diagnostics.

    Every analysis in [pte_lint] reports through this one type: a stable
    code (["L001"]…, never renumbered), a severity, provenance down to
    the automaton / location / edge, and a human message. The CLI, the
    test fixtures, the [--json] report and the Graphviz highlighting all
    key off the code. *)

type severity = Error | Warning

type t = {
  code : string;  (** stable identifier, ["L001"].. *)
  severity : severity;
  automaton : string option;
  location : string option;
  edge : (string * string) option;  (** (src, dst) of the diagnosed edge *)
  message : string;
}

val v :
  ?automaton:string ->
  ?location:string ->
  ?edge:string * string ->
  string ->
  string ->
  t
(** [v code message] builds a diagnostic; the severity is looked up in
    {!registry}. Raises [Invalid_argument] on an unregistered code. *)

(** {1 Code registry} *)

type info = {
  info_code : string;
  info_severity : severity;
  title : string;  (** one-line summary for [--codes] listings *)
  certifies : string;
      (** which paper assumption a clean run certifies (DESIGN.md §9) *)
}

val registry : info list
(** Every diagnostic code, in code order. *)

val find_info : string -> info option

(** {1 Ordering, printing, JSON} *)

val compare : t -> t -> int
(** Total deterministic order: automaton, code, location, edge, message. *)

val is_error : t -> bool
val pp_severity : severity Fmt.t
val pp : t Fmt.t
(** [error[L020] laser/Risky Core: …] — one line, stable. *)

val to_json : t -> Pte_util.Json.t
