(** Reachability and dead-code analysis (codes L010, L011).

    L010 — locations not reachable from the initial location over the
    edge graph (every edge is taken as potentially firable, so an
    unreachable verdict is sound). L011 — edges whose guard is
    unsatisfiable under their source location's invariant, by interval
    analysis over each variable ({!Pte_hybrid.Guard.compatible}): such
    an edge can never fire. *)

val check : Pte_hybrid.Automaton.t -> Diagnostic.t list
