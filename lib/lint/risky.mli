(** Risky-dwell structure analysis (code L020): every risky location
    must be able to reach a safe location through edges that need no
    network cooperation — spontaneous (no receive trigger), eager, and
    eventually enabled by time alone under the location's flow. This is
    the static shape of the paper's Rule 1: the lease expiry path that
    returns a device to fall-back even when every peer is silent. *)

val check : Pte_hybrid.Automaton.t -> Diagnostic.t list
