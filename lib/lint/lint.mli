(** [pte_lint] — static analyses over hybrid-automata systems.

    Runs every analysis (sync wiring L001–L005, reachability/dead code
    L010–L011, risky-dwell structure L020, variable discipline
    L030–L033, and the {!Pte_hybrid.Wellformed} time-block / zeno checks
    lifted as L040–L041) and returns one deterministically ordered list
    of {!Diagnostic.t}. A clean run over a shipped system is a static
    certificate for the modeling assumptions listed in DESIGN.md §9. *)

module Diagnostic = Diagnostic
module Sync = Sync

type config = {
  topology : Sync.topology option;
      (** star shape for the channel-reliability checks (L003–L005);
          [None] skips them *)
  external_prefixes : string list;
      (** receive roots with these prefixes are environment stimuli *)
  observable_roots : string list;
      (** send roots allowed to have no listener (trace markers) *)
}

val default_config : config
(** No topology, [external_prefixes = ["stim_"]], no observable roots —
    the repo-wide conventions (lib/core/events.ml). *)

val lint_automaton : Pte_hybrid.Automaton.t -> Diagnostic.t list
(** All per-automaton analyses (everything except sync wiring), sorted
    by {!Diagnostic.compare}. *)

val lint_system : ?config:config -> Pte_hybrid.System.t -> Diagnostic.t list
(** Per-automaton analyses over every member plus system-level sync
    wiring, sorted by {!Diagnostic.compare}. *)

val errors : Diagnostic.t list -> Diagnostic.t list
val has_errors : Diagnostic.t list -> bool

val pp_report : Diagnostic.t list Fmt.t
(** One diagnostic per line; ["no diagnostics"] when clean. *)

val to_json : system:string -> Diagnostic.t list -> Pte_util.Json.t
(** [{"system": …, "errors": n, "warnings": n, "diagnostics": […]}]. *)
