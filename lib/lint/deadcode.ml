(** Reachability and dead-code analysis (see deadcode.mli). *)

open Pte_hybrid

(* Locations reachable from the initial location, treating every edge as
   potentially firable — an over-approximation of dynamic reachability,
   so "unreachable" verdicts are sound. *)
let reachable (a : Automaton.t) =
  let rec grow seen frontier =
    match frontier with
    | [] -> seen
    | loc :: rest ->
        let next =
          Automaton.edges_from a loc
          |> List.filter_map (fun (e : Edge.t) ->
                 if Var.Set.mem e.Edge.dst seen then None else Some e.Edge.dst)
        in
        let seen = List.fold_left (fun s l -> Var.Set.add l s) seen next in
        grow seen (next @ rest)
  in
  grow
    (Var.Set.singleton a.Automaton.initial_location)
    [ a.Automaton.initial_location ]

let check (a : Automaton.t) =
  let name = a.Automaton.name in
  let seen = reachable a in
  let unreachable =
    List.filter_map
      (fun (l : Location.t) ->
        if Var.Set.mem l.Location.name seen then None
        else
          Some
            (Diagnostic.v ~automaton:name ~location:l.Location.name "L010"
               (Fmt.str "location %S is unreachable from the initial \
                         location %S"
                  l.Location.name a.Automaton.initial_location)))
      a.Automaton.locations
  in
  let dead_edges =
    List.filter_map
      (fun (e : Edge.t) ->
        match Automaton.find_location a e.Edge.src with
        | None -> None (* dangling src is Automaton.validate's business *)
        | Some src ->
            if Guard.compatible src.Location.invariant e.Edge.guard then None
            else
              Some
                (Diagnostic.v ~automaton:name ~edge:(e.Edge.src, e.Edge.dst)
                   "L011"
                   (Fmt.str
                      "guard %a is unsatisfiable under %S's invariant %a: \
                       edge can never fire"
                      Guard.pp e.Edge.guard e.Edge.src Guard.pp
                      src.Location.invariant)))
      a.Automaton.edges
  in
  unreachable @ dead_edges
