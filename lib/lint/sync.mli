(** Sync-label wiring analysis (codes L001–L005): every send has a
    listener, every receive a sender, and the reliability prefix of each
    receive matches the physical path the event travels.

    The channel-reliability checks (L003–L005) need to know which
    automata sit on the wireless star; pass the star's shape as
    [?topology] (they are skipped without it, since a bare
    {!Pte_hybrid.System.t} carries no network information). *)

type topology = {
  base : string;  (** the sink ξ0 *)
  remotes : string list;  (** star nodes; everything else is wired *)
}

val check :
  ?topology:topology ->
  external_prefixes:string list ->
  observable_roots:string list ->
  Pte_hybrid.System.t ->
  Diagnostic.t list
(** [external_prefixes] — roots starting with one of these are
    environment stimuli (injected by scenarios, no in-system sender
    required; default convention ["stim_"]). [observable_roots] — sends
    allowed to have no listener (trace markers such as the ventilator's
    stroke-reversal broadcasts). *)
