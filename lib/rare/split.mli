(** Importance splitting (adaptive multilevel / RESTART-style) for
    rare-event probability bounds.

    Direct Monte-Carlo needs ~[3/p] trials to see a p-probability event
    at all; at the 1e-6..1e-9 failure rates a certification campaign
    targets, that is years of emulation. Splitting factors the rare
    event into a chain of conditional events, each common enough to
    estimate with a small fixed effort:

      P(score >= target) = Π_k P(score >= L_{k+1} | score >= L_k)

    Levels are chosen adaptively (Cérou–Guyader): each stage runs
    [particles] independent trials, keeps the top [keep] fraction by
    {!model.score}, and clones the survivors (cyclically, via
    {!model.extend}) to refill the population. The product of the
    per-stage survival fractions estimates the rare-event probability;
    the per-stage Wilson upper bounds at Šidák-adjusted confidence
    multiply into a joint upper bound (see DESIGN §12 for the soundness
    caveats — the bound is exact only conditional on the importance
    policy explored; paths pruned below every level are not covered).

    Determinism: every particle at stage [k], slot [i] draws from the
    stream [keyed root ~key:(k, i)], so the result is bit-identical at
    any worker count and replayable from the root seed alone. *)

type 'p model = {
  init : Pte_util.Rng.t -> 'p;
      (** fresh trial from scratch (stage-0 particle). *)
  extend : 'p -> Pte_util.Rng.t -> 'p;
      (** clone a survivor and push it further toward the event; must
          preserve the survivor's achievements (score must not be able
          to regress below the level it survived at — in the fault-plan
          instantiation the clone replays the survivor's (plan, seed)
          prefix and only appends severity). *)
  score : 'p -> float;
      (** importance of the particle; the event is [score >= target].
          Must be finite. *)
  target : float;  (** the score at which the rare event has occurred. *)
}

type config = {
  particles : int;  (** population per stage (N). *)
  keep : float;  (** survivor fraction per stage (in (0, 1)). *)
  max_stages : int;  (** stage budget before giving up. *)
  confidence : float;  (** joint confidence of [upper_bound]. *)
  workers : int option;  (** domains for the per-stage map. *)
}

val default : config
(** 64 particles, keep 1/8, 16 stages, 0.99 confidence. *)

val validate : config -> (unit, string) result

type stage = {
  index : int;
  threshold : float;  (** the adaptive level this stage established. *)
  survivors : int;
      (** particles carried into the next stage: exactly the keep
          budget in intermediate stages (top-m selection, stable
          slot-index tiebreak), the count reaching [target] in the
          terminal stage. *)
  attempts : int;  (** particles evaluated ([= particles]). *)
  p_hat : float;  (** survivors / attempts. *)
  p_upper : float;
      (** Wilson upper bound on the stage's conditional probability at
          the Šidák-adjusted per-stage confidence. *)
}

type result = {
  stages : stage list;  (** in execution order; last = terminal stage. *)
  hits : int;  (** terminal-stage particles reaching [target]. *)
  estimate : float;  (** product estimator Π p̂_k. *)
  upper_bound : float;
      (** joint upper confidence bound: Π (per-stage Wilson uppers),
          with the exact zero-hit binomial bound on a 0-hit terminal
          stage. *)
  effective_trials : float;
      (** the direct-Monte-Carlo sample size this run is worth:
          terminal attempts / Π_{k<terminal} p̂_k. *)
  trials_run : int;  (** raw trials actually executed. *)
  stagnated : bool;
      (** the adaptive threshold failed to increase strictly — the
          score plateaued below [target]; [upper_bound] is then 1.0
          (no certification). *)
}

val run : ?config:config -> seed:int -> 'p model -> result
(** Raises [Invalid_argument] on an invalid config or a non-finite
    score. *)

val pp_stage : stage Fmt.t
val pp_result : result Fmt.t
