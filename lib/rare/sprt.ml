type config = { p0 : float; p1 : float; alpha : float; beta : float }

let validate c =
  if not (0.0 < c.p0 && c.p0 < c.p1 && c.p1 < 1.0) then
    Error
      (Format.asprintf "SPRT needs 0 < p0 < p1 < 1 (got p0=%g p1=%g)" c.p0
         c.p1)
  else if not (0.0 < c.alpha && c.alpha <= 0.5 && 0.0 < c.beta && c.beta <= 0.5)
  then
    Error
      (Format.asprintf "SPRT needs alpha, beta in (0, 1/2] (got %g, %g)"
         c.alpha c.beta)
  else Ok ()

type verdict = Accept_bound | Reject_bound | Continue

type t = {
  cfg : config;
  (* per-observation LLR increments, precomputed once *)
  inc_hit : float;
  inc_miss : float;
  (* Wald boundaries *)
  upper : float;  (* llr >= upper: accept H1, reject the bound *)
  lower : float;  (* llr <= lower: accept H0, certify the bound *)
  mutable llr : float;
  mutable n : int;
  mutable hits : int;
}

let create cfg =
  (match validate cfg with Ok () -> () | Error e -> invalid_arg e);
  {
    cfg;
    inc_hit = log (cfg.p1 /. cfg.p0);
    inc_miss = log ((1.0 -. cfg.p1) /. (1.0 -. cfg.p0));
    upper = log ((1.0 -. cfg.beta) /. cfg.alpha);
    lower = log (cfg.beta /. (1.0 -. cfg.alpha));
    llr = 0.0;
    n = 0;
    hits = 0;
  }

let config t = t.cfg
let n t = t.n
let hits t = t.hits
let llr t = t.llr

let observe t violated =
  t.n <- t.n + 1;
  if violated then begin
    t.hits <- t.hits + 1;
    t.llr <- t.llr +. t.inc_hit
  end
  else t.llr <- t.llr +. t.inc_miss

let verdict t =
  if t.llr >= t.upper then Reject_bound
  else if t.llr <= t.lower then Accept_bound
  else Continue

let pp_verdict ppf = function
  | Accept_bound -> Fmt.string ppf "accept-bound"
  | Reject_bound -> Fmt.string ppf "reject-bound"
  | Continue -> Fmt.string ppf "continue"

module Okamoto = struct
  let check ~bound ~confidence =
    if not (0.0 < bound && bound < 1.0) then
      invalid_arg (Format.asprintf "Okamoto: bound %g outside (0,1)" bound);
    if not (0.0 < confidence && confidence < 1.0) then
      invalid_arg
        (Format.asprintf "Okamoto: confidence %g outside (0,1)" confidence)

  let required_trials ~bound ~confidence =
    check ~bound ~confidence;
    (* least n with (1 - bound)^n <= 1 - confidence *)
    let n = log (1.0 -. confidence) /. log (1.0 -. bound) in
    int_of_float (ceil n)

  let upper_bound ~n ~hits ~confidence =
    check ~bound:0.5 ~confidence;
    if n <= 0 then 1.0
    else if hits = 0 then
      (* exact binomial: largest p with (1-p)^n >= 1 - confidence *)
      1.0 -. ((1.0 -. confidence) ** (1.0 /. float_of_int n))
    else
      let p_hat = float_of_int hits /. float_of_int n in
      let slack =
        sqrt (log (1.0 /. (1.0 -. confidence)) /. (2.0 *. float_of_int n))
      in
      Float.min 1.0 (p_hat +. slack)
end
