(** Streaming sequential campaign driver: run Bernoulli trials until a
    stopping rule concludes, instead of a fixed replicate count.

    Trials are planned lazily: trial [i] draws from the stream
    [keyed (create seed) ~key:i], so the plan is unbounded, any prefix
    is replayable, and no array of seeds is materialized. Batches of
    [batch] trials are evaluated on the worker pool, then folded into
    the stopping statistic {e in index order}; the verdict and the
    reported trial count therefore depend only on [(seed, rule, batch)]
    — never on the worker count (trials evaluated past the concluding
    index inside the final batch are discarded deterministically).

    Checkpointing reuses the campaign JSONL format: one
    {!Pte_campaign.Job.outcome} line per trial with a single
    ["violation"] metric, under a header whose digest pins the seed
    {e and the stopping rule} — resuming with a different rule (or a
    different library version) is refused, because a sequential
    statistic replayed into a different test is invalid. *)

type rule =
  | Sprt of Sprt.config
      (** certify p <= p0 / refute at p >= p1 (Wald). *)
  | Okamoto of { bound : float; confidence : float }
      (** fixed-confidence single-sampling plan
          ({!Sprt.Okamoto.required_trials}). *)

type verdict =
  | Certified  (** the rule accepted the bound. *)
  | Refuted  (** the rule concluded the rate exceeds the bound. *)
  | Inconclusive  (** trial budget exhausted without a conclusion. *)

type result = {
  verdict : verdict;
  trials : int;  (** trials folded into the statistic. *)
  hits : int;  (** violations among them. *)
  upper_bound : float;
      (** one-sided upper confidence bound on the violation rate from
          the folded sample ({!Sprt.Okamoto.upper_bound}, at the rule's
          confidence) — informative alongside the verdict. *)
  rule : rule;
}

val rule_confidence : rule -> float
(** [1 - alpha] for SPRT, the plan's confidence for Okamoto. *)

val run :
  ?workers:int ->
  ?batch:int ->
  ?max_trials:int ->
  ?checkpoint:string ->
  ?resume:bool ->
  rule:rule ->
  seed:int ->
  (Pte_util.Rng.t -> bool) ->
  result
(** [run ~rule ~seed trial] — [trial rng] must return [true] iff the
    replicate violated, must be thread-safe, and must draw all its
    randomness from the given stream. [batch] defaults to 32,
    [max_trials] to 100_000. [checkpoint] appends each folded trial to
    a JSONL file; [resume] replays a previous file's outcomes into the
    statistic before running new trials. Raises
    [Pte_campaign.Checkpoint.Mismatch] on a foreign or cross-version
    checkpoint. *)

val pp_verdict : verdict Fmt.t
val pp_result : result Fmt.t
