module Rng = Pte_util.Rng
module Stats = Pte_util.Stats
module Pool = Pte_campaign.Pool

type 'p model = {
  init : Rng.t -> 'p;
  extend : 'p -> Rng.t -> 'p;
  score : 'p -> float;
  target : float;
}

type config = {
  particles : int;
  keep : float;
  max_stages : int;
  confidence : float;
  workers : int option;
}

let default =
  {
    particles = 64;
    keep = 0.125;
    max_stages = 16;
    confidence = 0.99;
    workers = None;
  }

let survivor_budget c = max 1 (int_of_float (c.keep *. float_of_int c.particles))

let validate c =
  if c.particles < 2 then
    Error (Format.asprintf "splitting needs >= 2 particles (got %d)" c.particles)
  else if not (0.0 < c.keep && c.keep < 1.0) then
    Error (Format.asprintf "keep fraction %g outside (0, 1)" c.keep)
  else if survivor_budget c >= c.particles then
    Error
      (Format.asprintf
         "keep %g of %d particles leaves no room to climb (all survive)"
         c.keep c.particles)
  else if c.max_stages < 1 then
    Error (Format.asprintf "stage budget %d < 1" c.max_stages)
  else if not (0.0 < c.confidence && c.confidence < 1.0) then
    Error (Format.asprintf "confidence %g outside (0, 1)" c.confidence)
  else Ok ()

type stage = {
  index : int;
  threshold : float;
  survivors : int;
  attempts : int;
  p_hat : float;
  p_upper : float;
}

type result = {
  stages : stage list;
  hits : int;
  estimate : float;
  upper_bound : float;
  effective_trials : float;
  trials_run : int;
  stagnated : bool;
}

(* Independent stream per (stage, slot), derived without ordering
   constraints so the worker pool's schedule cannot matter. *)
let slot_rng root ~stage ~slot =
  let key =
    Int64.logor
      (Int64.shift_left (Int64.of_int (stage + 1)) 32)
      (Int64.of_int slot)
  in
  Rng.keyed root ~key

let stage_upper ~conf ~n ~hits =
  if hits = 0 then
    (* exact binomial zero-hit bound; Wilson is only approximate here *)
    1.0 -. ((1.0 -. conf) ** (1.0 /. float_of_int n))
  else Stats.wilson_upper ~confidence:conf ~n ~hits ()

let run ?(config = default) ~seed model =
  (match validate config with Ok () -> () | Error e -> invalid_arg e);
  let n = config.particles in
  let nf = float_of_int n in
  let budget = survivor_budget config in
  (* Joint confidence across at most max_stages + 1 Wilson bounds
     (Šidák): each stage certified at confidence^(1/(max_stages+1)), so
     the product of the uppers holds jointly at [confidence] even when
     every stage consumes its allowance. *)
  let conf =
    config.confidence ** (1.0 /. float_of_int (config.max_stages + 1))
  in
  let root = Rng.create seed in
  let workers = config.workers in
  let scored stage particles =
    let slots = Array.init n (fun i -> i) in
    Pool.map ?workers
      (fun i ->
        let rng = slot_rng root ~stage ~slot:i in
        let p =
          match particles with
          | None -> model.init rng
          | Some survivors ->
              model.extend survivors.(i mod Array.length survivors) rng
        in
        let s = model.score p in
        if not (Float.is_finite s) then
          invalid_arg
            (Format.asprintf "Split.run: non-finite score %g at stage %d" s
               stage);
        (p, s))
      slots
  in
  let rec go stage prev_threshold survivors acc =
    let pop = scored stage survivors in
    let hits_now =
      Array.fold_left
        (fun k (_, s) -> if s >= model.target then k + 1 else k)
        0 pop
    in
    let sorted = Array.map snd pop in
    Array.sort (fun a b -> compare b a) sorted;
    let threshold = sorted.(budget - 1) in
    let last_stage = stage >= config.max_stages - 1 in
    if threshold >= model.target || last_stage then
      (* terminal stage: count hits at the actual target *)
      let p_hat = float_of_int hits_now /. nf in
      let st =
        {
          index = stage;
          threshold = model.target;
          survivors = hits_now;
          attempts = n;
          p_hat;
          p_upper = stage_upper ~conf ~n ~hits:hits_now;
        }
      in
      (List.rev (st :: acc), hits_now, false)
    else if threshold <= prev_threshold then
      (* the score plateaued: cloning no longer makes progress and the
         conditional-probability factorization breaks down *)
      let st =
        {
          index = stage;
          threshold;
          survivors = 0;
          attempts = n;
          p_hat = 0.0;
          p_upper = 1.0;
        }
      in
      (List.rev (st :: acc), 0, true)
    else
      (* fixed-effort splitting: keep exactly the top [budget] particles
         (stable slot-index tiebreak). Keeping everything at or above
         the threshold instead lets tie clusters — clones whose scores
         differ only in the severity tiebreak — survive en masse,
         inflating p̂ toward 1 and stalling the product estimator. *)
      let ranked = Array.mapi (fun i (p, s) -> (s, i, p)) pop in
      Array.sort
        (fun (sa, ia, _) (sb, ib, _) ->
          match compare sb sa with 0 -> compare ia ib | c -> c)
        ranked;
      let keepers =
        Array.init budget (fun i ->
            let _, _, p = ranked.(i) in
            p)
      in
      let st =
        {
          index = stage;
          threshold;
          survivors = budget;
          attempts = n;
          p_hat = float_of_int budget /. nf;
          p_upper = stage_upper ~conf ~n ~hits:budget;
        }
      in
      go (stage + 1) threshold (Some keepers) (st :: acc)
  in
  let stages, hits, stagnated = go 0 neg_infinity None [] in
  let estimate =
    if stagnated then 0.0
    else List.fold_left (fun acc st -> acc *. st.p_hat) 1.0 stages
  in
  let upper_bound =
    if stagnated then 1.0
    else List.fold_left (fun acc st -> acc *. st.p_upper) 1.0 stages
  in
  let effective_trials =
    if stagnated then 0.0
    else
      match List.rev stages with
      | terminal :: earlier ->
          let prefix =
            List.fold_left (fun acc st -> acc *. st.p_hat) 1.0 earlier
          in
          if prefix > 0.0 then float_of_int terminal.attempts /. prefix
          else 0.0
      | [] -> 0.0
  in
  {
    stages;
    hits;
    estimate;
    upper_bound;
    effective_trials;
    trials_run = n * List.length stages;
    stagnated;
  }

let pp_stage ppf st =
  Fmt.pf ppf "stage %d: level %g, %d/%d survive (p̂=%.3g, upper %.3g)"
    st.index st.threshold st.survivors st.attempts st.p_hat st.p_upper

let pp_result ppf r =
  Fmt.pf ppf "@[<v>%a@,%s: estimate %.3g, upper bound %.3g, %g effective \
              trials (%d run over %d stages)@]"
    (Fmt.list ~sep:Fmt.cut pp_stage)
    r.stages
    (if r.stagnated then "STAGNATED" else "converged")
    r.estimate r.upper_bound r.effective_trials r.trials_run
    (List.length r.stages)
