module Rng = Pte_util.Rng
module Pool = Pte_campaign.Pool
module Job = Pte_campaign.Job
module Checkpoint = Pte_campaign.Checkpoint

type rule =
  | Sprt of Sprt.config
  | Okamoto of { bound : float; confidence : float }

type verdict = Certified | Refuted | Inconclusive

type result = {
  verdict : verdict;
  trials : int;
  hits : int;
  upper_bound : float;
  rule : rule;
}

let rule_confidence = function
  | Sprt c -> 1.0 -. c.alpha
  | Okamoto { confidence; _ } -> confidence

let validate_rule = function
  | Sprt c -> (
      match Sprt.validate c with Ok () -> () | Error e -> invalid_arg e)
  | Okamoto { bound; confidence } ->
      if not (0.0 < bound && bound < 1.0) then
        invalid_arg (Format.asprintf "Seq: bound %g outside (0,1)" bound);
      if not (0.0 < confidence && confidence < 1.0) then
        invalid_arg
          (Format.asprintf "Seq: confidence %g outside (0,1)" confidence)

(* The digest pins seed AND rule: replaying a recorded 0/1 stream into a
   different sequential test would silently invalidate its error rates. *)
let digest_of rule seed =
  match rule with
  | Sprt c ->
      Format.asprintf "seq-sprt/%d/p0=%.17g/p1=%.17g/a=%.17g/b=%.17g" seed
        c.Sprt.p0 c.Sprt.p1 c.Sprt.alpha c.Sprt.beta
  | Okamoto { bound; confidence } ->
      Format.asprintf "seq-okamoto/%d/bound=%.17g/conf=%.17g" seed bound
        confidence

(* Mutable fold state over the 0/1 stream. *)
type state =
  | S of Sprt.t
  | O of {
      bound : float;
      confidence : float;
      needed : int;
      mutable n : int;
      mutable hits : int;
    }

let init_state = function
  | Sprt c -> S (Sprt.create c)
  | Okamoto { bound; confidence } ->
      O
        {
          bound;
          confidence;
          needed = Sprt.Okamoto.required_trials ~bound ~confidence;
          n = 0;
          hits = 0;
        }

let state_n = function S s -> Sprt.n s | O o -> o.n
let state_hits = function S s -> Sprt.hits s | O o -> o.hits

let observe st violated =
  match st with
  | S s -> Sprt.observe s violated
  | O o ->
      o.n <- o.n + 1;
      if violated then o.hits <- o.hits + 1

let conclude st ~max_trials =
  match st with
  | S s -> (
      match Sprt.verdict s with
      | Sprt.Accept_bound -> Some Certified
      | Sprt.Reject_bound -> Some Refuted
      | Sprt.Continue ->
          if Sprt.n s >= max_trials then Some Inconclusive else None)
  | O o ->
      let plan_n = min o.needed max_trials in
      if o.n >= plan_n then
        let up =
          Sprt.Okamoto.upper_bound ~n:o.n ~hits:o.hits
            ~confidence:o.confidence
        in
        Some
          (if up <= o.bound then Certified
           else if o.n >= o.needed then Refuted
           else Inconclusive)
      else if o.hits > 0 then
        (* early refutation: even finishing the plan with no further
           hits cannot push the upper bound below the target *)
        let best_possible =
          (float_of_int o.hits /. float_of_int o.needed)
          +. sqrt
               (log (1.0 /. (1.0 -. o.confidence))
               /. (2.0 *. float_of_int o.needed))
        in
        if best_possible > o.bound then Some Refuted else None
      else None

let run ?workers ?(batch = 32) ?(max_trials = 100_000) ?checkpoint
    ?(resume = false) ~rule ~seed trial =
  validate_rule rule;
  if batch < 1 then invalid_arg "Seq.run: batch < 1";
  if max_trials < 1 then invalid_arg "Seq.run: max_trials < 1";
  let root = Rng.create seed in
  let trial_rng i = Rng.keyed root ~key:(Int64.of_int i) in
  let digest = digest_of rule seed in
  let header = Checkpoint.make_header ~seed ~cells:1 ~reps:max_trials ~digest in
  let st = init_state rule in
  let concluded = ref None in
  let fold violated =
    observe st violated;
    concluded := conclude st ~max_trials
  in
  (* Resume: replay the recorded contiguous prefix into the statistic. *)
  let start =
    match checkpoint with
    | Some path when resume -> (
        (match Checkpoint.read_header path with
        | None -> ()
        | Some h ->
            if h.Checkpoint.version <> header.Checkpoint.version then
              raise
                (Checkpoint.Mismatch
                   (Format.asprintf
                      "checkpoint %s was written by library version %S; \
                       this build is %S — a sequential statistic cannot be \
                       resumed across versions"
                      path h.Checkpoint.version header.Checkpoint.version))
            else if h.Checkpoint.seed <> seed || h.Checkpoint.digest <> digest
            then
              raise
                (Checkpoint.Mismatch
                   (Format.asprintf
                      "checkpoint %s records a different certification run \
                       (%a); asked to resume seed %d, rule digest %s"
                      path Checkpoint.pp_header h seed digest)));
        let by_id = Hashtbl.create 256 in
        List.iter
          (fun (o : Job.outcome) ->
            if Job.outcome_ok o && not (Hashtbl.mem by_id o.Job.id) then
              Hashtbl.add by_id o.Job.id o)
          (Checkpoint.load path);
        let rec replay i =
          if !concluded <> None then i
          else
            match Hashtbl.find_opt by_id i with
            | None -> i
            | Some o ->
                let violated =
                  match List.assoc_opt "violation" o.Job.metrics with
                  | Some v -> v <> 0.0
                  | None -> false
                in
                fold violated;
                replay (i + 1)
        in
        replay 0)
    | _ -> 0
  in
  let writer =
    match checkpoint with
    | None -> None
    | Some path -> Some (Checkpoint.open_writer ~append:resume ~header path)
  in
  let record i violated =
    match writer with
    | None -> ()
    | Some w ->
        Checkpoint.record w
          {
            Job.id = i;
            cell = 0;
            rep = i;
            attempts = 1;
            status = Job.Done;
            metrics = [ ("violation", if violated then 1.0 else 0.0) ];
          }
  in
  let i = ref start in
  while !concluded = None && !i < max_trials do
    let b = min batch (max_trials - !i) in
    let idx = Array.init b (fun k -> !i + k) in
    (* evaluate the whole batch in parallel, fold in index order: the
       verdict depends on (seed, rule, batch) only, never on workers *)
    let outs = Pool.map ?workers (fun j -> trial (trial_rng j)) idx in
    Array.iteri
      (fun k violated ->
        if !concluded = None then begin
          fold violated;
          record idx.(k) violated
        end)
      outs;
    i := !i + b
  done;
  Option.iter Checkpoint.close writer;
  let n = state_n st and hits = state_hits st in
  let verdict =
    match !concluded with
    | Some v -> v
    | None -> Inconclusive (* max_trials = 0 trials folded can't happen *)
  in
  let upper_bound =
    Sprt.Okamoto.upper_bound ~n ~hits ~confidence:(rule_confidence rule)
  in
  { verdict; trials = n; hits; upper_bound; rule }

let pp_verdict ppf = function
  | Certified -> Fmt.string ppf "CERTIFIED"
  | Refuted -> Fmt.string ppf "REFUTED"
  | Inconclusive -> Fmt.string ppf "INCONCLUSIVE"

let pp_rule ppf = function
  | Sprt c ->
      Fmt.pf ppf "SPRT p0=%g p1=%g α=%g β=%g" c.Sprt.p0 c.Sprt.p1 c.Sprt.alpha
        c.Sprt.beta
  | Okamoto { bound; confidence } ->
      Fmt.pf ppf "Okamoto bound=%g conf=%g" bound confidence

let pp_result ppf r =
  Fmt.pf ppf "%a after %d trials (%d hits; rate upper bound %.3g; %a)"
    pp_verdict r.verdict r.trials r.hits r.upper_bound pp_rule r.rule
