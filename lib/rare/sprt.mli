(** Sequential hypothesis tests on a Bernoulli violation stream.

    Two stopping rules for "is the violation probability below the
    target bound?", replacing fixed-rep Monte-Carlo (whose 0-out-of-200
    certifies nothing past ~1e-2) with tests that run exactly as long
    as the evidence requires:

    - {!t}: Wald's SPRT of H0: p <= p0 against H1: p >= p1 at error
      rates alpha (accepting H1 when p <= p0) and beta (accepting H0
      when p >= p1). Optimal expected sample size at both hypotheses;
      indifferent in (p0, p1).
    - {!Okamoto}: the Okamoto/Chernoff–Hoeffding fixed-confidence
      bound — a deterministic trial budget that certifies p <= bound
      when the observed hit count stays low enough.

    Both are pure fold states over the 0/1 stream: feeding the same
    prefix always yields the same verdict at the same index, which is
    what makes checkpoint resume and any-worker-count determinism
    possible upstream ({!Seq}). *)

type config = {
  p0 : float;  (** the certified bound (null: p <= p0). *)
  p1 : float;  (** the rejection level (alternative: p >= p1). *)
  alpha : float;  (** P(declare p >= p1 | p = p0). *)
  beta : float;  (** P(declare p <= p0 | p = p1). *)
}

val validate : config -> (unit, string) result
(** [0 < p0 < p1 < 1] and [alpha, beta] in (0, 1/2]. *)

type verdict =
  | Accept_bound  (** the stream supports p <= p0. *)
  | Reject_bound  (** the stream supports p >= p1. *)
  | Continue

type t

val create : config -> t
(** Raises [Invalid_argument] on an invalid config. *)

val config : t -> config
val observe : t -> bool -> unit
(** Fold one trial outcome ([true] = violation) into the statistic. *)

val n : t -> int
val hits : t -> int

val llr : t -> float
(** Current log-likelihood ratio log L(p1)/L(p0). *)

val verdict : t -> verdict
(** Wald boundaries: [Reject_bound] at llr >= log((1-beta)/alpha),
    [Accept_bound] at llr <= log(beta/(1-alpha)). *)

val pp_verdict : verdict Fmt.t

(** Fixed-confidence single-sampling bounds. *)
module Okamoto : sig
  val required_trials : bound:float -> confidence:float -> int
  (** Smallest n such that observing 0 hits in n trials certifies
      p <= bound at the given confidence: the least n with
      [(1 - bound)^n <= 1 - confidence] (the exact binomial zero-hit
      bound; ~ ln(1/(1-confidence)) / bound for small bounds). *)

  val upper_bound : n:int -> hits:int -> confidence:float -> float
  (** One-sided upper confidence bound on p after observing [hits] in
      [n] trials: the exact [1 - (1-confidence)^(1/n)] when [hits = 0],
      the Okamoto/Chernoff–Hoeffding inversion
      [p_hat + sqrt (ln (1/(1-confidence)) / (2 n))] otherwise.
      [1.0] when [n = 0]. *)
end
