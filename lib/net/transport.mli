(** Per-endpoint reliable-delivery transport over the {!Star} links:
    sequence-numbered sends, receiver ACKs on the reverse link, bounded
    retransmission with exponential backoff + jitter, and receiver-side
    duplicate suppression by (src, seq).

    The transport plugs into the executor as its {!Pte_hybrid.Executor.router}.
    In [`Bare] mode it behaves exactly like {!Star.router} — one attempt
    per send, no ACKs, no RNG consumption — except that replayed frames
    (an injected [Duplicate_frame]) are suppressed at the receiver, so
    the automaton is handed each (src, seq) at most once. In
    [`Reliable _] mode every radio send becomes an ARQ exchange: the
    sender retransmits on a backoff schedule until an ACK comes back or
    the retry budget is exhausted.

    The exchange is simulated {e unrolled at send time}: all attempts,
    their loss draws and the ACKs are resolved synchronously when the
    automaton emits the event, and the winning copy is scheduled at its
    true arrival time. Channel state (e.g. the Gilbert–Elliott burst
    process) therefore advances per frame rather than per wall-clock
    instant — an approximation that keeps the executor's delivery queue
    single-shot and the whole exchange deterministic in one RNG stream.

    {!worst_case_latency} gives the closed-form bound on the delivery
    delay of any successful send, which callers feed back into the
    Theorem-1 constraint recheck
    ({!Pte_core.Constraints.satisfies_with_delay}) so the availability
    win is provably safety-preserving. *)

(** Retransmission policy. Attempt [k] (0-based) is followed, if
    unacknowledged, by a wait of
    [min (base_rto *. multiplier^k) cap + U(0, jitter)] before attempt
    [k+1]; at most [max_retries] retransmissions follow the initial
    attempt. *)
type config = {
  max_retries : int;  (** retransmissions after the first attempt. *)
  base_rto : float;  (** initial retransmission timeout, seconds. *)
  multiplier : float;  (** exponential backoff factor (>= 1). *)
  cap : float;  (** ceiling on the backoff, seconds. *)
  jitter : float;  (** uniform extra wait in [0, jitter) per retry. *)
}

val default_config : config
(** 3 retries, 250 ms RTO, x2 backoff capped at 2 s, 50 ms jitter —
    worst case ~1.93 s, inside the case study's 2 s Theorem-1 slack
    ({!Pte_core.Constraints.max_delay_budget}). *)

val validate : config -> (unit, string) result
(** Well-formedness: [max_retries >= 0], positive [base_rto],
    [multiplier >= 1], [cap >= base_rto], [jitter >= 0]. *)

type mode = [ `Bare | `Reliable of config ]

val rto : config -> attempt:int -> float
(** Backoff after the [attempt]-th send (0-based), jitter excluded:
    [min (base_rto *. multiplier^attempt) cap]. *)

val max_attempts : config -> int
(** [max_retries + 1]. *)

val worst_case_latency : config -> frame_delay:float -> float
(** Closed-form bound on the delivery delay of any send the transport
    reports delivered: the attempt schedule spans at most
    [sum_(k=0)^(max_retries-1) (rto k + jitter)], and the winning copy
    adds at most one [frame_delay] ({!Star.worst_frame_delay}) in the
    air. Injected [Delay_frame] faults sit outside the bound. *)

(** Cumulative counters over every radio send routed through the
    transport. *)
type stats = {
  mutable data_sends : int;  (** application sends (not attempts). *)
  mutable delivered : int;  (** sends with >= 1 copy delivered. *)
  mutable gave_up : int;  (** sends lost after the full retry budget. *)
  mutable retransmissions : int;  (** extra attempts beyond the first. *)
  mutable acks_sent : int;
  mutable acks_lost : int;
  mutable dups_suppressed : int;
      (** replayed copies squashed at the receiver by (src, seq). *)
}

type t

val create : mode:mode -> rng:Pte_util.Rng.t -> Star.t -> t
(** In [`Bare] mode the transport never draws from [rng] (legacy RNG
    streams are untouched); [`Reliable _] uses it for retry jitter. *)

val mode : t -> mode
val stats : t -> stats

val router : t -> Pte_hybrid.Executor.router
(** The executor transport hook. Non-star automata stay wired;
    remote-to-remote sends are dropped and counted, as in
    {!Star.router}. *)

val consecutive_losses : t -> sender:string -> int
(** Consecutive sends from [sender] that ended without delivery
    confirmation — in [`Reliable _] mode, without a received ACK (the
    sender's view: a delivered frame whose ACK was lost still counts as
    a feedback loss); in [`Bare] mode, dropped frames. Reset to 0 by the
    next confirmed send. Feeds the supervisor's degraded-safe-mode. *)

val reset_consecutive_losses : t -> sender:string -> unit

val pp_config : config Fmt.t
val pp_stats : stats Fmt.t
