(** Per-endpoint reliable-delivery transport over the {!Star} links:
    sequence-numbered sends, receiver ACKs on the reverse link, bounded
    retransmission with exponential backoff + jitter, and receiver-side
    duplicate suppression by (src, seq).

    The transport plugs into the executor as its {!Pte_hybrid.Executor.router}.
    In [`Bare] mode it behaves exactly like {!Star.router} — one attempt
    per send, no ACKs, no RNG consumption — except that replayed frames
    (an injected [Duplicate_frame]) are suppressed at the receiver, so
    the automaton is handed each (src, seq) at most once. In
    [`Reliable _] mode every radio send becomes an ARQ exchange: the
    sender retransmits on a backoff schedule until an ACK comes back or
    the retry budget is exhausted.

    Exchanges are simulated {e event-driven}: the router answers
    [Deferred] and runs each exchange as a state machine on the
    executor's timeline. Every attempt hits the channel at its true
    wall-clock time — so channel state (e.g. the Gilbert–Elliott burst
    process, the wall-clock interferer) evolves between attempts and
    across concurrent exchanges — and each attempt arms a revocable
    executor timer ({!Pte_hybrid.Executor.schedule} /
    {!Pte_hybrid.Executor.cancel}): an arriving ACK cancels the pending
    retransmission before the channel ever sees it, and exhaustion of
    the retry budget fires the give-up asynchronously, at the sender's
    final timeout. Consequently {!consecutive_losses} (and the [gave_up]
    / ACK statistics) move at {e confirmation time} — when the outcome
    becomes known to the sender — which is what the supervisor's
    degraded-safe-mode actually observes. Each exchange draws its
    backoff jitter from a private stream keyed by (flow, seq)
    ({!Pte_util.Rng.keyed}), so behaviour per seed is independent of how
    exchanges interleave; [`Bare] mode draws nothing and stays
    byte-identical to the legacy streams.

    {!worst_case_latency} is unchanged by the event-driven rewrite and
    stays the binding closed-form bound on the delivery delay of any
    successful send: attempt [k] is sent at the nominal schedule time
    [sum_(j<k) (rto j + jitter_j)] after the emission (timers carry
    nominal due times, so step quantization does not accumulate), and
    the winning copy adds at most one frame delay. Callers feed the
    bound into the Theorem-1 constraint recheck
    ({!Pte_core.Constraints.satisfies_with_delay}) exactly as before, so
    the availability win remains provably safety-preserving. *)

(** Retransmission policy. Attempt [k] (0-based) is followed, if
    unacknowledged, by a wait of
    [min (base_rto *. multiplier^k) cap + U(0, jitter)] before attempt
    [k+1]; at most [max_retries] retransmissions follow the initial
    attempt. *)
type config = {
  max_retries : int;  (** retransmissions after the first attempt. *)
  base_rto : float;  (** initial retransmission timeout, seconds. *)
  multiplier : float;  (** exponential backoff factor (>= 1). *)
  cap : float;  (** ceiling on the backoff, seconds. *)
  jitter : float;  (** uniform extra wait in [0, jitter) per retry. *)
}

val default_config : config
(** 3 retries, 250 ms RTO, x2 backoff capped at 2 s, 50 ms jitter —
    worst case ~1.93 s, inside the case study's 2 s Theorem-1 slack
    ({!Pte_core.Constraints.max_delay_budget}). *)

val validate : config -> (unit, string) result
(** Well-formedness: [max_retries >= 0], positive [base_rto],
    [multiplier >= 1], [cap >= base_rto], [jitter >= 0]. *)

(** Configuration of the [`Adaptive] mode: which static mode carries
    traffic while the channel is healthy, the synthesis template for
    the degraded [`Scheduled] mode — its [loss] field is replaced by
    the channel-health estimate at each escalation, so the blind retry
    count matches the loss the channel is actually showing — and the
    estimator / escalation-policy knobs. [budget] is the stand-alone
    admission bound on a candidate mode's worst-case latency, used
    when no {!set_admit} callback is installed. *)
type adaptive_config = {
  healthy : [ `Bare | `Reliable of config ];
  degraded : Pte_sched.Synth.policy;
  estimator : Pte_adapt.Estimator.config;
  policy : Pte_adapt.Policy.config;
  budget : float option;
}

type mode =
  [ `Bare
  | `Reliable of config
  | `Scheduled of Pte_sched.Synth.policy
  | `Adaptive of adaptive_config ]
(** [`Scheduled] is the time-triggered third mode (TTW-style): radio
    sends are admitted into a static TDMA round schedule synthesized
    from the star at {!create} ({!Pte_sched.Synth.synthesize}), and
    each admitted send blindly transmits [1 + retries] copies in its
    link's slot of consecutive rounds — no ACKs, no feedback, so the
    worst-case delivery latency of an admitted send is the design-time
    constant {!Pte_sched.Schedule.link_worst_case_latency}. Sends past
    the per-link admission bound ([depth]) are rejected at admission
    and counted as [gave_up] — the protocol layer above tolerates loss,
    and rejecting is what keeps the bound closed-form. Like [`Bare],
    the mode never draws from the transport [rng]; like [`Reliable],
    it runs event-driven on the executor's timer queue and needs
    {!attach}. Injected [Delay_frame] faults sit outside the
    synthesized bound, exactly as they sit outside
    {!worst_case_latency}.

    [`Adaptive] switches between a healthy sub-mode and the degraded
    [`Scheduled] sub-mode at runtime, driven by an online
    channel-health estimator ({!Pte_adapt.Estimator}) pooled over all
    senders and an escalation policy with hysteresis
    ({!Pte_adapt.Policy}). Every switch runs the {e safe-switch
    protocol}: the candidate mode's worst-case latency is rechecked
    against the Theorem-1 delay budget ({!set_admit}, or the
    configured [budget]) {e before} committing; an inadmissible
    candidate is refused — the transport stays in its current,
    still-admitted mode and counts a [switch_refusals]. An admitted
    switch first quiesces: in-flight exchanges of the outgoing mode
    drain (bounded by that mode's own worst-case latency on the
    executor's revocable timer queue), so no exchange ever straddles
    two modes, and a [`Scheduled] exit is automatically round-aligned.
    Needs {!attach} regardless of the healthy sub-mode. *)

val default_adaptive : adaptive_config
(** [`Reliable default_config] while healthy (indistinguishable from
    bare on a clean channel, but a de-escalation under a mis-estimated
    recovery lands on ARQ rather than single-shot sends),
    {!Pte_sched.Synth.default_policy} as the degraded template, default
    estimator and policy knobs, no stand-alone budget. *)

val validate_adaptive : adaptive_config -> (unit, string) result

val mode_of_string : string -> (mode, string) result
(** Parse a CLI transport spec: ["bare"], ["reliable"], ["scheduled"],
    ["adaptive"], ["reliable:key=value,..."] with keys [retries],
    [rto], [multiplier], [cap] and [jitter],
    ["scheduled:key=value,..."] with keys [slot], [retries], [loss],
    [confidence], [depth] and [budget], or ["adaptive:key=value,..."]
    with keys [healthy] (bare|reliable), [degrade], [recover], [dwell],
    [samples], [window], [burst] and [budget]. A reliable or adaptive
    config is validated here; a scheduled policy is checked at
    {!create}, where the topology is known. A malformed spec surfaces
    as [Error] with the reason. *)

val conv : mode Cmdliner.Arg.conv
(** The [--transport] converter shared by every CLI: {!mode_of_string}
    on the way in, {!pp_mode} on the way out, so a new mode (or a
    reworded error) lands in every binary at once. *)

val rto : config -> attempt:int -> float
(** Backoff after the [attempt]-th send (0-based), jitter excluded:
    [min (base_rto *. multiplier^attempt) cap]. *)

val max_attempts : config -> int
(** [max_retries + 1]. *)

val worst_case_latency : config -> frame_delay:float -> float
(** Closed-form bound on the delivery delay of any send the transport
    reports delivered: the attempt schedule spans at most
    [sum_(k=0)^(max_retries-1) (rto k + jitter)], and the winning copy
    adds at most one [frame_delay] ({!Star.worst_frame_delay}) in the
    air. Injected [Delay_frame] faults sit outside the bound. *)

(** Cumulative counters over every radio send routed through the
    transport. At quiescence (no exchange still in flight)
    [data_sends = delivered + gave_up] and every suppressed copy is
    counted exactly once in [dups_suppressed]. *)
type stats = {
  mutable data_sends : int;  (** application sends (not attempts). *)
  mutable delivered : int;  (** sends with >= 1 copy delivered. *)
  mutable gave_up : int;  (** sends lost after the full retry budget. *)
  mutable retransmissions : int;  (** extra attempts beyond the first. *)
  mutable acks_sent : int;
  mutable acks_lost : int;
  mutable dups_suppressed : int;
      (** replayed copies squashed at the receiver by (src, seq). *)
  mutable worst_latency : float;
      (** largest observed send-to-delivery delay across delivered
          sends, seconds — the measured counterpart of the mode's
          closed-form bound ({!worst_case_latency} /
          {!Pte_sched.Schedule.worst_case_latency}). *)
  mutable max_consec_losses : int;
      (** high-water mark of the per-sender {!consecutive_losses}
          counters over the whole trial: the deepest feedback blackout
          any sender experienced. One component of the rare-event
          certification level function — how close the trial came to
          the degraded-safe-mode trip (and, past it, to a with-lease
          violation). 0 in [`Bare] mode (no feedback to lose). *)
  mutable switches_up : int;
      (** [`Adaptive]: committed escalations healthy → degraded. *)
  mutable switches_down : int;
      (** [`Adaptive]: committed de-escalations degraded → healthy. *)
  mutable switch_refusals : int;
      (** [`Adaptive]: switches the safe-switch protocol refused —
          the Theorem-1 recheck rejected the candidate mode (or its
          synthesis failed), so the transport stayed put. *)
}

type t

val create : mode:mode -> rng:Pte_util.Rng.t -> Star.t -> t
(** In [`Bare] and [`Scheduled] modes the transport never draws from
    [rng] (legacy RNG streams are untouched); [`Reliable _] keys one
    private jitter stream per exchange off it. A [`Reliable] config is
    {!validate}d and a [`Scheduled] policy is synthesized against the
    star's links right here ({!Pte_sched.Synth.synthesize}); an
    ill-formed config or a failed synthesis raises [Invalid_argument]
    with the reason. *)

val attach : t -> Pte_hybrid.Executor.t -> unit
(** Bind the executor whose timeline carries the transport's timers and
    arrivals. Required before the first [`Reliable] or [`Scheduled]
    radio send (the engine does this when it wires the router);
    [`Bare] mode never needs it. *)

val mode : t -> mode
val stats : t -> stats

val schedule : t -> Pte_sched.Schedule.t option
(** The concrete round schedule synthesized at {!create} —
    [Some _] exactly in [`Scheduled] mode. Its
    {!Pte_sched.Schedule.worst_case_latency} is the bound callers feed
    into the Theorem-1 recheck, in place of {!worst_case_latency}. In
    [`Adaptive] mode, the schedule the safe-switch protocol last
    committed — [Some _] exactly while degraded. *)

(** {2 Adaptive mode} *)

val set_admit : t -> (candidate_latency:float -> bool) -> unit
(** Install the Theorem-1 admission callback the safe-switch protocol
    consults before committing a mode switch: given the candidate
    mode's worst-case latency, decide whether the c1–c7 constraint
    system stays satisfiable at that delay. The emulation layer wires
    {!Pte_core.Constraints.satisfies_with_delay} in here (the net
    layer cannot depend on the core). Without a callback the
    configured [budget] bounds admission; with neither, every
    candidate is admitted. No-op outside [`Adaptive] mode. *)

val tier : t -> Pte_adapt.Policy.tier option
(** The current tier — [Some _] exactly in [`Adaptive] mode. *)

val estimator : t -> sender:string -> Pte_adapt.Estimator.t option
(** The per-sender channel-health estimator ([`Adaptive] mode; [None]
    until [sender]'s first resolved exchange). *)

val pooled_estimator : t -> Pte_adapt.Estimator.t option
(** The pooled estimator that drives tier decisions — the star shares
    one interference environment, so outcomes from every sender inform
    the switch. [Some _] exactly in [`Adaptive] mode. *)

val router : t -> Pte_hybrid.Executor.router
(** The executor transport hook. Non-star automata stay wired;
    remote-to-remote sends are dropped and counted, as in
    {!Star.router}. In [`Reliable _] mode radio sends answer
    [Deferred] and run event-driven (see above); raises
    [Invalid_argument] if {!attach} has not been called. *)

(** {2 Exchange observation}

    Test instrumentation: one callback per exchange milestone, fired at
    the simulated instant the milestone occurs. *)

type event =
  | Exchange_delivered of {
      src : string;
      dst : string;
      seq : int;
      sent_at : float;
      arrival : float;  (** first fresh copy handed to the automaton. *)
    }
  | Exchange_confirmed of { src : string; dst : string; seq : int; at : float }
      (** the ACK reached the sender; the pending retransmission timer
          (if any) was cancelled. *)
  | Exchange_gave_up of { src : string; dst : string; seq : int; at : float }
      (** the retry budget ran out without a confirmation (the data may
          still have been delivered — a pure feedback loss). *)

val set_observer : t -> (event -> unit) -> unit

val consecutive_losses : t -> sender:string -> int
(** Consecutive sends from [sender] that ended without delivery
    confirmation — in [`Reliable _] mode, without a received ACK (the
    sender's view: a delivered frame whose ACK was lost still counts as
    a feedback loss), counted at the instant the retry budget expires;
    in [`Bare] mode, dropped frames, counted at the send; in
    [`Scheduled] mode, sends none of whose blind copies reached the
    receiver (the oracle view — there is no feedback channel), counted
    when the blind span ends. Reset to 0 by the next confirmed send.
    Feeds the supervisor's degraded-safe-mode. *)

val reset_consecutive_losses : t -> sender:string -> unit

val pp_config : config Fmt.t
val pp_mode : mode Fmt.t
val pp_stats : stats Fmt.t
