(** A unidirectional wireless link (one uplink or downlink of the star):
    applies the loss model, assigns propagation + MAC delay, keeps
    statistics. Corrupted frames fail the receiver-side CRC check and
    are discarded, per the Section II-B fault model. An optional
    {!type-injector} scripts deterministic per-frame faults in front of
    the stochastic loss model. *)

type direction = Uplink | Downlink

(** The injector's verdict for one frame. [Pass] falls through to the
    stochastic loss model; every other verdict overrides it (including
    the MAC retry loop — a scripted fault hits the whole send, so "drop
    the 2nd cancel" means that cancel is gone no matter how many
    retransmissions the radio would have tried). *)
type tamper =
  | Pass
  | Drop_frame
  | Corrupt_frame
      (** delivered with bit errors; flows through the CRC discard path *)
  | Delay_frame of float  (** extra delivery delay, seconds *)
  | Duplicate_frame  (** delivered twice, one retry-spacing apart *)

type injector = time:float -> root:string -> tamper

type t

val create :
  name:string ->
  direction:direction ->
  loss:Loss.t ->
  ?delay_base:float ->
  ?delay_jitter:float ->
  ?mac_retries:int ->
  ?retry_spacing:float ->
  rng:Pte_util.Rng.t ->
  unit ->
  t
(** Defaults: 10 ms base delay + uniform jitter up to 20 ms; no MAC
    retransmissions. [mac_retries] > 0 retries a lost/corrupted frame
    (802.15.4-style), each retry adding [retry_spacing] (default 5 ms)
    to the delivery delay. *)

val name : t -> string
val direction : t -> direction

val set_injector : t -> injector option -> unit
(** Install (or clear) the deterministic fault injector consulted before
    the loss model. A non-[Pass] verdict skips the loss model's RNG draw
    for that frame. *)

type verdict =
  | Deliver of { arrival : float; packet : Packet.t }
  | Deliver_dup of { arrivals : float * float; packet : Packet.t }
      (** an injected duplicate: the same frame arrives twice *)
  | Drop of Loss.outcome

val send : t -> time:float -> src:string -> dst:string -> root:string -> verdict
val stats : t -> Link_stats.t

(** Worst one-way latency the link itself can assign: base delay + full
    jitter + every MAC retry. Injected [Delay_frame] faults exceed this
    by design (they model adversarial conditions, not the radio). *)
val worst_delay : t -> float
val pp : t Fmt.t
