(** Per-endpoint reliable-delivery transport over the star links: ARQ
    with bounded exponential backoff, receiver ACKs on the reverse link,
    and (src, seq) duplicate suppression. See the interface for the
    unrolled-at-send-time simulation semantics. *)

module Executor = Pte_hybrid.Executor

type config = {
  max_retries : int;
  base_rto : float;
  multiplier : float;
  cap : float;
  jitter : float;
}

let default_config =
  { max_retries = 3; base_rto = 0.25; multiplier = 2.0; cap = 2.0;
    jitter = 0.05 }

let validate c =
  if c.max_retries < 0 then Error "transport: max_retries must be >= 0"
  else if not (c.base_rto > 0.0) then Error "transport: base_rto must be > 0"
  else if c.multiplier < 1.0 then Error "transport: multiplier must be >= 1"
  else if c.cap < c.base_rto then Error "transport: cap must be >= base_rto"
  else if c.jitter < 0.0 then Error "transport: jitter must be >= 0"
  else Ok ()

type mode = [ `Bare | `Reliable of config ]

let rto c ~attempt =
  Float.min (c.base_rto *. (c.multiplier ** Float.of_int attempt)) c.cap

let max_attempts c = c.max_retries + 1

let worst_case_latency c ~frame_delay =
  let rec backoffs k acc =
    if k >= c.max_retries then acc
    else backoffs (k + 1) (acc +. rto c ~attempt:k +. c.jitter)
  in
  backoffs 0 0.0 +. frame_delay

type stats = {
  mutable data_sends : int;
  mutable delivered : int;
  mutable gave_up : int;
  mutable retransmissions : int;
  mutable acks_sent : int;
  mutable acks_lost : int;
  mutable dups_suppressed : int;
}

type t = {
  star : Star.t;
  mode : mode;
  rng : Pte_util.Rng.t;
  stats : stats;
  (* receiver-side dedup: (src, dst, seq) triples already handed to the
     automaton. In `Bare mode seq is the link-layer sequence number; in
     `Reliable mode it is the transport's own end-to-end number, which
     stays constant across retransmissions (each retransmission is a
     fresh link frame). *)
  seen : (string * string * int, unit) Hashtbl.t;
  (* per-flow end-to-end sequence counters (`Reliable mode). *)
  next_seq : (string * string, int ref) Hashtbl.t;
  (* per-sender consecutive unconfirmed sends, for degraded-safe-mode. *)
  consec : (string, int ref) Hashtbl.t;
}

let create ~mode ~rng star =
  {
    star;
    mode;
    rng;
    stats =
      { data_sends = 0; delivered = 0; gave_up = 0; retransmissions = 0;
        acks_sent = 0; acks_lost = 0; dups_suppressed = 0 };
    seen = Hashtbl.create 512;
    next_seq = Hashtbl.create 8;
    consec = Hashtbl.create 8;
  }

let mode t = t.mode
let stats t = t.stats

let counter t sender =
  match Hashtbl.find_opt t.consec sender with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.consec sender r;
      r

let consecutive_losses t ~sender = !(counter t sender)
let reset_consecutive_losses t ~sender = counter t sender := 0

let confirm t sender = counter t sender := 0
let unconfirmed t sender = incr (counter t sender)

(* First sighting of (src, dst, seq) at the receiver? Records it. *)
let fresh t ~src ~dst ~seq =
  let key = (src, dst, seq) in
  if Hashtbl.mem t.seen key then false
  else begin
    Hashtbl.add t.seen key ();
    true
  end

let flow_seq t ~src ~dst =
  let r =
    match Hashtbl.find_opt t.next_seq (src, dst) with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.next_seq (src, dst) r;
        r
  in
  let q = !r in
  incr r;
  q

type hop = Wired | No_route | Radio of Link.t

let hop t ~sender ~receiver =
  if not (Star.is_node t.star sender && Star.is_node t.star receiver) then
    Wired
  else
    match Star.link_for t.star ~sender ~receiver with
    | None ->
        t.star.Star.remote_to_remote_dropped <-
          t.star.Star.remote_to_remote_dropped + 1;
        No_route
    | Some link -> Radio link

(* ------------------------------------------------------------------ *)
(* `Bare mode: one attempt, no ACKs — Star.router semantics plus the
   (src, seq) replay filter on injected duplicates.                    *)
(* ------------------------------------------------------------------ *)

let bare_send t link ~time ~sender ~receiver ~root =
  t.stats.data_sends <- t.stats.data_sends + 1;
  match Link.send link ~time ~src:sender ~dst:receiver ~root with
  | Link.Drop _ ->
      unconfirmed t sender;
      t.stats.gave_up <- t.stats.gave_up + 1;
      Executor.Lose
  | Link.Deliver { arrival; packet } ->
      confirm t sender;
      t.stats.delivered <- t.stats.delivered + 1;
      if fresh t ~src:sender ~dst:receiver ~seq:packet.Packet.seq then
        Executor.Deliver (arrival -. time)
      else begin
        (* cannot happen with per-link sequence numbers, but keep the
           filter total: a replayed frame never reaches the automaton *)
        t.stats.dups_suppressed <- t.stats.dups_suppressed + 1;
        Executor.Lose
      end
  | Link.Deliver_dup { arrivals = a1, _; packet } ->
      confirm t sender;
      t.stats.delivered <- t.stats.delivered + 1;
      if fresh t ~src:sender ~dst:receiver ~seq:packet.Packet.seq then begin
        (* the replayed copy is the same (src, seq): suppress it *)
        t.stats.dups_suppressed <- t.stats.dups_suppressed + 1;
        Executor.Deliver (a1 -. time)
      end
      else begin
        t.stats.dups_suppressed <- t.stats.dups_suppressed + 2;
        Executor.Lose
      end

(* ------------------------------------------------------------------ *)
(* `Reliable mode: the unrolled ARQ exchange                           *)
(* ------------------------------------------------------------------ *)

let ack_root root = "ack:" ^ root

let reliable_send t cfg link ~time ~sender ~receiver ~root =
  t.stats.data_sends <- t.stats.data_sends + 1;
  let seq = flow_seq t ~src:sender ~dst:receiver in
  let ack_link = Star.link_for t.star ~sender:receiver ~receiver:sender in
  let finish ~first ~acked =
    if acked then confirm t sender else unconfirmed t sender;
    match first with
    | Some arrival ->
        t.stats.delivered <- t.stats.delivered + 1;
        Executor.Deliver (arrival -. time)
    | None ->
        t.stats.gave_up <- t.stats.gave_up + 1;
        Executor.Lose
  in
  let rec attempt k ~send_at ~first ~acked =
    if k > 0 then t.stats.retransmissions <- t.stats.retransmissions + 1;
    let next ~first ~acked =
      if k >= cfg.max_retries then finish ~first ~acked
      else
        let backoff =
          rto cfg ~attempt:k
          +. Pte_util.Rng.uniform t.rng ~lo:0.0 ~hi:cfg.jitter
        in
        attempt (k + 1) ~send_at:(send_at +. backoff) ~first ~acked
    in
    match Link.send link ~time:send_at ~src:sender ~dst:receiver ~root with
    | Link.Drop _ -> next ~first ~acked
    | Link.Deliver { arrival; packet = _ }
    | Link.Deliver_dup { arrivals = arrival, _; packet = _ } as v ->
        (* the receiver sees this copy: dedup by the end-to-end seq,
           then acknowledge on the reverse link (every copy is ACKed —
           the previous ACK may be the one that got lost) *)
        (match v with
        | Link.Deliver_dup _ ->
            (* an injected duplicate: its replayed copy is suppressed *)
            t.stats.dups_suppressed <- t.stats.dups_suppressed + 1
        | _ -> ());
        let first =
          if fresh t ~src:sender ~dst:receiver ~seq then
            match first with None -> Some arrival | Some a -> Some a
          else begin
            t.stats.dups_suppressed <- t.stats.dups_suppressed + 1;
            first
          end
        in
        t.stats.acks_sent <- t.stats.acks_sent + 1;
        (match ack_link with
        | None ->
            (* no radio reverse path: treat the ACK as wired *)
            finish ~first ~acked:true
        | Some back -> (
            match
              Link.send back ~time:arrival ~src:receiver ~dst:sender
                ~root:(ack_root root)
            with
            | Link.Deliver _ | Link.Deliver_dup _ -> finish ~first ~acked:true
            | Link.Drop _ ->
                t.stats.acks_lost <- t.stats.acks_lost + 1;
                next ~first ~acked))
  in
  attempt 0 ~send_at:time ~first:None ~acked:false

(* ------------------------------------------------------------------ *)
(* The executor hook                                                   *)
(* ------------------------------------------------------------------ *)

let router t : Executor.router =
 fun ~time ~sender ~root ~receiver ->
  match hop t ~sender ~receiver with
  | Wired -> Executor.Deliver 0.0
  | No_route -> Executor.Lose
  | Radio link -> (
      match t.mode with
      | `Bare -> bare_send t link ~time ~sender ~receiver ~root
      | `Reliable cfg -> reliable_send t cfg link ~time ~sender ~receiver ~root)

let pp_config ppf c =
  Fmt.pf ppf "retries:%d rto:%gs x%g cap:%gs jitter:%gs" c.max_retries
    c.base_rto c.multiplier c.cap c.jitter

let pp_stats ppf s =
  Fmt.pf ppf
    "sends:%d delivered:%d gave-up:%d retx:%d acks:%d acks-lost:%d dups:%d"
    s.data_sends s.delivered s.gave_up s.retransmissions s.acks_sent
    s.acks_lost s.dups_suppressed
