(** Per-endpoint reliable-delivery transport over the star links: ARQ
    with bounded exponential backoff, receiver ACKs on the reverse link,
    and (src, seq) duplicate suppression. Reliable exchanges run
    event-driven on the executor's timeline — see the interface. *)

module Executor = Pte_hybrid.Executor

type config = {
  max_retries : int;
  base_rto : float;
  multiplier : float;
  cap : float;
  jitter : float;
}

let default_config =
  { max_retries = 3; base_rto = 0.25; multiplier = 2.0; cap = 2.0;
    jitter = 0.05 }

let validate c =
  if c.max_retries < 0 then Error "transport: max_retries must be >= 0"
  else if not (c.base_rto > 0.0) then Error "transport: base_rto must be > 0"
  else if c.multiplier < 1.0 then Error "transport: multiplier must be >= 1"
  else if c.cap < c.base_rto then Error "transport: cap must be >= base_rto"
  else if c.jitter < 0.0 then Error "transport: jitter must be >= 0"
  else Ok ()

type mode = [ `Bare | `Reliable of config ]

let rto c ~attempt =
  Float.min (c.base_rto *. (c.multiplier ** Float.of_int attempt)) c.cap

let max_attempts c = c.max_retries + 1

let worst_case_latency c ~frame_delay =
  let rec backoffs k acc =
    if k >= c.max_retries then acc
    else backoffs (k + 1) (acc +. rto c ~attempt:k +. c.jitter)
  in
  backoffs 0 0.0 +. frame_delay

type stats = {
  mutable data_sends : int;
  mutable delivered : int;
  mutable gave_up : int;
  mutable retransmissions : int;
  mutable acks_sent : int;
  mutable acks_lost : int;
  mutable dups_suppressed : int;
}

type event =
  | Exchange_delivered of {
      src : string;
      dst : string;
      seq : int;
      sent_at : float;
      arrival : float;
    }
  | Exchange_confirmed of { src : string; dst : string; seq : int; at : float }
  | Exchange_gave_up of { src : string; dst : string; seq : int; at : float }

(* Receiver-side dedup state for one (src, dst) flow. Sequence numbers
   are allocated monotonically per flow (link frames in `Bare mode,
   end-to-end exchange numbers in `Reliable mode), so a cumulative
   high-water mark plus a small window for copies that overtake each
   other replaces the old one-entry-per-send hashtable: memory is
   O(flows + window), not O(sends). *)
let dedup_window = 64

type flow_seen = {
  mutable high : int;  (* every seq <= high counts as already seen *)
  mutable recent : int list;  (* seen seqs above the high-water mark *)
}

type t = {
  star : Star.t;
  mode : mode;
  rng : Pte_util.Rng.t;
  stats : stats;
  seen : (string * string, flow_seen) Hashtbl.t;
  (* per-flow end-to-end sequence counters (`Reliable mode). *)
  next_seq : (string * string, int ref) Hashtbl.t;
  (* per-sender consecutive unconfirmed sends, for degraded-safe-mode. *)
  consec : (string, int ref) Hashtbl.t;
  (* the executor whose timeline carries this transport's timers and
     arrivals (`Reliable mode); set by {!attach}. *)
  mutable exec : Executor.t option;
  mutable observer : (event -> unit) option;
}

let create ~mode ~rng star =
  (match mode with
  | `Bare -> ()
  | `Reliable cfg -> (
      match validate cfg with Ok () -> () | Error msg -> invalid_arg msg));
  {
    star;
    mode;
    rng;
    stats =
      { data_sends = 0; delivered = 0; gave_up = 0; retransmissions = 0;
        acks_sent = 0; acks_lost = 0; dups_suppressed = 0 };
    seen = Hashtbl.create 8;
    next_seq = Hashtbl.create 8;
    consec = Hashtbl.create 8;
    exec = None;
    observer = None;
  }

let attach t exec = t.exec <- Some exec
let set_observer t f = t.observer <- Some f
let observe t ev = match t.observer with Some f -> f ev | None -> ()

let mode t = t.mode
let stats t = t.stats

let counter t sender =
  match Hashtbl.find_opt t.consec sender with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.consec sender r;
      r

let consecutive_losses t ~sender = !(counter t sender)
let reset_consecutive_losses t ~sender = counter t sender := 0

let confirm t sender = counter t sender := 0
let unconfirmed t sender = incr (counter t sender)

let flow_seen t ~src ~dst =
  match Hashtbl.find_opt t.seen (src, dst) with
  | Some fs -> fs
  | None ->
      let fs = { high = -1; recent = [] } in
      Hashtbl.add t.seen (src, dst) fs;
      fs

(* First sighting of (src, dst, seq) at the receiver? Records it. A seq
   at or below the flow's high-water mark is a replay by construction;
   above it, [recent] disambiguates copies that arrive out of order
   (overlapping exchanges). Seqs falling more than [dedup_window] behind
   the newest are conservatively treated as replays, which bounds the
   window: in-flight exchanges per flow never approach that span. *)
let fresh t ~src ~dst ~seq =
  let fs = flow_seen t ~src ~dst in
  if seq <= fs.high || List.mem seq fs.recent then false
  else begin
    fs.recent <- seq :: fs.recent;
    if seq > fs.high + dedup_window then fs.high <- seq - dedup_window;
    let rec absorb () =
      if List.mem (fs.high + 1) fs.recent then begin
        fs.high <- fs.high + 1;
        absorb ()
      end
    in
    absorb ();
    fs.recent <- List.filter (fun s -> s > fs.high) fs.recent;
    true
  end

let flow_seq t ~src ~dst =
  let r =
    match Hashtbl.find_opt t.next_seq (src, dst) with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.next_seq (src, dst) r;
        r
  in
  let q = !r in
  incr r;
  q

type hop = Wired | No_route | Radio of Link.t

let hop t ~sender ~receiver =
  if not (Star.is_node t.star sender && Star.is_node t.star receiver) then
    Wired
  else
    match Star.link_for t.star ~sender ~receiver with
    | None ->
        t.star.Star.remote_to_remote_dropped <-
          t.star.Star.remote_to_remote_dropped + 1;
        No_route
    | Some link -> Radio link

(* ------------------------------------------------------------------ *)
(* `Bare mode: one attempt, no ACKs — Star.router semantics plus the
   (src, seq) replay filter on injected duplicates.                    *)
(* ------------------------------------------------------------------ *)

let bare_send t link ~time ~sender ~receiver ~root =
  t.stats.data_sends <- t.stats.data_sends + 1;
  match Link.send link ~time ~src:sender ~dst:receiver ~root with
  | Link.Drop _ ->
      unconfirmed t sender;
      t.stats.gave_up <- t.stats.gave_up + 1;
      Executor.Lose
  | Link.Deliver { arrival; packet } ->
      confirm t sender;
      if fresh t ~src:sender ~dst:receiver ~seq:packet.Packet.seq then begin
        t.stats.delivered <- t.stats.delivered + 1;
        Executor.Deliver (arrival -. time)
      end
      else begin
        (* cannot happen with per-link sequence numbers, but keep the
           filter total: a send whose only copy is suppressed is a lost
           send, not a delivered one *)
        t.stats.dups_suppressed <- t.stats.dups_suppressed + 1;
        t.stats.gave_up <- t.stats.gave_up + 1;
        Executor.Lose
      end
  | Link.Deliver_dup { arrivals = a1, _; packet } ->
      confirm t sender;
      if fresh t ~src:sender ~dst:receiver ~seq:packet.Packet.seq then begin
        (* the replayed copy carries the same (src, seq): suppress it *)
        t.stats.delivered <- t.stats.delivered + 1;
        t.stats.dups_suppressed <- t.stats.dups_suppressed + 1;
        Executor.Deliver (a1 -. time)
      end
      else begin
        t.stats.dups_suppressed <- t.stats.dups_suppressed + 2;
        t.stats.gave_up <- t.stats.gave_up + 1;
        Executor.Lose
      end

(* ------------------------------------------------------------------ *)
(* `Reliable mode: event-driven ARQ exchanges                          *)
(* ------------------------------------------------------------------ *)

let ack_root root = "ack:" ^ root

(* One in-progress ARQ exchange. The sender side is a small state
   machine driven by executor timers: every attempt arms the next
   retransmission (or, after the last attempt, the give-up timeout);
   an arriving ACK cancels the armed timer and resolves the exchange. *)
type exchange = {
  ex_cfg : config;
  ex_link : Link.t;
  ex_ack_link : Link.t option;
  ex_src : string;
  ex_dst : string;
  ex_root : string;
  ex_seq : int;
  (* private jitter stream, keyed by (flow, seq): the backoff schedule
     of an exchange is a function of the seed and its identity alone,
     independent of how exchanges interleave on the timeline. *)
  ex_rng : Pte_util.Rng.t;
  ex_sent_at : float;
  mutable ex_timer : Executor.token option;
  mutable ex_arrived : bool;  (* a fresh copy reached the automaton *)
  mutable ex_in_flight : int;  (* data copies in the air *)
  mutable ex_resolved : bool;  (* sender side: confirmed or gave up *)
}

let require_exec t =
  match t.exec with
  | Some exec -> exec
  | None ->
      invalid_arg
        "Transport.router: `Reliable mode needs Transport.attach before the \
         first radio send"

(* The ACK made it back: the sender learns the outcome, stands down the
   pending retransmission (revoking it before the channel ever sees the
   frame) and clears the consecutive-loss counter — at the instant the
   confirmation actually arrives. *)
let resolve_confirmed t ex exec ~at =
  if not ex.ex_resolved then begin
    ex.ex_resolved <- true;
    (match ex.ex_timer with
    | Some token ->
        Executor.cancel exec token;
        ex.ex_timer <- None
    | None -> ());
    confirm t ex.ex_src;
    observe t
      (Exchange_confirmed { src = ex.ex_src; dst = ex.ex_dst; seq = ex.ex_seq; at })
  end

(* The retry budget ran out without a confirmation: the sender counts a
   feedback loss now — when it becomes known — not at the send instant.
   Only if no copy reached (or is still flying toward) the receiver is
   the send itself lost. *)
let resolve_gave_up t ex exec ~at =
  if not ex.ex_resolved then begin
    ex.ex_resolved <- true;
    ex.ex_timer <- None;
    unconfirmed t ex.ex_src;
    if (not ex.ex_arrived) && ex.ex_in_flight = 0 then begin
      t.stats.gave_up <- t.stats.gave_up + 1;
      Executor.lose_now exec ~receiver:ex.ex_dst ~root:ex.ex_root
    end;
    observe t
      (Exchange_gave_up { src = ex.ex_src; dst = ex.ex_dst; seq = ex.ex_seq; at })
  end

let rec send_attempt t ex exec ~at ~attempt =
  if attempt > 0 then
    t.stats.retransmissions <- t.stats.retransmissions + 1;
  (match
     Link.send ex.ex_link ~time:at ~src:ex.ex_src ~dst:ex.ex_dst
       ~root:ex.ex_root
   with
  | Link.Drop _ -> ()
  | Link.Deliver { arrival; packet = _ } -> schedule_copy t ex exec ~arrival
  | Link.Deliver_dup { arrivals = a1, a2; packet = _ } ->
      (* an injected duplicate: both copies fly; the replay is squashed
         at the receiver by (src, seq) *)
      schedule_copy t ex exec ~arrival:a1;
      schedule_copy t ex exec ~arrival:a2);
  (* Arm the timer that drives the rest of the exchange: the next
     retransmission, or — after the final attempt — the give-up
     timeout. Nominal times accumulate [at +. wait] so the schedule
     (and hence {!worst_case_latency}) is independent of the step
     quantization at which timers actually fire. *)
  let wait =
    rto ex.ex_cfg ~attempt
    +. Pte_util.Rng.uniform ex.ex_rng ~lo:0.0 ~hi:ex.ex_cfg.jitter
  in
  let due = at +. wait in
  let token =
    Executor.schedule exec ~at:due (fun exec ->
        ex.ex_timer <- None;
        if not ex.ex_resolved then
          if attempt < ex.ex_cfg.max_retries then
            send_attempt t ex exec ~at:due ~attempt:(attempt + 1)
          else resolve_gave_up t ex exec ~at:due)
  in
  ex.ex_timer <- Some token

and schedule_copy t ex exec ~arrival =
  ex.ex_in_flight <- ex.ex_in_flight + 1;
  ignore
    (Executor.schedule exec ~at:arrival (fun exec -> receive t ex exec ~arrival))

(* A data copy reaches the receiver: dedup by the end-to-end seq, hand
   the first fresh copy to the automaton, and acknowledge every copy on
   the reverse link (the previous ACK may be the one that got lost). *)
and receive t ex exec ~arrival =
  ex.ex_in_flight <- ex.ex_in_flight - 1;
  if fresh t ~src:ex.ex_src ~dst:ex.ex_dst ~seq:ex.ex_seq then begin
    ex.ex_arrived <- true;
    t.stats.delivered <- t.stats.delivered + 1;
    ignore (Executor.deliver_now exec ~receiver:ex.ex_dst ~root:ex.ex_root);
    observe t
      (Exchange_delivered
         { src = ex.ex_src; dst = ex.ex_dst; seq = ex.ex_seq;
           sent_at = ex.ex_sent_at; arrival })
  end
  else t.stats.dups_suppressed <- t.stats.dups_suppressed + 1;
  t.stats.acks_sent <- t.stats.acks_sent + 1;
  match ex.ex_ack_link with
  | None ->
      (* no radio reverse path: treat the ACK as wired *)
      resolve_confirmed t ex exec ~at:arrival
  | Some back -> (
      match
        Link.send back ~time:arrival ~src:ex.ex_dst ~dst:ex.ex_src
          ~root:(ack_root ex.ex_root)
      with
      | Link.Drop _ -> t.stats.acks_lost <- t.stats.acks_lost + 1
      | Link.Deliver { arrival = ack_at; packet = _ }
      | Link.Deliver_dup { arrivals = ack_at, _; packet = _ } ->
          ignore
            (Executor.schedule exec ~at:ack_at (fun exec ->
                 resolve_confirmed t ex exec ~at:ack_at)))

let reliable_send t cfg link ~time ~sender ~receiver ~root =
  let exec = require_exec t in
  t.stats.data_sends <- t.stats.data_sends + 1;
  let seq = flow_seq t ~src:sender ~dst:receiver in
  let ex =
    {
      ex_cfg = cfg;
      ex_link = link;
      ex_ack_link = Star.link_for t.star ~sender:receiver ~receiver:sender;
      ex_src = sender;
      ex_dst = receiver;
      ex_root = root;
      ex_seq = seq;
      ex_rng =
        Pte_util.Rng.keyed t.rng
          ~key:(Int64.of_int (Hashtbl.hash (sender, receiver, seq)));
      ex_sent_at = time;
      ex_timer = None;
      ex_arrived = false;
      ex_in_flight = 0;
      ex_resolved = false;
    }
  in
  send_attempt t ex exec ~at:time ~attempt:0;
  Executor.Deferred

(* ------------------------------------------------------------------ *)
(* The executor hook                                                   *)
(* ------------------------------------------------------------------ *)

let router t : Executor.router =
 fun ~time ~sender ~root ~receiver ->
  match hop t ~sender ~receiver with
  | Wired -> Executor.Deliver 0.0
  | No_route -> Executor.Lose
  | Radio link -> (
      match t.mode with
      | `Bare -> bare_send t link ~time ~sender ~receiver ~root
      | `Reliable cfg -> reliable_send t cfg link ~time ~sender ~receiver ~root)

(* ------------------------------------------------------------------ *)
(* CLI spec parsing                                                    *)
(* ------------------------------------------------------------------ *)

let mode_of_string s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_fields spec =
    let field cfg kv =
      match String.index_opt kv '=' with
      | None -> fail "transport: expected key=value, got %S" kv
      | Some i ->
          let k = String.sub kv 0 i in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          let num set =
            match float_of_string_opt v with
            | Some f -> Ok (set f)
            | None -> fail "transport: %s expects a number, got %S" k v
          in
          (match k with
          | "retries" -> (
              match int_of_string_opt v with
              | Some n -> Ok { cfg with max_retries = n }
              | None -> fail "transport: retries expects an integer, got %S" v)
          | "rto" -> num (fun f -> { cfg with base_rto = f })
          | "multiplier" -> num (fun f -> { cfg with multiplier = f })
          | "cap" -> num (fun f -> { cfg with cap = f })
          | "jitter" -> num (fun f -> { cfg with jitter = f })
          | _ ->
              fail
                "transport: unknown key %S (expected \
                 retries|rto|multiplier|cap|jitter)"
                k)
    in
    let rec go cfg = function
      | [] -> (
          match validate cfg with
          | Ok () -> Ok (`Reliable cfg)
          | Error msg -> Error msg)
      | kv :: rest -> (
          match field cfg kv with Ok cfg -> go cfg rest | Error _ as e -> e)
    in
    go default_config (String.split_on_char ',' spec)
  in
  match String.index_opt s ':' with
  | None -> (
      match s with
      | "bare" -> Ok `Bare
      | "reliable" -> Ok (`Reliable default_config)
      | _ ->
          fail "unknown transport %S (expected bare or reliable[:k=v,...])" s)
  | Some i ->
      let head = String.sub s 0 i in
      let spec = String.sub s (i + 1) (String.length s - i - 1) in
      if String.equal head "reliable" then parse_fields spec
      else fail "unknown transport %S (expected bare or reliable[:k=v,...])" head

let pp_config ppf c =
  Fmt.pf ppf "retries:%d rto:%gs x%g cap:%gs jitter:%gs" c.max_retries
    c.base_rto c.multiplier c.cap c.jitter

let pp_mode ppf = function
  | `Bare -> Fmt.string ppf "bare"
  | `Reliable c ->
      Fmt.pf ppf "reliable:retries=%d,rto=%g,multiplier=%g,cap=%g,jitter=%g"
        c.max_retries c.base_rto c.multiplier c.cap c.jitter

let pp_stats ppf s =
  Fmt.pf ppf
    "sends:%d delivered:%d gave-up:%d retx:%d acks:%d acks-lost:%d dups:%d"
    s.data_sends s.delivered s.gave_up s.retransmissions s.acks_sent
    s.acks_lost s.dups_suppressed
