(** Per-endpoint reliable-delivery transport over the star links: ARQ
    with bounded exponential backoff, receiver ACKs on the reverse link,
    and (src, seq) duplicate suppression. Reliable exchanges run
    event-driven on the executor's timeline — see the interface. *)

module Executor = Pte_hybrid.Executor

type config = {
  max_retries : int;
  base_rto : float;
  multiplier : float;
  cap : float;
  jitter : float;
}

let default_config =
  { max_retries = 3; base_rto = 0.25; multiplier = 2.0; cap = 2.0;
    jitter = 0.05 }

let validate c =
  if c.max_retries < 0 then Error "transport: max_retries must be >= 0"
  else if not (c.base_rto > 0.0) then Error "transport: base_rto must be > 0"
  else if c.multiplier < 1.0 then Error "transport: multiplier must be >= 1"
  else if c.cap < c.base_rto then Error "transport: cap must be >= base_rto"
  else if c.jitter < 0.0 then Error "transport: jitter must be >= 0"
  else Ok ()

(** Configuration of the [`Adaptive] mode: which static mode carries
    traffic while the channel is healthy, the synthesis template for
    the degraded [`Scheduled] mode (its [loss] is replaced by the
    estimate at escalation time), and the estimator / escalation-policy
    knobs. [budget] is the stand-alone admission bound used when no
    {!set_admit} callback is installed. *)
type adaptive_config = {
  healthy : [ `Bare | `Reliable of config ];
  degraded : Pte_sched.Synth.policy;
  estimator : Pte_adapt.Estimator.config;
  policy : Pte_adapt.Policy.config;
  budget : float option;
}

type mode =
  [ `Bare
  | `Reliable of config
  | `Scheduled of Pte_sched.Synth.policy
  | `Adaptive of adaptive_config ]

let default_adaptive =
  {
    (* ARQ while healthy: indistinguishable from bare on a clean
       channel, but a de-escalation under a mis-estimated recovery
       lands on retransmissions instead of single-shot sends *)
    healthy = `Reliable default_config;
    degraded = Pte_sched.Synth.default_policy;
    estimator = Pte_adapt.Estimator.default_config;
    policy = Pte_adapt.Policy.default_config;
    budget = None;
  }

let validate_adaptive a =
  let ( let* ) = Result.bind in
  let* () =
    match a.healthy with `Bare -> Ok () | `Reliable cfg -> validate cfg
  in
  let* () = Pte_adapt.Estimator.validate a.estimator in
  Pte_adapt.Policy.validate a.policy

let rto c ~attempt =
  Float.min (c.base_rto *. (c.multiplier ** Float.of_int attempt)) c.cap

let max_attempts c = c.max_retries + 1

let worst_case_latency c ~frame_delay =
  let rec backoffs k acc =
    if k >= c.max_retries then acc
    else backoffs (k + 1) (acc +. rto c ~attempt:k +. c.jitter)
  in
  backoffs 0 0.0 +. frame_delay

type stats = {
  mutable data_sends : int;
  mutable delivered : int;
  mutable gave_up : int;
  mutable retransmissions : int;
  mutable acks_sent : int;
  mutable acks_lost : int;
  mutable dups_suppressed : int;
  mutable worst_latency : float;
  mutable max_consec_losses : int;
  mutable switches_up : int;
  mutable switches_down : int;
  mutable switch_refusals : int;
}

type event =
  | Exchange_delivered of {
      src : string;
      dst : string;
      seq : int;
      sent_at : float;
      arrival : float;
    }
  | Exchange_confirmed of { src : string; dst : string; seq : int; at : float }
  | Exchange_gave_up of { src : string; dst : string; seq : int; at : float }

(* Receiver-side dedup state for one (src, dst) flow. Sequence numbers
   are allocated monotonically per flow (link frames in `Bare mode,
   end-to-end exchange numbers in `Reliable mode), so a cumulative
   high-water mark plus a small window for copies that overtake each
   other replaces the old one-entry-per-send hashtable: memory is
   O(flows + window), not O(sends). *)
let dedup_window = 64

type flow_seen = {
  mutable high : int;  (* every seq <= high counts as already seen *)
  mutable recent : int list;  (* seen seqs above the high-water mark *)
}

(* Per-link reservation state in `Scheduled mode: [next_free] is the
   end of the last admitted send's blind-copy span (admission never
   books a slot before it), and [inflight] counts admitted sends whose
   span has not yet passed — the admission bound that keeps
   {!Pte_sched.Schedule.link_worst_case_latency} closed-form. *)
type sched_link = { mutable next_free : float; mutable inflight : int }

(* Runtime state of the `Adaptive mode's safe-switch protocol. The
   tier names which sub-mode carries new sends; a pending target means
   a switch has been admitted (Theorem-1 recheck passed) and is
   quiescing — waiting for in-flight exchanges of the outgoing mode to
   drain, bounded by a time-out timer at the outgoing mode's own
   worst-case latency. *)
type adapt_target = To_healthy | To_degraded of Pte_sched.Schedule.t

type adapt = {
  a_cfg : adaptive_config;
  (* per-sender estimators (inspection, tests) and the pooled one that
     drives tier decisions: the star shares one interference
     environment, so outcomes from every sender inform the switch. *)
  a_est : (string, Pte_adapt.Estimator.t) Hashtbl.t;
  a_pool : Pte_adapt.Estimator.t;
  a_healthy_wcl : float;  (* closed-form bound of the healthy mode *)
  mutable a_tier : Pte_adapt.Policy.tier;
  mutable a_sched : Pte_sched.Schedule.t option;  (* while degraded *)
  mutable a_switched_at : float;
  mutable a_samples_since : int;  (* outcomes since the last switch *)
  mutable a_pending : adapt_target option;  (* admitted, quiescing *)
  mutable a_pending_token : Executor.token option;
  mutable a_admit : (candidate_latency:float -> bool) option;
}

type t = {
  star : Star.t;
  mode : mode;
  rng : Pte_util.Rng.t;
  stats : stats;
  seen : (string * string, flow_seen) Hashtbl.t;
  (* per-flow end-to-end sequence counters (`Reliable mode). *)
  next_seq : (string * string, int ref) Hashtbl.t;
  (* per-sender consecutive unconfirmed sends, for degraded-safe-mode. *)
  consec : (string, int ref) Hashtbl.t;
  (* the concrete round schedule (`Scheduled mode), synthesized from
     the star at creation. *)
  sched : Pte_sched.Schedule.t option;
  (* per-link reservation state (`Scheduled mode). *)
  sched_links : (string * string, sched_link) Hashtbl.t;
  (* hashed (src, dst) -> entry view of the live schedule, keyed by the
     schedule value itself so an adaptive re-synthesis invalidates it.
     The per-send [Schedule.find] list walk is O(links) — thousands of
     entries on a 1000-entity star. *)
  mutable sched_index :
    (Pte_sched.Schedule.t * Pte_sched.Schedule.index) option;
  (* the executor whose timeline carries this transport's timers and
     arrivals (`Reliable and `Scheduled modes); set by {!attach}. *)
  mutable exec : Executor.t option;
  mutable observer : (event -> unit) option;
  (* `Adaptive mode runtime state ([Some _] exactly in that mode). *)
  adapt : adapt option;
  (* exchanges admitted but not yet resolved (reliable exchanges and
     scheduled blind spans) — the quiesce condition of the safe-switch
     protocol. *)
  mutable inflight_exchanges : int;
}

(* The healthy sub-mode's closed-form latency bound — what the
   safe-switch protocol rechecks before de-escalating back to it. *)
let healthy_wcl star = function
  | `Bare -> Star.worst_frame_delay star
  | `Reliable cfg ->
      worst_case_latency cfg ~frame_delay:(Star.worst_frame_delay star)

let create ~mode ~rng star =
  let sched =
    match mode with
    | `Bare | `Adaptive _ -> None
    | `Reliable cfg -> (
        match validate cfg with
        | Ok () -> None
        | Error msg -> invalid_arg msg)
    | `Scheduled policy -> (
        match
          Pte_sched.Synth.synthesize policy ~links:(Star.schedule_links star)
        with
        | Ok sched -> Some sched
        | Error e -> invalid_arg (Pte_sched.Synth.error_to_string e))
  in
  let adapt =
    match mode with
    | `Bare | `Reliable _ | `Scheduled _ -> None
    | `Adaptive a ->
        (match validate_adaptive a with
        | Ok () -> ()
        | Error msg -> invalid_arg msg);
        Some
          {
            a_cfg = a;
            a_est = Hashtbl.create 8;
            a_pool = Pte_adapt.Estimator.create a.estimator;
            a_healthy_wcl = healthy_wcl star a.healthy;
            a_tier = Pte_adapt.Policy.Healthy;
            a_sched = None;
            a_switched_at = 0.0;
            a_samples_since = 0;
            a_pending = None;
            a_pending_token = None;
            a_admit = None;
          }
  in
  {
    star;
    mode;
    rng;
    stats =
      { data_sends = 0; delivered = 0; gave_up = 0; retransmissions = 0;
        acks_sent = 0; acks_lost = 0; dups_suppressed = 0;
        worst_latency = 0.0; max_consec_losses = 0; switches_up = 0;
        switches_down = 0; switch_refusals = 0 };
    seen = Hashtbl.create 8;
    next_seq = Hashtbl.create 8;
    consec = Hashtbl.create 8;
    sched;
    sched_links = Hashtbl.create 8;
    sched_index = None;
    exec = None;
    observer = None;
    adapt;
    inflight_exchanges = 0;
  }

let attach t exec = t.exec <- Some exec
let set_observer t f = t.observer <- Some f
let observe t ev = match t.observer with Some f -> f ev | None -> ()

let mode t = t.mode
let stats t = t.stats

(* In `Adaptive mode the live schedule is the one the safe-switch
   protocol last committed (None while healthy); the static `Scheduled
   schedule otherwise. *)
let schedule t =
  match t.adapt with Some a -> a.a_sched | None -> t.sched

let record_latency t d =
  if d > t.stats.worst_latency then t.stats.worst_latency <- d

let counter t sender =
  match Hashtbl.find_opt t.consec sender with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.consec sender r;
      r

let consecutive_losses t ~sender = !(counter t sender)
let reset_consecutive_losses t ~sender = counter t sender := 0

(* ------------------------------------------------------------------ *)
(* `Adaptive mode: estimation, escalation and the safe-switch protocol *)
(* ------------------------------------------------------------------ *)

let set_admit t f =
  match t.adapt with
  | Some a -> a.a_admit <- Some f
  | None -> ()

let tier t =
  match t.adapt with Some a -> Some a.a_tier | None -> None

let estimator t ~sender =
  Option.bind t.adapt (fun a -> Hashtbl.find_opt a.a_est sender)

let pooled_estimator t = Option.map (fun a -> a.a_pool) t.adapt

(* Theorem-1 admission of a candidate mode. The emulation layer
   injects the real c1–c7 recheck ({!set_admit}); stand-alone, the
   configured budget is the bound; with neither, every candidate is
   admitted (the static create-time story then applies unchanged). *)
let adapt_admit a ~candidate_latency =
  match a.a_admit with
  | Some f -> f ~candidate_latency
  | None -> (
      match a.a_cfg.budget with
      | Some budget -> candidate_latency <= budget
      | None -> true)

(* The outgoing mode's own worst-case latency — the quiesce deadline:
   any exchange in flight at decision time resolves within it. *)
let adapt_active_wcl a =
  match (a.a_tier, a.a_sched) with
  | Pte_adapt.Policy.Degraded, Some sched ->
      Pte_sched.Schedule.worst_case_latency sched
  | _ -> a.a_healthy_wcl

let adapt_commit t a target ~at =
  (match a.a_pending_token with
  | Some token -> (
      match t.exec with
      | Some exec -> Executor.cancel exec token
      | None -> ())
  | None -> ());
  a.a_pending <- None;
  a.a_pending_token <- None;
  (match target with
  | To_degraded sched ->
      a.a_tier <- Pte_adapt.Policy.Degraded;
      a.a_sched <- Some sched;
      t.stats.switches_up <- t.stats.switches_up + 1
  | To_healthy ->
      a.a_tier <- Pte_adapt.Policy.Healthy;
      a.a_sched <- None;
      t.stats.switches_down <- t.stats.switches_down + 1);
  a.a_switched_at <- at;
  a.a_samples_since <- 0

(* A switch was admitted: commit at once if no exchange of the
   outgoing mode is in flight, otherwise quiesce — commit when the
   last in-flight exchange resolves, or at the outgoing mode's
   worst-case latency if some exchange outlives its own bound (it
   cannot, but the time-out keeps the protocol live regardless). A
   drained `Scheduled exit is automatically round-aligned: the last
   blind span ends at a slot boundary plus the resolution margin. *)
let adapt_start_switch t a target ~at =
  if t.inflight_exchanges = 0 then adapt_commit t a target ~at
  else begin
    a.a_pending <- Some target;
    match t.exec with
    | None -> adapt_commit t a target ~at
    | Some exec ->
        let deadline = at +. adapt_active_wcl a in
        let token =
          Executor.schedule exec ~owner:"<adaptive-switch>" ~at:deadline
            (fun _exec ->
              a.a_pending_token <- None;
              match a.a_pending with
              | Some target -> adapt_commit t a target ~at:deadline
              | None -> ())
        in
        a.a_pending_token <- Some token
  end

let adapt_refuse t a ~at =
  t.stats.switch_refusals <- t.stats.switch_refusals + 1;
  (* a refused switch re-arms the dwell clock: the next attempt waits
     another [min_dwell], so a persistently inadmissible candidate is
     retried at a bounded rate rather than on every outcome *)
  a.a_switched_at <- at

let adapt_evaluate t a ~now =
  if a.a_pending = None then
    let estimate = Pte_adapt.Estimator.loss_estimate a.a_pool in
    let decision =
      Pte_adapt.Policy.decide a.a_cfg.policy ~tier:a.a_tier ~estimate
        ~samples:a.a_samples_since ~since_switch:(now -. a.a_switched_at)
        ~in_burst:(Pte_adapt.Estimator.in_burst a.a_pool)
    in
    match decision with
    | Pte_adapt.Policy.Stay -> ()
    | Pte_adapt.Policy.Deescalate ->
        if adapt_admit a ~candidate_latency:a.a_healthy_wcl then
          adapt_start_switch t a To_healthy ~at:now
        else adapt_refuse t a ~at:now
    | Pte_adapt.Policy.Escalate -> (
        (* re-synthesize the round schedule for the loss the channel is
           actually showing (capped below 1 so the retry count stays
           finite); refuse — and stay in the current, still-admitted
           mode — if the synthesis or the Theorem-1 recheck rejects *)
        let policy =
          { a.a_cfg.degraded with
            Pte_sched.Synth.loss = Float.min estimate 0.95 }
        in
        match
          Pte_sched.Synth.synthesize policy
            ~links:(Star.schedule_links t.star)
        with
        | Error _ -> adapt_refuse t a ~at:now
        | Ok sched ->
            let wcl = Pte_sched.Schedule.worst_case_latency sched in
            if adapt_admit a ~candidate_latency:wcl then
              adapt_start_switch t a (To_degraded sched) ~at:now
            else adapt_refuse t a ~at:now)

(* Feed the channel estimators one sample at the instant its outcome
   becomes known to the sender. Samples are per *attempt*, not per
   exchange: an ARQ exchange that needed three tries records two losses
   and a success, and a blind span records every copy's fate — so the
   estimate tracks the channel itself, independent of how much
   redundancy the current mode layers on top. (Exchange-level feeding
   would see only the residual failure rate: ~2 % under ARQ on a 60 %
   channel, masking the loss the degraded schedule must be synthesized
   for — and, mirrored, a degraded mode whose spans almost always
   deliver would decay the estimate and de-escalate prematurely.) *)
let adapt_outcome t ~sender ~confirmed ~at =
  match t.adapt with
  | None -> ()
  | Some a ->
      let est =
        match Hashtbl.find_opt a.a_est sender with
        | Some est -> est
        | None ->
            let est = Pte_adapt.Estimator.create a.a_cfg.estimator in
            Hashtbl.add a.a_est sender est;
            est
      in
      Pte_adapt.Estimator.record est ~confirmed ~at;
      Pte_adapt.Estimator.record a.a_pool ~confirmed ~at;
      a.a_samples_since <- a.a_samples_since + 1;
      adapt_evaluate t a ~now:at

(* An exchange resolved: the quiesce condition of a pending switch may
   just have been reached. *)
let exchange_resolved t ~at =
  t.inflight_exchanges <- t.inflight_exchanges - 1;
  match t.adapt with
  | Some a when t.inflight_exchanges = 0 -> (
      match a.a_pending with
      | Some target -> adapt_commit t a target ~at
      | None -> ())
  | _ -> ()

(* High-water mark of the per-sender consecutive-loss counters: the
   deepest feedback blackout any sender saw in the trial — the
   certification level function's loss component. *)
let bump t sender =
  let c = counter t sender in
  incr c;
  if !c > t.stats.max_consec_losses then t.stats.max_consec_losses <- !c

let confirm t sender ~at =
  counter t sender := 0;
  adapt_outcome t ~sender ~confirmed:true ~at

let unconfirmed t sender ~at =
  bump t sender;
  adapt_outcome t ~sender ~confirmed:false ~at

(* The consecutive-loss counters alone — for outcomes that are not
   channel observations (admission rejections) or whose channel
   evidence was already fed to the estimator copy by copy. The
   degraded-safe-mode watchdog stays at exchange granularity either
   way: k consecutive *exchanges* lost, not k attempts. *)
let consec_confirm t sender = counter t sender := 0
let consec_unconfirmed t sender = bump t sender

let flow_seen t ~src ~dst =
  match Hashtbl.find_opt t.seen (src, dst) with
  | Some fs -> fs
  | None ->
      let fs = { high = -1; recent = [] } in
      Hashtbl.add t.seen (src, dst) fs;
      fs

(* First sighting of (src, dst, seq) at the receiver? Records it. A seq
   at or below the flow's high-water mark is a replay by construction;
   above it, [recent] disambiguates copies that arrive out of order
   (overlapping exchanges). Seqs falling more than [dedup_window] behind
   the newest are conservatively treated as replays, which bounds the
   window: in-flight exchanges per flow never approach that span. *)
let fresh t ~src ~dst ~seq =
  let fs = flow_seen t ~src ~dst in
  if seq <= fs.high || List.mem seq fs.recent then false
  else begin
    fs.recent <- seq :: fs.recent;
    if seq > fs.high + dedup_window then fs.high <- seq - dedup_window;
    let rec absorb () =
      if List.mem (fs.high + 1) fs.recent then begin
        fs.high <- fs.high + 1;
        absorb ()
      end
    in
    absorb ();
    fs.recent <- List.filter (fun s -> s > fs.high) fs.recent;
    true
  end

let flow_seq t ~src ~dst =
  let r =
    match Hashtbl.find_opt t.next_seq (src, dst) with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.next_seq (src, dst) r;
        r
  in
  let q = !r in
  incr r;
  q

type hop = Wired | No_route | Radio of Link.t

let hop t ~sender ~receiver =
  if not (Star.is_node t.star sender && Star.is_node t.star receiver) then
    Wired
  else
    match Star.link_for t.star ~sender ~receiver with
    | None ->
        t.star.Star.remote_to_remote_dropped <-
          t.star.Star.remote_to_remote_dropped + 1;
        No_route
    | Some link -> Radio link

(* ------------------------------------------------------------------ *)
(* `Bare mode: one attempt, no ACKs — Star.router semantics plus the
   (src, seq) replay filter on injected duplicates.                    *)
(* ------------------------------------------------------------------ *)

let bare_send t link ~time ~sender ~receiver ~root =
  t.stats.data_sends <- t.stats.data_sends + 1;
  match Link.send link ~time ~src:sender ~dst:receiver ~root with
  | Link.Drop _ ->
      unconfirmed t sender ~at:time;
      t.stats.gave_up <- t.stats.gave_up + 1;
      Executor.Lose
  | Link.Deliver { arrival; packet } ->
      confirm t sender ~at:time;
      if fresh t ~src:sender ~dst:receiver ~seq:packet.Packet.seq then begin
        t.stats.delivered <- t.stats.delivered + 1;
        record_latency t (arrival -. time);
        Executor.Deliver (arrival -. time)
      end
      else begin
        (* cannot happen with per-link sequence numbers, but keep the
           filter total: a send whose only copy is suppressed is a lost
           send, not a delivered one *)
        t.stats.dups_suppressed <- t.stats.dups_suppressed + 1;
        t.stats.gave_up <- t.stats.gave_up + 1;
        Executor.Lose
      end
  | Link.Deliver_dup { arrivals = a1, _; packet } ->
      confirm t sender ~at:time;
      if fresh t ~src:sender ~dst:receiver ~seq:packet.Packet.seq then begin
        (* the replayed copy carries the same (src, seq): suppress it *)
        t.stats.delivered <- t.stats.delivered + 1;
        t.stats.dups_suppressed <- t.stats.dups_suppressed + 1;
        record_latency t (a1 -. time);
        Executor.Deliver (a1 -. time)
      end
      else begin
        t.stats.dups_suppressed <- t.stats.dups_suppressed + 2;
        t.stats.gave_up <- t.stats.gave_up + 1;
        Executor.Lose
      end

(* ------------------------------------------------------------------ *)
(* `Reliable mode: event-driven ARQ exchanges                          *)
(* ------------------------------------------------------------------ *)

let ack_root root = "ack:" ^ root

(* One in-progress ARQ exchange. The sender side is a small state
   machine driven by executor timers: every attempt arms the next
   retransmission (or, after the last attempt, the give-up timeout);
   an arriving ACK cancels the armed timer and resolves the exchange. *)
type exchange = {
  ex_cfg : config;
  ex_link : Link.t;
  ex_ack_link : Link.t option;
  ex_src : string;
  ex_dst : string;
  ex_root : string;
  ex_seq : int;
  (* private jitter stream, keyed by (flow, seq): the backoff schedule
     of an exchange is a function of the seed and its identity alone,
     independent of how exchanges interleave on the timeline. *)
  ex_rng : Pte_util.Rng.t;
  ex_sent_at : float;
  mutable ex_timer : Executor.token option;
  mutable ex_arrived : bool;  (* a fresh copy reached the automaton *)
  mutable ex_in_flight : int;  (* data copies in the air *)
  mutable ex_resolved : bool;  (* sender side: confirmed or gave up *)
}

let require_exec t =
  match t.exec with
  | Some exec -> exec
  | None ->
      invalid_arg
        "Transport.router: `Reliable and `Scheduled modes need \
         Transport.attach before the first radio send"

(* The ACK made it back: the sender learns the outcome, stands down the
   pending retransmission (revoking it before the channel ever sees the
   frame) and clears the consecutive-loss counter — at the instant the
   confirmation actually arrives. *)
let resolve_confirmed t ex exec ~at =
  if not ex.ex_resolved then begin
    ex.ex_resolved <- true;
    (match ex.ex_timer with
    | Some token ->
        Executor.cancel exec token;
        ex.ex_timer <- None
    | None -> ());
    exchange_resolved t ~at;
    confirm t ex.ex_src ~at;
    observe t
      (Exchange_confirmed { src = ex.ex_src; dst = ex.ex_dst; seq = ex.ex_seq; at })
  end

(* The retry budget ran out without a confirmation: the sender counts a
   feedback loss now — when it becomes known — not at the send instant.
   Only if no copy reached (or is still flying toward) the receiver is
   the send itself lost. *)
let resolve_gave_up t ex exec ~at =
  if not ex.ex_resolved then begin
    ex.ex_resolved <- true;
    ex.ex_timer <- None;
    exchange_resolved t ~at;
    unconfirmed t ex.ex_src ~at;
    if (not ex.ex_arrived) && ex.ex_in_flight = 0 then begin
      t.stats.gave_up <- t.stats.gave_up + 1;
      Executor.lose_now exec ~receiver:ex.ex_dst ~root:ex.ex_root
    end;
    observe t
      (Exchange_gave_up { src = ex.ex_src; dst = ex.ex_dst; seq = ex.ex_seq; at })
  end

let rec send_attempt t ex exec ~at ~attempt =
  if attempt > 0 then
    t.stats.retransmissions <- t.stats.retransmissions + 1;
  (match
     Link.send ex.ex_link ~time:at ~src:ex.ex_src ~dst:ex.ex_dst
       ~root:ex.ex_root
   with
  | Link.Drop _ -> ()
  | Link.Deliver { arrival; packet = _ } -> schedule_copy t ex exec ~arrival
  | Link.Deliver_dup { arrivals = a1, a2; packet = _ } ->
      (* an injected duplicate: both copies fly; the replay is squashed
         at the receiver by (src, seq) *)
      schedule_copy t ex exec ~arrival:a1;
      schedule_copy t ex exec ~arrival:a2);
  (* Arm the timer that drives the rest of the exchange: the next
     retransmission, or — after the final attempt — the give-up
     timeout. Nominal times accumulate [at +. wait] so the schedule
     (and hence {!worst_case_latency}) is independent of the step
     quantization at which timers actually fire. *)
  let wait =
    rto ex.ex_cfg ~attempt
    +. Pte_util.Rng.uniform ex.ex_rng ~lo:0.0 ~hi:ex.ex_cfg.jitter
  in
  let due = at +. wait in
  let token =
    Executor.schedule exec ~owner:ex.ex_src ~at:due (fun exec ->
        ex.ex_timer <- None;
        if not ex.ex_resolved then
          if attempt < ex.ex_cfg.max_retries then begin
            (* this timer firing means the attempt went unacknowledged:
               a per-attempt loss sample for the channel estimator (the
               exchange itself is still live, so the watchdog counter
               does not move) *)
            adapt_outcome t ~sender:ex.ex_src ~confirmed:false ~at:due;
            send_attempt t ex exec ~at:due ~attempt:(attempt + 1)
          end
          else resolve_gave_up t ex exec ~at:due)
  in
  ex.ex_timer <- Some token

and schedule_copy t ex exec ~arrival =
  ex.ex_in_flight <- ex.ex_in_flight + 1;
  ignore
    (Executor.schedule exec ~owner:ex.ex_dst ~at:arrival (fun exec ->
         receive t ex exec ~arrival))

(* A data copy reaches the receiver: dedup by the end-to-end seq, hand
   the first fresh copy to the automaton, and acknowledge every copy on
   the reverse link (the previous ACK may be the one that got lost). *)
and receive t ex exec ~arrival =
  ex.ex_in_flight <- ex.ex_in_flight - 1;
  if fresh t ~src:ex.ex_src ~dst:ex.ex_dst ~seq:ex.ex_seq then begin
    ex.ex_arrived <- true;
    t.stats.delivered <- t.stats.delivered + 1;
    record_latency t (arrival -. ex.ex_sent_at);
    ignore (Executor.deliver_now exec ~receiver:ex.ex_dst ~root:ex.ex_root);
    observe t
      (Exchange_delivered
         { src = ex.ex_src; dst = ex.ex_dst; seq = ex.ex_seq;
           sent_at = ex.ex_sent_at; arrival })
  end
  else t.stats.dups_suppressed <- t.stats.dups_suppressed + 1;
  t.stats.acks_sent <- t.stats.acks_sent + 1;
  match ex.ex_ack_link with
  | None ->
      (* no radio reverse path: treat the ACK as wired *)
      resolve_confirmed t ex exec ~at:arrival
  | Some back -> (
      match
        Link.send back ~time:arrival ~src:ex.ex_dst ~dst:ex.ex_src
          ~root:(ack_root ex.ex_root)
      with
      | Link.Drop _ -> t.stats.acks_lost <- t.stats.acks_lost + 1
      | Link.Deliver { arrival = ack_at; packet = _ }
      | Link.Deliver_dup { arrivals = ack_at, _; packet = _ } ->
          ignore
            (Executor.schedule exec ~owner:ex.ex_src ~at:ack_at (fun exec ->
                 resolve_confirmed t ex exec ~at:ack_at)))

let reliable_send t cfg link ~time ~sender ~receiver ~root =
  let exec = require_exec t in
  t.stats.data_sends <- t.stats.data_sends + 1;
  t.inflight_exchanges <- t.inflight_exchanges + 1;
  let seq = flow_seq t ~src:sender ~dst:receiver in
  let ex =
    {
      ex_cfg = cfg;
      ex_link = link;
      ex_ack_link = Star.link_for t.star ~sender:receiver ~receiver:sender;
      ex_src = sender;
      ex_dst = receiver;
      ex_root = root;
      ex_seq = seq;
      ex_rng =
        Pte_util.Rng.keyed t.rng
          ~key:(Int64.of_int (Hashtbl.hash (sender, receiver, seq)));
      ex_sent_at = time;
      ex_timer = None;
      ex_arrived = false;
      ex_in_flight = 0;
      ex_resolved = false;
    }
  in
  send_attempt t ex exec ~at:time ~attempt:0;
  Executor.Deferred

(* ------------------------------------------------------------------ *)
(* `Scheduled mode: time-triggered blind transmission (TTW-style)      *)
(* ------------------------------------------------------------------ *)

module Schedule = Pte_sched.Schedule

(* The cached index of the live schedule, rebuilt when the schedule
   value changes (adaptive escalation synthesizes a fresh one). *)
let sched_index t sched =
  match t.sched_index with
  | Some (s, idx) when s == sched -> idx
  | _ ->
      let idx = Schedule.index sched in
      t.sched_index <- Some (sched, idx);
      idx

let sched_link_state t ~sender ~receiver =
  match Hashtbl.find_opt t.sched_links (sender, receiver) with
  | Some st -> st
  | None ->
      let st = { next_free = 0.0; inflight = 0 } in
      Hashtbl.add t.sched_links (sender, receiver) st;
      st

(* One admitted time-triggered send. All timers are armed up front at
   admission: the [1 + retries] blind copies hit the channel at the
   link's slot start in consecutive rounds (no ACKs, no cancellation —
   the channel decides per copy), and one resolution timer fires
   strictly after the last copy can land ([2 *. slot_len] past the last
   slot start; arrivals stay within one [slot_len] of their slot start
   because synthesis forces [slot_len >= worst frame delay]).

   Admission control makes the latency bound closed-form: the link
   keeps [next_free], the end of the last reservation's span, and books
   each new send at the first slot after [max time next_free]; at most
   [depth] sends may hold reservations at once, later ones are rejected
   at admission and counted as lost (the protocol layer above already
   tolerates message loss). By induction over the reservation chain a
   send admitted at [time] with [j < depth] reservations pending has
   [next_free' <= time + (j + 1) * ((retries + 1) * period + slot_len)],
   and its last copy lands by [next_free'] — which is exactly
   {!Schedule.link_worst_case_latency} at [j = depth - 1]. *)
type sched_send = {
  ss_link : Link.t;
  ss_src : string;
  ss_dst : string;
  ss_root : string;
  ss_seq : int;
  ss_sent_at : float;
  mutable ss_arrived : bool;  (* a fresh copy reached the automaton *)
}

let sched_receive t ss exec ~arrival =
  if fresh t ~src:ss.ss_src ~dst:ss.ss_dst ~seq:ss.ss_seq then begin
    ss.ss_arrived <- true;
    t.stats.delivered <- t.stats.delivered + 1;
    record_latency t (arrival -. ss.ss_sent_at);
    ignore (Executor.deliver_now exec ~receiver:ss.ss_dst ~root:ss.ss_root);
    observe t
      (Exchange_delivered
         { src = ss.ss_src; dst = ss.ss_dst; seq = ss.ss_seq;
           sent_at = ss.ss_sent_at; arrival })
  end
  else t.stats.dups_suppressed <- t.stats.dups_suppressed + 1

(* Each blind copy's fate is one estimator sample (the oracle view the
   simulation affords — the same instant-of-knowledge convention `Bare
   mode uses at the send), so the estimate keeps tracking the channel
   while the span-level residual failure rate sits near zero. *)
let sched_copy t ss exec ~at ~copy =
  if copy > 0 then t.stats.retransmissions <- t.stats.retransmissions + 1;
  match
    Link.send ss.ss_link ~time:at ~src:ss.ss_src ~dst:ss.ss_dst
      ~root:ss.ss_root
  with
  | Link.Drop _ -> adapt_outcome t ~sender:ss.ss_src ~confirmed:false ~at
  | Link.Deliver { arrival; packet = _ } ->
      adapt_outcome t ~sender:ss.ss_src ~confirmed:true ~at;
      ignore
        (Executor.schedule exec ~owner:ss.ss_dst ~at:arrival (fun exec ->
             sched_receive t ss exec ~arrival))
  | Link.Deliver_dup { arrivals = a1, a2; packet = _ } ->
      (* an injected duplicate: both copies fly; the replay is squashed
         at the receiver by (src, seq) *)
      adapt_outcome t ~sender:ss.ss_src ~confirmed:true ~at;
      List.iter
        (fun arrival ->
          ignore
            (Executor.schedule exec ~owner:ss.ss_dst ~at:arrival (fun exec ->
                 sched_receive t ss exec ~arrival)))
        [ a1; a2 ]

(* The blind span is over: the sender learns the outcome. There is no
   feedback channel, so "confirmed" is the oracle view the simulation
   affords (a copy reached the receiver) — the same instant-of-knowledge
   convention `Bare mode uses at the send. *)
let sched_resolve t ss st exec ~at =
  st.inflight <- st.inflight - 1;
  exchange_resolved t ~at;
  (* the copies already fed the estimator one sample each from
     [sched_copy]; the span outcome moves only the watchdog counter *)
  if ss.ss_arrived then begin
    consec_confirm t ss.ss_src;
    observe t
      (Exchange_confirmed
         { src = ss.ss_src; dst = ss.ss_dst; seq = ss.ss_seq; at })
  end
  else begin
    consec_unconfirmed t ss.ss_src;
    t.stats.gave_up <- t.stats.gave_up + 1;
    Executor.lose_now exec ~receiver:ss.ss_dst ~root:ss.ss_root;
    observe t
      (Exchange_gave_up
         { src = ss.ss_src; dst = ss.ss_dst; seq = ss.ss_seq; at })
  end

let scheduled_send t sched link ~time ~sender ~receiver ~root =
  let exec = require_exec t in
  t.stats.data_sends <- t.stats.data_sends + 1;
  match Schedule.find_indexed (sched_index t sched) ~src:sender ~dst:receiver with
  | None ->
      (* every star link is scheduled at synthesis; unreachable unless
         the topology grew after creation — fail as a plain loss *)
      consec_unconfirmed t sender;
      t.stats.gave_up <- t.stats.gave_up + 1;
      Executor.Lose
  | Some entry ->
      let st = sched_link_state t ~sender ~receiver in
      if st.inflight >= sched.Schedule.depth then begin
        (* admission bound hit: rejecting now is what keeps the latency
           bound sound for the sends already holding reservations; no
           estimator sample — a full queue says nothing about the
           channel *)
        consec_unconfirmed t sender;
        t.stats.gave_up <- t.stats.gave_up + 1;
        Executor.Lose
      end
      else begin
        st.inflight <- st.inflight + 1;
        t.inflight_exchanges <- t.inflight_exchanges + 1;
        let period = Schedule.period sched in
        let first =
          Schedule.slot_start sched entry ~after:(Float.max time st.next_free)
        in
        let span = (Float.of_int entry.Schedule.retries *. period) in
        st.next_free <- first +. span +. sched.Schedule.slot_len;
        let ss =
          {
            ss_link = link;
            ss_src = sender;
            ss_dst = receiver;
            ss_root = root;
            ss_seq = flow_seq t ~src:sender ~dst:receiver;
            ss_sent_at = time;
            ss_arrived = false;
          }
        in
        for copy = 0 to entry.Schedule.retries do
          let at = first +. (Float.of_int copy *. period) in
          ignore
            (Executor.schedule exec ~owner:sender ~at (fun exec ->
                 sched_copy t ss exec ~at ~copy))
        done;
        let resolve_at = first +. span +. (2.0 *. sched.Schedule.slot_len) in
        ignore
          (Executor.schedule exec ~owner:sender ~at:resolve_at (fun exec ->
               sched_resolve t ss st exec ~at:resolve_at));
        Executor.Deferred
      end

(* ------------------------------------------------------------------ *)
(* The executor hook                                                   *)
(* ------------------------------------------------------------------ *)

let router t : Executor.router =
 fun ~time ~sender ~root ~receiver ->
  match hop t ~sender ~receiver with
  | Wired -> Executor.Deliver 0.0
  | No_route -> Executor.Lose
  | Radio link -> (
      match t.mode with
      | `Bare -> bare_send t link ~time ~sender ~receiver ~root
      | `Reliable cfg -> reliable_send t cfg link ~time ~sender ~receiver ~root
      | `Scheduled _ ->
          let sched =
            match t.sched with
            | Some sched -> sched
            | None -> assert false (* synthesized in create *)
          in
          scheduled_send t sched link ~time ~sender ~receiver ~root
      | `Adaptive _ -> (
          let a =
            match t.adapt with
            | Some a -> a
            | None -> assert false (* constructed in create *)
          in
          match a.a_tier with
          | Pte_adapt.Policy.Healthy -> (
              match a.a_cfg.healthy with
              | `Bare -> bare_send t link ~time ~sender ~receiver ~root
              | `Reliable cfg ->
                  reliable_send t cfg link ~time ~sender ~receiver ~root)
          | Pte_adapt.Policy.Degraded ->
              let sched =
                match a.a_sched with
                | Some sched -> sched
                | None -> assert false (* set by adapt_commit *)
              in
              scheduled_send t sched link ~time ~sender ~receiver ~root))

(* ------------------------------------------------------------------ *)
(* CLI spec parsing                                                    *)
(* ------------------------------------------------------------------ *)

let mode_of_string s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_sched_fields spec =
    let field (p : Pte_sched.Synth.policy) kv =
      match String.index_opt kv '=' with
      | None -> fail "transport: expected key=value, got %S" kv
      | Some i ->
          let k = String.sub kv 0 i in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          let num set =
            match float_of_string_opt v with
            | Some f -> Ok (set f)
            | None -> fail "transport: %s expects a number, got %S" k v
          in
          (match k with
          | "retries" -> (
              match int_of_string_opt v with
              | Some n -> Ok { p with Pte_sched.Synth.retries = Some n }
              | None -> fail "transport: retries expects an integer, got %S" v)
          | "depth" -> (
              match int_of_string_opt v with
              | Some n -> Ok { p with Pte_sched.Synth.depth = n }
              | None -> fail "transport: depth expects an integer, got %S" v)
          | "slot" -> num (fun f -> { p with Pte_sched.Synth.slot_len = Some f })
          | "loss" -> num (fun f -> { p with Pte_sched.Synth.loss = f })
          | "confidence" ->
              num (fun f -> { p with Pte_sched.Synth.confidence = f })
          | "budget" -> num (fun f -> { p with Pte_sched.Synth.budget = Some f })
          | _ ->
              fail
                "transport: unknown key %S (expected \
                 slot|retries|loss|confidence|depth|budget)"
                k)
    in
    let rec go p = function
      | [] -> Ok (`Scheduled p)
      | kv :: rest -> (
          match field p kv with Ok p -> go p rest | Error _ as e -> e)
    in
    go Pte_sched.Synth.default_policy (String.split_on_char ',' spec)
  in
  let parse_fields spec =
    let field cfg kv =
      match String.index_opt kv '=' with
      | None -> fail "transport: expected key=value, got %S" kv
      | Some i ->
          let k = String.sub kv 0 i in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          let num set =
            match float_of_string_opt v with
            | Some f -> Ok (set f)
            | None -> fail "transport: %s expects a number, got %S" k v
          in
          (match k with
          | "retries" -> (
              match int_of_string_opt v with
              | Some n -> Ok { cfg with max_retries = n }
              | None -> fail "transport: retries expects an integer, got %S" v)
          | "rto" -> num (fun f -> { cfg with base_rto = f })
          | "multiplier" -> num (fun f -> { cfg with multiplier = f })
          | "cap" -> num (fun f -> { cfg with cap = f })
          | "jitter" -> num (fun f -> { cfg with jitter = f })
          | _ ->
              fail
                "transport: unknown key %S (expected \
                 retries|rto|multiplier|cap|jitter)"
                k)
    in
    let rec go cfg = function
      | [] -> (
          match validate cfg with
          | Ok () -> Ok (`Reliable cfg)
          | Error msg -> Error msg)
      | kv :: rest -> (
          match field cfg kv with Ok cfg -> go cfg rest | Error _ as e -> e)
    in
    go default_config (String.split_on_char ',' spec)
  in
  let parse_adaptive_fields spec =
    let field (a : adaptive_config) kv =
      match String.index_opt kv '=' with
      | None -> fail "transport: expected key=value, got %S" kv
      | Some i ->
          let k = String.sub kv 0 i in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          let num set =
            match float_of_string_opt v with
            | Some f -> Ok (set f)
            | None -> fail "transport: %s expects a number, got %S" k v
          in
          let int set =
            match int_of_string_opt v with
            | Some n -> Ok (set n)
            | None -> fail "transport: %s expects an integer, got %S" k v
          in
          (match k with
          | "healthy" -> (
              match v with
              | "bare" -> Ok { a with healthy = `Bare }
              | "reliable" -> Ok { a with healthy = `Reliable default_config }
              | _ ->
                  fail "transport: healthy expects bare or reliable, got %S" v)
          | "degrade" ->
              num (fun f ->
                  { a with
                    policy =
                      { a.policy with Pte_adapt.Policy.degrade_above = f } })
          | "recover" ->
              num (fun f ->
                  { a with
                    policy =
                      { a.policy with Pte_adapt.Policy.recover_below = f } })
          | "dwell" ->
              num (fun f ->
                  { a with
                    policy = { a.policy with Pte_adapt.Policy.min_dwell = f } })
          | "samples" ->
              int (fun n ->
                  { a with
                    policy = { a.policy with Pte_adapt.Policy.min_samples = n } })
          | "window" ->
              int (fun n ->
                  { a with
                    estimator =
                      { a.estimator with Pte_adapt.Estimator.window = n } })
          | "burst" ->
              int (fun n ->
                  { a with
                    estimator =
                      { a.estimator with Pte_adapt.Estimator.burst_k = n } })
          | "budget" -> num (fun f -> { a with budget = Some f })
          | _ ->
              fail
                "transport: unknown key %S (expected \
                 healthy|degrade|recover|dwell|samples|window|burst|budget)"
                k)
    in
    let rec go a = function
      | [] -> (
          match validate_adaptive a with
          | Ok () -> Ok (`Adaptive a)
          | Error msg -> Error msg)
      | kv :: rest -> (
          match field a kv with Ok a -> go a rest | Error _ as e -> e)
    in
    go default_adaptive (String.split_on_char ',' spec)
  in
  match String.index_opt s ':' with
  | None -> (
      match s with
      | "bare" -> Ok `Bare
      | "reliable" -> Ok (`Reliable default_config)
      | "scheduled" -> Ok (`Scheduled Pte_sched.Synth.default_policy)
      | "adaptive" -> Ok (`Adaptive default_adaptive)
      | _ ->
          fail
            "unknown transport %S (expected bare, reliable[:k=v,...], \
             scheduled[:k=v,...] or adaptive[:k=v,...])"
            s)
  | Some i ->
      let head = String.sub s 0 i in
      let spec = String.sub s (i + 1) (String.length s - i - 1) in
      if String.equal head "reliable" then parse_fields spec
      else if String.equal head "scheduled" then parse_sched_fields spec
      else if String.equal head "adaptive" then parse_adaptive_fields spec
      else
        fail
          "unknown transport %S (expected bare, reliable[:k=v,...], \
           scheduled[:k=v,...] or adaptive[:k=v,...])"
          head

let pp_config ppf c =
  Fmt.pf ppf "retries:%d rto:%gs x%g cap:%gs jitter:%gs" c.max_retries
    c.base_rto c.multiplier c.cap c.jitter

let pp_mode ppf = function
  | `Bare -> Fmt.string ppf "bare"
  | `Reliable c ->
      Fmt.pf ppf "reliable:retries=%d,rto=%g,multiplier=%g,cap=%g,jitter=%g"
        c.max_retries c.base_rto c.multiplier c.cap c.jitter
  | `Scheduled (p : Pte_sched.Synth.policy) ->
      let opt key pp ppf = function
        | None -> ()
        | Some v -> Fmt.pf ppf ",%s=%a" key pp v
      in
      Fmt.pf ppf "scheduled:loss=%g,confidence=%g,depth=%d%a%a%a" p.loss
        p.confidence p.depth
        (opt "slot" Fmt.float)
        p.slot_len
        (opt "retries" Fmt.int)
        p.retries
        (opt "budget" Fmt.float)
        p.budget
  | `Adaptive (a : adaptive_config) ->
      Fmt.pf ppf "adaptive:healthy=%s,degrade=%g,recover=%g,dwell=%g%a"
        (match a.healthy with `Bare -> "bare" | `Reliable _ -> "reliable")
        a.policy.Pte_adapt.Policy.degrade_above
        a.policy.Pte_adapt.Policy.recover_below
        a.policy.Pte_adapt.Policy.min_dwell
        (fun ppf -> function
          | None -> ()
          | Some b -> Fmt.pf ppf ",budget=%g" b)
        a.budget

(* The one `--transport` converter every CLI shares: adding a mode (or
   rewording an error) lands in every binary at once. *)
let conv =
  Cmdliner.Arg.conv ~docv:"MODE"
    ( (fun s ->
        match mode_of_string s with
        | Ok m -> Ok m
        | Error msg -> Error (`Msg msg)),
      pp_mode )

let pp_stats ppf s =
  Fmt.pf ppf
    "sends:%d delivered:%d gave-up:%d retx:%d acks:%d acks-lost:%d dups:%d"
    s.data_sends s.delivered s.gave_up s.retransmissions s.acks_sent
    s.acks_lost s.dups_suppressed;
  (* switch counters only exist in `Adaptive mode; printing them only
     when set keeps the legacy render byte-identical *)
  if s.switches_up + s.switches_down + s.switch_refusals > 0 then
    Fmt.pf ppf " switches-up:%d switches-down:%d switch-refusals:%d"
      s.switches_up s.switches_down s.switch_refusals
