(** The distributed sink-based wireless topology of Section II-B: one
    base station ξ0 and N remote entities, an uplink and a downlink per
    remote, and {e no} direct remote-to-remote links (a send whose
    source and destination are both remotes is dropped and counted).

    {!router} adapts the topology to the executor's transport hook:
    messages whose sender or receiver is not a registered node (e.g.
    physically co-located automata such as the patient model) are
    delivered reliably with zero delay, i.e. treated as wired. *)

type t = {
  base : string;
  uplinks : (string * Link.t) list;  (* remote -> link remote->base *)
  downlinks : (string * Link.t) list;  (* remote -> link base->remote *)
  mutable remote_to_remote_dropped : int;
}

let create ~base ~remotes ~loss_kind ?(delay_base = 0.01)
    ?(delay_jitter = 0.02) ?(mac_retries = 0) ~rng () =
  let mk direction remote =
    let name =
      match direction with
      | Link.Uplink -> Printf.sprintf "%s->%s" remote base
      | Link.Downlink -> Printf.sprintf "%s->%s" base remote
    in
    ( remote,
      Link.create ~name ~direction
        ~loss:(Loss.create_rng loss_kind (Pte_util.Rng.split rng))
        ~delay_base ~delay_jitter ~mac_retries
        ~rng:(Pte_util.Rng.split rng) () )
  in
  {
    base;
    uplinks = List.map (mk Link.Uplink) remotes;
    downlinks = List.map (mk Link.Downlink) remotes;
    remote_to_remote_dropped = 0;
  }

let is_remote t name = List.mem_assoc name t.uplinks
let is_node t name = String.equal name t.base || is_remote t name

let link_for t ~sender ~receiver =
  if String.equal sender t.base && is_remote t receiver then
    Some (List.assoc receiver t.downlinks)
  else if is_remote t sender && String.equal receiver t.base then
    Some (List.assoc sender t.uplinks)
  else None

(** Executor transport: wireless between registered nodes, wired
    otherwise. *)
let router t : Pte_hybrid.Executor.router =
 fun ~time ~sender ~root ~receiver ->
  if not (is_node t sender && is_node t receiver) then
    Pte_hybrid.Executor.Deliver 0.0
  else
    match link_for t ~sender ~receiver with
    | None ->
        (* two remotes: no direct wireless link exists *)
        t.remote_to_remote_dropped <- t.remote_to_remote_dropped + 1;
        Pte_hybrid.Executor.Lose
    | Some link -> (
        match Link.send link ~time ~src:sender ~dst:receiver ~root with
        | Link.Deliver { arrival; _ } ->
            Pte_hybrid.Executor.Deliver (arrival -. time)
        | Link.Deliver_dup { arrivals = (a1, a2); _ } ->
            Pte_hybrid.Executor.Deliver_many [ a1 -. time; a2 -. time ]
        | Link.Drop _ -> Pte_hybrid.Executor.Lose)

let all_links t =
  List.map snd t.uplinks @ List.map snd t.downlinks

(** Every link with the remote entity it serves — uplinks first, in
    remote order — for layers that install per-link machinery (fault
    injectors, per-link observers). *)
let links t =
  List.map (fun (remote, link) -> (remote, link)) t.uplinks
  @ List.map (fun (remote, link) -> (remote, link)) t.downlinks

(** The star's directed links as schedule endpoints, each with its
    worst one-way frame delay — the synthesis input of
    {!Pte_sched.Synth.synthesize}. Uplinks first, in remote order, so
    slot assignment is deterministic per topology. *)
let schedule_links t =
  let up (remote, link) =
    ({ Pte_sched.Schedule.src = remote; dst = t.base }, Link.worst_delay link)
  in
  let down (remote, link) =
    ({ Pte_sched.Schedule.src = t.base; dst = remote }, Link.worst_delay link)
  in
  List.map up t.uplinks @ List.map down t.downlinks

(** Worst one-way frame latency across every link of the star — the
    per-attempt term of {!Transport.worst_case_latency}. *)
let worst_frame_delay t =
  List.fold_left
    (fun acc link -> Float.max acc (Link.worst_delay link))
    0.0 (all_links t)

let total_stats t =
  List.fold_left
    (fun acc link -> Link_stats.merge acc (Link.stats link))
    (Link_stats.create ()) (all_links t)

let pp ppf t =
  Fmt.pf ppf "@[<v>star network (base %s)@,%a@]" t.base
    (Fmt.list ~sep:Fmt.cut Link.pp) (all_links t)
