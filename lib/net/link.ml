(** A unidirectional wireless link (one uplink or downlink of the star).

    Applies the loss model, assigns a propagation + MAC delay, and keeps
    statistics. Corrupted frames are "delivered" but fail the CRC check
    and are discarded at the receiver, as the fault model prescribes.

    An optional {e injector} sits in front of the stochastic loss model:
    a deterministic per-frame tampering decision used by the
    fault-injection layer ([pte_faults]) to script targeted faults
    ("lose exactly the 2nd cancel on this downlink"). *)

type direction = Uplink | Downlink

(** The injector's verdict for one frame. [Pass] falls through to the
    stochastic loss model; every other verdict overrides it (including
    the MAC retry loop — a scripted fault hits the whole send). *)
type tamper =
  | Pass
  | Drop_frame  (** lose the frame in the air *)
  | Corrupt_frame  (** deliver with bit errors; the CRC check discards *)
  | Delay_frame of float  (** deliver, but this many extra seconds late *)
  | Duplicate_frame  (** deliver twice (MAC-ack lost, sender repeats) *)

type injector = time:float -> root:string -> tamper

type t = {
  name : string;
  direction : direction;
  loss : Loss.t;
  delay_base : float;
  delay_jitter : float;
  mac_retries : int;
  retry_spacing : float;
  rng : Pte_util.Rng.t;
  stats : Link_stats.t;
  mutable seq : int;
  mutable injector : injector option;
}

let create ~name ~direction ~loss ?(delay_base = 0.01) ?(delay_jitter = 0.02)
    ?(mac_retries = 0) ?(retry_spacing = 0.005) ~rng () =
  { name; direction; loss; delay_base; delay_jitter; mac_retries;
    retry_spacing; rng; stats = Link_stats.create (); seq = 0;
    injector = None }

let name t = t.name
let direction t = t.direction
let set_injector t injector = t.injector <- injector

type verdict =
  | Deliver of { arrival : float; packet : Packet.t }
  | Deliver_dup of { arrivals : float * float; packet : Packet.t }
      (** an injected duplicate: the same frame arrives twice *)
  | Drop of Loss.outcome  (** [Lost_in_air] or [Corrupted] *)

(* The receiver-side CRC discard path: the frame arrives damaged, the
   checksum fails, the receiver drops it. Both the stochastic
   [Corrupting] model and the injector's [Corrupt_frame] flow through
   here, so every corruption in the system is CRC-checked. *)
let crc_discard t packet =
  let damaged = Packet.corrupt ~bit:(Pte_util.Rng.int t.rng 64) packet in
  assert (not (Packet.intact damaged));
  Link_stats.on_corrupted t.stats;
  Drop Loss.Corrupted

(** Send one event root across the link at [time], with up to
    [mac_retries] MAC-layer retransmissions (802.15.4-style; each retry
    adds [retry_spacing] to the delivery delay). The receiver-side CRC
    check happens here: a corrupted frame arrives but is discarded, so
    the attempt counts as a drop with outcome [Corrupted]. An installed
    injector is consulted first; a non-[Pass] verdict bypasses the loss
    model (and its RNG draw) for this frame. *)
let send t ~time ~src ~dst ~root =
  let packet = Packet.make ~seq:t.seq ~src ~dst ~root ~sent_at:time () in
  t.seq <- t.seq + 1;
  Link_stats.on_sent t.stats;
  let tamper =
    match t.injector with None -> Pass | Some f -> f ~time ~root
  in
  match tamper with
  | Drop_frame ->
      Link_stats.on_lost t.stats;
      Drop Loss.Lost_in_air
  | Corrupt_frame -> crc_discard t packet
  | Pass | Delay_frame _ | Duplicate_frame -> (
      let rec attempt n =
        let now = time +. (Float.of_int n *. t.retry_spacing) in
        match Loss.decide t.loss ~time:now ~root with
        | Loss.Lost_in_air when n < t.mac_retries ->
            Link_stats.on_retransmit t.stats;
            attempt (n + 1)
        | Loss.Corrupted when n < t.mac_retries ->
            Link_stats.on_retransmit t.stats;
            attempt (n + 1)
        | Loss.Lost_in_air ->
            Link_stats.on_lost t.stats;
            Drop Loss.Lost_in_air
        | Loss.Corrupted ->
            (* The frame arrives, the CRC check fails, the receiver
               discards. *)
            crc_discard t packet
        | Loss.Delivered ->
            let delay =
              t.delay_base
              +. Pte_util.Rng.uniform t.rng ~lo:0.0 ~hi:t.delay_jitter
              +. (Float.of_int n *. t.retry_spacing)
            in
            Link_stats.on_delivered t.stats ~delay;
            Deliver { arrival = time +. delay; packet }
      in
      match (attempt 0, tamper) with
      | (Drop _ as v), _ | (v, Pass) -> v
      | Deliver { arrival; packet }, Delay_frame extra ->
          Deliver { arrival = arrival +. extra; packet }
      | Deliver { arrival; packet }, Duplicate_frame ->
          (* the duplicate trails by one retry spacing, like a repeated
             frame whose MAC ack was lost *)
          Deliver_dup { arrivals = (arrival, arrival +. t.retry_spacing); packet }
      | Deliver_dup _, _ | Deliver _, (Drop_frame | Corrupt_frame) ->
          assert false (* attempt never duplicates; drops returned above *))

let stats t = t.stats

(* Worst one-way frame latency this link can assign on its own: full
   jitter plus every MAC retry. Injected [Delay_frame] faults sit
   outside this bound by design — they model adversarial conditions. *)
let worst_delay t =
  t.delay_base +. t.delay_jitter
  +. (Float.of_int t.mac_retries *. t.retry_spacing)

let pp ppf t =
  Fmt.pf ppf "%s (%s): %a" t.name
    (match t.direction with Uplink -> "uplink" | Downlink -> "downlink")
    Link_stats.pp t.stats
