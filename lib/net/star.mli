(** The distributed sink-based wireless topology of Section II-B: one
    base station ξ0, an uplink and a downlink per remote entity, and no
    direct remote-to-remote links. {!router} adapts the topology to the
    executor's transport hook; non-node automata (e.g. the patient) are
    treated as wired. *)

type t = {
  base : string;
  uplinks : (string * Link.t) list;
  downlinks : (string * Link.t) list;
  mutable remote_to_remote_dropped : int;
}

val create :
  base:string ->
  remotes:string list ->
  loss_kind:Loss.kind ->
  ?delay_base:float ->
  ?delay_jitter:float ->
  ?mac_retries:int ->
  rng:Pte_util.Rng.t ->
  unit ->
  t
(** Each link gets an independent loss process and delay stream split
    from [rng]. *)

val is_remote : t -> string -> bool
val is_node : t -> string -> bool
val link_for : t -> sender:string -> receiver:string -> Link.t option
val router : t -> Pte_hybrid.Executor.router
val all_links : t -> Link.t list

(** Every link paired with the remote entity it serves (uplinks first,
    in remote order) — for installing per-link fault injectors. *)
val links : t -> (string * Link.t) list

val schedule_links : t -> (Pte_sched.Schedule.link * float) list
(** The star's directed links as schedule endpoints, each with its
    worst one-way frame delay ({!Link.worst_delay}) — the synthesis
    input of {!Pte_sched.Synth.synthesize}. Uplinks first, in remote
    order, so slot assignment is deterministic per topology. *)

val worst_frame_delay : t -> float
(** Worst one-way latency across every link ({!Link.worst_delay}) — the
    per-attempt term of {!Transport.worst_case_latency}. *)

val total_stats : t -> Link_stats.t
val pp : t Fmt.t
