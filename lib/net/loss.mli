(** Packet-loss models. The paper's fault model is {e arbitrary} loss;
    these are the concrete stochastic/adversarial channels used by the
    trials and the failure-injection tests. *)

type outcome = Delivered | Lost_in_air | Corrupted

type kind =
  | Perfect
  | Bernoulli of float  (** i.i.d. loss probability per packet *)
  | Gilbert_elliott of {
      to_bad : float;
      to_good : float;
      loss_good : float;
      loss_bad : float;
    }  (** two-state Markov channel: bursty, interference-like loss *)
  | Interferer of {
      period : float;
      burst : float;
      loss_during : float;
      loss_idle : float;
    }  (** periodic WiFi-style interference bursts *)
  | Corrupting of { inner : kind; corrupt_fraction : float }
      (** some losses arrive as corrupted frames instead (exercising the
          receiver-side CRC discard path) *)
  | Adversarial of (int -> string -> bool)
      (** [f nth root] decides each packet's fate — realizes the
          "arbitrary loss" quantifier in tests (lose every cancel, lose
          the k-th message, ...) *)
  | Trace_driven of bool array
      (** replay a recorded per-packet loss trace ([true] = lost),
          cycling when exhausted *)
  | Profile of (float * kind) list
      (** time-varying channel: piecewise-constant [(start, kind)]
          segments sorted by start; a packet sent at [t] sees the last
          segment with [start <= t] ([Perfect] before the first).
          Stateful inner kinds share one state across segments. *)

type t

val create : ?seed:int -> kind -> t
val create_rng : kind -> Pte_util.Rng.t -> t

val decide : t -> time:float -> root:string -> outcome

val nominal_loss_rate : kind -> float
(** Long-run loss probability ([nan] for [Adversarial]; for [Profile]
    the unweighted mean over segments, indicative only — the true rate
    depends on how long each segment runs). *)

val of_string : string -> (kind, string) result
(** Parse a CLI loss-model spec: ["perfect"], ["wifi:<avg>"] (the
    Table-I channel, {!wifi_interference}), ["bernoulli:<p>"],
    ["ge:to_bad,to_good,loss_good,loss_bad"] (a raw Gilbert–Elliott
    channel) or ["interferer:period,burst,loss_during,loss_idle"]
    (the periodic WiFi burst source). A malformed spec surfaces as
    [Error] with the reason. *)

val conv : kind Cmdliner.Arg.conv
(** The [--loss-model] converter shared by every CLI:
    {!of_string} on the way in, {!pp_kind} on the way out. *)

val wifi_interference : average_loss:float -> kind
(** The Table-I channel: constant WiFi interference as a bursty
    Gilbert–Elliott process with the given average loss rate (bursts of
    ~5 packets at 90% loss over a 2% residual).

    The parameterization can only realize averages in
    [{!wifi_min_loss}, {!wifi_max_loss}] = [0.021, 0.88]: the good state
    already loses 2%, and the bad state loses 90% so the average must
    stay below it. A request outside that band is {b clamped} to the
    nearest representable rate and a warning is logged; use
    {!wifi_effective_loss} to learn the rate actually realized. *)

val wifi_min_loss : float
val wifi_max_loss : float

val wifi_effective_loss : average_loss:float -> float
(** The average loss rate {!wifi_interference} actually realizes for
    this request, i.e. the requested rate clamped into
    [[wifi_min_loss, wifi_max_loss]]. *)

val pp_kind : kind Fmt.t
