(** Packet-loss models.

    The paper's fault model is {e arbitrary} loss: the lease pattern must
    stay safe no matter which packets disappear. For the Table-I style
    trials we need concrete stochastic channels:

    - {!Bernoulli}: i.i.d. loss, the textbook baseline.
    - {!Gilbert_elliott}: two-state Markov channel producing bursty loss,
      the standard model for interference-driven loss on 802.15.4 links.
    - {!Interferer}: a periodic WiFi interference source with a duty
      cycle, matching the paper's setup of an 802.11g interferer
      broadcasting at 3 Mbps on a band overlapping the ZigBee motes' —
      packets sent during a burst are lost with high probability.
    - {!Corrupting}: wraps another model; "lost" packets are instead
      delivered with bit errors, to exercise the receiver-side CRC
      discard path.
    - {!Adversarial}: a scripted predicate deciding each packet's fate —
      used by failure-injection tests to realize the "arbitrary loss"
      quantifier (lose exactly the k-th protocol message, lose every
      abort, ...). *)

type outcome = Delivered | Lost_in_air | Corrupted

type kind =
  | Perfect
  | Bernoulli of float  (** loss probability per packet *)
  | Gilbert_elliott of {
      to_bad : float;  (** P(good -> bad) per packet *)
      to_good : float;  (** P(bad -> good) per packet *)
      loss_good : float;
      loss_bad : float;
    }
  | Interferer of {
      period : float;  (** seconds between burst starts *)
      burst : float;  (** burst duration in seconds *)
      loss_during : float;
      loss_idle : float;
    }
  | Corrupting of { inner : kind; corrupt_fraction : float }
      (** A [corrupt_fraction] of the inner model's losses arrive as
          corrupted frames rather than vanishing. *)
  | Adversarial of (int -> string -> bool)
      (** [f nth root] is [true] when the [nth] packet (0-based, per
          link) carrying [root] must be lost. *)
  | Trace_driven of bool array
      (** Replay a recorded per-packet outcome trace ([true] = lost),
          cycling when exhausted — e.g. a loss trace captured from a real
          interfered link. *)
  | Profile of (float * kind) list
      (** A time-varying channel: piecewise-constant segments
          [(start, kind)], sorted by start time. A packet sent at [t]
          sees the kind of the last segment with [start <= t]
          ([Perfect] before the first). Stateful inner kinds (the
          Gilbert–Elliott burst process) share one state across
          segments, so a profile stepping between wifi levels keeps a
          continuous burst process. *)

type t = {
  kind : kind;
  rng : Pte_util.Rng.t;
  mutable ge_bad : bool;  (* Gilbert-Elliott channel state *)
  mutable count : int;  (* packets seen, for Adversarial *)
}

let create ?(seed = 0x5EED) kind =
  { kind; rng = Pte_util.Rng.create seed; ge_bad = false; count = 0 }

let create_rng kind rng = { kind; rng; ge_bad = false; count = 0 }

let rec decide_kind t kind ~time ~root =
  match kind with
  | Perfect -> Delivered
  | Bernoulli p ->
      if Pte_util.Rng.bernoulli t.rng p then Lost_in_air else Delivered
  | Gilbert_elliott { to_bad; to_good; loss_good; loss_bad } ->
      (* advance the channel state, then draw the loss for this packet *)
      (if t.ge_bad then begin
         if Pte_util.Rng.bernoulli t.rng to_good then t.ge_bad <- false
       end
       else if Pte_util.Rng.bernoulli t.rng to_bad then t.ge_bad <- true);
      let p = if t.ge_bad then loss_bad else loss_good in
      if Pte_util.Rng.bernoulli t.rng p then Lost_in_air else Delivered
  | Interferer { period; burst; loss_during; loss_idle } ->
      let phase = Float.rem time period in
      let p = if phase < burst then loss_during else loss_idle in
      if Pte_util.Rng.bernoulli t.rng p then Lost_in_air else Delivered
  | Corrupting { inner; corrupt_fraction } -> (
      match decide_kind t inner ~time ~root with
      | Lost_in_air when Pte_util.Rng.bernoulli t.rng corrupt_fraction ->
          Corrupted
      | outcome -> outcome)
  | Adversarial f -> if f t.count root then Lost_in_air else Delivered
  | Trace_driven outcomes ->
      if Array.length outcomes = 0 then Delivered
      else if outcomes.(t.count mod Array.length outcomes) then Lost_in_air
      else Delivered
  | Profile segments ->
      let active =
        List.fold_left
          (fun acc (start, k) -> if start <= time then Some k else acc)
          None segments
      in
      (match active with
      | None -> Delivered
      | Some k -> decide_kind t k ~time ~root)

let decide t ~time ~root =
  let outcome = decide_kind t t.kind ~time ~root in
  t.count <- t.count + 1;
  outcome

(** Long-run loss probability of a model (exact where closed-form,
    ignoring Adversarial). Used by reports and tests. *)
let rec nominal_loss_rate = function
  | Perfect -> 0.0
  | Bernoulli p -> p
  | Gilbert_elliott { to_bad; to_good; loss_good; loss_bad } ->
      let p_bad = to_bad /. (to_bad +. to_good) in
      (p_bad *. loss_bad) +. ((1.0 -. p_bad) *. loss_good)
  | Interferer { period; burst; loss_during; loss_idle } ->
      let duty = Float.min 1.0 (burst /. period) in
      (duty *. loss_during) +. ((1.0 -. duty) *. loss_idle)
  | Corrupting { inner; _ } -> nominal_loss_rate inner
  | Adversarial _ -> nan
  | Profile [] -> 0.0
  | Profile segments ->
      (* unweighted mean over segments — indicative only, the true
         long-run rate depends on how long each segment runs *)
      List.fold_left (fun acc (_, k) -> acc +. nominal_loss_rate k) 0.0
        segments
      /. Float.of_int (List.length segments)
  | Trace_driven outcomes ->
      if Array.length outcomes = 0 then 0.0
      else
        Float.of_int
          (Array.fold_left (fun n l -> if l then n + 1 else n) 0 outcomes)
        /. Float.of_int (Array.length outcomes)

(** The channel used for Table-I style trials: constant WiFi interference
    as a bursty Gilbert–Elliott process with the given average loss
    rate. Bursts average ~5 packets; the good state still loses a small
    residue. *)

module Log = (val Logs.src_log (Logs.Src.create "pte.net.loss") : Logs.LOG)

(* The Gilbert–Elliott parameterization below cannot realize every
   average: the good state already loses 2% (so averages below
   loss_good are unreachable) and the stationary bad-state probability
   must stay < 1 (so averages at or above loss_bad are unreachable).
   The representable band, with a little headroom at the top so burst
   lengths stay finite: *)
let wifi_min_loss = 0.021
let wifi_max_loss = 0.88

let wifi_effective_loss ~average_loss =
  Float.max wifi_min_loss (Float.min wifi_max_loss average_loss)

let wifi_interference ~average_loss =
  let loss_bad = 0.9 and loss_good = 0.02 in
  let effective = wifi_effective_loss ~average_loss in
  if effective <> average_loss then
    Log.warn (fun m ->
        m
          "wifi_interference: average_loss %g is outside the representable \
           band [%g, %g]; clamped to %g"
          average_loss wifi_min_loss wifi_max_loss effective);
  (* choose stationary bad-state probability to hit the average *)
  let p_bad = (effective -. loss_good) /. (loss_bad -. loss_good) in
  let to_good = 0.2 (* mean burst length 5 packets *) in
  let to_bad = to_good *. p_bad /. (1.0 -. p_bad) in
  Gilbert_elliott { to_bad; to_good; loss_good; loss_bad }

let rec pp_kind ppf = function
  | Perfect -> Fmt.string ppf "perfect"
  | Bernoulli p -> Fmt.pf ppf "bernoulli(%.2f)" p
  | Gilbert_elliott g ->
      Fmt.pf ppf "gilbert-elliott(bad:%.3f good:%.3f)" g.to_bad g.to_good
  | Interferer i -> Fmt.pf ppf "interferer(%.1fs/%.1fs)" i.burst i.period
  | Corrupting c -> Fmt.pf ppf "corrupting(%.2f)" c.corrupt_fraction
  | Adversarial _ -> Fmt.string ppf "adversarial"
  | Trace_driven outcomes -> Fmt.pf ppf "trace(%d)" (Array.length outcomes)
  | Profile segments ->
      Fmt.pf ppf "profile(%a)"
        (Fmt.list ~sep:(Fmt.any ";") (fun ppf (start, k) ->
             Fmt.pf ppf "%g:%a" start pp_kind k))
        segments

(* ------------------------------------------------------------------ *)
(* CLI spec parsing                                                    *)
(* ------------------------------------------------------------------ *)

let of_string s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let floats spec = List.map float_of_string_opt (String.split_on_char ',' spec) in
  let head, spec =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i ->
        (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
  in
  match (head, spec) with
  | "perfect", None -> Ok Perfect
  | "wifi", Some spec -> (
      match float_of_string_opt spec with
      | Some avg when avg <= 0.0 -> Ok Perfect
      | Some avg -> Ok (wifi_interference ~average_loss:avg)
      | None -> fail "loss-model: wifi expects a number, got %S" spec)
  | "bernoulli", Some spec -> (
      match float_of_string_opt spec with
      | Some p when p >= 0.0 && p <= 1.0 -> Ok (Bernoulli p)
      | Some _ -> fail "loss-model: bernoulli probability must be in [0, 1]"
      | None -> fail "loss-model: bernoulli expects a number, got %S" spec)
  | "ge", Some spec -> (
      match floats spec with
      | [ Some to_bad; Some to_good; Some loss_good; Some loss_bad ] ->
          if
            List.for_all
              (fun p -> p >= 0.0 && p <= 1.0)
              [ to_bad; to_good; loss_good; loss_bad ]
          then Ok (Gilbert_elliott { to_bad; to_good; loss_good; loss_bad })
          else fail "loss-model: ge probabilities must be in [0, 1]"
      | _ ->
          fail
            "loss-model: ge expects to_bad,to_good,loss_good,loss_bad, got %S"
            spec)
  | "interferer", Some spec -> (
      match floats spec with
      | [ Some period; Some burst; Some loss_during; Some loss_idle ] ->
          if not (period > 0.0) then
            fail "loss-model: interferer period must be > 0"
          else if burst < 0.0 then
            fail "loss-model: interferer burst must be >= 0"
          else if
            List.for_all (fun p -> p >= 0.0 && p <= 1.0) [ loss_during; loss_idle ]
          then Ok (Interferer { period; burst; loss_during; loss_idle })
          else fail "loss-model: interferer loss rates must be in [0, 1]"
      | _ ->
          fail
            "loss-model: interferer expects \
             period,burst,loss_during,loss_idle, got %S"
            spec)
  | _ ->
      fail
        "unknown loss model %S (expected perfect, wifi:<avg>, \
         bernoulli:<p>, ge:to_bad,to_good,loss_good,loss_bad or \
         interferer:period,burst,loss_during,loss_idle)"
        s

(* The one `--loss-model` converter every CLI shares. *)
let conv =
  Cmdliner.Arg.conv ~docv:"MODEL"
    ( (fun s ->
        match of_string s with
        | Ok k -> Ok k
        | Error msg -> Error (`Msg msg)),
      pp_kind )
