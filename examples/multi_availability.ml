(* A1-style availability sweep for a multi-initiator N=3 chain:

     dune exec examples/multi_availability.exe

   A three-entity chain with synthesized constants, where both the top
   entity (xi3, full sessions leasing xi1 and xi2) and the bottom entity
   (xi1, solo sessions) may initiate. Per average loss rate, one trial
   over the bare single-shot radio and one over the ACK/retransmission
   transport, sharing the seed — the A1 experiment of DESIGN.md §8
   transposed to the Multi extension: the reliable transport recovers
   sessions the bare radio loses to dropped grants/approvals, while the
   delay-inflated Theorem-1 recheck keeps every cell violation-free. *)

let entity_names = [ "pump"; "xray"; "carm" ]

let params =
  Pte_core.Synthesis.synthesize_exn
    (Pte_core.Synthesis.default_requirements ~entity_names
       ~safeguards:
         [
           { Pte_core.Params.enter_risky_min = 2.0; exit_safe_min = 1.0 };
           { Pte_core.Params.enter_risky_min = 1.0; exit_safe_min = 0.5 };
         ])

let config = { Pte_core.Multi.params; initiators = [ 1; 3 ] }
let top = List.nth entity_names 2
let horizon = 600.0

type cell = { sessions : int; solo : int; violations : int; retries : int }

let trial ~transport ~loss ~seed =
  let system = Pte_core.Multi.system config in
  let net =
    Pte_net.Star.create ~base:params.Pte_core.Params.supervisor
      ~remotes:(Pte_core.Pattern.remotes params)
      ~loss_kind:(Pte_net.Loss.wifi_interference ~average_loss:loss)
      ~rng:(Pte_util.Rng.create (seed * 2 + 1))
      ()
  in
  let engine =
    Pte_sim.Engine.create
      ~config:{ Pte_hybrid.Executor.default_config with dt = 0.01 }
      ~net ~transport ~seed system
  in
  List.iter
    (fun (automaton, request, cancel) ->
      Pte_sim.Scenario.exponential_stimulus engine ~mean:40.0 ~automaton
        ~armed_in:"Fall-Back" ~root:request ();
      let emitting =
        if String.equal automaton top then "Risky Core"
        else Pte_core.Multi.init_suffix "Risky Core"
      in
      Pte_sim.Scenario.exponential_stimulus engine ~mean:10.0 ~automaton
        ~armed_in:emitting ~root:cancel ())
    (Pte_core.Multi.stimuli config);
  Pte_sim.Engine.run engine ~until:horizon;
  let trace = Pte_sim.Engine.trace engine in
  let spec = Pte_core.Rules.of_params params in
  let report = Pte_core.Monitor.analyze_system trace system spec ~horizon in
  let retries =
    match Pte_sim.Engine.transport engine with
    | Some t -> (Pte_net.Transport.stats t).Pte_net.Transport.retransmissions
    | None -> 0
  in
  {
    sessions = Pte_sim.Metrics.entries trace ~automaton:top ~location:"Risky Core";
    solo =
      Pte_sim.Metrics.entries trace
        ~automaton:(List.nth entity_names 0)
        ~location:(Pte_core.Multi.init_suffix "Risky Core");
    violations = Pte_core.Monitor.episodes report;
    retries;
  }

let () =
  (match Pte_core.Multi.check config with
  | Ok outcomes -> assert (Pte_core.Constraints.all_ok outcomes)
  | Error e -> failwith e);

  (* Admit the reliable transport only if Theorem 1 survives its
     worst-case latency on this synthesized chain; tighten the retry
     budget until it fits. *)
  let budget = Pte_core.Constraints.max_delay_budget params in
  let rec fit (tcfg : Pte_net.Transport.config) =
    let probe_net =
      Pte_net.Star.create ~base:params.Pte_core.Params.supervisor
        ~remotes:(Pte_core.Pattern.remotes params)
        ~loss_kind:(Pte_net.Loss.wifi_interference ~average_loss:0.0)
        ~rng:(Pte_util.Rng.create 0) ()
    in
    let latency =
      Pte_net.Transport.worst_case_latency tcfg
        ~frame_delay:(Pte_net.Star.worst_frame_delay probe_net)
    in
    if latency <= budget || tcfg.Pte_net.Transport.max_retries = 0 then
      (tcfg, latency)
    else
      fit { tcfg with Pte_net.Transport.max_retries = tcfg.max_retries - 1 }
  in
  let tcfg, latency = fit Pte_net.Transport.default_config in
  assert (Pte_core.Constraints.satisfies_with_delay params ~delay:latency);
  Fmt.pr
    "N=3 multi-initiator chain (%s), initiators xi1 (solo) and xi3 (full):@."
    (String.concat ", " entity_names);
  Fmt.pr
    "delay budget %.3fs; reliable policy: %d retries, worst-case %.3fs@.@."
    budget tcfg.Pte_net.Transport.max_retries latency;

  Fmt.pr " loss   | bare: full solo viol | reliable: full solo viol retries@.";
  List.iteri
    (fun i loss ->
      let seed = 100 + i in
      let bare = trial ~transport:`Bare ~loss ~seed in
      let rel = trial ~transport:(`Reliable tcfg) ~loss ~seed in
      Fmt.pr " %4.0f%%  |       %4d %4d %4d |           %4d %4d %4d %7d@."
        (100.0 *. loss) bare.sessions bare.solo bare.violations rel.sessions
        rel.solo rel.violations rel.retries;
      assert (bare.violations = 0);
      assert (rel.violations = 0))
    [ 0.0; 0.15; 0.3; 0.45 ];
  Fmt.pr "@.all cells violation-free: PTE safety is loss- and \
          transport-independent@."
