(* The multiple-initializer extension (DESIGN.md §6 / Multi module):

     dune exec examples/dual_initiator.exe

   The paper assumes a single Initializer ξN "without loss of
   generality". Here both remote entities of the tracheotomy chain may
   initiate: the laser-scalpel requests full sessions as usual, and the
   ventilator itself may request a solo pause (e.g. for suctioning) —
   a session with no participants, approved directly. The supervisor
   serializes the two, and PTE safety holds across arbitrarily
   interleaved requests and message loss.

   Pass `--reliable` to route the radio messages through the
   ACK/retransmission transport (default policy); the run then also
   rechecks Theorem 1 with the transport's worst-case latency folded
   into the message-delay terms. *)

let () =
  let transport =
    if Array.exists (String.equal "--reliable") Sys.argv then
      `Reliable Pte_net.Transport.default_config
    else `Bare
  in
  let config =
    { Pte_core.Multi.params = Pte_core.Params.case_study; initiators = [ 1; 2 ] }
  in
  (match Pte_core.Multi.check config with
  | Ok outcomes ->
      Fmt.pr "Constraint check (c1-c7 + per-initiator c3):@.%a@.@."
        Pte_core.Constraints.pp_report outcomes;
      assert (Pte_core.Constraints.all_ok outcomes)
  | Error e -> failwith e);

  let system = Pte_core.Multi.system config in
  let net =
    Pte_net.Star.create ~base:"supervisor"
      ~remotes:[ "ventilator"; "laser" ]
      ~loss_kind:(Pte_net.Loss.wifi_interference ~average_loss:0.3)
      ~rng:(Pte_util.Rng.create 8) ()
  in
  (match transport with
  | `Bare -> ()
  | `Reliable tcfg ->
      let delay =
        Pte_net.Transport.worst_case_latency tcfg
          ~frame_delay:(Pte_net.Star.worst_frame_delay net)
      in
      let outcomes =
        Pte_core.Constraints.check_with_delay Pte_core.Params.case_study ~delay
      in
      Fmt.pr "reliable transport: worst-case latency %.3fs, Theorem 1 %s@.@."
        delay
        (if Pte_core.Constraints.all_ok outcomes then "still holds"
         else "violated");
      assert (Pte_core.Constraints.all_ok outcomes));
  let engine =
    Pte_sim.Engine.create
      ~config:{ Pte_hybrid.Executor.default_config with dt = 0.01 }
      ~net ~transport ~seed:9 system
  in
  List.iter
    (fun (automaton, request, cancel) ->
      Pte_sim.Scenario.exponential_stimulus engine ~mean:30.0 ~automaton
        ~armed_in:"Fall-Back" ~root:request ();
      let emitting =
        if String.equal automaton "laser" then "Risky Core"
        else Pte_core.Multi.init_suffix "Risky Core"
      in
      Pte_sim.Scenario.exponential_stimulus engine ~mean:10.0 ~automaton
        ~armed_in:emitting ~root:cancel ())
    (Pte_core.Multi.stimuli config);

  let horizon = 900.0 in
  Pte_sim.Engine.run engine ~until:horizon;
  let trace = Pte_sim.Engine.trace engine in

  let sessions name location =
    Pte_sim.Metrics.entries trace ~automaton:name ~location
  in
  Fmt.pr "15 simulated minutes, both entities initiating:@.";
  Fmt.pr "  laser sessions (ventilator leased first): %d@."
    (sessions "laser" "Risky Core");
  Fmt.pr "  ventilator solo pauses (no participants): %d@."
    (sessions "ventilator" (Pte_core.Multi.init_suffix "Risky Core"));
  Fmt.pr "  ventilator leased as participant:         %d@."
    (sessions "ventilator" "Risky Core");

  let spec = Pte_core.Rules.of_params Pte_core.Params.case_study in
  let report = Pte_core.Monitor.analyze_system trace system spec ~horizon in
  Fmt.pr "%a@." Pte_core.Monitor.pp_report report;

  (match Pte_sim.Engine.transport engine with
  | Some t when transport <> `Bare ->
      Fmt.pr "transport: %a@." Pte_net.Transport.pp_stats
        (Pte_net.Transport.stats t)
  | _ -> ());

  (* bounded formal sweep of the interleaved system *)
  let r =
    Pte_mc.Reach.check
      ~config:{ Pte_mc.Reach.default_config with max_states = 25_000 }
      ~system ~spec ()
  in
  Fmt.pr "model checker: %d states swept, %d violation(s)%s@."
    r.Pte_mc.Reach.states
    (List.length r.Pte_mc.Reach.violations)
    (if r.Pte_mc.Reach.exhausted then " [exhaustive]" else " [bounded]")
