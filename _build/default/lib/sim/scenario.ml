(** Scenario combinators: the environment behaviours outside the automata.

    The paper's emulation drives the system with three kinds of external
    events (Section V): the surgeon's request timer Ton, the surgeon's
    cancel timer Toff (both exponential), and the supervisor's abort when
    the ApprovalCondition fails. These combinators reproduce that setup
    and generalize it for the other examples. *)

(** Arm an exponential timer whenever [automaton] dwells in [armed_in];
    when it fires and the automaton is still there, inject [root]
    (locally, losslessly — the stimulus is the environment's "human
    will", not a network message). Re-arms on every fresh entry, exactly
    like the paper's Ton/Toff timers which are created on entry and
    destroyed on exit.

    [immediately] fires the very first timer at time ~0 (used by
    single-episode scenario tests). *)
let exponential_stimulus engine ~mean ?(immediately = false) ~automaton
    ~armed_in ~root () =
  let rng = Engine.fork_rng engine in
  let deadline = ref None in
  let first = ref immediately in
  Engine.add_process engine ~name:(root ^ "-timer") (fun engine ~time ->
      let here = Engine.location_of engine automaton in
      if String.equal here armed_in then
        match !deadline with
        | None ->
            let delay =
              if !first then 0.0
              else Pte_util.Rng.exponential rng ~mean
            in
            first := false;
            deadline := Some (time +. delay)
        | Some due when time >= due ->
            deadline := None;
            Engine.inject engine ~receiver:automaton ~root
        | Some _ -> ()
      else deadline := None)

(** Inject [root] exactly once, the first time [automaton] dwells in
    [armed_in] at or after [at]. *)
let one_shot engine ~at ~automaton ~armed_in ~root =
  let done_ = ref false in
  Engine.add_process engine ~name:(root ^ "-oneshot") (fun engine ~time ->
      if (not !done_) && time >= at then
        if String.equal (Engine.location_of engine automaton) armed_in then begin
          done_ := true;
          Engine.inject engine ~receiver:automaton ~root
        end)

(** Periodically copy a (possibly transformed) reading from one
    automaton's data state into another's — the wired-sensor coupling
    (e.g. oximeter → supervisor). [transform] sees the raw value and the
    component RNG (for sensor noise). *)
let wired_sensor engine ~period ~from:(src_automaton, src_var)
    ~to_:(dst_automaton, dst_var) ?(transform = fun _rng v -> v) () =
  let rng = Engine.fork_rng engine in
  Engine.add_process engine ~period ~name:(src_var ^ "-sensor")
    (fun engine ~time:_ ->
      let raw = Engine.value_of engine src_automaton src_var in
      Engine.set_value engine dst_automaton dst_var (transform rng raw))

(** Every step, write [f engine] into [automaton.var] — for physical
    couplings such as "the patient is being ventilated iff the
    ventilator dwells in a ventilating location". *)
let coupling engine ~automaton ~var f =
  Engine.add_process engine ~name:(var ^ "-coupling") (fun engine ~time:_ ->
      Engine.set_value engine automaton var (f engine))
