lib/sim/metrics.ml: Label List Pte_hybrid String Trace
