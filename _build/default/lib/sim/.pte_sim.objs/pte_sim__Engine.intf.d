lib/sim/engine.mli: Pte_hybrid Pte_net Pte_util
