lib/sim/metrics.mli: Pte_hybrid
