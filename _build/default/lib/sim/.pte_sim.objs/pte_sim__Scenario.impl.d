lib/sim/scenario.ml: Engine Pte_util String
