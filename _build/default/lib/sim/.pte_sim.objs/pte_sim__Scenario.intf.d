lib/sim/scenario.mli: Engine Pte_util
