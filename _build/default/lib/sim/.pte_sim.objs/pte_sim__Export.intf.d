lib/sim/export.mli: Pte_hybrid
