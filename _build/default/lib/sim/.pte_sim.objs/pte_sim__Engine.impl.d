lib/sim/engine.ml: Executor Float List Pte_hybrid Pte_net Pte_util
