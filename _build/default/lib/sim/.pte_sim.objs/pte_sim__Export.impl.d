lib/sim/export.ml: Buffer Char Float Fmt Fun Label List Printf Pte_hybrid String Trace
