(** Trace-derived measurements for trial reports. *)

val entries : Pte_hybrid.Trace.t -> automaton:string -> location:string -> int
(** Times the automaton transitioned into the location (self-loops and
    the initial state excluded). *)

val internal_marks : Pte_hybrid.Trace.t -> root:string -> int
(** Occurrences of an internal marker event (e.g. the paper's
    evtToStop). *)

val messages_sent : Pte_hybrid.Trace.t -> int
val messages_lost : Pte_hybrid.Trace.t -> int

val series :
  Pte_hybrid.Trace.t -> automaton:string -> var:string -> (float * float) list
(** Sampled time series of one variable. *)

val entry_times :
  Pte_hybrid.Trace.t -> automaton:string -> location:string -> float list
