(** Trace export: JSON-lines event logs and CSV sample series, so trial
    results can be plotted or diffed outside OCaml. *)

val to_jsonl : Pte_hybrid.Trace.t -> string
(** One JSON object per line: [{"time":..., "kind":..., ...}]. *)

val samples_to_csv : Pte_hybrid.Trace.t -> string
(** Columns [time,automaton.var,...]; samples at the same instant share
    a row; missing cells are empty. *)

val write_file : string -> string -> unit
