(** Scenario combinators for the environment behaviours outside the
    automata formalism: the paper's Ton/Toff surgeon timers, wired
    sensors, and physical couplings. *)

val exponential_stimulus :
  Engine.t ->
  mean:float ->
  ?immediately:bool ->
  automaton:string ->
  armed_in:string ->
  root:string ->
  unit ->
  unit
(** Arm an exponential timer whenever [automaton] dwells in [armed_in];
    on firing (still there), inject [root]. Re-arms on every fresh entry
    — exactly the paper's emulated Ton/Toff timers, which are created on
    entry and destroyed on exit. [immediately] makes the very first
    timer fire at once. *)

val one_shot :
  Engine.t -> at:float -> automaton:string -> armed_in:string -> root:string ->
  unit
(** Inject [root] exactly once, the first time [automaton] dwells in
    [armed_in] at or after [at]. *)

val wired_sensor :
  Engine.t ->
  period:float ->
  from:string * string ->
  to_:string * string ->
  ?transform:(Pte_util.Rng.t -> float -> float) ->
  unit ->
  unit
(** Periodically copy a (possibly noisy, thresholded) reading from one
    automaton's data state into another's — e.g. the oximeter writing
    the supervisor's ApprovalCondition. Wired, hence lossless. *)

val coupling : Engine.t -> automaton:string -> var:string -> (Engine.t -> float) -> unit
(** Every step, write [f engine] into [automaton.var] — physical
    couplings such as "the patient is ventilated iff the ventilator
    dwells in a pumping location". *)
