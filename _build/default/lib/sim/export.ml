(** Trace export: CSV for sampled time series (figure-style data) and
    JSON-lines for full event logs, so trial results can be plotted or
    diffed outside OCaml. *)

open Pte_hybrid

let escape_json s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let json_of_event = function
  | Trace.Enter_location { automaton; location } ->
      Printf.sprintf {|"kind":"enter","automaton":"%s","location":"%s"|}
        (escape_json automaton) (escape_json location)
  | Trace.Transition { automaton; src; dst; label; forced } ->
      Printf.sprintf
        {|"kind":"transition","automaton":"%s","src":"%s","dst":"%s","label":"%s","forced":%b|}
        (escape_json automaton) (escape_json src) (escape_json dst)
        (escape_json
           (match label with None -> "" | Some l -> Fmt.str "%a" Label.pp l))
        forced
  | Trace.Message_sent { sender; root } ->
      Printf.sprintf {|"kind":"sent","sender":"%s","root":"%s"|}
        (escape_json sender) (escape_json root)
  | Trace.Message_delivered { receiver; root; consumed } ->
      Printf.sprintf
        {|"kind":"delivered","receiver":"%s","root":"%s","consumed":%b|}
        (escape_json receiver) (escape_json root) consumed
  | Trace.Message_lost { receiver; root } ->
      Printf.sprintf {|"kind":"lost","receiver":"%s","root":"%s"|}
        (escape_json receiver) (escape_json root)
  | Trace.Sample { automaton; var; value } ->
      Printf.sprintf {|"kind":"sample","automaton":"%s","var":"%s","value":%g|}
        (escape_json automaton) (escape_json var) value
  | Trace.Note s -> Printf.sprintf {|"kind":"note","text":"%s"|} (escape_json s)

(** One JSON object per line: [{"time":..., "kind":..., ...}]. *)
let to_jsonl trace =
  let buffer = Buffer.create 4096 in
  List.iter
    (fun ({ Trace.time; event } : Trace.entry) ->
      Buffer.add_string buffer
        (Printf.sprintf "{\"time\":%.6f,%s}\n" time (json_of_event event)))
    trace;
  Buffer.contents buffer

(** CSV of the sampled variables: columns [time,automaton.var,...], one
    row per sample instant (samples taken at the same executor instant
    share a row; missing cells are empty). *)
let samples_to_csv trace =
  let columns = ref [] in
  let column automaton var =
    let name = automaton ^ "." ^ var in
    if not (List.mem name !columns) then columns := !columns @ [ name ];
    name
  in
  let rows : (float * (string * float) list) list ref = ref [] in
  List.iter
    (fun ({ Trace.time; event } : Trace.entry) ->
      match event with
      | Trace.Sample { automaton; var; value } -> (
          let name = column automaton var in
          match !rows with
          | (t, cells) :: rest when Float.abs (t -. time) < 1e-9 ->
              rows := (t, (name, value) :: cells) :: rest
          | _ -> rows := (time, [ (name, value) ]) :: !rows)
      | _ -> ())
    trace;
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer ("time," ^ String.concat "," !columns ^ "\n");
  List.iter
    (fun (time, cells) ->
      Buffer.add_string buffer (Printf.sprintf "%.6f" time);
      List.iter
        (fun name ->
          Buffer.add_char buffer ',';
          match List.assoc_opt name cells with
          | Some v -> Buffer.add_string buffer (Printf.sprintf "%g" v)
          | None -> ())
        !columns;
      Buffer.add_char buffer '\n')
    (List.rev !rows);
  Buffer.contents buffer

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
