(** Trace-derived measurements for trial reports (Table I columns and the
    extension experiments). *)

open Pte_hybrid

(** Number of times [automaton] entered [location] (counting transitions,
    not the initial state). *)
let entries trace ~automaton ~location =
  List.length
    (List.filter
       (fun ({ Trace.event; _ } : Trace.entry) ->
         match event with
         | Trace.Transition { automaton = a; dst; src; _ } ->
             String.equal a automaton && String.equal dst location
             && not (String.equal src location)
         | _ -> false)
       trace)

(** Occurrences of an internal marker event (e.g. the paper's evtToStop). *)
let internal_marks trace ~root =
  List.length
    (List.filter
       (fun ({ Trace.event; _ } : Trace.entry) ->
         match event with
         | Trace.Transition { label = Some (Label.Internal r); _ } ->
             String.equal r root
         | _ -> false)
       trace)

let messages_sent trace =
  List.length
    (List.filter
       (fun ({ Trace.event; _ } : Trace.entry) ->
         match event with Trace.Message_sent _ -> true | _ -> false)
       trace)

let messages_lost trace =
  List.length
    (List.filter
       (fun ({ Trace.event; _ } : Trace.entry) ->
         match event with Trace.Message_lost _ -> true | _ -> false)
       trace)

(** Sampled time series of one variable, for figure-style output. *)
let series trace ~automaton ~var =
  List.filter_map
    (fun ({ Trace.time; event } : Trace.entry) ->
      match event with
      | Trace.Sample { automaton = a; var = v; value }
        when String.equal a automaton && String.equal v var ->
          Some (time, value)
      | _ -> None)
    trace

(** Times at which [automaton] transitioned into [location]. *)
let entry_times trace ~automaton ~location =
  List.filter_map
    (fun ({ Trace.time; event } : Trace.entry) ->
      match event with
      | Trace.Transition { automaton = a; dst; src; _ }
        when String.equal a automaton && String.equal dst location
             && not (String.equal src location) ->
          Some time
      | _ -> None)
    trace
