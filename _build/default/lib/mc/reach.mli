(** Zone-based reachability over the product of the pattern's timed
    automata, with nondeterministic message loss and PTE observers.

    Communication: a fired [!root] either synchronizes with an enabled
    matching receive edge in the same instant or — for [??root]
    receivers, or when no matching edge is enabled — is lost; every
    combination is explored, realizing the paper's "events can be
    arbitrarily lost". Environment-dependent guards are erased (sound
    over-approximation); network delay is abstracted to zero.

    An [exhausted] result with no violations is a machine-checked proof
    of the PTE safety rules for the given configuration. *)

type violation_kind =
  | Rule1_dwell of { entity : string; bound : float }
  | P1_enter_safeguard of { outer : string; inner : string; required : float }
  | P2_not_embedded of { outer : string; inner : string }
  | P3_exit_safeguard of { outer : string; inner : string; required : float }

type violation = { kind : violation_kind; state : int }

type config = {
  max_states : int;
  stop_at_first : bool;
  progress : (states:int -> transitions:int -> unit) option;
}

val default_config : config
(** 2M states, collect all violations, no progress callback. *)

type result = {
  violations : violation list;
  states : int;
  transitions : int;
  exhausted : bool;
      (** [true] when the full state space was covered. *)
  trace : int -> string list;
      (** action trace from the initial state to a violation's state. *)
  discrete_states : int;
  max_zones_per_key : int;
  hot_key : string;
  hot_zones : string list;  (** diagnostics *)
}

val ok : result -> bool
(** Exhausted and violation-free. *)

val pp_violation_kind : violation_kind Fmt.t

val check :
  ?config:config ->
  system:Pte_hybrid.System.t ->
  spec:Pte_core.Rules.t ->
  unit ->
  result
(** Requires every member automaton to be in the timed fragment (clock
    and environment variables only); raises {!Ta.Unsupported}
    otherwise. *)

val check_pattern :
  ?lease:bool ->
  ?config:config ->
  ?dwell_bound:float ->
  Pte_core.Params.t ->
  result
(** Model-check the (un-elaborated) lease pattern for a configuration,
    against the spec it induces (or an explicit Rule 1 [dwell_bound]). *)
