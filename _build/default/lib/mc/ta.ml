(** Timed-automaton view of a hybrid automaton.

    The design-pattern automata of Section IV-A fall into the decidable
    timed fragment: every data state variable is either a {e clock}
    (rate 1 in all locations) or an {e environment variable} (rate 0,
    written only by the physical world — ApprovalCondition,
    ParticipationCondition). This module translates such an automaton for
    zone-based reachability:

    - guard atoms over clocks become DBM constraints;
    - guard atoms over environment variables are erased and the edge
      becomes a {e may}-edge (the environment can make the condition true
      or false at any moment) — a sound over-approximation for safety;
    - {!Pte_hybrid.Edge.Eager} edges with pure clock lower-bound guards
      are {e urgent}: they induce location invariants capping time
      elapse at their enabling point (that is what makes a lease a
      lease);
    - eager edges with an empty guard make their location urgent
      (zero-dwell dispatch locations);
    - receive edges whose root no automaton of the system sends are
      environment stimuli: they, too, become may-edges. *)

open Pte_hybrid

type clock_atom = { clock : int; cmp : Dbm.cmp; const : float }

type edge = {
  src : int;
  dst : int;
  guard : clock_atom list;
  resets : int list;  (** clocks reset to 0 *)
  label : Label.t option;
  may : bool;
      (** fires spontaneously at any enabled moment (env-guarded or
          stimulus-triggered); never urgent. *)
  sync : string option;
      (** [Some root] when the edge is triggered by a root some system
          automaton sends: it fires only synchronized with that send. *)
}

type location = {
  name : string;
  risky : bool;
  urgent : bool;  (** zero time elapse allowed *)
  invariant : clock_atom list;  (** declared + urgency-derived *)
}

type t = {
  name : string;
  locations : location array;
  edges : edge list array;  (** outgoing, indexed by source location *)
  initial : int;
  clock_of_var : (string * int) list;  (** automaton-local var → global clock *)
}

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

let cmp_of_guard = function
  | Guard.Lt -> Dbm.Lt
  | Guard.Le -> Dbm.Le
  | Guard.Gt -> Dbm.Gt
  | Guard.Ge -> Dbm.Ge
  | Guard.Eq -> Dbm.Eq

(** Classify an automaton's variables into clocks and environment
    variables by inspecting flows in every location. *)
let classify_vars (a : Automaton.t) =
  let rate_in (l : Location.t) v =
    match l.Location.flow with
    | Flow.Rates rates -> (
        match List.assoc_opt v rates with Some r -> r | None -> 0.0)
    | Flow.Ode _ ->
        unsupported "automaton %s location %s has an ODE flow" a.Automaton.name
          l.Location.name
  in
  List.partition_map
    (fun v ->
      let rates =
        List.map (fun l -> rate_in l v) a.Automaton.locations
      in
      if List.for_all (fun r -> Float.abs (r -. 1.0) < 1e-12) rates then
        Left v (* clock *)
      else if List.for_all (fun r -> Float.abs r < 1e-12) rates then
        Right v (* environment variable *)
      else
        unsupported "automaton %s variable %s has mixed rates" a.Automaton.name
          v)
    a.Automaton.vars

(** [translate a ~alloc ~is_system_root] converts one automaton. [alloc]
    assigns global clock indices (called once per clock variable);
    [is_system_root root] tells whether some automaton of the system
    sends [root] (otherwise a receive on it is an environment
    stimulus). *)
let translate (a : Automaton.t) ~alloc ~is_system_root =
  let clocks, env_vars = classify_vars a in
  let clock_of_var =
    List.map (fun v -> (v, alloc (a.Automaton.name ^ "." ^ v))) clocks
  in
  let is_env v = List.exists (String.equal v) env_vars in
  let clock_index v =
    match List.assoc_opt v clock_of_var with
    | Some i -> i
    | None -> unsupported "variable %s is not a clock" v
  in
  let translate_guard guard =
    (* returns (clock atoms, had env atoms?) *)
    List.fold_left
      (fun (atoms, env) (g : Guard.atom) ->
        if is_env g.Guard.var then (atoms, true)
        else
          ( { clock = clock_index g.Guard.var;
              cmp = cmp_of_guard g.Guard.cmp;
              const = g.Guard.bound }
            :: atoms,
            env ))
      ([], false) guard
  in
  let location_names = Array.of_list (Automaton.location_names a) in
  let index_of_location name =
    let rec go i =
      if i >= Array.length location_names then
        unsupported "unknown location %s" name
      else if String.equal location_names.(i) name then i
      else go (i + 1)
    in
    go 0
  in
  let translate_reset reset =
    List.filter_map
      (fun (v, assignment) ->
        match assignment with
        | Reset.Set_const 0.0 when not (is_env v) -> Some (clock_index v)
        | Reset.Set_const _ when is_env v -> None
        | _ -> unsupported "automaton %s: unsupported reset" a.Automaton.name)
      reset
  in
  let edges = Array.make (Array.length location_names) [] in
  let urgency_invariants = Array.make (Array.length location_names) [] in
  let urgent_locations = Array.make (Array.length location_names) false in
  List.iter
    (fun (e : Edge.t) ->
      let src = index_of_location e.Edge.src in
      let dst = index_of_location e.Edge.dst in
      let guard, had_env = translate_guard e.Edge.guard in
      let resets = translate_reset e.Edge.reset in
      let stimulus =
        match Edge.trigger_root e with
        | Some root -> not (is_system_root root)
        | None -> false
      in
      let triggered_by_system = Edge.is_triggered e && not stimulus in
      let may = had_env || stimulus in
      (* urgency: eager, spontaneous, pure clock guard *)
      if
        e.Edge.urgency = Edge.Eager
        && (not triggered_by_system)
        && not may
      then begin
        match guard with
        | [] -> urgent_locations.(src) <- true
        | [ { clock; cmp = Dbm.Ge; const } ] ->
            urgency_invariants.(src) <-
              { clock; cmp = Dbm.Le; const } :: urgency_invariants.(src)
        | [ { clock; cmp = Dbm.Gt; const } ] ->
            urgency_invariants.(src) <-
              { clock; cmp = Dbm.Le; const } :: urgency_invariants.(src)
        | _ ->
            unsupported
              "automaton %s: urgent edge with a compound or upper-bound guard"
              a.Automaton.name
      end;
      let sync =
        if triggered_by_system then Edge.trigger_root e else None
      in
      edges.(src) <-
        edges.(src)
        @ [ { src; dst; guard; resets; label = e.Edge.label; may; sync } ])
    a.Automaton.edges;
  let locations =
    Array.mapi
      (fun i name ->
        let l = Automaton.location_exn a name in
        let declared, _ = translate_guard l.Location.invariant in
        {
          name;
          risky = Location.is_risky l;
          urgent = urgent_locations.(i);
          invariant = declared @ urgency_invariants.(i);
        })
      location_names
  in
  {
    name = a.Automaton.name;
    locations;
    edges;
    initial = index_of_location a.Automaton.initial_location;
    clock_of_var;
  }

module Int_set = Set.Make (Int)

(** Per-location {e active} clocks: a clock is active at a location if it
    may be read (in an invariant or a guard) before being reset again.
    Inactive clocks can be canonicalized to 0 without changing the
    behaviour — the classic inactive-clock reduction, which collapses
    zone diversity dramatically on protocol-shaped automata where every
    edge resets the local clock. Computed by a backward fixpoint. *)
let active_clocks t =
  let n = Array.length t.locations in
  let read = Array.make n Int_set.empty in
  Array.iteri
    (fun i l ->
      let add set atoms =
        List.fold_left
          (fun acc (a : clock_atom) -> Int_set.add a.clock acc)
          set atoms
      in
      let set = add Int_set.empty l.invariant in
      read.(i) <-
        List.fold_left (fun acc (e : edge) -> add acc e.guard) set t.edges.(i))
    t.locations;
  let active = Array.copy read in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let updated =
        List.fold_left
          (fun acc (e : edge) ->
            let inherited =
              Int_set.diff active.(e.dst) (Int_set.of_list e.resets)
            in
            Int_set.union acc inherited)
          active.(i) t.edges.(i)
      in
      if not (Int_set.equal updated active.(i)) then begin
        active.(i) <- updated;
        changed := true
      end
    done
  done;
  active

(** Accumulate, into [k] (indexed by global clock), the largest constant
    each clock is compared against in this automaton's guards and
    invariants — the per-clock extrapolation bounds. *)
let accumulate_max_constants t ~k =
  let scan atoms =
    List.iter
      (fun (a : clock_atom) ->
        if Float.abs a.const > k.(a.clock) then k.(a.clock) <- Float.abs a.const)
      atoms
  in
  Array.iter (fun l -> scan l.invariant) t.locations;
  Array.iter (fun es -> List.iter (fun (e : edge) -> scan e.guard) es) t.edges

(** Largest constant appearing anywhere (for zone extrapolation). *)
let max_constant t =
  let from_atoms atoms =
    List.fold_left (fun acc (a : clock_atom) -> Float.max acc (Float.abs a.const)) 0.0 atoms
  in
  let loc_max =
    Array.fold_left
      (fun acc l -> Float.max acc (from_atoms l.invariant))
      0.0 t.locations
  in
  Array.fold_left
    (fun acc es ->
      List.fold_left (fun acc e -> Float.max acc (from_atoms e.guard)) acc es)
    loc_max t.edges
