(** Difference Bound Matrices (Dill 1989): the canonical zone
    representation for timed-automaton reachability. Index 0 is the
    reference clock; entry [(i, j)] bounds [x_i − x_j]. *)

type t

val dim : t -> int
val copy : t -> t

val zero : clocks:int -> t
(** Every clock equals 0. *)

val top : clocks:int -> t
(** All clocks unconstrained (>= 0). *)

val get : t -> int -> int -> Bound.t
val is_empty : t -> bool

val canonicalize : t -> unit
(** Floyd–Warshall tightening to canonical form. *)

val constrain : t -> int -> int -> Bound.t -> bool
(** Constrain [x_i − x_j ⋈ bound], restore canonical form incrementally;
    [false] if the zone became empty. *)

val up : t -> unit
(** Time elapse: remove upper bounds on all clocks. *)

val reset : t -> int -> unit
(** Reset clock [i] to 0 (canonical in, canonical out). *)

val free : t -> int -> unit
(** Drop every constraint involving clock [i] — the inactive-clock
    reduction primitive; unlike a reset, a freed clock never
    re-entangles as time elapses. *)

val includes : t -> t -> bool
(** [includes a b]: every valuation of [b] lies in [a] (both canonical,
    non-empty). *)

val equal : t -> t -> bool

val sup : t -> int -> Bound.t
(** Upper bound of a clock over the zone. *)

val inf : t -> int -> float
(** Lower bound of a clock (non-negative). *)

type cmp = Le | Lt | Ge | Gt | Eq

val constrain_atom : t -> clock:int -> cmp:cmp -> const:float -> bool

val normalize_per_clock : t -> k:float array -> unit
(** Per-clock k-extrapolation (Behrmann et al.): bounds beyond each
    clock's largest relevant constant are blurred, guaranteeing
    termination of reachability. Sound over-approximation. *)

val normalize : t -> max_const:float -> unit
(** Single-constant extrapolation (coarser per-clock constants all equal
    to [max_const]). *)

val pp : ?names:string array -> t Fmt.t
