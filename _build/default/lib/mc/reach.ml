(** Zone-based reachability over the product of the pattern's timed
    automata, with nondeterministic message loss and PTE observers.

    Semantics of communication (matching the executor's, abstracted to
    zero delay): when an automaton fires an edge labelled [!root], each
    listener either takes an enabled matching receive edge in the same
    instant or — for [??root] receivers, or when no matching edge is
    enabled — the event is lost/ignored. Every combination is explored,
    which realizes the paper's "events … can be arbitrarily lost".

    PTE observers: per remote entity ξ we add two auxiliary clocks —
    [rc_ξ], reset whenever ξ enters its risky set, and [xc_ξ], reset
    whenever it leaves it — plus a has-exited flag. Then:

    - Rule 1 fails iff some reachable risky state admits
      [rc_ξ > bound];
    - p2 fails iff some reachable state has an inner entity risky while
      its outer neighbour is safe;
    - p1 fails iff an inner entity can enter its risky set while
      [rc_outer < T^min_risky] (outer risky);
    - p3 fails iff an outer entity can leave its risky set while
      [xc_inner < T^min_safe] (inner already exited). *)

open Pte_hybrid

type violation_kind =
  | Rule1_dwell of { entity : string; bound : float }
  | P1_enter_safeguard of { outer : string; inner : string; required : float }
  | P2_not_embedded of { outer : string; inner : string }
  | P3_exit_safeguard of { outer : string; inner : string; required : float }

type violation = { kind : violation_kind; state : int }

type config = {
  max_states : int;
  stop_at_first : bool;
  progress : (states:int -> transitions:int -> unit) option;
}

let default_config =
  { max_states = 2_000_000; stop_at_first = false; progress = None }

type state = {
  locs : int array;
  flags : int;  (* has-exited bitmask over spec order *)
  zone : Dbm.t;
  parent : int;
  action : unit -> string;
}

type result = {
  violations : violation list;
  states : int;
  transitions : int;
  exhausted : bool;
      (** [true] when the full state space was covered (so an empty
          [violations] list is a proof). *)
  trace : int -> string list;
  discrete_states : int;  (** distinct (location vector, flags) keys *)
  max_zones_per_key : int;
  hot_key : string;  (** the discrete state with the most zones *)
  hot_zones : string list;  (** sample zones of the hot key (debug) *)
}

let ok result = result.violations = [] && result.exhausted

let pp_violation_kind ppf = function
  | Rule1_dwell { entity; bound } ->
      Fmt.pf ppf "Rule 1: %s can dwell in risky-locations beyond %gs" entity
        bound
  | P1_enter_safeguard { outer; inner; required } ->
      Fmt.pf ppf
        "Rule 2 (p1): %s can enter risky < %gs after %s entered risky" inner
        required outer
  | P2_not_embedded { outer; inner } ->
      Fmt.pf ppf "Rule 2 (p2): %s can be risky while %s is safe" inner outer
  | P3_exit_safeguard { outer; inner; required } ->
      Fmt.pf ppf "Rule 2 (p3): %s can exit risky < %gs after %s exited" outer
        required inner

let check ?(config = default_config) ~(system : System.t)
    ~(spec : Pte_core.Rules.t) () =
  (* ---- translation ---------------------------------------------------- *)
  let counter = ref 0 in
  let clock_names = ref [] in
  let alloc name =
    incr counter;
    clock_names := name :: !clock_names;
    !counter
  in
  let sent_roots =
    List.fold_left
      (fun acc (a : Automaton.t) ->
        List.fold_left
          (fun acc (e : Edge.t) ->
            match e.Edge.label with
            | Some (Label.Send r) -> Var.Set.add r acc
            | _ -> acc)
          acc a.Automaton.edges)
      Var.Set.empty system.System.automata
  in
  let is_system_root r = Var.Set.mem r sent_roots in
  let tas =
    Array.of_list
      (List.map
         (fun a -> Ta.translate a ~alloc ~is_system_root)
         system.System.automata)
  in
  let automaton_index name =
    let rec go i =
      if i >= Array.length tas then Fmt.invalid_arg "mc: unknown automaton %s" name
      else if String.equal tas.(i).Ta.name name then i
      else go (i + 1)
    in
    go 0
  in
  (* observers *)
  let entities = Array.of_list spec.Pte_core.Rules.order in
  let entity_ta = Array.map automaton_index entities in
  let rc = Array.map (fun e -> alloc ("rc." ^ e)) entities in
  let xc = Array.map (fun e -> alloc ("xc." ^ e)) entities in
  let entity_of_ta ta_idx =
    let rec go k =
      if k >= Array.length entity_ta then None
      else if entity_ta.(k) = ta_idx then Some k
      else go (k + 1)
    in
    go 0
  in
  let pairs =
    List.map
      (fun (p : Pte_core.Rules.pair) ->
        let find name =
          let rec go k =
            if k >= Array.length entities then assert false
            else if String.equal entities.(k) name then k
            else go (k + 1)
          in
          go 0
        in
        (find p.Pte_core.Rules.outer, find p.Pte_core.Rules.inner,
         p.Pte_core.Rules.enter_risky_min, p.Pte_core.Rules.exit_safe_min))
      spec.Pte_core.Rules.pairs
  in
  let dwell_bound k = Pte_core.Rules.dwell_bound spec entities.(k) in
  let n_clocks = !counter in
  (* per-clock extrapolation constants: guard/invariant constants for the
     automata clocks; for the observer clocks, the largest constant each
     is ever compared against — the dwell bound and p1 safeguards for
     rc, the p3 safeguards for xc. *)
  let k = Array.make (n_clocks + 1) 0.0 in
  Array.iter (fun ta -> Ta.accumulate_max_constants ta ~k) tas;
  List.iter
    (fun (outer, inner, t_risky, t_safe) ->
      if t_risky > k.(rc.(outer)) then k.(rc.(outer)) <- t_risky;
      if t_safe > k.(xc.(inner)) then k.(xc.(inner)) <- t_safe)
    pairs;
  Array.iteri
    (fun i e ->
      let bound = Pte_core.Rules.dwell_bound spec e in
      if Float.is_finite bound && bound > k.(rc.(i)) then k.(rc.(i)) <- bound)
    entities;
  let is_risky ta_idx loc = tas.(ta_idx).Ta.locations.(loc).Ta.risky in
  let active_tables = Array.map Ta.active_clocks tas in
  (* listeners per root, precomputed *)
  let listener_table : (string, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i ta ->
      Array.iter
        (fun es ->
          List.iter
            (fun (e : Ta.edge) ->
              match e.Ta.sync with
              | Some root ->
                  let existing =
                    Option.value (Hashtbl.find_opt listener_table root)
                      ~default:[]
                  in
                  if not (List.mem i existing) then
                    Hashtbl.replace listener_table root (existing @ [ i ])
              | None -> ())
            es)
        ta.Ta.edges)
    tas;
  let listeners root ~sender =
    List.filter
      (fun i -> i <> sender)
      (Option.value (Hashtbl.find_opt listener_table root) ~default:[])
  in
  (* ---- zone helpers --------------------------------------------------- *)
  let apply_atoms zone atoms =
    List.for_all
      (fun (a : Ta.clock_atom) ->
        Dbm.constrain_atom zone ~clock:a.Ta.clock ~cmp:a.Ta.cmp ~const:a.Ta.const)
      atoms
  in
  let invariants_of locs =
    let atoms = ref [] in
    Array.iteri
      (fun i loc -> atoms := tas.(i).Ta.locations.(loc).Ta.invariant @ !atoms)
      locs;
    !atoms
  in
  let any_urgent locs =
    let urgent = ref false in
    Array.iteri
      (fun i loc -> if tas.(i).Ta.locations.(loc).Ta.urgent then urgent := true)
      locs;
    !urgent
  in
  (* close a freshly produced zone: invariants, elapse, invariants,
     extrapolation. Returns false if empty. *)
  let close locs zone =
    if not (apply_atoms zone (invariants_of locs)) then false
    else begin
      if not (any_urgent locs) then begin
        Dbm.up zone;
        if not (apply_atoms zone (invariants_of locs)) then assert false
      end;
      Dbm.normalize_per_clock zone ~k;
      not (Dbm.is_empty zone)
    end
  in
  (* ---- exploration ---------------------------------------------------- *)
  let states = ref (Array.make 1024 None) in
  let n_states = ref 0 in
  let push_state s =
    if !n_states >= Array.length !states then begin
      let bigger = Array.make (2 * Array.length !states) None in
      Array.blit !states 0 bigger 0 !n_states;
      states := bigger
    end;
    !states.(!n_states) <- Some s;
    incr n_states;
    !n_states - 1
  in
  let get_state i =
    match !states.(i) with Some s -> s | None -> assert false
  in
  let visited : (int array * int, (Dbm.t * int) list ref) Hashtbl.t =
    Hashtbl.create 4096
  in
  let seen locs flags zone =
    match Hashtbl.find_opt visited (locs, flags) with
    | None -> false
    | Some zones -> List.exists (fun (z, _) -> Dbm.includes z zone) !zones
  in
  let remember locs flags zone idx =
    let k = (locs, flags) in
    match Hashtbl.find_opt visited k with
    | None -> Hashtbl.replace visited k (ref [ (zone, idx) ])
    | Some zones ->
        zones := (zone, idx) :: List.filter (fun (z, _) -> not (Dbm.includes zone z)) !zones
  in
  let violations = ref [] in
  let found kind state = violations := { kind; state } :: !violations in
  let stop = ref false in
  let transitions = ref 0 in
  let queue = Queue.create () in
  (* state-based checks *)
  let check_state idx =
    let s = get_state idx in
    List.iter
      (fun (outer, inner, _, _) ->
        if
          is_risky entity_ta.(inner) s.locs.(entity_ta.(inner))
          && not (is_risky entity_ta.(outer) s.locs.(entity_ta.(outer)))
        then begin
          found
            (P2_not_embedded { outer = entities.(outer); inner = entities.(inner) })
            idx;
          if config.stop_at_first then stop := true
        end)
      pairs;
    Array.iteri
      (fun k ta_idx ->
        if is_risky ta_idx s.locs.(ta_idx) then begin
          let bound = dwell_bound k in
          if Float.is_finite bound then
            match Dbm.sup s.zone rc.(k) with
            | Bound.Inf ->
                found (Rule1_dwell { entity = entities.(k); bound }) idx;
                if config.stop_at_first then stop := true
            | Bound.Bound (v, _) ->
                if v > bound +. 1e-9 then begin
                  found (Rule1_dwell { entity = entities.(k); bound }) idx;
                  if config.stop_at_first then stop := true
                end
        end)
      entity_ta
  in
  let add_state locs flags zone ~parent ~action =
    if not (seen locs flags zone) then begin
      let idx = push_state { locs; flags; zone; parent; action } in
      remember locs flags zone idx;
      Queue.push idx queue;
      check_state idx
    end
  in
  (* fire a set of (automaton, edge) simultaneously from state [s];
     performs observer checks and produces the successor. *)
  let fire s ~parent firing ~action =
    incr transitions;
    let zone = Dbm.copy s.zone in
    let guards_ok =
      List.for_all (fun (_, (e : Ta.edge)) -> apply_atoms zone e.Ta.guard) firing
    in
    if guards_ok && not (Dbm.is_empty zone) then begin
      (* observer checks at the transition instant, before resets *)
      let entering =
        List.filter_map
          (fun (i, (e : Ta.edge)) ->
            match entity_of_ta i with
            | Some k
              when (not (is_risky i e.Ta.src)) && is_risky i e.Ta.dst ->
                Some k
            | _ -> None)
          firing
      in
      let exiting =
        List.filter_map
          (fun (i, (e : Ta.edge)) ->
            match entity_of_ta i with
            | Some k when is_risky i e.Ta.src && not (is_risky i e.Ta.dst) ->
                Some k
            | _ -> None)
          firing
      in
      List.iter
        (fun k ->
          List.iter
            (fun (outer, inner, t_risky, _) ->
              if
                inner = k
                && is_risky entity_ta.(outer) s.locs.(entity_ta.(outer))
              then begin
                let probe = Dbm.copy zone in
                if
                  Dbm.constrain_atom probe ~clock:rc.(outer) ~cmp:Dbm.Lt
                    ~const:t_risky
                then begin
                  found
                    (P1_enter_safeguard
                       { outer = entities.(outer); inner = entities.(inner);
                         required = t_risky })
                    parent;
                  if config.stop_at_first then stop := true
                end
              end)
            pairs)
        entering;
      List.iter
        (fun k ->
          List.iter
            (fun (outer, inner, _, t_safe) ->
              if
                outer = k
                && s.flags land (1 lsl inner) <> 0
                && not (is_risky entity_ta.(inner) s.locs.(entity_ta.(inner)))
              then begin
                let probe = Dbm.copy zone in
                if
                  Dbm.constrain_atom probe ~clock:xc.(inner) ~cmp:Dbm.Lt
                    ~const:t_safe
                then begin
                  found
                    (P3_exit_safeguard
                       { outer = entities.(outer); inner = entities.(inner);
                         required = t_safe })
                    parent;
                  if config.stop_at_first then stop := true
                end
              end)
            pairs)
        exiting;
      (* resets *)
      List.iter
        (fun (_, (e : Ta.edge)) -> List.iter (Dbm.reset zone) e.Ta.resets)
        firing;
      List.iter (fun k -> Dbm.reset zone rc.(k)) entering;
      List.iter (fun k -> Dbm.reset zone xc.(k)) exiting;
      let locs = Array.copy s.locs in
      List.iter (fun (i, (e : Ta.edge)) -> locs.(i) <- e.Ta.dst) firing;
      let flags =
        List.fold_left (fun f k -> f lor (1 lsl k)) s.flags exiting
      in
      (* inactive-clock reduction: canonicalize unread clocks to 0 *)
      let active = ref Ta.Int_set.empty in
      Array.iteri
        (fun i loc ->
          active := Ta.Int_set.union !active active_tables.(i).(loc))
        locs;
      Array.iteri
        (fun k ta_idx ->
          if is_risky ta_idx locs.(ta_idx) then
            active := Ta.Int_set.add rc.(k) !active
          else if flags land (1 lsl k) <> 0 then
            active := Ta.Int_set.add xc.(k) !active)
        entity_ta;
      for clk = 1 to n_clocks do
        if not (Ta.Int_set.mem clk !active) then Dbm.free zone clk
      done;
      if close locs zone then add_state locs flags zone ~parent ~action
    end
  in
  (* initial state *)
  let initial_locs = Array.map (fun ta -> ta.Ta.initial) tas in
  let initial_zone = Dbm.zero ~clocks:n_clocks in
  if close initial_locs initial_zone then
    add_state initial_locs 0 initial_zone ~parent:(-1)
      ~action:(fun () -> "init");
  let exhausted = ref true in
  while (not (Queue.is_empty queue)) && not !stop do
    if !n_states > config.max_states then begin
      exhausted := false;
      Queue.clear queue
    end
    else begin
      (match config.progress with
      | Some f when !transitions land 0xFFFF = 0 ->
          f ~states:!n_states ~transitions:!transitions
      | _ -> ());
      let idx = Queue.pop queue in
      let s = get_state idx in
      Array.iteri
        (fun i ta ->
          List.iter
            (fun (e : Ta.edge) ->
              match e.Ta.sync with
              | Some _ -> () (* fires only synchronized with a send *)
              | None -> (
                  let base_action () =
                    Fmt.str "%s: %s -> %s%a" ta.Ta.name
                      ta.Ta.locations.(e.Ta.src).Ta.name
                      ta.Ta.locations.(e.Ta.dst).Ta.name
                      (Fmt.option (fun ppf l -> Fmt.pf ppf " %a" Label.pp l))
                      e.Ta.label
                  in
                  match e.Ta.label with
                  | Some (Label.Send root) ->
                      (* per listener: matching enabled edges, or loss *)
                      let options_per_listener =
                        List.map
                          (fun b ->
                            let matching =
                              List.filter
                                (fun (r : Ta.edge) ->
                                  match r.Ta.sync with
                                  | Some rt -> String.equal rt root
                                  | None -> false)
                                tas.(b).Ta.edges.(s.locs.(b))
                            in
                            let receive =
                              List.map (fun r -> Some (b, r)) matching
                            in
                            let can_lose =
                              matching = []
                              || List.exists
                                   (fun (r : Ta.edge) ->
                                     match r.Ta.label with
                                     | Some (Label.Recv_lossy _) -> true
                                     | _ -> false)
                                   matching
                            in
                            if can_lose then None :: receive else receive)
                          (listeners root ~sender:i)
                      in
                      let rec combos acc = function
                        | [] -> [ List.rev acc ]
                        | opts :: rest ->
                            List.concat_map
                              (fun o -> combos (o :: acc) rest)
                              opts
                      in
                      List.iter
                        (fun combo ->
                          let receivers = List.filter_map Fun.id combo in
                          let outcome =
                            if receivers = [] then " [lost]" else " [delivered]"
                          in
                          fire s ~parent:idx
                            ((i, e) :: receivers)
                            ~action:(fun () -> base_action () ^ outcome))
                        (combos [] options_per_listener)
                  | _ -> fire s ~parent:idx [ (i, e) ] ~action:base_action))
            ta.Ta.edges.(s.locs.(i)))
        tas
    end
  done;
  let trace idx =
    let rec go acc i =
      if i < 0 then acc
      else
        let s = get_state i in
        go (s.action () :: acc) s.parent
    in
    go [] idx
  in
  let discrete_states = Hashtbl.length visited in
  let clock_name_arr = Array.of_list (List.rev !clock_names) in
  let max_zones = ref 0 and hot = ref "" and hot_zones = ref [] in
  Hashtbl.iter
    (fun (locs, flags) zones ->
      let n = List.length !zones in
      if n > !max_zones then begin
        max_zones := n;
        hot :=
          Fmt.str "%a|%d (%s)"
            Fmt.(array ~sep:(any ",") int)
            locs flags
            (String.concat "/"
               (Array.to_list
                  (Array.mapi
                     (fun i l -> tas.(i).Ta.locations.(l).Ta.name)
                     locs)));
        hot_zones :=
          List.filteri (fun i _ -> i < 6) !zones
          |> List.map (fun (z, _) ->
                 Fmt.str "%a" (Dbm.pp ~names:clock_name_arr) z)
      end)
    visited;
  {
    violations = List.rev !violations;
    states = !n_states;
    transitions = !transitions;
    exhausted = !exhausted;
    trace;
    discrete_states;
    max_zones_per_key = !max_zones;
    hot_key = !hot;
    hot_zones = !hot_zones;
  }

(** Convenience: model-check the (un-elaborated) lease pattern for a
    configuration, against the spec induced by the configuration. *)
let check_pattern ?(lease = true) ?config ?dwell_bound (p : Pte_core.Params.t) =
  let system = Pte_core.Pattern.system ~lease p in
  let spec =
    match dwell_bound with
    | None -> Pte_core.Rules.of_params p
    | Some b -> Pte_core.Rules.of_params_with_bounds p ~dwell_bound:b
  in
  check ?config ~system ~spec ()
