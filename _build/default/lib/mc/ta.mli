(** Timed-automaton view of a hybrid automaton for zone reachability.

    Supported fragment (which the design-pattern automata inhabit):
    every variable is a clock (rate 1 everywhere) or an environment
    variable (rate 0). Guards over environment variables are erased —
    the edge becomes a may-edge (sound for safety). Eager edges with
    pure clock lower-bound guards are urgent and induce location
    invariants; empty-guard eager edges make their location zero-dwell.
    Receives on roots nobody sends are environment stimuli (may-edges). *)

open Pte_hybrid

type clock_atom = { clock : int; cmp : Dbm.cmp; const : float }

type edge = {
  src : int;
  dst : int;
  guard : clock_atom list;
  resets : int list;
  label : Label.t option;
  may : bool;  (** fires spontaneously at any enabled moment *)
  sync : string option;
      (** [Some root]: fires only synchronized with that send *)
}

type location = {
  name : string;
  risky : bool;
  urgent : bool;
  invariant : clock_atom list;
}

type t = {
  name : string;
  locations : location array;
  edges : edge list array;
  initial : int;
  clock_of_var : (string * int) list;
}

exception Unsupported of string

val translate :
  Automaton.t -> alloc:(string -> int) -> is_system_root:(string -> bool) -> t
(** [alloc] assigns global clock indices. Raises {!Unsupported} outside
    the timed fragment (ODE flows, mixed rates, compound urgent guards,
    non-zero resets). *)

module Int_set : Set.S with type elt = int

val active_clocks : t -> Int_set.t array
(** Per-location active clocks (read before their next reset), by
    backward fixpoint — the inactive-clock reduction used by
    {!Reach}. *)

val accumulate_max_constants : t -> k:float array -> unit
(** Grow [k] (indexed by global clock) to cover this automaton's guard
    and invariant constants (per-clock extrapolation bounds). *)

val max_constant : t -> float
