(** Difference Bound Matrices: the canonical zone representation for
    timed-automaton reachability (Dill 1989). Index 0 is the reference
    clock (constant 0); entry [(i, j)] bounds [x_i − x_j].

    This gives the repository an {e exact} analysis of the design-pattern
    automata, complementing the numeric simulator: the pattern's clocks
    all have rate 1, its guards and invariants are clock constraints, so
    zone reachability decides PTE safety for a given configuration under
    truly arbitrary message loss (Theorem 1's quantifier). *)

type t = {
  dim : int;  (** number of clocks + 1 *)
  m : Bound.t array array;
}

let dim t = t.dim

let copy t = { dim = t.dim; m = Array.map Array.copy t.m }

(** The zone where every clock equals 0. *)
let zero ~clocks =
  let dim = clocks + 1 in
  { dim; m = Array.make_matrix dim dim (Bound.le 0.0) }

(** The unconstrained zone (all clocks >= 0). *)
let top ~clocks =
  let dim = clocks + 1 in
  let m =
    Array.init dim (fun i ->
        Array.init dim (fun j ->
            if i = j then Bound.zero
            else if i = 0 then Bound.le 0.0 (* 0 − x_j <= 0 *)
            else Bound.infinity_))
  in
  { dim; m }

let get t i j = t.m.(i).(j)

let is_empty t =
  let rec go i = i >= t.dim || (Bound.compare t.m.(i).(i) Bound.zero >= 0 && go (i + 1)) in
  not (go 0)

(** Floyd–Warshall tightening to canonical form. *)
let canonicalize t =
  let { dim; m } = t in
  for k = 0 to dim - 1 do
    for i = 0 to dim - 1 do
      for j = 0 to dim - 1 do
        let through_k = Bound.add m.(i).(k) m.(k).(j) in
        if Bound.compare through_k m.(i).(j) < 0 then m.(i).(j) <- through_k
      done
    done
  done

(** Constrain [x_i − x_j ⋈ bound] and restore canonical form
    incrementally. Returns [false] if the zone became empty. *)
let constrain t i j bound =
  if Bound.compare bound t.m.(i).(j) < 0 then begin
    t.m.(i).(j) <- bound;
    (* incremental canonicalization through the updated edge *)
    let { dim; m } = t in
    for a = 0 to dim - 1 do
      for b = 0 to dim - 1 do
        let via = Bound.add (Bound.add m.(a).(i) bound) m.(j).(b) in
        if Bound.compare via m.(a).(b) < 0 then m.(a).(b) <- via
      done
    done
  end;
  not (is_empty t)

(** Time elapse ("up"): remove upper bounds on all clocks. Preserves
    canonical form. *)
let up t =
  for i = 1 to t.dim - 1 do
    t.m.(i).(0) <- Bound.infinity_
  done

(** Reset clock [i] to 0. Requires canonical input; preserves it. *)
let reset t i =
  for j = 0 to t.dim - 1 do
    if j <> i then begin
      t.m.(i).(j) <- t.m.(0).(j);
      t.m.(j).(i) <- t.m.(j).(0)
    end
  done;
  t.m.(i).(i) <- Bound.zero

(** Free clock [i]: drop every constraint involving it (the clock becomes
    an arbitrary non-negative value, unrelated to the others). This is
    the inactive-clock reduction primitive — unlike a reset, a freed
    clock does not re-entangle with the others as time elapses. Preserves
    canonical form. *)
let free t i =
  for j = 0 to t.dim - 1 do
    if j <> i then begin
      t.m.(i).(j) <- (if j = 0 then Bound.infinity_ else t.m.(i).(0));
      t.m.(j).(i) <- t.m.(j).(0)
    end
  done;
  (* x_i >= 0 and unbounded above; differences via 0 only *)
  t.m.(0).(i) <- Bound.le 0.0;
  t.m.(i).(0) <- Bound.infinity_;
  for j = 1 to t.dim - 1 do
    if j <> i then begin
      t.m.(i).(j) <- Bound.add t.m.(i).(0) t.m.(0).(j);
      t.m.(j).(i) <- Bound.add t.m.(j).(0) t.m.(0).(i)
    end
  done

(** [includes a b]: every valuation of [b] lies in [a] (assumes both
    canonical and non-empty). *)
let includes a b =
  assert (a.dim = b.dim);
  let ok = ref true in
  for i = 0 to a.dim - 1 do
    for j = 0 to a.dim - 1 do
      if Bound.compare a.m.(i).(j) b.m.(i).(j) < 0 then ok := false
    done
  done;
  !ok

let equal a b =
  a.dim = b.dim
  &&
  let ok = ref true in
  for i = 0 to a.dim - 1 do
    for j = 0 to a.dim - 1 do
      if not (Bound.equal a.m.(i).(j) b.m.(i).(j)) then ok := false
    done
  done;
  !ok

(** Upper bound of clock [i] over the zone ([Inf] if unbounded). *)
let sup t i = t.m.(i).(0)

(** Lower bound of clock [i] (as a non-negative float). *)
let inf t i =
  match t.m.(0).(i) with
  | Bound.Inf -> 0.0 (* cannot happen for clocks *)
  | Bound.Bound (v, _) -> -.v

type cmp = Le | Lt | Ge | Gt | Eq

(** Constrain by a clock atom [x_i ⋈ c]. *)
let constrain_atom t ~clock ~cmp ~const =
  match cmp with
  | Le -> constrain t clock 0 (Bound.le const)
  | Lt -> constrain t clock 0 (Bound.lt const)
  | Ge -> constrain t 0 clock (Bound.le (-.const))
  | Gt -> constrain t 0 clock (Bound.lt (-.const))
  | Eq ->
      constrain t clock 0 (Bound.le const)
      && constrain t 0 clock (Bound.le (-.const))

(** Per-clock k-extrapolation (Behrmann et al.): entry [(i, j)] bounds
    [x_i − x_j]; its upper bound is irrelevant beyond [k.(i)] and its
    lower bound beyond [−k.(j)], where [k.(c)] is the largest constant
    clock [c] is ever compared against. Much coarser than a single
    global constant, which is what makes reachability converge on
    protocol automata with long-lived observer clocks. [k.(0)] is
    ignored (the reference row/column keeps clocks non-negative). *)
let normalize_per_clock t ~k =
  let bound_for i = if i = 0 then 0.0 else k.(i) in
  let changed = ref false in
  for i = 0 to t.dim - 1 do
    for j = 0 to t.dim - 1 do
      if i <> j then
        match t.m.(i).(j) with
        | Bound.Inf -> ()
        | Bound.Bound (v, _) ->
            if i > 0 && v > bound_for i then begin
              t.m.(i).(j) <- Bound.infinity_;
              changed := true
            end
            else if j > 0 && v < -.bound_for j then begin
              t.m.(i).(j) <- Bound.lt (-.bound_for j);
              changed := true
            end
    done
  done;
  if !changed then canonicalize t

(** Extrapolation (k-normalization) w.r.t. a maximal constant, to
    guarantee termination of reachability on unbounded clocks. *)
let normalize t ~max_const =
  let big = Bound.le max_const in
  let changed = ref false in
  for i = 0 to t.dim - 1 do
    for j = 0 to t.dim - 1 do
      if i <> j then begin
        (match t.m.(i).(j) with
        | Bound.Inf -> ()
        | Bound.Bound (v, _) ->
            if v > max_const then begin
              t.m.(i).(j) <- Bound.infinity_;
              changed := true
            end
            else if v < -.max_const then begin
              t.m.(i).(j) <- Bound.lt (-.max_const);
              changed := true
            end);
        ignore big
      end
    done
  done;
  if !changed then canonicalize t

let pp ?names ppf t =
  let name i =
    if i = 0 then "0"
    else
      match names with
      | Some ns when i - 1 < Array.length ns -> ns.(i - 1)
      | _ -> Printf.sprintf "x%d" i
  in
  for i = 0 to t.dim - 1 do
    for j = 0 to t.dim - 1 do
      if i <> j && t.m.(i).(j) <> Bound.Inf then
        Fmt.pf ppf "%s-%s%a; " (name i) (name j) Bound.pp t.m.(i).(j)
    done
  done
