(** Difference bounds for DBMs: a bound is either +∞ or a pair
    [(value, strict?)] representing "x − y ≤ value" (non-strict) or
    "x − y < value" (strict). *)

type t =
  | Inf
  | Bound of float * bool  (** (value, strict) *)

let infinity_ = Inf
let le v = Bound (v, false)
let lt v = Bound (v, true)
let zero = le 0.0

(* Ordering: tighter-than. A strict bound is tighter than a non-strict
   bound of the same value. *)
let compare a b =
  match (a, b) with
  | Inf, Inf -> 0
  | Inf, Bound _ -> 1
  | Bound _, Inf -> -1
  | Bound (v1, s1), Bound (v2, s2) ->
      if Float.abs (v1 -. v2) > 1e-12 then Float.compare v1 v2
      else Bool.compare s2 s1 (* strict (true) is tighter, i.e. smaller *)

let min a b = if compare a b <= 0 then a else b

let add a b =
  match (a, b) with
  | Inf, _ | _, Inf -> Inf
  | Bound (v1, s1), Bound (v2, s2) -> Bound (v1 +. v2, s1 || s2)

let neg = function
  | Inf -> invalid_arg "Bound.neg: infinite bound"
  | Bound (v, s) -> Bound (-.v, s)

(** Does a pair of bounds [x − y ⋈ a] and [y − x ⋈ b] admit a solution?
    Empty iff a + b < 0, or a + b = 0 with either strict. *)
let consistent a b =
  match add a b with
  | Inf -> true
  | Bound (v, s) -> v > 1e-12 || (Float.abs v <= 1e-12 && not s)

let equal a b = compare a b = 0

let pp ppf = function
  | Inf -> Fmt.string ppf "inf"
  | Bound (v, false) -> Fmt.pf ppf "<=%g" v
  | Bound (v, true) -> Fmt.pf ppf "<%g" v
