(** Difference bounds for DBMs: +∞ or [(value, strict?)], representing
    [x − y <= value] or [x − y < value]. *)

type t =
  | Inf
  | Bound of float * bool  (** (value, strict) *)

val infinity_ : t
val le : float -> t
val lt : float -> t
val zero : t

val compare : t -> t -> int
(** Tighter-than ordering: a strict bound is tighter than a non-strict
    one of the same value; [Inf] is loosest. *)

val min : t -> t -> t
val add : t -> t -> t

val neg : t -> t
(** Raises on [Inf]. *)

val consistent : t -> t -> bool
(** Do [x − y ⋈ a] and [y − x ⋈ b] admit a solution? *)

val equal : t -> t -> bool
val pp : t Fmt.t
