lib/mc/ta.mli: Automaton Dbm Label Pte_hybrid Set
