lib/mc/dbm.ml: Array Bound Fmt Printf
