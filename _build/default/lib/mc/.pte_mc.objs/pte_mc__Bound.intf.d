lib/mc/bound.mli: Fmt
