lib/mc/reach.ml: Array Automaton Bound Dbm Edge Float Fmt Fun Hashtbl Label List Option Pte_core Pte_hybrid Queue String System Ta Var
