lib/mc/ta.ml: Array Automaton Dbm Edge Float Flow Fmt Guard Int Label List Location Pte_hybrid Reset Set String
