lib/mc/dbm.mli: Bound Fmt
