lib/mc/bound.ml: Bool Float Fmt
