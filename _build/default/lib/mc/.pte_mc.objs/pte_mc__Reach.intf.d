lib/mc/reach.mli: Fmt Pte_core Pte_hybrid
