(** Extension: multiple Initializers.

    Section IV-A fixes, "without loss of generality", a single
    Initializer ξN. This module implements the natural generalization
    the paper defers: a designated subset of the remote entities may
    initiate. When ξk requests, the Supervisor leases the {e prefix}
    ξ1 … ξk−1 in PTE order, then approves ξk; entities above ξk stay in
    Fall-Back (safe), so the PTE embedding for their pairs holds
    vacuously. Sessions are serialized by the Supervisor (requests
    arriving outside "Fall-Back" are ignored), and every session is
    protected by exactly the same leases as the single-Initializer
    pattern, so Theorem 1's argument applies per session provided:

    - the full-chain conditions c1–c7 hold (prefix instances of c2/c4–c7
      are implied), and
    - the c3 instance of {e every} initiator k holds:
      (k−1)·T^max_wait < T^max_req < T^max_LS1 — checked by {!check}.

    Remote entities that can both participate and initiate get a
    {e dual-role} automaton: the Participant automaton and an
    Initializer fragment (locations suffixed ["(init)"]) glued at
    "Fall-Back". ξN, having no entity above it, is Initializer-only. *)

open Pte_hybrid

type config = {
  params : Params.t;
  initiators : int list;  (** 1-based entity indices, strictly increasing. *)
}

let validate_config { params; initiators } =
  let n = Params.n params in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  if initiators = [] then Error "no initiators designated"
  else if not (increasing initiators) then
    Error "initiators must be strictly increasing"
  else if List.exists (fun k -> k < 1 || k > n) initiators then
    Error "initiator index out of range"
  else if not (List.mem n initiators) then
    Error "the top entity must be an initiator (it has no participant role)"
  else Ok ()

(** Theorem 1 conditions for the multi-initializer system: the full-chain
    c1–c7 plus the per-initiator c3 instances. *)
let check ({ params; initiators } as config) =
  match validate_config config with
  | Error e -> Error e
  | Ok () ->
      let base = Constraints.check params in
      let t_ls1 = Params.t_ls1 params in
      let extra =
        List.map
          (fun k ->
            let lo = Float.of_int (k - 1) *. params.Params.t_wait_max in
            let ok = lo < params.Params.t_req_max && params.Params.t_req_max < t_ls1 in
            {
              Constraints.condition = Constraints.C3;
              ok;
              detail =
                Fmt.str "initiator %s (k=%d): %g < T_req = %g < %g%s"
                  params.Params.entities.(k - 1).Params.name k lo
                  params.Params.t_req_max t_ls1
                  (if ok then "" else " FAILS");
            })
          initiators
      in
      Ok (base @ extra)

let satisfies config =
  match check config with
  | Ok outcomes -> Constraints.all_ok outcomes
  | Error _ -> false

(* -------------------------------------------------------------------- *)
(* Dual-role remote entity                                               *)
(* -------------------------------------------------------------------- *)

let init_suffix name = name ^ " (init)"

(** The Initializer fragment of a dual-role entity: a copy of the
    Initializer behaviour with locations suffixed so they do not collide
    with the Participant locations sharing the automaton. *)
let initiator_fragment ?(lease = true) (p : Params.t) ~index =
  let e = p.Params.entities.(index - 1) in
  let me = e.Params.name in
  let c = Pattern.clock in
  let ge v bound = [ Guard.atom v Guard.Ge bound ] in
  let reset_clock = Reset.set c 0.0 in
  let flow = Flow.Rates [ (c, 1.0) ] in
  let loc ?(kind = Location.Safe) name = Location.make ~kind ~flow (init_suffix name) in
  let edge ?guard ?reset ?label src dst =
    Edge.make ?guard ?reset ?label ~src ~dst ()
  in
  let fb = Pattern.fall_back in
  let i name = init_suffix name in
  let locations =
    [
      loc "Send Req"; loc "Requesting"; loc "Send Cancel (requesting)";
      loc "Entering"; loc "Send Cancel (entering)"; loc "Send Exit (entering)";
      loc ~kind:Location.Risky "Risky Core";
      loc ~kind:Location.Risky "Send Cancel (risky)";
      loc ~kind:Location.Risky "Send Exit (abort)";
      loc ~kind:Location.Risky "Lease Expired";
      loc ~kind:Location.Risky "Send Exit (expired)";
      loc ~kind:Location.Risky "Exiting 1";
      loc "Exiting 2";
    ]
  in
  let expiry_edges =
    if lease then
      [
        edge ~guard:(ge c e.Params.t_run_max) ~reset:reset_clock
          (i "Risky Core") (i "Lease Expired");
        edge ~label:(Label.Internal (Events.to_stop ~entity:me))
          (i "Lease Expired") (i "Send Exit (expired)");
        edge ~label:(Label.Send (Events.exit_up ~initializer_:me))
          ~reset:reset_clock (i "Send Exit (expired)") (i "Exiting 1");
      ]
    else []
  in
  let edges =
    [
      edge ~label:(Label.Recv (Events.stim_request ~initializer_:me))
        ~reset:reset_clock fb (i "Send Req");
      edge ~label:(Label.Send (Events.request ~initializer_:me))
        ~reset:reset_clock (i "Send Req") (i "Requesting");
      edge ~label:(Label.Recv (Events.stim_cancel ~initializer_:me))
        ~reset:reset_clock (i "Requesting") (i "Send Cancel (requesting)");
      edge ~label:(Label.Send (Events.cancel_up ~initializer_:me))
        ~reset:reset_clock (i "Send Cancel (requesting)") fb;
      edge ~guard:(ge c p.Params.t_req_max) ~reset:reset_clock (i "Requesting") fb;
      edge ~label:(Label.Recv_lossy (Events.approve ~initializer_:me))
        ~reset:reset_clock (i "Requesting") (i "Entering");
      edge ~label:(Label.Recv (Events.stim_cancel ~initializer_:me))
        ~reset:reset_clock (i "Entering") (i "Send Cancel (entering)");
      edge ~label:(Label.Send (Events.cancel_up ~initializer_:me))
        ~reset:reset_clock (i "Send Cancel (entering)") (i "Exiting 2");
      edge ~label:(Label.Recv_lossy (Events.abort_down ~entity:me))
        ~reset:reset_clock (i "Entering") (i "Send Exit (entering)");
      edge ~label:(Label.Send (Events.exit_up ~initializer_:me))
        ~reset:reset_clock (i "Send Exit (entering)") (i "Exiting 2");
      edge ~guard:(ge c e.Params.t_enter_max) ~reset:reset_clock (i "Entering")
        (i "Risky Core");
      edge ~label:(Label.Recv (Events.stim_cancel ~initializer_:me))
        ~reset:reset_clock (i "Risky Core") (i "Send Cancel (risky)");
      edge ~label:(Label.Send (Events.cancel_up ~initializer_:me))
        ~reset:reset_clock (i "Send Cancel (risky)") (i "Exiting 1");
      edge ~label:(Label.Recv_lossy (Events.abort_down ~entity:me))
        ~reset:reset_clock (i "Risky Core") (i "Send Exit (abort)");
      edge ~label:(Label.Send (Events.exit_up ~initializer_:me))
        ~reset:reset_clock (i "Send Exit (abort)") (i "Exiting 1");
    ]
    @ expiry_edges
    @ [
        edge ~guard:(ge c e.Params.t_exit) ~reset:reset_clock (i "Exiting 1") fb;
        edge ~guard:(ge c e.Params.t_exit) ~reset:reset_clock (i "Exiting 2") fb;
      ]
  in
  (locations, edges)

(** The dual-role automaton for entity [index]: its Participant automaton
    (if index < N), plus the Initializer fragment when designated. ξN is
    Initializer-only (there is nothing above it to participate for). *)
let entity ?(lease = true) (config : config) ~index =
  let p = config.params in
  let n = Params.n p in
  let is_initiator = List.mem index config.initiators in
  if index = n then begin
    if not is_initiator then
      Fmt.invalid_arg
        "entity %d is the top of the chain but not an initiator (it would be unused)"
        index;
    Pattern.initializer_ ~lease p
  end
  else begin
    let participant = Pattern.participant ~lease p ~index in
    if not is_initiator then participant
    else begin
      let locations, edges = initiator_fragment ~lease p ~index in
      {
        participant with
        Automaton.locations = participant.Automaton.locations @ locations;
        edges = participant.Automaton.edges @ edges;
      }
    end
  end

(* -------------------------------------------------------------------- *)
(* Supervisor with one chain per initiator                               *)
(* -------------------------------------------------------------------- *)

let session_loc base ~initiator = base ^ " @" ^ initiator

let supervisor (config : config) =
  let p = config.params in
  let n = Params.n p in
  let name i = p.Params.entities.(i - 1).Params.name in
  let bailout_bound = Params.risky_dwell_bound p in
  let clock = Pattern.clock and ls = Pattern.session_clock
  and fb_clock = Pattern.fallback_clock and approval = Pattern.approval_var in
  let flow = Flow.Rates [ (clock, 1.0); (ls, 1.0); (fb_clock, 1.0) ] in
  let loc location_name = Location.make ~flow location_name in
  let ge v bound = [ Guard.atom v Guard.Ge bound ] in
  let lt v bound = [ Guard.atom v Guard.Lt bound ] in
  let reset_clock = Reset.set clock 0.0 in
  let edge ?guard ?reset ?label src dst = Edge.make ?guard ?reset ?label ~src ~dst () in
  let to_fb ?guard ?label src =
    edge ?guard ?label
      ~reset:[ (clock, Reset.Set_const 0.0); (fb_clock, Reset.Set_const 0.0) ]
      src Pattern.fall_back
  in
  let bailout src = to_fb ~guard:(ge ls bailout_bound) src in
  (* one grant/lease/cancel/abort chain per session (initiator); the
     sweep is a cancel chain through all participants keyed "sweep" *)
  let chains =
    List.map (fun k -> (name k, k)) config.initiators @ [ ("sweep", n) ]
  in
  let grant_loc s i = session_loc (Pattern.grant_loc (name i)) ~initiator:s in
  let lease_loc s i = session_loc (Pattern.lease_loc (name i)) ~initiator:s in
  let send_cancel s i = session_loc (Pattern.send_cancel_loc (name i)) ~initiator:s in
  let cancel_loc s i = session_loc (Pattern.cancel_loc (name i)) ~initiator:s in
  let send_abort s i = session_loc (Pattern.send_abort_loc (name i)) ~initiator:s in
  let abort_loc s i = session_loc (Pattern.abort_loc (name i)) ~initiator:s in
  let session_locations (s, k) =
    let is_sweep = String.equal s "sweep" in
    (if is_sweep then []
     else
       List.concat
         (List.init k (fun idx ->
              let i = idx + 1 in
              [ loc (grant_loc s i); loc (lease_loc s i); loc (send_abort s i);
                loc (abort_loc s i) ])))
    @ List.concat
        (List.init (k - 1) (fun idx ->
             let i = idx + 1 in
             [ loc (send_cancel s i); loc (cancel_loc s i) ]))
  in
  let cancel_chain_edges (s, _k) i =
    (* Send Cancel ξi -> Cancel ξi -> (exited) descend / retransmit *)
    let dispatch =
      edge ~label:(Label.Send (Events.cancel_down ~entity:(name i)))
        ~reset:reset_clock (send_cancel s i) (cancel_loc s i)
    in
    let confirmed =
      let label = Label.Recv_lossy (Events.exited_up ~participant:(name i)) in
      if i = 1 then to_fb ~label (cancel_loc s i)
      else edge ~label ~reset:reset_clock (cancel_loc s i) (send_cancel s (i - 1))
    in
    let retransmit =
      edge ~guard:(ge clock p.Params.t_wait_max) ~reset:reset_clock
        (cancel_loc s i) (send_cancel s i)
    in
    [ dispatch; bailout (cancel_loc s i); confirmed; retransmit ]
  in
  let session_edges (s, k) =
    let is_sweep = String.equal s "sweep" in
    if is_sweep then
      List.concat (List.init (k - 1) (fun idx -> cancel_chain_edges (s, k) (idx + 1)))
    else begin
      let initiator_name = s in
      let grant_edges i =
        let send_label =
          if i < k then Label.Send (Events.lease_req ~participant:(name i))
          else Label.Send (Events.approve ~initializer_:initiator_name)
        in
        [ edge ~label:send_label ~reset:reset_clock (grant_loc s i) (lease_loc s i) ]
      in
      let lease_edges i =
        let here = lease_loc s i in
        let abort_here =
          edge ~guard:(lt approval 0.5) ~reset:reset_clock here (send_abort s i)
        in
        if i < k then
          [
            bailout here;
            abort_here;
            edge
              ~label:(Label.Recv_lossy (Events.lease_approve ~participant:(name i)))
              ~reset:reset_clock here
              (grant_loc s (i + 1));
            (if i = 1 then
               to_fb
                 ~label:(Label.Recv_lossy (Events.lease_deny ~participant:(name i)))
                 here
             else
               edge
                 ~label:(Label.Recv_lossy (Events.lease_deny ~participant:(name i)))
                 ~reset:reset_clock here
                 (send_cancel s (i - 1)));
            edge
              ~label:(Label.Recv_lossy (Events.cancel_up ~initializer_:initiator_name))
              ~reset:reset_clock here (send_cancel s i);
            edge ~guard:(ge clock p.Params.t_wait_max) ~reset:reset_clock here
              (send_cancel s i);
          ]
        else begin
          (* granted: k = 1 sessions have no participants to cancel *)
          let after_exit label =
            if k = 1 then to_fb ~label here
            else edge ~label ~reset:reset_clock here (send_cancel s (k - 1))
          in
          [
            bailout here;
            abort_here;
            after_exit (Label.Recv_lossy (Events.cancel_up ~initializer_:initiator_name));
            after_exit (Label.Recv_lossy (Events.exit_up ~initializer_:initiator_name));
          ]
        end
      in
      let abort_edges i =
        let dispatch =
          edge ~label:(Label.Send (Events.abort_down ~entity:(name i)))
            ~reset:reset_clock (send_abort s i) (abort_loc s i)
        in
        let confirmation =
          if i = k then Label.Recv_lossy (Events.exit_up ~initializer_:initiator_name)
          else Label.Recv_lossy (Events.exited_up ~participant:(name i))
        in
        let confirmed =
          if i = 1 then to_fb ~label:confirmation (abort_loc s i)
          else edge ~label:confirmation ~reset:reset_clock (abort_loc s i)
              (send_abort s (i - 1))
        in
        let retransmit =
          edge ~guard:(ge clock p.Params.t_wait_max) ~reset:reset_clock
            (abort_loc s i) (send_abort s i)
        in
        [ dispatch; bailout (abort_loc s i); confirmed; retransmit ]
      in
      let request =
        edge
          ~label:(Label.Recv_lossy (Events.request ~initializer_:initiator_name))
          ~guard:(ge fb_clock p.Params.t_fb_min @ ge approval 0.5)
          ~reset:[ (clock, Reset.Set_const 0.0); (ls, Reset.Set_const 0.0) ]
          Pattern.fall_back (grant_loc s 1)
      in
      request
      :: List.concat
           (List.init k (fun idx ->
                let i = idx + 1 in
                grant_edges i @ lease_edges i @ abort_edges i
                @ if i < k then cancel_chain_edges (s, k) i else []))
    end
  in
  let sweep =
    if n >= 2 then
      [
        edge
          ~guard:(lt approval 0.5 @ ge fb_clock p.Params.t_fb_min)
          ~reset:[ (clock, Reset.Set_const 0.0); (ls, Reset.Set_const 0.0) ]
          Pattern.fall_back
          (send_cancel "sweep" (n - 1));
      ]
    else []
  in
  Automaton.make ~name:p.Params.supervisor
    ~vars:[ clock; ls; fb_clock; approval ]
    ~locations:(loc Pattern.fall_back :: List.concat_map session_locations chains)
    ~edges:(sweep @ List.concat_map session_edges chains)
    ~initial_location:Pattern.fall_back
    ~initial_values:[ (approval, 1.0) ]
    ()

(** The multi-initializer hybrid system. *)
let system ?(lease = true) (config : config) =
  (match validate_config config with
  | Ok () -> ()
  | Error e -> Fmt.invalid_arg "Multi.system: %s" e);
  let n = Params.n config.params in
  let remotes = List.init n (fun idx -> entity ~lease config ~index:(idx + 1)) in
  (* entities that are neither participants (index = N) nor initiators
     would be inert; validate_config allows ξN only as initiator *)
  System.make ~name:"pte-lease-multi" (supervisor config :: remotes)

(** Stimulus roots for driving each initiator (for scenarios/tests). *)
let stimuli (config : config) =
  List.map
    (fun k ->
      let name = config.params.Params.entities.(k - 1).Params.name in
      (name,
       Events.stim_request ~initializer_:name,
       Events.stim_cancel ~initializer_:name))
    config.initiators
