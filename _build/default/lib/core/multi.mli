(** Extension: multiple Initializers.

    The paper fixes a single Initializer ξN "without loss of
    generality"; this module implements the deferred generalization: a
    designated subset of remote entities may initiate. A session by ξk
    leases the prefix ξ1..ξk−1 and approves ξk; entities above ξk stay
    safe, so their PTE pairs hold vacuously. Sessions are serialized by
    the Supervisor; every session is lease-protected exactly as in the
    single-Initializer pattern, so Theorem 1's argument applies per
    session once {!check} passes (full-chain c1–c7 plus the c3 instance
    of every initiator). *)

open Pte_hybrid

type config = {
  params : Params.t;
  initiators : int list;
      (** 1-based entity indices, strictly increasing; must include N
          (the top entity has no participant role). *)
}

val validate_config : config -> (unit, string) result

val check : config -> (Constraints.outcome list, string) result
(** Full-chain c1–c7 followed by one c3 instance per initiator. *)

val satisfies : config -> bool

val entity : ?lease:bool -> config -> index:int -> Automaton.t
(** Dual-role automaton: the Participant automaton (index < N) plus, for
    designated initiators, an Initializer fragment (locations suffixed
    ["(init)"]) glued at "Fall-Back". ξN is Initializer-only. *)

val supervisor : config -> Automaton.t
(** One grant/lease/cancel/abort chain per initiator, plus the
    Fall-Back recovery sweep. *)

val system : ?lease:bool -> config -> System.t

val stimuli : config -> (string * string * string) list
(** Per initiator: (entity name, request stimulus root, cancel stimulus
    root) — for wiring scenarios. *)

val init_suffix : string -> string
(** Location-name suffixing used by the Initializer fragment. *)
