(** Theorem 2 (Design Pattern Compliance): turning the pattern into a
    specific wireless CPS design while preserving the PTE guarantee.

    A {!plan} names, per member entity, the pattern locations to
    elaborate and the simple child automata to put there. {!build}
    executes the methodology of Section IV-C — it constructs each member
    by parallel elaboration and verifies every premise of Theorem 2:

    1–3. each member elaborates its role's pattern automaton at distinct
         locations with child automata that are independent of it;
    4.   the children are mutually independent across the whole design;
    5.   the configuration constants satisfy c1–c7 (Theorem 1).

    A design produced by [build] therefore satisfies the PTE safety
    rules by Theorem 2. {!audit} re-checks an externally supplied design
    against a plan (structural sufficient conditions). *)

open Pte_hybrid

type plan = {
  params : Params.t;
  lease : bool;
  children : (string * (string * Automaton.t) list) list;
      (** [(member, [(pattern location, simple child); ...])]; members
          not listed are used as bare pattern automata. *)
}

type error =
  | Constraints_violated of Constraints.condition list
  | Unknown_member of string
  | Elaboration_failed of string * Elaboration.error
  | Children_not_mutually_independent of string * string

let pp_error ppf = function
  | Constraints_violated cs ->
      Fmt.pf ppf "Theorem 1 conditions violated: %a"
        Fmt.(list ~sep:comma string)
        (List.map Constraints.condition_name cs)
  | Unknown_member m -> Fmt.pf ppf "plan names unknown member %s" m
  | Elaboration_failed (m, e) ->
      Fmt.pf ppf "elaboration of %s failed: %a" m Elaboration.pp_error e
  | Children_not_mutually_independent (a, b) ->
      Fmt.pf ppf "child automata %s and %s are not mutually independent" a b

let pattern_automata plan =
  let p = plan.params in
  let n = Params.n p in
  (Pattern.supervisor p
  :: List.init (n - 1) (fun idx ->
         Pattern.participant ~lease:plan.lease p ~index:(idx + 1)))
  @ [ Pattern.initializer_ ~lease:plan.lease p ]

(* Theorem 2, premise 4: all children, across all members, pairwise
   independent. *)
let check_mutual_independence plan =
  let all_children =
    List.concat_map (fun (_, cs) -> List.map snd cs) plan.children
  in
  let rec go = function
    | [] -> Ok ()
    | (a : Automaton.t) :: rest -> (
        match
          List.find_opt (fun b -> not (Automaton.independent a b)) rest
        with
        | Some b ->
            Error
              (Children_not_mutually_independent
                 (a.Automaton.name, b.Automaton.name))
        | None -> go rest)
  in
  go all_children

let known_members plan =
  List.map
    (fun (a : Automaton.t) -> a.Automaton.name)
    (pattern_automata plan)

let build plan : (System.t, error list) result =
  let errors = ref [] in
  let outcomes = Constraints.check plan.params in
  if not (Constraints.all_ok outcomes) then
    errors := Constraints_violated (Constraints.violated outcomes) :: !errors;
  (match check_mutual_independence plan with
  | Ok () -> ()
  | Error e -> errors := e :: !errors);
  let members = known_members plan in
  List.iter
    (fun (m, _) ->
      if not (List.exists (String.equal m) members) then
        errors := Unknown_member m :: !errors)
    plan.children;
  let elaborated =
    List.map
      (fun (pattern : Automaton.t) ->
        let targets =
          match List.assoc_opt pattern.Automaton.name plan.children with
          | Some cs -> cs
          | None -> []
        in
        match Elaboration.parallel pattern targets with
        | Ok a -> a
        | Error e ->
            errors := Elaboration_failed (pattern.Automaton.name, e) :: !errors;
            pattern)
      (pattern_automata plan)
  in
  match List.rev !errors with
  | [] -> Ok (System.make ~name:"pte-design" elaborated)
  | errs -> Error errs

let build_exn plan =
  match build plan with
  | Ok system -> system
  | Error errs ->
      Fmt.invalid_arg "compliance build failed: %a"
        Fmt.(list ~sep:(any "; ") pp_error)
        errs

(** Audit an externally supplied design against the plan: premises of
    Theorem 2 plus a structural check that each design member preserves
    the un-elaborated part of its pattern automaton. *)
let audit plan ~(design : System.t) : (unit, error list) result =
  let errors = ref [] in
  let outcomes = Constraints.check plan.params in
  if not (Constraints.all_ok outcomes) then
    errors := Constraints_violated (Constraints.violated outcomes) :: !errors;
  (match check_mutual_independence plan with
  | Ok () -> ()
  | Error e -> errors := e :: !errors);
  List.iter
    (fun (pattern : Automaton.t) ->
      match System.find design pattern.Automaton.name with
      | None -> errors := Unknown_member pattern.Automaton.name :: !errors
      | Some member ->
          if not (Elaboration.elaborates ~pattern ~design:member) then
            errors :=
              Elaboration_failed
                ( pattern.Automaton.name,
                  Elaboration.Not_simple "structural audit failed" )
              :: !errors)
    (pattern_automata plan);
  match List.rev !errors with [] -> Ok () | errs -> Error errs
