(** Constructive parameter synthesis for Theorem 1: derive configuration
    constants satisfying c1–c7 from application-level safety
    requirements, or explain why none exist. The derivation is
    margin-based: exits bottom-up from c7, enters top-down from c5, runs
    backwards from the Initializer's useful risky time via c6. *)

type requirements = {
  supervisor : string;
  entity_names : string list;  (** ξ1 .. ξN in PTE order; N >= 2. *)
  safeguards : Params.safeguard list;  (** length N−1. *)
  initializer_run : float;
      (** Useful risky time for the Initializer (becomes T^max_run,N). *)
  t_wait_max : float;  (** Supervisor wait timeout (a few RTTs). *)
  margin : float;  (** Slack added to every strict inequality. *)
}

val default_requirements :
  entity_names:string list -> safeguards:Params.safeguard list -> requirements
(** 20 s run time, 3 s wait, 1 s margin. *)

type error =
  | Too_few_entities of int
  | Bad_safeguard_count of { expected : int; got : int }
  | Nonpositive of string
  | Infeasible of Constraints.outcome list
      (** The derived constants violate some condition (conservative
          margins can make tight requirement sets infeasible). *)

val pp_error : error Fmt.t

val synthesize : requirements -> (Params.t, error) result
(** On [Ok p], [Constraints.satisfies p] holds. *)

val synthesize_exn : requirements -> Params.t
