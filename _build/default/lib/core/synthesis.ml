(** Constructive parameter synthesis for Theorem 1.

    Given the application-level requirements — the PTE order, the
    safeguard intervals, each entity's useful risky time and a bound on
    risky dwelling — derive configuration constants satisfying c1–c7, or
    explain why none exist. The derivation follows the structure of the
    constraints:

    - c7 fixes exits bottom-up: T_exit,i must exceed the exit safeguard;
      our cancel/abort chains additionally want
      T_exit,i >= T_exit,i+1 + T_safe:i+1→i (+ margin) so a cancelled
      inner entity is always outlived by its outer neighbour.
    - c5 fixes enters top-down along the chain:
      T_enter,i+1 > T_enter,i + T_risky:i→i+1.
    - c6 fixes runs backwards from the Initializer's requested run time:
      T_run,i > T_wait + T_enter,i+1 + T_run,i+1 + T_exit,i+1 − T_enter,i.
    - c2/c3/c4 are then checked (they may fail if the requested run time
      or N make T_LS1 incompatible; the margins are conservative). *)

type requirements = {
  supervisor : string;
  entity_names : string list;  (** ξ1 .. ξN in PTE order; N >= 2. *)
  safeguards : Params.safeguard list;  (** length N−1. *)
  initializer_run : float;
      (** Useful risky time for the Initializer (T^max_run,N). *)
  t_wait_max : float;  (** Supervisor wait timeout (e.g. a few RTTs). *)
  margin : float;  (** Slack added to every strict inequality. *)
}

let default_requirements ~entity_names ~safeguards =
  {
    supervisor = "supervisor";
    entity_names;
    safeguards;
    initializer_run = 20.0;
    t_wait_max = 3.0;
    margin = 1.0;
  }

type error =
  | Too_few_entities of int
  | Bad_safeguard_count of { expected : int; got : int }
  | Nonpositive of string
  | Infeasible of Constraints.outcome list

let pp_error ppf = function
  | Too_few_entities n -> Fmt.pf ppf "need N >= 2 entities, got %d" n
  | Bad_safeguard_count { expected; got } ->
      Fmt.pf ppf "need %d safeguard pairs, got %d" expected got
  | Nonpositive what -> Fmt.pf ppf "%s must be positive" what
  | Infeasible outcomes ->
      Fmt.pf ppf "synthesized constants violate: %a"
        Fmt.(list ~sep:comma string)
        (List.map
           (fun c -> Constraints.condition_name c)
           (Constraints.violated outcomes))

let synthesize (r : requirements) : (Params.t, error) result =
  let n = List.length r.entity_names in
  if n < 2 then Error (Too_few_entities n)
  else if List.length r.safeguards <> n - 1 then
    Error
      (Bad_safeguard_count { expected = n - 1; got = List.length r.safeguards })
  else if r.initializer_run <= 0.0 then Error (Nonpositive "initializer_run")
  else if r.t_wait_max <= 0.0 then Error (Nonpositive "t_wait_max")
  else if r.margin <= 0.0 then Error (Nonpositive "margin")
  else begin
    let names = Array.of_list r.entity_names in
    let safeguards = Array.of_list r.safeguards in
    let t_enter = Array.make n 0.0 in
    let t_run = Array.make n 0.0 in
    let t_exit = Array.make n 0.0 in
    (* exits: bottom of the chain upward (c7 + chain-descent headroom) *)
    t_exit.(n - 1) <- r.margin;
    for i = n - 2 downto 0 do
      t_exit.(i) <-
        t_exit.(i + 1) +. safeguards.(i).Params.exit_safe_min +. r.margin
    done;
    (* enters: top of the chain downward (c5) *)
    t_enter.(0) <- r.margin;
    for i = 1 to n - 1 do
      t_enter.(i) <-
        t_enter.(i - 1) +. safeguards.(i - 1).Params.enter_risky_min +. r.margin
    done;
    (* runs: initializer's request, then backwards (c6) *)
    t_run.(n - 1) <- r.initializer_run;
    for i = n - 2 downto 0 do
      t_run.(i) <-
        r.t_wait_max +. t_enter.(i + 1) +. t_run.(i + 1) +. t_exit.(i + 1)
        +. r.margin -. t_enter.(i)
    done;
    let entities =
      Array.init n (fun i ->
          {
            Params.name = names.(i);
            t_enter_max = t_enter.(i);
            t_run_max = t_run.(i);
            t_exit = t_exit.(i);
          })
    in
    let t_ls1 = t_enter.(0) +. t_run.(0) +. t_exit.(0) in
    (* c3: any value strictly inside ((N-1) T_wait, T_LS1) *)
    let t_req_max =
      let lo = Float.of_int (n - 1) *. r.t_wait_max in
      Float.min (lo +. r.margin) ((lo +. t_ls1) /. 2.0)
    in
    (* Fall-Back cool-down: enough for in-flight stragglers to clear. The
       case study uses 13 s for N = 2; we scale with the chain length. *)
    let t_fb_min = Float.max r.margin (Float.of_int n *. r.t_wait_max) +. 2.0 *. r.margin in
    let params =
      {
        Params.supervisor = r.supervisor;
        t_wait_max = r.t_wait_max;
        t_fb_min;
        t_req_max;
        entities;
        safeguards;
      }
    in
    let outcomes = Constraints.check params in
    if Constraints.all_ok outcomes then Ok params
    else Error (Infeasible outcomes)
  end

let synthesize_exn r =
  match synthesize r with
  | Ok p -> p
  | Error e -> Fmt.invalid_arg "synthesis failed: %a" pp_error e
