(** Theorem 2 (Design Pattern Compliance): build specific wireless CPS
    designs from the pattern by elaboration, with every premise checked —
    so the resulting design satisfies the PTE safety rules by
    Theorem 2. *)

(** Per member entity, the pattern locations to elaborate and the simple
    child automata to put there. *)
type plan = {
  params : Params.t;
  lease : bool;
  children : (string * (string * Pte_hybrid.Automaton.t) list) list;
      (** [(member, [(pattern location, simple child); ...])]; members
          not listed are used as bare pattern automata. *)
}

type error =
  | Constraints_violated of Constraints.condition list  (** premise 5 *)
  | Unknown_member of string
  | Elaboration_failed of string * Pte_hybrid.Elaboration.error
      (** premises 1–3: independence, simplicity, distinct targets *)
  | Children_not_mutually_independent of string * string  (** premise 4 *)

val pp_error : error Fmt.t

val build : plan -> (Pte_hybrid.System.t, error list) result
(** Execute the Section IV-C methodology: construct each member by
    parallel elaboration, verifying all Theorem 2 premises. *)

val build_exn : plan -> Pte_hybrid.System.t

val audit : plan -> design:Pte_hybrid.System.t -> (unit, error list) result
(** Re-check an externally supplied design against a plan (structural
    sufficient conditions: the un-elaborated pattern parts must survive
    verbatim in each member). *)
