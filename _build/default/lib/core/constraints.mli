(** The closed-form configuration constraints c1–c7 of Theorem 1.

    If a hybrid system follows the design pattern and its constants
    satisfy all seven conditions, the PTE safety rules hold under
    arbitrary loss of the events carried over unreliable channels, and
    every entity's continuous risky dwelling is bounded by
    T^max_wait + T^max_LS1 ({!Params.risky_dwell_bound}). *)

type condition = C1 | C2 | C3 | C4 | C5 | C6 | C7

val all_conditions : condition list

val condition_name : condition -> string
(** ["c1"] .. ["c7"]. *)

val condition_statement : condition -> string
(** The inequality, in the paper's notation. *)

(** Result of checking one condition. *)
type outcome = { condition : condition; ok : bool; detail : string }

val check_condition : Params.t -> condition -> outcome

val check : Params.t -> outcome list
(** All seven, in order. Raises [Invalid_argument] when N < 2 (Theorem 1
    requires at least two remote entities). *)

val all_ok : outcome list -> bool

val violated : outcome list -> condition list
(** The conditions that failed. *)

val satisfies : Params.t -> bool
(** [satisfies p] iff c1–c7 all hold — the hypothesis of Theorem 1. *)

val pp_outcome : outcome Fmt.t
val pp_report : outcome list Fmt.t
