lib/core/monitor.mli: Fmt Pte_hybrid Rules
