lib/core/rules.mli: Fmt Params
