lib/core/multi.ml: Array Automaton Constraints Edge Events Float Flow Fmt Guard Label List Location Params Pattern Pte_hybrid Reset String System
