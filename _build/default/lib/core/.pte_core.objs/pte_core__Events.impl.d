lib/core/events.ml:
