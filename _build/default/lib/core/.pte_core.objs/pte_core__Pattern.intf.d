lib/core/pattern.mli: Params Pte_hybrid
