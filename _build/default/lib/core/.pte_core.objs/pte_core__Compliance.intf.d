lib/core/compliance.mli: Constraints Fmt Params Pte_hybrid
