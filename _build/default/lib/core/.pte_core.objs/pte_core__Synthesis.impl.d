lib/core/synthesis.ml: Array Constraints Float Fmt List Params
