lib/core/constraints.mli: Fmt Params
