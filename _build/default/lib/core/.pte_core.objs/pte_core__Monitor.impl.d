lib/core/monitor.ml: Float Fmt List Pte_hybrid Rules
