lib/core/synthesis.mli: Constraints Fmt Params
