lib/core/multi.mli: Automaton Constraints Params Pte_hybrid System
