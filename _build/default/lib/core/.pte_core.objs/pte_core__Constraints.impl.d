lib/core/constraints.ml: Array Float Fmt List Params
