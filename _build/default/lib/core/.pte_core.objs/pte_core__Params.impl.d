lib/core/params.ml: Array Fmt String
