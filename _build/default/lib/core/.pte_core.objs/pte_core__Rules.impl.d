lib/core/rules.ml: Array Fmt List Params
