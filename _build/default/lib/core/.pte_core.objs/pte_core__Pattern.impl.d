lib/core/pattern.ml: Array Automaton Edge Events Flow Fmt Guard Label List Location Params Pte_hybrid Reset System
