lib/core/compliance.ml: Automaton Constraints Elaboration Fmt List Params Pattern Pte_hybrid String System
