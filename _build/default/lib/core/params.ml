(** Configuration constants of the lease design pattern (Section IV).

    These are the {e cyber} parameters Theorem 1 constrains: unlike the
    physical-world quantities, they are fully controllable in software,
    which is the whole point of the design pattern — PTE safety depends
    only on them. *)

(** Per remote entity ξi (i = 1..N; index N is the Initializer). *)
type entity = {
  name : string;
  t_enter_max : float;
      (** T^max_enter,i: dwell in "Entering" before "Risky Core". *)
  t_run_max : float;
      (** T^max_run,i: the lease proper — maximal dwell in "Risky Core". *)
  t_exit : float;  (** T_exit,i: exact dwell in "Exiting 1"/"Exiting 2". *)
}

(** Safeguard intervals required between consecutive entities ξi < ξi+1
    (Definition 1). *)
type safeguard = {
  enter_risky_min : float;  (** T^min_risky:i→i+1 (property p1). *)
  exit_safe_min : float;  (** T^min_safe:i+1→i (property p3). *)
}

type t = {
  supervisor : string;  (** name of ξ0 *)
  t_wait_max : float;  (** T^max_wait: supervisor per-step wait timeout. *)
  t_fb_min : float;  (** T^min_fb,0: supervisor Fall-Back cool-down. *)
  t_req_max : float;  (** T^max_req,N: initializer "Requesting" timeout. *)
  entities : entity array;
      (** ξ1 .. ξN in PTE order; [entities.(n-1)] is the Initializer. *)
  safeguards : safeguard array;  (** length N−1; [safeguards.(i)] sits
      between [entities.(i)] and [entities.(i+1)]. *)
}

let n t = Array.length t.entities

let initializer_ t = t.entities.(n t - 1)

let participants t = Array.sub t.entities 0 (n t - 1)

let entity t name =
  match Array.find_opt (fun e -> String.equal e.name name) t.entities with
  | Some e -> e
  | None -> Fmt.invalid_arg "no entity named %s" name

(** T^max_LS1 = T^max_enter,1 + T^max_run,1 + T_exit,1 (condition c2's
    left-hand side): the total lease span of the first — outermost —
    participant. *)
let t_ls1 t =
  let e1 = t.entities.(0) in
  e1.t_enter_max +. e1.t_run_max +. e1.t_exit

(** Theorem 1's bound on any entity's continuous risky dwelling:
    T^max_wait + T^max_LS1. *)
let risky_dwell_bound t = t.t_wait_max +. t_ls1 t

(** The case-study configuration of Section V (laser tracheotomy, N = 2:
    ξ1 = ventilator, ξ2 = laser-scalpel), with the paper's common-sense
    constants and safeguard intervals T^min_risky:1→2 = 3 s,
    T^min_safe:2→1 = 1.5 s. *)
let case_study =
  {
    supervisor = "supervisor";
    t_wait_max = 3.0;
    t_fb_min = 13.0;
    t_req_max = 5.0;
    entities =
      [|
        { name = "ventilator"; t_enter_max = 3.0; t_run_max = 35.0; t_exit = 6.0 };
        { name = "laser"; t_enter_max = 10.0; t_run_max = 20.0; t_exit = 1.5 };
      |];
    safeguards = [| { enter_risky_min = 3.0; exit_safe_min = 1.5 } |];
  }

let pp_entity ppf e =
  Fmt.pf ppf "%s: enter<=%g run<=%g exit=%g" e.name e.t_enter_max e.t_run_max
    e.t_exit

let pp ppf t =
  Fmt.pf ppf
    "@[<v>supervisor %s: wait<=%g fb>=%g req<=%g (T_LS1=%g, dwell bound %g)@,%a@]"
    t.supervisor t.t_wait_max t.t_fb_min t.t_req_max (t_ls1 t)
    (risky_dwell_bound t)
    (Fmt.list ~sep:Fmt.cut pp_entity)
    (Array.to_list t.entities)
