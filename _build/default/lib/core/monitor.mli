(** Trace monitor for PTE Safety Rules 1 and 2 — the measurement
    instrument behind the Table-I reproduction: a trial's "# of
    Failures" is {!episodes} of the trial's {!report}.

    The monitor extracts each entity's maximal continuous risky-dwelling
    intervals and checks: Rule 1 bounds their length; for each
    consecutive pair, every inner interval must be contained in an outer
    one (p2), whose start precedes it by T^min_risky (p1) and whose end
    follows it by T^min_safe (p3). Intervals still open at the horizon
    leave p3 (and truncated p1) unresolved rather than violated. *)

type violation =
  | Dwell_exceeded of {
      entity : string;
      start : float;
      stop : float;
      bound : float;
    }  (** Rule 1. *)
  | Not_embedded of {
      outer : string;
      inner : string;
      start : float;
      stop : float;
    }  (** Rule 2, p2. *)
  | Enter_safeguard of {
      outer : string;
      inner : string;
      inner_start : float;
      outer_start : float;
      required : float;
    }  (** Rule 2, p1. *)
  | Exit_safeguard of {
      outer : string;
      inner : string;
      inner_start : float;  (** identifies the inner episode *)
      inner_stop : float;
      outer_stop : float;
      required : float;
    }  (** Rule 2, p3. *)

type report = {
  horizon : float;
  intervals : (string * (float * float) list) list;
      (** risky intervals per entity, zero-gap-merged, in time order. *)
  violations : violation list;
}

val risky_intervals :
  Pte_hybrid.Trace.t ->
  entity:string ->
  risky:(string -> string -> bool) ->
  initial:(string -> string) ->
  horizon:float ->
  (float * float) list

val analyze :
  Pte_hybrid.Trace.t ->
  Rules.t ->
  risky:(string -> string -> bool) ->
  initial:(string -> string) ->
  horizon:float ->
  report
(** [risky entity location] and [initial entity] describe the per-entity
    location partition and starting location. *)

val analyze_system :
  Pte_hybrid.Trace.t -> Pte_hybrid.System.t -> Rules.t -> horizon:float -> report
(** Convenience: derive [risky]/[initial] from the system's automata. *)

val ok : report -> bool

val episodes : report -> int
(** Violation {e episodes}: distinct risky intervals implicated (two
    safeguard breaches of one inner interval count once), matching the
    paper's per-incident failure counting. *)

val pp_violation : violation Fmt.t
val pp_report : report Fmt.t
