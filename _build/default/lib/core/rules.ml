(** Specification of PTE safety rules (Section III).

    A {!t} captures everything the two rules quantify over:

    - {e Rule 1 (Bounded Dwelling)}: for each remote entity, an upper
      bound on continuous dwelling in risky-locations;
    - {e Rule 2 (Proper-Temporal-Embedding)}: the full order
      ξ1 < ξ2 < … < ξN together with, for each consecutive pair, the
      enter-risky safeguard T^min_risky:i→i+1 (Definition 1, p1) and the
      exit-risky safeguard T^min_safe:i+1→i (p3); p2 is the embedding
      itself. *)

type pair = {
  outer : string;  (** ξi: enters risky first, exits last. *)
  inner : string;  (** ξi+1. *)
  enter_risky_min : float;  (** T^min_risky:outer→inner. *)
  exit_safe_min : float;  (** T^min_safe:inner→outer. *)
}

type t = {
  order : string list;  (** ξ1 .. ξN. *)
  dwell_bounds : (string * float) list;  (** Rule 1, per entity. *)
  pairs : pair list;  (** consecutive pairs of [order]. *)
}

let make ~order ~dwell_bounds ~safeguards =
  let rec pairs_of = function
    | a :: (b :: _ as rest), (sg : Params.safeguard) :: sgs ->
        {
          outer = a;
          inner = b;
          enter_risky_min = sg.Params.enter_risky_min;
          exit_safe_min = sg.Params.exit_safe_min;
        }
        :: pairs_of (rest, sgs)
    | _ -> []
  in
  if List.length safeguards <> List.length order - 1 then
    invalid_arg "Rules.make: need one safeguard pair per consecutive pair";
  { order; dwell_bounds; pairs = pairs_of (order, safeguards) }

(** The specification induced by a pattern configuration, with Rule 1
    bounds set to Theorem 1's guarantee T^max_wait + T^max_LS1 (the
    tightest bound the theorem promises for every entity). *)
let of_params (p : Params.t) =
  let order =
    Array.to_list (Array.map (fun (e : Params.entity) -> e.Params.name) p.Params.entities)
  in
  let bound = Params.risky_dwell_bound p in
  make ~order
    ~dwell_bounds:(List.map (fun name -> (name, bound)) order)
    ~safeguards:(Array.to_list p.Params.safeguards)

(** Same, but with explicit application-level dwell bounds (the case
    study uses 60 s — "holding breath for <= 1 minute is always safe" —
    rather than the theorem's tighter guarantee). *)
let of_params_with_bounds (p : Params.t) ~dwell_bound =
  let spec = of_params p in
  {
    spec with
    dwell_bounds = List.map (fun (name, _) -> (name, dwell_bound)) spec.dwell_bounds;
  }

let dwell_bound t entity =
  match List.assoc_opt entity t.dwell_bounds with
  | Some b -> b
  | None -> infinity

let pp_pair ppf p =
  Fmt.pf ppf "%s < %s (enter>=%g, exit>=%g)" p.outer p.inner p.enter_risky_min
    p.exit_safe_min

let pp ppf t =
  Fmt.pf ppf "@[<v>PTE order: %a@,bounds: %a@,%a@]"
    Fmt.(list ~sep:(any " < ") string)
    t.order
    Fmt.(list ~sep:comma (pair ~sep:(any ":") string float))
    t.dwell_bounds
    Fmt.(list ~sep:cut pp_pair)
    t.pairs
