(** Configuration constants of the lease design pattern (Section IV).

    These are the {e cyber} parameters Theorem 1 constrains: unlike the
    physical-world quantities, they are fully controllable in software —
    which is the point of the design pattern: PTE safety depends only on
    them. *)

(** Per remote entity ξi (i = 1..N; index N is the Initializer). *)
type entity = {
  name : string;
  t_enter_max : float;
      (** T^max_enter,i: dwell in "Entering" before "Risky Core". *)
  t_run_max : float;
      (** T^max_run,i: the lease proper — maximal dwell in "Risky Core". *)
  t_exit : float;  (** T_exit,i: exact dwell in "Exiting 1"/"Exiting 2". *)
}

(** Safeguard intervals required between consecutive entities ξi < ξi+1
    (Definition 1). *)
type safeguard = {
  enter_risky_min : float;  (** T^min_risky:i→i+1 (property p1). *)
  exit_safe_min : float;  (** T^min_safe:i+1→i (property p3). *)
}

type t = {
  supervisor : string;  (** name of ξ0 *)
  t_wait_max : float;  (** T^max_wait: supervisor per-step wait timeout. *)
  t_fb_min : float;  (** T^min_fb,0: supervisor Fall-Back cool-down. *)
  t_req_max : float;  (** T^max_req,N: initializer "Requesting" timeout. *)
  entities : entity array;
      (** ξ1 .. ξN in PTE order; [entities.(n-1)] is the Initializer. *)
  safeguards : safeguard array;
      (** length N−1; [safeguards.(i)] sits between [entities.(i)] and
          [entities.(i+1)]. *)
}

val n : t -> int
(** Number of remote entities N (the supervisor ξ0 not counted). *)

val initializer_ : t -> entity
(** ξN. *)

val participants : t -> entity array
(** ξ1 .. ξN−1. *)

val entity : t -> string -> entity
(** Lookup by name. Raises [Invalid_argument] if absent. *)

val t_ls1 : t -> float
(** T^max_LS1 = T^max_enter,1 + T^max_run,1 + T_exit,1: the total lease
    span of the outermost participant (condition c2's left-hand side). *)

val risky_dwell_bound : t -> float
(** Theorem 1's bound on any entity's continuous risky dwelling:
    T^max_wait + T^max_LS1. *)

val case_study : t
(** The Section V laser-tracheotomy configuration (N = 2,
    ξ1 = "ventilator", ξ2 = "laser", the paper's constants, safeguards
    T^min_risky:1→2 = 3 s and T^min_safe:2→1 = 1.5 s). *)

val pp_entity : entity Fmt.t
val pp : t Fmt.t
