(** Trace monitor for PTE Safety Rules 1 and 2.

    Decides, from a recorded execution trace, whether a run satisfied the
    PTE safety rules of Section III. This is the measurement instrument
    behind the Table-I reproduction: a trial's "# of Failures" is the
    number of violation episodes this monitor reports.

    The monitor works on each entity's {e risky intervals} — maximal
    spans of continuous dwelling in risky-locations — because both rules
    quantify over exactly those: Rule 1 bounds their length; properties
    p1–p3 of Definition 1 relate the intervals of consecutive entities:

    - p2 requires every inner interval to be contained in an outer one;
    - p1 requires the covering outer interval to start at least
      T^min_risky:i→i+1 before the inner one;
    - p3 requires it to end at least T^min_safe:i+1→i after. *)

type violation =
  | Dwell_exceeded of {
      entity : string;
      start : float;
      stop : float;
      bound : float;
    }
  | Not_embedded of { outer : string; inner : string; start : float; stop : float }
  | Enter_safeguard of {
      outer : string;
      inner : string;
      inner_start : float;
      outer_start : float;
      required : float;
    }
  | Exit_safeguard of {
      outer : string;
      inner : string;
      inner_start : float;  (** identifies the inner episode *)
      inner_stop : float;
      outer_stop : float;
      required : float;
    }

type report = {
  horizon : float;
  intervals : (string * (float * float) list) list;
      (** Risky intervals per entity, merged and in time order. *)
  violations : violation list;
}

let tolerance = 1e-6

(* Merge intervals separated by a zero-length gap (instantaneous dispatch
   locations between two risky locations fire at one timestamp). *)
let merge_adjacent intervals =
  let rec go = function
    | (a, b) :: (c, d) :: rest when c -. b <= tolerance ->
        go ((a, Float.max b d) :: rest)
    | head :: rest -> head :: go rest
    | [] -> []
  in
  go intervals

let risky_intervals trace ~entity ~risky ~initial ~horizon =
  Pte_hybrid.Trace.intervals trace ~automaton:entity ~member:(risky entity)
    ~initial:(initial entity) ~horizon
  |> merge_adjacent
  |> List.filter (fun (a, b) -> b -. a > tolerance)

let check_rule1 (spec : Rules.t) intervals ~horizon:_ =
  List.concat_map
    (fun (entity, spans) ->
      let bound = Rules.dwell_bound spec entity in
      List.filter_map
        (fun (start, stop) ->
          if stop -. start > bound +. tolerance then
            Some (Dwell_exceeded { entity; start; stop; bound })
          else None)
        spans)
    intervals

let check_pair (pair : Rules.pair) ~outer_spans ~inner_spans ~horizon =
  List.concat_map
    (fun (s, e) ->
      (* the covering outer interval, if any (p2) *)
      let cover =
        List.find_opt
          (fun (a, b) -> a <= s +. tolerance && b +. tolerance >= e)
          outer_spans
      in
      match cover with
      | None ->
          [ Not_embedded { outer = pair.Rules.outer; inner = pair.Rules.inner;
                           start = s; stop = e } ]
      | Some (a, b) ->
          let p1 =
            (* outer must have been risky for T_risky before inner entered;
               an inner interval truncated at time 0 cannot be judged. *)
            if a > s -. pair.Rules.enter_risky_min +. tolerance && s > tolerance
            then
              [ Enter_safeguard
                  { outer = pair.Rules.outer; inner = pair.Rules.inner;
                    inner_start = s; outer_start = a;
                    required = pair.Rules.enter_risky_min } ]
            else []
          in
          let p3 =
            (* outer must stay risky for T_safe after inner exits; spans
               still open at the horizon are unresolved, not violations. *)
            if
              e < horizon -. tolerance
              && b < horizon -. tolerance
              && b < e +. pair.Rules.exit_safe_min -. tolerance
            then
              [ Exit_safeguard
                  { outer = pair.Rules.outer; inner = pair.Rules.inner;
                    inner_start = s; inner_stop = e; outer_stop = b;
                    required = pair.Rules.exit_safe_min } ]
            else []
          in
          p1 @ p3)
    inner_spans

let analyze trace (spec : Rules.t) ~risky ~initial ~horizon =
  let intervals =
    List.map
      (fun entity ->
        (entity, risky_intervals trace ~entity ~risky ~initial ~horizon))
      spec.Rules.order
  in
  let spans_of entity =
    match List.assoc_opt entity intervals with Some s -> s | None -> []
  in
  let rule1 = check_rule1 spec intervals ~horizon in
  let rule2 =
    List.concat_map
      (fun (pair : Rules.pair) ->
        check_pair pair
          ~outer_spans:(spans_of pair.Rules.outer)
          ~inner_spans:(spans_of pair.Rules.inner)
          ~horizon)
      spec.Rules.pairs
  in
  { horizon; intervals; violations = rule1 @ rule2 }

(** Convenience: derive [risky]/[initial] from the hybrid system's
    automata (risky-locations as declared on the automata). *)
let analyze_system trace (system : Pte_hybrid.System.t) spec ~horizon =
  let risky entity location =
    match Pte_hybrid.System.find system entity with
    | Some a -> Pte_hybrid.Automaton.is_risky a location
    | None -> false
  in
  let initial entity =
    (Pte_hybrid.System.find_exn system entity).Pte_hybrid.Automaton.initial_location
  in
  analyze trace spec ~risky ~initial ~horizon

let ok report = report.violations = []

(** Number of violation {e episodes}: distinct risky intervals implicated,
    matching the paper's per-incident failure counting. Two safeguard
    breaches of the same inner interval are one failure. *)
let episodes report =
  let key = function
    | Dwell_exceeded { entity; start; _ } -> (entity, start)
    | Not_embedded { inner; start; _ } -> (inner, start)
    | Enter_safeguard { inner; inner_start; _ } -> (inner, inner_start)
    | Exit_safeguard { inner; inner_start; _ } -> (inner, inner_start)
  in
  report.violations |> List.map key |> List.sort_uniq compare |> List.length

let pp_violation ppf = function
  | Dwell_exceeded { entity; start; stop; bound } ->
      Fmt.pf ppf "Rule 1: %s dwelt in risky-locations %.3f..%.3f (%.3fs > bound %.3fs)"
        entity start stop (stop -. start) bound
  | Not_embedded { outer; inner; start; stop } ->
      Fmt.pf ppf "Rule 2 (p2): %s risky %.3f..%.3f not embedded in %s" inner
        start stop outer
  | Enter_safeguard { outer; inner; inner_start; outer_start; required } ->
      Fmt.pf ppf
        "Rule 2 (p1): %s entered risky at %.3f only %.3fs after %s (need %.3fs)"
        inner inner_start (inner_start -. outer_start) outer required
  | Exit_safeguard { outer; inner; inner_stop; outer_stop; required; _ } ->
      Fmt.pf ppf
        "Rule 2 (p3): %s stayed risky only %.3fs after %s exited at %.3f (need %.3fs)"
        outer (outer_stop -. inner_stop) inner inner_stop required

let pp_report ppf report =
  if ok report then Fmt.pf ppf "PTE safety rules satisfied"
  else
    Fmt.pf ppf "@[<v>%d violation(s), %d episode(s):@,%a@]"
      (List.length report.violations)
      (episodes report)
      Fmt.(list ~sep:cut pp_violation)
      report.violations
