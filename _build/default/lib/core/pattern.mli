(** Builders for the lease-based design pattern automata (Section IV-A):
    Supervisor [Asupvsr] (Fig. 3), Initializer [Ainitzr] (Fig. 5a) and
    Participant [Aptcpnt,i] (Fig. 5b), parameterized by the configuration
    constants. See DESIGN.md §6 for the reconstruction decisions taken
    where the paper's figures are sketches. *)

(** {1 Conventional variable and location names} *)

val clock : string
(** Per-automaton location clock ["c"], reset on every edge. *)

val session_clock : string
(** Supervisor session clock ["ls"], started on leaving Fall-Back. *)

val fallback_clock : string
(** Supervisor clock ["fb"], reset on every entry to Fall-Back (guards
    the T^min_fb,0 cool-down). *)

val approval_var : string
(** Supervisor environment variable: ApprovalCondition holds iff >= 0.5.
    Written by a wired sensor coupling (e.g. the oximeter). *)

val participation_var : string
(** Participant environment variable: ParticipationCondition (L0's
    approve/deny decision) holds iff >= 0.5. *)

val fall_back : string
val requesting : string
val entering : string
val risky_core : string
val exiting1 : string
val exiting2 : string

val grant_loc : string -> string
val lease_loc : string -> string
val send_cancel_loc : string -> string
val cancel_loc : string -> string
val send_abort_loc : string -> string
val abort_loc : string -> string

(** {1 Role automata} *)

val supervisor : Params.t -> Pte_hybrid.Automaton.t
(** ξ0. All locations safe (the paper does not partition ξ0's). *)

val initializer_ : ?lease:bool -> Params.t -> Pte_hybrid.Automaton.t
(** ξN. [~lease:false] removes the "Risky Core" expiry transitions — the
    paper's "without Lease" baseline. *)

val participant : ?lease:bool -> Params.t -> index:int -> Pte_hybrid.Automaton.t
(** ξindex (1-based, 1..N−1). Raises [Invalid_argument] out of range. *)

(** {1 Assembly} *)

val system : ?lease:bool -> Params.t -> Pte_hybrid.System.t
(** The hybrid system H of Theorem 1: ξ0 + ξ1..ξN−1 + ξN. *)

val remotes : Params.t -> string list
(** Remote entity names in PTE order (for network setup). *)
