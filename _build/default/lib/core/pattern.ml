(** The lease-based design pattern automata (Section IV-A).

    Builders for the three roles — Supervisor ξ0 ([Asupvsr], Fig. 3),
    Initializer ξN ([Ainitzr], Fig. 5a) and Participant ξi
    ([Aptcpnt,i], Fig. 5b) — parameterized by the configuration constants
    of {!Params.t}.

    Where the paper compresses a receive-then-send step into one
    "transition", we materialize its footnote 2: an intermediate
    zero-dwell location whose egress edge carries the send label
    ("Grant …", "Send Cancel …", …). These instants dwell for 0 time
    (the executor fires their eager egress in the same instant).

    Reconstructions where the paper's figures are only sketched:

    - Participants confirm completed exits with an uplink event
      [evt_<p>_to_s_exited] (sent on the Exiting → Fall-Back step); the
      Initializer confirms aborts and lease expirations with
      [evt_<N>_to_s_exit], which the paper's abort-scenario analysis
      names explicitly. The supervisor descends its cancel/abort chain
      only on such confirmations — descending blindly after a timeout
      could order exits wrongly when a cancel is lost, exactly the
      failure mode the paper's §V scenario discusses.
    - While waiting for a confirmation the supervisor retransmits the
      cancel/abort every T^max_wait.
    - The supervisor carries its own lease: a session clock [ls] started
      when it leaves "Fall-Back"; when [ls] reaches
      T^max_wait + T^max_LS1 — the Theorem 1 bound by which every
      remote entity has provably self-reset — it abandons the chain and
      returns to "Fall-Back".

    The [~lease:false] variants reproduce the paper's "without Lease"
    baseline trials: the risky-core lease-expiry transitions of the
    remote entities are removed (their "Entering" procedure timers
    remain — only the risky-state leases are ablated, as in §V). *)

open Pte_hybrid

let clock = "c"
let session_clock = "ls"
let fallback_clock = "fb"
let approval_var = "approval"
let participation_var = "part"

(* location-name helpers *)
let fall_back = "Fall-Back"
let grant_loc name = "Grant " ^ name
let lease_loc name = "Lease " ^ name
let send_cancel_loc name = "Send Cancel " ^ name
let cancel_loc name = "Cancel " ^ name
let send_abort_loc name = "Send Abort " ^ name
let abort_loc name = "Abort " ^ name
let requesting = "Requesting"
let entering = "Entering"
let risky_core = "Risky Core"
let exiting1 = "Exiting 1"
let exiting2 = "Exiting 2"

let ge var bound = [ Guard.atom var Guard.Ge bound ]
let lt var bound = [ Guard.atom var Guard.Lt bound ]

let reset_clock = Reset.set clock 0.0

let edge ?guard ?reset ?label ?urgency src dst =
  Edge.make ?guard ?reset ?label ?urgency ~src ~dst ()

(** {1 Supervisor} *)

let supervisor (p : Params.t) =
  let n = Params.n p in
  let names =
    Array.map (fun (e : Params.entity) -> e.Params.name) p.Params.entities
  in
  let name i = names.(i - 1) (* 1-based, like the paper *) in
  let initializer_name = name n in
  let bailout_bound = Params.risky_dwell_bound p in
  let flow =
    Flow.Rates [ (clock, 1.0); (session_clock, 1.0); (fallback_clock, 1.0) ]
  in
  let loc ?(kind = Location.Safe) location_name =
    Location.make ~kind ~flow location_name
  in
  let locations =
    (* cancel-chain locations exist for participants only: the
       Initializer cancels itself (it is never sent a cancel), so the
       reverse-order cancel chain starts at ξN−1. Abort locations exist
       for every remote entity including ξN. *)
    [ loc fall_back ]
    @ List.concat
        (List.init n (fun idx ->
             let i = idx + 1 in
             [ loc (grant_loc (name i)); loc (lease_loc (name i));
               loc (send_abort_loc (name i)); loc (abort_loc (name i)) ]
             @
             if i < n then
               [ loc (send_cancel_loc (name i)); loc (cancel_loc (name i)) ]
             else []))
  in
  let to_fb ?guard ?label ?urgency src =
    edge ?guard ?label ?urgency
      ~reset:[ (clock, Reset.Set_const 0.0); (fallback_clock, Reset.Set_const 0.0) ]
      src fall_back
  in
  let bailout src = to_fb ~guard:(ge session_clock bailout_bound) src in
  let grant_edges i =
    (* instant: send the lease request (or the approval for ξN) *)
    let send_label =
      if i < n then Label.Send (Events.lease_req ~participant:(name i))
      else Label.Send (Events.approve ~initializer_:initializer_name)
    in
    [ edge ~label:send_label ~reset:reset_clock (grant_loc (name i))
        (lease_loc (name i)) ]
  in
  let lease_edges i =
    let here = lease_loc (name i) in
    let abort_here =
      edge ~guard:(lt approval_var 0.5) ~reset:reset_clock here
        (send_abort_loc (name i))
    in
    if i < n then
      [
        bailout here;
        abort_here;
        edge ~label:(Label.Recv_lossy (Events.lease_approve ~participant:(name i)))
          ~reset:reset_clock here
          (grant_loc (name (i + 1)));
        (if i = 1 then
           to_fb ~label:(Label.Recv_lossy (Events.lease_deny ~participant:(name i))) here
         else
           edge ~label:(Label.Recv_lossy (Events.lease_deny ~participant:(name i)))
             ~reset:reset_clock here
             (send_cancel_loc (name (i - 1))));
        edge ~label:(Label.Recv_lossy (Events.cancel_up ~initializer_:initializer_name))
          ~reset:reset_clock here
          (send_cancel_loc (name i));
        edge ~guard:(ge clock p.Params.t_wait_max) ~reset:reset_clock here
          (send_cancel_loc (name i));
      ]
    else
      (* Lease ξN: the session is granted. The supervisor leaves only on
         the initializer's cancel/exit, on an approval failure (abort
         chain), or via the session bailout. Deliberately {e no} dwell
         timeout here: if the initializer's messages are all lost, the
         rescue must come from the remote entities' own leases — that is
         the property the with/without-lease trials contrast. *)
      [
        bailout here;
        abort_here;
        edge ~label:(Label.Recv_lossy (Events.cancel_up ~initializer_:initializer_name))
          ~reset:reset_clock here
          (send_cancel_loc (name (n - 1)));
        edge ~label:(Label.Recv_lossy (Events.exit_up ~initializer_:initializer_name))
          ~reset:reset_clock here
          (send_cancel_loc (name (n - 1)));
      ]
  in
  let cancel_edges i =
    let dispatch =
      edge ~label:(Label.Send (Events.cancel_down ~entity:(name i)))
        ~reset:reset_clock
        (send_cancel_loc (name i))
        (cancel_loc (name i))
    in
    let here = cancel_loc (name i) in
    let confirmed =
      let label =
        Label.Recv_lossy (Events.exited_up ~participant:(name i))
      in
      if i = 1 then to_fb ~label here
      else edge ~label ~reset:reset_clock here (send_cancel_loc (name (i - 1)))
    in
    let retransmit =
      edge ~guard:(ge clock p.Params.t_wait_max) ~reset:reset_clock here
        (send_cancel_loc (name i))
    in
    [ dispatch; bailout here; confirmed; retransmit ]
  in
  let abort_edges i =
    let dispatch =
      edge ~label:(Label.Send (Events.abort_down ~entity:(name i)))
        ~reset:reset_clock
        (send_abort_loc (name i))
        (abort_loc (name i))
    in
    let here = abort_loc (name i) in
    let confirmation_label =
      if i = n then Label.Recv_lossy (Events.exit_up ~initializer_:initializer_name)
      else Label.Recv_lossy (Events.exited_up ~participant:(name i))
    in
    let confirmed =
      if i = 1 then to_fb ~label:confirmation_label here
      else
        edge ~label:confirmation_label ~reset:reset_clock here
          (send_abort_loc (name (i - 1)))
    in
    let retransmit =
      edge ~guard:(ge clock p.Params.t_wait_max) ~reset:reset_clock here
        (send_abort_loc (name i))
    in
    [ dispatch; bailout here; confirmed; retransmit ]
  in
  let grant_from_fb =
    edge
      ~label:(Label.Recv_lossy (Events.request ~initializer_:initializer_name))
      ~guard:(ge fallback_clock p.Params.t_fb_min @ ge approval_var 0.5)
      ~reset:
        [ (clock, Reset.Set_const 0.0); (session_clock, Reset.Set_const 0.0) ]
      fall_back (grant_loc (name 1))
  in
  (* Precautionary sweep: the ApprovalCondition failing while the
     supervisor believes all leases are clear means some remote entity
     may be stuck in a risky state (possible only when its lease was
     ablated, or after a chain was abandoned at the session bailout).
     Sweep a cancel chain through the participants, paced by the
     Fall-Back cool-down. *)
  let sweep_from_fb =
    edge
      ~guard:(lt approval_var 0.5 @ ge fallback_clock p.Params.t_fb_min)
      ~reset:
        [ (clock, Reset.Set_const 0.0); (session_clock, Reset.Set_const 0.0) ]
      fall_back
      (send_cancel_loc (name (n - 1)))
  in
  let edges =
    grant_from_fb :: sweep_from_fb
    :: List.concat
         (List.init n (fun idx ->
              let i = idx + 1 in
              grant_edges i @ lease_edges i @ abort_edges i
              @ if i < n then cancel_edges i else []))
  in
  Automaton.make ~name:p.Params.supervisor
    ~vars:[ clock; session_clock; fallback_clock; approval_var ]
    ~locations ~edges ~initial_location:fall_back
    ~initial_values:[ (approval_var, 1.0) ]
    ()

(** {1 Initializer} *)

let initializer_ ?(lease = true) (p : Params.t) =
  let e = Params.initializer_ p in
  let me = e.Params.name in
  let flow = Flow.Rates [ (clock, 1.0) ] in
  let loc ?(kind = Location.Safe) location_name =
    Location.make ~kind ~flow location_name
  in
  let send_req = "Send Req" in
  let send_cancel_req = "Send Cancel (requesting)" in
  let send_cancel_entering = "Send Cancel (entering)" in
  let send_exit_entering = "Send Exit (entering)" in
  let send_cancel_risky = "Send Cancel (risky)" in
  let send_exit_abort = "Send Exit (abort)" in
  let lease_expired = "Lease Expired" in
  let send_exit_expired = "Send Exit (expired)" in
  let locations =
    [
      loc fall_back; loc send_req; loc requesting; loc entering;
      loc send_cancel_req; loc send_cancel_entering; loc send_exit_entering;
      loc ~kind:Location.Risky risky_core;
      loc ~kind:Location.Risky send_cancel_risky;
      loc ~kind:Location.Risky send_exit_abort;
      loc ~kind:Location.Risky lease_expired;
      loc ~kind:Location.Risky send_exit_expired;
      loc ~kind:Location.Risky exiting1;
      loc exiting2;
    ]
  in
  let stim_request = Events.stim_request ~initializer_:me in
  let stim_cancel = Events.stim_cancel ~initializer_:me in
  let expiry_edges =
    if lease then
      [
        edge ~guard:(ge clock e.Params.t_run_max) ~reset:reset_clock risky_core
          lease_expired;
        edge ~label:(Label.Internal (Events.to_stop ~entity:me)) lease_expired
          send_exit_expired;
        edge ~label:(Label.Send (Events.exit_up ~initializer_:me))
          ~reset:reset_clock send_exit_expired exiting1;
      ]
    else []
  in
  let edges =
    [
      (* Fall-Back: the surgeon may request at any time (env stimulus). *)
      edge ~label:(Label.Recv stim_request) ~reset:reset_clock fall_back
        send_req;
      edge ~label:(Label.Send (Events.request ~initializer_:me))
        ~reset:reset_clock send_req requesting;
      (* Requesting *)
      edge ~label:(Label.Recv stim_cancel) ~reset:reset_clock requesting
        send_cancel_req;
      edge ~label:(Label.Send (Events.cancel_up ~initializer_:me))
        ~reset:reset_clock send_cancel_req fall_back;
      edge ~guard:(ge clock p.Params.t_req_max) ~reset:reset_clock requesting
        fall_back;
      edge ~label:(Label.Recv_lossy (Events.approve ~initializer_:me))
        ~reset:reset_clock requesting entering;
      (* Entering *)
      edge ~label:(Label.Recv stim_cancel) ~reset:reset_clock entering
        send_cancel_entering;
      edge ~label:(Label.Send (Events.cancel_up ~initializer_:me))
        ~reset:reset_clock send_cancel_entering exiting2;
      edge ~label:(Label.Recv_lossy (Events.abort_down ~entity:me))
        ~reset:reset_clock entering send_exit_entering;
      edge ~label:(Label.Send (Events.exit_up ~initializer_:me))
        ~reset:reset_clock send_exit_entering exiting2;
      edge ~guard:(ge clock e.Params.t_enter_max) ~reset:reset_clock entering
        risky_core;
      (* Risky Core *)
      edge ~label:(Label.Recv stim_cancel) ~reset:reset_clock risky_core
        send_cancel_risky;
      edge ~label:(Label.Send (Events.cancel_up ~initializer_:me))
        ~reset:reset_clock send_cancel_risky exiting1;
      edge ~label:(Label.Recv_lossy (Events.abort_down ~entity:me))
        ~reset:reset_clock risky_core send_exit_abort;
      edge ~label:(Label.Send (Events.exit_up ~initializer_:me))
        ~reset:reset_clock send_exit_abort exiting1;
    ]
    @ expiry_edges
    @ [
        (* Exiting: dwell exactly T_exit,N, then back to Fall-Back. *)
        edge ~guard:(ge clock e.Params.t_exit) ~reset:reset_clock exiting1
          fall_back;
        edge ~guard:(ge clock e.Params.t_exit) ~reset:reset_clock exiting2
          fall_back;
      ]
  in
  Automaton.make ~name:me ~vars:[ clock ] ~locations ~edges
    ~initial_location:fall_back ()

(** {1 Participant} *)

let participant ?(lease = true) (p : Params.t) ~index =
  if index < 1 || index > Params.n p - 1 then
    Fmt.invalid_arg "participant index %d out of range 1..%d" index
      (Params.n p - 1);
  let e = p.Params.entities.(index - 1) in
  let me = e.Params.name in
  let flow = Flow.Rates [ (clock, 1.0) ] in
  let loc ?(kind = Location.Safe) location_name =
    Location.make ~kind ~flow location_name
  in
  let l0 = "L0" in
  let send_approve = "Send Approve" in
  let send_deny = "Send Deny" in
  let lease_expired = "Lease Expired" in
  let send_exited_1 = "Send Exited 1" in
  let send_exited_2 = "Send Exited 2" in
  let locations =
    [
      loc fall_back; loc "Send Exited (idle)"; loc l0; loc send_approve;
      loc send_deny; loc entering;
      loc ~kind:Location.Risky risky_core;
      loc ~kind:Location.Risky lease_expired;
      loc ~kind:Location.Risky exiting1;
      loc exiting2; loc send_exited_1; loc send_exited_2;
    ]
  in
  let cancel = Events.cancel_down ~entity:me in
  let abort = Events.abort_down ~entity:me in
  let expiry_edges =
    if lease then
      [
        edge ~guard:(ge clock e.Params.t_run_max) ~reset:reset_clock risky_core
          lease_expired;
        edge ~label:(Label.Internal (Events.lease_expired ~entity:me))
          lease_expired exiting1;
      ]
    else []
  in
  let idle_ack = "Send Exited (idle)" in
  let edges =
    [
      edge ~label:(Label.Recv_lossy (Events.lease_req ~participant:me))
        ~reset:reset_clock fall_back l0;
      (* Idle acks: a cancel/abort reaching a participant that is already
         back in Fall-Back is answered with the exited confirmation, so a
         supervisor chain never stalls on a participant that has nothing
         left to do. (The Initializer deliberately has no such ack: the
         paper's §V scenario analyses the supervisor stalling on a lost
         evtξN→ξ0Exit.) *)
      edge ~label:(Label.Recv_lossy cancel) fall_back idle_ack;
      edge ~label:(Label.Recv_lossy abort) fall_back idle_ack;
      edge ~label:(Label.Send (Events.exited_up ~participant:me)) idle_ack
        fall_back;
      (* L0: decide on the ParticipationCondition. *)
      edge ~guard:(ge participation_var 0.5) l0 send_approve;
      edge ~guard:(lt participation_var 0.5) l0 send_deny;
      edge ~label:(Label.Send (Events.lease_approve ~participant:me))
        ~reset:reset_clock send_approve entering;
      edge ~label:(Label.Send (Events.lease_deny ~participant:me))
        ~reset:reset_clock send_deny fall_back;
      (* Entering *)
      edge ~label:(Label.Recv_lossy cancel) ~reset:reset_clock entering exiting2;
      edge ~label:(Label.Recv_lossy abort) ~reset:reset_clock entering exiting2;
      edge ~guard:(ge clock e.Params.t_enter_max) ~reset:reset_clock entering
        risky_core;
      (* Risky Core *)
      edge ~label:(Label.Recv_lossy cancel) ~reset:reset_clock risky_core
        exiting1;
      edge ~label:(Label.Recv_lossy abort) ~reset:reset_clock risky_core
        exiting1;
    ]
    @ expiry_edges
    @ [
        edge ~guard:(ge clock e.Params.t_exit) ~reset:reset_clock exiting1
          send_exited_1;
        edge ~label:(Label.Send (Events.exited_up ~participant:me))
          ~reset:reset_clock send_exited_1 fall_back;
        edge ~guard:(ge clock e.Params.t_exit) ~reset:reset_clock exiting2
          send_exited_2;
        edge ~label:(Label.Send (Events.exited_up ~participant:me))
          ~reset:reset_clock send_exited_2 fall_back;
      ]
  in
  Automaton.make ~name:me ~vars:[ clock; participation_var ] ~locations ~edges
    ~initial_location:fall_back
    ~initial_values:[ (participation_var, 1.0) ]
    ()

(** {1 Whole-system assembly} *)

(** The hybrid system H of Theorem 1: ξ0 as Supervisor, ξN as
    Initializer, ξ1..ξN−1 as Participants. [~lease:false] gives the
    baseline used by the paper's "without Lease" trials. *)
let system ?(lease = true) (p : Params.t) =
  let n = Params.n p in
  let participants =
    List.init (n - 1) (fun idx -> participant ~lease p ~index:(idx + 1))
  in
  System.make ~name:"pte-lease-pattern"
    ((supervisor p :: participants) @ [ initializer_ ~lease p ])

(** Names of the remote entities, in PTE order (for network setup). *)
let remotes (p : Params.t) =
  Array.to_list
    (Array.map (fun (e : Params.entity) -> e.Params.name) p.Params.entities)
