(** Event-root naming conventions for the lease design pattern.

    One place defines every synchronization root exchanged between the
    Supervisor, Initializer and Participants, so that the pattern
    builders, the trial metrics, the failure-injection tests and the
    model checker all agree on names. Roots embed the entity name; the
    full labels add the [!]/[?]/[??] prefixes per automaton role. *)

(* Uplink: initializer ξN -> supervisor ξ0. *)

let request ~initializer_ = "evt_" ^ initializer_ ^ "_to_s_req"
let cancel_up ~initializer_ = "evt_" ^ initializer_ ^ "_to_s_cancel"

(** Sent by the initializer when it leaves "Risky Core"/"Entering" due to
    abort or lease expiry, so the supervisor can descend the abort chain
    (the paper's evtξ2Toξ0Exit). *)
let exit_up ~initializer_ = "evt_" ^ initializer_ ^ "_to_s_exit"

(* Uplink: participant ξi -> supervisor ξ0. *)

let lease_approve ~participant = "evt_" ^ participant ^ "_to_s_lease_approve"
let lease_deny ~participant = "evt_" ^ participant ^ "_to_s_lease_deny"

(** Sent by a participant when its exit completes (it re-enters
    "Fall-Back"), confirming the cancel/abort chain may descend. *)
let exited_up ~participant = "evt_" ^ participant ^ "_to_s_exited"

(* Downlink: supervisor ξ0 -> remote ξi. *)

let lease_req ~participant = "evt_s_to_" ^ participant ^ "_lease_req"
let approve ~initializer_ = "evt_s_to_" ^ initializer_ ^ "_approve"
let cancel_down ~entity = "evt_s_to_" ^ entity ^ "_cancel"
let abort_down ~entity = "evt_s_to_" ^ entity ^ "_abort"

(* Environment stimuli (never cross the wireless network; injected by
   scenarios, mirroring the paper's emulated surgeon timers Ton/Toff). *)

let stim_request ~initializer_ = "stim_" ^ initializer_ ^ "_request"
let stim_cancel ~initializer_ = "stim_" ^ initializer_ ^ "_cancel"

(* Internal markers (trace-only; no receiver). *)

(** The paper's evtToStop: "lease expiration forces the laser-scalpel to
    stop emitting". Counting these measures how often the lease mechanism
    rescued the system. *)
let to_stop ~entity = "evt_to_stop_" ^ entity

(** Marks a participant's lease expiring in "Risky Core". *)
let lease_expired ~entity = "evt_lease_expired_" ^ entity
