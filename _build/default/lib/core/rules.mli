(** Specification of the PTE safety rules (Section III).

    A {!t} captures everything Rules 1 and 2 quantify over: the full
    order ξ1 < … < ξN, per-entity bounds on continuous risky dwelling,
    and per consecutive pair the enter-risky safeguard T^min_risky:i→i+1
    (Definition 1, p1) and the exit-risky safeguard T^min_safe:i+1→i
    (p3); p2 is the embedding itself. *)

(** One consecutive pair of the full order. *)
type pair = {
  outer : string;  (** ξi: enters risky first, exits last. *)
  inner : string;  (** ξi+1. *)
  enter_risky_min : float;  (** T^min_risky:outer→inner. *)
  exit_safe_min : float;  (** T^min_safe:inner→outer. *)
}

type t = {
  order : string list;  (** ξ1 .. ξN. *)
  dwell_bounds : (string * float) list;  (** Rule 1, per entity. *)
  pairs : pair list;  (** consecutive pairs of [order]. *)
}

val make :
  order:string list ->
  dwell_bounds:(string * float) list ->
  safeguards:Params.safeguard list ->
  t
(** Raises [Invalid_argument] unless there is exactly one safeguard per
    consecutive pair. *)

val of_params : Params.t -> t
(** The spec induced by a configuration, with Rule 1 bounds set to the
    Theorem 1 guarantee {!Params.risky_dwell_bound}. *)

val of_params_with_bounds : Params.t -> dwell_bound:float -> t
(** Same, with an explicit application-level dwell bound (the case study
    uses 60 s — "holding breath for <= 1 minute is always safe"). *)

val dwell_bound : t -> string -> float
(** [infinity] for entities without a declared bound. *)

val pp_pair : pair Fmt.t
val pp : t Fmt.t
