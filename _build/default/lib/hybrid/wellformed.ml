(** Static sufficient checks for the paper's standing assumptions: every
    hybrid automaton is {e time-block-free} (time can always either
    elapse or a transition fire) and {e non-zeno} (no infinite discrete
    activity in finite time). Exact checks are undecidable in general;
    these are conservative syntactic criteria that the pattern automata
    satisfy and that catch typical modeling slips.

    The paper (footnote 3) asserts the pattern automata are
    time-block-free and non-zeno whenever c1–c7 hold; these checks
    mechanize the easy half of that claim. *)

type issue =
  | Possible_time_block of { location : string; reason : string }
      (** A location whose invariant can expire with no spontaneous
          egress that is certainly enabled at the boundary. *)
  | Possible_zeno_cycle of { locations : string list }
      (** A cycle of edges that can be traversed without time passing
          (all-eager, no lower-bound guard on any reset-fresh clock). *)

let pp_issue ppf = function
  | Possible_time_block { location; reason } ->
      Fmt.pf ppf "possible time-block at %S: %s" location reason
  | Possible_zeno_cycle { locations } ->
      Fmt.pf ppf "possible zeno cycle through %a"
        Fmt.(list ~sep:(any " -> ") string)
        locations

(* Invariant atoms whose boundary the flow can actually reach: an upper
   bound expires under a positive rate, a lower bound under a negative
   one; frozen variables never expire a satisfied atom. ODE flows are
   treated conservatively (every atom may expire). *)
let expirable_bounds (l : Location.t) =
  let rate var =
    match l.Location.flow with
    | Flow.Rates rates -> (
        match List.assoc_opt var rates with Some r -> Some r | None -> Some 0.0)
    | Flow.Ode _ -> None
  in
  List.filter
    (fun (a : Guard.atom) ->
      match (a.Guard.cmp, rate a.Guard.var) with
      | _, None -> true (* ODE: conservative *)
      | (Guard.Lt | Guard.Le), Some r -> r > Guard.eps
      | (Guard.Gt | Guard.Ge), Some r -> r < -.Guard.eps
      | Guard.Eq, Some r -> Float.abs r > Guard.eps)
    l.Location.invariant

(* Does [guard] certainly hold when [bound]'s variable sits exactly at
   the boundary value? Conservative: every guard atom must constrain the
   same variable and hold at that value. *)
let enabled_at_boundary (bound : Guard.atom) guard =
  List.for_all
    (fun (g : Guard.atom) ->
      String.equal g.Guard.var bound.Guard.var
      && Guard.atom_holds g bound.Guard.bound)
    guard

(** Time-block check: every location whose invariant has a reachable
    boundary must have a spontaneous egress edge enabled there. *)
let check_time_block_free (a : Automaton.t) =
  List.filter_map
    (fun (l : Location.t) ->
      match expirable_bounds l with
      | [] -> None
      | bounds ->
          let edges = Automaton.edges_from a l.Location.name in
          let saved =
            List.for_all
              (fun bound ->
                List.exists
                  (fun (e : Edge.t) ->
                    Edge.is_spontaneous e
                    && enabled_at_boundary bound e.Edge.guard)
                  edges)
              bounds
          in
          if saved then None
          else
            Some
              (Possible_time_block
                 {
                   location = l.Location.name;
                   reason =
                     Fmt.str "invariant (%a) can expire with no matching egress"
                       Guard.pp l.Location.invariant;
                 }))
    a.Automaton.locations

(* An edge is "timed" (cannot be part of a zero-time cycle) when its
   guard contains a strictly positive lower bound on a variable that some
   edge of the cycle resets — conservatively: a positive lower bound on
   any variable it does not itself reset to a satisfying value. We use an
   even simpler criterion: a positive lower-bound atom makes the edge
   timed, because pattern-style cycles always reset their clock when
   entering the cycle. *)
let is_timed (e : Edge.t) =
  List.exists
    (fun (g : Guard.atom) ->
      match g.Guard.cmp with
      | Guard.Ge | Guard.Gt -> g.Guard.bound > Guard.eps
      | Guard.Le | Guard.Lt | Guard.Eq -> false)
    e.Edge.guard

(** Non-zeno check: no cycle of spontaneous {e untimed} edges. Triggered
    edges need an external event per traversal and are excluded (zeno
    behaviour through them requires a zeno sender, caught at that
    sender). *)
let check_non_zeno (a : Automaton.t) =
  let untimed_successors location =
    List.filter_map
      (fun (e : Edge.t) ->
        if Edge.is_spontaneous e && not (is_timed e) then Some e.Edge.dst
        else None)
      (Automaton.edges_from a location)
  in
  (* DFS cycle detection over the untimed-edge graph *)
  let states = Hashtbl.create 16 in
  let issue = ref None in
  let rec visit path location =
    if !issue <> None then ()
    else
      match Hashtbl.find_opt states location with
      | Some `Done -> ()
      | Some `Active ->
          let cycle =
            let rec cut = function
              | [] -> [ location ]
              | l :: rest ->
                  if String.equal l location then [ l ]
                  else l :: cut rest
            in
            List.rev (cut path)
          in
          issue := Some (Possible_zeno_cycle { locations = cycle @ [ location ] })
      | None ->
          Hashtbl.replace states location `Active;
          List.iter (visit (location :: path)) (untimed_successors location);
          Hashtbl.replace states location `Done
  in
  List.iter (fun (l : Location.t) -> visit [] l.Location.name) a.Automaton.locations;
  match !issue with Some i -> [ i ] | None -> []

(** Both checks. An empty list is a (conservative) certificate that the
    automaton is time-block-free and non-zeno. *)
let check (a : Automaton.t) = check_time_block_free a @ check_non_zeno a
