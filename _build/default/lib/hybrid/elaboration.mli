(** Elaboration of hybrid automata (Section IV-C): expand a location [v]
    of a pattern automaton [A] with an independent {e simple} child
    automaton [A'], producing [A'' = E(A, v, A')] — ingress edges
    retarget to the child's initial location, egress edges leave from
    every child location, [A]'s variables keep [v]'s dynamics inside the
    child, the child's variables are frozen outside. *)

type error =
  | Not_independent of string * string  (** Definition 2 fails *)
  | Not_simple of string  (** Definition 3 fails *)
  | No_such_location of string * string
  | Duplicate_target of string

val pp_error : error Fmt.t

val atomic : Automaton.t -> string -> Automaton.t -> (Automaton.t, error) result
(** [atomic a v child] is [E(a, v, child)]. Child locations inherit the
    safe/risky kind of [v]. *)

val atomic_exn : Automaton.t -> string -> Automaton.t -> Automaton.t

val parallel :
  Automaton.t -> (string * Automaton.t) list -> (Automaton.t, error) result
(** [E(A, (v1..vk), (A1..Ak))]: repeated atomic elaboration at distinct
    locations. *)

val parallel_exn : Automaton.t -> (string * Automaton.t) list -> Automaton.t

val elaborates : pattern:Automaton.t -> design:Automaton.t -> bool
(** Structural audit used by Theorem 2 compliance: every surviving
    pattern location/edge/variable appears unchanged in the design. *)
