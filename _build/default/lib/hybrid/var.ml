(** Data state variable names.

    A hybrid automaton's data state variables vector [~x(t)] (paper,
    Section II-A, item 1) is indexed by symbolic names. Names are local to
    their automaton: the paper's system model (Section II-B) assumes no
    shared data state variables between member automata of a hybrid
    system, which we enforce in {!Automaton.independent}. *)

type t = string

let compare = String.compare
let equal = String.equal
let pp = Fmt.string

module Set = Set.Make (String)
module Map = Map.Make (String)

(** [fresh ~base used] returns a name derived from [base] that does not
    appear in [used]. Used by elaboration when renaming would otherwise be
    needed; the paper instead requires independence, so this is only a
    convenience for test-fixture construction. *)
let fresh ~base used =
  if not (Set.mem base used) then base
  else
    let rec go i =
      let candidate = Printf.sprintf "%s_%d" base i in
      if Set.mem candidate used then go (i + 1) else candidate
    in
    go 1
