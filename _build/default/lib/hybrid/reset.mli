(** Reset functions (Section II-A item 7): deterministic simultaneous
    assignments applied on a transition; the identity reset is the empty
    list (omitted from the paper's figures). *)

type assignment =
  | Set_const of float  (** [x := c] *)
  | Add_const of float  (** [x := x + c] *)
  | Copy of Var.t  (** [x := y] *)

type t = (Var.t * assignment) list

val identity : t
val set : Var.t -> float -> t
val zero : Var.t list -> t

val apply : t -> Valuation.t -> Valuation.t
(** All right-hand sides read the pre-transition valuation. *)

val vars : t -> Var.Set.t
val pp : t Fmt.t
