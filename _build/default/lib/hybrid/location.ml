(** Locations (vertices) of a hybrid automaton.

    Each location carries its invariant set and flow map (Section II-A,
    items 2–4) plus the safe/risky partition of Section III: the PTE
    rules are stated over each remote entity's partition
    [V_i = V_i^safe ∪ V_i^risky]. The supervisor's locations are not
    partitioned by the paper; we mark them all {!Safe}. *)

type kind = Safe | Risky

type t = {
  name : string;
  kind : kind;
  invariant : Guard.t;
  flow : Flow.t;
}

let make ?(kind = Safe) ?(invariant = Guard.always) ?(flow = Flow.frozen) name
    =
  { name; kind; invariant; flow }

let is_risky location = location.kind = Risky

let pp_kind ppf = function
  | Safe -> Fmt.string ppf "safe"
  | Risky -> Fmt.string ppf "risky"

let pp ppf l =
  Fmt.pf ppf "%s [%a] inv:(%a) flow:(%a)" l.name pp_kind l.kind Guard.pp
    l.invariant Flow.pp l.flow
