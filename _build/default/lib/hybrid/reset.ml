(** Reset functions.

    The paper's reset function [r_e] maps the data state at the source of
    an edge to a new data state at the destination (Section II-A, item
    7). The design-pattern automata only ever reset clocks to zero or
    keep variables unchanged, so we restrict to deterministic assignment
    lists; the identity reset is the empty list, matching the paper's
    convention of omitting identity resets from figures. *)

type assignment =
  | Set_const of float  (** [x := c] — e.g. restarting a lease clock. *)
  | Add_const of float  (** [x := x + c]. *)
  | Copy of Var.t       (** [x := y]. *)

type t = (Var.t * assignment) list

let identity : t = []

let set var value : t = [ (var, Set_const value) ]

let zero vars : t = List.map (fun v -> (v, Set_const 0.0)) vars

let apply reset valuation =
  (* All right-hand sides read the pre-transition valuation, i.e. the
     assignments are simultaneous, as in the formal definition. *)
  List.fold_left
    (fun acc (var, assignment) ->
      let value =
        match assignment with
        | Set_const c -> c
        | Add_const c -> Valuation.get valuation var +. c
        | Copy src -> Valuation.get valuation src
      in
      Valuation.set acc var value)
    valuation reset

let vars reset =
  List.fold_left
    (fun acc (var, assignment) ->
      let acc = Var.Set.add var acc in
      match assignment with Copy src -> Var.Set.add src acc | _ -> acc)
    Var.Set.empty reset

let pp ppf = function
  | [] -> Fmt.string ppf "id"
  | assignments ->
      let pp_one ppf (var, a) =
        match a with
        | Set_const c -> Fmt.pf ppf "%s:=%g" var c
        | Add_const c -> Fmt.pf ppf "%s:=%s+%g" var var c
        | Copy src -> Fmt.pf ppf "%s:=%s" var src
      in
      Fmt.list ~sep:(Fmt.any "; ") pp_one ppf assignments
