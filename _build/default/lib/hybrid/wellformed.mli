(** Conservative static checks for the paper's standing assumptions
    (footnote 3): time-block freedom and non-zenoness. An empty issue
    list is a sufficient (not necessary) certificate; the pattern
    automata pass both checks. *)

type issue =
  | Possible_time_block of { location : string; reason : string }
      (** The invariant can expire with no spontaneous egress certainly
          enabled at the reachable boundary. *)
  | Possible_zeno_cycle of { locations : string list }
      (** A cycle of spontaneous edges traversable without time passing. *)

val pp_issue : issue Fmt.t

val check_time_block_free : Automaton.t -> issue list
val check_non_zeno : Automaton.t -> issue list
val check : Automaton.t -> issue list
