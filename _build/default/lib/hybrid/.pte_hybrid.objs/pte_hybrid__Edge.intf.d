lib/hybrid/edge.mli: Fmt Guard Label Reset
