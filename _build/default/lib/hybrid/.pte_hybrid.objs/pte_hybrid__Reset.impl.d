lib/hybrid/reset.ml: Fmt List Valuation Var
