lib/hybrid/flow.mli: Fmt Valuation Var
