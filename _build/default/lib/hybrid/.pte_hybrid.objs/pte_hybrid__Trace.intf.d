lib/hybrid/trace.mli: Fmt Label Var
