lib/hybrid/elaboration.mli: Automaton Fmt
