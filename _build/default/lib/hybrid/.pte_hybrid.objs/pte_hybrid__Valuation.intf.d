lib/hybrid/valuation.mli: Fmt Var
