lib/hybrid/elaboration.ml: Automaton Edge Flow Fmt List Location String Var
