lib/hybrid/label.mli: Fmt
