lib/hybrid/automaton.ml: Edge Fmt Guard Label List Location Printf Reset String Valuation Var
