lib/hybrid/wellformed.ml: Automaton Edge Float Flow Fmt Guard Hashtbl List Location String
