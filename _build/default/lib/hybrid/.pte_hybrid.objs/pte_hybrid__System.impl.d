lib/hybrid/system.ml: Automaton Fmt List String Var
