lib/hybrid/executor.mli: System Trace Valuation Var
