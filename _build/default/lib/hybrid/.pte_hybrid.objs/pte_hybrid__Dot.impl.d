lib/hybrid/dot.ml: Automaton Edge Fmt Fun Guard Label List Location Reset String
