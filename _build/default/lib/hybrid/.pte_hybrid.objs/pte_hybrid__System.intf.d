lib/hybrid/system.mli: Automaton Fmt
