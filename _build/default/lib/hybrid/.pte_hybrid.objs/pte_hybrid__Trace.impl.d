lib/hybrid/trace.ml: Float Fmt Label List String Var
