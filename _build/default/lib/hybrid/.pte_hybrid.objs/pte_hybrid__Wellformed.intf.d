lib/hybrid/wellformed.mli: Automaton Fmt
