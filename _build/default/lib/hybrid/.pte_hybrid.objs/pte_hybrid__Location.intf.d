lib/hybrid/location.mli: Flow Fmt Guard
