lib/hybrid/flow.ml: Fmt List Valuation Var
