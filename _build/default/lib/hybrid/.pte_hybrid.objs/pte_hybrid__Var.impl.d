lib/hybrid/var.ml: Fmt Map Printf Set String
