lib/hybrid/dot.mli: Automaton Fmt
