lib/hybrid/edge.ml: Fmt Guard Label Reset
