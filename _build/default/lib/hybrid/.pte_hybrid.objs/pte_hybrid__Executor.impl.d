lib/hybrid/executor.ml: Automaton Edge Flow Fmt Guard Hashtbl Label List Location Reset String System Trace Valuation Var
