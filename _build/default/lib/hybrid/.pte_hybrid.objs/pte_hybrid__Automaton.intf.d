lib/hybrid/automaton.mli: Edge Fmt Label Location Valuation Var
