lib/hybrid/location.ml: Flow Fmt Guard
