lib/hybrid/guard.ml: Float Fmt List Valuation Var
