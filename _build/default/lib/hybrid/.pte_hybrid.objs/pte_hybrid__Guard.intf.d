lib/hybrid/guard.mli: Fmt Valuation Var
