lib/hybrid/reset.mli: Fmt Valuation Var
