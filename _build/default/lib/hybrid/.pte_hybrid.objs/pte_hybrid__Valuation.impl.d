lib/hybrid/valuation.ml: Float Fmt List Option Var
