lib/hybrid/var.mli: Fmt Map Set
