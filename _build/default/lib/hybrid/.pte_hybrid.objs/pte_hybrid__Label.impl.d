lib/hybrid/label.ml: Fmt String
