(** Graphviz export for hybrid automata, for inspecting generated pattern
    automata and their elaborations (the repository's analogue of the
    paper's Figs. 2–6). *)

let escape s =
  String.concat "\\\""
    (String.split_on_char '"' s)

let automaton ppf (a : Automaton.t) =
  Fmt.pf ppf "digraph \"%s\" {\n" (escape a.Automaton.name);
  Fmt.pf ppf "  rankdir=LR;\n  node [shape=box, style=rounded];\n";
  List.iter
    (fun (l : Location.t) ->
      let color =
        if Location.is_risky l then ", color=red, penwidth=2.0" else ""
      in
      let invariant =
        if l.Location.invariant = Guard.always then ""
        else Fmt.str "\\n%a" Guard.pp l.Location.invariant
      in
      Fmt.pf ppf "  \"%s\" [label=\"%s%s\"%s];\n" (escape l.Location.name)
        (escape l.Location.name) (escape invariant) color)
    a.Automaton.locations;
  Fmt.pf ppf "  \"__init\" [shape=point];\n";
  Fmt.pf ppf "  \"__init\" -> \"%s\";\n" (escape a.Automaton.initial_location);
  List.iter
    (fun (e : Edge.t) ->
      let label =
        let guard =
          if e.Edge.guard = Guard.always then ""
          else Fmt.str "%a" Guard.pp e.Edge.guard
        in
        let sync =
          match e.Edge.label with
          | None -> ""
          | Some l -> Fmt.str "%a" Label.pp l
        in
        let reset =
          if e.Edge.reset = Reset.identity then ""
          else Fmt.str "%a" Reset.pp e.Edge.reset
        in
        String.concat "\\n"
          (List.filter (fun s -> s <> "") [ guard; sync; reset ])
      in
      Fmt.pf ppf "  \"%s\" -> \"%s\" [label=\"%s\"];\n" (escape e.Edge.src)
        (escape e.Edge.dst) (escape label))
    a.Automaton.edges;
  Fmt.pf ppf "}\n"

let to_string a = Fmt.str "%a" automaton a

let write_file path a =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string a))
