(** Hybrid automata: the tuple
    [A = (~x(t), V, inv, F, E, g, R, L, syn, Φ0)] of Section II-A, with
    [inv]/[F] folded into {!Location.t}, [g]/[R]/[syn] folded into
    {!Edge.t}, and a deterministic initial state (the paper's pattern
    automata start from "Fall-Back" with all data state variables
    zero). *)

type t = {
  name : string;
  vars : Var.t list;
  locations : Location.t list;
  edges : Edge.t list;
  initial_location : string;
  initial_values : (Var.t * float) list;
      (** variables not listed start at 0. *)
}

val make :
  name:string ->
  vars:Var.t list ->
  locations:Location.t list ->
  edges:Edge.t list ->
  initial_location:string ->
  ?initial_values:(Var.t * float) list ->
  unit ->
  t

val location_names : t -> string list
val find_location : t -> string -> Location.t option
val location_exn : t -> string -> Location.t
val edges_from : t -> string -> Edge.t list

val is_risky : t -> string -> bool
(** Membership in V^risky (Section III's partition). *)

val risky_locations : t -> string list
val initial_valuation : t -> Valuation.t

val listened_roots : t -> Var.Set.t
(** Roots this automaton receives ([?l] or [??l]) anywhere. *)

val emitted_roots : t -> Var.Set.t
(** Roots this automaton sends ([!l]) or raises internally. *)

val all_labels : t -> Label.t list

val validate : t -> (unit, string list) result
(** Structural well-formedness: unique locations, no dangling edges,
    declared variables only, initial state exists and satisfies its
    invariant. *)

val validate_exn : t -> t

val independent : t -> t -> bool
(** Definition 2: disjoint data state variables, locations, and
    synchronization labels. *)

val is_simple : t -> bool
(** Definition 3: one shared invariant, all-zero initial data state that
    satisfies it. *)

val pp : t Fmt.t
