(** Data state variable names (Section II-A item 1). Names are local to
    their automaton: the system model assumes no shared data state
    variables between members of a hybrid system. *)

type t = string

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val fresh : base:t -> Set.t -> t
(** A name derived from [base] not present in the given set. *)
