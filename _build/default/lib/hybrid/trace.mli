(** Timed execution traces: the observable history of one run —
    transitions, event-transport outcomes, sampled data state. The PTE
    monitor and the trial runner consume these. *)

type event =
  | Enter_location of { automaton : string; location : string }
  | Transition of {
      automaton : string;
      src : string;
      dst : string;
      label : Label.t option;
      forced : bool;
          (** fired because the location invariant was about to fail *)
    }
  | Message_sent of { sender : string; root : string }
  | Message_delivered of {
      receiver : string;
      root : string;
      consumed : bool;  (** [false]: no enabled receive edge — dropped *)
    }
  | Message_lost of { receiver : string; root : string }
  | Sample of { automaton : string; var : Var.t; value : float }
  | Note of string

type entry = { time : float; event : event }

type t = entry list
(** In increasing time order. *)

(** Mutable trace collector. *)
module Recorder : sig
  type recorder

  val create : ?sink:(entry -> unit) -> unit -> recorder
  val record : recorder -> time:float -> event -> unit
  val entries : recorder -> t
  val length : recorder -> int
end

val transitions_of :
  t -> automaton:string -> (float * string * string * Label.t option) list

val intervals :
  t ->
  automaton:string ->
  member:(string -> bool) ->
  initial:string ->
  horizon:float ->
  (float * float) list
(** Maximal closed intervals during which the automaton dwelt in
    locations satisfying [member] — the primitive under both PTE rules. *)

val longest_dwell : (float * float) list -> float
val count : t -> (entry -> bool) -> int

val pp_event : event Fmt.t
val pp_entry : entry Fmt.t
val pp : t Fmt.t
