(** Valuations: total maps from a hybrid automaton's data state variables
    to reals (a data state [~s]); variables absent from the map read as 0,
    matching the paper's all-zero initial convention. *)

type t = float Var.Map.t

val empty : t
val zero : Var.t list -> t
val get : t -> Var.t -> float
val set : t -> Var.t -> float -> t
val update : t -> Var.t -> (float -> float) -> t
val of_list : (Var.t * float) list -> t
val to_list : t -> (Var.t * float) list
val vars : t -> Var.Set.t

val advance : t -> (Var.t * float) list -> float -> t
(** Pointwise Euler step; unlisted variables keep their value. *)

val interpolate : from:t -> target:t -> float -> t
(** Linear interpolation (the executor's boundary search). *)

val equal_eps : eps:float -> t -> t -> bool
val pp : t Fmt.t
