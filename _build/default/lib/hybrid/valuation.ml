(** Valuations of data state variables.

    A valuation is a data state [~s] of the automaton (paper, Section
    II-A, item 1): a total map from the automaton's declared variables to
    reals. Variables absent from the map are treated as 0, matching the
    paper's convention that "all data state variables initial values are
    zero". *)

type t = float Var.Map.t

let empty : t = Var.Map.empty

let zero vars =
  List.fold_left (fun acc v -> Var.Map.add v 0.0 acc) empty vars

let get valuation var =
  match Var.Map.find_opt var valuation with Some x -> x | None -> 0.0

let set valuation var value = Var.Map.add var value valuation

let update valuation var f = set valuation var (f (get valuation var))

let of_list bindings =
  List.fold_left (fun acc (v, x) -> Var.Map.add v x acc) empty bindings

let to_list valuation = Var.Map.bindings valuation

let vars valuation =
  Var.Map.fold (fun v _ acc -> Var.Set.add v acc) valuation Var.Set.empty

(** Pointwise Euler step: [advance valuation derivatives dt] adds
    [rate *. dt] to each variable listed in [derivatives]; unlisted
    variables keep their value (rate 0). *)
let advance valuation derivatives dt =
  List.fold_left
    (fun acc (var, rate) -> update acc var (fun x -> x +. (rate *. dt)))
    valuation derivatives

(** Linear interpolation between two valuations over the same variables;
    used by the executor's invariant-boundary search. *)
let interpolate ~from:v0 ~target:v1 alpha =
  Var.Map.merge
    (fun _ a b ->
      let a = Option.value a ~default:0.0 and b = Option.value b ~default:0.0 in
      Some (a +. (alpha *. (b -. a))))
    v0 v1

let equal_eps ~eps a b =
  let keys = Var.Set.union (vars a) (vars b) in
  Var.Set.for_all (fun v -> Float.abs (get a v -. get b v) <= eps) keys

let pp ppf valuation =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (v, x) -> Fmt.pf ppf "%s=%g" v x))
    (to_list valuation)
