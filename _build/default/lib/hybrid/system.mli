(** Hybrid systems: collections of concurrently executing hybrid
    automata coordinating via events (Section II-B). Variable and
    location names are local to each member automaton. *)

type t = { name : string; automata : Automaton.t list }

val make : name:string -> Automaton.t list -> t
val names : t -> string list
val find : t -> string -> Automaton.t option
val find_exn : t -> string -> Automaton.t

val listeners : t -> string -> Automaton.t list
(** Automata that receive (via [?l] or [??l]) a given root. *)

val validate : t -> (unit, string list) result
(** Member automata well-formed, member names unique. *)

val validate_exn : t -> t
val pp : t Fmt.t
