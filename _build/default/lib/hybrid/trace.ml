(** Timed execution traces.

    A trace records the observable history of one run of a hybrid system:
    discrete transitions, event transport outcomes, and sampled data
    state. The PTE monitor (in [pte_core]) consumes traces to decide
    whether the run satisfied PTE Safety Rules 1 and 2; the trial runner
    consumes them to compute Table-I statistics. *)

type event =
  | Enter_location of { automaton : string; location : string }
      (** Emitted for the initial location and after every transition. *)
  | Transition of {
      automaton : string;
      src : string;
      dst : string;
      label : Label.t option;
      forced : bool;
          (** [true] when the executor fired the edge because the location
              invariant was about to be violated. *)
    }
  | Message_sent of { sender : string; root : string }
  | Message_delivered of {
      receiver : string;
      root : string;
      consumed : bool;
          (** [false] when no enabled receive edge existed in the
              receiver's current location — the event is dropped, matching
              the [??l] semantics. *)
    }
  | Message_lost of { receiver : string; root : string }
  | Sample of { automaton : string; var : Var.t; value : float }
  | Note of string  (** Free-form annotation from scenarios. *)

type entry = { time : float; event : event }

type t = entry list
(** In increasing time order. *)

(** Mutable trace collector. *)
module Recorder = struct
  type recorder = {
    mutable entries : entry list;  (* reversed *)
    mutable count : int;
    mutable sink : (entry -> unit) option;
  }

  let create ?sink () = { entries = []; count = 0; sink }

  let record recorder ~time event =
    let entry = { time; event } in
    recorder.entries <- entry :: recorder.entries;
    recorder.count <- recorder.count + 1;
    match recorder.sink with None -> () | Some f -> f entry

  let entries recorder = List.rev recorder.entries
  let length recorder = recorder.count
end

let transitions_of trace ~automaton =
  List.filter_map
    (fun { time; event } ->
      match event with
      | Transition t when String.equal t.automaton automaton ->
          Some (time, t.src, t.dst, t.label)
      | _ -> None)
    trace

(** [intervals trace ~automaton ~member ~initial ~horizon] returns the
    maximal closed time intervals during which [automaton] dwelt in a
    location satisfying [member], over [[0, horizon]].

    This is the primitive under both PTE rules: with [member = is_risky]
    it yields each entity's continuous risky-dwelling intervals, whose
    lengths Rule 1 bounds and whose relative embedding Rule 2
    constrains. *)
let intervals trace ~automaton ~member ~initial ~horizon =
  let finish acc start stop =
    if stop > start then (start, stop) :: acc else acc
  in
  let rec go acc current start = function
    | [] ->
        let acc = if member current then finish acc start horizon else acc in
        List.rev acc
    | { time; event } :: rest -> (
        match event with
        | Transition { automaton = a; src; dst; _ }
          when String.equal a automaton && String.equal src current ->
            let acc =
              if member current && not (member dst) then finish acc start time
              else acc
            in
            let start = if member dst && not (member current) then time else start in
            go acc dst start rest
        | _ -> go acc current start rest)
  in
  go [] initial (if member initial then 0.0 else nan) trace

(** Longest continuous dwell among [intervals]-style output. *)
let longest_dwell intervals =
  List.fold_left (fun acc (a, b) -> Float.max acc (b -. a)) 0.0 intervals

let count trace predicate =
  List.length (List.filter (fun e -> predicate e) trace)

let pp_event ppf = function
  | Enter_location { automaton; location } ->
      Fmt.pf ppf "%s enters %s" automaton location
  | Transition { automaton; src; dst; label; forced } ->
      Fmt.pf ppf "%s: %s -> %s%a%s" automaton src dst
        (Fmt.option (fun ppf l -> Fmt.pf ppf " on %a" Label.pp l))
        label
        (if forced then " (forced)" else "")
  | Message_sent { sender; root } -> Fmt.pf ppf "%s sends %s" sender root
  | Message_delivered { receiver; root; consumed } ->
      Fmt.pf ppf "%s receives %s%s" receiver root
        (if consumed then "" else " (ignored)")
  | Message_lost { receiver; root } ->
      Fmt.pf ppf "%s loses %s" receiver root
  | Sample { automaton; var; value } ->
      Fmt.pf ppf "%s.%s = %g" automaton var value
  | Note s -> Fmt.pf ppf "note: %s" s

let pp_entry ppf { time; event } = Fmt.pf ppf "[%8.3f] %a" time pp_event event

let pp ppf trace = Fmt.list ~sep:Fmt.cut pp_entry ppf trace
