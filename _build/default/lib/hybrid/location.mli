(** Locations of a hybrid automaton, carrying invariant, flow, and the
    safe/risky partition of Section III (the supervisor's locations are
    all {!Safe}; the paper does not partition ξ0's). *)

type kind = Safe | Risky

type t = {
  name : string;
  kind : kind;
  invariant : Guard.t;
  flow : Flow.t;
}

val make : ?kind:kind -> ?invariant:Guard.t -> ?flow:Flow.t -> string -> t
val is_risky : t -> bool
val pp_kind : kind Fmt.t
val pp : t Fmt.t
