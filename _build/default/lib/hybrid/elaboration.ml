(** Elaboration of hybrid automata (Section IV-C).

    The methodology expands a location [v] of a pattern automaton [A]
    with an independent {e simple} child automaton [A'], producing
    [A'' = E(A, v, A')]:

    1. location [v] is replaced by the locations of [A'];
    2. former ingress edges to [v] become ingress edges to [A']'s
       initial location;
    3. former egress edges from [v] become egress edges from {e every}
       location of [A'];
    4. inside [A'], the data state variables of [A] keep the continuous
       behaviour they had in [v] (the child locations' flows are combined
       with [v]'s flow, and their invariants conjoined with [v]'s);
    5. outside [A'], the data state variables of [A'] are frozen — this
       holds by construction since flows only list their own variables.

    Theorem 2 then transfers the PTE guarantee from the pattern to any
    design whose member automata elaborate the pattern automata at
    mutually independent, simple children; [pte_core.Compliance] performs
    those checks on whole systems. *)

type error =
  | Not_independent of string * string
  | Not_simple of string
  | No_such_location of string * string
  | Duplicate_target of string

let pp_error ppf = function
  | Not_independent (a, b) ->
      Fmt.pf ppf "automata %s and %s are not independent (Definition 2)" a b
  | Not_simple a -> Fmt.pf ppf "automaton %s is not simple (Definition 3)" a
  | No_such_location (a, v) ->
      Fmt.pf ppf "automaton %s has no location %s" a v
  | Duplicate_target v ->
      Fmt.pf ppf "location %s elaborated more than once" v

(** Child locations inherit the safe/risky kind of the location they
    replace: the PTE partition is defined at the pattern level, and the
    whole child automaton dwells "inside" the pattern location. *)
let atomic (a : Automaton.t) v (child : Automaton.t) :
    (Automaton.t, error) result =
  match Automaton.find_location a v with
  | None -> Error (No_such_location (a.Automaton.name, v))
  | Some parent ->
      if not (Automaton.independent a child) then
        Error (Not_independent (a.Automaton.name, child.Automaton.name))
      else if not (Automaton.is_simple child) then
        Error (Not_simple child.Automaton.name)
      else begin
        let child_locations =
          List.map
            (fun (l : Location.t) ->
              {
                Location.name = l.Location.name;
                kind = parent.Location.kind;
                invariant = parent.Location.invariant @ l.Location.invariant;
                flow = Flow.combine parent.Location.flow l.Location.flow;
              })
            child.Automaton.locations
        in
        let locations =
          List.filter
            (fun (l : Location.t) -> not (String.equal l.Location.name v))
            a.Automaton.locations
          @ child_locations
        in
        let child_initial = child.Automaton.initial_location in
        let redirect (e : Edge.t) =
          (* parent edges: retarget ingress to the child's initial
             location; expand egress to leave from every child location. *)
          if String.equal e.Edge.src v && String.equal e.Edge.dst v then
            List.map
              (fun (l : Location.t) ->
                { e with Edge.src = l.Location.name; dst = child_initial })
              child_locations
          else if String.equal e.Edge.dst v then
            [ { e with Edge.dst = child_initial } ]
          else if String.equal e.Edge.src v then
            List.map
              (fun (l : Location.t) -> { e with Edge.src = l.Location.name })
              child_locations
          else [ e ]
        in
        let edges =
          List.concat_map redirect a.Automaton.edges @ child.Automaton.edges
        in
        let initial_location =
          if String.equal a.Automaton.initial_location v then child_initial
          else a.Automaton.initial_location
        in
        Ok
          {
            Automaton.name = a.Automaton.name;
            vars = a.Automaton.vars @ child.Automaton.vars;
            locations;
            edges;
            initial_location;
            initial_values =
              a.Automaton.initial_values @ child.Automaton.initial_values;
          }
      end

let atomic_exn a v child =
  match atomic a v child with
  | Ok a'' -> a''
  | Error e -> Fmt.invalid_arg "elaboration failed: %a" pp_error e

(** Parallel elaboration [E(A, (v1..vk), (A1..Ak))]: repeated atomic
    elaboration. Requires the target locations to be distinct and the
    children mutually independent (checked pairwise, including against
    the evolving parent, which subsumes the paper's mutual-independence
    premise). *)
let parallel (a : Automaton.t) (targets : (string * Automaton.t) list) :
    (Automaton.t, error) result =
  let rec distinct = function
    | [] -> Ok ()
    | (v, _) :: rest ->
        if List.exists (fun (v', _) -> String.equal v v') rest then
          Error (Duplicate_target v)
        else distinct rest
  in
  match distinct targets with
  | Error e -> Error e
  | Ok () ->
      List.fold_left
        (fun acc (v, child) ->
          match acc with
          | Error _ as e -> e
          | Ok a' -> atomic a' v child)
        (Ok a) targets

let parallel_exn a targets =
  match parallel a targets with
  | Ok a'' -> a''
  | Error e -> Fmt.invalid_arg "parallel elaboration failed: %a" pp_error e

(** [elaborates ~pattern ~design] checks that [design] could be the
    result of elaborating [pattern] at some locations: every pattern
    location either survives verbatim or was replaced, every surviving
    pattern edge is present, and the pattern's variables are preserved.
    This is a sufficient structural audit used by Theorem 2 compliance
    checking (a full behavioural check is undecidable in general). *)
let elaborates ~(pattern : Automaton.t) ~(design : Automaton.t) =
  let design_locations = Automaton.location_names design in
  let surviving =
    List.filter
      (fun n -> List.exists (String.equal n) design_locations)
      (Automaton.location_names pattern)
  in
  let vars_preserved =
    List.for_all
      (fun v -> List.exists (Var.equal v) design.Automaton.vars)
      pattern.Automaton.vars
  in
  let edges_preserved =
    List.for_all
      (fun (e : Edge.t) ->
        (* edges between surviving locations must appear unchanged *)
        if
          List.exists (String.equal e.Edge.src) surviving
          && List.exists (String.equal e.Edge.dst) surviving
        then
          List.exists
            (fun (e' : Edge.t) ->
              String.equal e.Edge.src e'.Edge.src
              && String.equal e.Edge.dst e'.Edge.dst
              && e.Edge.label = e'.Edge.label)
            design.Automaton.edges
        else true)
      pattern.Automaton.edges
  in
  vars_preserved && edges_preserved
