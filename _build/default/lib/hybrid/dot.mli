(** Graphviz export for hybrid automata — the repository's analogue of
    the paper's automata figures. Risky locations are outlined in red;
    edges carry guard/label/reset annotations. *)

val automaton : Automaton.t Fmt.t
val to_string : Automaton.t -> string
val write_file : string -> Automaton.t -> unit
