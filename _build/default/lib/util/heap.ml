(** Binary min-heap keyed by float priority with FIFO tie-breaking.

    Backing store for discrete-event queues: scheduled packet deliveries,
    scenario timers. Ties must break in insertion order so traces are
    deterministic regardless of heap layout. *)

type 'a t = {
  mutable items : (float * int * 'a) array;  (* (priority, seq, value) *)
  mutable size : int;
  mutable seq : int;
  dummy : 'a;
}

let create ~dummy = { items = Array.make 16 (0.0, 0, dummy); size = 0; seq = 0; dummy }

let length t = t.size
let is_empty t = t.size = 0

let less (p1, s1, _) (p2, s2, _) = p1 < p2 || (p1 = p2 && s1 < s2)

let grow t =
  if t.size = Array.length t.items then begin
    let bigger = Array.make (2 * Array.length t.items) (0.0, 0, t.dummy) in
    Array.blit t.items 0 bigger 0 t.size;
    t.items <- bigger
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.items.(i) t.items.(parent) then begin
      let tmp = t.items.(i) in
      t.items.(i) <- t.items.(parent);
      t.items.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && less t.items.(left) t.items.(!smallest) then
    smallest := left;
  if right < t.size && less t.items.(right) t.items.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = t.items.(i) in
    t.items.(i) <- t.items.(!smallest);
    t.items.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t priority value =
  grow t;
  t.items.(t.size) <- (priority, t.seq, value);
  t.seq <- t.seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t =
  if t.size = 0 then None
  else
    let priority, _, value = t.items.(0) in
    Some (priority, value)

let pop t =
  if t.size = 0 then None
  else begin
    let priority, _, value = t.items.(0) in
    t.size <- t.size - 1;
    t.items.(0) <- t.items.(t.size);
    t.items.(t.size) <- (0.0, 0, t.dummy);
    sift_down t 0;
    Some (priority, value)
  end

(** Pop every item with priority <= [upto], in priority/FIFO order. *)
let pop_until t ~upto =
  let rec go acc =
    match peek t with
    | Some (priority, _) when priority <= upto -> (
        match pop t with
        | Some (p, v) -> go ((p, v) :: acc)
        | None -> List.rev acc)
    | _ -> List.rev acc
  in
  go []

let clear t = t.size <- 0
