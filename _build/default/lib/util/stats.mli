(** Descriptive statistics for trial reports. *)

val mean : float list -> float
(** [nan] on empty input. *)

val variance : float list -> float
(** Sample variance (n−1 denominator); 0 for fewer than two points. *)

val stddev : float list -> float
val minimum : float list -> float
val maximum : float list -> float
val sum : float list -> float

val percentile : float list -> float -> float
(** Linear interpolation between closest ranks. *)

(** Online accumulator (Welford) for long streams. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end
