(** Binary min-heap keyed by float priority with FIFO tie-breaking, so
    discrete-event queues pop deterministically regardless of layout. *)

type 'a t

val create : dummy:'a -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> float -> 'a -> unit
val peek : 'a t -> (float * 'a) option
val pop : 'a t -> (float * 'a) option

val pop_until : 'a t -> upto:float -> (float * 'a) list
(** Every item with priority <= [upto], in priority/FIFO order. *)

val clear : 'a t -> unit
