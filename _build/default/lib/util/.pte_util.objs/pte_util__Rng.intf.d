lib/util/rng.mli:
