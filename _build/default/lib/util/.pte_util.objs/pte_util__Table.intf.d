lib/util/table.mli:
