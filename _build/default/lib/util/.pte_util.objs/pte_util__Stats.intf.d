lib/util/stats.mli:
