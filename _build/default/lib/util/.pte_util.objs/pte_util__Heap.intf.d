lib/util/heap.mli:
