(** Small descriptive-statistics helpers for trial reports. *)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. Float.of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = Float.of_int (List.length xs) in
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. (n -. 1.0)

let stddev xs = sqrt (variance xs)

let minimum = function [] -> nan | x :: xs -> List.fold_left Float.min x xs
let maximum = function [] -> nan | x :: xs -> List.fold_left Float.max x xs

let sum = List.fold_left ( +. ) 0.0

let percentile xs p =
  match List.sort Float.compare xs with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      let rank = p /. 100.0 *. Float.of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = min (n - 1) (lo + 1) in
      let frac = rank -. Float.of_int lo in
      let nth i = List.nth sorted i in
      nth lo +. (frac *. (nth hi -. nth lo))

(** Online accumulator (Welford) for long streams. *)
module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. Float.of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. Float.of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = if t.n = 0 then nan else t.min
  let max t = if t.n = 0 then nan else t.max
end
