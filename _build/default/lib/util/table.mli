(** Plain-text table rendering: every reproduced paper table/figure
    prints through this module so `bench_output.txt` is uniform and
    diffable. *)

type align = Left | Right

type t

val create :
  title:string -> header:string list -> ?aligns:align list -> unit -> t

val add_row : t -> string list -> unit
val add_note : t -> string -> unit
val render : t -> string
val print : t -> unit

val fmt_float : ?decimals:int -> float -> string
(** ["-"] for NaN. *)

val fmt_int : int -> string
val fmt_bool : bool -> string
