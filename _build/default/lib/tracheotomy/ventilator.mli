(** The ventilator: the stand-alone simple automaton A′vent of Fig. 2 and
    its elaboration into the Participant role (Section V). *)

val height_var : string
(** ["Hvent"], the cylinder height. *)

val pump_out : string
val pump_in : string

val cylinder_top : float
(** 0.3 m. *)

val pump_speed : float
(** 0.1 m/s. *)

val stand_alone : Pte_hybrid.Automaton.t
(** Fig. 2 verbatim; simple per Definition 3. *)

val participant : ?lease:bool -> Pte_core.Params.t -> Pte_hybrid.Automaton.t
(** The PTE-compliant ventilator: Participant 1's pattern automaton
    elaborated at "Fall-Back" with A′vent. It pumps in Fall-Back and
    freezes (pauses ventilation) anywhere else. *)

val ventilating_locations : string list
val is_ventilating : string -> bool
