(** Trial runner: executes emulation trials and extracts the Table-I
    statistics (plus channel and SpO2 diagnostics the paper reports in
    prose). *)

type result = {
  config : Emulation.config;
  emissions : int;  (** # of laser emissions (entries into "Risky Core"). *)
  failures : int;  (** # of PTE safety-rule violation episodes. *)
  evt_to_stop : int;
      (** # of evtToStop: lease expiry forced the laser to stop. *)
  vent_lease_expiries : int;
      (** # of times the ventilator's lease expired in "Risky Core". *)
  aborts : int;  (** supervisor abort chains started (SpO2 below Θ). *)
  requests : int;  (** surgeon requests issued. *)
  violations : Pte_core.Monitor.violation list;
  longest_pause : float;  (** longest continuous risky dwell, ventilator. *)
  longest_emission : float;  (** longest continuous risky dwell, laser. *)
  min_spo2 : float;
  messages_sent : int;
  effective_loss_rate : float;
}

let run (config : Emulation.config) : result =
  let built = Emulation.build config in
  let trace = Emulation.run built in
  let report =
    Pte_core.Monitor.analyze_system trace built.Emulation.system
      built.Emulation.spec ~horizon:config.Emulation.horizon
  in
  let laser = built.Emulation.laser in
  let ventilator = built.Emulation.ventilator in
  let dwell entity =
    match List.assoc_opt entity report.Pte_core.Monitor.intervals with
    | Some spans -> Pte_hybrid.Trace.longest_dwell spans
    | None -> 0.0
  in
  let net_stats = Pte_net.Star.total_stats built.Emulation.net in
  {
    config;
    emissions =
      Pte_sim.Metrics.entries trace ~automaton:laser ~location:"Risky Core";
    failures = Pte_core.Monitor.episodes report;
    evt_to_stop =
      Pte_sim.Metrics.internal_marks trace
        ~root:(Pte_core.Events.to_stop ~entity:laser);
    vent_lease_expiries =
      Pte_sim.Metrics.internal_marks trace
        ~root:(Pte_core.Events.lease_expired ~entity:ventilator);
    aborts =
      Pte_sim.Metrics.entries trace
        ~automaton:config.Emulation.params.Pte_core.Params.supervisor
        ~location:(Pte_core.Pattern.send_abort_loc laser);
    requests =
      Pte_sim.Metrics.entries trace ~automaton:laser ~location:"Send Req";
    violations = report.Pte_core.Monitor.violations;
    longest_pause = dwell ventilator;
    longest_emission = dwell laser;
    min_spo2 = Pte_util.Stats.Online.min built.Emulation.spo2_stats;
    messages_sent = net_stats.Pte_net.Link_stats.sent;
    effective_loss_rate = Pte_net.Link_stats.loss_rate net_stats;
  }

(** One Table-I row: a 30-minute trial at the paper's constants. *)
let table1_row ~lease ~e_toff ~seed =
  run { Emulation.default with lease; e_toff; seed }

(** The full Table I: {with, without} lease × E(Toff) ∈ {18 s, 6 s}. *)
let table1 ?(seed = 2013) () =
  [
    ("with Lease", 18.0, table1_row ~lease:true ~e_toff:18.0 ~seed);
    ("without Lease", 18.0, table1_row ~lease:false ~e_toff:18.0 ~seed:(seed + 1));
    ("with Lease", 6.0, table1_row ~lease:true ~e_toff:6.0 ~seed:(seed + 2));
    ("without Lease", 6.0, table1_row ~lease:false ~e_toff:6.0 ~seed:(seed + 3));
  ]

let pp_result ppf r =
  Fmt.pf ppf
    "emissions:%d failures:%d evtToStop:%d aborts:%d requests:%d \
     longest-pause:%.1fs longest-emission:%.1fs minSpO2:%.1f loss:%.0f%%"
    r.emissions r.failures r.evt_to_stop r.aborts r.requests r.longest_pause
    r.longest_emission r.min_spo2
    (100.0 *. r.effective_loss_rate)
