lib/tracheotomy/scenarios.ml: Array Emulation Fmt List Pte_core Pte_hybrid Pte_net Pte_sim
