lib/tracheotomy/ventilator.mli: Pte_core Pte_hybrid
