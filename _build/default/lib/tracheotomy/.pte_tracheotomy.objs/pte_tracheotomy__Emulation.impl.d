lib/tracheotomy/emulation.ml: Array Executor Oximeter Patient Pte_core Pte_hybrid Pte_net Pte_sim Pte_util Surgeon System Ventilator
