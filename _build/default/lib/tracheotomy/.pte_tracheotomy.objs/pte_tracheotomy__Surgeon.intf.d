lib/tracheotomy/surgeon.mli: Pte_sim
