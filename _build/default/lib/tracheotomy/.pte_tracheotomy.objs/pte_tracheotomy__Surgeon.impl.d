lib/tracheotomy/surgeon.ml: Pte_core Pte_sim
