lib/tracheotomy/ventilator.ml: Automaton Edge Elaboration Flow Guard Label List Location Pte_core Pte_hybrid
