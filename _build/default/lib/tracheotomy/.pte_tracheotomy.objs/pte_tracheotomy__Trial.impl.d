lib/tracheotomy/trial.ml: Emulation Fmt List Pte_core Pte_hybrid Pte_net Pte_sim Pte_util
