lib/tracheotomy/oximeter.mli: Pte_sim
