lib/tracheotomy/trial.mli: Emulation Fmt Pte_core
