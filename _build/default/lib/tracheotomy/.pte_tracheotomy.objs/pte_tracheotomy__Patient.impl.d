lib/tracheotomy/patient.ml: Automaton Flow Location Pte_hybrid Pte_sim Valuation Ventilator
