lib/tracheotomy/patient.mli: Pte_hybrid Pte_sim
