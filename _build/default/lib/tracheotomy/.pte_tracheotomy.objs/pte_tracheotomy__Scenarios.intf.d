lib/tracheotomy/scenarios.mli: Emulation Fmt Pte_core
