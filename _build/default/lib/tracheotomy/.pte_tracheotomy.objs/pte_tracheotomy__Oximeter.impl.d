lib/tracheotomy/oximeter.ml: Patient Pte_core Pte_sim Pte_util
