(** The oximeter wired to the supervisor (the paper's Nonin 9843).

    Samples the patient's SpO2 once a second with bounded sensor noise
    and writes the ApprovalCondition — SpO2(t) > Θ_SpO2 — into the
    supervisor's [approval] data state variable. Wired, hence lossless:
    the SpO2 sensor is part of entity ξ0 in the case study. *)

let sample_period = 1.0
let noise_amplitude = 0.4  (* uniform ±, in SpO2 percentage points *)
let default_threshold = 92.0

let connect engine ~supervisor ?(threshold = default_threshold) () =
  Pte_sim.Scenario.wired_sensor engine ~period:sample_period
    ~from:(Patient.name, Patient.spo2_var)
    ~to_:(supervisor, Pte_core.Pattern.approval_var)
    ~transform:(fun rng raw ->
      let reading =
        raw +. Pte_util.Rng.uniform rng ~lo:(-.noise_amplitude) ~hi:noise_amplitude
      in
      if reading > threshold then 1.0 else 0.0)
    ()
