(** The failure scenarios discussed in Section V, as deterministic
    single-episode experiments, plus the measured Fig. 1 timeline. *)

type episode = {
  lease : bool;
  emission_duration : float;
  pause_duration : float;
  failures : int;
  violations : Pte_core.Monitor.violation list;
  evt_to_stop : int;
  aborts : int;
}

val base_config : Emulation.config
(** 150 s horizon, perfect channel, surgeon driven by one-shots. *)

val run_episode_full :
  ?config:Emulation.config ->
  ?cancel_at:float ->
  lease:bool ->
  unit ->
  episode * Pte_core.Monitor.report
(** One leased episode: the surgeon requests after the supervisor's
    Fall-Back cool-down and optionally cancels [cancel_at] seconds into
    the emission. *)

val run_episode :
  ?config:Emulation.config -> ?cancel_at:float -> lease:bool -> unit -> episode

(** Measured Fig. 1 quantities of one clean episode. *)
type timeline = { t1 : float; t2 : float; t3 : float; t4 : float }

val fig1_timeline : ?cancel_at:float -> unit -> timeline

val s1_forgotten_cancel : ?abort_blackout:bool -> lease:bool -> unit -> episode
(** §V: "the surgeon may forget to cancel laser emission until too
    late". [abort_blackout] also loses every abort/cancel downlink — the
    "no one can terminate" case. *)

val s2_lost_cancel : lease:bool -> unit -> episode
(** §V: the surgeon cancels but every evtξ2→ξ0Cancel is lost. *)

val s3_c5_violated : unit -> Pte_core.Constraints.outcome list * episode
(** §V: T^max_enter,2 = T^max_enter,1 breaks condition c5; returns the
    checker report and the violating run. *)

val pp_episode : episode Fmt.t
