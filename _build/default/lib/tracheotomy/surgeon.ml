(** The surgeon's behaviour, emulated exactly as in the paper's trials:

    - Ton (exponential, mean E(Ton)): armed whenever the laser-scalpel
      dwells in "Fall-Back"; on firing, the surgeon requests laser
      emission (stimulus → the Initializer's request transition).
    - Toff (exponential, mean E(Toff)): armed whenever the laser-scalpel
      is emitting ("Risky Core"); on firing, the surgeon cancels.

    Both timers are destroyed when the laser leaves the arming location,
    matching Section V's emulation setup. *)

let connect engine ~laser ~e_ton ~e_toff =
  Pte_sim.Scenario.exponential_stimulus engine ~mean:e_ton ~automaton:laser
    ~armed_in:"Fall-Back"
    ~root:(Pte_core.Events.stim_request ~initializer_:laser)
    ();
  Pte_sim.Scenario.exponential_stimulus engine ~mean:e_toff ~automaton:laser
    ~armed_in:"Risky Core"
    ~root:(Pte_core.Events.stim_cancel ~initializer_:laser)
    ()
