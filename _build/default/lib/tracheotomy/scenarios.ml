(** The failure scenarios discussed in Section V, reproduced as
    deterministic single-episode experiments. Each returns enough
    measurements to see {e why} the lease pattern (and the c1–c7
    configuration constraints) matter. *)

type episode = {
  lease : bool;
  emission_duration : float;  (** laser's continuous risky dwell *)
  pause_duration : float;  (** ventilator's continuous risky dwell *)
  failures : int;
  violations : Pte_core.Monitor.violation list;
  evt_to_stop : int;
  aborts : int;
}

let base_config =
  {
    Emulation.default with
    horizon = 150.0;
    e_ton = 1e9;  (* surgeon acts through one-shots below, not Ton *)
    e_toff = 1e9;
    loss = Pte_net.Loss.Perfect;
  }

(* Run a single leased episode: the surgeon requests at t=15 (after the
   supervisor's T^min_fb,0 Fall-Back cool-down has elapsed) and, if
   [cancel_at] is given, cancels that many seconds into the emission.
   Returns the episode measurements together with the full monitor
   report. *)
let run_episode_full ?(config = base_config) ?cancel_at ~lease () =
  let config = { config with Emulation.lease } in
  let built = Emulation.build config in
  let engine = built.Emulation.engine in
  let laser = built.Emulation.laser in
  let request_at = config.Emulation.params.Pte_core.Params.t_fb_min +. 2.0 in
  Pte_sim.Scenario.one_shot engine ~at:request_at ~automaton:laser
    ~armed_in:"Fall-Back"
    ~root:(Pte_core.Events.stim_request ~initializer_:laser);
  (match cancel_at with
  | Some delay ->
      (* [delay] counts from the expected start of the emission (the
         grant handshake is sub-second; "Entering" dwells T^max_enter,N) *)
      let emission_start =
        request_at
        +. (Pte_core.Params.initializer_ config.Emulation.params)
             .Pte_core.Params.t_enter_max
      in
      Pte_sim.Scenario.one_shot engine ~at:(emission_start +. delay)
        ~automaton:laser ~armed_in:"Risky Core"
        ~root:(Pte_core.Events.stim_cancel ~initializer_:laser)
  | None -> ());
  let trace = Emulation.run built in
  let report =
    Pte_core.Monitor.analyze_system trace built.Emulation.system
      built.Emulation.spec ~horizon:config.Emulation.horizon
  in
  let dwell entity =
    match List.assoc_opt entity report.Pte_core.Monitor.intervals with
    | Some spans -> Pte_hybrid.Trace.longest_dwell spans
    | None -> 0.0
  in
  ( {
      lease;
      emission_duration = dwell laser;
      pause_duration = dwell built.Emulation.ventilator;
      failures = Pte_core.Monitor.episodes report;
      violations = report.Pte_core.Monitor.violations;
      evt_to_stop =
        Pte_sim.Metrics.internal_marks trace
          ~root:(Pte_core.Events.to_stop ~entity:laser);
      aborts =
        Pte_sim.Metrics.entries trace
          ~automaton:config.Emulation.params.Pte_core.Params.supervisor
          ~location:(Pte_core.Pattern.send_abort_loc laser);
    },
    report )

let run_episode ?config ?cancel_at ~lease () =
  fst (run_episode_full ?config ?cancel_at ~lease ())

(** The measured Fig. 1 timeline of one clean leased episode:
    t1 = enter-risky spacing (ventilator pause → laser emission),
    t2 = exit-risky spacing (laser off → ventilator resume),
    t3 = ventilator pause duration, t4 = laser emission duration. *)
type timeline = { t1 : float; t2 : float; t3 : float; t4 : float }

let fig1_timeline ?(cancel_at = 10.0) () =
  let _, report = run_episode_full ~cancel_at ~lease:true () in
  let span entity =
    match List.assoc_opt entity report.Pte_core.Monitor.intervals with
    | Some [ span ] -> span
    | Some spans ->
        Fmt.invalid_arg "fig1: expected one %s interval, got %d" entity
          (List.length spans)
    | None -> Fmt.invalid_arg "fig1: no intervals for %s" entity
  in
  let a, b = span "ventilator" in
  let s, e = span "laser" in
  { t1 = s -. a; t2 = b -. e; t3 = b -. a; t4 = e -. s }

(** S1 — "the surgeon may forget to cancel laser emission until too late
    (e.g. Toff is set to 1 hour)". The surgeon never cancels. With the
    lease, the laser stops itself after T^max_run,2 = 20 s (an evtToStop);
    without it, only the supervisor's SpO2 abort can stop the emission.
    [abort_blackout] additionally loses every abort message — the case
    where, without a lease, nothing can stop the emission in bounded
    time. *)
let s1_forgotten_cancel ?(abort_blackout = false) ~lease () =
  let config =
    if abort_blackout then
      {
        base_config with
        Emulation.loss =
          Pte_net.Loss.Adversarial
            (fun _ root ->
              root = Pte_core.Events.abort_down ~entity:"laser"
              || root = Pte_core.Events.abort_down ~entity:"ventilator"
              || root = Pte_core.Events.cancel_down ~entity:"ventilator");
      }
    else base_config
  in
  run_episode ~config ~lease ()

(** S2 — "the surgeon remembers to cancel laser emission, but his/her
    cancelling request is not received at the supervisor". The surgeon
    cancels 8 s into the emission; every evtξ2→ξ0Cancel is lost. The
    laser still stops (its own transition), but the supervisor never
    learns: without the lease the ventilator keeps pausing. *)
let s2_lost_cancel ~lease () =
  let config =
    {
      base_config with
      Emulation.loss =
        Pte_net.Loss.Adversarial
          (fun _ root -> root = Pte_core.Events.cancel_up ~initializer_:"laser");
    }
  in
  run_episode ~config ~cancel_at:8.0 ~lease ()

(** S3 — "suppose we set T^max_enter,2 = T^max_enter,1 … condition c5 of
    Theorem 1 is violated. Under such design, immediately after the
    ventilator is paused, the laser-scalpel can emit laser". Returns the
    constraint report alongside the run: the checker flags c5 and the
    monitor observes the enter-safeguard breach. *)
let s3_c5_violated () =
  let params = Pte_core.Params.case_study in
  let bad =
    {
      params with
      Pte_core.Params.entities =
        [|
          params.Pte_core.Params.entities.(0);
          {
            (params.Pte_core.Params.entities.(1)) with
            Pte_core.Params.t_enter_max =
              params.Pte_core.Params.entities.(0).Pte_core.Params.t_enter_max;
          };
        |];
    }
  in
  let outcomes = Pte_core.Constraints.check bad in
  let episode =
    run_episode
      ~config:{ base_config with Emulation.params = bad }
      ~cancel_at:8.0 ~lease:true ()
  in
  (outcomes, episode)

let pp_episode ppf e =
  Fmt.pf ppf
    "lease=%b emission=%.1fs pause=%.1fs failures=%d evtToStop=%d aborts=%d"
    e.lease e.emission_duration e.pause_duration e.failures e.evt_to_stop
    e.aborts
