(** The ventilator: the stand-alone simple automaton A′vent of Fig. 2 and
    its elaboration into the Participant role (Section V).

    A′vent describes the ventilation pump: the cylinder of height
    [Hvent(t)] moves down at 0.1 m/s in "PumpOut" until it reaches the
    bottom, then up at 0.1 m/s in "PumpIn" until it reaches 0.3 m, and so
    on. Elaborating the Participant pattern automaton at "Fall-Back" with
    A′vent yields the PTE-compliant ventilator: it pumps while in
    Fall-Back and freezes (pauses ventilation) anywhere else — which is
    exactly the risky behaviour the leases bound. *)

open Pte_hybrid

let height_var = "Hvent"
let pump_out = "PumpOut"
let pump_in = "PumpIn"

let cylinder_top = 0.3
let pump_speed = 0.1

(** Fig. 2 verbatim: data state variable Hvent, locations PumpOut/PumpIn,
    invariant 0 <= Hvent <= 0.3, flows ±0.1 m/s, guards at the ends of
    the cylinder's travel, broadcast events on each stroke reversal. *)
let stand_alone =
  let invariant =
    [ Guard.atom height_var Guard.Ge 0.0;
      Guard.atom height_var Guard.Le cylinder_top ]
  in
  let location name rate =
    Location.make ~invariant ~flow:(Flow.Rates [ (height_var, rate) ]) name
  in
  Automaton.make ~name:"vent-standalone" ~vars:[ height_var ]
    ~locations:[ location pump_out (-.pump_speed); location pump_in pump_speed ]
    ~edges:
      [
        Edge.make
          ~guard:[ Guard.atom height_var Guard.Le 0.0 ]
          ~label:(Label.Send "evtVPumpIn") ~src:pump_out ~dst:pump_in ();
        Edge.make
          ~guard:[ Guard.atom height_var Guard.Ge cylinder_top ]
          ~label:(Label.Send "evtVPumpOut") ~src:pump_in ~dst:pump_out ();
      ]
    ~initial_location:pump_out ()

(** The PTE-compliant ventilator: Participant 1's pattern automaton
    elaborated at "Fall-Back" with A′vent. Its name is the entity name
    from [params] (ξ1, "ventilator" in the case study). *)
let participant ?(lease = true) (params : Pte_core.Params.t) =
  let pattern = Pte_core.Pattern.participant ~lease params ~index:1 in
  Elaboration.atomic_exn pattern "Fall-Back" stand_alone

(** Locations in which the ventilator is actually ventilating the patient
    (the pump child automaton is live). Everywhere else the pump is
    frozen — the physical "pause". *)
let ventilating_locations = [ pump_out; pump_in ]

let is_ventilating location = List.mem location ventilating_locations
