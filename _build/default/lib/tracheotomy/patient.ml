(** The patient's blood-oxygen dynamics.

    The paper's emulation used a human subject breathing along with the
    ventilator display, wearing a Nonin 9843 oximeter. We substitute a
    first-order desaturation/recovery model: while ventilated, SpO2
    relaxes toward a healthy baseline; while ventilation is paused, it
    decays. Rates are set so a maximal with-lease pause (≈ 41 s risky +
    entering) grazes the 92 % threshold — reproducing the emulation's
    occasional supervisor aborts without making them dominant.

    The patient is a member automaton of the hybrid system but {e not} a
    node of the wireless star; its coupling variable [vent_ok] is driven
    by a physical coupling (the ventilator either inflates the lungs or
    does not), and its SpO2 is read by the wired oximeter — both are
    [pte_sim] couplings, not network messages. *)

open Pte_hybrid

let name = "patient"
let spo2_var = "spo2"
let vent_ok_var = "vent_ok"

let healthy_spo2 = 98.0
let recovery_rate = 0.25  (* 1/s, relaxation toward healthy baseline *)
let decay_rate = 0.16  (* %/s while ventilation is paused *)

let automaton =
  let flow =
    Flow.Ode
      (fun _time valuation ->
        let spo2 = Valuation.get valuation spo2_var in
        let ventilated = Valuation.get valuation vent_ok_var >= 0.5 in
        let d_spo2 =
          if ventilated then recovery_rate *. (healthy_spo2 -. spo2)
          else -.decay_rate
        in
        [ (spo2_var, d_spo2) ])
  in
  Automaton.make ~name ~vars:[ spo2_var; vent_ok_var ]
    ~locations:[ Location.make ~flow "Body" ]
    ~edges:[] ~initial_location:"Body"
    ~initial_values:[ (spo2_var, healthy_spo2); (vent_ok_var, 1.0) ]
    ()

(** Register the lung coupling: every simulation instant, [vent_ok]
    reflects whether the ventilator automaton dwells in a ventilating
    location. *)
let couple_to_ventilator engine ~ventilator =
  Pte_sim.Scenario.coupling engine ~automaton:name ~var:vent_ok_var
    (fun engine ->
      if Ventilator.is_ventilating (Pte_sim.Engine.location_of engine ventilator)
      then 1.0
      else 0.0)
