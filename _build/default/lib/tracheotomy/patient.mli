(** The patient's blood-oxygen dynamics: first-order desaturation while
    ventilation is paused, relaxation toward a healthy baseline while
    ventilated. Substitutes the paper's human subject; see DESIGN.md §2. *)

val name : string
val spo2_var : string
val vent_ok_var : string

val healthy_spo2 : float
val recovery_rate : float
val decay_rate : float

val automaton : Pte_hybrid.Automaton.t
(** Single-location ODE automaton; not a node of the wireless star. *)

val couple_to_ventilator : Pte_sim.Engine.t -> ventilator:string -> unit
(** Register the lung coupling: [vent_ok] reflects whether the
    ventilator dwells in a ventilating location. *)
