(** The oximeter wired to the supervisor (the paper's Nonin 9843):
    samples SpO2 once a second with bounded noise and writes the
    ApprovalCondition — SpO2 > Θ — into the supervisor's data state. *)

val sample_period : float
val noise_amplitude : float

val default_threshold : float
(** Θ_SpO2 = 92%. *)

val connect :
  Pte_sim.Engine.t -> supervisor:string -> ?threshold:float -> unit -> unit
