(** Trial runner: executes emulation trials and extracts the Table-I
    statistics plus the channel/SpO2 diagnostics the paper reports in
    prose. *)

type result = {
  config : Emulation.config;
  emissions : int;  (** # of laser emissions (entries into "Risky Core"). *)
  failures : int;  (** # of PTE safety-rule violation episodes. *)
  evt_to_stop : int;
      (** # of evtToStop: lease expiry forced the laser to stop. *)
  vent_lease_expiries : int;
  aborts : int;  (** supervisor abort chains started (SpO2 below Θ). *)
  requests : int;  (** surgeon requests issued. *)
  violations : Pte_core.Monitor.violation list;
  longest_pause : float;
  longest_emission : float;
  min_spo2 : float;
  messages_sent : int;
  effective_loss_rate : float;
}

val run : Emulation.config -> result

val table1_row : lease:bool -> e_toff:float -> seed:int -> result
(** One Table-I row: a 30-minute trial at the paper's constants. *)

val table1 :
  ?seed:int -> unit -> (string * float * result) list
(** The full Table I: {with, without} lease × E(Toff) ∈ {18 s, 6 s}. *)

val pp_result : result Fmt.t
