(** The surgeon's behaviour, emulated exactly as in the paper's trials:
    an exponential request timer Ton armed in "Fall-Back" and an
    exponential cancel timer Toff armed while emitting, both destroyed on
    leaving the arming location. *)

val connect :
  Pte_sim.Engine.t -> laser:string -> e_ton:float -> e_toff:float -> unit
