(** Per-link delivery statistics, reported alongside trial results so the
    effective channel conditions of each experiment are visible. *)

type t = {
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable corrupted : int;
  mutable retransmissions : int;
  delays : Pte_util.Stats.Online.t;
}

let create () =
  {
    sent = 0;
    delivered = 0;
    lost = 0;
    corrupted = 0;
    retransmissions = 0;
    delays = Pte_util.Stats.Online.create ();
  }

let on_sent t = t.sent <- t.sent + 1
let on_delivered t ~delay =
  t.delivered <- t.delivered + 1;
  Pte_util.Stats.Online.add t.delays delay
let on_lost t = t.lost <- t.lost + 1
let on_retransmit t = t.retransmissions <- t.retransmissions + 1
let on_corrupted t = t.corrupted <- t.corrupted + 1

let loss_rate t =
  if t.sent = 0 then 0.0
  else Float.of_int (t.lost + t.corrupted) /. Float.of_int t.sent

let merge a b =
  {
    sent = a.sent + b.sent;
    delivered = a.delivered + b.delivered;
    lost = a.lost + b.lost;
    corrupted = a.corrupted + b.corrupted;
    retransmissions = a.retransmissions + b.retransmissions;
    delays = a.delays (* delay merge not needed for reports *);
  }

let pp ppf t =
  Fmt.pf ppf "sent:%d delivered:%d lost:%d corrupted:%d (loss %.1f%%)" t.sent
    t.delivered t.lost t.corrupted (100.0 *. loss_rate t)
