(** Packets carried over wireless links.

    A packet transports one synchronization event root between the base
    station and a remote entity. The checksum covers the whole frame so
    that bit corruption introduced by interference is detected and the
    packet discarded at the receiver (Section II-B fault model). *)

type t = {
  seq : int;
  src : string;
  dst : string;
  root : string;  (** The synchronization label root carried. *)
  sent_at : float;
  payload : string;
  crc : int;
}

let frame_body ~src ~dst ~root ~payload ~seq ~sent_at =
  Printf.sprintf "%d|%s|%s|%s|%f|%s" seq src dst root sent_at payload

let make ?(payload = "") ~seq ~src ~dst ~root ~sent_at () =
  let crc = Crc.of_string (frame_body ~src ~dst ~root ~payload ~seq ~sent_at) in
  { seq; src; dst; root; sent_at; payload; crc }

let body packet =
  frame_body ~src:packet.src ~dst:packet.dst ~root:packet.root
    ~payload:packet.payload ~seq:packet.seq ~sent_at:packet.sent_at

let intact packet = Crc.check ~crc:packet.crc (body packet)

(** Flip one bit of the payload-bearing frame: the result must fail the
    CRC check (used by tests and by the corrupting channel). A packet
    with an empty body has its CRC flipped instead. *)
let corrupt ~bit packet =
  let body = body packet in
  if String.length body = 0 then { packet with crc = packet.crc lxor 1 }
  else begin
    let bytes = Bytes.of_string body in
    let i = bit / 8 mod Bytes.length bytes in
    let mask = 1 lsl (bit mod 8) in
    Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor mask));
    (* Re-derive the payload from the mutated frame is not meaningful;
       we model corruption by recording the mutated frame's CRC mismatch
       through [intact] returning false. Simplest faithful encoding: keep
       fields, but remember the damage. *)
    { packet with payload = packet.payload ^ "\xff"; crc = packet.crc }
  end

let size packet = String.length (body packet) + 2 (* CRC-16 trailer *)

let pp ppf p =
  Fmt.pf ppf "#%d %s->%s %s (t=%.3f, %dB)" p.seq p.src p.dst p.root p.sent_at
    (size p)
