(** CRC-16/CCITT-FALSE, the ITU-T checksum of IEEE 802.15.4 (the ZigBee
    PHY/MAC of the paper's TMote-Sky motes) — so corrupted packets are
    discarded through the same code path a real receiver would use. *)

val of_string : string -> int
(** The check value of ["123456789"] is [0x29B1]. *)

val check : crc:int -> string -> bool
val update : int -> int -> int
