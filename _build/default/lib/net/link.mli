(** A unidirectional wireless link (one uplink or downlink of the star):
    applies the loss model, assigns propagation + MAC delay, keeps
    statistics. Corrupted frames fail the receiver-side CRC check and
    are discarded, per the Section II-B fault model. *)

type direction = Uplink | Downlink

type t

val create :
  name:string ->
  direction:direction ->
  loss:Loss.t ->
  ?delay_base:float ->
  ?delay_jitter:float ->
  ?mac_retries:int ->
  ?retry_spacing:float ->
  rng:Pte_util.Rng.t ->
  unit ->
  t
(** Defaults: 10 ms base delay + uniform jitter up to 20 ms; no MAC
    retransmissions. [mac_retries] > 0 retries a lost/corrupted frame
    (802.15.4-style), each retry adding [retry_spacing] (default 5 ms)
    to the delivery delay. *)

type verdict =
  | Deliver of { arrival : float; packet : Packet.t }
  | Drop of Loss.outcome

val send : t -> time:float -> src:string -> dst:string -> root:string -> verdict
val stats : t -> Link_stats.t
val pp : t Fmt.t
