(** Per-link delivery statistics, so each experiment's effective channel
    conditions are visible next to its results. *)

type t = {
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable corrupted : int;
  mutable retransmissions : int;
  delays : Pte_util.Stats.Online.t;
}

val create : unit -> t
val on_sent : t -> unit
val on_delivered : t -> delay:float -> unit
val on_lost : t -> unit
val on_retransmit : t -> unit
val on_corrupted : t -> unit

val loss_rate : t -> float
(** Fraction of frames ultimately not delivered. *)

val merge : t -> t -> t
val pp : t Fmt.t
