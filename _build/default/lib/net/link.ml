(** A unidirectional wireless link (one uplink or downlink of the star).

    Applies the loss model, assigns a propagation + MAC delay, and keeps
    statistics. Corrupted frames are "delivered" but fail the CRC check
    and are discarded at the receiver, as the fault model prescribes. *)

type direction = Uplink | Downlink

type t = {
  name : string;
  direction : direction;
  loss : Loss.t;
  delay_base : float;
  delay_jitter : float;
  mac_retries : int;
  retry_spacing : float;
  rng : Pte_util.Rng.t;
  stats : Link_stats.t;
  mutable seq : int;
}

let create ~name ~direction ~loss ?(delay_base = 0.01) ?(delay_jitter = 0.02)
    ?(mac_retries = 0) ?(retry_spacing = 0.005) ~rng () =
  { name; direction; loss; delay_base; delay_jitter; mac_retries;
    retry_spacing; rng; stats = Link_stats.create (); seq = 0 }

type verdict =
  | Deliver of { arrival : float; packet : Packet.t }
  | Drop of Loss.outcome  (** [Lost_in_air] or [Corrupted] *)

(** Send one event root across the link at [time], with up to
    [mac_retries] MAC-layer retransmissions (802.15.4-style; each retry
    adds [retry_spacing] to the delivery delay). The receiver-side CRC
    check happens here: a corrupted frame arrives but is discarded, so
    the attempt counts as a drop with outcome [Corrupted]. *)
let send t ~time ~src ~dst ~root =
  let packet = Packet.make ~seq:t.seq ~src ~dst ~root ~sent_at:time () in
  t.seq <- t.seq + 1;
  Link_stats.on_sent t.stats;
  let rec attempt n =
    let now = time +. (Float.of_int n *. t.retry_spacing) in
    match Loss.decide t.loss ~time:now ~root with
    | Loss.Lost_in_air when n < t.mac_retries ->
        Link_stats.on_retransmit t.stats;
        attempt (n + 1)
    | Loss.Corrupted when n < t.mac_retries ->
        Link_stats.on_retransmit t.stats;
        attempt (n + 1)
    | Loss.Lost_in_air ->
        Link_stats.on_lost t.stats;
        Drop Loss.Lost_in_air
    | Loss.Corrupted ->
        (* The frame arrives, the CRC check fails, the receiver discards. *)
        let damaged = Packet.corrupt ~bit:(Pte_util.Rng.int t.rng 64) packet in
        assert (not (Packet.intact damaged));
        Link_stats.on_corrupted t.stats;
        Drop Loss.Corrupted
    | Loss.Delivered ->
        let delay =
          t.delay_base
          +. Pte_util.Rng.uniform t.rng ~lo:0.0 ~hi:t.delay_jitter
          +. (Float.of_int n *. t.retry_spacing)
        in
        Link_stats.on_delivered t.stats ~delay;
        Deliver { arrival = time +. delay; packet }
  in
  attempt 0

let stats t = t.stats

let pp ppf t =
  Fmt.pf ppf "%s (%s): %a" t.name
    (match t.direction with Uplink -> "uplink" | Downlink -> "downlink")
    Link_stats.pp t.stats
