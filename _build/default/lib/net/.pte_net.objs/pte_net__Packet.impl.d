lib/net/packet.ml: Bytes Char Crc Fmt Printf String
