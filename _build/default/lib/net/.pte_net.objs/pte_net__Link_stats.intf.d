lib/net/link_stats.mli: Fmt Pte_util
