lib/net/link_stats.ml: Float Fmt Pte_util
