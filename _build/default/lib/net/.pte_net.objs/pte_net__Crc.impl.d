lib/net/crc.ml: Array Char Lazy String
