lib/net/star.mli: Fmt Link Link_stats Loss Pte_hybrid Pte_util
