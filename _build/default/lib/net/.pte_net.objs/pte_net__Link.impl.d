lib/net/link.ml: Float Fmt Link_stats Loss Packet Pte_util
