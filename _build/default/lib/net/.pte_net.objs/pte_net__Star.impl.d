lib/net/star.ml: Fmt Link Link_stats List Loss Printf Pte_hybrid Pte_util String
