lib/net/loss.mli: Fmt Pte_util
