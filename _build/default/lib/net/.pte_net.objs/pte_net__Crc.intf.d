lib/net/crc.mli:
