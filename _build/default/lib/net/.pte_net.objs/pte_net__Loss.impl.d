lib/net/loss.ml: Array Float Fmt Pte_util
