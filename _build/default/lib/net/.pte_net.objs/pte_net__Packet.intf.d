lib/net/packet.mli: Fmt
