lib/net/link.mli: Fmt Link_stats Loss Packet Pte_util
