(** Packets carried over wireless links: one synchronization event root
    per frame, CRC-16 protected (Section II-B fault model). *)

type t = {
  seq : int;
  src : string;
  dst : string;
  root : string;
  sent_at : float;
  payload : string;
  crc : int;
}

val make :
  ?payload:string ->
  seq:int ->
  src:string ->
  dst:string ->
  root:string ->
  sent_at:float ->
  unit ->
  t

val body : t -> string
val intact : t -> bool
(** Receiver-side CRC check. *)

val corrupt : bit:int -> t -> t
(** A damaged copy that fails {!intact}. *)

val size : t -> int
val pp : t Fmt.t
