(** CRC-16/CCITT-FALSE checksums.

    The fault model (Section II-B) assumes "each packet's checksum is
    strong enough to detect any bit error(s); a packet with bit error(s)
    is discarded at the receiver". IEEE 802.15.4 (the ZigBee PHY/MAC used
    by the paper's TMote-Sky motes) uses a 16-bit ITU-T CRC, which we
    implement here so corrupted packets are discarded through the same
    code path a real receiver would use. *)

let polynomial = 0x1021
let initial = 0xFFFF

let table =
  lazy
    (Array.init 256 (fun byte ->
         let crc = ref (byte lsl 8) in
         for _ = 0 to 7 do
           if !crc land 0x8000 <> 0 then crc := (!crc lsl 1) lxor polynomial
           else crc := !crc lsl 1;
           crc := !crc land 0xFFFF
         done;
         !crc))

let update crc byte =
  let table = Lazy.force table in
  ((crc lsl 8) land 0xFFFF) lxor table.((crc lsr 8) lxor byte land 0xFF)

let of_string s =
  let crc = ref initial in
  String.iter (fun c -> crc := update !crc (Char.code c)) s;
  !crc

let check ~crc s = of_string s = crc
