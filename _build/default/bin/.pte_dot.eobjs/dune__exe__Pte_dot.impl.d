bin/pte_dot.ml: Arg Cmd Cmdliner Fmt List Pte_core Pte_hybrid Pte_tracheotomy String Term
