bin/pte_dot.mli:
