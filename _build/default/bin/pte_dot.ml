(* `pte-dot`: export the pattern/case-study automata as Graphviz, the
   repository's analogue of the paper's figures.

     dune exec bin/pte_dot.exe -- supervisor > supervisor.dot
     dune exec bin/pte_dot.exe -- ventilator-elaborated | dot -Tsvg > vent.svg *)

open Cmdliner

let automata =
  [
    ("supervisor", fun () -> Pte_core.Pattern.supervisor Pte_core.Params.case_study);
    ("initializer", fun () -> Pte_core.Pattern.initializer_ Pte_core.Params.case_study);
    ("participant", fun () ->
        Pte_core.Pattern.participant Pte_core.Params.case_study ~index:1);
    ("ventilator-standalone", fun () -> Pte_tracheotomy.Ventilator.stand_alone);
    ("ventilator-elaborated", fun () ->
        Pte_tracheotomy.Ventilator.participant Pte_core.Params.case_study);
    ("patient", fun () -> Pte_tracheotomy.Patient.automaton);
  ]

let run which =
  match List.assoc_opt which automata with
  | Some build -> print_string (Pte_hybrid.Dot.to_string (build ()))
  | None ->
      Fmt.epr "unknown automaton %S; choose from: %s@." which
        (String.concat ", " (List.map fst automata));
      exit 2

let cmd =
  let which =
    Arg.(
      value
      & pos 0 string "supervisor"
      & info [] ~docv:"AUTOMATON" ~doc:"Which automaton to export.")
  in
  let doc = "export case-study hybrid automata as Graphviz dot" in
  Cmd.v (Cmd.info "pte-dot" ~doc) Term.(const run $ which)

let () = exit (Cmd.eval cmd)
