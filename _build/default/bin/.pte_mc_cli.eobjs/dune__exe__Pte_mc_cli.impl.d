bin/pte_mc_cli.ml: Arg Array Cmd Cmdliner Fmt List Pte_core Pte_mc Term Unix
