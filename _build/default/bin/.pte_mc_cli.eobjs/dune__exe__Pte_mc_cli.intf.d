bin/pte_mc_cli.mli:
