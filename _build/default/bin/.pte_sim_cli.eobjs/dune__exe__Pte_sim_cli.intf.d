bin/pte_sim_cli.mli:
