bin/pte_sim_cli.ml: Arg Cmd Cmdliner Fmt List Pte_core Pte_net Pte_tracheotomy Term
