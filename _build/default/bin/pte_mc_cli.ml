(* `pte-mc`: zone-reachability model checking of the lease pattern.

     dune exec bin/pte_mc_cli.exe                        # verify the case study
     dune exec bin/pte_mc_cli.exe -- --no-lease --trace  # find + show a counterexample
     dune exec bin/pte_mc_cli.exe -- --t-enter-2 3       # break c5 *)

open Cmdliner

let run lease t_enter_2 dwell_bound max_states first show_trace =
  let base = Pte_core.Params.case_study in
  let p =
    match t_enter_2 with
    | None -> base
    | Some v ->
        {
          base with
          Pte_core.Params.entities =
            [|
              base.Pte_core.Params.entities.(0);
              { (base.Pte_core.Params.entities.(1)) with
                Pte_core.Params.t_enter_max = v };
            |];
        }
  in
  Fmt.pr "checking %s pattern, configuration:@.%a@.@."
    (if lease then "with-lease" else "NO-LEASE")
    Pte_core.Params.pp p;
  let outcomes = Pte_core.Constraints.check p in
  Fmt.pr "%a@.@." Pte_core.Constraints.pp_report outcomes;
  let t0 = Unix.gettimeofday () in
  let r =
    Pte_mc.Reach.check_pattern ~lease
      ~config:
        { Pte_mc.Reach.default_config with max_states; stop_at_first = first }
      ?dwell_bound p
  in
  Fmt.pr "explored %d states / %d transitions in %.1fs (%s)@."
    r.Pte_mc.Reach.states r.Pte_mc.Reach.transitions
    (Unix.gettimeofday () -. t0)
    (if r.Pte_mc.Reach.exhausted then "exhaustive" else "bounded");
  (match r.Pte_mc.Reach.violations with
  | [] ->
      if r.Pte_mc.Reach.exhausted then
        Fmt.pr "VERIFIED: no PTE safety-rule violation is reachable.@."
      else Fmt.pr "no violation found within the state budget.@."
  | violations ->
      let kinds =
        List.sort_uniq compare
          (List.map
             (fun (v : Pte_mc.Reach.violation) ->
               Fmt.str "%a" Pte_mc.Reach.pp_violation_kind v.Pte_mc.Reach.kind)
             violations)
      in
      List.iter (fun k -> Fmt.pr "VIOLATION: %s@." k) kinds;
      if show_trace then begin
        match violations with
        | [] -> ()
        | v :: _ ->
            Fmt.pr "@.counterexample trace:@.";
            List.iter (fun a -> Fmt.pr "  %s@." a)
              (r.Pte_mc.Reach.trace v.Pte_mc.Reach.state)
      end);
  exit (if r.Pte_mc.Reach.violations = [] then 0 else 1)

let cmd =
  let lease =
    Arg.(value & opt bool true & info [ "lease" ] ~docv:"BOOL" ~doc:"Lease mechanism on/off.")
  in
  let t_enter_2 =
    Arg.(value & opt (some float) None & info [ "t-enter-2" ] ~docv:"S" ~doc:"Override the Initializer's T_enter (e.g. 3 breaks c5).")
  in
  let dwell_bound =
    Arg.(value & opt (some float) None & info [ "dwell-bound" ] ~docv:"S" ~doc:"Rule 1 bound to check (default: the Theorem 1 guarantee).")
  in
  let max_states =
    Arg.(value & opt int 2_000_000 & info [ "max-states" ] ~docv:"N" ~doc:"State budget.")
  in
  let first =
    Arg.(value & flag & info [ "first" ] ~doc:"Stop at the first violation.")
  in
  let show_trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print a counterexample trace.")
  in
  let doc = "model-check PTE safety of the lease pattern under arbitrary loss" in
  Cmd.v
    (Cmd.info "pte-mc" ~doc)
    Term.(const run $ lease $ t_enter_2 $ dwell_bound $ max_states $ first $ show_trace)

let () = exit (Cmd.eval cmd)
