bin/pte_check.ml: Arg Array Cmd Cmdliner Fmt List Pte_core String Term
