bin/pte_check.mli:
