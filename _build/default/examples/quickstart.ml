(* Quickstart: guard a two-entity wireless CPS with the PTE lease pattern
   in about forty lines.

     dune exec examples/quickstart.exe

   Workflow: describe the safety requirements, synthesize configuration
   constants satisfying Theorem 1, build the pattern automata, run them
   over a lossy wireless network, and check the trace against the PTE
   safety rules. *)

let () =
  (* 1. Requirements: a heater (outer, ξ1) must shut off before a filler
     nozzle (inner/Initializer, ξ2) opens, with 2 s spacing on entry and
     1 s on exit. *)
  let requirements =
    Pte_core.Synthesis.default_requirements
      ~entity_names:[ "heater-off"; "nozzle" ]
      ~safeguards:[ { Pte_core.Params.enter_risky_min = 2.0; exit_safe_min = 1.0 } ]
  in
  let params = Pte_core.Synthesis.synthesize_exn requirements in
  Fmt.pr "Synthesized configuration:@.%a@.@." Pte_core.Params.pp params;

  (* 2. The constants provably satisfy Theorem 1's conditions c1-c7. *)
  Fmt.pr "%a@.@." Pte_core.Constraints.pp_report (Pte_core.Constraints.check params);

  (* 3. Build the hybrid system (Supervisor + Participant + Initializer)
     and a bursty wireless star network, and drive the Initializer with
     random requests. *)
  let system = Pte_core.Pattern.system params in
  let net =
    Pte_net.Star.create ~base:"supervisor"
      ~remotes:(Pte_core.Pattern.remotes params)
      ~loss_kind:(Pte_net.Loss.wifi_interference ~average_loss:0.3)
      ~rng:(Pte_util.Rng.create 2013) ()
  in
  let engine =
    Pte_sim.Engine.create
      ~config:{ Pte_hybrid.Executor.default_config with dt = 0.01 }
      ~net ~seed:7 system
  in
  Pte_sim.Scenario.exponential_stimulus engine ~mean:20.0 ~automaton:"nozzle"
    ~armed_in:"Fall-Back"
    ~root:(Pte_core.Events.stim_request ~initializer_:"nozzle") ();
  Pte_sim.Scenario.exponential_stimulus engine ~mean:6.0 ~automaton:"nozzle"
    ~armed_in:"Risky Core"
    ~root:(Pte_core.Events.stim_cancel ~initializer_:"nozzle") ();
  let horizon = 300.0 in
  Pte_sim.Engine.run engine ~until:horizon;

  (* 4. Check the run against the PTE safety rules. *)
  let spec = Pte_core.Rules.of_params params in
  let report =
    Pte_core.Monitor.analyze_system (Pte_sim.Engine.trace engine) system spec
      ~horizon
  in
  let emissions =
    Pte_sim.Metrics.entries (Pte_sim.Engine.trace engine) ~automaton:"nozzle"
      ~location:"Risky Core"
  in
  Fmt.pr "Simulated %.0fs: %d nozzle activations over a %.0f%%-loss channel.@."
    horizon emissions
    (100.0 *. Pte_net.Link_stats.loss_rate (Pte_net.Star.total_stats net));
  Fmt.pr "%a@." Pte_core.Monitor.pp_report report;
  if Pte_core.Monitor.ok report then
    Fmt.pr "PTE safety held under arbitrary message loss — Theorem 1 at work.@."
