(* A four-entity industrial cell (N = 4): wireless robotic welding.

     dune exec examples/factory_cell.exe

   PTE chain  ξ1 < ξ2 < ξ3 < ξ4:
   - ξ1 "conveyor-hold": the conveyor must stop feeding parts;
   - ξ2 "vent-boost":    fume extraction must run at boost power;
   - ξ3 "clamp":         the fixture must clamp the workpiece;
   - ξ4 "welder" (Initializer): the robot strikes the welding arc.

   All four are wirelessly coordinated by a cell controller (ξ0). This
   example stresses the chain-length scaling of the synthesizer and shows
   how the derived constants grow along the chain (outer leases must
   outlast inner ones — condition c6). It also demonstrates detecting a
   mis-configuration before deployment. *)

let () =
  let safeguards =
    [
      { Pte_core.Params.enter_risky_min = 1.0; exit_safe_min = 0.5 };
      { Pte_core.Params.enter_risky_min = 2.0; exit_safe_min = 1.0 };
      { Pte_core.Params.enter_risky_min = 1.5; exit_safe_min = 0.5 };
    ]
  in
  let params =
    Pte_core.Synthesis.synthesize_exn
      {
        (Pte_core.Synthesis.default_requirements
           ~entity_names:[ "conveyor-hold"; "vent-boost"; "clamp"; "welder" ]
           ~safeguards)
        with
        Pte_core.Synthesis.initializer_run = 12.0;
        t_wait_max = 1.5;
        margin = 0.5;
      }
  in
  Fmt.pr "Synthesized N=4 configuration:@.%a@.@." Pte_core.Params.pp params;
  Fmt.pr "Risky-dwell guarantee (Theorem 1): %.1fs@.@."
    (Pte_core.Params.risky_dwell_bound params);

  (* A plausible manual "optimization" — trimming the conveyor's lease to
     reduce idle time — is caught by the checker before deployment. *)
  let trimmed =
    let entities = Array.map Fun.id params.Pte_core.Params.entities in
    entities.(0) <-
      { (entities.(0)) with Pte_core.Params.t_run_max = 10.0 };
    { params with Pte_core.Params.entities = entities }
  in
  Fmt.pr "Manual trim of the conveyor lease:@.";
  List.iter
    (fun (o : Pte_core.Constraints.outcome) ->
      if not o.Pte_core.Constraints.ok then
        Fmt.pr "  REJECTED by %a@." Pte_core.Constraints.pp_outcome o)
    (Pte_core.Constraints.check trimmed);
  Fmt.pr "@.";

  (* Run the (valid) cell over a noisy factory-floor channel. *)
  let system = Pte_core.Pattern.system params in
  let net =
    Pte_net.Star.create ~base:"supervisor"
      ~remotes:(Pte_core.Pattern.remotes params)
      ~loss_kind:(Pte_net.Loss.wifi_interference ~average_loss:0.4)
      ~rng:(Pte_util.Rng.create 4) ()
  in
  let engine =
    Pte_sim.Engine.create
      ~config:{ Pte_hybrid.Executor.default_config with dt = 0.01 }
      ~net ~seed:5 system
  in
  Pte_sim.Scenario.exponential_stimulus engine ~mean:45.0 ~automaton:"welder"
    ~armed_in:"Fall-Back"
    ~root:(Pte_core.Events.stim_request ~initializer_:"welder") ();
  Pte_sim.Scenario.exponential_stimulus engine ~mean:6.0 ~automaton:"welder"
    ~armed_in:"Risky Core"
    ~root:(Pte_core.Events.stim_cancel ~initializer_:"welder") ();
  let horizon = 1200.0 in
  Pte_sim.Engine.run engine ~until:horizon;

  let trace = Pte_sim.Engine.trace engine in
  let spec = Pte_core.Rules.of_params params in
  let report = Pte_core.Monitor.analyze_system trace system spec ~horizon in
  Fmt.pr "20 simulated minutes at %.0f%% loss:@."
    (100.0 *. Pte_net.Link_stats.loss_rate (Pte_net.Star.total_stats net));
  List.iter
    (fun entity ->
      Fmt.pr "  %-14s risky entries: %2d, lease expiries: %d@." entity
        (Pte_sim.Metrics.entries trace ~automaton:entity ~location:"Risky Core")
        (Pte_sim.Metrics.internal_marks trace
           ~root:(Pte_core.Events.lease_expired ~entity)))
    (Pte_core.Pattern.remotes params);
  Fmt.pr "  arc strikes aborted by lease (evtToStop): %d@."
    (Pte_sim.Metrics.internal_marks trace
       ~root:(Pte_core.Events.to_stop ~entity:"welder"));
  Fmt.pr "%a@." Pte_core.Monitor.pp_report report
