(* The paper's case study, end to end (Section V):

     dune exec examples/laser_tracheotomy.exe

   Builds the laser-tracheotomy wireless CPS — supervisor + SpO2 sensor
   (ξ0), pattern-elaborated ventilator (ξ1), laser-scalpel (ξ2), patient
   model, ZigBee-like star under WiFi interference — and walks through
   the paper's narrative: configuration check, one clean episode with the
   Fig. 1 timeline, a lease vs no-lease trial, and the §V failure
   scenarios. *)

let rule fmt = Fmt.pr ("@.=== " ^^ fmt ^^ " ===@.")

let () =
  let params = Pte_core.Params.case_study in
  rule "Configuration (Section V constants)";
  Fmt.pr "%a@." Pte_core.Params.pp params;
  Fmt.pr "%a@." Pte_core.Constraints.pp_report (Pte_core.Constraints.check params);

  rule "One clean leased episode — the Fig. 1 timeline";
  let tl = Pte_tracheotomy.Scenarios.fig1_timeline ~cancel_at:10.0 () in
  Fmt.pr "t1 (pause -> emission spacing) = %5.2fs  (required >= %.1fs)@." tl.t1
    3.0;
  Fmt.pr "t2 (laser-off -> resume spacing) = %4.2fs  (required >= %.1fs)@."
    tl.t2 1.5;
  Fmt.pr "t3 (ventilator pause duration) = %5.2fs  (must be <= 60s)@." tl.t3;
  Fmt.pr "t4 (laser emission duration)   = %5.2fs  (must be <= 60s)@." tl.t4;

  rule "Five-minute trial, with vs without lease (constant interference)";
  let run lease =
    Pte_tracheotomy.Trial.run
      { Pte_tracheotomy.Emulation.default with horizon = 300.0; lease; seed = 99 }
  in
  let with_lease = run true and without = run false in
  Fmt.pr "with lease   : %a@." Pte_tracheotomy.Trial.pp_result with_lease;
  Fmt.pr "without lease: %a@." Pte_tracheotomy.Trial.pp_result without;
  List.iter
    (fun v -> Fmt.pr "  %a@." Pte_core.Monitor.pp_violation v)
    without.Pte_tracheotomy.Trial.violations;

  rule "S1: the surgeon forgets to cancel";
  List.iter
    (fun lease ->
      let e = Pte_tracheotomy.Scenarios.s1_forgotten_cancel ~lease () in
      Fmt.pr "  %a@." Pte_tracheotomy.Scenarios.pp_episode e)
    [ true; false ];
  Fmt.pr "  ... and with every abort/cancel message also lost:@.";
  List.iter
    (fun lease ->
      let e =
        Pte_tracheotomy.Scenarios.s1_forgotten_cancel ~abort_blackout:true
          ~lease ()
      in
      Fmt.pr "  %a@." Pte_tracheotomy.Scenarios.pp_episode e)
    [ true; false ];

  rule "S2: the cancel request is lost";
  List.iter
    (fun lease ->
      let e = Pte_tracheotomy.Scenarios.s2_lost_cancel ~lease () in
      Fmt.pr "  %a@." Pte_tracheotomy.Scenarios.pp_episode e)
    [ true; false ];

  rule "S3: condition c5 deliberately broken (T_enter,2 = T_enter,1)";
  let outcomes, episode = Pte_tracheotomy.Scenarios.s3_c5_violated () in
  List.iter
    (fun (o : Pte_core.Constraints.outcome) ->
      if not o.Pte_core.Constraints.ok then
        Fmt.pr "  checker: %a@." Pte_core.Constraints.pp_outcome o)
    outcomes;
  Fmt.pr "  run: %a@." Pte_tracheotomy.Scenarios.pp_episode episode;
  List.iter
    (fun v -> Fmt.pr "  %a@." Pte_core.Monitor.pp_violation v)
    episode.Pte_tracheotomy.Scenarios.violations;

  rule "Formal verdicts (bounded zone reachability)";
  let budget = { Pte_mc.Reach.default_config with max_states = 30_000 } in
  let quick label r =
    Fmt.pr "  %s: %d states explored, %d violation kind(s)%s@." label
      r.Pte_mc.Reach.states
      (List.length r.Pte_mc.Reach.violations)
    (if r.Pte_mc.Reach.exhausted then " [exhaustive]" else " [bounded]")
  in
  quick "with lease   " (Pte_mc.Reach.check_pattern ~config:budget params);
  quick "without lease"
    (Pte_mc.Reach.check_pattern ~lease:false
       ~config:{ budget with stop_at_first = true }
       params);
  Fmt.pr "@.Run `dune exec bench/main.exe` for the full Table I and the exhaustive proof.@."
