examples/factory_cell.mli:
