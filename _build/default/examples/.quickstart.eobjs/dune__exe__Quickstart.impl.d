examples/quickstart.ml: Fmt Pte_core Pte_hybrid Pte_net Pte_sim Pte_util
