examples/factory_cell.ml: Array Fmt Fun List Pte_core Pte_hybrid Pte_net Pte_sim Pte_util
