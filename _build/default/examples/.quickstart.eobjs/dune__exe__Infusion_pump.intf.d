examples/infusion_pump.mli:
