examples/laser_tracheotomy.mli:
