examples/infusion_pump.ml: Automaton Edge Executor Flow Fmt Guard Label Location Pte_core Pte_hybrid Pte_net Pte_sim Pte_util Reset System
