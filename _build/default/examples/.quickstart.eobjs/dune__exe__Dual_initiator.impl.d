examples/dual_initiator.ml: Fmt List Pte_core Pte_hybrid Pte_mc Pte_net Pte_sim Pte_util String
