examples/laser_tracheotomy.ml: Fmt List Pte_core Pte_mc Pte_tracheotomy
