examples/dual_initiator.mli:
