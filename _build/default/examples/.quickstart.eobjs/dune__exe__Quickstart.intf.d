examples/quickstart.mli:
