(* A three-entity medical scenario (N = 3): intra-operative fluoroscopy
   with patient-controlled analgesia.

     dune exec examples/infusion_pump.exe

   PTE chain  ξ1 < ξ2 < ξ3:
   - ξ1 "pump-pause":   the analgesia infusion pump must pause (risky:
     the patient receives no analgesic) before imaging, so the bolus
     line does not shadow the image;
   - ξ2 "shield":       the scatter shield must retract (risky: staff
     exposure) after the pump pauses;
   - ξ3 "carm" (Initializer): the surgeon fires the C-arm X-ray.

   The pump automaton is elaborated with a simple two-location child
   (Bolus/Basal schedule), exactly like the paper elaborates the
   ventilator with A'vent. *)

open Pte_hybrid

(* A simple child automaton: the pump alternates basal (40 s) and bolus
   (5 s) phases while idle. Like A'vent it is "simple" per Definition 3:
   one shared invariant (none), zero initial data state. *)
let pump_schedule =
  let flow = Flow.Rates [ ("phase", 1.0) ] in
  Automaton.make ~name:"pump-schedule" ~vars:[ "phase" ]
    ~locations:[ Location.make ~flow "Basal"; Location.make ~flow "Bolus" ]
    ~edges:
      [
        Edge.make ~guard:[ Guard.atom "phase" Guard.Ge 40.0 ]
          ~reset:(Reset.set "phase" 0.0)
          ~label:(Label.Send "evtBolusStart") ~src:"Basal" ~dst:"Bolus" ();
        Edge.make ~guard:[ Guard.atom "phase" Guard.Ge 5.0 ]
          ~reset:(Reset.set "phase" 0.0)
          ~label:(Label.Send "evtBolusEnd") ~src:"Bolus" ~dst:"Basal" ();
      ]
    ~initial_location:"Basal" ()

let () =
  (* Safety requirements: imaging may start 2 s after the shield is out,
     which itself needs 1.5 s after the pump pauses; exits mirror with
     1 s and 0.5 s safeguards. *)
  let params =
    Pte_core.Synthesis.synthesize_exn
      {
        (Pte_core.Synthesis.default_requirements
           ~entity_names:[ "pump-pause"; "shield"; "carm" ]
           ~safeguards:
             [
               { Pte_core.Params.enter_risky_min = 1.5; exit_safe_min = 1.0 };
               { Pte_core.Params.enter_risky_min = 2.0; exit_safe_min = 0.5 };
             ])
        with
        Pte_core.Synthesis.initializer_run = 15.0;
        t_wait_max = 2.0;
      }
  in
  Fmt.pr "Synthesized N=3 configuration:@.%a@.@." Pte_core.Params.pp params;
  assert (Pte_core.Constraints.satisfies params);

  (* Build the design via the Theorem 2 methodology: elaborate the pump
     participant's Fall-Back with the schedule child. *)
  let design =
    Pte_core.Compliance.build_exn
      {
        Pte_core.Compliance.params;
        lease = true;
        children = [ ("pump-pause", [ ("Fall-Back", pump_schedule) ]) ];
      }
  in
  Fmt.pr "Design built by elaboration; member automata: %a@.@."
    Fmt.(list ~sep:comma string)
    (System.names design);

  let net =
    Pte_net.Star.create ~base:"supervisor"
      ~remotes:(Pte_core.Pattern.remotes params)
      ~loss_kind:(Pte_net.Loss.wifi_interference ~average_loss:0.35)
      ~rng:(Pte_util.Rng.create 41) ()
  in
  let engine =
    Pte_sim.Engine.create
      ~config:{ Executor.default_config with dt = 0.01 }
      ~net ~seed:42 design
  in
  Pte_sim.Scenario.exponential_stimulus engine ~mean:40.0 ~automaton:"carm"
    ~armed_in:"Fall-Back"
    ~root:(Pte_core.Events.stim_request ~initializer_:"carm") ();
  Pte_sim.Scenario.exponential_stimulus engine ~mean:5.0 ~automaton:"carm"
    ~armed_in:"Risky Core"
    ~root:(Pte_core.Events.stim_cancel ~initializer_:"carm") ();

  let horizon = 900.0 in
  Pte_sim.Engine.run engine ~until:horizon;

  let trace = Pte_sim.Engine.trace engine in
  let spec = Pte_core.Rules.of_params params in
  let report = Pte_core.Monitor.analyze_system trace design spec ~horizon in
  let entries automaton location =
    Pte_sim.Metrics.entries trace ~automaton ~location
  in
  Fmt.pr "15 simulated minutes at %.0f%% loss:@."
    (100.0 *. Pte_net.Link_stats.loss_rate (Pte_net.Star.total_stats net));
  Fmt.pr "  X-ray exposures      : %d@." (entries "carm" "Risky Core");
  Fmt.pr "  shield retractions   : %d@." (entries "shield" "Risky Core");
  Fmt.pr "  pump pauses          : %d@." (entries "pump-pause" "Risky Core");
  Fmt.pr "  pump lease expiries  : %d@."
    (Pte_sim.Metrics.internal_marks trace
       ~root:(Pte_core.Events.lease_expired ~entity:"pump-pause"));
  Fmt.pr "  bolus cycles while idle: %d@." (entries "pump-pause" "Bolus");
  Fmt.pr "%a@." Pte_core.Monitor.pp_report report
