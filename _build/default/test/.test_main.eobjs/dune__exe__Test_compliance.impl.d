test/test_compliance.ml: Alcotest Automaton Compliance Executor Fmt Guard List Location Params Pte_core Pte_hybrid Pte_tracheotomy Result System
