test/test_crc.ml: Alcotest Bytes Char Crc Packet Pte_net QCheck QCheck_alcotest
