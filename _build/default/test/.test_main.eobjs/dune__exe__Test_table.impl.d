test/test_table.ml: Alcotest List Pte_util String Table
