test/test_loss.ml: Alcotest Array Float List Loss Pte_net
