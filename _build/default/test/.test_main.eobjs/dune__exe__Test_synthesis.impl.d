test/test_synthesis.ml: Alcotest Constraints List Params Printf Pte_core QCheck QCheck_alcotest Synthesis
