test/test_export.ml: Alcotest Automaton Executor Flow Label List Location Pte_hybrid Pte_sim String System Trace
