test/test_constraints.ml: Alcotest Array Constraints Fmt Fun List Params Pte_core String
