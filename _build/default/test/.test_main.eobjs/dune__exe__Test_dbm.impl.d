test/test_dbm.ml: Alcotest Bound Dbm List Pte_mc QCheck QCheck_alcotest
