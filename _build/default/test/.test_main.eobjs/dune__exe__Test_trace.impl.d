test/test_trace.ml: Alcotest Float Fmt List Pte_hybrid Trace
