test/test_tracheotomy.ml: Alcotest Automaton Float Fmt List Pte_core Pte_hybrid Pte_net Pte_sim Pte_tracheotomy String System
