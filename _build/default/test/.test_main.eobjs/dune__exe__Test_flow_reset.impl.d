test/test_flow_reset.ml: Alcotest Flow List Pte_hybrid Reset Valuation Var
