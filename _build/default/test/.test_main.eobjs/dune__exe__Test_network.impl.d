test/test_network.ml: Alcotest Float Fmt Link Link_stats Loss Packet Pte_hybrid Pte_net Pte_util Star
