test/test_automaton.ml: Alcotest Automaton Edge Flow Guard Label List Location Pte_hybrid Pte_tracheotomy Reset Result String System Valuation Var
