test/test_monitor_reference.ml: Float Fmt List Monitor Params Pte_core Pte_hybrid QCheck QCheck_alcotest Rules String Trace
