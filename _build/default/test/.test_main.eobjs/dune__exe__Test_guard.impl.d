test/test_guard.ml: Alcotest Float Fmt Guard List Pte_hybrid QCheck QCheck_alcotest Valuation
