test/test_sequencing.ml: Alcotest Events Executor Fmt List Monitor Params Pattern Pte_core Pte_hybrid Pte_sim Rules Synthesis
