test/test_scenarios.ml: Alcotest Fmt List Pte_core Pte_tracheotomy
