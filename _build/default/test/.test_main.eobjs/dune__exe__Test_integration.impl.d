test/test_integration.ml: Alcotest Events Fmt List Monitor Params Pattern Pte_core Pte_hybrid Pte_net Pte_sim Pte_tracheotomy Pte_util QCheck QCheck_alcotest Rules String Synthesis
