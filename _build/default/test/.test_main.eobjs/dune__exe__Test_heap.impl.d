test/test_heap.ml: Alcotest Float Heap List Option Pte_util QCheck QCheck_alcotest
