test/test_executor.ml: Alcotest Automaton Edge Executor Float Flow Guard Label List Location Pte_hybrid Pte_tracheotomy Reset System Trace Valuation
