test/test_rng.ml: Alcotest Float List Pte_util Rng
