test/test_stats.ml: Alcotest Float List Pte_util QCheck QCheck_alcotest Stats
