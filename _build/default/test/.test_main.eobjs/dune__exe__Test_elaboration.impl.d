test/test_elaboration.ml: Alcotest Automaton Edge Elaboration Executor Float Flow Guard List Location Pte_hybrid Pte_tracheotomy Reset String System Valuation
