test/test_engine.ml: Alcotest Automaton Edge Executor Float Flow Fmt Label List Location Pte_hybrid Pte_sim Pte_util System
