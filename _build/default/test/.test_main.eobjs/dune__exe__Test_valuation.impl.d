test/test_valuation.ml: Alcotest Float Pte_hybrid QCheck QCheck_alcotest Valuation
