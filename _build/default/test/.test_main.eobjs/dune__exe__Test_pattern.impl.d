test/test_pattern.ml: Alcotest Automaton Dot Edge Events Label List Params Pattern Pte_core Pte_hybrid String Synthesis System Var
