test/test_mc.ml: Alcotest Array List Params Pattern Pte_core Pte_mc Pte_tracheotomy String
