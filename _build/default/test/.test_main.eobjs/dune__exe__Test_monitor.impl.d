test/test_monitor.ml: Alcotest Float Fmt List Monitor Params Pte_core Pte_hybrid Rules String Trace
