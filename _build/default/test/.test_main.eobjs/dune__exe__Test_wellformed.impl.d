test/test_wellformed.ml: Alcotest Automaton Edge Flow Fmt Guard Label List Location Pte_core Pte_hybrid Pte_tracheotomy Reset Wellformed
