(* The PTE trace monitor: Rule 1 bounds and Definition 1 p1-p3 on
   synthetic traces with known violations. *)

open Pte_core
open Pte_hybrid

let transition ~time automaton src dst =
  {
    Trace.time;
    event = Trace.Transition { automaton; src; dst; label = None; forced = false };
  }

(* two entities; risky location is "R", safe is "S" *)
let risky _entity location = String.equal location "R"
let initial _entity = "S"

let spec ?(bound = 60.0) () =
  Rules.make ~order:[ "outer"; "inner" ]
    ~dwell_bounds:[ ("outer", bound); ("inner", bound) ]
    ~safeguards:[ { Params.enter_risky_min = 3.0; exit_safe_min = 1.5 } ]

(* a fully compliant episode: outer risky 10..30, inner risky 14..25 *)
let good_trace =
  [
    transition ~time:10.0 "outer" "S" "R";
    transition ~time:14.0 "inner" "S" "R";
    transition ~time:25.0 "inner" "R" "S";
    transition ~time:30.0 "outer" "R" "S";
  ]

let analyze ?(spec = spec ()) trace =
  Monitor.analyze trace spec ~risky ~initial ~horizon:100.0

let test_compliant () =
  let report = analyze good_trace in
  Alcotest.(check bool)
    (Fmt.str "%a" Monitor.pp_report report)
    true (Monitor.ok report);
  Alcotest.(check int) "no episodes" 0 (Monitor.episodes report)

let test_rule1_violation () =
  let report = analyze ~spec:(spec ~bound:15.0 ()) good_trace in
  (* outer dwells 20s > 15s *)
  let has_dwell =
    List.exists
      (function Monitor.Dwell_exceeded { entity = "outer"; _ } -> true | _ -> false)
      report.Monitor.violations
  in
  Alcotest.(check bool) "dwell flagged" true has_dwell

let test_not_embedded () =
  (* inner risky with outer never risky *)
  let trace =
    [ transition ~time:5.0 "inner" "S" "R"; transition ~time:8.0 "inner" "R" "S" ]
  in
  let report = analyze trace in
  let has =
    List.exists
      (function Monitor.Not_embedded _ -> true | _ -> false)
      report.Monitor.violations
  in
  Alcotest.(check bool) "p2 flagged" true has

let test_inner_outlives_outer () =
  let trace =
    [
      transition ~time:5.0 "outer" "S" "R";
      transition ~time:9.0 "inner" "S" "R";
      transition ~time:20.0 "outer" "R" "S";
      transition ~time:22.0 "inner" "R" "S";
    ]
  in
  let report = analyze trace in
  Alcotest.(check bool) "containment broken" false (Monitor.ok report)

let test_enter_safeguard () =
  (* inner enters only 1s after outer (needs 3s) *)
  let trace =
    [
      transition ~time:10.0 "outer" "S" "R";
      transition ~time:11.0 "inner" "S" "R";
      transition ~time:20.0 "inner" "R" "S";
      transition ~time:30.0 "outer" "R" "S";
    ]
  in
  let report = analyze trace in
  let has =
    List.exists
      (function
        | Monitor.Enter_safeguard { inner_start = 11.0; _ } -> true | _ -> false)
      report.Monitor.violations
  in
  Alcotest.(check bool) "p1 flagged" true has

let test_exit_safeguard () =
  (* outer exits 0.5s after inner (needs 1.5s) *)
  let trace =
    [
      transition ~time:10.0 "outer" "S" "R";
      transition ~time:14.0 "inner" "S" "R";
      transition ~time:25.0 "inner" "R" "S";
      transition ~time:25.5 "outer" "R" "S";
    ]
  in
  let report = analyze trace in
  let has =
    List.exists
      (function Monitor.Exit_safeguard _ -> true | _ -> false)
      report.Monitor.violations
  in
  Alcotest.(check bool) "p3 flagged" true has

let test_open_at_horizon_not_flagged () =
  (* both still risky at a near horizon: p3 unresolved, not a violation
     (and the dwells are still below the Rule 1 bound) *)
  let trace =
    [ transition ~time:10.0 "outer" "S" "R"; transition ~time:14.0 "inner" "S" "R" ]
  in
  let report =
    Monitor.analyze trace (spec ()) ~risky ~initial ~horizon:40.0
  in
  Alcotest.(check bool)
    (Fmt.str "%a" Monitor.pp_report report)
    true (Monitor.ok report)

let test_zero_gap_merged () =
  (* an instantaneous dispatch location splitting the risky dwell must
     not create a spurious containment break *)
  let trace =
    [
      transition ~time:10.0 "outer" "S" "R";
      transition ~time:14.0 "inner" "S" "R";
      (* outer passes through a dispatch at t=20 within the risky set:
         R -> S -> R at the same instant *)
      transition ~time:20.0 "outer" "R" "S";
      transition ~time:20.0 "outer" "S" "R";
      transition ~time:25.0 "inner" "R" "S";
      transition ~time:30.0 "outer" "R" "S";
    ]
  in
  let report = analyze trace in
  Alcotest.(check bool)
    (Fmt.str "%a" Monitor.pp_report report)
    true (Monitor.ok report)

let test_episode_grouping () =
  (* one inner interval violating both p1 and p3 counts as one episode *)
  let trace =
    [
      transition ~time:10.0 "outer" "S" "R";
      transition ~time:10.5 "inner" "S" "R";
      transition ~time:20.0 "inner" "R" "S";
      transition ~time:20.2 "outer" "R" "S";
    ]
  in
  let report = analyze trace in
  Alcotest.(check bool) "two violations" true
    (List.length report.Monitor.violations >= 2);
  Alcotest.(check int) "one episode" 1 (Monitor.episodes report)

let test_three_entity_chain () =
  let spec3 =
    Rules.make ~order:[ "a"; "b"; "c" ]
      ~dwell_bounds:[ ("a", 100.0); ("b", 100.0); ("c", 100.0) ]
      ~safeguards:
        [
          { Params.enter_risky_min = 2.0; exit_safe_min = 1.0 };
          { Params.enter_risky_min = 2.0; exit_safe_min = 1.0 };
        ]
  in
  let trace =
    [
      transition ~time:0.0 "a" "S" "R";
      transition ~time:3.0 "b" "S" "R";
      transition ~time:6.0 "c" "S" "R";
      transition ~time:10.0 "c" "R" "S";
      transition ~time:12.0 "b" "R" "S";
      transition ~time:14.0 "a" "R" "S";
    ]
  in
  let report = Monitor.analyze trace spec3 ~risky ~initial ~horizon:50.0 in
  Alcotest.(check bool) "nested chain ok" true (Monitor.ok report);
  (* now make the middle exit too early w.r.t. the inner pair *)
  let bad =
    List.map
      (fun ({ Trace.time; event } as entry) ->
        match event with
        | Trace.Transition { automaton = "b"; src = "R"; dst = "S"; _ } ->
            { entry with Trace.time = time -. 1.5 }
        | _ -> entry)
      trace
  in
  let sorted = List.sort (fun a b -> Float.compare a.Trace.time b.Trace.time) bad in
  let report = Monitor.analyze sorted spec3 ~risky ~initial ~horizon:50.0 in
  Alcotest.(check bool) "early middle exit flagged" false (Monitor.ok report)

let test_rules_of_params () =
  let spec = Rules.of_params Params.case_study in
  Alcotest.(check (list string)) "order" [ "ventilator"; "laser" ] spec.Rules.order;
  Alcotest.(check (float 1e-9)) "bound = theorem bound" 47.0
    (Rules.dwell_bound spec "ventilator");
  let spec60 = Rules.of_params_with_bounds Params.case_study ~dwell_bound:60.0 in
  Alcotest.(check (float 1e-9)) "explicit bound" 60.0
    (Rules.dwell_bound spec60 "laser");
  Alcotest.(check bool) "unknown entity unbounded" true
    (Rules.dwell_bound spec "ghost" = infinity)

let suite =
  [
    ( "core.monitor",
      [
        Alcotest.test_case "compliant episode" `Quick test_compliant;
        Alcotest.test_case "rule 1 violation" `Quick test_rule1_violation;
        Alcotest.test_case "p2 not embedded" `Quick test_not_embedded;
        Alcotest.test_case "inner outlives outer" `Quick test_inner_outlives_outer;
        Alcotest.test_case "p1 enter safeguard" `Quick test_enter_safeguard;
        Alcotest.test_case "p3 exit safeguard" `Quick test_exit_safeguard;
        Alcotest.test_case "open at horizon unresolved" `Quick
          test_open_at_horizon_not_flagged;
        Alcotest.test_case "zero gaps merged" `Quick test_zero_gap_merged;
        Alcotest.test_case "episode grouping" `Quick test_episode_grouping;
        Alcotest.test_case "three-entity chain" `Quick test_three_entity_chain;
        Alcotest.test_case "spec from params" `Quick test_rules_of_params;
      ] );
  ]
