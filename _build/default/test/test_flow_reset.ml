(* Flow maps and reset functions. *)

open Pte_hybrid

let test_clock_flow () =
  let flow = Flow.clocks [ "c"; "d" ] in
  let rates = Flow.derivatives flow ~time:0.0 Valuation.empty in
  Alcotest.(check (float 0.0)) "c rate" 1.0 (List.assoc "c" rates);
  Alcotest.(check (float 0.0)) "d rate" 1.0 (List.assoc "d" rates)

let test_frozen () =
  Alcotest.(check int) "no rates" 0
    (List.length (Flow.derivatives Flow.frozen ~time:0.0 Valuation.empty))

let test_rate_of () =
  let flow = Flow.Rates [ ("h", -0.1) ] in
  Alcotest.(check (float 0.0)) "listed" (-0.1)
    (Flow.rate_of flow ~time:0.0 Valuation.empty "h");
  Alcotest.(check (float 0.0)) "unlisted" 0.0
    (Flow.rate_of flow ~time:0.0 Valuation.empty "other")

let test_ode () =
  let flow =
    Flow.Ode (fun _t v -> [ ("x", -.Valuation.get v "x") ])
  in
  let v = Valuation.of_list [ ("x", 4.0) ] in
  Alcotest.(check (float 1e-12)) "ode rate" (-4.0)
    (Flow.rate_of flow ~time:0.0 v "x")

let test_combine_rates () =
  let combined = Flow.combine (Flow.Rates [ ("a", 1.0) ]) (Flow.Rates [ ("b", 2.0) ]) in
  Alcotest.(check bool) "still constant-rate" true (Flow.is_constant_rate combined);
  Alcotest.(check (float 0.0)) "a" 1.0 (Flow.rate_of combined ~time:0.0 Valuation.empty "a");
  Alcotest.(check (float 0.0)) "b" 2.0 (Flow.rate_of combined ~time:0.0 Valuation.empty "b")

let test_combine_with_ode () =
  let ode = Flow.Ode (fun _ _ -> [ ("x", 5.0) ]) in
  let combined = Flow.combine (Flow.Rates [ ("c", 1.0) ]) ode in
  Alcotest.(check bool) "becomes ode" false (Flow.is_constant_rate combined);
  Alcotest.(check (float 0.0)) "c" 1.0 (Flow.rate_of combined ~time:0.0 Valuation.empty "c");
  Alcotest.(check (float 0.0)) "x" 5.0 (Flow.rate_of combined ~time:0.0 Valuation.empty "x")

let test_reset_identity () =
  let v = Valuation.of_list [ ("x", 3.0) ] in
  Alcotest.(check (float 0.0)) "unchanged" 3.0
    (Valuation.get (Reset.apply Reset.identity v) "x")

let test_reset_set_zero () =
  let v = Valuation.of_list [ ("c", 7.0); ("d", 8.0) ] in
  let v' = Reset.apply (Reset.zero [ "c"; "d" ]) v in
  Alcotest.(check (float 0.0)) "c" 0.0 (Valuation.get v' "c");
  Alcotest.(check (float 0.0)) "d" 0.0 (Valuation.get v' "d")

let test_reset_simultaneous () =
  (* all right-hand sides read the pre-transition valuation *)
  let v = Valuation.of_list [ ("a", 1.0); ("b", 2.0) ] in
  let swap = [ ("a", Reset.Copy "b"); ("b", Reset.Copy "a") ] in
  let v' = Reset.apply swap v in
  Alcotest.(check (float 0.0)) "a := old b" 2.0 (Valuation.get v' "a");
  Alcotest.(check (float 0.0)) "b := old a" 1.0 (Valuation.get v' "b")

let test_reset_add () =
  let v = Valuation.of_list [ ("x", 10.0) ] in
  let v' = Reset.apply [ ("x", Reset.Add_const (-3.0)) ] v in
  Alcotest.(check (float 0.0)) "x" 7.0 (Valuation.get v' "x")

let test_reset_vars () =
  let reset = [ ("a", Reset.Copy "b"); ("c", Reset.Set_const 0.0) ] in
  let vars = Reset.vars reset in
  Alcotest.(check bool) "mentions a,b,c" true
    (Var.Set.mem "a" vars && Var.Set.mem "b" vars && Var.Set.mem "c" vars)

let suite =
  [
    ( "hybrid.flow+reset",
      [
        Alcotest.test_case "clock flow" `Quick test_clock_flow;
        Alcotest.test_case "frozen" `Quick test_frozen;
        Alcotest.test_case "rate_of" `Quick test_rate_of;
        Alcotest.test_case "ode" `Quick test_ode;
        Alcotest.test_case "combine rates" `Quick test_combine_rates;
        Alcotest.test_case "combine with ode" `Quick test_combine_with_ode;
        Alcotest.test_case "reset identity" `Quick test_reset_identity;
        Alcotest.test_case "reset to zero" `Quick test_reset_set_zero;
        Alcotest.test_case "simultaneous resets" `Quick test_reset_simultaneous;
        Alcotest.test_case "add-const reset" `Quick test_reset_add;
        Alcotest.test_case "reset vars" `Quick test_reset_vars;
      ] );
  ]
