(* Trace export: JSONL and sampled CSV. *)

open Pte_hybrid

let sample_trace =
  [
    { Trace.time = 0.0;
      event = Trace.Enter_location { automaton = "a"; location = "L\"1\"" } };
    { Trace.time = 0.5;
      event = Trace.Sample { automaton = "a"; var = "x"; value = 1.5 } };
    { Trace.time = 0.5;
      event = Trace.Sample { automaton = "b"; var = "y"; value = -2.0 } };
    { Trace.time = 1.0;
      event =
        Trace.Transition
          { automaton = "a"; src = "L1"; dst = "L2";
            label = Some (Label.Send "evt"); forced = false } };
    { Trace.time = 1.2;
      event = Trace.Message_lost { receiver = "b"; root = "evt" } };
    { Trace.time = 1.5;
      event = Trace.Sample { automaton = "a"; var = "x"; value = 2.5 } };
    { Trace.time = 2.0; event = Trace.Note "end of scenario" };
  ]

let lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> String.length l > 0)

let test_jsonl_shape () =
  let out = Pte_sim.Export.to_jsonl sample_trace in
  let ls = lines out in
  Alcotest.(check int) "one line per entry" (List.length sample_trace)
    (List.length ls);
  List.iter
    (fun l ->
      Alcotest.(check bool) "looks like json object" true
        (l.[0] = '{' && l.[String.length l - 1] = '}');
      Alcotest.(check bool) "has time field" true
        (String.length l > 8 && String.sub l 0 8 = "{\"time\":"))
    ls

let test_jsonl_escaping () =
  let out = Pte_sim.Export.to_jsonl sample_trace in
  (* the quoted location L"1" must be escaped *)
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "escaped quotes" true (contains {|L\"1\"|} out);
  Alcotest.(check bool) "no raw inner quotes" false (contains {|"L"1""|} out)

let test_csv_shape () =
  let out = Pte_sim.Export.samples_to_csv sample_trace in
  match lines out with
  | header :: rows ->
      Alcotest.(check string) "header" "time,a.x,b.y" header;
      Alcotest.(check int) "two sample instants" 2 (List.length rows);
      (* simultaneous samples share a row *)
      Alcotest.(check string) "merged row" "0.500000,1.5,-2" (List.nth rows 0);
      Alcotest.(check string) "partial row" "1.500000,2.5," (List.nth rows 1)
  | [] -> Alcotest.fail "empty csv"

let test_roundtrip_from_engine () =
  let a =
    Automaton.make ~name:"plant" ~vars:[ "level" ]
      ~locations:[ Location.make ~flow:(Flow.Rates [ ("level", 2.0) ]) "Run" ]
      ~edges:[] ~initial_location:"Run" ()
  in
  let config =
    { Executor.default_config with
      sample_vars = [ ("plant", "level") ];
      sample_period = 0.25 }
  in
  let engine =
    Pte_sim.Engine.create ~config ~seed:1 (System.make ~name:"t" [ a ])
  in
  Pte_sim.Engine.run engine ~until:1.0;
  let csv = Pte_sim.Export.samples_to_csv (Pte_sim.Engine.trace engine) in
  Alcotest.(check bool) "several rows" true (List.length (lines csv) >= 4);
  let jsonl = Pte_sim.Export.to_jsonl (Pte_sim.Engine.trace engine) in
  Alcotest.(check bool) "jsonl non-empty" true (String.length jsonl > 100)

let suite =
  [
    ( "sim.export",
      [
        Alcotest.test_case "jsonl shape" `Quick test_jsonl_shape;
        Alcotest.test_case "jsonl escaping" `Quick test_jsonl_escaping;
        Alcotest.test_case "csv shape" `Quick test_csv_shape;
        Alcotest.test_case "engine roundtrip" `Quick test_roundtrip_from_engine;
      ] );
  ]
